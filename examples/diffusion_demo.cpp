// Diffusion demo: lazily propagating updates to drive inconsistency to 0.
//
// Section 1.1: "a system built with probabilistic quorum systems can be
// strengthened by a properly designed diffusion mechanism, which propagates
// updates to replicated data lazily, i.e., outside the critical path of
// client operations."
//
// A deliberately tiny quorum (l = 1, eps ~ 1/e) keeps the client-visible
// cost minimal; anti-entropy gossip between operations supplies the
// consistency. The demo prints the staleness rate as a function of how many
// gossip rounds separate a write from the next read, in a benign setting
// and with Byzantine forgers (verified gossip).
#include <cstdio>
#include <memory>

#include "core/epsilon.h"
#include "core/random_subset_system.h"
#include "diffusion/gossip.h"
#include "math/stats.h"
#include "replica/instant_cluster.h"

int main() {
  using namespace pqs;

  constexpr std::uint32_t kServers = 81;
  constexpr std::uint32_t kQuorum = 9;  // l = 1: load 0.11, eps ~ 0.36
  constexpr std::uint32_t kForgers = 8;

  std::printf("system          : R(n=%u,q=%u), quorum-only eps = %.3f\n",
              kServers, kQuorum,
              core::nonintersection_exact(kServers, kQuorum));
  std::printf("gossip          : fanout 2, MAC-verified ([MMR99])\n\n");
  std::printf("%-14s %-18s %-18s\n", "gossip rounds", "benign staleness",
              "staleness w/ forgers");

  for (std::uint32_t rounds : {0u, 1u, 2u, 3u, 5u}) {
    double rates[2];
    for (int byz = 0; byz < 2; ++byz) {
      replica::InstantCluster::Config cfg;
      cfg.quorums =
          std::make_shared<core::RandomSubsetSystem>(kServers, kQuorum);
      cfg.mode = replica::ReadMode::kDissemination;
      cfg.seed = 11 + rounds + byz;
      replica::InstantCluster cluster(
          cfg, replica::FaultPlan::prefix(kServers, byz ? kForgers : 0,
                                          replica::FaultMode::kForge));
      diffusion::GossipEngine engine({.fanout = 2, .verify = true},
                                     cluster.verifier());
      math::Proportion stale;
      std::int64_t value = 0;
      for (int i = 0; i < 10000; ++i) {
        cluster.write(1, ++value);
        engine.run_rounds(cluster.servers(), rounds, cluster.rng());
        const auto r = cluster.read(1);
        stale.add(
            !(r.selection.has_value && r.selection.record.value == value));
      }
      rates[byz] = stale.estimate();
    }
    std::printf("%-14u %-18.4f %-18.4f\n", rounds, rates[0], rates[1]);
  }

  std::printf(
      "\nEach gossip round multiplies the set of fresh replicas, so a\n"
      "handful of off-critical-path rounds buys orders of magnitude of\n"
      "consistency on top of a minimal-quorum configuration — with MAC\n"
      "verification keeping Byzantine forgers out of the epidemic.\n");
  return 0;
}

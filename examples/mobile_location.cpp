// Mobile-device location tracking over eps-intersecting quorums.
//
// The paper's second application (Section 1.1): the location of a cellular
// device is a replicated variable over "location stores", updated with a
// quorum protocol as the device moves between cells (cf. [HL99]). Callers
// tolerate *stale* answers — a stale cell forwards the call along the
// device's trail — but they cannot make progress with *no* answer, so
// availability is the binding constraint and probabilistic quorums are the
// right trade.
//
// This example simulates a device walking a random cell path while callers
// look it up; it reports the staleness rate (vs epsilon), the forwarding
// hops stale calls needed, and the availability win over a strict majority
// when a third of the location stores have crashed.
#include <cstdio>
#include <map>
#include <memory>
#include <vector>

#include "core/random_subset_system.h"
#include "math/rng.h"
#include "math/stats.h"
#include "quorum/threshold.h"
#include "replica/instant_cluster.h"

namespace {

using namespace pqs;

class LocationService {
 public:
  LocationService(std::uint32_t stores, double epsilon, std::uint64_t seed)
      : system_(core::RandomSubsetSystem::intersecting(stores, epsilon)) {
    replica::InstantCluster::Config cfg;
    cfg.quorums = std::make_shared<core::RandomSubsetSystem>(system_);
    cfg.seed = seed;
    cluster_ = std::make_unique<replica::InstantCluster>(cfg);
  }

  const core::RandomSubsetSystem& system() const { return system_; }

  void move_device(std::uint64_t device, std::int64_t new_cell) {
    // The old cell learns where the device went (hand-off pointer), then
    // the location variable is updated through a write quorum.
    const auto current = cluster_->read(device);
    if (current.selection.has_value) {
      forwarding_[{device, current.selection.record.value}] = new_cell;
    }
    cluster_->write(device, new_cell);
    true_cell_[device] = new_cell;
  }

  // Returns {found, hops}: reads the replicated variable, then chases
  // forwarding pointers if the answer was stale.
  std::pair<bool, int> call(std::uint64_t device) {
    const auto r = cluster_->read(device);
    if (!r.selection.has_value) return {false, 0};
    std::int64_t cell = r.selection.record.value;
    int hops = 0;
    while (cell != true_cell_[device]) {
      const auto fwd = forwarding_.find({device, cell});
      if (fwd == forwarding_.end()) return {false, hops};
      cell = fwd->second;
      ++hops;
    }
    return {true, hops};
  }

 private:
  core::RandomSubsetSystem system_;
  std::unique_ptr<replica::InstantCluster> cluster_;
  std::map<std::pair<std::uint64_t, std::int64_t>, std::int64_t> forwarding_;
  std::map<std::uint64_t, std::int64_t> true_cell_;
};

}  // namespace

int main() {
  constexpr std::uint32_t kStores = 144;
  constexpr double kEpsilon = 5e-2;  // coarse on purpose: staleness visible
  LocationService service(kStores, kEpsilon, /*seed=*/99);

  std::printf("location stores : %u, quorums %s\n", kStores,
              service.system().name().c_str());
  std::printf("epsilon         : %.3e\n\n", service.system().epsilon());

  math::Rng rng(5);
  constexpr std::uint64_t kDevice = 1;
  constexpr int kMoves = 3000;
  math::Proportion found;
  math::OnlineStats hops;
  std::int64_t cell = 0;
  service.move_device(kDevice, cell);
  for (int m = 0; m < kMoves; ++m) {
    cell = static_cast<std::int64_t>(rng.below(10000));
    service.move_device(kDevice, cell);
    const auto [ok, h] = service.call(kDevice);
    found.add(ok);
    if (ok) hops.add(h);
  }
  std::printf("calls completed : %.2f%% (forwarding rescues stale reads)\n",
              100.0 * found.estimate());
  std::printf("forwarding hops : mean %.4f, max %.0f\n", hops.mean(),
              hops.max());

  // Availability comparison at heavy crash rates: the binding requirement.
  std::printf("\navailability with p = fraction of crashed stores:\n");
  const auto majority = quorum::ThresholdSystem::majority(kStores);
  std::printf("  %-6s %-22s %-22s\n", "p", "R(n,q) failure prob",
              "majority failure prob");
  for (double p : {0.3, 0.5, 0.6, 0.7}) {
    std::printf("  %-6.2f %-22.3e %-22.3e\n", p,
                service.system().failure_probability(p),
                majority.failure_probability(p));
  }
  std::printf(
      "\nThe paper's point: past p = 1/2 any strict system fails with\n"
      "probability >= p, while the probabilistic system still answers —\n"
      "and a stale answer is useful here, no answer is not.\n");
  return 0;
}

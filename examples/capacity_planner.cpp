// Capacity planner: size a probabilistic quorum deployment.
//
// Give it a universe size, a Byzantine budget and a consistency target and
// it solves for the three probabilistic constructions of the paper (exact
// epsilon, Section 6's procedure), prints their quality measures next to
// the strict alternatives, and flags which strict constructions are even
// feasible at that resilience.
//
// Usage: capacity_planner [n] [b] [epsilon]
//        defaults: n=400 b=40 epsilon=1e-3
#include <cstdio>
#include <cstdlib>
#include <string>

#include "core/epsilon.h"
#include "core/lower_bounds.h"
#include "core/random_subset_system.h"
#include "quorum/grid.h"
#include "quorum/threshold.h"

namespace {

void print_system(const char* role, const pqs::core::RandomSubsetSystem& s) {
  std::printf("  %-14s %-34s load %.3f  A=%u  eps=%.2e\n", role,
              s.name().c_str(), s.load(), s.fault_tolerance(), s.epsilon());
}

}  // namespace

int main(int argc, char** argv) {
  using namespace pqs;

  const std::uint32_t n = argc > 1 ? std::strtoul(argv[1], nullptr, 10) : 400;
  const std::uint32_t b = argc > 2 ? std::strtoul(argv[2], nullptr, 10) : 40;
  const double eps = argc > 3 ? std::strtod(argv[3], nullptr) : 1e-3;
  if (n < 2 || b >= n || eps <= 0.0 || eps >= 1.0) {
    std::fprintf(stderr, "usage: %s [n>=2] [b<n] [0<epsilon<1]\n", argv[0]);
    return 2;
  }

  std::printf("universe n=%u, Byzantine budget b=%u, target eps=%.1e\n\n", n,
              b, eps);

  std::printf("probabilistic constructions (exact epsilon):\n");
  print_system("benign", core::RandomSubsetSystem::intersecting(n, eps));
  if (core::min_q_dissemination(n, b, eps)) {
    print_system("dissemination",
                 core::RandomSubsetSystem::dissemination(n, b, eps));
  } else {
    std::printf("  %-14s infeasible at this (n, b, eps)\n", "dissemination");
  }
  if (core::min_q_masking(n, b, eps)) {
    print_system("masking", core::RandomSubsetSystem::masking(n, b, eps));
  } else {
    std::printf("  %-14s infeasible at this (n, b, eps)\n", "masking");
  }

  std::printf("\nstrict alternatives:\n");
  const auto majority = quorum::ThresholdSystem::majority(n);
  std::printf("  %-14s %-34s load %.3f  A=%u  (eps = 0)\n", "benign",
              majority.name().c_str(), majority.load(),
              majority.fault_tolerance());
  if (b <= core::strict_dissemination_max_b(n)) {
    const auto d = quorum::ThresholdSystem::dissemination(n, b);
    std::printf("  %-14s %-34s load %.3f  A=%u\n", "dissemination",
                d.name().c_str(), d.load(), d.fault_tolerance());
  } else {
    std::printf("  %-14s IMPOSSIBLE: b=%u exceeds floor((n-1)/3)=%lld\n",
                "dissemination", b,
                static_cast<long long>(core::strict_dissemination_max_b(n)));
  }
  if (b <= core::strict_masking_max_b(n)) {
    const auto m = quorum::ThresholdSystem::masking(n, b);
    std::printf("  %-14s %-34s load %.3f  A=%u\n", "masking",
                m.name().c_str(), m.load(), m.fault_tolerance());
  } else {
    std::printf("  %-14s IMPOSSIBLE: b=%u exceeds floor((n-1)/4)=%lld\n",
                "masking", b,
                static_cast<long long>(core::strict_masking_max_b(n)));
  }

  std::printf("\navailability (crash probability p -> failure probability):\n");
  const auto bench_system = core::RandomSubsetSystem::intersecting(n, eps);
  std::printf("  %-6s %-16s %-16s %-16s\n", "p", "probabilistic", "majority",
              "strict bound");
  for (double p : {0.2, 0.4, 0.5, 0.6, 0.7}) {
    std::printf("  %-6.2f %-16.3e %-16.3e %-16.3e\n", p,
                bench_system.failure_probability(p),
                majority.failure_probability(p),
                core::strict_failure_probability_lower_bound(n, p));
  }
  std::printf(
      "\nload floors: strict %.3f | probabilistic (Cor 3.12) %.3f | masking "
      "(Thm 5.5) %.3f\n",
      core::strict_load_lower_bound(n),
      core::probabilistic_load_floor(n, eps),
      core::probabilistic_masking_load_lower_bound(n, b, eps));
  return 0;
}

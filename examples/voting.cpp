// Electronic voting: country-wide voter-ID locking with masking quorums.
//
// The paper's first application (Section 1.1): the AT&T electronic voting
// system designed for Costa Rica. Each voter ID must be "locked"
// country-wide when presented at any of ~1000 voting stations, so that
// repeat voting is detected with high probability — even when some stations
// have been tampered with (Byzantine) and others have crashed.
//
// The lock is a replicated variable per voter ID over a (b, eps)-masking
// quorum system: a station first reads the lock through a quorum; if the ID
// is already locked the vote is rejected; otherwise it writes the lock and
// accepts. A single stale read lets one repeat vote slip with probability
// ~eps, but each *additional* attempt is another independent eps — repeat
// offenders are caught with virtual certainty, which is exactly the
// integrity bar the application needs.
#include <cstdio>
#include <memory>
#include <string>

#include "core/random_subset_system.h"
#include "math/rng.h"
#include "math/stats.h"
#include "replica/instant_cluster.h"
#include "replica/lock_service.h"

namespace {

using namespace pqs;

class VotingService {
 public:
  VotingService(std::uint32_t stations, std::uint32_t tampered,
                double target_epsilon, std::uint64_t seed)
      : system_(core::RandomSubsetSystem::masking(stations, tampered,
                                                  target_epsilon)) {
    replica::InstantCluster::Config cfg;
    cfg.quorums = std::make_shared<core::RandomSubsetSystem>(system_);
    cfg.mode = replica::ReadMode::kMasking;
    cfg.read_threshold = system_.read_threshold();
    cfg.seed = seed;
    // Tampered stations collude: they deny seeing any lock and try to push
    // a fabricated "unlocked" state.
    cluster_ = std::make_unique<replica::InstantCluster>(
        cfg, replica::FaultPlan::prefix(stations, tampered,
                                        replica::FaultMode::kCollude));
    locks_ = std::make_unique<replica::LockService>(*cluster_);
  }

  const core::RandomSubsetSystem& system() const { return system_; }

  // Returns true iff the vote is accepted: locking the voter ID country-
  // wide succeeds only when no quorum has recorded it yet.
  bool cast_vote(std::uint64_t voter_id) {
    return locks_->try_acquire(voter_id, /*owner=*/1) ==
           replica::LockService::Outcome::kAcquired;
  }

 private:
  core::RandomSubsetSystem system_;
  std::unique_ptr<replica::InstantCluster> cluster_;
  std::unique_ptr<replica::LockService> locks_;
};

}  // namespace

int main() {
  constexpr std::uint32_t kStations = 1000;  // "over 1000 voting stations"
  constexpr std::uint32_t kTampered = 30;    // bribed election officials
  constexpr double kEpsilon = 1e-3;

  VotingService service(kStations, kTampered, kEpsilon, /*seed=*/2026);
  std::printf("voting stations : %u (%u tampered/colluding)\n", kStations,
              kTampered);
  std::printf("lock quorums    : %s, read threshold k=%u\n",
              service.system().name().c_str(),
              service.system().read_threshold());
  std::printf("lock epsilon    : %.2e\n\n", service.system().epsilon());

  math::Rng rng(7);
  constexpr int kHonestVoters = 4000;
  constexpr int kCheaters = 50;
  constexpr int kAttemptsPerCheater = 5;

  int honest_accepted = 0;
  for (int v = 0; v < kHonestVoters; ++v) {
    if (service.cast_vote(1000000 + v)) ++honest_accepted;
  }

  int repeat_accepted = 0;
  int repeat_attempts = 0;
  int cheaters_with_any_success = 0;
  for (int c = 0; c < kCheaters; ++c) {
    const std::uint64_t id = 9000000 + c;
    bool slipped = false;
    (void)service.cast_vote(id);  // the first, legitimate vote
    for (int a = 0; a < kAttemptsPerCheater; ++a) {
      ++repeat_attempts;
      if (service.cast_vote(id)) {
        ++repeat_accepted;
        slipped = true;
      }
    }
    if (slipped) ++cheaters_with_any_success;
  }

  std::printf("honest voters   : %d/%d accepted (must be all)\n",
              honest_accepted, kHonestVoters);
  std::printf("repeat attempts : %d/%d slipped through (expected ~eps each)\n",
              repeat_accepted, repeat_attempts);
  std::printf("repeat offenders: %d/%d ever succeeded\n",
              cheaters_with_any_success, kCheaters);
  std::printf(
      "\nIntegrity bar (Section 1.1): large-scale repeat voting is "
      "prevented --\n%d tampered stations could not unlock IDs, and every "
      "repeat attempt\nwas an independent %.1e-probability event.\n",
      kTampered, service.system().epsilon());
  return honest_accepted == kHonestVoters ? 0 : 1;
}

// Quickstart: replicate a variable with an eps-intersecting quorum system.
//
//   1. Size the construction: smallest quorum with eps <= 1e-3 over 100
//      servers (Definition 3.13 / Theorem 3.16).
//   2. Inspect its quality measures: load, fault tolerance, failure
//      probability (Section 3.2).
//   3. Run the write/read protocol of Section 3.1 over the discrete-event
//      simulated network and check freshness.
//
// Build & run:  ./build/examples/quickstart
#include <cstdio>
#include <memory>

#include "core/random_subset_system.h"
#include "replica/sim_cluster.h"

int main() {
  using namespace pqs;

  // 1. The construction. R(n, q) with q chosen by the exact-epsilon solver.
  const auto system = core::RandomSubsetSystem::intersecting(
      /*n=*/100, /*target_epsilon=*/1e-3);
  std::printf("system          : %s\n", system.name().c_str());
  std::printf("quorum size     : %u of %u servers (l = %.2f)\n",
              system.quorum_size(), system.universe_size(), system.ell());
  std::printf("epsilon (exact) : %.3e   bound e^{-l^2}: %.3e\n",
              system.epsilon(), system.epsilon_bound());

  // 2. Quality measures (Definitions 3.3, 3.7, 3.8).
  std::printf("load            : %.3f  (threshold majority would be %.3f)\n",
              system.load(), 0.51);
  std::printf("fault tolerance : %u of %u servers may crash\n",
              system.fault_tolerance() - 1, system.universe_size());
  for (double p : {0.3, 0.5, 0.6, 0.7}) {
    std::printf("failure prob    : F_%.1f = %.3e\n", p,
                system.failure_probability(p));
  }

  // 3. The protocol over a lossy, jittery network.
  replica::SimCluster::Config cfg;
  cfg.quorums = std::make_shared<core::RandomSubsetSystem>(system);
  cfg.latency = {.base = 200, .jitter_mean = 100, .drop_probability = 0.01};
  cfg.seed = 42;
  replica::SimCluster cluster(cfg);

  const replica::VariableId kAccountBalance = 1;
  int fresh = 0;
  constexpr int kOps = 100;
  for (int i = 1; i <= kOps; ++i) {
    cluster.write_sync(kAccountBalance, 1000 + i);
    const auto read = cluster.read_sync(kAccountBalance);
    if (read.selection.has_value &&
        read.selection.record.value == 1000 + i) {
      ++fresh;
    }
  }
  std::printf(
      "\nprotocol run    : %d/%d non-concurrent reads returned the last "
      "write\n",
      fresh, kOps);
  std::printf("virtual time    : %.1f ms, %llu messages delivered\n",
              static_cast<double>(cluster.simulator().now()) / 1000.0,
              static_cast<unsigned long long>(
                  cluster.network().messages_delivered()));
  std::printf("\nTheorem 3.2: each read is fresh with probability >= %.4f.\n",
              1.0 - system.epsilon());
  return 0;
}

// The serving tier's length-prefixed binary wire protocol.
//
// Every message on the wire is one fixed-shape frame: a 4-byte length
// prefix (the byte count of everything after it) followed by a versioned
// header and the operation payload. v1 frames are exactly kFrameBytes
// long — GET/PUT/STATS requests and their responses all fit the same
// shape — so the length prefix exists for forward compatibility and,
// more importantly, as the first garbage rejection point: a decoder can
// condemn a byte stream after four bytes instead of waiting for a full
// header that will never arrive.
//
// Layout (all integers little-endian):
//
//   offset  size  field
//        0     4  body_len     == kBodyBytes for v1
//        4     2  magic        0x5150 ("PQ")
//        6     1  version      1
//        7     1  opcode       bits 0..5 the Op, 0x40 "found", 0x80 response
//        8     8  request_id   echoed verbatim in the response
//       16     8  key
//       24     8  value        PUT: value to write; GET response: the
//                              selected value; STATS response: ops served
//
// FrameDecoder is the incremental half: it owns a power-of-two ring
// buffer that socket reads land in directly (writable()/commit(), shaped
// for readv), and next() parses frames in place as bytes arrive — a
// frame split across any number of reads, or across the ring's wrap
// point, decodes byte-identically. Malformed input (bad length, magic,
// version, or opcode) poisons the decoder: the connection is the unit of
// failure, mirroring what the server does (close on protocol error).
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

namespace pqs::net {

enum class Op : std::uint8_t {
  kGet = 1,
  kPut = 2,
  kStats = 3,
};

// One decoded (or to-be-encoded) message, wire concerns stripped.
struct Frame {
  Op op = Op::kGet;
  bool response = false;
  bool found = false;  // GET response: a record was selected
  std::uint64_t request_id = 0;
  std::uint64_t key = 0;
  std::int64_t value = 0;
};

inline constexpr std::uint16_t kMagic = 0x5150;  // "PQ" on the wire
inline constexpr std::uint8_t kVersion = 1;
inline constexpr std::size_t kFrameBytes = 32;
inline constexpr std::size_t kBodyBytes = kFrameBytes - 4;
inline constexpr std::uint8_t kOpMask = 0x3f;
inline constexpr std::uint8_t kFoundBit = 0x40;
inline constexpr std::uint8_t kResponseBit = 0x80;

// Serializes `frame` into exactly kFrameBytes at `out`.
void encode_frame(const Frame& frame, unsigned char* out);

// Incremental zero-rebuffering frame parser over a ring of socket bytes.
class FrameDecoder {
 public:
  // Capacity is rounded up to a power of two and must hold at least one
  // frame; 4 KiB is plenty for the fixed v1 frames.
  explicit FrameDecoder(std::size_t capacity = 4096);

  struct Span {
    unsigned char* data = nullptr;
    std::size_t size = 0;
  };

  enum class Result {
    kFrame,     // `out` holds the next frame
    kNeedMore,  // the buffered prefix is a valid partial frame
    kError,     // the stream is condemned (error() says why)
  };

  std::size_t capacity() const { return buf_.size(); }
  std::size_t buffered_bytes() const {
    return static_cast<std::size_t>(tail_ - head_);
  }
  std::size_t free_bytes() const { return capacity() - buffered_bytes(); }

  // Exposes the writable region as up to two contiguous spans (two when
  // the free region wraps the ring edge) so a socket read can land bytes
  // in place; commit(n) publishes the n bytes the read produced.
  std::size_t writable(Span out[2]);
  void commit(std::size_t n);

  // Copy-in convenience for producers that already hold the bytes (the
  // client's reader, the fuzz tests). Returns how many bytes fit.
  std::size_t feed(const void* data, std::size_t n);

  // Parses the next complete frame out of the buffered bytes. After
  // kError every future call returns kError (the stream has no
  // recoverable frame boundary).
  Result next(Frame& out);

  // Human-readable reason after kError, nullptr otherwise.
  const char* error() const { return error_; }

 private:
  std::uint8_t peek(std::size_t offset) const {
    return buf_[(head_ + offset) & mask_];
  }
  void copy_out(unsigned char* dst, std::size_t offset, std::size_t n) const;

  std::vector<unsigned char> buf_;
  std::size_t mask_ = 0;
  // Monotone byte positions (index = pos & mask_), consumer head and
  // producer tail; single-threaded by contract (one decoder per
  // connection, driven by that connection's IO thread).
  std::uint64_t head_ = 0;
  std::uint64_t tail_ = 0;
  const char* error_ = nullptr;
};

}  // namespace pqs::net

#include "net/fault_injector.h"

namespace pqs::net {

const char* fault_action_name(FaultAction action) {
  switch (action) {
    case FaultAction::kNone: return "none";
    case FaultAction::kReset: return "reset";
    case FaultAction::kStall: return "stall";
    case FaultAction::kTruncate: return "truncate";
    case FaultAction::kDelay: return "delay";
  }
  return "?";
}

FaultInjector::FaultInjector(Config config)
    : config_(config), rng_(config.seed) {}

void FaultInjector::set_action(std::uint64_t conn_id, FaultAction action) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (action == FaultAction::kNone) {
    overrides_.erase(conn_id);
  } else {
    overrides_[conn_id] = action;
  }
}

FaultAction FaultInjector::on_response(std::uint64_t conn_id) {
  FaultAction action = FaultAction::kNone;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    const auto it = overrides_.find(conn_id);
    if (it != overrides_.end()) {
      action = it->second;
    } else if (config_.reset_prob > 0.0 && rng_.chance(config_.reset_prob)) {
      action = FaultAction::kReset;
    } else if (config_.stall_prob > 0.0 && rng_.chance(config_.stall_prob)) {
      action = FaultAction::kStall;
    } else if (config_.truncate_prob > 0.0 &&
               rng_.chance(config_.truncate_prob)) {
      action = FaultAction::kTruncate;
    } else if (config_.delay_prob > 0.0 && rng_.chance(config_.delay_prob)) {
      action = FaultAction::kDelay;
    }
  }
  switch (action) {
    case FaultAction::kReset: resets_.fetch_add(1); break;
    case FaultAction::kStall: stalls_.fetch_add(1); break;
    case FaultAction::kTruncate: truncates_.fetch_add(1); break;
    case FaultAction::kDelay: delays_.fetch_add(1); break;
    case FaultAction::kNone: break;
  }
  return action;
}

}  // namespace pqs::net

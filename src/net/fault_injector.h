// Deterministic connection-level fault injection for the TCP front end.
//
// The injector is a seam in KvServer's response path: every response about
// to be queued on a connection is first judged here, and the verdict can
// replace the normal flush with an adversarial one — an abrupt reset, a
// silent stall (slow-loris from the client's point of view), a frame
// truncated mid-byte followed by an orderly close, or a delayed flush.
// This is how the network-tier tests and the byzantine bench exercise the
// hardened client's deadline/retry/failover machinery against a *real*
// socket misbehaving, not a mock.
//
// Determinism contract: randomized decisions come from a dedicated
// math::Rng stream owned by the injector (seeded from Config::seed) —
// never from any quorum or churn stream, so enabling injection cannot
// perturb a single quorum draw. The stream is consumed in connection
// response order, which is deterministic for a single pipelined client
// connection. Tests that need to target one specific connection bypass
// the rng entirely with set_action(conn_id, action): explicit overrides
// draw nothing.
#pragma once

#include <atomic>
#include <cstdint>
#include <mutex>
#include <unordered_map>

#include "math/rng.h"

namespace pqs::net {

enum class FaultAction : std::uint8_t {
  kNone = 0,
  kReset,     // SO_LINGER(0) + close: the peer sees ECONNRESET
  kStall,     // queue the response but never flush it (slow-loris)
  kTruncate,  // flush half a frame, then close in an orderly way
  kDelay,     // flush the response after Config::delay_ns
};

const char* fault_action_name(FaultAction action);

class FaultInjector {
 public:
  struct Config {
    std::uint64_t seed = 0xfa017ec7ULL;
    // Per-response probabilities for the randomized mode; evaluated in
    // this order, at most one fires. All zero (the default) makes the
    // injector a no-op unless an override targets the connection.
    double reset_prob = 0.0;
    double stall_prob = 0.0;
    double truncate_prob = 0.0;
    double delay_prob = 0.0;
    std::uint64_t delay_ns = 2'000'000;  // kDelay flush deferral
  };

  FaultInjector() : FaultInjector(Config{}) {}
  explicit FaultInjector(Config config);

  // Pins the verdict for every response on `conn_id` (server-side
  // connection ids are assigned in accept order, starting at 1). An
  // override consumes no rng draws. kNone clears back to randomized mode
  // for that connection. Thread-safe.
  void set_action(std::uint64_t conn_id, FaultAction action);

  // The verdict for the next response on `conn_id`: the override if one
  // is set, otherwise one draw from the injector's own rng stream.
  // Thread-safe (serialized — the stream must stay well-defined when IO
  // threads race).
  FaultAction on_response(std::uint64_t conn_id);

  std::uint64_t delay_ns() const { return config_.delay_ns; }

  // How many times each action actually fired (kNone excluded).
  std::uint64_t resets() const { return resets_.load(); }
  std::uint64_t stalls() const { return stalls_.load(); }
  std::uint64_t truncates() const { return truncates_.load(); }
  std::uint64_t delays() const { return delays_.load(); }

 private:
  Config config_;
  std::mutex mutex_;
  math::Rng rng_;
  std::unordered_map<std::uint64_t, FaultAction> overrides_;
  std::atomic<std::uint64_t> resets_{0};
  std::atomic<std::uint64_t> stalls_{0};
  std::atomic<std::uint64_t> truncates_{0};
  std::atomic<std::uint64_t> delays_{0};
};

}  // namespace pqs::net

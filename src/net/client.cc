#include "net/client.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>

#include "util/require.h"

namespace pqs::net {

namespace {

void write_all(int fd, const unsigned char* data, std::size_t n) {
  std::size_t done = 0;
  while (done < n) {
    const ssize_t w = ::send(fd, data + done, n - done, MSG_NOSIGNAL);
    if (w < 0) {
      if (errno == EINTR) continue;
      PQS_REQUIRE(false, "client send failed");
    }
    done += static_cast<std::size_t>(w);
  }
}

}  // namespace

Client::Client(Config config) : config_(std::move(config)) {
  PQS_REQUIRE(config_.connections >= 1, "client needs connections");
  PQS_REQUIRE(config_.window >= 1, "client needs a pipeline window");
}

Client::~Client() { stop(); }

void Client::start() {
  PQS_REQUIRE(!running_, "client already running");
  epoch_ = std::chrono::steady_clock::now();
  conns_.clear();
  for (std::uint32_t i = 0; i < config_.connections; ++i) {
    auto conn = std::make_unique<Conn>();
    conn->fd = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
    PQS_REQUIRE(conn->fd >= 0, "client socket() failed");
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(config_.port);
    PQS_REQUIRE(
        ::inet_pton(AF_INET, config_.host.c_str(), &addr.sin_addr) == 1,
        "bad client host");
    PQS_REQUIRE(::connect(conn->fd, reinterpret_cast<sockaddr*>(&addr),
                          sizeof(addr)) == 0,
                "client connect() failed");
    const int one = 1;
    ::setsockopt(conn->fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    conn->sendbuf.reserve(config_.flush_bytes + kFrameBytes);
    conns_.push_back(std::move(conn));
  }
  for (auto& conn : conns_) {
    Conn* c = conn.get();
    c->reader = std::thread([this, c] { reader_loop(*c); });
  }
  running_ = true;
}

std::uint64_t Client::now_ns() const {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now() - epoch_)
          .count());
}

void Client::send(std::uint64_t key, std::int64_t value, bool is_read,
                  std::uint64_t scheduled_ns) {
  PQS_REQUIRE(running_, "client not running");
  Conn& conn = *conns_[next_conn_++ % conns_.size()];
  PQS_REQUIRE(!conn.failed.load(std::memory_order_acquire),
              "client connection failed (server closed it?)");
  // Window full: push what we have and wait for responses to free slots.
  // The spin is measured — an open-loop driver's schedule keeps slipping,
  // so the stall shows up as latency, never as omitted load.
  if (conn.outstanding.load(std::memory_order_acquire) >= config_.window) {
    flush_conn(conn);
    while (conn.outstanding.load(std::memory_order_acquire) >=
           config_.window) {
      std::this_thread::yield();
    }
  }
  Frame frame;
  frame.op = is_read ? Op::kGet : Op::kPut;
  frame.request_id = next_id_++;
  frame.key = key;
  frame.value = value;
  {
    std::lock_guard<std::mutex> lock(conn.pending_mutex);
    conn.pending.emplace(frame.request_id, scheduled_ns);
  }
  conn.outstanding.fetch_add(1, std::memory_order_acq_rel);
  const std::size_t used = conn.sendbuf.size();
  conn.sendbuf.resize(used + kFrameBytes);
  encode_frame(frame, conn.sendbuf.data() + used);
  ++sent_;
  if (conn.sendbuf.size() >= config_.flush_bytes) flush_conn(conn);
}

void Client::flush_conn(Conn& conn) {
  if (conn.sendbuf.empty()) return;
  write_all(conn.fd, conn.sendbuf.data(), conn.sendbuf.size());
  conn.sendbuf.clear();
}

void Client::flush() {
  for (auto& conn : conns_) flush_conn(*conn);
}

void Client::drain() {
  flush();
  for (auto& conn : conns_) {
    while (conn->outstanding.load(std::memory_order_acquire) != 0) {
      PQS_REQUIRE(!conn->failed.load(std::memory_order_acquire),
                  "client connection failed while draining");
      std::this_thread::yield();
    }
  }
}

void Client::stop() {
  if (!running_) return;
  drain();
  for (auto& conn : conns_) {
    // Readers block in recv(); a shutdown wakes them with EOF.
    ::shutdown(conn->fd, SHUT_RDWR);
  }
  for (auto& conn : conns_) {
    if (conn->reader.joinable()) conn->reader.join();
    ::close(conn->fd);
  }
  running_ = false;
}

void Client::reader_loop(Conn& conn) {
  FrameDecoder decoder(1 << 16);
  std::vector<unsigned char> buf(1 << 16);
  Frame frame;
  for (;;) {
    const ssize_t n = ::recv(conn.fd, buf.data(), buf.size(), 0);
    if (n < 0) {
      if (errno == EINTR) continue;
      conn.failed.store(true, std::memory_order_release);
      return;
    }
    if (n == 0) return;  // shutdown (ours) or server close
    std::size_t offset = 0;
    while (offset < static_cast<std::size_t>(n)) {
      offset += decoder.feed(buf.data() + offset,
                             static_cast<std::size_t>(n) - offset);
      for (;;) {
        const FrameDecoder::Result r = decoder.next(frame);
        if (r == FrameDecoder::Result::kNeedMore) break;
        if (r == FrameDecoder::Result::kError) {
          conn.failed.store(true, std::memory_order_release);
          return;
        }
        std::uint64_t scheduled = 0;
        bool known = false;
        {
          std::lock_guard<std::mutex> lock(conn.pending_mutex);
          const auto it = conn.pending.find(frame.request_id);
          if (it != conn.pending.end()) {
            scheduled = it->second;
            known = true;
            conn.pending.erase(it);
          }
        }
        if (!known) {  // response to a request we never sent
          conn.failed.store(true, std::memory_order_release);
          return;
        }
        const std::uint64_t now = now_ns();
        conn.histogram.record(now > scheduled ? now - scheduled : 0);
        ++conn.received;
        if (frame.op == Op::kGet) {
          if (frame.found) {
            ++conn.reads_found;
          } else {
            ++conn.reads_empty;
          }
        }
        conn.outstanding.fetch_sub(1, std::memory_order_acq_rel);
      }
    }
  }
}

std::uint64_t Client::received() const {
  std::uint64_t total = 0;
  for (const auto& conn : conns_) total += conn->received;
  return total;
}

std::uint64_t Client::reads_found() const {
  std::uint64_t total = 0;
  for (const auto& conn : conns_) total += conn->reads_found;
  return total;
}

std::uint64_t Client::reads_empty() const {
  std::uint64_t total = 0;
  for (const auto& conn : conns_) total += conn->reads_empty;
  return total;
}

stats::LatencyHistogram Client::histogram() const {
  stats::LatencyHistogram merged;
  for (const auto& conn : conns_) merged.merge(conn->histogram);
  return merged;
}

}  // namespace pqs::net

#include "net/client.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>

#include "util/require.h"

namespace pqs::net {

Client::Client(Config config)
    : config_(std::move(config)), retry_rng_(config_.retry_seed) {
  PQS_REQUIRE(config_.connections >= 1, "client needs connections");
  PQS_REQUIRE(config_.window >= 1, "client needs a pipeline window");
  PQS_REQUIRE(config_.connect_attempts >= 1, "client needs connect attempts");
}

Client::~Client() { stop(); }

void Client::backoff_sleep(std::uint64_t base_ns, std::uint64_t cap_ns,
                           std::uint32_t attempt) {
  // Capped exponential with full-bottom jitter: sleep in [d/2, d] where
  // d = min(cap, base * 2^attempt). Jitter decorrelates concurrent
  // clients; the dedicated rng stream keeps it off the quorum draws.
  const std::uint32_t shift = std::min<std::uint32_t>(attempt, 32);
  std::uint64_t delay = base_ns << shift;
  if (delay > cap_ns || (delay >> shift) != base_ns) delay = cap_ns;
  const std::uint64_t half = delay / 2;
  const std::uint64_t jittered = half + retry_rng_.below(half + 1);
  std::this_thread::sleep_for(std::chrono::nanoseconds(jittered));
}

int Client::connect_with_backoff() {
  for (std::uint32_t attempt = 0; attempt < config_.connect_attempts;
       ++attempt) {
    if (attempt > 0) {
      ++connect_retries_;
      backoff_sleep(config_.connect_backoff_ns,
                    config_.connect_backoff_cap_ns, attempt - 1);
    }
    const int fd = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
    PQS_REQUIRE(fd >= 0, "client socket() failed");
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(config_.port);
    PQS_REQUIRE(
        ::inet_pton(AF_INET, config_.host.c_str(), &addr.sin_addr) == 1,
        "bad client host");
    if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) ==
        0) {
      const int one = 1;
      ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
      return fd;
    }
    ::close(fd);
  }
  return -1;
}

void Client::start() {
  PQS_REQUIRE(!running_, "client already running");
  epoch_ = std::chrono::steady_clock::now();
  conns_.clear();
  for (std::uint32_t i = 0; i < config_.connections; ++i) {
    auto conn = std::make_unique<Conn>();
    conn->fd = connect_with_backoff();
    PQS_REQUIRE(conn->fd >= 0, "client connect() failed after retries");
    conn->sendbuf.reserve(config_.flush_bytes + kFrameBytes);
    conns_.push_back(std::move(conn));
  }
  for (auto& conn : conns_) {
    Conn* c = conn.get();
    c->reader = std::thread([this, c] { reader_loop(*c); });
  }
  running_ = true;
}

std::uint64_t Client::now_ns() const {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now() - epoch_)
          .count());
}

std::uint32_t Client::pick_usable(std::uint32_t start_index, bool* failover) {
  for (std::uint32_t i = 0; i < conns_.size(); ++i) {
    const std::uint32_t idx =
        (start_index + i) % static_cast<std::uint32_t>(conns_.size());
    Conn& conn = *conns_[idx];
    if (!conn.failed.load(std::memory_order_acquire) ||
        reconnect(conn, idx)) {
      if (i > 0 && failover != nullptr) *failover = true;
      return idx;
    }
  }
  PQS_REQUIRE(false, "every client connection failed and reconnect failed");
  return 0;
}

void Client::enqueue_op(Conn& conn, std::uint32_t index,
                        const PendingOp& op) {
  Frame frame;
  frame.op = op.is_read ? Op::kGet : Op::kPut;
  frame.request_id = next_id_++;
  frame.key = op.key;
  frame.value = op.value;
  PendingOp stored = op;
  stored.origin = index;
  {
    std::lock_guard<std::mutex> lock(conn.pending_mutex);
    conn.pending.emplace(frame.request_id, stored);
  }
  conn.outstanding.fetch_add(1, std::memory_order_acq_rel);
  const std::size_t used = conn.sendbuf.size();
  conn.sendbuf.resize(used + kFrameBytes);
  encode_frame(frame, conn.sendbuf.data() + used);
}

void Client::send(std::uint64_t key, std::int64_t value, bool is_read,
                  std::uint64_t scheduled_ns) {
  PQS_REQUIRE(running_, "client not running");
  const std::uint32_t start =
      next_conn_++ % static_cast<std::uint32_t>(conns_.size());
  for (;;) {
    const std::uint32_t idx = pick_usable(start, nullptr);
    Conn& conn = *conns_[idx];
    // Window full: push what we have and wait for responses to free
    // slots. The spin is measured — an open-loop driver's schedule keeps
    // slipping, so the stall shows up as latency, never as omitted load.
    // With deadlines armed the spin also reaps expired requests, which is
    // what lets the driver escape a stalled connection.
    if (conn.outstanding.load(std::memory_order_acquire) >= config_.window) {
      flush_conn(conn);
      while (conn.outstanding.load(std::memory_order_acquire) >=
                 config_.window &&
             !conn.failed.load(std::memory_order_acquire)) {
        if (deadlines_armed()) reap_expired();
        std::this_thread::yield();
      }
      if (conn.failed.load(std::memory_order_acquire)) continue;  // re-pick
    }
    PendingOp op;
    op.scheduled_ns = scheduled_ns;
    op.deadline_ns =
        deadlines_armed() ? now_ns() + config_.request_timeout_ns : 0;
    op.key = key;
    op.value = value;
    op.is_read = is_read;
    op.attempts = 1;
    enqueue_op(conn, idx, op);
    ++sent_;
    if (conn.sendbuf.size() >= config_.flush_bytes) flush_conn(conn);
    return;
  }
}

void Client::flush_conn(Conn& conn) {
  if (conn.sendbuf.empty()) return;
  std::size_t done = 0;
  while (done < conn.sendbuf.size()) {
    const ssize_t w = ::send(conn.fd, conn.sendbuf.data() + done,
                             conn.sendbuf.size() - done, MSG_NOSIGNAL);
    if (w < 0) {
      if (errno == EINTR) continue;
      // The connection is gone. With deadlines armed the pending entries
      // are recovered by reconnect/reap; without them this is fatal, as
      // it always was.
      conn.failed.store(true, std::memory_order_release);
      conn.sendbuf.clear();
      PQS_REQUIRE(deadlines_armed(), "client send failed");
      return;
    }
    done += static_cast<std::size_t>(w);
  }
  conn.sendbuf.clear();
}

void Client::flush() {
  for (auto& conn : conns_) flush_conn(*conn);
}

bool Client::reconnect(Conn& conn, std::uint32_t index) {
  // Driver-thread-only. The reader may still be blocked in recv() when
  // the *driver* discovered the failure (send error); shutdown wakes it.
  if (conn.fd >= 0) ::shutdown(conn.fd, SHUT_RDWR);
  if (conn.reader.joinable()) conn.reader.join();
  if (conn.fd >= 0) ::close(conn.fd);
  conn.fd = -1;
  // Salvage in-flight requests: the server may or may not have processed
  // them, but their responses are unreachable now. Retrying is
  // at-least-once delivery, which is the right trade for an idempotent
  // KV workload.
  std::vector<PendingOp> orphans;
  {
    std::lock_guard<std::mutex> lock(conn.pending_mutex);
    orphans.reserve(conn.pending.size());
    for (auto& [id, op] : conn.pending) orphans.push_back(op);
    conn.pending.clear();
  }
  conn.outstanding.store(0, std::memory_order_release);
  conn.sendbuf.clear();
  PQS_REQUIRE(deadlines_armed() || orphans.empty(),
              "client connection failed with requests in flight "
              "(arm request_timeout_ns for retries)");
  const int fd = connect_with_backoff();
  if (fd < 0) return false;  // stays failed; caller fails over
  conn.fd = fd;
  conn.failed.store(false, std::memory_order_release);
  conn.reader = std::thread([this, &conn] { reader_loop(conn); });
  ++reconnects_;
  for (const PendingOp& op : orphans) {
    if (op.attempts > config_.max_retries) {
      ++abandoned_;
      continue;
    }
    ++retries_;
    PendingOp retry = op;
    ++retry.attempts;
    retry.deadline_ns = now_ns() + config_.request_timeout_ns;
    enqueue_op(conn, index, retry);
  }
  flush_conn(conn);
  return true;
}

void Client::reap_expired() {
  if (!deadlines_armed()) return;
  const std::uint64_t now = now_ns();
  std::vector<PendingOp> expired;
  for (auto& conn : conns_) {
    std::lock_guard<std::mutex> lock(conn->pending_mutex);
    for (auto it = conn->pending.begin(); it != conn->pending.end();) {
      if (it->second.deadline_ns <= now) {
        expired.push_back(it->second);
        it = conn->pending.erase(it);
        conn->outstanding.fetch_sub(1, std::memory_order_acq_rel);
      } else {
        ++it;
      }
    }
  }
  for (const PendingOp& op : expired) {
    ++timeouts_;
    if (op.attempts > config_.max_retries) {
      ++abandoned_;
      continue;
    }
    ++retries_;
    backoff_sleep(config_.retry_backoff_ns, config_.retry_backoff_cap_ns,
                  op.attempts - 1);
    // Prefer a different connection: the one that timed out is suspect.
    bool failover = false;
    const std::uint32_t idx = pick_usable(op.origin + 1, &failover);
    if (idx != op.origin) ++failovers_;
    PendingOp retry = op;
    ++retry.attempts;
    retry.deadline_ns = now_ns() + config_.request_timeout_ns;
    enqueue_op(*conns_[idx], idx, retry);
    flush_conn(*conns_[idx]);  // retries skip coalescing
  }
}

void Client::drain() {
  flush();
  // One global in-flight count, not a per-connection sweep: a deadline
  // reap fails a request over to the *next* usable connection, which
  // wraps — a retry can land on a connection this loop already saw, so
  // only all-connections-simultaneously-zero means drained.
  for (;;) {
    std::uint64_t in_flight = 0;
    for (auto& conn : conns_) {
      in_flight += conn->outstanding.load(std::memory_order_acquire);
      PQS_REQUIRE(deadlines_armed() ||
                      !conn->failed.load(std::memory_order_acquire),
                  "client connection failed while draining");
    }
    if (in_flight == 0) return;
    if (deadlines_armed()) {
      // Deadline recovery keeps the drain live: expired requests are
      // retried elsewhere or abandoned, so a dead connection cannot
      // wedge shutdown.
      reap_expired();
    }
    std::this_thread::yield();
  }
}

void Client::stop() {
  if (!running_) return;
  drain();
  for (auto& conn : conns_) {
    // Readers block in recv(); a shutdown wakes them with EOF.
    if (conn->fd >= 0) ::shutdown(conn->fd, SHUT_RDWR);
  }
  for (auto& conn : conns_) {
    if (conn->reader.joinable()) conn->reader.join();
    if (conn->fd >= 0) ::close(conn->fd);
  }
  running_ = false;
}

void Client::reader_loop(Conn& conn) {
  FrameDecoder decoder(1 << 16);
  std::vector<unsigned char> buf(1 << 16);
  Frame frame;
  for (;;) {
    const ssize_t n = ::recv(conn.fd, buf.data(), buf.size(), 0);
    if (n < 0) {
      if (errno == EINTR) continue;
      conn.failed.store(true, std::memory_order_release);
      return;
    }
    if (n == 0) {
      // EOF with requests still in flight means the server (or an
      // injected fault) closed on us — flag it so the driver reconnects.
      // A clean EOF during stop() leaves nothing pending.
      bool in_flight;
      {
        std::lock_guard<std::mutex> lock(conn.pending_mutex);
        in_flight = !conn.pending.empty();
      }
      if (in_flight) conn.failed.store(true, std::memory_order_release);
      return;
    }
    std::size_t offset = 0;
    while (offset < static_cast<std::size_t>(n)) {
      offset += decoder.feed(buf.data() + offset,
                             static_cast<std::size_t>(n) - offset);
      for (;;) {
        const FrameDecoder::Result r = decoder.next(frame);
        if (r == FrameDecoder::Result::kNeedMore) break;
        if (r == FrameDecoder::Result::kError) {
          conn.failed.store(true, std::memory_order_release);
          return;
        }
        std::uint64_t scheduled = 0;
        bool known = false;
        {
          std::lock_guard<std::mutex> lock(conn.pending_mutex);
          const auto it = conn.pending.find(frame.request_id);
          if (it != conn.pending.end()) {
            scheduled = it->second.scheduled_ns;
            known = true;
            conn.pending.erase(it);
          }
        }
        if (!known) {
          // With deadlines armed this is a response that lost the race
          // against its own timeout (the request was retried or
          // abandoned) — count it and move on. Without deadlines an
          // unknown id is a protocol violation, as before.
          if (deadlines_armed()) {
            conn.late_responses.fetch_add(1, std::memory_order_relaxed);
            continue;
          }
          conn.failed.store(true, std::memory_order_release);
          return;
        }
        const std::uint64_t now = now_ns();
        conn.histogram.record(now > scheduled ? now - scheduled : 0);
        ++conn.received;
        if (frame.op == Op::kGet) {
          if (frame.found) {
            ++conn.reads_found;
          } else {
            ++conn.reads_empty;
          }
        }
        conn.outstanding.fetch_sub(1, std::memory_order_acq_rel);
      }
    }
  }
}

std::uint64_t Client::received() const {
  std::uint64_t total = 0;
  for (const auto& conn : conns_) total += conn->received;
  return total;
}

std::uint64_t Client::reads_found() const {
  std::uint64_t total = 0;
  for (const auto& conn : conns_) total += conn->reads_found;
  return total;
}

std::uint64_t Client::reads_empty() const {
  std::uint64_t total = 0;
  for (const auto& conn : conns_) total += conn->reads_empty;
  return total;
}

stats::LatencyHistogram Client::histogram() const {
  stats::LatencyHistogram merged;
  for (const auto& conn : conns_) merged.merge(conn->histogram);
  return merged;
}

ClientStats Client::stats() const {
  ClientStats s;
  s.timeouts = timeouts_;
  s.retries = retries_;
  s.failovers = failovers_;
  s.reconnects = reconnects_;
  s.abandoned = abandoned_;
  s.connect_retries = connect_retries_;
  for (const auto& conn : conns_) {
    s.late_responses +=
        conn->late_responses.load(std::memory_order_relaxed);
  }
  return s;
}

}  // namespace pqs::net

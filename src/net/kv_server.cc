#include "net/kv_server.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/epoll.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <sys/uio.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "util/require.h"

namespace pqs::net {

namespace {

void set_nonblocking(int fd) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  PQS_REQUIRE(flags >= 0, "fcntl(F_GETFL) failed");
  PQS_REQUIRE(::fcntl(fd, F_SETFL, flags | O_NONBLOCK) == 0,
              "fcntl(F_SETFL) failed");
}

void set_nodelay(int fd) {
  const int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
}

}  // namespace

KvServer::KvServer(Config config, serve::KvService& service)
    : config_(std::move(config)), service_(service) {
  PQS_REQUIRE(config_.io_threads >= 1, "server needs IO threads");
  PQS_REQUIRE(config_.decoder_capacity >= kFrameBytes,
              "decoder ring must hold a frame");
}

KvServer::~KvServer() { stop(); }

void KvServer::start() {
  PQS_REQUIRE(!running_, "server already running");
  PQS_REQUIRE(!service_.running(),
              "start the server before the service (completion hook)");

  listen_fd_ = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
  PQS_REQUIRE(listen_fd_ >= 0, "socket() failed");
  const int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(config_.port);
  PQS_REQUIRE(
      ::inet_pton(AF_INET, config_.bind_address.c_str(), &addr.sin_addr) == 1,
      "bad bind address");
  PQS_REQUIRE(::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr),
                     sizeof(addr)) == 0,
              "bind() failed");
  PQS_REQUIRE(::listen(listen_fd_, config_.backlog) == 0, "listen() failed");
  set_nonblocking(listen_fd_);

  sockaddr_in bound{};
  socklen_t bound_len = sizeof(bound);
  PQS_REQUIRE(::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&bound),
                            &bound_len) == 0,
              "getsockname() failed");
  port_ = ntohs(bound.sin_port);

  service_.set_completion(
      [this](const serve::Completion& done) { on_complete(done); });

  loops_.clear();
  for (std::uint32_t i = 0; i < config_.io_threads; ++i) {
    loops_.push_back(std::make_unique<EventLoop>());
  }
  // The acceptor lives on loop 0; connections are dealt round-robin.
  loops_[0]->add_fd(listen_fd_, EPOLLIN, [this](std::uint32_t) {
    accept_ready();
  });
  io_threads_.reserve(loops_.size());
  for (auto& loop : loops_) {
    io_threads_.emplace_back([&loop] { loop->run(); });
  }
  running_ = true;
}

void KvServer::stop() {
  if (!running_) return;
  PQS_REQUIRE(!service_.running(),
              "stop the service before the server (in-flight completions)");
  for (auto& loop : loops_) loop->stop();
  for (auto& t : io_threads_) t.join();
  io_threads_.clear();
  {
    std::unique_lock<std::shared_mutex> lock(conns_mutex_);
    for (auto& [id, conn] : conns_) {
      // Drain queued replies before closing: a completion that raced the
      // final dispatch round has its bytes buffered (the loops drain
      // posted flush tasks on exit), so pushing the residue here means a
      // client that saw its request accepted gets its response.
      // Stalled connections stay stalled — that is the injected fault.
      if (!conn->closed.load(std::memory_order_acquire) &&
          !conn->stalled.load(std::memory_order_acquire)) {
        flush_remaining(*conn);
      }
      conn->closed.store(true, std::memory_order_release);
      ::close(conn->fd);
    }
    conns_.clear();
  }
  loops_.clear();
  ::close(listen_fd_);
  listen_fd_ = -1;
  service_.set_completion(nullptr);
  running_ = false;
}

void KvServer::accept_ready() {
  for (;;) {
    const int fd =
        ::accept4(listen_fd_, nullptr, nullptr, SOCK_NONBLOCK | SOCK_CLOEXEC);
    if (fd < 0) {
      if (errno == EAGAIN || errno == EWOULDBLOCK) return;
      if (errno == EINTR || errno == ECONNABORTED) continue;
      return;  // transient accept failure; the listener stays armed
    }
    set_nodelay(fd);
    auto conn = std::make_shared<Connection>(next_conn_id_++, fd,
                                             config_.decoder_capacity);
    EventLoop* loop = loops_[next_loop_++ % loops_.size()].get();
    conn->loop = loop;
    {
      std::unique_lock<std::shared_mutex> lock(conns_mutex_);
      conns_.emplace(conn->id, conn);
    }
    connections_accepted_.fetch_add(1, std::memory_order_relaxed);
    // epoll_ctl is thread-safe, so the acceptor can register the fd on
    // the owning loop's epoll directly; all subsequent events for it
    // fire on that loop's thread.
    loop->add_fd(fd, EPOLLIN, [this, conn](std::uint32_t events) {
      handle_io(conn, events);
    });
  }
}

void KvServer::handle_io(const std::shared_ptr<Connection>& conn,
                         std::uint32_t events) {
  if (conn->closed.load(std::memory_order_acquire)) return;
  if ((events & (EPOLLHUP | EPOLLERR)) != 0) {
    close_connection(conn);
    return;
  }
  if ((events & EPOLLOUT) != 0) try_write(conn);
  if ((events & EPOLLIN) != 0) drain_input(conn);
}

void KvServer::drain_input(const std::shared_ptr<Connection>& conn) {
  // Edge-triggered: read until EAGAIN (or close), parsing frames after
  // every chunk so the decoder ring can never fill while making progress
  // (a partial frame is at most kFrameBytes - 1 buffered bytes).
  for (;;) {
    FrameDecoder::Span spans[2];
    const std::size_t span_count = conn->decoder.writable(spans);
    if (span_count == 0) {
      // Can only happen if a peer streams garbage that never parses; the
      // decoder will condemn it below on the next frame boundary.
      close_connection(conn);
      return;
    }
    iovec iov[2];
    for (std::size_t s = 0; s < span_count; ++s) {
      iov[s].iov_base = spans[s].data;
      iov[s].iov_len = spans[s].size;
    }
    const ssize_t n = ::readv(conn->fd, iov, static_cast<int>(span_count));
    if (n < 0) {
      if (errno == EAGAIN || errno == EWOULDBLOCK) return;
      if (errno == EINTR) continue;
      close_connection(conn);
      return;
    }
    if (n == 0) {  // orderly peer close
      close_connection(conn);
      return;
    }
    conn->decoder.commit(static_cast<std::size_t>(n));
    Frame frame;
    for (;;) {
      const FrameDecoder::Result r = conn->decoder.next(frame);
      if (r == FrameDecoder::Result::kNeedMore) break;
      if (r == FrameDecoder::Result::kError) {
        protocol_errors_.fetch_add(1, std::memory_order_relaxed);
        close_connection(conn);
        return;
      }
      submit_frame(conn, frame);
      if (conn->closed.load(std::memory_order_acquire)) return;
    }
  }
}

void KvServer::submit_frame(const std::shared_ptr<Connection>& conn,
                            const Frame& frame) {
  if (frame.response) {  // clients must not send response frames
    protocol_errors_.fetch_add(1, std::memory_order_relaxed);
    close_connection(conn);
    return;
  }
  if (frame.op == Op::kStats) {
    // Answered inline from the IO thread: server-level counters, no
    // service round trip (and no ordering slot in any shard ring).
    Frame reply;
    reply.op = Op::kStats;
    reply.response = true;
    reply.found = true;
    reply.request_id = frame.request_id;
    reply.key = connections_accepted();
    reply.value = static_cast<std::int64_t>(ops_submitted());
    stats_served_.fetch_add(1, std::memory_order_relaxed);
    enqueue_response(conn, reply);
    return;
  }
  serve::Request req;
  req.key = frame.key;
  req.value = frame.value;
  req.scheduled_ns = service_.now_ns();
  req.ctx = conn->id;
  req.request_id = frame.request_id;
  req.is_read = frame.op == Op::kGet;
  req.wants_reply = true;
  ops_submitted_.fetch_add(1, std::memory_order_relaxed);
  // A full shard ring spins here: this IO thread stops reading, the
  // kernel receive buffer fills, and TCP flow control is the
  // backpressure the client sees.
  service_.submit(req);
}

void KvServer::on_complete(const serve::Completion& done) {
  const std::shared_ptr<Connection> conn = find_connection(done.ctx);
  if (conn == nullptr) return;  // connection closed mid-flight
  Frame reply;
  reply.op = done.is_read ? Op::kGet : Op::kPut;
  reply.response = true;
  reply.found = done.found;
  reply.request_id = done.request_id;
  reply.key = done.key;
  reply.value = done.value;
  enqueue_response(conn, reply);
}

void KvServer::enqueue_response(const std::shared_ptr<Connection>& conn,
                                const Frame& frame) {
  if (conn->closed.load(std::memory_order_acquire)) return;
  // Fault-injection seam: the injector's verdict can replace the normal
  // flush. Everything socket-touching still happens on the owning IO
  // thread — the verdict only changes *which* task gets posted.
  FaultAction action = FaultAction::kNone;
  if (config_.fault_injector != nullptr) {
    action = config_.fault_injector->on_response(conn->id);
  }
  if (action == FaultAction::kReset) {
    conn->loop->post([this, conn] { reset_connection(conn); });
    return;
  }
  unsigned char wire[kFrameBytes];
  encode_frame(frame, wire);
  const std::size_t bytes =
      action == FaultAction::kTruncate ? kFrameBytes / 2 : kFrameBytes;
  {
    std::lock_guard<std::mutex> lock(conn->out_mutex);
    conn->out.insert(conn->out.end(), wire, wire + bytes);
  }
  if (action == FaultAction::kStall) {
    // Slow-loris: the bytes sit in the buffer and no flush is ever
    // posted. The connection stays open and silent.
    conn->stalled.store(true, std::memory_order_release);
    return;
  }
  if (action == FaultAction::kTruncate) {
    // Push the half frame, then close in an orderly way: the peer sees a
    // partial frame followed by EOF.
    conn->loop->post([this, conn] {
      try_write(conn);
      close_connection(conn);
    });
    return;
  }
  if (conn->stalled.load(std::memory_order_acquire)) return;
  // Collapse a burst of completions into one flush task on the owning IO
  // thread — the only thread that ever writes to the socket.
  if (!conn->flush_pending.exchange(true, std::memory_order_acq_rel)) {
    auto flush = [this, conn] {
      conn->flush_pending.store(false, std::memory_order_release);
      try_write(conn);
    };
    if (action == FaultAction::kDelay) {
      conn->loop->post_after(config_.fault_injector->delay_ns(),
                             std::move(flush));
    } else {
      conn->loop->post(std::move(flush));
    }
  }
}

void KvServer::try_write(const std::shared_ptr<Connection>& conn) {
  if (conn->closed.load(std::memory_order_acquire)) return;
  std::lock_guard<std::mutex> lock(conn->out_mutex);
  while (conn->out_offset < conn->out.size()) {
    const ssize_t n =
        ::send(conn->fd, conn->out.data() + conn->out_offset,
               conn->out.size() - conn->out_offset, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) {
        if (!conn->want_write) {
          conn->want_write = true;
          conn->loop->modify_fd(conn->fd, EPOLLIN | EPOLLOUT);
        }
        return;
      }
      // Hard send error: mark closed; the next read event reaps the fd.
      conn->closed.store(true, std::memory_order_release);
      return;
    }
    conn->out_offset += static_cast<std::size_t>(n);
  }
  conn->out.clear();
  conn->out_offset = 0;
  if (conn->want_write) {
    conn->want_write = false;
    conn->loop->modify_fd(conn->fd, EPOLLIN);
  }
}

void KvServer::close_connection(const std::shared_ptr<Connection>& conn) {
  if (conn->closed.exchange(true, std::memory_order_acq_rel)) return;
  conn->loop->remove_fd(conn->fd);
  {
    std::unique_lock<std::shared_mutex> lock(conns_mutex_);
    conns_.erase(conn->id);
  }
  ::close(conn->fd);
}

void KvServer::reset_connection(const std::shared_ptr<Connection>& conn) {
  if (conn->closed.load(std::memory_order_acquire)) return;
  // Zero-timeout linger turns close() into an abortive release: queued
  // data is discarded and the peer gets RST instead of FIN.
  linger hard{};
  hard.l_onoff = 1;
  hard.l_linger = 0;
  ::setsockopt(conn->fd, SOL_SOCKET, SO_LINGER, &hard, sizeof(hard));
  close_connection(conn);
}

void KvServer::flush_remaining(Connection& conn) {
  // Best-effort, bounded: the socket is still open and nonblocking, the
  // IO threads are joined, so this thread owns it. A peer that stopped
  // reading cannot wedge shutdown — the poll budget caps the wait.
  std::lock_guard<std::mutex> lock(conn.out_mutex);
  int budget_ms = 200;
  while (conn.out_offset < conn.out.size()) {
    const ssize_t n = ::send(conn.fd, conn.out.data() + conn.out_offset,
                             conn.out.size() - conn.out_offset, MSG_NOSIGNAL);
    if (n > 0) {
      conn.out_offset += static_cast<std::size_t>(n);
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
      if (budget_ms <= 0) return;
      pollfd pfd{conn.fd, POLLOUT, 0};
      const int r = ::poll(&pfd, 1, 50);
      budget_ms -= 50;
      if (r < 0 && errno != EINTR) return;
      continue;
    }
    return;  // hard error: the peer is gone, nothing left to drain
  }
}

std::shared_ptr<KvServer::Connection> KvServer::find_connection(
    std::uint64_t id) const {
  std::shared_lock<std::shared_mutex> lock(conns_mutex_);
  const auto it = conns_.find(id);
  return it == conns_.end() ? nullptr : it->second;
}

}  // namespace pqs::net

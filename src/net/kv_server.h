// The TCP front end for the sharded serving tier.
//
// KvServer binds a loopback (or any) TCP listener and runs N EventLoop IO
// threads. Connections are accepted on loop 0 and assigned round-robin;
// each connection owns a FrameDecoder ring the socket reads land in, and
// every decoded GET/PUT becomes a serve::Request submitted straight into
// the KvService per-shard MPSC rings with wants_reply set — the IO thread
// never waits for the answer. When a shard worker finishes the request,
// the service's completion hook (installed by start()) encodes the
// response frame into the connection's outbound buffer and posts a flush
// to the connection's own IO thread, which owns every socket write; the
// worker thread never touches a socket, so a slow or blocked peer can
// never stall the protocol hot loop.
//
// Ordering and determinism: one connection's frames are decoded and
// submitted in wire order by a single IO thread, so with one client
// connection the per-shard request subsequences — and therefore the
// per-shard deterministic aggregates — are identical to the in-process
// single-producer runs. That is the contract bench/net_throughput gates
// across worker counts and draw paths. Responses, by contrast, complete
// in shard-worker order and are matched by the echoed request_id.
//
// Backpressure: a full shard ring makes the submitting IO thread spin
// (KvService::submit); the connection's reads pause, the kernel receive
// buffer fills, and TCP flow control pushes back on the client. STATS
// frames are answered inline from the IO thread without touching the
// service. A malformed frame closes the connection (the decoder stream
// has no recoverable boundary).
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <shared_mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "net/event_loop.h"
#include "net/fault_injector.h"
#include "net/frame.h"
#include "serve/kv_service.h"

namespace pqs::net {

class KvServer {
 public:
  struct Config {
    std::string bind_address = "127.0.0.1";
    std::uint16_t port = 0;  // 0 = ephemeral; see port() after start()
    std::uint32_t io_threads = 1;
    std::size_t decoder_capacity = 1 << 16;  // per-connection ring bytes
    int backlog = 128;
    // Borrowed fault-injection seam (nullptr = no injection, zero cost on
    // the response path). When set, every response verdict comes from
    // FaultInjector::on_response and may replace the normal flush with a
    // reset / stall / truncate / delayed flush — see fault_injector.h.
    // The injector must outlive the server.
    FaultInjector* fault_injector = nullptr;
  };

  // The service is borrowed, not owned: the caller starts/stops it (and
  // may do so repeatedly, e.g. between offered-load sweep points) while
  // the server keeps listening. start()/stop() require the service to be
  // stopped because they install/clear its completion hook.
  KvServer(Config config, serve::KvService& service);
  ~KvServer();

  KvServer(const KvServer&) = delete;
  KvServer& operator=(const KvServer&) = delete;

  // Binds, listens, installs the completion hook, launches the IO
  // threads. The bound port (resolves ephemeral requests) is port().
  void start();
  // Stops the IO threads, closes every connection and the listener, and
  // clears the service's completion hook. Idempotent.
  void stop();

  std::uint16_t port() const { return port_; }

  // Observability (atomics; readable any time).
  std::uint64_t connections_accepted() const {
    return connections_accepted_.load(std::memory_order_relaxed);
  }
  std::uint64_t ops_submitted() const {
    return ops_submitted_.load(std::memory_order_relaxed);
  }
  std::uint64_t stats_served() const {
    return stats_served_.load(std::memory_order_relaxed);
  }
  std::uint64_t protocol_errors() const {
    return protocol_errors_.load(std::memory_order_relaxed);
  }

 private:
  struct Connection {
    Connection(std::uint64_t id_, int fd_, std::size_t decoder_capacity)
        : id(id_), fd(fd_), decoder(decoder_capacity) {}
    const std::uint64_t id;
    const int fd;
    EventLoop* loop = nullptr;  // the IO thread that owns this socket
    FrameDecoder decoder;
    // The outbound buffer is the one cross-thread seam per connection:
    // shard workers append response frames under out_mutex, the owning
    // IO thread drains it to the socket. flush_pending collapses a burst
    // of completions into one posted flush task.
    std::mutex out_mutex;
    std::vector<unsigned char> out;
    std::size_t out_offset = 0;  // consumed prefix of `out`
    bool want_write = false;     // EPOLLOUT armed (loop-thread-only)
    std::atomic<bool> flush_pending{false};
    std::atomic<bool> closed{false};
    // Injected slow-loris: queued bytes are never flushed (and the
    // stop() drain skips them, so a stalled connection stays stalled
    // through shutdown instead of un-stalling at the last moment).
    std::atomic<bool> stalled{false};
  };

  void accept_ready();
  void handle_io(const std::shared_ptr<Connection>& conn,
                 std::uint32_t events);
  void drain_input(const std::shared_ptr<Connection>& conn);
  void submit_frame(const std::shared_ptr<Connection>& conn,
                    const Frame& frame);
  void on_complete(const serve::Completion& done);
  void enqueue_response(const std::shared_ptr<Connection>& conn,
                        const Frame& frame);
  // Loop-thread-only: writes pending bytes, arms/disarms EPOLLOUT.
  void try_write(const std::shared_ptr<Connection>& conn);
  void close_connection(const std::shared_ptr<Connection>& conn);
  // SO_LINGER(0) + close: the peer sees a hard RST, not a FIN.
  void reset_connection(const std::shared_ptr<Connection>& conn);
  // stop()-time synchronous drain of one connection's outbound buffer
  // (IO threads already joined, so the stopping thread owns the socket).
  void flush_remaining(Connection& conn);
  std::shared_ptr<Connection> find_connection(std::uint64_t id) const;

  Config config_;
  serve::KvService& service_;
  int listen_fd_ = -1;
  std::uint16_t port_ = 0;
  bool running_ = false;
  std::vector<std::unique_ptr<EventLoop>> loops_;
  std::vector<std::thread> io_threads_;
  std::uint64_t next_conn_id_ = 1;
  std::uint32_t next_loop_ = 0;
  mutable std::shared_mutex conns_mutex_;
  std::unordered_map<std::uint64_t, std::shared_ptr<Connection>> conns_;
  std::atomic<std::uint64_t> connections_accepted_{0};
  std::atomic<std::uint64_t> ops_submitted_{0};
  std::atomic<std::uint64_t> stats_served_{0};
  std::atomic<std::uint64_t> protocol_errors_{0};
};

}  // namespace pqs::net

#include "net/event_loop.h"

#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <unistd.h>

#include <algorithm>
#include <array>
#include <cerrno>
#include <chrono>
#include <limits>
#include <utility>

#include "util/require.h"

namespace pqs::net {

namespace {

std::uint64_t mono_now_ns() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

}  // namespace

EventLoop::EventLoop() {
  epoll_fd_ = ::epoll_create1(EPOLL_CLOEXEC);
  PQS_REQUIRE(epoll_fd_ >= 0, "epoll_create1 failed");
  wake_fd_ = ::eventfd(0, EFD_CLOEXEC | EFD_NONBLOCK);
  PQS_REQUIRE(wake_fd_ >= 0, "eventfd failed");
  epoll_event ev{};
  ev.events = EPOLLIN | EPOLLET;
  ev.data.fd = wake_fd_;
  PQS_REQUIRE(::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, wake_fd_, &ev) == 0,
              "epoll_ctl(wakeup) failed");
}

EventLoop::~EventLoop() {
  if (wake_fd_ >= 0) ::close(wake_fd_);
  if (epoll_fd_ >= 0) ::close(epoll_fd_);
}

void EventLoop::add_fd(int fd, std::uint32_t events, IoHandler handler) {
  {
    std::lock_guard<std::mutex> lock(handlers_mutex_);
    handlers_[fd] = std::make_shared<IoHandler>(std::move(handler));
  }
  // Register after the handler is findable: the fd could become readable
  // (and dispatched on the loop thread) the instant it enters epoll.
  epoll_event ev{};
  ev.events = events | EPOLLET;
  ev.data.fd = fd;
  PQS_REQUIRE(::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, fd, &ev) == 0,
              "epoll_ctl(add) failed");
}

void EventLoop::modify_fd(int fd, std::uint32_t events) {
  epoll_event ev{};
  ev.events = events | EPOLLET;
  ev.data.fd = fd;
  PQS_REQUIRE(::epoll_ctl(epoll_fd_, EPOLL_CTL_MOD, fd, &ev) == 0,
              "epoll_ctl(mod) failed");
}

void EventLoop::remove_fd(int fd) {
  // The fd may already be gone (closed elsewhere); deregistration is
  // best-effort, the handler map is the source of truth.
  ::epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, fd, nullptr);
  std::lock_guard<std::mutex> lock(handlers_mutex_);
  handlers_.erase(fd);
}

void EventLoop::post(std::function<void()> task) {
  {
    std::lock_guard<std::mutex> lock(tasks_mutex_);
    tasks_.push_back(std::move(task));
  }
  const std::uint64_t one = 1;
  // A full eventfd counter still leaves the loop signalled; ignore EAGAIN.
  [[maybe_unused]] const ssize_t n = ::write(wake_fd_, &one, sizeof(one));
}

void EventLoop::post_after(std::uint64_t delay_ns,
                           std::function<void()> task) {
  // Min-heap order for std::push_heap/pop_heap (which build max-heaps):
  // "greater" on (due_ns, seq) puts the earliest timer at the front.
  const auto later = [](const Timer& a, const Timer& b) {
    return a.due_ns != b.due_ns ? a.due_ns > b.due_ns : a.seq > b.seq;
  };
  {
    std::lock_guard<std::mutex> lock(tasks_mutex_);
    timers_.push_back(
        Timer{mono_now_ns() + delay_ns, timer_seq_++, std::move(task)});
    std::push_heap(timers_.begin(), timers_.end(), later);
  }
  // Wake the loop so it recomputes its epoll_wait timeout against the
  // (possibly now earlier) head timer.
  const std::uint64_t one = 1;
  [[maybe_unused]] const ssize_t n = ::write(wake_fd_, &one, sizeof(one));
}

void EventLoop::drain_wakeup() {
  std::uint64_t count = 0;
  while (::read(wake_fd_, &count, sizeof(count)) > 0) {
  }
}

void EventLoop::run_posted_tasks() {
  std::vector<std::function<void()>> ready;
  {
    std::lock_guard<std::mutex> lock(tasks_mutex_);
    ready.swap(tasks_);
  }
  for (auto& task : ready) task();
}

void EventLoop::run_due_timers() {
  const auto later = [](const Timer& a, const Timer& b) {
    return a.due_ns != b.due_ns ? a.due_ns > b.due_ns : a.seq > b.seq;
  };
  std::vector<std::function<void()>> due;
  {
    std::lock_guard<std::mutex> lock(tasks_mutex_);
    const std::uint64_t now = mono_now_ns();
    while (!timers_.empty() && timers_.front().due_ns <= now) {
      std::pop_heap(timers_.begin(), timers_.end(), later);
      due.push_back(std::move(timers_.back().task));
      timers_.pop_back();
    }
  }
  for (auto& task : due) task();
}

int EventLoop::wait_timeout_ms() {
  std::lock_guard<std::mutex> lock(tasks_mutex_);
  if (!tasks_.empty()) return 0;
  if (timers_.empty()) return -1;
  const std::uint64_t now = mono_now_ns();
  const std::uint64_t due = timers_.front().due_ns;
  if (due <= now) return 0;
  const std::uint64_t ms = (due - now + 999'999) / 1'000'000;
  return static_cast<int>(
      std::min<std::uint64_t>(ms, std::numeric_limits<int>::max()));
}

void EventLoop::run() {
  loop_thread_.store(std::this_thread::get_id());
  std::array<epoll_event, 64> events;
  while (!stopping_.load(std::memory_order_acquire)) {
    const int n = ::epoll_wait(epoll_fd_, events.data(),
                               static_cast<int>(events.size()),
                               wait_timeout_ms());
    if (n < 0) {
      PQS_REQUIRE(errno == EINTR, "epoll_wait failed");
      continue;
    }
    for (int i = 0; i < n; ++i) {
      const int fd = events[i].data.fd;
      if (fd == wake_fd_) {
        drain_wakeup();
        continue;
      }
      std::shared_ptr<IoHandler> handler;
      {
        std::lock_guard<std::mutex> lock(handlers_mutex_);
        const auto it = handlers_.find(fd);
        if (it == handlers_.end()) continue;  // removed earlier this round
        handler = it->second;
      }
      (*handler)(events[i].events);
    }
    // After IO: due timers, then tasks posted by worker threads (response
    // flushes) and, on stop, whatever was queued behind the final wakeup.
    run_due_timers();
    run_posted_tasks();
  }
  // Drain-on-exit: a task posted between the final dispatch round and the
  // stop flag becoming visible would otherwise be dropped — and with it a
  // queued response flush. Pending *timers* are deliberately abandoned
  // (delayed work is best-effort); posted tasks are not.
  run_posted_tasks();
  loop_thread_.store(std::thread::id{});
}

void EventLoop::stop() {
  stopping_.store(true, std::memory_order_release);
  post([] {});  // wake the epoll_wait
}

}  // namespace pqs::net

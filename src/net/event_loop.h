// A minimal edge-triggered epoll event loop.
//
// One EventLoop is one epoll instance plus one thread calling run(). All
// fds are registered edge-triggered (EPOLLET), so handlers own the
// drain-until-EAGAIN contract; in exchange the loop never rearms
// level-triggered storms and a pipelined connection costs one wakeup per
// readable burst, not per frame.
//
// Cross-thread work enters through post(): any thread may enqueue a task,
// an eventfd wakes the loop, and the task runs on the loop thread — this
// is how serving-tier worker threads hand completed responses back to the
// connection's IO thread without ever touching a socket themselves.
// Everything else (add/modify/remove, the handlers) is loop-thread-only
// by contract, which keeps per-connection state machines single-threaded
// and TSan-clean without per-connection locks on the IO side.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <unordered_map>
#include <vector>

namespace pqs::net {

class EventLoop {
 public:
  // Receives the raw epoll event bits (EPOLLIN / EPOLLOUT / EPOLLHUP...).
  using IoHandler = std::function<void(std::uint32_t events)>;

  EventLoop();
  ~EventLoop();

  EventLoop(const EventLoop&) = delete;
  EventLoop& operator=(const EventLoop&) = delete;

  // Registers `fd` edge-triggered for `events` (EPOLLET is implied).
  // add/remove are thread-safe (an acceptor thread hands sockets to other
  // loops); modify is loop-thread-only by contract.
  void add_fd(int fd, std::uint32_t events, IoHandler handler);
  void modify_fd(int fd, std::uint32_t events);
  void remove_fd(int fd);

  // Thread-safe: enqueues `task` to run on the loop thread and wakes it.
  void post(std::function<void()> task);

  // Thread-safe: runs `task` on the loop thread no earlier than `delay_ns`
  // from now (monotonic clock). The loop sleeps in epoll_wait with a
  // timeout derived from the earliest pending timer, so a timer costs no
  // polling. Timers still pending when the loop stops are dropped —
  // delayed work is best-effort by contract (it exists for fault
  // injection and backoff, not correctness).
  void post_after(std::uint64_t delay_ns, std::function<void()> task);

  // Runs until stop(); the calling thread becomes the loop thread.
  void run();

  // Thread-safe: makes run() return after the current dispatch round.
  void stop();

  bool in_loop_thread() const {
    return std::this_thread::get_id() == loop_thread_.load();
  }

 private:
  struct Timer {
    std::uint64_t due_ns;
    std::uint64_t seq;  // insertion order breaks due-time ties FIFO
    std::function<void()> task;
  };

  void drain_wakeup();
  void run_posted_tasks();
  void run_due_timers();
  // epoll_wait timeout in ms: 0 if work is already queued, the time to
  // the earliest timer if one is pending, -1 (block) otherwise.
  int wait_timeout_ms();

  int epoll_fd_ = -1;
  int wake_fd_ = -1;
  std::atomic<bool> stopping_{false};
  std::atomic<std::thread::id> loop_thread_{};
  std::mutex tasks_mutex_;
  std::vector<std::function<void()>> tasks_;
  std::vector<Timer> timers_;  // min-heap by (due_ns, seq), under tasks_mutex_
  std::uint64_t timer_seq_ = 0;
  // shared_ptr so a handler that removes fds (closing a connection) during
  // a dispatch round cannot free a handler the round is still calling;
  // the mutex covers cross-thread registration (acceptor → IO loop).
  mutable std::mutex handlers_mutex_;
  std::unordered_map<int, std::shared_ptr<IoHandler>> handlers_;
};

}  // namespace pqs::net

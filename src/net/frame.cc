#include "net/frame.h"

#include <algorithm>
#include <cstring>

#include "util/require.h"

namespace pqs::net {

namespace {

inline void store_le16(unsigned char* p, std::uint16_t v) {
  p[0] = static_cast<unsigned char>(v);
  p[1] = static_cast<unsigned char>(v >> 8);
}

inline void store_le32(unsigned char* p, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) p[i] = static_cast<unsigned char>(v >> (8 * i));
}

inline void store_le64(unsigned char* p, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) p[i] = static_cast<unsigned char>(v >> (8 * i));
}

inline std::uint16_t load_le16(const unsigned char* p) {
  return static_cast<std::uint16_t>(p[0] | (p[1] << 8));
}

inline std::uint32_t load_le32(const unsigned char* p) {
  std::uint32_t v = 0;
  for (int i = 0; i < 4; ++i) v |= static_cast<std::uint32_t>(p[i]) << (8 * i);
  return v;
}

inline std::uint64_t load_le64(const unsigned char* p) {
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) v |= static_cast<std::uint64_t>(p[i]) << (8 * i);
  return v;
}

}  // namespace

void encode_frame(const Frame& frame, unsigned char* out) {
  std::uint8_t opcode = static_cast<std::uint8_t>(frame.op) & kOpMask;
  if (frame.found) opcode |= kFoundBit;
  if (frame.response) opcode |= kResponseBit;
  store_le32(out, static_cast<std::uint32_t>(kBodyBytes));
  store_le16(out + 4, kMagic);
  out[6] = kVersion;
  out[7] = opcode;
  store_le64(out + 8, frame.request_id);
  store_le64(out + 16, frame.key);
  store_le64(out + 24, static_cast<std::uint64_t>(frame.value));
}

FrameDecoder::FrameDecoder(std::size_t capacity) {
  std::size_t cap = kFrameBytes;
  while (cap < capacity) cap <<= 1;
  buf_.assign(cap, 0);
  mask_ = cap - 1;
}

std::size_t FrameDecoder::writable(Span out[2]) {
  const std::size_t free = free_bytes();
  if (free == 0) return 0;
  const std::size_t start = static_cast<std::size_t>(tail_) & mask_;
  const std::size_t to_edge = capacity() - start;
  out[0].data = buf_.data() + start;
  if (free <= to_edge) {
    out[0].size = free;
    return 1;
  }
  out[0].size = to_edge;
  out[1].data = buf_.data();
  out[1].size = free - to_edge;
  return 2;
}

void FrameDecoder::commit(std::size_t n) {
  PQS_REQUIRE(n <= free_bytes(), "decoder commit overruns the ring");
  tail_ += n;
}

std::size_t FrameDecoder::feed(const void* data, std::size_t n) {
  const unsigned char* src = static_cast<const unsigned char*>(data);
  Span spans[2];
  const std::size_t count = writable(spans);
  std::size_t accepted = 0;
  for (std::size_t s = 0; s < count && accepted < n; ++s) {
    const std::size_t take = std::min(spans[s].size, n - accepted);
    std::memcpy(spans[s].data, src + accepted, take);
    accepted += take;
  }
  commit(accepted);
  return accepted;
}

void FrameDecoder::copy_out(unsigned char* dst, std::size_t offset,
                            std::size_t n) const {
  const std::size_t start = static_cast<std::size_t>(head_ + offset) & mask_;
  const std::size_t to_edge = capacity() - start;
  if (n <= to_edge) {
    std::memcpy(dst, buf_.data() + start, n);
  } else {
    std::memcpy(dst, buf_.data() + start, to_edge);
    std::memcpy(dst + to_edge, buf_.data(), n - to_edge);
  }
}

FrameDecoder::Result FrameDecoder::next(Frame& out) {
  if (error_ != nullptr) return Result::kError;
  if (buffered_bytes() < 4) return Result::kNeedMore;
  unsigned char len_bytes[4];
  copy_out(len_bytes, 0, 4);
  const std::uint32_t body_len = load_le32(len_bytes);
  // The earliest rejection point: any length other than the v1 body is
  // garbage, condemned before the rest of the header even arrives.
  if (body_len != kBodyBytes) {
    error_ = "bad frame length";
    return Result::kError;
  }
  if (buffered_bytes() < kFrameBytes) return Result::kNeedMore;
  unsigned char raw[kFrameBytes];
  copy_out(raw, 0, kFrameBytes);
  if (load_le16(raw + 4) != kMagic) {
    error_ = "bad magic";
    return Result::kError;
  }
  if (raw[6] != kVersion) {
    error_ = "unsupported version";
    return Result::kError;
  }
  const std::uint8_t opcode = raw[7];
  const std::uint8_t op = opcode & kOpMask;
  if (op != static_cast<std::uint8_t>(Op::kGet) &&
      op != static_cast<std::uint8_t>(Op::kPut) &&
      op != static_cast<std::uint8_t>(Op::kStats)) {
    error_ = "unknown opcode";
    return Result::kError;
  }
  out.op = static_cast<Op>(op);
  out.found = (opcode & kFoundBit) != 0;
  out.response = (opcode & kResponseBit) != 0;
  out.request_id = load_le64(raw + 8);
  out.key = load_le64(raw + 16);
  out.value = static_cast<std::int64_t>(load_le64(raw + 24));
  head_ += kFrameBytes;
  return Result::kFrame;
}

}  // namespace pqs::net

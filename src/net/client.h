// A pipelined, multi-connection TCP client for the serving tier.
//
// The bench driver thread calls send() for every generated operation:
// frames are coalesced into a per-connection send buffer (flushed at a
// size threshold, so a syscall carries many 32-byte frames) and assigned
// round-robin across M connections. One reader thread per connection
// decodes responses as they arrive — responses complete in shard-worker
// order, not send order, so each is matched to its request by the echoed
// request_id — and records end-to-end latency against the operation's
// scheduled arrival time into a reader-private LatencyHistogram
// (coordinated-omission-safe when the driver paces to a fixed schedule;
// pure round-trip time when unpaced).
//
// Pipelining is bounded by `window` outstanding requests per connection:
// a full window flushes and spins the driver, so client memory stays
// bounded while the wire stays saturated. With connections = 1 the send
// order is the wire order, which is the determinism precondition the
// net_throughput bit-identity gates rely on.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "net/frame.h"
#include "stats/latency_histogram.h"

namespace pqs::net {

class Client {
 public:
  struct Config {
    std::string host = "127.0.0.1";
    std::uint16_t port = 0;
    std::uint32_t connections = 1;
    std::uint32_t window = 512;       // max outstanding per connection
    std::size_t flush_bytes = 8192;   // coalescing threshold
  };

  explicit Client(Config config);
  ~Client();

  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;

  // Connects every connection and launches the reader threads; the
  // client clock (now_ns(), the timebase of scheduled_ns) starts here.
  void start();

  // Queues one GET (is_read) or PUT. scheduled_ns is the latency origin:
  // the open-loop deadline when pacing, now_ns() when not. Single driver
  // thread by contract.
  void send(std::uint64_t key, std::int64_t value, bool is_read,
            std::uint64_t scheduled_ns);

  // Pushes every coalesced buffer to the kernel.
  void flush();

  // flush(), then waits until every sent request has its response.
  void drain();

  // drain(), shuts the sockets down, joins the readers. Idempotent.
  void stop();

  std::uint64_t now_ns() const;

  std::uint64_t sent() const { return sent_; }
  std::uint64_t received() const;
  std::uint64_t reads_found() const;   // GET responses with a selection
  std::uint64_t reads_empty() const;   // GET responses without one
  // Merged over the per-connection reader histograms. Only meaningful
  // after drain() (readers quiesce once every response has arrived).
  stats::LatencyHistogram histogram() const;

 private:
  struct Conn {
    int fd = -1;
    std::vector<unsigned char> sendbuf;
    // request_id -> scheduled_ns; driver inserts, reader erases.
    std::mutex pending_mutex;
    std::unordered_map<std::uint64_t, std::uint64_t> pending;
    std::atomic<std::uint64_t> outstanding{0};
    std::thread reader;
    // Reader-private until the reader joins (stop()).
    stats::LatencyHistogram histogram;
    std::uint64_t received = 0;
    std::uint64_t reads_found = 0;
    std::uint64_t reads_empty = 0;
    std::atomic<bool> failed{false};
  };

  void flush_conn(Conn& conn);
  void reader_loop(Conn& conn);

  Config config_;
  bool running_ = false;
  std::vector<std::unique_ptr<Conn>> conns_;
  std::uint64_t next_id_ = 1;
  std::uint64_t sent_ = 0;
  std::uint32_t next_conn_ = 0;
  std::chrono::steady_clock::time_point epoch_{};
};

}  // namespace pqs::net

// A pipelined, multi-connection TCP client for the serving tier.
//
// The bench driver thread calls send() for every generated operation:
// frames are coalesced into a per-connection send buffer (flushed at a
// size threshold, so a syscall carries many 32-byte frames) and assigned
// round-robin across M connections. One reader thread per connection
// decodes responses as they arrive — responses complete in shard-worker
// order, not send order, so each is matched to its request by the echoed
// request_id — and records end-to-end latency against the operation's
// scheduled arrival time into a reader-private LatencyHistogram
// (coordinated-omission-safe when the driver paces to a fixed schedule;
// pure round-trip time when unpaced).
//
// Pipelining is bounded by `window` outstanding requests per connection:
// a full window flushes and spins the driver, so client memory stays
// bounded while the wire stays saturated. With connections = 1 the send
// order is the wire order, which is the determinism precondition the
// net_throughput bit-identity gates rely on.
//
// Fault tolerance (all opt-in; the defaults preserve the original
// fail-fast behavior byte for byte, which is what the bit-identity
// benches run under):
//   * connect failures retry with jittered capped exponential backoff
//     (connect_attempts > 1) instead of aborting the run;
//   * request_timeout_ns > 0 arms a per-request deadline. Expired
//     requests are reaped on the driver thread (inside the window-full
//     spin and drain()), retried up to max_retries times under jittered
//     exponential backoff on the next usable connection (failover), and
//     abandoned after that — so a stalled, reset, or truncated server
//     connection degrades one connection's requests instead of wedging
//     the run;
//   * a failed connection is lazily reconnected by the driver the next
//     time round-robin lands on it; its in-flight requests are retried.
// Backoff jitter comes from a dedicated math::Rng stream (retry_seed) —
// never from any quorum stream, so client-side fault handling cannot
// perturb a single quorum draw. All recovery counters are surfaced in
// stats().
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "math/rng.h"
#include "net/frame.h"
#include "stats/latency_histogram.h"

namespace pqs::net {

// Graceful-degradation counters: how hard the client had to work to keep
// the run going. All zero on a healthy run.
struct ClientStats {
  std::uint64_t timeouts = 0;         // requests past their deadline
  std::uint64_t retries = 0;          // re-sends of timed-out requests
  std::uint64_t failovers = 0;        // retries routed to a different conn
  std::uint64_t reconnects = 0;       // failed connections re-established
  std::uint64_t abandoned = 0;        // requests dropped after max_retries
  std::uint64_t late_responses = 0;   // responses after timeout/abandon
  std::uint64_t connect_retries = 0;  // extra connect() attempts
};

class Client {
 public:
  struct Config {
    std::string host = "127.0.0.1";
    std::uint16_t port = 0;
    std::uint32_t connections = 1;
    std::uint32_t window = 512;       // max outstanding per connection
    std::size_t flush_bytes = 8192;   // coalescing threshold
    // Connect retry (applies to start() and lazy reconnects): total
    // attempts per connection before giving up, with jittered exponential
    // backoff between attempts.
    std::uint32_t connect_attempts = 5;
    std::uint64_t connect_backoff_ns = 1'000'000;    // first retry delay
    std::uint64_t connect_backoff_cap_ns = 100'000'000;
    // Per-request deadline; 0 (default) disables deadlines, retries, and
    // late-response tolerance — the original strict client.
    std::uint64_t request_timeout_ns = 0;
    std::uint32_t max_retries = 2;                   // per request
    std::uint64_t retry_backoff_ns = 200'000;        // first retry delay
    std::uint64_t retry_backoff_cap_ns = 20'000'000;
    std::uint64_t retry_seed = 0x5eedba11u;          // backoff jitter rng
  };

  explicit Client(Config config);
  ~Client();

  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;

  // Connects every connection (retrying per connect_attempts) and
  // launches the reader threads; the client clock (now_ns(), the
  // timebase of scheduled_ns) starts here.
  void start();

  // Queues one GET (is_read) or PUT. scheduled_ns is the latency origin:
  // the open-loop deadline when pacing, now_ns() when not. Single driver
  // thread by contract.
  void send(std::uint64_t key, std::int64_t value, bool is_read,
            std::uint64_t scheduled_ns);

  // Pushes every coalesced buffer to the kernel.
  void flush();

  // flush(), then waits until every sent request has its response (or,
  // with deadlines armed, was retried/abandoned).
  void drain();

  // drain(), shuts the sockets down, joins the readers. Idempotent.
  void stop();

  std::uint64_t now_ns() const;

  std::uint64_t sent() const { return sent_; }
  std::uint64_t received() const;
  std::uint64_t reads_found() const;   // GET responses with a selection
  std::uint64_t reads_empty() const;   // GET responses without one
  // Merged over the per-connection reader histograms. Only meaningful
  // after drain() (readers quiesce once every response has arrived).
  stats::LatencyHistogram histogram() const;
  // Recovery counters; call from the driver thread (or after stop()).
  ClientStats stats() const;

 private:
  // One queued request awaiting its response. The driver inserts,
  // the reader erases on match, the driver reaps on deadline.
  struct PendingOp {
    std::uint64_t scheduled_ns = 0;
    std::uint64_t deadline_ns = 0;  // 0 = no deadline armed
    std::uint64_t key = 0;
    std::int64_t value = 0;
    bool is_read = false;
    std::uint32_t attempts = 1;  // send attempts so far (this one included)
    std::uint32_t origin = 0;    // connection index it was sent on
  };

  struct Conn {
    int fd = -1;
    std::vector<unsigned char> sendbuf;
    // request_id -> op; driver inserts, reader erases.
    std::mutex pending_mutex;
    std::unordered_map<std::uint64_t, PendingOp> pending;
    std::atomic<std::uint64_t> outstanding{0};
    std::thread reader;
    // Reader-private until the reader joins (stop()).
    stats::LatencyHistogram histogram;
    std::uint64_t received = 0;
    std::uint64_t reads_found = 0;
    std::uint64_t reads_empty = 0;
    std::atomic<std::uint64_t> late_responses{0};
    std::atomic<bool> failed{false};
  };

  void flush_conn(Conn& conn);
  void reader_loop(Conn& conn);
  // connect() with capped jittered backoff; -1 after connect_attempts.
  int connect_with_backoff();
  // Driver-side: index of the first usable connection at or after
  // start_index, lazily reconnecting failed ones; requires one to be
  // usable. Sets *failover when it had to skip past start_index.
  std::uint32_t pick_usable(std::uint32_t start_index, bool* failover);
  // Driver-side: tears down and re-establishes one failed connection,
  // retrying its orphaned in-flight requests. False if connect fails.
  bool reconnect(Conn& conn, std::uint32_t index);
  // Driver-side: scans every connection for requests past their
  // deadline; expired ones are retried (bounded, with backoff, on the
  // next usable connection) or abandoned. No-op without deadlines.
  void reap_expired();
  // Appends one frame for `op` to `conn` and registers it in pending.
  void enqueue_op(Conn& conn, std::uint32_t index, const PendingOp& op);
  void backoff_sleep(std::uint64_t base_ns, std::uint64_t cap_ns,
                     std::uint32_t attempt);
  bool deadlines_armed() const { return config_.request_timeout_ns > 0; }

  Config config_;
  bool running_ = false;
  std::vector<std::unique_ptr<Conn>> conns_;
  std::uint64_t next_id_ = 1;
  std::uint64_t sent_ = 0;
  std::uint32_t next_conn_ = 0;
  std::chrono::steady_clock::time_point epoch_{};
  // Driver-thread-only recovery state.
  math::Rng retry_rng_;
  std::uint64_t timeouts_ = 0;
  std::uint64_t retries_ = 0;
  std::uint64_t failovers_ = 0;
  std::uint64_t reconnects_ = 0;
  std::uint64_t abandoned_ = 0;
  std::uint64_t connect_retries_ = 0;
};

}  // namespace pqs::net

// Threshold (voting) quorum systems.
//
// The classic strict construction: quorums are all subsets of size q with
// 2q > n, accessed uniformly at random. Includes the Byzantine variants of
// Malkhi & Reiter [MR98a] used as baselines throughout Section 6:
//   majority:            q = ceil((n+1)/2)      (pairwise intersection >= 1)
//   b-dissemination:     q = ceil((n+b+1)/2)    (intersection >= b+1)
//   b-masking:           q = ceil((n+2b+1)/2)   (intersection >= 2b+1)
#pragma once

#include <cstdint>
#include <string>

#include "quorum/quorum_system.h"

namespace pqs::quorum {

class ThresholdSystem final : public QuorumSystem {
 public:
  // Quorums are all q-subsets of an n-universe. Requires 1 <= q <= n and
  // 2q > n (so that the system is a strict quorum system).
  ThresholdSystem(std::uint32_t n, std::uint32_t q);

  // Factories for the standard instantiations. Each validates the
  // resilience precondition from Table 1 (b <= (n-1)/3 for dissemination,
  // b <= (n-1)/4 for masking).
  static ThresholdSystem majority(std::uint32_t n);
  static ThresholdSystem dissemination(std::uint32_t n, std::uint32_t b);
  static ThresholdSystem masking(std::uint32_t n, std::uint32_t b);

  std::string name() const override;
  std::uint32_t universe_size() const override { return n_; }
  Quorum sample(math::Rng& rng) const override;
  void sample_into(Quorum& out, math::Rng& rng) const override;
  void sample_mask(QuorumBitset& out, math::Rng& rng) const override;
  void sample_masks(QuorumBitset* out, std::size_t count,
                    math::Rng& rng) const override;
  std::uint32_t min_quorum_size() const override { return q_; }
  double load() const override;
  std::uint32_t fault_tolerance() const override { return n_ - q_ + 1; }
  double failure_probability(double p) const override;
  bool has_live_quorum(const std::vector<bool>& alive) const override;
  bool has_live_quorum_mask(const QuorumBitset& alive) const override;

  // Guaranteed |Q ∩ Q'| >= 2q - n for any two quorums.
  std::uint32_t min_pairwise_intersection() const { return 2 * q_ - n_; }

 private:
  std::uint32_t n_;
  std::uint32_t q_;
};

}  // namespace pqs::quorum

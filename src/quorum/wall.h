// Crumbling walls (Peleg & Wool [PW97]).
//
// Servers are laid out in d rows ("courses") of widths w_1..w_d. A quorum
// is one full row i plus one representative from every row below it
// (j > i). Any two quorums intersect: with chosen rows i <= i', the first
// quorum holds a representative in row i' (or is row i' itself), which the
// second quorum contains entirely.
//
// Walls interpolate between the majority (one row) and very light quorums
// (many rows: c(Q) as small as w_d). The paper cites them as a practical
// strict family; here they serve as an additional baseline whose load and
// fault tolerance have clean closed forms under the uniform strategy.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "quorum/quorum_system.h"

namespace pqs::quorum {

class WallSystem final : public QuorumSystem {
 public:
  // widths[i] is the number of servers in row i (>= 1 each). Servers are
  // numbered row-major, top row first.
  explicit WallSystem(std::vector<std::uint32_t> widths);

  // A wall of `rows` equal rows of `width` servers.
  static WallSystem uniform(std::uint32_t rows, std::uint32_t width);

  std::string name() const override;
  std::uint32_t universe_size() const override { return n_; }
  // Strategy: chosen row uniform over rows; representatives uniform within
  // each lower row, independently.
  Quorum sample(math::Rng& rng) const override;
  void sample_into(Quorum& out, math::Rng& rng) const override;
  void sample_mask(QuorumBitset& out, math::Rng& rng) const override;
  // min_i (w_i + d - 1 - i)  (0-based rows).
  std::uint32_t min_quorum_size() const override;
  // Exact for the uniform strategy: an element of row i (0-based) is used
  // with probability (1 + i / w_i) / d; the load is the max over rows.
  double load() const override;
  // min(d, c(Q)): either touch every row once, or swallow a row whole and
  // touch each row below it.
  std::uint32_t fault_tolerance() const override;
  // Exact via independence across rows: a quorum survives iff some row i
  // is fully alive with every row below it non-empty-alive.
  double failure_probability(double p) const override;
  bool has_live_quorum(const std::vector<bool>& alive) const override;
  bool has_live_quorum_mask(const QuorumBitset& alive) const override;

  std::uint32_t rows() const {
    return static_cast<std::uint32_t>(widths_.size());
  }
  const std::vector<std::uint32_t>& widths() const { return widths_; }

 private:
  std::uint32_t row_start(std::uint32_t row) const { return starts_[row]; }

  std::vector<std::uint32_t> widths_;
  std::vector<std::uint32_t> starts_;
  std::uint32_t n_;
};

}  // namespace pqs::quorum

#include "quorum/measures.h"

#include "math/binomial.h"

namespace pqs::quorum {

double size_based_failure_probability(std::int64_t n, std::int64_t q,
                                      double p) {
  // Disabled iff more than n - q servers crashed.
  return math::binomial_upper_tail(n, p, n - q + 1);
}

}  // namespace pqs::quorum

#include "quorum/measures.h"

#include "math/binomial.h"
#include "util/require.h"

namespace pqs::quorum {

double size_based_failure_probability(std::int64_t n, std::int64_t q,
                                      double p) {
  // Disabled iff more than n - q servers crashed.
  return math::binomial_upper_tail(n, p, n - q + 1);
}

double grid_server_load(std::uint32_t rows, std::uint32_t cols,
                        std::uint32_t d) {
  PQS_REQUIRE(rows >= 1 && cols >= 1 && d >= 1, "grid dimensions");
  const double pr = static_cast<double>(d) / rows;
  const double pc = static_cast<double>(d) / cols;
  return pr + pc - pr * pc;
}

double wall_server_load(const std::vector<std::uint32_t>& widths,
                        std::uint32_t row) {
  PQS_REQUIRE(row < widths.size(), "wall row");
  const double d = static_cast<double>(widths.size());
  return (1.0 + static_cast<double>(row) / widths[row]) / d;
}

}  // namespace pqs::quorum

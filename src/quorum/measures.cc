#include "quorum/measures.h"

#include "math/binomial.h"
#include "util/require.h"

namespace pqs::quorum {

double size_based_failure_probability(std::int64_t n, std::int64_t q,
                                      double p) {
  // Disabled iff more than n - q servers crashed.
  return math::binomial_upper_tail(n, p, n - q + 1);
}

double grid_server_load(std::uint32_t rows, std::uint32_t cols,
                        std::uint32_t d) {
  PQS_REQUIRE(rows >= 1 && cols >= 1 && d >= 1, "grid dimensions");
  const double pr = static_cast<double>(d) / rows;
  const double pc = static_cast<double>(d) / cols;
  return pr + pc - pr * pc;
}

double wall_server_load(const std::vector<std::uint32_t>& widths,
                        std::uint32_t row) {
  PQS_REQUIRE(row < widths.size(), "wall row");
  const double d = static_cast<double>(widths.size());
  return (1.0 + static_cast<double>(row) / widths[row]) / d;
}

double weighted_server_load(const std::vector<std::uint32_t>& votes,
                            std::uint32_t threshold, std::uint32_t server) {
  const std::size_t n = votes.size();
  PQS_REQUIRE(server < n, "weighted server id");
  PQS_REQUIRE(threshold >= 1, "weighted threshold");
  // count[k][v] = number of size-k subsets of the other servers whose
  // votes sum to exactly v < T (sums >= T can never keep the server out
  // of the quorum race, so the table is clipped at T).
  std::vector<std::vector<double>> count(
      n, std::vector<double>(threshold, 0.0));
  count[0][0] = 1.0;
  std::size_t placed = 0;
  for (std::size_t other = 0; other < n; ++other) {
    if (other == server) continue;
    ++placed;
    for (std::size_t k = placed; k >= 1; --k) {
      const std::uint32_t v = votes[other];
      // Descending sums so each server is counted at most once per
      // subset; sums below v cannot include this server.
      for (std::uint32_t sum = threshold; sum-- > v;) {
        count[k][sum] += count[k - 1][sum - v];
      }
    }
  }
  // P(exactly the k others precede `server` in a uniform permutation and
  // they hold < T votes) = (#qualifying subsets) * k! (n-1-k)! / n!
  //                      = (#qualifying subsets) / (n * C(n-1, k)).
  double load = 0.0;
  double choose = 1.0;  // C(n-1, k), updated incrementally
  for (std::size_t k = 0; k < n; ++k) {
    double below = 0.0;
    for (std::uint32_t sum = 0; sum < threshold; ++sum) below += count[k][sum];
    load += below / (static_cast<double>(n) * choose);
    choose *= static_cast<double>(n - 1 - k) / static_cast<double>(k + 1);
  }
  return load;
}

}  // namespace pqs::quorum

#include "quorum/grid.h"

#include <algorithm>
#include <cmath>

#include "math/sampling.h"
#include "math/stats.h"
#include "quorum/engine_link.h"
#include "quorum/measures.h"
#include "util/require.h"

namespace pqs::quorum {

GridSystem::GridSystem(std::uint32_t rows, std::uint32_t cols, std::uint32_t d)
    : rows_(rows), cols_(cols), d_(d) {
  PQS_REQUIRE(rows >= 1 && cols >= 1, "grid dimensions");
  PQS_REQUIRE(d >= 1 && d <= std::min(rows, cols), "grid depth");
}

namespace {
std::uint32_t isqrt_exact(std::uint32_t n) {
  const auto s = static_cast<std::uint32_t>(std::lround(std::sqrt(double(n))));
  PQS_REQUIRE(s * s == n, "grid universe must be a perfect square");
  return s;
}
}  // namespace

GridSystem GridSystem::square(std::uint32_t n) {
  const std::uint32_t s = isqrt_exact(n);
  return GridSystem(s, s, 1);
}

GridSystem GridSystem::dissemination(std::uint32_t n, std::uint32_t b) {
  const std::uint32_t s = isqrt_exact(n);
  const auto d = static_cast<std::uint32_t>(
      std::ceil(std::sqrt((static_cast<double>(b) + 1.0) / 2.0)));
  GridSystem g(s, s, d);
  PQS_REQUIRE(g.min_pairwise_intersection() >= b + 1,
              "grid dissemination overlap");
  PQS_REQUIRE(g.fault_tolerance() > b, "grid dissemination availability");
  return g;
}

GridSystem GridSystem::masking(std::uint32_t n, std::uint32_t b) {
  const std::uint32_t s = isqrt_exact(n);
  const auto d = static_cast<std::uint32_t>(
      std::ceil(std::sqrt(static_cast<double>(b) + 1.0)));
  GridSystem g(s, s, d);
  PQS_REQUIRE(g.min_pairwise_intersection() >= 2 * b + 1,
              "grid masking overlap");
  PQS_REQUIRE(g.fault_tolerance() > b, "grid masking availability");
  return g;
}

std::string GridSystem::name() const {
  return "grid(" + std::to_string(rows_) + "x" + std::to_string(cols_) +
         ",d=" + std::to_string(d_) + ")";
}

Quorum GridSystem::sample(math::Rng& rng) const {
  Quorum q;
  sample_into(q, rng);
  return q;
}

void GridSystem::sample_into(Quorum& out, math::Rng& rng) const {
  // Scratch persists across draws so the hot loop never allocates.
  static thread_local std::vector<std::uint32_t> row_ids;
  static thread_local std::vector<std::uint32_t> col_ids;
  math::sample_without_replacement(rows_, d_, rng, row_ids);
  math::sample_without_replacement(cols_, d_, rng, col_ids);
  out.clear();
  out.reserve(static_cast<std::size_t>(min_quorum_size()));
  for (std::uint32_t r = 0; r < rows_; ++r) {
    const bool row_in =
        std::binary_search(row_ids.begin(), row_ids.end(), r);
    for (std::uint32_t c = 0; c < cols_; ++c) {
      const bool col_in =
          std::binary_search(col_ids.begin(), col_ids.end(), c);
      if (row_in || col_in) out.push_back(r * cols_ + c);
    }
  }
  // Already sorted: row-major emission.
}

namespace {
// The mask fill shared by sample_mask and the batched sample_masks.
void fill_grid_mask(std::uint32_t rows, std::uint32_t cols, std::uint32_t d,
                    QuorumBitset& out, math::Rng& rng) {
  static thread_local std::vector<std::uint32_t> row_ids;
  static thread_local std::vector<std::uint32_t> col_ids;
  math::sample_without_replacement(rows, d, rng, row_ids);
  math::sample_without_replacement(cols, d, rng, col_ids);
  out.resize(rows * cols);
  // Chosen rows are contiguous word ranges; chosen columns stride one bit
  // per row. No scan over the full grid, unlike the sorted emission above.
  for (const std::uint32_t r : row_ids) {
    out.set_range(r * cols, (r + 1) * cols);
  }
  for (const std::uint32_t c : col_ids) {
    for (std::uint32_t r = 0; r < rows; ++r) out.set(r * cols + c);
  }
}
}  // namespace

void GridSystem::sample_mask(QuorumBitset& out, math::Rng& rng) const {
  fill_grid_mask(rows_, cols_, d_, out, rng);
}

void GridSystem::sample_masks(QuorumBitset* out, std::size_t count,
                              math::Rng& rng) const {
  for (std::size_t i = 0; i < count; ++i) {
    fill_grid_mask(rows_, cols_, d_, out[i], rng);
  }
}

std::uint32_t GridSystem::min_quorum_size() const {
  // d rows + d cols minus the d*d shared cells.
  return d_ * cols_ + d_ * rows_ - d_ * d_;
}

double GridSystem::load() const {
  // Every server is symmetric under the uniform row/column strategy, so
  // the load is the (shared) per-server access probability.
  return grid_server_load(rows_, cols_, d_);
}

std::uint32_t GridSystem::fault_tolerance() const {
  // A hitting set must leave at most d-1 untouched rows or at most d-1
  // untouched columns; the cheapest way is one server in each of
  // rows - d + 1 rows (or symmetrically for columns).
  //
  // Note: the paper's Tables 3-4 report sqrt(n) for all grid variants; for
  // d > 1 the exact value is sqrt(n) - d + 1 (see EXPERIMENTS.md).
  return std::min(rows_, cols_) - d_ + 1;
}

double GridSystem::failure_probability(double p) const {
  // Rows and columns are correlated through shared cells, so there is no
  // simple closed form for d >= 1; a fixed-seed Monte-Carlo estimate keeps
  // the QuorumSystem interface uniform and deterministic across runs. The
  // estimate runs on the shared core::Estimator through the engine_link
  // seam (thread-count independent by the engine's sharding contract).
  constexpr std::uint64_t kSamples = 200000;
  const std::uint64_t seed = 0xfe11c0de ^ (std::uint64_t(rows_) << 32) ^
                             cols_ ^ (std::uint64_t(d_) << 16);
  return engine_failure_probability(*this, p, kSamples, seed);
}

bool GridSystem::has_live_quorum_mask(const QuorumBitset& alive) const {
  // >= d fully-alive rows and >= d fully-alive columns, word-parallel.
  std::uint32_t live_rows = 0;
  for (std::uint32_t r = 0; r < rows_ && live_rows < d_; ++r) {
    if (alive.all_set_in_range(r * cols_, (r + 1) * cols_)) ++live_rows;
  }
  if (live_rows < d_) return false;
  if (cols_ <= 64) {
    // AND the rows' column windows together: bit c survives iff column c is
    // alive in every row. One word of state, two shifts per row.
    const std::uint64_t* words = alive.words();
    const std::uint64_t full = cols_ >= 64 ? ~0ULL : (1ULL << cols_) - 1;
    std::uint64_t live_cols = full;
    for (std::uint32_t r = 0; r < rows_ && live_cols != 0; ++r) {
      const std::uint32_t lo = r * cols_;
      std::uint64_t window = words[lo / 64] >> (lo % 64);
      if (lo % 64 != 0 && lo / 64 + 1 < alive.word_count()) {
        window |= words[lo / 64 + 1] << (64 - lo % 64);
      }
      live_cols &= window;
    }
    return popcount64(live_cols & full) >= d_;
  }
  std::uint32_t live_cols = 0;
  for (std::uint32_t c = 0; c < cols_ && live_cols < d_; ++c) {
    bool ok = true;
    for (std::uint32_t r = 0; r < rows_; ++r) {
      if (!alive.test(r * cols_ + c)) {
        ok = false;
        break;
      }
    }
    live_cols += ok ? 1u : 0u;
  }
  return live_cols >= d_;
}

bool GridSystem::has_live_quorum(const std::vector<bool>& alive) const {
  // A live quorum exists iff at least d rows are fully alive and at least
  // d columns are fully alive.
  std::uint32_t live_rows = 0;
  for (std::uint32_t r = 0; r < rows_ && live_rows < d_; ++r) {
    bool ok = true;
    for (std::uint32_t c = 0; c < cols_; ++c) {
      if (!alive[r * cols_ + c]) {
        ok = false;
        break;
      }
    }
    live_rows += ok ? 1u : 0u;
  }
  if (live_rows < d_) return false;
  std::uint32_t live_cols = 0;
  for (std::uint32_t c = 0; c < cols_ && live_cols < d_; ++c) {
    bool ok = true;
    for (std::uint32_t r = 0; r < rows_; ++r) {
      if (!alive[r * cols_ + c]) {
        ok = false;
        break;
      }
    }
    live_cols += ok ? 1u : 0u;
  }
  return live_cols >= d_;
}

}  // namespace pqs::quorum

// Shared analytic measures for size-based quorum systems.
#pragma once

#include <cstdint>
#include <vector>

namespace pqs::quorum {

// Failure probability of any system whose quorums all have size q drawn from
// a universe of n and which has a live quorum iff at least q servers are
// alive (threshold systems, and the uniform probabilistic construction
// R(n, q)): F_p = P(#crashed > n - q) for iid crash probability p.
double size_based_failure_probability(std::int64_t n, std::int64_t q,
                                      double p);

// Closed-form per-server access probabilities under the uniform strategies,
// used by the constructions' load() and asserted against the measured
// LoadProfile by tests/test_load_profile.cc.

// Grid with d random rows + d random columns: every server is symmetric,
// l(u) = P(row chosen) + P(col chosen) - P(both) = d/r + d/c - d^2/(rc).
double grid_server_load(std::uint32_t rows, std::uint32_t cols,
                        std::uint32_t d);

// Crumbling wall with row widths w_0..w_{d-1} (0-based, top first): a
// server in row i is used when its row is the chosen full row (prob 1/d)
// or as the representative of row i for one of the i rows above it
// (prob (i/d) * (1/w_i)), so l(u) = (1 + i/w_i) / d for u in row i.
double wall_server_load(const std::vector<std::uint32_t>& widths,
                        std::uint32_t row);

// Weighted voting under the random-permutation strategy (the shortest
// permutation prefix reaching the vote threshold T forms the quorum):
// server u is in the quorum iff the votes of the servers ordered before
// it sum below T, so
//   l(u) = sum_k P(|before| = k) * P(votes(before) < T | |before| = k)
//        = sum_k 1/(n * C(n-1, k)) * #{S subset of others : |S| = k,
//                                       votes(S) < T}.
// Computed exactly by a counting knapsack over (subset size, vote sum) —
// O(n^2 * V) time, O(n * V) space; counts are exact in doubles for the
// universe sizes the tests and benches use (they stay below 2^53).
double weighted_server_load(const std::vector<std::uint32_t>& votes,
                            std::uint32_t threshold, std::uint32_t server);

}  // namespace pqs::quorum

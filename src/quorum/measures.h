// Shared analytic measures for size-based quorum systems.
#pragma once

#include <cstdint>

namespace pqs::quorum {

// Failure probability of any system whose quorums all have size q drawn from
// a universe of n and which has a live quorum iff at least q servers are
// alive (threshold systems, and the uniform probabilistic construction
// R(n, q)): F_p = P(#crashed > n - q) for iid crash probability p.
double size_based_failure_probability(std::int64_t n, std::int64_t q,
                                      double p);

}  // namespace pqs::quorum

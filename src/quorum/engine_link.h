// The layering seam between quorum/ and the Monte-Carlo engine in core/.
//
// A few strict constructions have quality measures with no closed form
// (grid failure probability, weighted-voting load) and report fixed-seed
// Monte-Carlo estimates instead. Those estimates should run on the sharded
// core::Estimator — deterministic at any thread count and parallel — but
// core/ sits *above* quorum/ in the layer map, so quorum/ must not include
// engine headers. This header is the seam: quorum/ sees only these two
// free-function signatures; core/quorum_engine_link.cc provides the
// definitions on the shared engine. The static library resolves the link
// when core/ is (always) present; nothing here drags engine types into the
// quorum/ headers.
//
// Both functions advance no caller state: they seed a private generator
// from `seed`, run `samples` trials on the process-wide shared engine, and
// return the estimate. Results are a pure function of (system, p, samples,
// seed) — bit-identical across runs and thread counts.
#pragma once

#include <cstdint>

namespace pqs::quorum {

class QuorumSystem;

// Monte-Carlo F_p: frequency of "no live quorum" under iid crashes with
// probability p, on the shared engine.
double engine_failure_probability(const QuorumSystem& system, double p,
                                  std::uint64_t samples, std::uint64_t seed);

// Monte-Carlo load: maximum per-server access frequency of the system's
// strategy over `samples` draws, on the shared engine.
double engine_load(const QuorumSystem& system, std::uint64_t samples,
                   std::uint64_t seed);

}  // namespace pqs::quorum

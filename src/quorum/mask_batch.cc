#include "quorum/mask_batch.h"

namespace pqs::quorum {

MaskBatch::MaskBatch(std::uint32_t universe_size, std::size_t count)
    : n_(universe_size),
      words_per_mask_((static_cast<std::size_t>(universe_size) + 63) / 64),
      words_(words_per_mask_ * count, 0),  // zeroed once; attach adopts as-is
      masks_(count) {
  for (std::size_t i = 0; i < count; ++i) {
    masks_[i].attach(words_.data() + i * words_per_mask_, words_per_mask_,
                     universe_size);
  }
}

}  // namespace pqs::quorum

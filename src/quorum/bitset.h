// A reusable bitmask representation of a quorum.
//
// The Monte-Carlo hot loops draw millions of quorum pairs and ask only
// set-algebra questions about them: do they intersect, how large is the
// overlap, how much of it falls inside the Byzantine prefix {0..b-1}.
// QuorumBitset answers all of these through the runtime-dispatched kernel
// layer (simd/kernels.h) — word-parallel AND/popcount over a scratch buffer
// that is allocated once per shard and re-assigned per draw, vectorized
// when the CPU allows, always bit-identical to the scalar reference.
//
// Storage comes in two modes:
//   * owning (the default): the bitset holds its own word vector;
//   * view: attach() points the bitset at caller-owned words — how
//     quorum::MaskBatch lays a whole sample_masks chunk into one flat
//     buffer so a single kernel call can sweep the batch. Views behave
//     like any other bitset; copying one detaches it into an owning deep
//     copy, so no API can observe the difference except words() identity.
//
// Invariant: bits at positions >= universe_size() (the padding of the last
// word) are always zero. Every mutator preserves it; code that writes words
// directly through word_data() must restore it via mask_padding().
#pragma once

#include <cstdint>
#include <type_traits>
#include <vector>

#include "quorum/types.h"

namespace pqs::quorum {

// Portability seam for the one non-standard builtin the word walks need
// (C++17 has no std::popcount).
inline std::uint32_t popcount64(std::uint64_t x) {
  return static_cast<std::uint32_t>(__builtin_popcountll(x));
}

// Index of the lowest set bit (x must be nonzero); used to walk set bits.
inline std::uint32_t countr_zero64(std::uint64_t x) {
  return static_cast<std::uint32_t>(__builtin_ctzll(x));
}

class QuorumBitset {
 public:
  QuorumBitset() = default;
  explicit QuorumBitset(std::uint32_t universe_size) { resize(universe_size); }

  // Value semantics that respect views: copy construction produces an
  // owning deep copy; move construction transfers identity as-is — moving
  // from a view yields another view of the same caller-owned words, so it
  // must not outlive them (MaskBatch relies on this to relocate its view
  // array). Assignment *into a view* writes the source's words through to
  // the viewed storage (universes must match) so code like
  // SetSystem::sample_mask's `out = stored_mask` fills the caller's
  // buffer — a MaskBatch slice included — instead of silently detaching
  // the view. Assignment into an owning bitset deep-copies as usual.
  QuorumBitset(const QuorumBitset& other);
  QuorumBitset& operator=(const QuorumBitset& other);
  QuorumBitset(QuorumBitset&& other) noexcept;
  QuorumBitset& operator=(QuorumBitset&& other) noexcept;
  ~QuorumBitset() = default;

  // Sets the universe size and clears all bits. A view cannot change
  // universe size (its words belong to the batch); resizing a view to its
  // current size is a clear().
  void resize(std::uint32_t universe_size);
  std::uint32_t universe_size() const { return n_; }

  // Becomes a view of `words` (`word_count` words backing a universe of
  // `universe_size` bits; word_count must equal ceil(n/64)). The words are
  // adopted as-is — the caller provides zeroed (or padding-clean) memory
  // and owns it, keeping it alive and fixed while the view exists. Used by
  // MaskBatch; prefer that over calling this directly.
  void attach(std::uint64_t* words, std::size_t word_count,
              std::uint32_t universe_size);
  bool is_view() const { return view_; }

  // Zeroes every bit; the universe size is unchanged.
  void clear();

  void set(ServerId u) { words_[u >> 6] |= 1ULL << (u & 63); }
  void reset(ServerId u) { words_[u >> 6] &= ~(1ULL << (u & 63)); }
  bool test(ServerId u) const {
    return (words_[u >> 6] >> (u & 63)) & 1ULL;
  }

  // Sets every bit in [lo, hi) (hi <= n). The word-filling fast path of the
  // row/course-structured constructions (grid, wall).
  void set_range(std::uint32_t lo, std::uint32_t hi);

  // Clears, then sets one bit per member of `q` (members must be < n).
  void assign(const Quorum& q);

  // Number of set bits.
  std::uint32_t count() const;
  // |this ∩ {0..bound-1}|.
  std::uint32_t count_below(std::uint32_t bound) const;
  // |this ∩ {lo..hi-1}|.
  std::uint32_t count_in_range(std::uint32_t lo, std::uint32_t hi) const;
  // True iff every bit in [lo, hi) is set (vacuously true for lo >= hi).
  bool all_set_in_range(std::uint32_t lo, std::uint32_t hi) const;

  // Set-algebra against another bitset over the same universe.
  bool intersects(const QuorumBitset& other) const;
  std::uint32_t intersection_count(const QuorumBitset& other) const;
  // |this ∩ other ∩ {lo..n-1}| — the overlap outside the prefix {0..lo-1}
  // (the "correct servers in both quorums" count of Sections 4-5).
  std::uint32_t intersection_count_from(const QuorumBitset& other,
                                        std::uint32_t lo) const;
  // True iff other ⊆ this (the "is this quorum fully alive" question).
  bool contains_all(const QuorumBitset& other) const;
  // True iff both hold exactly the same members.
  bool equals(const QuorumBitset& other) const;
  // this |= other (set union; the gossip/coverage accumulation primitive).
  void or_with(const QuorumBitset& other);
  // ORs `src` (src_words raw words) into this bitset with every bit
  // translated up by `offset` positions — the bridge from a draw over a
  // translated sub-universe (sample_without_replacement_bits over, say,
  // one half of a split universe) onto the full universe's mask without
  // materializing a member list. Translated bits must land below the
  // universe size (checked for nonzero source words).
  void or_shifted(const std::uint64_t* src, std::size_t src_words,
                  std::uint32_t offset);
  // ORs `src` (src_words raw words over the compact rank universe
  // [0, live.count())) into this bitset with compact bit r translated to
  // the r-th set bit of `live` — or_shifted's sibling for *scattered*
  // sub-universes: a draw over the live members of a MembershipView lands
  // on the full slot universe without materializing a member list. `live`
  // must share this universe; src bits at ranks >= live.count() must be
  // zero (unchecked — sample_without_replacement_bits guarantees it).
  void or_expand(const std::uint64_t* src, std::size_t src_words,
                 const QuorumBitset& live);

  // Invokes fn(u) for every set bit u in ascending order — the one word
  // walk (ctz + clear-lowest-bit) every member-iterating caller shares. A
  // bool-returning fn short-circuits the walk by returning false (for
  // threshold-accumulating callers); a void fn visits every member.
  template <typename Fn>
  void for_each_set_bit(Fn&& fn) const {
    for (std::size_t i = 0; i < words_n_; ++i) {
      std::uint64_t w = words_[i];
      const std::uint32_t base = static_cast<std::uint32_t>(i) * 64;
      while (w != 0) {
        const ServerId u = base + countr_zero64(w);
        if constexpr (std::is_void_v<std::invoke_result_t<Fn&, ServerId>>) {
          fn(u);
        } else {
          if (!fn(u)) return;
        }
        w &= w - 1;
      }
    }
  }

  // The members as a sorted quorum (for tests and debugging).
  Quorum to_quorum() const;
  // As above but reusing the caller's vector — the bridge from a mask draw
  // back to the sorted-vector representation without allocation.
  void to_quorum_into(Quorum& out) const;

  // Raw word access for bulk writers (the batched Bernoulli alive-mask
  // generator) and word-at-a-time readers. words()[i] holds servers
  // 64i..64i+63, LSB first. After writing through word_data(), call
  // mask_padding() to restore the padding invariant.
  std::size_t word_count() const { return words_n_; }
  const std::uint64_t* words() const { return words_; }
  std::uint64_t* word_data() { return words_; }
  // Zeroes the bits >= n in the last word.
  void mask_padding();

 private:
  std::uint32_t n_ = 0;
  std::size_t words_n_ = 0;
  bool view_ = false;                   // words_ are caller-owned
  std::uint64_t* words_ = nullptr;      // storage_.data() unless a view
  std::vector<std::uint64_t> storage_;  // unused while viewing
};

}  // namespace pqs::quorum

// A reusable bitmask representation of a quorum.
//
// The Monte-Carlo hot loops draw millions of quorum pairs and ask only
// set-algebra questions about them: do they intersect, how large is the
// overlap, how much of it falls inside the Byzantine prefix {0..b-1}.
// QuorumBitset answers all of these with word-parallel AND/popcount loops
// over a scratch buffer that is allocated once per shard and re-assigned
// per draw — zero allocation and O(n/64) work per question, versus the
// O(q) merge over sorted vectors it replaces.
#pragma once

#include <cstdint>
#include <vector>

#include "quorum/types.h"

namespace pqs::quorum {

// Portability seam for the one non-standard builtin the word loops need
// (C++17 has no std::popcount).
inline std::uint32_t popcount64(std::uint64_t x) {
  return static_cast<std::uint32_t>(__builtin_popcountll(x));
}

class QuorumBitset {
 public:
  QuorumBitset() = default;
  explicit QuorumBitset(std::uint32_t universe_size) { resize(universe_size); }

  // Sets the universe size and clears all bits.
  void resize(std::uint32_t universe_size);
  std::uint32_t universe_size() const { return n_; }

  // Zeroes every bit; the universe size is unchanged.
  void clear();

  void set(ServerId u) { words_[u >> 6] |= 1ULL << (u & 63); }
  bool test(ServerId u) const {
    return (words_[u >> 6] >> (u & 63)) & 1ULL;
  }

  // Clears, then sets one bit per member of `q` (members must be < n).
  void assign(const Quorum& q);

  // Number of set bits.
  std::uint32_t count() const;
  // |this ∩ {0..bound-1}|.
  std::uint32_t count_below(std::uint32_t bound) const;

  // Set-algebra against another bitset over the same universe.
  bool intersects(const QuorumBitset& other) const;
  std::uint32_t intersection_count(const QuorumBitset& other) const;
  // |this ∩ other ∩ {lo..n-1}| — the overlap outside the prefix {0..lo-1}
  // (the "correct servers in both quorums" count of Sections 4-5).
  std::uint32_t intersection_count_from(const QuorumBitset& other,
                                        std::uint32_t lo) const;

  // The members as a sorted quorum (for tests and debugging).
  Quorum to_quorum() const;

 private:
  std::uint32_t n_ = 0;
  std::vector<std::uint64_t> words_;
};

}  // namespace pqs::quorum

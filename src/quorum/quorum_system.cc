#include "quorum/quorum_system.h"

namespace pqs::quorum {

void QuorumSystem::sample_into(Quorum& out, math::Rng& rng) const {
  // Scratch persists across draws so the fallback never allocates in
  // steady state.
  static thread_local QuorumBitset mask;
  mask.resize(universe_size());
  sample_mask(mask, rng);
  mask.to_quorum_into(out);
}

void QuorumSystem::sample_mask(QuorumBitset& out, math::Rng& rng) const {
  out.resize(universe_size());
  for (ServerId u : sample(rng)) out.set(u);
}

void QuorumSystem::sample_masks(QuorumBitset* out, std::size_t count,
                                math::Rng& rng) const {
  for (std::size_t i = 0; i < count; ++i) sample_mask(out[i], rng);
}

bool QuorumSystem::has_live_quorum_mask(const QuorumBitset& alive) const {
  static thread_local std::vector<bool> scratch;
  const std::uint32_t n = universe_size();
  scratch.assign(n, false);
  for (std::uint32_t u = 0; u < n; ++u) {
    if (alive.test(u)) scratch[u] = true;
  }
  return has_live_quorum(scratch);
}

}  // namespace pqs::quorum

// Workload-aware quorum strategies (ROADMAP item 3, the quoracle idea).
//
// The paper fixes one construction and one access strategy per deployment.
// "Read-Write Quorum Systems Made Practical" (Whittaker, Charapko, Aguilera,
// Szekeres, Ports; PAPERS.md) observes that for a *given workload* — read
// fraction fr, heterogeneous per-server capacities, crash probability p —
// a discrete distribution over read quorums and write quorums of the same
// underlying system beats any single fixed strategy on load: the optimizer
// below is their linear-programming formulation specialized to this
// library's closed-form measures.
//
// Strategy is a full QuorumSystem, so everything that consumes a
// construction (InstantCluster, KvService, the estimators) can consume a
// strategy instead. Its draws obey the repo-wide determinism contract:
//
//   * one rng word per draw, always — the index comes from a Walker/Vose
//     alias table evaluated in pure 64-bit integer arithmetic
//     (multiply-shift bucket + fixed-point threshold), so draws are
//     bit-identical across threads, draw paths, and ISAs, and never
//     reject/loop like Lemire sampling would;
//   * zero allocation — the support's quorums are prebuilt as both sorted
//     vectors and QuorumBitsets at construction, and sample_mask() just
//     copies the selected mask into the caller's scratch (write-through
//     into MaskBatch views included);
//   * the generic sample/sample_into/sample_mask face draws from the READ
//     distribution (reads are what the estimator hot loops measure);
//     protocol code that distinguishes reads from writes uses
//     draw_read_index/draw_write_index plus the indexed accessors, which
//     is how InstantCluster wires the two distributions in.
//
// The analytic face is exact over the explicit support: per-server access
// probabilities and capacity-weighted loads in closed form,
// predicted_epsilon(p) = sum_ij pr_i pw_j p^|R_i ∩ W_j| (at p = 0 this is
// the pairwise nonintersection probability — the Definition 3.1 eps of
// the strategy), failure_probability by inclusion-exclusion over the
// support, and fault_tolerance as the exact minimum hitting set.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "math/rng.h"
#include "quorum/bitset.h"
#include "quorum/quorum_system.h"
#include "quorum/types.h"

namespace pqs::quorum {

// The workload a strategy is optimized for (the quoracle inputs).
struct WorkloadSpec {
  // Fraction of operations that are reads, in [0, 1].
  double read_fraction = 0.5;
  // Independent per-server crash probability p, in [0, 1). Feeds the
  // epsilon matrix z_ij = p^|R_i ∩ W_j| the optimizer's ceiling
  // constraint is written over (p = 0: strict overlap only).
  double failure_prob = 0.0;
  // Relative per-server capacities; empty means uniform 1.0. A server's
  // reported load is its access probability divided by its capacity, so a
  // half-capacity server saturates at half the access share.
  std::vector<double> capacities;
};

class Strategy final : public QuorumSystem {
 public:
  // A discrete distribution over explicit read and write supports of
  // `base`'s universe. Probabilities must be nonnegative and sum to ~1
  // per side (they are renormalized exactly); quorums are copied, sorted,
  // and validated against the universe. The workload is carried along for
  // load() reporting and introspection.
  Strategy(std::shared_ptr<const QuorumSystem> base,
           std::vector<Quorum> read_support, std::vector<double> read_probs,
           std::vector<Quorum> write_support, std::vector<double> write_probs,
           WorkloadSpec workload = {});

  // ---- the two-distribution face (what the protocols use) -------------
  std::uint32_t read_support_size() const {
    return static_cast<std::uint32_t>(read_quorums_.size());
  }
  std::uint32_t write_support_size() const {
    return static_cast<std::uint32_t>(write_quorums_.size());
  }
  const Quorum& read_quorum(std::uint32_t i) const { return read_quorums_[i]; }
  const Quorum& write_quorum(std::uint32_t i) const {
    return write_quorums_[i];
  }
  const QuorumBitset& read_mask(std::uint32_t i) const {
    return read_masks_[i];
  }
  const QuorumBitset& write_mask(std::uint32_t i) const {
    return write_masks_[i];
  }
  double read_prob(std::uint32_t i) const { return read_probs_[i]; }
  double write_prob(std::uint32_t i) const { return write_probs_[i]; }
  const WorkloadSpec& workload() const { return workload_; }
  const QuorumSystem& base() const { return *base_; }

  // Draws a support index from the read / write distribution. Exactly one
  // rng word per call, integer-only — the strategy draw stream is as
  // disciplined as every construction's.
  std::uint32_t draw_read_index(math::Rng& rng) const {
    return draw(read_alias_, rng);
  }
  std::uint32_t draw_write_index(math::Rng& rng) const {
    return draw(write_alias_, rng);
  }

  // ---- exact analytic measures over the support -----------------------
  // P(server u is contacted by one operation) at the workload's read
  // fraction: fr * sum_i pr_i [u in R_i] + (1 - fr) * sum_j pw_j [u in W_j].
  double server_access_probability(ServerId u) const;
  // Capacity-weighted per-server loads (access probability / capacity).
  std::vector<double> load_vector() const;
  double max_load() const;
  // sum_ij pr_i pw_j p^|R_i ∩ W_j|: the probability that a read quorum
  // and an independently drawn write quorum share no *live* server when
  // servers crash iid with probability p. At p = 0 this is the pairwise
  // nonintersection probability — the strategy's Definition 3.1 epsilon.
  double predicted_epsilon(double p) const;

  // ---- QuorumSystem (the generic face draws the READ distribution) ----
  std::string name() const override;
  std::uint32_t universe_size() const override { return n_; }
  Quorum sample(math::Rng& rng) const override;
  void sample_into(Quorum& out, math::Rng& rng) const override;
  void sample_mask(QuorumBitset& out, math::Rng& rng) const override;
  void sample_masks(QuorumBitset* out, std::size_t count,
                    math::Rng& rng) const override;
  std::uint32_t min_quorum_size() const override;
  // Definition 2.4 load of the shipped strategy at its workload mix,
  // capacity-weighted (== max_load()).
  double load() const override;
  // Exact Definition 2.5 over the support: the smaller of the two sides'
  // minimum hitting sets, minus one (the adversary wipes out whichever
  // side is cheaper to hit; crashing fewer servers than either hitting
  // set leaves a live quorum on both sides).
  std::uint32_t fault_tolerance() const override;
  // P(no fully-live read quorum OR no fully-live write quorum) under iid
  // crashes, exact by inclusion-exclusion over the (deduplicated)
  // support families. Exponential in the support size by nature; the
  // constructor caps the combined support (kMaxExactSupport) to keep it
  // tractable.
  double failure_probability(double p) const override;
  bool has_live_quorum(const std::vector<bool>& alive) const override;
  bool has_live_quorum_mask(const QuorumBitset& alive) const override;

  // Combined read+write support ceiling for the exact analytic forms.
  static constexpr std::uint32_t kMaxExactSupport = 26;

 private:
  struct AliasSlot {
    std::uint64_t threshold = 0;  // accept idx while frac < threshold
    std::uint32_t alias = 0;
  };
  static std::vector<AliasSlot> build_alias(const std::vector<double>& probs);
  static std::uint32_t draw(const std::vector<AliasSlot>& table,
                            math::Rng& rng) {
    // One word w maps to (bucket, frac) = (w * m / 2^64, w * m mod 2^64):
    // the bucket is the multiply-shift range reduction, the remainder is a
    // uniform-enough fixed-point fraction against the bucket's threshold.
    const std::uint64_t w = rng.next();
    const unsigned __int128 wide =
        static_cast<unsigned __int128>(w) * table.size();
    const auto idx = static_cast<std::uint32_t>(wide >> 64);
    const auto frac = static_cast<std::uint64_t>(wide);
    const AliasSlot& slot = table[idx];
    return frac < slot.threshold ? idx : slot.alias;
  }

  std::shared_ptr<const QuorumSystem> base_;
  WorkloadSpec workload_;
  std::uint32_t n_ = 0;
  std::vector<Quorum> read_quorums_;
  std::vector<Quorum> write_quorums_;
  std::vector<QuorumBitset> read_masks_;
  std::vector<QuorumBitset> write_masks_;
  std::vector<double> read_probs_;
  std::vector<double> write_probs_;
  std::vector<AliasSlot> read_alias_;
  std::vector<AliasSlot> write_alias_;
  // |R_i ∩ W_j| for predicted_epsilon, row-major [i * mw + j].
  std::vector<std::uint32_t> overlap_;
};

// Optimizer knobs. Candidate quorums are drawn from the base system's own
// access strategy on a dedicated rng (seeded here — never a protocol
// stream), deduplicated; the LP then reweights them.
struct StrategyOptions {
  std::uint32_t read_candidates = 12;
  std::uint32_t write_candidates = 12;
  std::uint64_t seed = 0x57a7e61eULL;
  // Ceiling on predicted_epsilon(workload.failure_prob). Negative (the
  // default) derives it from the sampled support: the epsilon of the
  // *uniform* distribution over the candidates — i.e. the optimizer may
  // shift load around but may not be less consistent than undirected
  // sampling of the same quorums. Whatever the source, the ceiling is
  // clamped up to the support's minimum achievable epsilon so the program
  // is always feasible.
  double epsilon_ceiling = -1.0;
  // Alternating-LP rounds (each round solves the read side then the write
  // side; the bilinear eps constraint makes the joint problem non-convex,
  // and alternation keeps every iterate feasible because the constraint
  // is symmetric in the two sides).
  std::uint32_t rounds = 24;
};

// Searches for the distribution pair minimizing the maximum
// capacity-weighted per-server load subject to the epsilon ceiling, by
// alternating two exact LPs (math/simplex.h) over the closed-form loads:
// with pw fixed, the per-server load is linear in pr (and vice versa), so
// each half-step is  min t  s.t.  load_u(pr; pw) <= t for all u,
// sum_i pr_i e_i(pw) <= eps_max,  sum pr = 1,  pr >= 0.  Every half-step
// starts from a feasible incumbent and can only lower t, so the
// alternation converges monotonically.
std::shared_ptr<const Strategy> optimize_strategy(
    std::shared_ptr<const QuorumSystem> base, const WorkloadSpec& workload,
    const StrategyOptions& options = {});

}  // namespace pqs::quorum

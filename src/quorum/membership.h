// Epoch-stamped dynamic membership views.
//
// The paper's constructions fix the universe once; a deployment under churn
// does not. A MembershipView is the unit of dynamic membership the replica
// stack diffuses and draws quorums from: a fixed *slot* universe of
// `capacity` servers (so bitsets, per-server counters, and access checksums
// keep their indexing across churn), a live mask selecting the slots that
// currently hold a member, and a generation counter (`epoch`) bumped by
// every membership change.
//
// Views form a join-semilattice so gossip can diffuse them without
// coordination: merge() adopts the higher epoch wholesale and unions the
// masks of equal epochs — commutative, associative, and idempotent, so
// any diffusion order converges every correct server to the supremum of
// the views it has seen (test_membership_view fuzzes this).
//
// Quorum draws over a view pick a uniform q-subset of the *live* slots —
// the R(n, q) strategy of Definition 3.13 over the current universe, which
// is exactly the regime the timed-quorum analysis of Gramoli & Raynal
// models (core/timed_epsilon.h). The draw happens over the compact rank
// universe [0, live_count()) and is expanded through the live mask
// (QuorumBitset::or_expand), so the mask and allocating protocol paths
// consume identical rng streams — and, when every slot is live, the same
// stream as core::RandomSubsetSystem over the full universe.
#pragma once

#include <cstdint>
#include <vector>

#include "math/rng.h"
#include "quorum/bitset.h"
#include "quorum/types.h"

namespace pqs::quorum {

class MembershipView {
 public:
  // The empty view: capacity 0, epoch 0. A server holding it has not
  // learned any membership yet (gossip skips pushing it).
  MembershipView() = default;

  // `capacity` slots with the first `live` of them occupied, epoch 0.
  MembershipView(std::uint32_t capacity, std::uint32_t live);

  // All `capacity` slots live, epoch 0.
  static MembershipView full(std::uint32_t capacity) {
    return MembershipView(capacity, capacity);
  }

  std::uint32_t capacity() const { return live_.universe_size(); }
  std::uint64_t epoch() const { return epoch_; }
  std::uint32_t live_count() const { return live_count_; }
  bool is_live(ServerId slot) const { return live_.test(slot); }
  const QuorumBitset& live_mask() const { return live_; }

  // Membership changes: each bumps the epoch by exactly one (replace is
  // one reconfiguration, not two). join requires a dead slot, leave a
  // live one; replace additionally accepts joiner == victim — the
  // in-place slot reuse of a fixed-size fleet under churn, where the
  // membership *mask* is unchanged but the epoch still advances because
  // the slot's occupant (and its stored records) is new.
  void join(ServerId slot);
  void leave(ServerId slot);
  void replace(ServerId victim, ServerId joiner);

  // Lattice join: adopts `other` wholesale when its epoch is higher,
  // unions the live masks when epochs are equal (capacities must match;
  // merging with the empty view is a no-op). Returns whether *this
  // changed. Commutative, associative, idempotent.
  bool merge(const MembershipView& other);

  bool equals(const MembershipView& other) const;

  // The slot holding the rank-th live member, ranks ascending by slot id
  // (rank < live_count()).
  ServerId nth_live(std::uint32_t rank) const;

  // Draws a uniform q-subset of the live slots into `out` (resized to
  // capacity, overwritten). The draw runs over the compact rank universe
  // [0, live_count()) via math::sample_without_replacement_bits into
  // `compact_scratch` (resized as needed, zeroed here) and is expanded
  // through the live mask, so it consumes exactly the rng draws of
  // sample_live_into — the two are the view-aware twins of
  // sample_mask/sample on a static construction.
  void sample_live_mask(std::uint32_t q, math::Rng& rng, QuorumBitset& out,
                        std::vector<std::uint64_t>& compact_scratch) const;

  // Allocating twin: `out` holds the drawn members as sorted slot ids.
  // Same rng consumption and member set as sample_live_mask.
  void sample_live_into(std::uint32_t q, math::Rng& rng, Quorum& out) const;

 private:
  QuorumBitset live_;
  std::uint32_t live_count_ = 0;
  std::uint64_t epoch_ = 0;
};

}  // namespace pqs::quorum

#include "quorum/bitset.h"

#include <algorithm>

#include "simd/kernels.h"
#include "util/require.h"

namespace pqs::quorum {

namespace {

// Mask selecting the bits below position `bits` of one word (bits <= 64).
inline std::uint64_t low_mask(std::uint32_t bits) {
  return bits >= 64 ? ~0ULL : (1ULL << bits) - 1;
}

}  // namespace

QuorumBitset::QuorumBitset(const QuorumBitset& other)
    : n_(other.n_), words_n_(other.words_n_) {
  storage_.assign(other.words_, other.words_ + other.words_n_);
  words_ = storage_.data();
}

QuorumBitset& QuorumBitset::operator=(const QuorumBitset& other) {
  if (this == &other) return *this;
  if (view_) {
    // A view is a window onto caller-owned storage: assignment writes the
    // value through instead of detaching (the universes must agree).
    PQS_CHECK(n_ == other.n_);
    std::copy(other.words_, other.words_ + words_n_, words_);
    return *this;
  }
  n_ = other.n_;
  words_n_ = other.words_n_;
  storage_.assign(other.words_, other.words_ + other.words_n_);
  words_ = storage_.data();
  return *this;
}

QuorumBitset::QuorumBitset(QuorumBitset&& other) noexcept
    : n_(other.n_),
      words_n_(other.words_n_),
      view_(other.view_),
      words_(other.words_),
      storage_(std::move(other.storage_)) {
  if (!view_) words_ = storage_.data();
  other.n_ = 0;
  other.words_n_ = 0;
  other.view_ = false;
  other.words_ = nullptr;
  other.storage_.clear();
}

QuorumBitset& QuorumBitset::operator=(QuorumBitset&& other) noexcept {
  if (this == &other) return *this;
  if (view_) {
    // Write-through, as in copy assignment (a view's storage cannot be
    // stolen into). The source is left untouched.
    PQS_CHECK(n_ == other.n_);
    std::copy(other.words_, other.words_ + words_n_, words_);
    return *this;
  }
  n_ = other.n_;
  words_n_ = other.words_n_;
  view_ = other.view_;
  storage_ = std::move(other.storage_);
  words_ = view_ ? other.words_ : storage_.data();
  other.n_ = 0;
  other.words_n_ = 0;
  other.view_ = false;
  other.words_ = nullptr;
  other.storage_.clear();
  return *this;
}

void QuorumBitset::resize(std::uint32_t universe_size) {
  const std::size_t want = (static_cast<std::size_t>(universe_size) + 63) / 64;
  if (view_) {
    PQS_CHECK(universe_size == n_);
    clear();
    return;
  }
  n_ = universe_size;
  words_n_ = want;
  storage_.assign(want, 0);
  words_ = storage_.data();
}

void QuorumBitset::attach(std::uint64_t* words, std::size_t word_count,
                          std::uint32_t universe_size) {
  PQS_CHECK(word_count ==
            (static_cast<std::size_t>(universe_size) + 63) / 64);
  storage_.clear();
  view_ = true;
  words_ = words;
  words_n_ = word_count;
  n_ = universe_size;
}

void QuorumBitset::clear() {
  std::fill(words_, words_ + words_n_, 0ULL);
}

void QuorumBitset::assign(const Quorum& q) {
  clear();
  for (ServerId u : q) set(u);
}

void QuorumBitset::set_range(std::uint32_t lo, std::uint32_t hi) {
  PQS_CHECK(hi <= n_);
  if (lo >= hi) return;
  const std::uint32_t first = lo / 64;
  const std::uint32_t last = (hi - 1) / 64;
  if (first == last) {
    words_[first] |= low_mask(hi - last * 64) & ~low_mask(lo - first * 64);
    return;
  }
  words_[first] |= ~low_mask(lo - first * 64);
  for (std::uint32_t i = first + 1; i < last; ++i) words_[i] = ~0ULL;
  words_[last] |= low_mask(hi - last * 64);
}

void QuorumBitset::mask_padding() {
  if (n_ % 64 != 0 && words_n_ != 0) {
    words_[words_n_ - 1] &= low_mask(n_ % 64);
  }
}

std::uint32_t QuorumBitset::count() const {
  return simd::active().popcount(words_, words_n_);
}

std::uint32_t QuorumBitset::count_below(std::uint32_t bound) const {
  return simd::active().popcount_prefix(words_, std::min(bound, n_));
}

std::uint32_t QuorumBitset::count_in_range(std::uint32_t lo,
                                           std::uint32_t hi) const {
  // Callers (the grid/wall row checks) ask row-sized windows, so the
  // masked scalar walk over just [lo, hi) beats two prefix kernel sweeps
  // from word zero.
  hi = std::min(hi, n_);
  if (lo >= hi) return 0;
  const std::uint32_t first = lo / 64;
  const std::uint32_t last = (hi - 1) / 64;
  if (first == last) {
    return popcount64(words_[first] & low_mask(hi - last * 64) &
                      ~low_mask(lo - first * 64));
  }
  std::uint32_t total = popcount64(words_[first] & ~low_mask(lo - first * 64));
  for (std::uint32_t i = first + 1; i < last; ++i) {
    total += popcount64(words_[i]);
  }
  return total + popcount64(words_[last] & low_mask(hi - last * 64));
}

bool QuorumBitset::all_set_in_range(std::uint32_t lo, std::uint32_t hi) const {
  PQS_CHECK(hi <= n_);
  if (lo >= hi) return true;
  const std::uint32_t first = lo / 64;
  const std::uint32_t last = (hi - 1) / 64;
  if (first == last) {
    const std::uint64_t want =
        low_mask(hi - last * 64) & ~low_mask(lo - first * 64);
    return (words_[first] & want) == want;
  }
  const std::uint64_t head = ~low_mask(lo - first * 64);
  if ((words_[first] & head) != head) return false;
  for (std::uint32_t i = first + 1; i < last; ++i) {
    if (words_[i] != ~0ULL) return false;
  }
  const std::uint64_t tail = low_mask(hi - last * 64);
  return (words_[last] & tail) == tail;
}

bool QuorumBitset::intersects(const QuorumBitset& other) const {
  PQS_CHECK(n_ == other.n_);
  return simd::active().and_any(words_, other.words_, words_n_);
}

std::uint32_t QuorumBitset::intersection_count(const QuorumBitset& other) const {
  PQS_CHECK(n_ == other.n_);
  return simd::active().and_popcount(words_, other.words_, words_n_);
}

std::uint32_t QuorumBitset::intersection_count_from(const QuorumBitset& other,
                                                    std::uint32_t lo) const {
  PQS_CHECK(n_ == other.n_);
  if (lo >= n_) return 0;
  return simd::active().and_popcount_from(words_, other.words_, words_n_, lo);
}

bool QuorumBitset::contains_all(const QuorumBitset& other) const {
  PQS_CHECK(n_ == other.n_);
  return !simd::active().andnot_any(other.words_, words_, words_n_);
}

bool QuorumBitset::equals(const QuorumBitset& other) const {
  PQS_CHECK(n_ == other.n_);
  return simd::active().equal(words_, other.words_, words_n_);
}

void QuorumBitset::or_with(const QuorumBitset& other) {
  PQS_CHECK(n_ == other.n_);
  simd::active().or_accum(words_, other.words_, words_n_);
}

void QuorumBitset::or_shifted(const std::uint64_t* src, std::size_t src_words,
                              std::uint32_t offset) {
  const std::size_t word_offset = offset >> 6;
  const std::uint32_t bit_offset = offset & 63;
  for (std::size_t i = 0; i < src_words; ++i) {
    const std::uint64_t w = src[i];
    if (w == 0) continue;
    const std::size_t lo = word_offset + i;
    PQS_CHECK(lo < words_n_);
    words_[lo] |= w << bit_offset;
    if (bit_offset != 0 && (w >> (64 - bit_offset)) != 0) {
      PQS_CHECK(lo + 1 < words_n_);
      words_[lo + 1] |= w >> (64 - bit_offset);
    }
  }
  mask_padding();
}

void QuorumBitset::or_expand(const std::uint64_t* src, std::size_t src_words,
                             const QuorumBitset& live) {
  PQS_CHECK(n_ == live.n_);
  // Compact rank of the first live bit in the current live word.
  std::uint32_t rank = 0;
  for (std::size_t wi = 0; wi < live.words_n_; ++wi) {
    const std::uint64_t lw = live.words_[wi];
    if (lw == 0) continue;
    const std::uint32_t pc = popcount64(lw);
    // Bits [rank, rank + pc) of src are the draws landing in this word.
    const std::size_t sw = rank >> 6;
    const std::uint32_t sb = rank & 63;
    std::uint64_t chunk = sw < src_words ? src[sw] >> sb : 0;
    if (sb != 0 && sw + 1 < src_words) chunk |= src[sw + 1] << (64 - sb);
    if (pc < 64) chunk &= (1ULL << pc) - 1;
    // Deposit chunk bit j onto the j-th set bit of lw (a scalar PDEP:
    // each step consumes the lowest live bit and the lowest chunk slot).
    std::uint64_t sel = lw;
    std::uint64_t out = 0;
    while (chunk != 0) {
      if (chunk & 1) out |= sel & (~sel + 1);
      sel &= sel - 1;
      chunk >>= 1;
    }
    words_[wi] |= out;
    rank += pc;
  }
}

Quorum QuorumBitset::to_quorum() const {
  Quorum out;
  to_quorum_into(out);
  return out;
}

void QuorumBitset::to_quorum_into(Quorum& out) const {
  out.clear();
  for_each_set_bit([&out](ServerId u) { out.push_back(u); });
}

}  // namespace pqs::quorum

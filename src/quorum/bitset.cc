#include "quorum/bitset.h"

#include <algorithm>

#include "util/require.h"

namespace pqs::quorum {

namespace {

// Mask selecting the bits below position `bits` of one word (bits <= 64).
inline std::uint64_t low_mask(std::uint32_t bits) {
  return bits >= 64 ? ~0ULL : (1ULL << bits) - 1;
}

}  // namespace

void QuorumBitset::resize(std::uint32_t universe_size) {
  n_ = universe_size;
  words_.assign((static_cast<std::size_t>(n_) + 63) / 64, 0);
}

void QuorumBitset::clear() {
  std::fill(words_.begin(), words_.end(), 0ULL);
}

void QuorumBitset::assign(const Quorum& q) {
  clear();
  for (ServerId u : q) set(u);
}

void QuorumBitset::set_range(std::uint32_t lo, std::uint32_t hi) {
  PQS_CHECK(hi <= n_);
  if (lo >= hi) return;
  const std::uint32_t first = lo / 64;
  const std::uint32_t last = (hi - 1) / 64;
  if (first == last) {
    words_[first] |= low_mask(hi - last * 64) & ~low_mask(lo - first * 64);
    return;
  }
  words_[first] |= ~low_mask(lo - first * 64);
  for (std::uint32_t i = first + 1; i < last; ++i) words_[i] = ~0ULL;
  words_[last] |= low_mask(hi - last * 64);
}

void QuorumBitset::mask_padding() {
  if (n_ % 64 != 0 && !words_.empty()) {
    words_.back() &= low_mask(n_ % 64);
  }
}

std::uint32_t QuorumBitset::count() const {
  std::uint32_t total = 0;
  for (std::uint64_t w : words_) total += popcount64(w);
  return total;
}

std::uint32_t QuorumBitset::count_below(std::uint32_t bound) const {
  bound = std::min(bound, n_);
  const std::uint32_t full_words = bound / 64;
  std::uint32_t total = 0;
  for (std::uint32_t i = 0; i < full_words; ++i) total += popcount64(words_[i]);
  if (bound % 64 != 0) {
    total += popcount64(words_[full_words] & low_mask(bound % 64));
  }
  return total;
}

std::uint32_t QuorumBitset::count_in_range(std::uint32_t lo,
                                           std::uint32_t hi) const {
  hi = std::min(hi, n_);
  if (lo >= hi) return 0;
  const std::uint32_t first = lo / 64;
  const std::uint32_t last = (hi - 1) / 64;
  if (first == last) {
    return popcount64(words_[first] & low_mask(hi - last * 64) &
                      ~low_mask(lo - first * 64));
  }
  std::uint32_t total = popcount64(words_[first] & ~low_mask(lo - first * 64));
  for (std::uint32_t i = first + 1; i < last; ++i) {
    total += popcount64(words_[i]);
  }
  return total + popcount64(words_[last] & low_mask(hi - last * 64));
}

bool QuorumBitset::all_set_in_range(std::uint32_t lo, std::uint32_t hi) const {
  PQS_CHECK(hi <= n_);
  if (lo >= hi) return true;
  const std::uint32_t first = lo / 64;
  const std::uint32_t last = (hi - 1) / 64;
  if (first == last) {
    const std::uint64_t want =
        low_mask(hi - last * 64) & ~low_mask(lo - first * 64);
    return (words_[first] & want) == want;
  }
  const std::uint64_t head = ~low_mask(lo - first * 64);
  if ((words_[first] & head) != head) return false;
  for (std::uint32_t i = first + 1; i < last; ++i) {
    if (words_[i] != ~0ULL) return false;
  }
  const std::uint64_t tail = low_mask(hi - last * 64);
  return (words_[last] & tail) == tail;
}

bool QuorumBitset::intersects(const QuorumBitset& other) const {
  PQS_CHECK(n_ == other.n_);
  for (std::size_t i = 0; i < words_.size(); ++i) {
    if (words_[i] & other.words_[i]) return true;
  }
  return false;
}

std::uint32_t QuorumBitset::intersection_count(const QuorumBitset& other) const {
  PQS_CHECK(n_ == other.n_);
  std::uint32_t total = 0;
  for (std::size_t i = 0; i < words_.size(); ++i) {
    total += popcount64(words_[i] & other.words_[i]);
  }
  return total;
}

std::uint32_t QuorumBitset::intersection_count_from(const QuorumBitset& other,
                                                    std::uint32_t lo) const {
  PQS_CHECK(n_ == other.n_);
  if (lo >= n_) return 0;
  const std::uint32_t first_word = lo / 64;
  std::uint32_t total = 0;
  // The first word is partially masked; the rest count whole.
  std::uint64_t w = words_[first_word] & other.words_[first_word];
  w &= ~low_mask(lo % 64);
  total += popcount64(w);
  for (std::size_t i = first_word + 1; i < words_.size(); ++i) {
    total += popcount64(words_[i] & other.words_[i]);
  }
  return total;
}

bool QuorumBitset::contains_all(const QuorumBitset& other) const {
  PQS_CHECK(n_ == other.n_);
  for (std::size_t i = 0; i < words_.size(); ++i) {
    if (other.words_[i] & ~words_[i]) return false;
  }
  return true;
}

Quorum QuorumBitset::to_quorum() const {
  Quorum out;
  to_quorum_into(out);
  return out;
}

void QuorumBitset::to_quorum_into(Quorum& out) const {
  out.clear();
  for_each_set_bit([&out](ServerId u) { out.push_back(u); });
}

}  // namespace pqs::quorum

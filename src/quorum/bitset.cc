#include "quorum/bitset.h"

#include <algorithm>

#include "util/require.h"

namespace pqs::quorum {

namespace {

// Mask selecting the bits below position `bits` of one word (bits <= 64).
inline std::uint64_t low_mask(std::uint32_t bits) {
  return bits >= 64 ? ~0ULL : (1ULL << bits) - 1;
}

}  // namespace

void QuorumBitset::resize(std::uint32_t universe_size) {
  n_ = universe_size;
  words_.assign((static_cast<std::size_t>(n_) + 63) / 64, 0);
}

void QuorumBitset::clear() {
  std::fill(words_.begin(), words_.end(), 0ULL);
}

void QuorumBitset::assign(const Quorum& q) {
  clear();
  for (ServerId u : q) set(u);
}

std::uint32_t QuorumBitset::count() const {
  std::uint32_t total = 0;
  for (std::uint64_t w : words_) total += popcount64(w);
  return total;
}

std::uint32_t QuorumBitset::count_below(std::uint32_t bound) const {
  bound = std::min(bound, n_);
  const std::uint32_t full_words = bound / 64;
  std::uint32_t total = 0;
  for (std::uint32_t i = 0; i < full_words; ++i) total += popcount64(words_[i]);
  if (bound % 64 != 0) {
    total += popcount64(words_[full_words] & low_mask(bound % 64));
  }
  return total;
}

bool QuorumBitset::intersects(const QuorumBitset& other) const {
  PQS_CHECK(n_ == other.n_);
  for (std::size_t i = 0; i < words_.size(); ++i) {
    if (words_[i] & other.words_[i]) return true;
  }
  return false;
}

std::uint32_t QuorumBitset::intersection_count(const QuorumBitset& other) const {
  PQS_CHECK(n_ == other.n_);
  std::uint32_t total = 0;
  for (std::size_t i = 0; i < words_.size(); ++i) {
    total += popcount64(words_[i] & other.words_[i]);
  }
  return total;
}

std::uint32_t QuorumBitset::intersection_count_from(const QuorumBitset& other,
                                                    std::uint32_t lo) const {
  PQS_CHECK(n_ == other.n_);
  if (lo >= n_) return 0;
  const std::uint32_t first_word = lo / 64;
  std::uint32_t total = 0;
  // The first word is partially masked; the rest count whole.
  std::uint64_t w = words_[first_word] & other.words_[first_word];
  w &= ~low_mask(lo % 64);
  total += popcount64(w);
  for (std::size_t i = first_word + 1; i < words_.size(); ++i) {
    total += popcount64(words_[i] & other.words_[i]);
  }
  return total;
}

Quorum QuorumBitset::to_quorum() const {
  Quorum out;
  out.reserve(count());
  for (std::uint32_t u = 0; u < n_; ++u) {
    if (test(u)) out.push_back(u);
  }
  return out;
}

}  // namespace pqs::quorum

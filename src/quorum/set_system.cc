#include "quorum/set_system.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "math/sampling.h"
#include "quorum/bitset.h"
#include "util/require.h"

namespace pqs::quorum {

namespace {

// The exact exponential-time routines (hitting set, inclusion-exclusion)
// represent quorums as 64-bit masks; explicit systems are for small studies.
constexpr std::uint32_t kMaxExactUniverse = 64;
constexpr std::size_t kMaxExactQuorums = 24;

std::uint64_t to_mask(const Quorum& q) {
  std::uint64_t m = 0;
  for (ServerId u : q) m |= 1ULL << u;
  return m;
}

}  // namespace

SetSystem::SetSystem(std::uint32_t n, std::vector<Quorum> quorums)
    : SetSystem(n, std::move(quorums), {}) {}

SetSystem::SetSystem(std::uint32_t n, std::vector<Quorum> quorums,
                     std::vector<double> weights)
    : n_(n), quorums_(std::move(quorums)), weights_(std::move(weights)) {
  PQS_REQUIRE(n >= 1, "set system universe size");
  PQS_REQUIRE(!quorums_.empty(), "set system needs at least one quorum");
  for (auto& q : quorums_) {
    PQS_REQUIRE(!q.empty(), "empty quorum");
    std::sort(q.begin(), q.end());
    q.erase(std::unique(q.begin(), q.end()), q.end());
    PQS_REQUIRE(q.back() < n, "quorum member outside universe");
  }
  if (weights_.empty()) {
    weights_.assign(quorums_.size(), 1.0 / static_cast<double>(quorums_.size()));
  }
  PQS_REQUIRE(weights_.size() == quorums_.size(),
              "one weight per quorum required");
  double total = 0.0;
  for (double w : weights_) {
    PQS_REQUIRE(w >= 0.0, "negative strategy weight");
    total += w;
  }
  PQS_REQUIRE(std::abs(total - 1.0) < 1e-9, "strategy must sum to 1");
  cumulative_.resize(weights_.size());
  std::partial_sum(weights_.begin(), weights_.end(), cumulative_.begin());
  cumulative_.back() = 1.0;
  masks_.reserve(quorums_.size());
  for (const auto& q : quorums_) {
    masks_.emplace_back(n_);
    masks_.back().assign(q);
  }
}

SetSystem SetSystem::all_subsets(std::uint32_t n, std::uint32_t q) {
  PQS_REQUIRE(q >= 1 && q <= n, "subset size");
  PQS_REQUIRE(n <= 24, "all_subsets is for tiny universes");
  std::vector<Quorum> quorums;
  Quorum current(q);
  // Standard combination enumeration.
  std::vector<std::uint32_t> idx(q);
  std::iota(idx.begin(), idx.end(), 0u);
  while (true) {
    for (std::uint32_t i = 0; i < q; ++i) current[i] = idx[i];
    quorums.push_back(current);
    // Advance.
    std::int32_t i = static_cast<std::int32_t>(q) - 1;
    while (i >= 0 && idx[i] == n - q + static_cast<std::uint32_t>(i)) --i;
    if (i < 0) break;
    ++idx[i];
    for (std::uint32_t j = static_cast<std::uint32_t>(i) + 1; j < q; ++j) {
      idx[j] = idx[j - 1] + 1;
    }
  }
  return SetSystem(n, std::move(quorums));
}

std::string SetSystem::name() const {
  return "explicit(n=" + std::to_string(n_) +
         ",m=" + std::to_string(quorums_.size()) + ")";
}

Quorum SetSystem::sample(math::Rng& rng) const {
  Quorum q;
  sample_into(q, rng);
  return q;
}

std::size_t SetSystem::sample_index(math::Rng& rng) const {
  const double u = rng.uniform();
  const auto it = std::lower_bound(cumulative_.begin(), cumulative_.end(), u);
  const std::size_t i = static_cast<std::size_t>(it - cumulative_.begin());
  return std::min(i, quorums_.size() - 1);
}

void SetSystem::sample_into(Quorum& out, math::Rng& rng) const {
  out = quorums_[sample_index(rng)];
}

void SetSystem::sample_mask(QuorumBitset& out, math::Rng& rng) const {
  // Word-copy of the bitset materialized at construction; no per-member
  // work at all. Same uniform draw as the vector path.
  out = masks_[sample_index(rng)];
}

std::uint32_t SetSystem::min_quorum_size() const {
  std::size_t best = quorums_.front().size();
  for (const auto& q : quorums_) best = std::min(best, q.size());
  return static_cast<std::uint32_t>(best);
}

double SetSystem::server_load(ServerId u) const {
  double load = 0.0;
  for (std::size_t i = 0; i < quorums_.size(); ++i) {
    if (std::binary_search(quorums_[i].begin(), quorums_[i].end(), u)) {
      load += weights_[i];
    }
  }
  return load;
}

double SetSystem::load() const {
  double worst = 0.0;
  for (ServerId u = 0; u < n_; ++u) worst = std::max(worst, server_load(u));
  return worst;
}

bool SetSystem::is_strict() const { return min_pairwise_intersection() >= 1; }

std::uint32_t SetSystem::min_pairwise_intersection() const {
  std::size_t best = n_;
  for (std::size_t i = 0; i < quorums_.size(); ++i) {
    for (std::size_t j = i; j < quorums_.size(); ++j) {
      best = std::min(
          best, math::sorted_intersection_size(quorums_[i], quorums_[j]));
      if (best == 0) return 0;
    }
  }
  return static_cast<std::uint32_t>(best);
}

bool SetSystem::is_dissemination(std::uint32_t b) const {
  return fault_tolerance() > b && min_pairwise_intersection() >= b + 1;
}

bool SetSystem::is_masking(std::uint32_t b) const {
  return fault_tolerance() > b && min_pairwise_intersection() >= 2 * b + 1;
}

double SetSystem::intersection_probability() const {
  double total = 0.0;
  for (std::size_t i = 0; i < quorums_.size(); ++i) {
    if (weights_[i] == 0.0) continue;
    total += weights_[i] * quorum_quality(i);
  }
  return total;
}

double SetSystem::quorum_quality(std::size_t index) const {
  PQS_REQUIRE(index < quorums_.size(), "quorum index");
  double quality = 0.0;
  for (std::size_t j = 0; j < quorums_.size(); ++j) {
    if (math::sorted_intersects(quorums_[index], quorums_[j])) {
      quality += weights_[j];
    }
  }
  return quality;
}

std::vector<std::size_t> SetSystem::high_quality_indices(double delta) const {
  std::vector<std::size_t> out;
  for (std::size_t i = 0; i < quorums_.size(); ++i) {
    if (quorum_quality(i) >= 1.0 - delta) out.push_back(i);
  }
  return out;
}

std::uint32_t SetSystem::hitting_set_size(
    const std::vector<std::size_t>& indices) const {
  PQS_REQUIRE(n_ <= kMaxExactUniverse, "exact hitting set needs n <= 64");
  PQS_REQUIRE(!indices.empty(), "hitting set of nothing");
  std::vector<std::uint64_t> masks;
  masks.reserve(indices.size());
  for (std::size_t i : indices) masks.push_back(to_mask(quorums_[i]));

  std::uint32_t best = n_;  // hitting everything always works
  // Branch and bound: pick the first un-hit quorum and branch on which of
  // its members joins the hitting set.
  auto recurse = [&](auto&& self, std::uint64_t chosen,
                     std::uint32_t size) -> void {
    if (size >= best) return;
    const std::uint64_t* unhit = nullptr;
    for (const auto& m : masks) {
      if ((m & chosen) == 0) {
        unhit = &m;
        break;
      }
    }
    if (unhit == nullptr) {
      best = std::min(best, size);
      return;
    }
    std::uint64_t m = *unhit;
    while (m != 0) {
      const std::uint64_t bit = m & (~m + 1);
      self(self, chosen | bit, size + 1);
      m ^= bit;
    }
  };
  recurse(recurse, 0, 0);
  return best;
}

std::uint32_t SetSystem::fault_tolerance() const {
  std::vector<std::size_t> all(quorums_.size());
  std::iota(all.begin(), all.end(), std::size_t{0});
  return hitting_set_size(all);
}

namespace {
// delta = sqrt(eps) (Definition 3.6), floored at 1e-9 so that a strict
// system whose weight sums accumulate ~1e-16 of floating error still
// classifies every quorum as high quality.
double high_quality_delta(double eps) {
  return std::max(std::sqrt(std::max(0.0, eps)), 1e-9);
}
}  // namespace

std::uint32_t SetSystem::probabilistic_fault_tolerance() const {
  const double eps = std::max(0.0, 1.0 - intersection_probability());
  const auto hq = high_quality_indices(high_quality_delta(eps));
  if (hq.empty()) return 0;
  return hitting_set_size(hq);
}

double SetSystem::failure_probability_over(
    const std::vector<std::size_t>& indices, double p) const {
  PQS_REQUIRE(n_ <= kMaxExactUniverse, "exact F_p needs n <= 64");
  PQS_REQUIRE(indices.size() <= kMaxExactQuorums,
              "exact F_p needs few quorums (inclusion-exclusion)");
  if (indices.empty()) return 1.0;
  std::vector<std::uint64_t> masks;
  masks.reserve(indices.size());
  for (std::size_t i : indices) masks.push_back(to_mask(quorums_[i]));
  // P(some quorum fully alive) by inclusion-exclusion over quorum subsets.
  const double alive = 1.0 - p;
  double p_live = 0.0;
  const std::size_t m = masks.size();
  for (std::uint64_t t = 1; t < (1ULL << m); ++t) {
    std::uint64_t uni = 0;
    for (std::size_t i = 0; i < m; ++i) {
      if (t & (1ULL << i)) uni |= masks[i];
    }
    const int sign = (popcount64(t) % 2 == 1) ? 1 : -1;
    p_live += sign * std::pow(alive, popcount64(uni));
  }
  return std::clamp(1.0 - p_live, 0.0, 1.0);
}

double SetSystem::failure_probability(double p) const {
  std::vector<std::size_t> all(quorums_.size());
  std::iota(all.begin(), all.end(), std::size_t{0});
  return failure_probability_over(all, p);
}

double SetSystem::probabilistic_failure_probability(double p) const {
  const double eps = std::max(0.0, 1.0 - intersection_probability());
  return failure_probability_over(
      high_quality_indices(high_quality_delta(eps)), p);
}

bool SetSystem::has_live_quorum(const std::vector<bool>& alive) const {
  for (const auto& q : quorums_) {
    bool ok = true;
    for (ServerId u : q) {
      if (!alive[u]) {
        ok = false;
        break;
      }
    }
    if (ok) return true;
  }
  return false;
}

bool SetSystem::has_live_quorum_mask(const QuorumBitset& alive) const {
  for (const auto& m : masks_) {
    if (alive.contains_all(m)) return true;
  }
  return false;
}

}  // namespace pqs::quorum

#include "quorum/membership.h"

#include "math/sampling.h"
#include "util/require.h"

namespace pqs::quorum {

MembershipView::MembershipView(std::uint32_t capacity, std::uint32_t live)
    : live_(capacity), live_count_(live) {
  PQS_CHECK(live <= capacity);
  live_.set_range(0, live);
}

void MembershipView::join(ServerId slot) {
  PQS_CHECK(slot < capacity());
  PQS_CHECK(!live_.test(slot));
  live_.set(slot);
  ++live_count_;
  ++epoch_;
}

void MembershipView::leave(ServerId slot) {
  PQS_CHECK(slot < capacity());
  PQS_CHECK(live_.test(slot));
  live_.reset(slot);
  --live_count_;
  ++epoch_;
}

void MembershipView::replace(ServerId victim, ServerId joiner) {
  PQS_CHECK(victim < capacity());
  PQS_CHECK(joiner < capacity());
  PQS_CHECK(live_.test(victim));
  PQS_CHECK(joiner == victim || !live_.test(joiner));
  live_.reset(victim);
  live_.set(joiner);
  ++epoch_;
}

bool MembershipView::merge(const MembershipView& other) {
  if (other.capacity() == 0) return false;
  if (capacity() == 0) {
    *this = other;
    return true;
  }
  PQS_CHECK(capacity() == other.capacity());
  if (other.epoch_ < epoch_) return false;
  if (other.epoch_ > epoch_) {
    *this = other;
    return true;
  }
  // Equal epochs: the union of two independently-advanced masks. The join
  // is over the (max-epoch, mask-union) lattice, so this stays
  // commutative/associative/idempotent with the adopt cases above.
  if (live_.contains_all(other.live_)) return false;
  live_.or_with(other.live_);
  live_count_ = live_.count();
  return true;
}

bool MembershipView::equals(const MembershipView& other) const {
  if (capacity() != other.capacity() || epoch_ != other.epoch_) return false;
  return capacity() == 0 || live_.equals(other.live_);
}

ServerId MembershipView::nth_live(std::uint32_t rank) const {
  PQS_CHECK(rank < live_count_);
  const std::uint64_t* words = live_.words();
  for (std::size_t i = 0;; ++i) {
    std::uint64_t w = words[i];
    const std::uint32_t pc = popcount64(w);
    if (rank < pc) {
      while (rank > 0) {
        w &= w - 1;
        --rank;
      }
      return static_cast<ServerId>(i * 64) + countr_zero64(w);
    }
    rank -= pc;
  }
}

void MembershipView::sample_live_mask(
    std::uint32_t q, math::Rng& rng, QuorumBitset& out,
    std::vector<std::uint64_t>& compact_scratch) const {
  PQS_CHECK(q <= live_count_);
  out.resize(capacity());
  const std::size_t words = (static_cast<std::size_t>(live_count_) + 63) / 64;
  compact_scratch.assign(words, 0);
  math::sample_without_replacement_bits(live_count_, q, rng,
                                        compact_scratch.data());
  out.or_expand(compact_scratch.data(), words, live_);
}

void MembershipView::sample_live_into(std::uint32_t q, math::Rng& rng,
                                      Quorum& out) const {
  PQS_CHECK(q <= live_count_);
  math::sample_without_replacement(live_count_, q, rng, out);
  // Ranks are sorted and nth_live is monotone, so the translated quorum
  // stays sorted.
  for (ServerId& u : out) u = nth_live(u);
}

}  // namespace pqs::quorum

// Weighted voting (Gifford [Gif79]).
//
// Each server u carries votes[u] votes; a quorum is any set of servers
// whose votes total at least the threshold T, with 2T > V (total votes) so
// that two quorums always share a server. Majority voting is the special
// case of unit votes. This is the oldest strict baseline in the paper's
// bibliography and shows how heterogeneous servers skew load: high-vote
// servers appear in most quorums.
//
// Access strategy: a uniformly random permutation of the servers is taken
// and the shortest prefix reaching T votes forms the quorum. This is the
// natural unbiased strategy for vote systems; the induced load has no
// closed form for general vote vectors, so load() reports a fixed-seed
// Monte-Carlo estimate (documented, deterministic).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "quorum/quorum_system.h"

namespace pqs::quorum {

class WeightedVotingSystem final : public QuorumSystem {
 public:
  // votes[u] >= 1 for each server; threshold T with V/2 < T <= V.
  WeightedVotingSystem(std::vector<std::uint32_t> votes,
                       std::uint32_t threshold);

  // Unit votes, T = floor(V/2) + 1: plain majority voting.
  static WeightedVotingSystem majority(std::uint32_t n);

  std::string name() const override;
  std::uint32_t universe_size() const override;
  Quorum sample(math::Rng& rng) const override;
  void sample_into(Quorum& out, math::Rng& rng) const override;
  void sample_mask(QuorumBitset& out, math::Rng& rng) const override;
  // Fewest servers that can reach T (greedy by descending votes;
  // precomputed at construction).
  std::uint32_t min_quorum_size() const override { return min_quorum_size_; }
  // Fixed-seed Monte-Carlo estimate of the permutation strategy's load, on
  // the shared deterministic engine (quorum::engine_load).
  double load() const override;
  // Smallest set whose removal leaves the survivors below T, i.e. the
  // fewest servers holding at least V - T + 1 votes (greedy descending;
  // precomputed at construction).
  std::uint32_t fault_tolerance() const override { return fault_tolerance_; }
  // Exact, by dynamic programming over the attainable vote sums.
  double failure_probability(double p) const override;
  bool has_live_quorum(const std::vector<bool>& alive) const override;
  bool has_live_quorum_mask(const QuorumBitset& alive) const override;

  std::uint32_t total_votes() const { return total_votes_; }
  std::uint32_t threshold() const { return threshold_; }
  const std::vector<std::uint32_t>& votes() const { return votes_; }

 private:
  // Fewest servers (greedy descending votes) reaching `target` votes; runs
  // on the vote vector sorted once at construction.
  std::uint32_t greedy_count(std::uint32_t target) const;

  std::vector<std::uint32_t> votes_;
  std::uint32_t threshold_;
  std::uint32_t total_votes_;
  // Hoisted out of the per-call paths: votes sorted descending once, and
  // the two greedy measures derived from them.
  std::vector<std::uint32_t> votes_descending_;
  std::uint32_t min_quorum_size_;
  std::uint32_t fault_tolerance_;
};

}  // namespace pqs::quorum

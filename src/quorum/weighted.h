// Weighted voting (Gifford [Gif79]).
//
// Each server u carries votes[u] votes; a quorum is any set of servers
// whose votes total at least the threshold T, with 2T > V (total votes) so
// that two quorums always share a server. Majority voting is the special
// case of unit votes. This is the oldest strict baseline in the paper's
// bibliography and shows how heterogeneous servers skew load: high-vote
// servers appear in most quorums.
//
// Access strategy: a uniformly random permutation of the servers is taken
// and the shortest prefix reaching T votes forms the quorum. This is the
// natural unbiased strategy for vote systems; the induced load has no
// closed form for general vote vectors, so load() reports a fixed-seed
// Monte-Carlo estimate (documented, deterministic).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "quorum/quorum_system.h"

namespace pqs::quorum {

class WeightedVotingSystem final : public QuorumSystem {
 public:
  // votes[u] >= 1 for each server; threshold T with V/2 < T <= V.
  WeightedVotingSystem(std::vector<std::uint32_t> votes,
                       std::uint32_t threshold);

  // Unit votes, T = floor(V/2) + 1: plain majority voting.
  static WeightedVotingSystem majority(std::uint32_t n);

  std::string name() const override;
  std::uint32_t universe_size() const override;
  Quorum sample(math::Rng& rng) const override;
  void sample_into(Quorum& out, math::Rng& rng) const override;
  // Fewest servers that can reach T (greedy by descending votes).
  std::uint32_t min_quorum_size() const override;
  // Fixed-seed Monte-Carlo estimate of the permutation strategy's load.
  double load() const override;
  // Smallest set whose removal leaves the survivors below T, i.e. the
  // fewest servers holding at least V - T + 1 votes (greedy descending).
  std::uint32_t fault_tolerance() const override;
  // Exact, by dynamic programming over the attainable vote sums.
  double failure_probability(double p) const override;
  bool has_live_quorum(const std::vector<bool>& alive) const override;

  std::uint32_t total_votes() const { return total_votes_; }
  std::uint32_t threshold() const { return threshold_; }
  const std::vector<std::uint32_t>& votes() const { return votes_; }

 private:
  std::vector<std::uint32_t> votes_;
  std::uint32_t threshold_;
  std::uint32_t total_votes_;
};

}  // namespace pqs::quorum

// The singleton quorum system: a single distinguished server.
//
// Degenerate but load-bearing in the paper's evaluation: for p >= 1/2 the
// most available *strict* quorum system is a singleton (F_p = p), and the
// strict lower-bound curve in Figures 1-3 is the minimum of the majority
// system and this one (footnote 3).
#pragma once

#include <cstdint>
#include <string>

#include "quorum/quorum_system.h"

namespace pqs::quorum {

class SingletonSystem final : public QuorumSystem {
 public:
  // A universe of n servers of which `center` serves every request.
  explicit SingletonSystem(std::uint32_t n, ServerId center = 0);

  std::string name() const override;
  std::uint32_t universe_size() const override { return n_; }
  Quorum sample(math::Rng& rng) const override;
  void sample_into(Quorum& out, math::Rng& rng) const override;
  void sample_mask(QuorumBitset& out, math::Rng& rng) const override;
  std::uint32_t min_quorum_size() const override { return 1; }
  double load() const override { return 1.0; }
  std::uint32_t fault_tolerance() const override { return 1; }
  double failure_probability(double p) const override { return p; }
  bool has_live_quorum(const std::vector<bool>& alive) const override;
  bool has_live_quorum_mask(const QuorumBitset& alive) const override;

 private:
  std::uint32_t n_;
  ServerId center_;
};

}  // namespace pqs::quorum

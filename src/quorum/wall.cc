#include "quorum/wall.h"

#include <algorithm>
#include <cmath>

#include "quorum/measures.h"
#include "util/require.h"

namespace pqs::quorum {

WallSystem::WallSystem(std::vector<std::uint32_t> widths)
    : widths_(std::move(widths)) {
  PQS_REQUIRE(!widths_.empty(), "wall needs at least one row");
  starts_.reserve(widths_.size());
  std::uint32_t at = 0;
  for (auto w : widths_) {
    PQS_REQUIRE(w >= 1, "wall row width");
    starts_.push_back(at);
    at += w;
  }
  n_ = at;
}

WallSystem WallSystem::uniform(std::uint32_t rows, std::uint32_t width) {
  PQS_REQUIRE(rows >= 1 && width >= 1, "wall dimensions");
  return WallSystem(std::vector<std::uint32_t>(rows, width));
}

std::string WallSystem::name() const {
  return "wall(d=" + std::to_string(widths_.size()) +
         ",n=" + std::to_string(n_) + ")";
}

Quorum WallSystem::sample(math::Rng& rng) const {
  Quorum q;
  sample_into(q, rng);
  return q;
}

void WallSystem::sample_into(Quorum& out, math::Rng& rng) const {
  const std::uint32_t d = rows();
  const std::uint32_t chosen =
      static_cast<std::uint32_t>(rng.below(d));
  out.clear();
  out.reserve(widths_[chosen] + d - 1 - chosen);
  for (std::uint32_t c = 0; c < widths_[chosen]; ++c) {
    out.push_back(row_start(chosen) + c);
  }
  for (std::uint32_t j = chosen + 1; j < d; ++j) {
    out.push_back(row_start(j) +
                  static_cast<std::uint32_t>(rng.below(widths_[j])));
  }
  // Row-major emission in increasing rows is already sorted.
}

void WallSystem::sample_mask(QuorumBitset& out, math::Rng& rng) const {
  const std::uint32_t d = rows();
  const std::uint32_t chosen = static_cast<std::uint32_t>(rng.below(d));
  out.resize(n_);
  out.set_range(row_start(chosen), row_start(chosen) + widths_[chosen]);
  for (std::uint32_t j = chosen + 1; j < d; ++j) {
    out.set(row_start(j) + static_cast<std::uint32_t>(rng.below(widths_[j])));
  }
}

std::uint32_t WallSystem::min_quorum_size() const {
  const std::uint32_t d = rows();
  std::uint32_t best = n_;
  for (std::uint32_t i = 0; i < d; ++i) {
    best = std::min(best, widths_[i] + d - 1 - i);
  }
  return best;
}

double WallSystem::load() const {
  // Max over rows of the per-server closed form: full-row use (the row's
  // own choice) plus representative duty for the rows above it.
  double worst = 0.0;
  for (std::uint32_t i = 0; i < rows(); ++i) {
    worst = std::max(worst, wall_server_load(widths_, i));
  }
  return worst;
}

std::uint32_t WallSystem::fault_tolerance() const {
  // A hitting set either touches every row once (quorums with chosen row i
  // contain all of row i), or swallows some row j whole (hitting every
  // quorum choosing a row above j) and touches each row below j. The
  // second option costs w_j + (d - 1 - j) = the quorum size at row j.
  return std::min(rows(), min_quorum_size());
}

double WallSystem::failure_probability(double p) const {
  // Exact bottom-up DP over rows (rows are disjoint => independent).
  // For the suffix starting at row i track:
  //   u = P(no quorum can be formed within the suffix),
  //   t = P(no quorum in suffix AND every suffix row has a survivor).
  // Recurrence with a = P(row fully alive), b = P(row has a survivor):
  //   u_i = (1 - a) u_{i+1} + a (u_{i+1} - t_{i+1})
  //   t_i = (b - a) t_{i+1}
  double u = 1.0;
  double t = 1.0;
  for (std::uint32_t i = rows(); i-- > 0;) {
    const double w = static_cast<double>(widths_[i]);
    const double a = std::pow(1.0 - p, w);
    const double b = 1.0 - std::pow(p, w);
    const double u_next = u;
    const double t_next = t;
    u = (1.0 - a) * u_next + a * (u_next - t_next);
    t = (b - a) * t_next;
  }
  return std::clamp(u, 0.0, 1.0);
}

bool WallSystem::has_live_quorum(const std::vector<bool>& alive) const {
  const std::uint32_t d = rows();
  bool suffix_has_survivors = true;  // all rows below i have >= 1 alive
  for (std::uint32_t i = d; i-- > 0;) {
    bool full = true;
    bool any = false;
    for (std::uint32_t c = 0; c < widths_[i]; ++c) {
      const bool a = alive[row_start(i) + c];
      full = full && a;
      any = any || a;
    }
    if (full && suffix_has_survivors) return true;
    suffix_has_survivors = suffix_has_survivors && any;
  }
  return false;
}

bool WallSystem::has_live_quorum_mask(const QuorumBitset& alive) const {
  // Same bottom-up scan as above with each row answered by word ops.
  const std::uint32_t d = rows();
  bool suffix_has_survivors = true;
  for (std::uint32_t i = d; i-- > 0;) {
    const std::uint32_t lo = row_start(i);
    const std::uint32_t hi = lo + widths_[i];
    const std::uint32_t live = alive.count_in_range(lo, hi);
    if (live == widths_[i] && suffix_has_survivors) return true;
    suffix_has_survivors = suffix_has_survivors && live > 0;
  }
  return false;
}

}  // namespace pqs::quorum

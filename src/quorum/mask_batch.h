// A chunk of quorum masks in one flat word buffer.
//
// sample_masks() draws through an array of QuorumBitset; when those bitsets
// each own their words, the drawn chunk is scattered across the heap and
// every set-algebra question costs one kernel call per mask. MaskBatch lays
// `count` masks out contiguously — mask i occupies words
// [i*words_per_mask, (i+1)*words_per_mask) — and exposes QuorumBitset
// *views* over the slices, so the existing draw entry points fill it
// unchanged while the estimators hand the whole buffer to one strided
// batch kernel (simd::Kernels::batch_*).
//
// The batch owns the buffer; it is movable but not copyable (copying would
// have to rebind every view). Views keep the bitset padding invariant
// individually, so the flat buffer is always kernel-clean.
#pragma once

#include <cstdint>
#include <vector>

#include "quorum/bitset.h"

namespace pqs::quorum {

/// A chunk of quorum masks in one flat word buffer, exposed as
/// QuorumBitset views so the draw entry points fill it unchanged while
/// batch kernels sweep the whole buffer in one strided call.
class MaskBatch {
 public:
  /// Lays out `count` masks over a universe of `universe_size` bits; mask
  /// i occupies words [i*words_per_mask(), (i+1)*words_per_mask()).
  MaskBatch(std::uint32_t universe_size, std::size_t count);

  MaskBatch(const MaskBatch&) = delete;
  MaskBatch& operator=(const MaskBatch&) = delete;
  MaskBatch(MaskBatch&&) = default;
  MaskBatch& operator=(MaskBatch&&) = default;

  std::uint32_t universe_size() const { return n_; }
  std::size_t count() const { return masks_.size(); }
  /// ceil(universe_size / 64) — the stride between consecutive masks.
  std::size_t words_per_mask() const { return words_per_mask_; }

  /// The views, suitable for QuorumSystem::sample_masks(masks(), k, rng).
  /// Each view keeps the bitset padding invariant individually, so the
  /// flat buffer is always kernel-clean.
  QuorumBitset* masks() { return masks_.data(); }
  QuorumBitset& mask(std::size_t i) { return masks_[i]; }
  const QuorumBitset& mask(std::size_t i) const { return masks_[i]; }

  /// The flat buffer (count() * words_per_mask() words), for the strided
  /// simd::Kernels::batch_* calls.
  std::uint64_t* words() { return words_.data(); }
  const std::uint64_t* words() const { return words_.data(); }

 private:
  std::uint32_t n_ = 0;
  std::size_t words_per_mask_ = 0;
  std::vector<std::uint64_t> words_;
  std::vector<QuorumBitset> masks_;
};

}  // namespace pqs::quorum

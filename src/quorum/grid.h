// Grid quorum systems (Maekawa [Mae85]) and their Byzantine generalizations
// ([MRW00]) used as baselines in Tables 2-4.
//
// Servers are laid out in a rows x cols grid. A quorum is the union of
// d full rows and d full columns; the access strategy picks the d row
// indices and d column indices uniformly at random.
//
//   d = 1                        : the classic grid (Table 2)
//   d = ceil(sqrt((b+1)/2))      : grid b-dissemination (Table 3) — any two
//                                  quorums share >= 2d^2 >= b+1 servers
//   d = ceil(sqrt(b+1))          : grid b-masking (Table 4) — overlap
//                                  >= 2d^2 >= 2b+1 servers (for d^2 >= b+1)
#pragma once

#include <cstdint>
#include <string>

#include "quorum/quorum_system.h"

namespace pqs::quorum {

class GridSystem final : public QuorumSystem {
 public:
  // rows x cols grid with quorums of d rows + d cols. Requires
  // 1 <= d <= min(rows, cols).
  GridSystem(std::uint32_t rows, std::uint32_t cols, std::uint32_t d = 1);

  // Square sqrt(n) x sqrt(n) grid (n must be a perfect square).
  static GridSystem square(std::uint32_t n);
  // Grid b-dissemination / b-masking systems over a square grid, with d
  // chosen per [MRW00] as above. Validates A(Q) > b.
  static GridSystem dissemination(std::uint32_t n, std::uint32_t b);
  static GridSystem masking(std::uint32_t n, std::uint32_t b);

  std::string name() const override;
  std::uint32_t universe_size() const override { return rows_ * cols_; }
  Quorum sample(math::Rng& rng) const override;
  void sample_into(Quorum& out, math::Rng& rng) const override;
  void sample_mask(QuorumBitset& out, math::Rng& rng) const override;
  void sample_masks(QuorumBitset* out, std::size_t count,
                    math::Rng& rng) const override;
  std::uint32_t min_quorum_size() const override;
  double load() const override;
  // A full explanation lives in the .cc: disabling every quorum requires
  // hitting servers in rows - d + 1 distinct rows (or cols - d + 1 distinct
  // columns), whichever is cheaper.
  std::uint32_t fault_tolerance() const override;
  // No closed form for d >= 1 with row/column correlations; estimated on
  // the shared deterministic Monte-Carlo engine with a fixed internal seed
  // (via quorum::engine_failure_probability — see engine_link.h).
  double failure_probability(double p) const override;
  bool has_live_quorum(const std::vector<bool>& alive) const override;
  bool has_live_quorum_mask(const QuorumBitset& alive) const override;

  std::uint32_t rows() const { return rows_; }
  std::uint32_t cols() const { return cols_; }
  std::uint32_t depth() const { return d_; }
  // Guaranteed pairwise overlap: two quorums share at least 2d^2 servers
  // (each of my d rows meets each of your d cols and vice versa).
  std::uint32_t min_pairwise_intersection() const { return 2 * d_ * d_; }

 private:
  std::uint32_t rows_;
  std::uint32_t cols_;
  std::uint32_t d_;
};

}  // namespace pqs::quorum

#include "quorum/singleton.h"

#include "util/require.h"

namespace pqs::quorum {

SingletonSystem::SingletonSystem(std::uint32_t n, ServerId center)
    : n_(n), center_(center) {
  PQS_REQUIRE(n >= 1, "singleton universe size");
  PQS_REQUIRE(center < n, "singleton center in universe");
}

std::string SingletonSystem::name() const {
  return "singleton(n=" + std::to_string(n_) + ")";
}

Quorum SingletonSystem::sample(math::Rng&) const { return {center_}; }

void SingletonSystem::sample_into(Quorum& out, math::Rng&) const {
  out.clear();
  out.push_back(center_);
}

void SingletonSystem::sample_mask(QuorumBitset& out, math::Rng&) const {
  out.resize(n_);
  out.set(center_);
}

bool SingletonSystem::has_live_quorum(const std::vector<bool>& alive) const {
  return alive[center_];
}

bool SingletonSystem::has_live_quorum_mask(const QuorumBitset& alive) const {
  return alive.test(center_);
}

}  // namespace pqs::quorum

// The QuorumSystem interface.
//
// A quorum system is a set system over a universe of n servers together with
// an access strategy w (Definitions 2.1-2.3). Code that uses quorums — the
// replication protocols, the Monte-Carlo verifiers, the bench harness — only
// needs to (a) sample a quorum according to w, (b) ask for the analytic
// quality measures of Section 2: load, fault tolerance, failure probability.
//
// Strict systems (src/quorum) guarantee pairwise intersection; probabilistic
// systems (src/core) guarantee intersection only with probability >= 1 - eps
// under their strategy. Both implement this interface.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "math/rng.h"
#include "quorum/bitset.h"
#include "quorum/types.h"

namespace pqs::quorum {

class QuorumSystem {
 public:
  virtual ~QuorumSystem() = default;

  // Human-readable construction name, e.g. "threshold(n=100,q=51)".
  virtual std::string name() const = 0;

  // |U|.
  virtual std::uint32_t universe_size() const = 0;

  // Draws one quorum according to the system's access strategy w.
  //
  // The three draw paths form a hierarchy — sample() (allocating) →
  // sample_into() (sorted vector, caller scratch) → sample_mask() (bitset,
  // no ordering) — and for any fixed rng state all three yield the same
  // member set while consuming the same rng draws, so they are freely
  // interchangeable inside seeded experiments.
  virtual Quorum sample(math::Rng& rng) const = 0;

  // Draws one quorum into `out` (overwritten, sorted). Constructions
  // override this with an allocation-free fast path; the default expands a
  // sample_mask() draw back into sorted ids.
  virtual void sample_into(Quorum& out, math::Rng& rng) const;

  // Draws one quorum as a bitset: `out` is resized to the universe and
  // holds exactly the members of the drawn quorum. This is the native
  // representation of the Monte-Carlo hot loops — constructions set bits
  // (or whole words) directly, skipping the sorted-vector round trip. The
  // default copies a sample() draw.
  virtual void sample_mask(QuorumBitset& out, math::Rng& rng) const;

  /// Draws `count` quorums into out[0..count), in draw order.
  ///
  /// \param out   `count` bitsets (owned, or quorum::MaskBatch views over
  ///              one flat buffer); each is resized to the universe and
  ///              overwritten with one drawn quorum.
  /// \param count quorums to draw.
  /// \param rng   consumed exactly as `count` successive sample_mask()
  ///              calls would consume it — batching changes dispatch
  ///              cost, never the stream, so results are independent of
  ///              the chunk size a caller picks.
  ///
  /// The default loops sample_mask; constructions whose mask fill is
  /// non-virtual override to pay one virtual call per batch instead of
  /// one per draw (the estimators and the protocol throughput harness
  /// draw in chunks through this entry point).
  virtual void sample_masks(QuorumBitset* out, std::size_t count,
                            math::Rng& rng) const;

  // c(Q): size of the smallest quorum.
  virtual std::uint32_t min_quorum_size() const = 0;

  // Load L induced by the system's strategy (Definition 2.4 / 3.3). All the
  // constructions in this library are symmetric enough that the load of the
  // shipped strategy is known in closed form.
  virtual double load() const = 0;

  // Crash fault tolerance A (Definition 2.5; Definition 3.7 for
  // probabilistic systems, where it is computed over high-quality quorums).
  virtual std::uint32_t fault_tolerance() const = 0;

  // F_p (Definition 2.6 / 3.8): probability that no (high-quality) quorum is
  // fully alive when servers crash independently with probability p.
  virtual double failure_probability(double p) const = 0;

  // True iff some (high-quality) quorum survives given the alive mask
  // (alive.size() == universe_size()). Drives the generic Monte-Carlo
  // failure-probability estimator, which cross-checks failure_probability().
  virtual bool has_live_quorum(const std::vector<bool>& alive) const = 0;

  // As above over a bitset (alive.universe_size() == universe_size()), so
  // the failure-probability hot loop stays word-parallel end to end.
  // Constructions override with word loops; the default expands to a
  // vector<bool> and answers via has_live_quorum. Both overloads must
  // agree on every mask.
  virtual bool has_live_quorum_mask(const QuorumBitset& alive) const;
};

}  // namespace pqs::quorum

// The QuorumSystem interface.
//
// A quorum system is a set system over a universe of n servers together with
// an access strategy w (Definitions 2.1-2.3). Code that uses quorums — the
// replication protocols, the Monte-Carlo verifiers, the bench harness — only
// needs to (a) sample a quorum according to w, (b) ask for the analytic
// quality measures of Section 2: load, fault tolerance, failure probability.
//
// Strict systems (src/quorum) guarantee pairwise intersection; probabilistic
// systems (src/core) guarantee intersection only with probability >= 1 - eps
// under their strategy. Both implement this interface.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "math/rng.h"
#include "quorum/types.h"

namespace pqs::quorum {

class QuorumSystem {
 public:
  virtual ~QuorumSystem() = default;

  // Human-readable construction name, e.g. "threshold(n=100,q=51)".
  virtual std::string name() const = 0;

  // |U|.
  virtual std::uint32_t universe_size() const = 0;

  // Draws one quorum according to the system's access strategy w.
  virtual Quorum sample(math::Rng& rng) const = 0;

  // Draws one quorum into `out` (overwritten). Constructions override this
  // with an allocation-free fast path for the Monte-Carlo hot loops; the
  // default copies sample()'s result. For any fixed rng state this yields
  // exactly the quorum sample() would.
  virtual void sample_into(Quorum& out, math::Rng& rng) const {
    out = sample(rng);
  }

  // c(Q): size of the smallest quorum.
  virtual std::uint32_t min_quorum_size() const = 0;

  // Load L induced by the system's strategy (Definition 2.4 / 3.3). All the
  // constructions in this library are symmetric enough that the load of the
  // shipped strategy is known in closed form.
  virtual double load() const = 0;

  // Crash fault tolerance A (Definition 2.5; Definition 3.7 for
  // probabilistic systems, where it is computed over high-quality quorums).
  virtual std::uint32_t fault_tolerance() const = 0;

  // F_p (Definition 2.6 / 3.8): probability that no (high-quality) quorum is
  // fully alive when servers crash independently with probability p.
  virtual double failure_probability(double p) const = 0;

  // True iff some (high-quality) quorum survives given the alive mask
  // (alive.size() == universe_size()). Drives the generic Monte-Carlo
  // failure-probability estimator, which cross-checks failure_probability().
  virtual bool has_live_quorum(const std::vector<bool>& alive) const = 0;
};

}  // namespace pqs::quorum

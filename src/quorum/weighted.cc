#include "quorum/weighted.h"

#include <algorithm>
#include <numeric>

#include "math/sampling.h"
#include "util/require.h"

namespace pqs::quorum {

WeightedVotingSystem::WeightedVotingSystem(std::vector<std::uint32_t> votes,
                                           std::uint32_t threshold)
    : votes_(std::move(votes)), threshold_(threshold) {
  PQS_REQUIRE(!votes_.empty(), "weighted voting needs servers");
  for (auto v : votes_) PQS_REQUIRE(v >= 1, "every server needs >= 1 vote");
  total_votes_ = std::accumulate(votes_.begin(), votes_.end(), 0u);
  PQS_REQUIRE(threshold_ <= total_votes_, "threshold above total votes");
  PQS_REQUIRE(2 * threshold_ > total_votes_,
              "weighted voting requires 2T > V for intersection");
}

WeightedVotingSystem WeightedVotingSystem::majority(std::uint32_t n) {
  PQS_REQUIRE(n >= 1, "universe size");
  return WeightedVotingSystem(std::vector<std::uint32_t>(n, 1), n / 2 + 1);
}

std::string WeightedVotingSystem::name() const {
  return "weighted(n=" + std::to_string(votes_.size()) +
         ",V=" + std::to_string(total_votes_) +
         ",T=" + std::to_string(threshold_) + ")";
}

std::uint32_t WeightedVotingSystem::universe_size() const {
  return static_cast<std::uint32_t>(votes_.size());
}

Quorum WeightedVotingSystem::sample(math::Rng& rng) const {
  Quorum q;
  sample_into(q, rng);
  return q;
}

void WeightedVotingSystem::sample_into(Quorum& out, math::Rng& rng) const {
  // Scratch persists across draws so the hot loop never allocates.
  static thread_local std::vector<std::uint32_t> order;
  order.resize(votes_.size());
  std::iota(order.begin(), order.end(), 0u);
  math::shuffle(order, rng);
  out.clear();
  std::uint32_t gathered = 0;
  for (auto u : order) {
    out.push_back(u);
    gathered += votes_[u];
    if (gathered >= threshold_) break;
  }
  std::sort(out.begin(), out.end());
}

namespace {

// Fewest servers (greedy descending votes) to reach `target` votes.
std::uint32_t greedy_count(const std::vector<std::uint32_t>& votes,
                           std::uint32_t target) {
  std::vector<std::uint32_t> sorted = votes;
  std::sort(sorted.begin(), sorted.end(), std::greater<>());
  std::uint32_t gathered = 0;
  std::uint32_t count = 0;
  for (auto v : sorted) {
    if (gathered >= target) break;
    gathered += v;
    ++count;
  }
  return count;
}

}  // namespace

std::uint32_t WeightedVotingSystem::min_quorum_size() const {
  return greedy_count(votes_, threshold_);
}

double WeightedVotingSystem::load() const {
  constexpr int kSamples = 20000;
  math::Rng rng(0x1f0ad ^ (std::uint64_t(total_votes_) << 20) ^ threshold_);
  std::vector<std::uint32_t> hits(votes_.size(), 0);
  for (int s = 0; s < kSamples; ++s) {
    for (auto u : sample(rng)) ++hits[u];
  }
  const auto max_hits = *std::max_element(hits.begin(), hits.end());
  return static_cast<double>(max_hits) / kSamples;
}

std::uint32_t WeightedVotingSystem::fault_tolerance() const {
  // Disabling every quorum needs the dead votes to exceed V - T; the
  // cheapest way takes the largest-vote servers first.
  return greedy_count(votes_, total_votes_ - threshold_ + 1);
}

double WeightedVotingSystem::failure_probability(double p) const {
  // dp[v] = P(alive servers hold exactly v votes); exact in O(n * V).
  std::vector<double> dp(total_votes_ + 1, 0.0);
  dp[0] = 1.0;
  std::uint32_t prefix = 0;
  for (auto v : votes_) {
    prefix += v;
    // Alive with probability 1 - p contributes its v votes (in-place
    // knapsack update, descending so each server counts once).
    for (std::uint32_t sum = prefix; sum >= v; --sum) {
      dp[sum] = dp[sum] * p + dp[sum - v] * (1.0 - p);
    }
    for (std::uint32_t sum = 0; sum < v; ++sum) dp[sum] *= p;
  }
  double fail = 0.0;
  for (std::uint32_t sum = 0; sum < threshold_; ++sum) fail += dp[sum];
  return std::min(1.0, fail);
}

bool WeightedVotingSystem::has_live_quorum(
    const std::vector<bool>& alive) const {
  std::uint32_t gathered = 0;
  for (std::uint32_t u = 0; u < votes_.size(); ++u) {
    if (alive[u]) gathered += votes_[u];
  }
  return gathered >= threshold_;
}

}  // namespace pqs::quorum

#include "quorum/weighted.h"

#include <algorithm>
#include <numeric>

#include "math/sampling.h"
#include "quorum/engine_link.h"
#include "util/require.h"

namespace pqs::quorum {

WeightedVotingSystem::WeightedVotingSystem(std::vector<std::uint32_t> votes,
                                           std::uint32_t threshold)
    : votes_(std::move(votes)), threshold_(threshold) {
  PQS_REQUIRE(!votes_.empty(), "weighted voting needs servers");
  for (auto v : votes_) PQS_REQUIRE(v >= 1, "every server needs >= 1 vote");
  total_votes_ = std::accumulate(votes_.begin(), votes_.end(), 0u);
  PQS_REQUIRE(threshold_ <= total_votes_, "threshold above total votes");
  PQS_REQUIRE(2 * threshold_ > total_votes_,
              "weighted voting requires 2T > V for intersection");
  // Sort once; every greedy measure reads this instead of re-sorting a
  // copy of the vote vector per call.
  votes_descending_ = votes_;
  std::sort(votes_descending_.begin(), votes_descending_.end(),
            std::greater<>());
  min_quorum_size_ = greedy_count(threshold_);
  // Disabling every quorum needs the dead votes to exceed V - T; the
  // cheapest way takes the largest-vote servers first.
  fault_tolerance_ = greedy_count(total_votes_ - threshold_ + 1);
}

std::uint32_t WeightedVotingSystem::greedy_count(std::uint32_t target) const {
  std::uint32_t gathered = 0;
  std::uint32_t count = 0;
  for (auto v : votes_descending_) {
    if (gathered >= target) break;
    gathered += v;
    ++count;
  }
  return count;
}

WeightedVotingSystem WeightedVotingSystem::majority(std::uint32_t n) {
  PQS_REQUIRE(n >= 1, "universe size");
  return WeightedVotingSystem(std::vector<std::uint32_t>(n, 1), n / 2 + 1);
}

std::string WeightedVotingSystem::name() const {
  return "weighted(n=" + std::to_string(votes_.size()) +
         ",V=" + std::to_string(total_votes_) +
         ",T=" + std::to_string(threshold_) + ")";
}

std::uint32_t WeightedVotingSystem::universe_size() const {
  return static_cast<std::uint32_t>(votes_.size());
}

Quorum WeightedVotingSystem::sample(math::Rng& rng) const {
  Quorum q;
  sample_into(q, rng);
  return q;
}

void WeightedVotingSystem::sample_into(Quorum& out, math::Rng& rng) const {
  // Scratch persists across draws so the hot loop never allocates. The
  // final sort orders the *members* (the sorted-quorum invariant of the
  // vector path); the mask path below has no ordering to maintain.
  static thread_local std::vector<std::uint32_t> order;
  order.resize(votes_.size());
  std::iota(order.begin(), order.end(), 0u);
  math::shuffle(order, rng);
  out.clear();
  std::uint32_t gathered = 0;
  for (auto u : order) {
    out.push_back(u);
    gathered += votes_[u];
    if (gathered >= threshold_) break;
  }
  std::sort(out.begin(), out.end());
}

void WeightedVotingSystem::sample_mask(QuorumBitset& out,
                                       math::Rng& rng) const {
  static thread_local std::vector<std::uint32_t> order;
  order.resize(votes_.size());
  std::iota(order.begin(), order.end(), 0u);
  math::shuffle(order, rng);
  out.resize(universe_size());
  std::uint32_t gathered = 0;
  for (auto u : order) {
    out.set(u);
    gathered += votes_[u];
    if (gathered >= threshold_) break;
  }
}

double WeightedVotingSystem::load() const {
  // No closed form for general vote vectors; a fixed-seed estimate on the
  // shared deterministic engine (see engine_link.h for the layering).
  constexpr std::uint64_t kSamples = 20000;
  const std::uint64_t seed =
      0x1f0ad ^ (std::uint64_t(total_votes_) << 20) ^ threshold_;
  return engine_load(*this, kSamples, seed);
}

double WeightedVotingSystem::failure_probability(double p) const {
  // dp[v] = P(alive servers hold exactly v votes); exact in O(n * V).
  std::vector<double> dp(total_votes_ + 1, 0.0);
  dp[0] = 1.0;
  std::uint32_t prefix = 0;
  for (auto v : votes_) {
    prefix += v;
    // Alive with probability 1 - p contributes its v votes (in-place
    // knapsack update, descending so each server counts once).
    for (std::uint32_t sum = prefix; sum >= v; --sum) {
      dp[sum] = dp[sum] * p + dp[sum - v] * (1.0 - p);
    }
    for (std::uint32_t sum = 0; sum < v; ++sum) dp[sum] *= p;
  }
  double fail = 0.0;
  for (std::uint32_t sum = 0; sum < threshold_; ++sum) fail += dp[sum];
  return std::min(1.0, fail);
}

bool WeightedVotingSystem::has_live_quorum(
    const std::vector<bool>& alive) const {
  std::uint32_t gathered = 0;
  for (std::uint32_t u = 0; u < votes_.size(); ++u) {
    if (alive[u]) gathered += votes_[u];
  }
  return gathered >= threshold_;
}

bool WeightedVotingSystem::has_live_quorum_mask(
    const QuorumBitset& alive) const {
  std::uint32_t gathered = 0;
  alive.for_each_set_bit([&](ServerId u) {
    gathered += votes_[u];
    return gathered < threshold_;  // stop once the quorum is reached
  });
  return gathered >= threshold_;
}

}  // namespace pqs::quorum

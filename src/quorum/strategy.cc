#include "quorum/strategy.h"

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <functional>
#include <limits>
#include <utility>

#include "math/simplex.h"
#include "util/require.h"

namespace pqs::quorum {

namespace {

// p^k by repeated multiplication: exact for k = 0 (ipow(0, 0) == 1, the
// disjoint-pair case of the epsilon matrix), no pow() domain surprises.
double ipow(double base, std::uint32_t k) {
  double r = 1.0;
  for (std::uint32_t i = 0; i < k; ++i) r *= base;
  return r;
}

// |a ∩ b| for sorted quorums.
std::uint32_t sorted_overlap(const Quorum& a, const Quorum& b) {
  std::uint32_t count = 0;
  std::size_t i = 0, j = 0;
  while (i < a.size() && j < b.size()) {
    if (a[i] < b[j]) {
      ++i;
    } else if (b[j] < a[i]) {
      ++j;
    } else {
      ++count;
      ++i;
      ++j;
    }
  }
  return count;
}

bool quorum_contains(const Quorum& q, ServerId u) {
  return std::binary_search(q.begin(), q.end(), u);
}

// a ⊆ b over raw mask words.
bool words_subset(const std::vector<std::uint64_t>& a,
                  const std::vector<std::uint64_t>& b) {
  for (std::size_t w = 0; w < a.size(); ++w) {
    if ((a[w] & ~b[w]) != 0) return false;
  }
  return true;
}

// Reduces a family of sets (as mask words) to its minimal antichain:
// duplicates collapse and strict supersets drop. P(some member is fully
// alive) is unchanged — a superset being live implies its subset is —
// and the inclusion-exclusion below gets exponentially cheaper.
std::vector<std::vector<std::uint64_t>> minimal_family(
    const std::vector<std::vector<std::uint64_t>>& family) {
  std::vector<std::vector<std::uint64_t>> kept;
  for (std::size_t i = 0; i < family.size(); ++i) {
    bool redundant = false;
    for (std::size_t j = 0; j < family.size() && !redundant; ++j) {
      if (j == i) continue;
      if (!words_subset(family[j], family[i])) continue;
      // family[j] ⊆ family[i]: i is redundant unless they are equal and i
      // is the first copy.
      redundant = !(family[j] == family[i] && j > i);
    }
    if (!redundant) kept.push_back(family[i]);
  }
  return kept;
}

// P(some member of `family` has every server alive) when servers are
// alive independently with probability live_pow[1] — exact
// inclusion-exclusion over nonempty subfamilies, DFS with one running
// union per depth. live_pow[k] = (1 - p)^k.
double exists_live(const std::vector<std::vector<std::uint64_t>>& family,
                   const std::vector<double>& live_pow, std::size_t words) {
  if (family.empty()) return 0.0;
  double total = 0.0;
  std::vector<std::uint64_t> unions((family.size() + 1) * words, 0);
  std::function<void(std::size_t, std::size_t, double)> dfs =
      [&](std::size_t start, std::size_t depth, double sign) {
        const std::uint64_t* parent = unions.data() + (depth - 1) * words;
        std::uint64_t* mine = unions.data() + depth * words;
        for (std::size_t j = start; j < family.size(); ++j) {
          std::uint32_t bits = 0;
          for (std::size_t w = 0; w < words; ++w) {
            mine[w] = parent[w] | family[j][w];
            bits += popcount64(mine[w]);
          }
          total += sign * live_pow[bits];
          dfs(j + 1, depth + 1, -sign);
        }
      };
  dfs(0, 1, 1.0);
  return total;
}

}  // namespace

Strategy::Strategy(std::shared_ptr<const QuorumSystem> base,
                   std::vector<Quorum> read_support,
                   std::vector<double> read_probs,
                   std::vector<Quorum> write_support,
                   std::vector<double> write_probs, WorkloadSpec workload)
    : base_(std::move(base)),
      workload_(std::move(workload)),
      read_quorums_(std::move(read_support)),
      write_quorums_(std::move(write_support)),
      read_probs_(std::move(read_probs)),
      write_probs_(std::move(write_probs)) {
  PQS_REQUIRE(base_ != nullptr, "strategy needs a base system");
  n_ = base_->universe_size();
  PQS_REQUIRE(!read_quorums_.empty() && !write_quorums_.empty(),
              "strategy support is empty");
  PQS_REQUIRE(read_quorums_.size() + write_quorums_.size() <= kMaxExactSupport,
              "strategy support exceeds the exact-measure cap");
  PQS_REQUIRE(read_probs_.size() == read_quorums_.size() &&
                  write_probs_.size() == write_quorums_.size(),
              "strategy probability count mismatch");
  PQS_REQUIRE(workload_.read_fraction >= 0.0 && workload_.read_fraction <= 1.0,
              "read fraction out of range");
  PQS_REQUIRE(workload_.failure_prob >= 0.0 && workload_.failure_prob < 1.0,
              "failure probability out of range");
  PQS_REQUIRE(
      workload_.capacities.empty() || workload_.capacities.size() == n_,
      "capacity vector size mismatch");
  for (const double cap : workload_.capacities) {
    PQS_REQUIRE(cap > 0.0, "capacities must be positive");
  }

  auto prepare = [this](std::vector<Quorum>& quorums,
                        std::vector<double>& probs,
                        std::vector<QuorumBitset>& masks) {
    masks.reserve(quorums.size());
    double sum = 0.0;
    for (std::size_t i = 0; i < quorums.size(); ++i) {
      Quorum& q = quorums[i];
      PQS_REQUIRE(!q.empty(), "empty quorum in strategy support");
      std::sort(q.begin(), q.end());
      PQS_REQUIRE(q.back() < n_, "strategy quorum member outside universe");
      PQS_REQUIRE(std::adjacent_find(q.begin(), q.end()) == q.end(),
                  "duplicate member in strategy quorum");
      QuorumBitset mask(n_);
      mask.assign(q);
      masks.push_back(std::move(mask));
      PQS_REQUIRE(probs[i] >= -1e-12, "negative strategy probability");
      if (probs[i] < 0.0) probs[i] = 0.0;
      sum += probs[i];
    }
    PQS_REQUIRE(std::fabs(sum - 1.0) <= 1e-6,
                "strategy probabilities must sum to 1");
    for (double& p : probs) p /= sum;
  };
  prepare(read_quorums_, read_probs_, read_masks_);
  prepare(write_quorums_, write_probs_, write_masks_);
  read_alias_ = build_alias(read_probs_);
  write_alias_ = build_alias(write_probs_);

  overlap_.resize(read_quorums_.size() * write_quorums_.size());
  for (std::size_t i = 0; i < read_quorums_.size(); ++i) {
    for (std::size_t j = 0; j < write_quorums_.size(); ++j) {
      overlap_[i * write_quorums_.size() + j] =
          sorted_overlap(read_quorums_[i], write_quorums_[j]);
    }
  }
}

std::vector<Strategy::AliasSlot> Strategy::build_alias(
    const std::vector<double>& probs) {
  // Walker/Vose: scale to mean 1, pair each deficient bucket with a
  // surplus one. Stacks are filled in ascending index order and popped
  // from the back, so the table is a deterministic function of the
  // probabilities — part of the cross-ISA bit-identity contract.
  const std::size_t m = probs.size();
  std::vector<AliasSlot> table(m);
  std::vector<double> scaled(m);
  for (std::size_t i = 0; i < m; ++i) {
    scaled[i] = probs[i] * static_cast<double>(m);
  }
  std::vector<std::uint32_t> small, large;
  for (std::uint32_t i = 0; i < m; ++i) {
    (scaled[i] < 1.0 ? small : large).push_back(i);
  }
  const auto to_fixed = [](double f) -> std::uint64_t {
    // Fixed-point fraction of 2^64; saturates at both ends. f < 1
    // guarantees the cast is in range (f * 2^64 <= (1 - 2^-53) * 2^64).
    if (f >= 1.0) return std::numeric_limits<std::uint64_t>::max();
    if (f <= 0.0) return 0;
    return static_cast<std::uint64_t>(f * 18446744073709551616.0);
  };
  while (!small.empty() && !large.empty()) {
    const std::uint32_t deficient = small.back();
    small.pop_back();
    const std::uint32_t surplus = large.back();
    table[deficient].threshold = to_fixed(scaled[deficient]);
    table[deficient].alias = surplus;
    scaled[surplus] = (scaled[surplus] + scaled[deficient]) - 1.0;
    if (scaled[surplus] < 1.0) {
      large.pop_back();
      small.push_back(surplus);
    }
  }
  // Leftovers sit at (or within rounding dust of) exactly 1: always
  // accept, self-alias.
  for (const std::uint32_t i : large) {
    table[i].threshold = std::numeric_limits<std::uint64_t>::max();
    table[i].alias = i;
  }
  for (const std::uint32_t i : small) {
    table[i].threshold = std::numeric_limits<std::uint64_t>::max();
    table[i].alias = i;
  }
  return table;
}

double Strategy::server_access_probability(ServerId u) const {
  PQS_REQUIRE(u < n_, "server outside universe");
  double read_hit = 0.0;
  for (std::size_t i = 0; i < read_quorums_.size(); ++i) {
    if (quorum_contains(read_quorums_[i], u)) read_hit += read_probs_[i];
  }
  double write_hit = 0.0;
  for (std::size_t j = 0; j < write_quorums_.size(); ++j) {
    if (quorum_contains(write_quorums_[j], u)) write_hit += write_probs_[j];
  }
  const double fr = workload_.read_fraction;
  return fr * read_hit + (1.0 - fr) * write_hit;
}

std::vector<double> Strategy::load_vector() const {
  std::vector<double> loads(n_, 0.0);
  const double fr = workload_.read_fraction;
  for (std::size_t i = 0; i < read_quorums_.size(); ++i) {
    for (const ServerId u : read_quorums_[i]) {
      loads[u] += fr * read_probs_[i];
    }
  }
  for (std::size_t j = 0; j < write_quorums_.size(); ++j) {
    for (const ServerId u : write_quorums_[j]) {
      loads[u] += (1.0 - fr) * write_probs_[j];
    }
  }
  if (!workload_.capacities.empty()) {
    for (std::uint32_t u = 0; u < n_; ++u) {
      loads[u] /= workload_.capacities[u];
    }
  }
  return loads;
}

double Strategy::max_load() const {
  double best = 0.0;
  for (const double load : load_vector()) best = std::max(best, load);
  return best;
}

double Strategy::predicted_epsilon(double p) const {
  PQS_REQUIRE(p >= 0.0 && p <= 1.0, "crash probability out of range");
  const std::size_t mw = write_quorums_.size();
  double eps = 0.0;
  for (std::size_t i = 0; i < read_quorums_.size(); ++i) {
    double inner = 0.0;
    for (std::size_t j = 0; j < mw; ++j) {
      inner += write_probs_[j] * ipow(p, overlap_[i * mw + j]);
    }
    eps += read_probs_[i] * inner;
  }
  return eps;
}

std::string Strategy::name() const {
  return "strategy(r=" + std::to_string(read_quorums_.size()) +
         ",w=" + std::to_string(write_quorums_.size()) +
         ",base=" + base_->name() + ")";
}

Quorum Strategy::sample(math::Rng& rng) const {
  return read_quorums_[draw_read_index(rng)];
}

void Strategy::sample_into(Quorum& out, math::Rng& rng) const {
  out = read_quorums_[draw_read_index(rng)];
}

void Strategy::sample_mask(QuorumBitset& out, math::Rng& rng) const {
  // Copy-assign from the prebuilt mask: deep copy into owning bitsets,
  // write-through into MaskBatch views — either way no allocation in
  // steady state.
  out = read_masks_[draw_read_index(rng)];
}

void Strategy::sample_masks(QuorumBitset* out, std::size_t count,
                            math::Rng& rng) const {
  for (std::size_t i = 0; i < count; ++i) sample_mask(out[i], rng);
}

std::uint32_t Strategy::min_quorum_size() const {
  std::size_t best = read_quorums_[0].size();
  for (const Quorum& q : read_quorums_) best = std::min(best, q.size());
  for (const Quorum& q : write_quorums_) best = std::min(best, q.size());
  return static_cast<std::uint32_t>(best);
}

double Strategy::load() const { return max_load(); }

std::uint32_t Strategy::fault_tolerance() const {
  // The adversary kills the strategy by wiping out either *side*: crash a
  // server from every read quorum (no read can complete) or from every
  // write quorum. So A = min over the two sides of the exact minimum
  // hitting set size, minus one — any smaller crash set leaves some read
  // quorum and some write quorum untouched. Each side is capped well
  // under 64 members (kMaxExactSupport bounds the total), so the hit
  // state fits one word and the branch-and-bound (branch on the members
  // of the first unhit quorum, greedy warm start) is exact and fast.
  const auto min_hitting_set = [this](const std::vector<Quorum>& quorums) {
    std::vector<const Quorum*> support;
    for (const Quorum& q : quorums) support.push_back(&q);
    std::sort(support.begin(), support.end(),
              [](const Quorum* a, const Quorum* b) { return *a < *b; });
    support.erase(std::unique(support.begin(), support.end(),
                              [](const Quorum* a, const Quorum* b) {
                                return *a == *b;
                              }),
                  support.end());
    const std::size_t m = support.size();
    std::vector<std::uint64_t> server_hits(n_, 0);
    for (std::size_t i = 0; i < m; ++i) {
      for (const ServerId u : *support[i]) server_hits[u] |= 1ULL << i;
    }
    const std::uint64_t full = m == 64 ? ~0ULL : (1ULL << m) - 1;

    // Greedy warm start: repeatedly take the server hitting the most
    // still-unhit quorums.
    std::uint32_t best = 0;
    for (std::uint64_t hit = 0; hit != full; ++best) {
      std::uint32_t top_gain = 0;
      std::uint64_t top_mask = 0;
      for (std::uint32_t u = 0; u < n_; ++u) {
        const std::uint32_t gain = popcount64(server_hits[u] & ~hit);
        if (gain > top_gain) {
          top_gain = gain;
          top_mask = server_hits[u];
        }
      }
      hit |= top_mask;
    }
    std::function<void(std::uint64_t, std::uint32_t)> dfs =
        [&](std::uint64_t hit, std::uint32_t depth) {
          if (hit == full) {
            best = std::min(best, depth);
            return;
          }
          if (depth + 1 >= best) return;
          const std::size_t first_unhit = countr_zero64(~hit & full);
          for (const ServerId u : *support[first_unhit]) {
            dfs(hit | server_hits[u], depth + 1);
          }
        };
    dfs(0, 0);
    return best;
  };
  return std::min(min_hitting_set(read_quorums_),
                  min_hitting_set(write_quorums_)) -
         1;
}

double Strategy::failure_probability(double p) const {
  PQS_REQUIRE(p >= 0.0 && p <= 1.0, "crash probability out of range");
  std::vector<double> live_pow(n_ + 1);
  live_pow[0] = 1.0;
  for (std::uint32_t k = 1; k <= n_; ++k) {
    live_pow[k] = live_pow[k - 1] * (1.0 - p);
  }
  const std::size_t words = read_masks_[0].word_count();
  const auto to_words = [&](const std::vector<QuorumBitset>& masks) {
    std::vector<std::vector<std::uint64_t>> family;
    family.reserve(masks.size());
    for (const QuorumBitset& mask : masks) {
      family.emplace_back(mask.words(), mask.words() + words);
    }
    return minimal_family(family);
  };
  const auto read_family = to_words(read_masks_);
  const auto write_family = to_words(write_masks_);
  std::vector<std::vector<std::uint64_t>> combined = read_family;
  combined.insert(combined.end(), write_family.begin(), write_family.end());
  combined = minimal_family(combined);

  // P(fail) = 1 - P(live read exists AND live write exists), and the
  // conjunction expands through P(A)+P(B)-P(A or B) with the union event
  // being "some quorum of the combined family is live".
  const double live_read = exists_live(read_family, live_pow, words);
  const double live_write = exists_live(write_family, live_pow, words);
  const double live_any = exists_live(combined, live_pow, words);
  const double fail = 1.0 - (live_read + live_write - live_any);
  return std::min(1.0, std::max(0.0, fail));
}

bool Strategy::has_live_quorum(const std::vector<bool>& alive) const {
  PQS_REQUIRE(alive.size() == n_, "alive vector size mismatch");
  const auto some_live = [&](const std::vector<Quorum>& quorums) {
    for (const Quorum& q : quorums) {
      bool all = true;
      for (const ServerId u : q) {
        if (!alive[u]) {
          all = false;
          break;
        }
      }
      if (all) return true;
    }
    return false;
  };
  return some_live(read_quorums_) && some_live(write_quorums_);
}

bool Strategy::has_live_quorum_mask(const QuorumBitset& alive) const {
  PQS_REQUIRE(alive.universe_size() == n_, "alive mask size mismatch");
  const auto some_live = [&](const std::vector<QuorumBitset>& masks) {
    for (const QuorumBitset& mask : masks) {
      if (alive.contains_all(mask)) return true;
    }
    return false;
  };
  return some_live(read_masks_) && some_live(write_masks_);
}

std::shared_ptr<const Strategy> optimize_strategy(
    std::shared_ptr<const QuorumSystem> base, const WorkloadSpec& workload,
    const StrategyOptions& options) {
  PQS_REQUIRE(base != nullptr, "optimizer needs a base system");
  PQS_REQUIRE(options.read_candidates >= 1 && options.write_candidates >= 1,
              "optimizer needs candidates on both sides");
  PQS_REQUIRE(
      options.read_candidates + options.write_candidates <=
          Strategy::kMaxExactSupport,
      "candidate count exceeds the strategy's exact-measure support cap");
  PQS_REQUIRE(workload.read_fraction >= 0.0 && workload.read_fraction <= 1.0,
              "read fraction out of range");
  PQS_REQUIRE(workload.failure_prob >= 0.0 && workload.failure_prob < 1.0,
              "failure probability out of range");
  const std::uint32_t n = base->universe_size();
  std::vector<double> caps = workload.capacities;
  if (caps.empty()) caps.assign(n, 1.0);
  PQS_REQUIRE(caps.size() == n, "capacity vector size mismatch");
  for (const double cap : caps) {
    PQS_REQUIRE(cap > 0.0, "capacities must be positive");
  }

  // Candidate supports, drawn from the base system's own access strategy
  // on a dedicated rng stream and deduplicated. A base with fewer
  // distinct quorums than asked for (e.g. a singleton) just yields a
  // smaller support.
  math::Rng rng(options.seed);
  const auto draw_support = [&](std::uint32_t want) {
    std::vector<Quorum> support;
    QuorumBitset mask;
    Quorum q;
    const std::uint64_t attempt_cap = 64ULL * want + 64;
    for (std::uint64_t attempt = 0;
         support.size() < want && attempt < attempt_cap; ++attempt) {
      base->sample_mask(mask, rng);
      mask.to_quorum_into(q);
      if (std::find(support.begin(), support.end(), q) == support.end()) {
        support.push_back(q);
      }
    }
    return support;
  };
  std::vector<Quorum> reads = draw_support(options.read_candidates);
  std::vector<Quorum> writes = draw_support(options.write_candidates);
  const std::size_t mr = reads.size();
  const std::size_t mw = writes.size();

  // z_ij = p^|R_i ∩ W_j|: the probability that candidate pair (i, j)
  // shares no live server. The strategy's epsilon is the z-weighted
  // bilinear form pr' Z pw, which each LP below sees linearly.
  const double p = workload.failure_prob;
  std::vector<double> z(mr * mw);
  double z_mean = 0.0;
  double z_min = 1.0;
  for (std::size_t i = 0; i < mr; ++i) {
    for (std::size_t j = 0; j < mw; ++j) {
      const double value = ipow(p, sorted_overlap(reads[i], writes[j]));
      z[i * mw + j] = value;
      z_mean += value;
      z_min = std::min(z_min, value);
    }
  }
  z_mean /= static_cast<double>(mr * mw);
  double eps_max = options.epsilon_ceiling;
  if (eps_max < 0.0) eps_max = z_mean;
  // Clamp up to the support's best achievable epsilon (a pointmass on the
  // argmin pair) so the program is feasible; the slack absorbs simplex
  // tolerance.
  eps_max = std::max(eps_max, z_min) + 1e-12;

  const double fr = workload.read_fraction;
  const double fw = 1.0 - fr;

  // Servers touched by any candidate (rows for anyone else are 0 <= t).
  std::vector<ServerId> touched;
  {
    std::vector<bool> seen(n, false);
    for (const Quorum& q : reads) {
      for (const ServerId u : q) seen[u] = true;
    }
    for (const Quorum& q : writes) {
      for (const ServerId u : q) seen[u] = true;
    }
    for (ServerId u = 0; u < n; ++u) {
      if (seen[u]) touched.push_back(u);
    }
  }

  // Feasible start: the pointmass pair with the smallest epsilon.
  std::vector<double> pr(mr, 0.0), pw(mw, 0.0);
  {
    std::size_t bi = 0, bj = 0;
    double best = z[0];
    for (std::size_t i = 0; i < mr; ++i) {
      for (std::size_t j = 0; j < mw; ++j) {
        if (z[i * mw + j] < best) {
          best = z[i * mw + j];
          bi = i;
          bj = j;
        }
      }
    }
    pr[bi] = 1.0;
    pw[bj] = 1.0;
  }

  // One half-step: with the other side fixed, min t over (vars, t) s.t.
  // per-server load <= t, eps bilinear form <= eps_max, sum(vars) = 1.
  const auto solve_side = [&](bool read_side) -> double {
    const std::vector<Quorum>& support = read_side ? reads : writes;
    const std::vector<Quorum>& other = read_side ? writes : reads;
    const std::vector<double>& fixed = read_side ? pw : pr;
    std::vector<double>& vars = read_side ? pr : pw;
    const double f_this = read_side ? fr : fw;
    const double f_other = read_side ? fw : fr;
    const std::size_t mv = support.size();

    std::vector<double> eps_coeff(mv, 0.0);
    for (std::size_t i = 0; i < mv; ++i) {
      for (std::size_t j = 0; j < fixed.size(); ++j) {
        eps_coeff[i] +=
            fixed[j] * (read_side ? z[i * mw + j] : z[j * mw + i]);
      }
    }
    std::vector<double> other_load(n, 0.0);
    for (std::size_t j = 0; j < other.size(); ++j) {
      for (const ServerId u : other[j]) other_load[u] += fixed[j];
    }

    const std::size_t nv = mv + 1;  // vars plus the epigraph t
    std::vector<double> c(nv, 0.0);
    c[mv] = 1.0;
    std::vector<std::vector<double>> a;
    std::vector<double> b;
    for (const ServerId u : touched) {
      std::vector<double> row(nv, 0.0);
      for (std::size_t i = 0; i < mv; ++i) {
        if (quorum_contains(support[i], u)) row[i] = f_this / caps[u];
      }
      row[mv] = -1.0;
      a.push_back(std::move(row));
      b.push_back(-f_other * other_load[u] / caps[u]);
    }
    {
      std::vector<double> row(nv, 0.0);
      for (std::size_t i = 0; i < mv; ++i) row[i] = eps_coeff[i];
      a.push_back(std::move(row));
      b.push_back(eps_max);
    }
    {
      std::vector<double> row(nv, 0.0);
      for (std::size_t i = 0; i < mv; ++i) row[i] = 1.0;
      a.push_back(row);
      b.push_back(1.0);
      for (std::size_t i = 0; i < mv; ++i) row[i] = -1.0;
      row[mv] = 0.0;
      a.push_back(std::move(row));
      b.push_back(-1.0);
    }
    const math::LpResult lp = math::solve_lp(c, a, b);
    if (lp.status != math::LpStatus::kOptimal) {
      // The incumbent is feasible by construction, so this is numerical
      // bad luck; keep the incumbent and stop improving this side.
      return -1.0;
    }
    double sum = 0.0;
    for (std::size_t i = 0; i < mv; ++i) {
      vars[i] = std::max(0.0, lp.x[i]);
      sum += vars[i];
    }
    PQS_REQUIRE(sum > 0.5, "degenerate LP solution");
    for (std::size_t i = 0; i < mv; ++i) vars[i] /= sum;
    return lp.objective;
  };

  double prev = std::numeric_limits<double>::infinity();
  for (std::uint32_t round = 0; round < options.rounds; ++round) {
    const double after_read = solve_side(true);
    const double after_write = solve_side(false);
    if (after_read < 0.0 || after_write < 0.0) break;
    if (std::fabs(prev - after_write) < 1e-12) break;
    prev = after_write;
  }

  // Prune zero-probability candidates: they carry no mass, and dropping
  // them keeps the exact measures (hitting set, inclusion-exclusion,
  // has_live_quorum) honest about what the strategy can actually draw.
  const auto prune = [](std::vector<Quorum>& quorums,
                        std::vector<double>& probs) {
    std::size_t kept = 0;
    for (std::size_t i = 0; i < quorums.size(); ++i) {
      if (probs[i] <= 1e-12) continue;
      if (kept != i) {
        quorums[kept] = std::move(quorums[i]);
        probs[kept] = probs[i];
      }
      ++kept;
    }
    quorums.resize(kept);
    probs.resize(kept);
  };
  prune(reads, pr);
  prune(writes, pw);

  return std::make_shared<Strategy>(std::move(base), std::move(reads),
                                    std::move(pr), std::move(writes),
                                    std::move(pw), workload);
}

}  // namespace pqs::quorum

// Basic vocabulary shared by all quorum-system code.
#pragma once

#include <cstdint>
#include <vector>

namespace pqs::quorum {

// Servers are numbered 0..n-1 within a universe U (Section 2).
using ServerId = std::uint32_t;

// A quorum is a sorted set of server ids. Sortedness is an invariant relied
// on by the intersection routines; constructions produce sorted quorums.
using Quorum = std::vector<ServerId>;

}  // namespace pqs::quorum

#include "quorum/threshold.h"

#include "math/sampling.h"
#include "quorum/measures.h"
#include "util/require.h"

namespace pqs::quorum {

ThresholdSystem::ThresholdSystem(std::uint32_t n, std::uint32_t q)
    : n_(n), q_(q) {
  PQS_REQUIRE(n >= 1, "threshold universe size");
  PQS_REQUIRE(q >= 1 && q <= n, "threshold quorum size");
  PQS_REQUIRE(2 * q > n, "threshold system requires 2q > n for intersection");
}

ThresholdSystem ThresholdSystem::majority(std::uint32_t n) {
  return ThresholdSystem(n, (n + 2) / 2);  // ceil((n+1)/2)
}

ThresholdSystem ThresholdSystem::dissemination(std::uint32_t n,
                                               std::uint32_t b) {
  PQS_REQUIRE(3 * b <= n - 1, "strict dissemination requires b <= (n-1)/3");
  return ThresholdSystem(n, (n + b + 2) / 2);  // ceil((n+b+1)/2)
}

ThresholdSystem ThresholdSystem::masking(std::uint32_t n, std::uint32_t b) {
  PQS_REQUIRE(4 * b <= n - 1, "strict masking requires b <= (n-1)/4");
  return ThresholdSystem(n, (n + 2 * b + 2) / 2);  // ceil((n+2b+1)/2)
}

std::string ThresholdSystem::name() const {
  return "threshold(n=" + std::to_string(n_) + ",q=" + std::to_string(q_) +
         ")";
}

Quorum ThresholdSystem::sample(math::Rng& rng) const {
  Quorum q;
  sample_into(q, rng);
  return q;
}

void ThresholdSystem::sample_into(Quorum& out, math::Rng& rng) const {
  math::sample_without_replacement(n_, q_, rng, out);
}

void ThresholdSystem::sample_mask(QuorumBitset& out, math::Rng& rng) const {
  out.resize(n_);
  math::sample_without_replacement_bits(n_, q_, rng, out.word_data());
}

void ThresholdSystem::sample_masks(QuorumBitset* out, std::size_t count,
                                   math::Rng& rng) const {
  // One virtual call per batch; the fill itself is the non-virtual Floyd
  // draw, so the loop body is identical to sample_mask per element.
  for (std::size_t i = 0; i < count; ++i) {
    out[i].resize(n_);
    math::sample_without_replacement_bits(n_, q_, rng, out[i].word_data());
  }
}

double ThresholdSystem::load() const {
  // Uniform strategy over all q-subsets: every server carries load q/n,
  // which attains the Naor-Wool optimum for this set system.
  return static_cast<double>(q_) / static_cast<double>(n_);
}

double ThresholdSystem::failure_probability(double p) const {
  return size_based_failure_probability(n_, q_, p);
}

bool ThresholdSystem::has_live_quorum(const std::vector<bool>& alive) const {
  std::uint32_t count = 0;
  for (bool a : alive) count += a ? 1u : 0u;
  return count >= q_;
}

bool ThresholdSystem::has_live_quorum_mask(const QuorumBitset& alive) const {
  return alive.count() >= q_;
}

}  // namespace pqs::quorum

// Explicit, finite set systems with exact analysis.
//
// SetSystem materializes a quorum system as a concrete list of quorums with
// an explicit access strategy (weights), exactly matching Definitions 2.1-2.7
// and 3.1. It is deliberately exhaustive rather than scalable: this is the
// machinery with which tests and small-scale studies verify the definitions —
// strict intersection, b-dissemination/b-masking overlap, strategy-induced
// load, exact fault tolerance via minimum hitting set, exact failure
// probability via inclusion-exclusion, and the probabilistic measures of
// Section 3.2 (delta-high-quality quorums and the inflation counterexample).
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "quorum/quorum_system.h"
#include "quorum/types.h"

namespace pqs::quorum {

class SetSystem final : public QuorumSystem {
 public:
  // Uniform strategy over the given quorums. Quorums are sorted and each
  // must be a nonempty subset of {0..n-1}.
  SetSystem(std::uint32_t n, std::vector<Quorum> quorums);
  // Explicit strategy w; weights must be nonnegative and sum to ~1.
  SetSystem(std::uint32_t n, std::vector<Quorum> quorums,
            std::vector<double> weights);

  // Enumerates all q-subsets of {0..n-1} with the uniform strategy — the
  // construction R(n, q) of Definition 3.13 in explicit form. Feasible only
  // for tiny n (C(n, q) quorums); used to validate the analytic epsilon
  // computations by direct enumeration.
  static SetSystem all_subsets(std::uint32_t n, std::uint32_t q);

  // -- QuorumSystem interface ------------------------------------------
  std::string name() const override;
  std::uint32_t universe_size() const override { return n_; }
  Quorum sample(math::Rng& rng) const override;
  void sample_into(Quorum& out, math::Rng& rng) const override;
  void sample_mask(QuorumBitset& out, math::Rng& rng) const override;
  std::uint32_t min_quorum_size() const override;
  // Strategy-induced load L_w (Definition 2.4), exact.
  double load() const override;
  // Strict fault tolerance A(Q) (Definition 2.5): exact minimum hitting set
  // over *all* quorums, by branch and bound.
  std::uint32_t fault_tolerance() const override;
  // Exact F_p (Definition 2.6) by inclusion-exclusion over quorums.
  double failure_probability(double p) const override;
  bool has_live_quorum(const std::vector<bool>& alive) const override;
  bool has_live_quorum_mask(const QuorumBitset& alive) const override;

  // -- Exact structural analysis ----------------------------------------
  std::size_t quorum_count() const { return quorums_.size(); }
  const std::vector<Quorum>& quorums() const { return quorums_; }
  const std::vector<double>& weights() const { return weights_; }

  // Is this a strict quorum system (every pair intersects)? (Def. 2.2)
  bool is_strict() const;
  // Smallest pairwise intersection over all quorum pairs.
  std::uint32_t min_pairwise_intersection() const;
  // Definition 2.7 predicates.
  bool is_dissemination(std::uint32_t b) const;
  bool is_masking(std::uint32_t b) const;

  // P(Q ∩ Q' != ∅) for Q, Q' drawn independently by w (Definition 3.1);
  // the system is eps-intersecting for eps = 1 - this value.
  double intersection_probability() const;

  // Per-quorum quality: P(Q_i ∩ Q' != ∅) over Q' ~ w (Definition 3.4).
  double quorum_quality(std::size_t index) const;
  // Indices of the delta-high-quality quorums.
  std::vector<std::size_t> high_quality_indices(double delta) const;

  // Probabilistic fault tolerance A(<Q,w>) (Definition 3.7): minimum hitting
  // set over the sqrt(eps)-high-quality quorums only.
  std::uint32_t probabilistic_fault_tolerance() const;
  // Probabilistic F_p(<Q,w>) (Definition 3.8) over high-quality quorums.
  double probabilistic_failure_probability(double p) const;

  // Load induced by the weights on one server (Definition 2.4's l_w(u)).
  double server_load(ServerId u) const;

 private:
  std::uint32_t hitting_set_size(const std::vector<std::size_t>& indices) const;
  double failure_probability_over(const std::vector<std::size_t>& indices,
                                  double p) const;

  // Index of the quorum selected by one strategy draw (shared by the
  // vector and mask sampling paths; consumes one uniform).
  std::size_t sample_index(math::Rng& rng) const;

  std::uint32_t n_;
  std::vector<Quorum> quorums_;
  std::vector<double> weights_;
  std::vector<double> cumulative_;  // for sampling
  std::vector<QuorumBitset> masks_;  // one bitset per quorum, built once
};

}  // namespace pqs::quorum

#include "diffusion/gossip.h"

#include <algorithm>
#include <cstddef>

#include "math/sampling.h"
#include "quorum/bitset.h"
#include "util/require.h"

namespace pqs::diffusion {

GossipEngine::GossipEngine(GossipConfig config,
                           std::optional<crypto::Verifier> verifier)
    : config_(config), verifier_(std::move(verifier)) {
  PQS_REQUIRE(config_.fanout >= 1, "gossip fanout");
  PQS_REQUIRE(!config_.verify || verifier_.has_value(),
              "verified gossip needs a verifier");
}

RoundStats GossipEngine::run_round(
    std::vector<std::unique_ptr<replica::Server>>& servers, math::Rng& rng) {
  RoundStats stats;
  const auto n = static_cast<std::uint32_t>(servers.size());
  PQS_REQUIRE(n >= 2, "gossip needs at least two servers");
  const std::uint32_t fanout = std::min(config_.fanout, n - 1);
  peer_words_.assign((static_cast<std::size_t>(n) - 1 + 63) / 64, 0);
  for (auto& sender : servers) {
    const auto records = sender->gossip_records();
    // Views ride the same peer draw as records. Only correct servers push
    // views (crash-fault membership diffusion; Byzantine view poisoning is
    // out of scope until views carry MACs), and the empty default view is
    // never pushed — so a sender with no records and no view skips the
    // draw entirely, preserving the pre-view rng streams.
    const bool push_view = sender->mode() == replica::FaultMode::kCorrect &&
                           sender->membership().capacity() != 0;
    if (records.empty() && !push_view) continue;
    // Pick fanout distinct peers other than the sender, drawn straight into
    // the reusable word scratch (same subset and rng stream as the former
    // per-round vector draw; ascending bit order matches the sorted vector).
    std::fill(peer_words_.begin(), peer_words_.end(), 0);
    math::sample_without_replacement_bits(n - 1, fanout, rng,
                                         peer_words_.data());
    const std::uint32_t sender_id = sender->id();
    for (std::size_t w = 0; w < peer_words_.size(); ++w) {
      std::uint64_t word = peer_words_[w];
      while (word != 0) {
        std::uint32_t p = static_cast<std::uint32_t>(w) * 64 +
                          quorum::countr_zero64(word);
        word &= word - 1;
        if (p >= sender_id) ++p;  // skip self
        replica::Server& receiver = *servers[p];
        if (receiver.mode() != replica::FaultMode::kCorrect) continue;
        if (push_view) {
          ++stats.view_pushes;
          if (receiver.merge_membership(sender->membership())) {
            ++stats.view_adoptions;
          }
        }
        for (const auto& record : records) {
          ++stats.pushes;
          if (config_.verify && !verifier_->verify(record)) {
            ++stats.rejected;
            continue;
          }
          if (receiver.adopt(record)) ++stats.adoptions;
        }
      }
    }
  }
  return stats;
}

RoundStats GossipEngine::run_rounds(
    std::vector<std::unique_ptr<replica::Server>>& servers,
    std::uint32_t count, math::Rng& rng) {
  RoundStats total;
  for (std::uint32_t i = 0; i < count; ++i) {
    const RoundStats r = run_round(servers, rng);
    total.pushes += r.pushes;
    total.adoptions += r.adoptions;
    total.rejected += r.rejected;
    total.view_pushes += r.view_pushes;
    total.view_adoptions += r.view_adoptions;
  }
  return total;
}

double GossipEngine::coverage(
    const std::vector<std::unique_ptr<replica::Server>>& servers,
    replica::VariableId variable, std::uint64_t timestamp) {
  std::uint32_t correct = 0;
  std::uint32_t fresh = 0;
  for (const auto& s : servers) {
    if (s->mode() != replica::FaultMode::kCorrect) continue;
    ++correct;
    const auto* rec = s->find(variable);
    if (rec != nullptr && rec->timestamp >= timestamp) ++fresh;
  }
  if (correct == 0) return 0.0;
  return static_cast<double>(fresh) / static_cast<double>(correct);
}

double GossipEngine::view_agreement(
    const std::vector<std::unique_ptr<replica::Server>>& servers) {
  quorum::MembershipView supremum;
  std::uint32_t correct = 0;
  for (const auto& s : servers) {
    if (s->mode() != replica::FaultMode::kCorrect) continue;
    ++correct;
    supremum.merge(s->membership());
  }
  if (correct == 0) return 0.0;
  std::uint32_t agreeing = 0;
  for (const auto& s : servers) {
    if (s->mode() != replica::FaultMode::kCorrect) continue;
    if (s->membership().equals(supremum)) ++agreeing;
  }
  return static_cast<double>(agreeing) / static_cast<double>(correct);
}

}  // namespace pqs::diffusion

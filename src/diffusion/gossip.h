// Epidemic diffusion (anti-entropy gossip).
//
// Section 1.1: "a system built with probabilistic quorum systems can be
// strengthened by a properly designed diffusion mechanism, which propagates
// updates to replicated data lazily ... the probability of inconsistency
// using probabilistic quorum constructions can be driven further toward
// zero when updates are sufficiently dispersed in time."
//
// Each round, every non-crashed server pushes its records to `fanout`
// uniformly random peers; correct receivers adopt records with higher
// timestamps. In Byzantine-safe mode ([MMR99]) a record is adopted only if
// its writer MAC verifies, so faulty servers cannot poison the epidemic.
//
// The same rounds diffuse dynamic-membership views: a correct sender with a
// non-empty MembershipView pushes it to the same peers, and correct
// receivers lattice-join it (Server::merge_membership) — views converge to
// the supremum along any gossip order, so a reconfiguration installed at
// one server epidemically reaches the fleet. Servers with the default empty
// view push nothing, which keeps static deployments' rng streams exactly as
// before views existed.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <vector>

#include "crypto/mac.h"
#include "math/rng.h"
#include "replica/server.h"

namespace pqs::diffusion {

struct GossipConfig {
  std::uint32_t fanout = 2;
  // Verify writer MACs before adoption (Byzantine-safe diffusion).
  bool verify = false;
};

struct RoundStats {
  std::uint64_t pushes = 0;          // record transmissions attempted
  std::uint64_t adoptions = 0;       // records accepted as fresher
  std::uint64_t rejected = 0;        // records dropped by verification
  std::uint64_t view_pushes = 0;     // membership views transmitted
  std::uint64_t view_adoptions = 0;  // views that advanced the receiver
};

class GossipEngine {
 public:
  GossipEngine(GossipConfig config,
               std::optional<crypto::Verifier> verifier = std::nullopt);

  // One synchronous anti-entropy round over the given servers.
  RoundStats run_round(std::vector<std::unique_ptr<replica::Server>>& servers,
                       math::Rng& rng);

  // Convenience: `count` rounds; stats are summed.
  RoundStats run_rounds(std::vector<std::unique_ptr<replica::Server>>& servers,
                        std::uint32_t count, math::Rng& rng);

  // Fraction of *correct* servers whose stored record for `variable` has
  // timestamp >= `timestamp` (coverage of a write after gossip).
  static double coverage(
      const std::vector<std::unique_ptr<replica::Server>>& servers,
      replica::VariableId variable, std::uint64_t timestamp);

  // Fraction of correct servers whose membership view equals the supremum
  // (lattice join) of all correct servers' views — 1.0 means view
  // diffusion has converged (the dual of coverage() for membership).
  static double view_agreement(
      const std::vector<std::unique_ptr<replica::Server>>& servers);

 private:
  GossipConfig config_;
  std::optional<crypto::Verifier> verifier_;
  // Peer-draw scratch reused across rounds: ceil((n-1)/64) words holding the
  // fanout peers of the current sender as a bitmask (zero allocation per
  // round in steady state).
  std::vector<std::uint64_t> peer_words_;
};

}  // namespace pqs::diffusion

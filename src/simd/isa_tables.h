// Internal: per-ISA table accessors for the dispatcher. Each TU always
// defines its accessor; it returns nullptr when the toolchain could not
// compile that ISA (the CMake flag probe failed), so dispatch.cc needs no
// conditional compilation of its own beyond the runtime cpuid checks.
#pragma once

#include "simd/kernels.h"

namespace pqs::simd::detail {

const Kernels* avx2_table();
const Kernels* avx512_table();

}  // namespace pqs::simd::detail

// AVX-512 kernel table. Requires F/BW/DQ/VL/VPOPCNTDQ at runtime; compiled
// with the matching -mavx512* flags when the toolchain supports them
// (PQS_SIMD_COMPILE_AVX512). Popcounts are native vpopcntq; the Bernoulli
// fill runs the sixteen SplitMix64 lane streams as four 256-bit vectors
// with native 64-bit multiplies (vpmullq) and mask-register predication.
#include "simd/isa_tables.h"
#include "simd/kernels_common.h"

#if defined(PQS_SIMD_COMPILE_AVX512) && defined(__x86_64__)

#include <immintrin.h>

namespace pqs::simd {

namespace {

using namespace detail;

// Spill-and-add reduction: _mm512_reduce_add_epi64 expands through
// _mm256_undefined_si256 in GCC's headers, which trips
// -Wmaybe-uninitialized under -Werror.
inline std::uint32_t reduce_add(__m512i acc) {
  alignas(64) std::uint64_t lanes[8];
  _mm512_store_si512(lanes, acc);
  std::uint64_t total = 0;
  for (std::uint64_t lane : lanes) total += lane;
  return static_cast<std::uint32_t>(total);
}

std::uint32_t popcount_avx512(const std::uint64_t* a, std::size_t n) {
  __m512i acc = _mm512_setzero_si512();
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    acc = _mm512_add_epi64(acc, _mm512_popcnt_epi64(_mm512_loadu_si512(a + i)));
  }
  if (i < n) {
    const __mmask8 m = static_cast<__mmask8>((1u << (n - i)) - 1);
    acc = _mm512_add_epi64(
        acc, _mm512_popcnt_epi64(_mm512_maskz_loadu_epi64(m, a + i)));
  }
  return reduce_add(acc);
}

std::uint32_t and_popcount_avx512(const std::uint64_t* a,
                                  const std::uint64_t* b, std::size_t n) {
  __m512i acc = _mm512_setzero_si512();
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    acc = _mm512_add_epi64(
        acc, _mm512_popcnt_epi64(_mm512_and_si512(
                 _mm512_loadu_si512(a + i), _mm512_loadu_si512(b + i))));
  }
  if (i < n) {
    const __mmask8 m = static_cast<__mmask8>((1u << (n - i)) - 1);
    acc = _mm512_add_epi64(
        acc, _mm512_popcnt_epi64(
                 _mm512_and_si512(_mm512_maskz_loadu_epi64(m, a + i),
                                  _mm512_maskz_loadu_epi64(m, b + i))));
  }
  return reduce_add(acc);
}

std::uint32_t popcount_prefix_avx512(const std::uint64_t* a,
                                     std::uint32_t nbits) {
  return and_popcount_prefix_with(
      a, a, nbits,
      [](const std::uint64_t* x, const std::uint64_t*, std::size_t n) {
        return popcount_avx512(x, n);
      });
}

std::uint32_t and_popcount_prefix_avx512(const std::uint64_t* a,
                                         const std::uint64_t* b,
                                         std::uint32_t nbits) {
  return and_popcount_prefix_with(a, b, nbits, and_popcount_avx512);
}

std::uint32_t and_popcount_from_avx512(const std::uint64_t* a,
                                       const std::uint64_t* b, std::size_t n,
                                       std::uint32_t lo_bits) {
  return and_popcount_from_with(a, b, n, lo_bits, and_popcount_avx512);
}

bool and_any_avx512(const std::uint64_t* a, const std::uint64_t* b,
                    std::size_t n) {
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    if (_mm512_test_epi64_mask(_mm512_loadu_si512(a + i),
                               _mm512_loadu_si512(b + i))) {
      return true;
    }
  }
  for (; i < n; ++i) {
    if (a[i] & b[i]) return true;
  }
  return false;
}

bool andnot_any_avx512(const std::uint64_t* a, const std::uint64_t* b,
                       std::size_t n) {
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m512i va = _mm512_loadu_si512(a + i);
    const __m512i vb = _mm512_loadu_si512(b + i);
    if (_mm512_cmpneq_epi64_mask(_mm512_andnot_si512(vb, va),
                                 _mm512_setzero_si512())) {
      return true;
    }
  }
  for (; i < n; ++i) {
    if (a[i] & ~b[i]) return true;
  }
  return false;
}

bool equal_avx512(const std::uint64_t* a, const std::uint64_t* b,
                  std::size_t n) {
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    if (_mm512_cmpneq_epi64_mask(_mm512_loadu_si512(a + i),
                                 _mm512_loadu_si512(b + i))) {
      return false;
    }
  }
  for (; i < n; ++i) {
    if (a[i] != b[i]) return false;
  }
  return true;
}

void or_accum_avx512(std::uint64_t* dst, const std::uint64_t* src,
                     std::size_t n) {
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    _mm512_storeu_si512(dst + i, _mm512_or_si512(_mm512_loadu_si512(dst + i),
                                                 _mm512_loadu_si512(src + i)));
  }
  for (; i < n; ++i) dst[i] |= src[i];
}

void batch_and_popcount_from_avx512(const std::uint64_t* a_base,
                                    const std::uint64_t* b_base,
                                    std::size_t stride, std::size_t count,
                                    std::size_t n, std::uint32_t lo_bits,
                                    std::uint32_t* out) {
  batch_and_popcount_from_with(a_base, b_base, stride, count, n, lo_bits, out,
                               and_popcount_from_avx512);
}

void batch_popcount_prefix_avx512(const std::uint64_t* a_base,
                                  std::size_t stride, std::size_t count,
                                  std::uint32_t nbits, std::uint32_t* out) {
  batch_popcount_prefix_with(a_base, stride, count, nbits, out,
                             popcount_prefix_avx512);
}

// ---- column accumulation --------------------------------------------------

void batch_column_accumulate_avx512(const std::uint64_t* a_base,
                                    std::size_t stride, std::size_t count,
                                    std::size_t n, std::uint64_t* counts) {
  // A mask word *is* a __mmask64: one predicated byte-subtract of -1
  // increments exactly the counters whose bit is set — one instruction per
  // mask per word position. Word-major so the 64 byte counters stay in a
  // single zmm across the batch; chunked at 255 masks so they cannot
  // saturate, then drained into the uint64 histogram.
  const __m512i neg1 = _mm512_set1_epi8(-1);
  for (std::size_t wj = 0; wj < n; ++wj) {
    std::uint64_t* c = counts + 64 * wj;
    std::size_t done = 0;
    while (done < count) {
      const std::size_t chunk =
          count - done < 255 ? count - done : std::size_t{255};
      __m512i acc = _mm512_setzero_si512();
      for (std::size_t i = 0; i < chunk; ++i) {
        const __mmask64 m = _cvtu64_mask64(a_base[(done + i) * stride + wj]);
        acc = _mm512_mask_sub_epi8(acc, m, acc, neg1);
      }
      alignas(64) std::uint8_t bytes[64];
      _mm512_store_si512(bytes, acc);
      for (int b = 0; b < 64; ++b) c[b] += bytes[b];
      done += chunk;
    }
  }
}

// Single-mask form: the batch kernel at count 1. TU-local for the same
// ODR reason as the AVX2 table — this TU must not emit (and possibly
// donate to the linker) a copy of the header's scalar walk compiled with
// -mavx512* flags.
void column_accumulate_avx512(const std::uint64_t* a, std::size_t n,
                              std::uint64_t* counts) {
  batch_column_accumulate_avx512(a, n, 1, n, counts);
}

// SplitMix64 output mix over 256-bit lanes with the native 64-bit multiply
// (AVX-512VL+DQ vpmullq). The fill deliberately runs 4x256-bit chains
// rather than 2x512: the digit loop is latency-bound on the
// state -> mix -> eq chain, and on current cores four quarter-width chains
// with single-uop multiplies beat two full-width ones.
inline __m256i mix64x4(__m256i z) {
  z = _mm256_mullo_epi64(
      _mm256_xor_si256(z, _mm256_srli_epi64(z, 30)),
      _mm256_set1_epi64x(static_cast<long long>(0xbf58476d1ce4e5b9ULL)));
  z = _mm256_mullo_epi64(
      _mm256_xor_si256(z, _mm256_srli_epi64(z, 27)),
      _mm256_set1_epi64x(static_cast<long long>(0x94d049bb133111ebULL)));
  return _mm256_xor_si256(z, _mm256_srli_epi64(z, 31));
}

// One digit step for four lanes; the state add is predicated on the lane
// being undecided (mask registers make the blend free here).
inline void digit_step(__m256i& state, __m256i& success, __m256i& eq,
                       bool digit, __m256i golden) {
  const __mmask8 undecided =
      _mm256_cmpneq_epi64_mask(eq, _mm256_setzero_si256());
  state = _mm256_mask_add_epi64(state, undecided, state, golden);
  const __m256i w = mix64x4(state);
  if (digit) {
    success = _mm256_or_si256(success, _mm256_andnot_si256(w, eq));
    eq = _mm256_and_si256(eq, w);
  } else {
    eq = _mm256_andnot_si256(w, eq);
  }
}

void bernoulli_fill_avx512(std::uint64_t* dst, std::size_t n,
                           const BernoulliSpec& spec, std::uint64_t seed) {
  constexpr int kVecs = kBernoulliLanes / 4;
  alignas(32) std::uint64_t lane_state[kBernoulliLanes];
  bernoulli_seed_lanes(seed, lane_state);
  const __m256i golden = _mm256_set1_epi64x(static_cast<long long>(kGolden));
  __m256i st[kVecs];
  for (int v = 0; v < kVecs; ++v) {
    st[v] = _mm256_load_si256(
        reinterpret_cast<const __m256i*>(lane_state + 4 * v));
  }
  for (std::size_t chunk = 0; chunk < n; chunk += kBernoulliLanes) {
    const std::size_t lanes =
        n - chunk < kBernoulliLanes ? n - chunk : kBernoulliLanes;
    alignas(32) std::uint64_t eq_init[kBernoulliLanes] = {};
    for (std::size_t j = 0; j < lanes; ++j) eq_init[j] = ~0ULL;
    __m256i eq[kVecs], su[kVecs];
    for (int v = 0; v < kVecs; ++v) {
      eq[v] = _mm256_load_si256(
          reinterpret_cast<const __m256i*>(eq_init + 4 * v));
      su[v] = _mm256_setzero_si256();
    }
    for (int level = 63; level >= spec.stop_level; --level) {
      const bool digit = (spec.threshold >> level) & 1ULL;
      for (int v = 0; v < kVecs; ++v) {
        digit_step(st[v], su[v], eq[v], digit, golden);
      }
      const __m256i undecided = _mm256_or_si256(
          _mm256_or_si256(eq[0], eq[1]), _mm256_or_si256(eq[2], eq[3]));
      if (_mm256_testz_si256(undecided, undecided)) break;
    }
    const __m256i undecided = _mm256_or_si256(
        _mm256_or_si256(eq[0], eq[1]), _mm256_or_si256(eq[2], eq[3]));
    if (spec.tail > 0.0 && !_mm256_testz_si256(undecided, undecided)) {
      alignas(32) std::uint64_t eqs[kBernoulliLanes], sus[kBernoulliLanes];
      for (int v = 0; v < kVecs; ++v) {
        _mm256_store_si256(reinterpret_cast<__m256i*>(eqs + 4 * v), eq[v]);
        _mm256_store_si256(reinterpret_cast<__m256i*>(sus + 4 * v), su[v]);
        _mm256_store_si256(reinterpret_cast<__m256i*>(lane_state + 4 * v),
                           st[v]);
      }
      for (std::size_t j = 0; j < lanes; ++j) {
        if (eqs[j] != 0) {
          sus[j] |= bernoulli_tail_scalar(eqs[j], spec.tail, lane_state[j]);
        }
      }
      for (int v = 0; v < kVecs; ++v) {
        su[v] = _mm256_load_si256(
            reinterpret_cast<const __m256i*>(sus + 4 * v));
        st[v] = _mm256_load_si256(
            reinterpret_cast<const __m256i*>(lane_state + 4 * v));
      }
    }
    alignas(32) std::uint64_t block[kBernoulliLanes];
    for (int v = 0; v < kVecs; ++v) {
      _mm256_store_si256(reinterpret_cast<__m256i*>(block + 4 * v), su[v]);
    }
    for (std::size_t j = 0; j < lanes; ++j) {
      dst[chunk + j] = spec.invert ? ~block[j] : block[j];
    }
  }
}

constexpr Kernels kAvx512Table = {
    "avx512",
    &popcount_avx512,
    &and_popcount_avx512,
    &popcount_prefix_avx512,
    &and_popcount_prefix_avx512,
    &and_popcount_from_avx512,
    &and_any_avx512,
    &andnot_any_avx512,
    &equal_avx512,
    &or_accum_avx512,
    &batch_and_popcount_from_avx512,
    &batch_popcount_prefix_avx512,
    &column_accumulate_avx512,
    &batch_column_accumulate_avx512,
    &bernoulli_fill_avx512,
};

}  // namespace

namespace detail {
const Kernels* avx512_table() { return &kAvx512Table; }
}  // namespace detail

}  // namespace pqs::simd

#else  // toolchain cannot target AVX-512

namespace pqs::simd::detail {
const Kernels* avx512_table() { return nullptr; }
}  // namespace pqs::simd::detail

#endif

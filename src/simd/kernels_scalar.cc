// The portable scalar kernel table: the reference every SIMD table is
// fuzz-checked against, and the fallback on CPUs (or builds) without AVX2.
// Compiled with the project's baseline flags only — no ISA extensions — so
// a binary built here runs anywhere.
#include "simd/kernels.h"
#include "simd/kernels_common.h"

namespace pqs::simd {

namespace {

using namespace detail;

std::uint32_t popcount_prefix_impl(const std::uint64_t* a,
                                   std::uint32_t nbits) {
  return and_popcount_prefix_with(a, a, nbits, [](const std::uint64_t* x,
                                                  const std::uint64_t*,
                                                  std::size_t n) {
    return popcount_scalar(x, n);
  });
}

std::uint32_t and_popcount_prefix_impl(const std::uint64_t* a,
                                       const std::uint64_t* b,
                                       std::uint32_t nbits) {
  return and_popcount_prefix_with(a, b, nbits, and_popcount_scalar);
}

std::uint32_t and_popcount_from_impl(const std::uint64_t* a,
                                     const std::uint64_t* b, std::size_t n,
                                     std::uint32_t lo_bits) {
  return and_popcount_from_with(a, b, n, lo_bits, and_popcount_scalar);
}

void batch_and_popcount_from_impl(const std::uint64_t* a_base,
                                  const std::uint64_t* b_base,
                                  std::size_t stride, std::size_t count,
                                  std::size_t n, std::uint32_t lo_bits,
                                  std::uint32_t* out) {
  batch_and_popcount_from_with(a_base, b_base, stride, count, n, lo_bits, out,
                               and_popcount_from_impl);
}

void batch_popcount_prefix_impl(const std::uint64_t* a_base,
                                std::size_t stride, std::size_t count,
                                std::uint32_t nbits, std::uint32_t* out) {
  batch_popcount_prefix_with(a_base, stride, count, nbits, out,
                             popcount_prefix_impl);
}

constexpr Kernels kScalarTable = {
    "scalar",
    &popcount_scalar,
    &and_popcount_scalar,
    &popcount_prefix_impl,
    &and_popcount_prefix_impl,
    &and_popcount_from_impl,
    &and_any_scalar,
    &andnot_any_scalar,
    &equal_scalar,
    &or_accum_scalar,
    &batch_and_popcount_from_impl,
    &batch_popcount_prefix_impl,
    &column_accumulate_scalar,
    &batch_column_accumulate_scalar,
    &bernoulli_fill_scalar,
};

}  // namespace

const Kernels& scalar() { return kScalarTable; }

}  // namespace pqs::simd

// Runtime kernel selection.
//
// Resolution happens once, on first use, from three inputs:
//   1. the build: -DPQS_FORCE_SCALAR=ON pins the scalar reference (the CI
//      fallback job, and any machine where vector units must stay idle);
//   2. the environment: PQS_FORCE_SCALAR (set, not "0") pins scalar, and
//      PQS_SIMD=<name> selects a specific table when the CPU has it;
//   3. cpuid: the highest table whose ISA the CPU reports, avx512 > avx2 >
//      scalar. AVX-512 requires F+BW+DQ+VL+VPOPCNTDQ (everything the
//      kernels use); AVX2 requires AVX2 (BMI2/POPCNT ride along on every
//      AVX2-era part).
//
// Because every table is bit-identical (tests/test_simd_kernels.cc), the
// choice is invisible in results — only in throughput.
#include <atomic>
#include <cstdlib>
#include <cstring>

#include "simd/isa_tables.h"
#include "simd/kernels.h"

namespace pqs::simd {

namespace {

bool cpu_has(const Kernels& table) {
  if (std::strcmp(table.name, "scalar") == 0) return true;
#if defined(__x86_64__) && (defined(__GNUC__) || defined(__clang__))
  if (std::strcmp(table.name, "avx2") == 0) {
    return __builtin_cpu_supports("avx2");
  }
  if (std::strcmp(table.name, "avx512") == 0) {
    return __builtin_cpu_supports("avx512f") &&
           __builtin_cpu_supports("avx512bw") &&
           __builtin_cpu_supports("avx512dq") &&
           __builtin_cpu_supports("avx512vl") &&
           __builtin_cpu_supports("avx512vpopcntdq");
  }
#endif
  return false;
}

const Kernels* resolve() {
#ifdef PQS_FORCE_SCALAR_BUILD
  return &scalar();
#else
  if (const char* force = std::getenv("PQS_FORCE_SCALAR")) {
    if (std::strcmp(force, "0") != 0) return &scalar();
  }
  if (const char* want = std::getenv("PQS_SIMD")) {
    if (const Kernels* k = find(want)) return k;
  }
  if (const Kernels* k = detail::avx512_table()) {
    if (cpu_has(*k)) return k;
  }
  if (const Kernels* k = detail::avx2_table()) {
    if (cpu_has(*k)) return k;
  }
  return &scalar();
#endif
}

std::atomic<const Kernels*>& active_slot() {
  static std::atomic<const Kernels*> slot{resolve()};
  return slot;
}

}  // namespace

const Kernels& active() {
  return *active_slot().load(std::memory_order_relaxed);
}

void force(const Kernels& kernels) {
  active_slot().store(&kernels, std::memory_order_relaxed);
}

std::vector<const Kernels*> available() {
  std::vector<const Kernels*> tables;
  tables.push_back(&scalar());
  if (const Kernels* k = detail::avx2_table()) {
    if (cpu_has(*k)) tables.push_back(k);
  }
  if (const Kernels* k = detail::avx512_table()) {
    if (cpu_has(*k)) tables.push_back(k);
  }
  return tables;
}

const Kernels* find(const char* name) {
  for (const Kernels* k : available()) {
    if (std::strcmp(k->name, name) == 0) return k;
  }
  return nullptr;
}

}  // namespace pqs::simd

// AVX2 kernel table. Compiled with -mavx2 -mpopcnt -mbmi2 (CMake adds the
// flags only when the compiler supports them; PQS_SIMD_COMPILE_AVX2 marks
// that case). Selected at runtime only when cpuid reports AVX2, so nothing
// in this TU may run before dispatch — no static initializers touch vector
// code.
//
// Popcounts use Mula's vpshufb nibble-LUT with vpsadbw accumulation
// (4 words per 256-bit lane, no cross-lane reduction until the end); the
// Bernoulli fill runs the sixteen SplitMix64 lane streams as four 4-lane
// vectors with the 64x64 multiply emulated over vpmuludq.
#include "simd/isa_tables.h"
#include "simd/kernels_common.h"

#if defined(PQS_SIMD_COMPILE_AVX2) && defined(__x86_64__)

#include <immintrin.h>

namespace pqs::simd {

namespace {

using namespace detail;

// ---- popcount core --------------------------------------------------------

// Per-byte popcount of v via two nibble table lookups.
inline __m256i popcount_bytes(__m256i v) {
  const __m256i lut =
      _mm256_setr_epi8(0, 1, 1, 2, 1, 2, 2, 3, 1, 2, 2, 3, 2, 3, 3, 4, 0, 1,
                       1, 2, 1, 2, 2, 3, 1, 2, 2, 3, 2, 3, 3, 4);
  const __m256i nibble = _mm256_set1_epi8(0x0f);
  const __m256i lo = _mm256_and_si256(v, nibble);
  const __m256i hi = _mm256_and_si256(_mm256_srli_epi16(v, 4), nibble);
  return _mm256_add_epi8(_mm256_shuffle_epi8(lut, lo),
                         _mm256_shuffle_epi8(lut, hi));
}

inline std::uint32_t reduce_sad(__m256i acc) {
  const __m128i lo = _mm256_castsi256_si128(acc);
  const __m128i hi = _mm256_extracti128_si256(acc, 1);
  const __m128i sum = _mm_add_epi64(lo, hi);
  return static_cast<std::uint32_t>(_mm_cvtsi128_si64(sum) +
                                    _mm_extract_epi64(sum, 1));
}

std::uint32_t popcount_avx2(const std::uint64_t* a, std::size_t n) {
  __m256i acc = _mm256_setzero_si256();
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256i v =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(a + i));
    acc = _mm256_add_epi64(
        acc, _mm256_sad_epu8(popcount_bytes(v), _mm256_setzero_si256()));
  }
  std::uint32_t total = reduce_sad(acc);
  for (; i < n; ++i) total += popcount64(a[i]);
  return total;
}

std::uint32_t and_popcount_avx2(const std::uint64_t* a, const std::uint64_t* b,
                                std::size_t n) {
  __m256i acc = _mm256_setzero_si256();
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256i v = _mm256_and_si256(
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(a + i)),
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(b + i)));
    acc = _mm256_add_epi64(
        acc, _mm256_sad_epu8(popcount_bytes(v), _mm256_setzero_si256()));
  }
  std::uint32_t total = reduce_sad(acc);
  for (; i < n; ++i) total += popcount64(a[i] & b[i]);
  return total;
}

// ---- derived forms --------------------------------------------------------

std::uint32_t popcount_prefix_avx2(const std::uint64_t* a,
                                   std::uint32_t nbits) {
  return and_popcount_prefix_with(
      a, a, nbits,
      [](const std::uint64_t* x, const std::uint64_t*, std::size_t n) {
        return popcount_avx2(x, n);
      });
}

std::uint32_t and_popcount_prefix_avx2(const std::uint64_t* a,
                                       const std::uint64_t* b,
                                       std::uint32_t nbits) {
  return and_popcount_prefix_with(a, b, nbits, and_popcount_avx2);
}

std::uint32_t and_popcount_from_avx2(const std::uint64_t* a,
                                     const std::uint64_t* b, std::size_t n,
                                     std::uint32_t lo_bits) {
  return and_popcount_from_with(a, b, n, lo_bits, and_popcount_avx2);
}

bool and_any_avx2(const std::uint64_t* a, const std::uint64_t* b,
                  std::size_t n) {
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256i va =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(a + i));
    const __m256i vb =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(b + i));
    if (!_mm256_testz_si256(va, vb)) return true;
  }
  for (; i < n; ++i) {
    if (a[i] & b[i]) return true;
  }
  return false;
}

bool andnot_any_avx2(const std::uint64_t* a, const std::uint64_t* b,
                     std::size_t n) {
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256i va =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(a + i));
    const __m256i vb =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(b + i));
    // testc(b, a) checks (~b & a) == 0.
    if (!_mm256_testc_si256(vb, va)) return true;
  }
  for (; i < n; ++i) {
    if (a[i] & ~b[i]) return true;
  }
  return false;
}

bool equal_avx2(const std::uint64_t* a, const std::uint64_t* b,
                std::size_t n) {
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256i va =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(a + i));
    const __m256i vb =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(b + i));
    const __m256i diff = _mm256_xor_si256(va, vb);
    if (!_mm256_testz_si256(diff, diff)) return false;
  }
  for (; i < n; ++i) {
    if (a[i] != b[i]) return false;
  }
  return true;
}

void or_accum_avx2(std::uint64_t* dst, const std::uint64_t* src,
                   std::size_t n) {
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256i v = _mm256_or_si256(
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(dst + i)),
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(src + i)));
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(dst + i), v);
  }
  for (; i < n; ++i) dst[i] |= src[i];
}

void batch_and_popcount_from_avx2(const std::uint64_t* a_base,
                                  const std::uint64_t* b_base,
                                  std::size_t stride, std::size_t count,
                                  std::size_t n, std::uint32_t lo_bits,
                                  std::uint32_t* out) {
  batch_and_popcount_from_with(a_base, b_base, stride, count, n, lo_bits, out,
                               and_popcount_from_avx2);
}

void batch_popcount_prefix_avx2(const std::uint64_t* a_base,
                                std::size_t stride, std::size_t count,
                                std::uint32_t nbits, std::uint32_t* out) {
  batch_popcount_prefix_with(a_base, stride, count, nbits, out,
                             popcount_prefix_avx2);
}

// ---- column accumulation --------------------------------------------------

// Expands the 32 bits of one half-word into 32 bytes of 0x00/0xFF (byte p =
// bit p). set1_epi32 repeats the half-word's four bytes through every
// 32-bit lane; the shuffle replicates source byte p/8 into output byte p,
// and the AND/cmpeq against the bit-select pattern isolates bit p%8.
inline __m256i expand_bits32(std::uint32_t half) {
  const __m256i sel =
      _mm256_setr_epi8(0, 0, 0, 0, 0, 0, 0, 0, 1, 1, 1, 1, 1, 1, 1, 1, 2, 2,
                       2, 2, 2, 2, 2, 2, 3, 3, 3, 3, 3, 3, 3, 3);
  const __m256i bits =
      _mm256_setr_epi8(1, 2, 4, 8, 16, 32, 64, -128, 1, 2, 4, 8, 16, 32, 64,
                       -128, 1, 2, 4, 8, 16, 32, 64, -128, 1, 2, 4, 8, 16, 32,
                       64, -128);
  const __m256i v = _mm256_shuffle_epi8(
      _mm256_set1_epi32(static_cast<int>(half)), sel);
  return _mm256_cmpeq_epi8(_mm256_and_si256(v, bits), bits);
}

void batch_column_accumulate_avx2(const std::uint64_t* a_base,
                                  std::size_t stride, std::size_t count,
                                  std::size_t n, std::uint64_t* counts) {
  // Word-major: a word position's 64 counters live in two byte-lane
  // registers while every mask in the batch streams past (0xFF compare
  // masks subtract as +1), then drain into the uint64 histogram. Chunked
  // at 255 masks so a byte counter can never saturate.
  for (std::size_t wj = 0; wj < n; ++wj) {
    std::uint64_t* c = counts + 64 * wj;
    std::size_t done = 0;
    while (done < count) {
      const std::size_t chunk =
          count - done < 255 ? count - done : std::size_t{255};
      __m256i acc_lo = _mm256_setzero_si256();
      __m256i acc_hi = _mm256_setzero_si256();
      for (std::size_t i = 0; i < chunk; ++i) {
        const std::uint64_t w = a_base[(done + i) * stride + wj];
        acc_lo = _mm256_sub_epi8(
            acc_lo, expand_bits32(static_cast<std::uint32_t>(w)));
        acc_hi = _mm256_sub_epi8(
            acc_hi, expand_bits32(static_cast<std::uint32_t>(w >> 32)));
      }
      alignas(32) std::uint8_t bytes[64];
      _mm256_store_si256(reinterpret_cast<__m256i*>(bytes), acc_lo);
      _mm256_store_si256(reinterpret_cast<__m256i*>(bytes + 32), acc_hi);
      for (int b = 0; b < 64; ++b) c[b] += bytes[b];
      done += chunk;
    }
  }
}

// Single-mask form: the batch kernel at count 1. TU-local on purpose —
// pointing this slot at the header's scalar walk would emit an ODR-merged
// comdat copy of it from a TU compiled with -mavx2, which the linker
// could then hand to the *scalar* table (kernels_common.h forbids exactly
// that cross-ISA linkage).
void column_accumulate_avx2(const std::uint64_t* a, std::size_t n,
                            std::uint64_t* counts) {
  batch_column_accumulate_avx2(a, n, 1, n, counts);
}

// ---- Bernoulli fill -------------------------------------------------------

// 64x64 -> low 64 multiply over 32-bit lanes (AVX2 has no vpmullq).
inline __m256i mul64(__m256i a, __m256i b) {
  const __m256i cross = _mm256_add_epi64(
      _mm256_mul_epu32(a, _mm256_srli_epi64(b, 32)),
      _mm256_mul_epu32(_mm256_srli_epi64(a, 32), b));
  return _mm256_add_epi64(_mm256_mul_epu32(a, b),
                          _mm256_slli_epi64(cross, 32));
}

// SplitMix64 output mix, four lanes at a time (constants in
// kernels_common.h).
inline __m256i mix64x4(__m256i z) {
  z = mul64(_mm256_xor_si256(z, _mm256_srli_epi64(z, 30)),
            _mm256_set1_epi64x(static_cast<long long>(0xbf58476d1ce4e5b9ULL)));
  z = mul64(_mm256_xor_si256(z, _mm256_srli_epi64(z, 27)),
            _mm256_set1_epi64x(static_cast<long long>(0x94d049bb133111ebULL)));
  return _mm256_xor_si256(z, _mm256_srli_epi64(z, 31));
}

// Advances lanes whose eq != 0 and applies one digit step. The state add is
// masked (a decided lane's stream must not advance — the contract in
// kernels_common.h); the mix is computed unconditionally and discarded by
// the eq-masked update, which is a no-op for decided lanes.
inline void digit_step(__m256i& state, __m256i& success, __m256i& eq,
                       bool digit, __m256i golden) {
  const __m256i decided = _mm256_cmpeq_epi64(eq, _mm256_setzero_si256());
  state = _mm256_add_epi64(state, _mm256_andnot_si256(decided, golden));
  const __m256i w = mix64x4(state);
  if (digit) {
    success = _mm256_or_si256(success, _mm256_andnot_si256(w, eq));
    eq = _mm256_and_si256(eq, w);
  } else {
    eq = _mm256_andnot_si256(w, eq);
  }
}

void bernoulli_fill_avx2(std::uint64_t* dst, std::size_t n,
                         const BernoulliSpec& spec, std::uint64_t seed) {
  // Sixteen lanes as four independent 4-lane vectors: the digit loop's
  // critical path is state -> mix -> eq per vector, so four parallel
  // chains keep the multiply pipes busy while each chain's result is in
  // flight.
  constexpr int kVecs = kBernoulliLanes / 4;
  alignas(32) std::uint64_t lane_state[kBernoulliLanes];
  bernoulli_seed_lanes(seed, lane_state);
  const __m256i golden = _mm256_set1_epi64x(static_cast<long long>(kGolden));
  __m256i st[kVecs];
  for (int v = 0; v < kVecs; ++v) {
    st[v] = _mm256_load_si256(
        reinterpret_cast<const __m256i*>(lane_state + 4 * v));
  }
  for (std::size_t chunk = 0; chunk < n; chunk += kBernoulliLanes) {
    const std::size_t lanes =
        n - chunk < kBernoulliLanes ? n - chunk : kBernoulliLanes;
    alignas(32) std::uint64_t eq_init[kBernoulliLanes] = {};
    for (std::size_t j = 0; j < lanes; ++j) eq_init[j] = ~0ULL;
    __m256i eq[kVecs], su[kVecs];
    for (int v = 0; v < kVecs; ++v) {
      eq[v] = _mm256_load_si256(
          reinterpret_cast<const __m256i*>(eq_init + 4 * v));
      su[v] = _mm256_setzero_si256();
    }
    for (int level = 63; level >= spec.stop_level; --level) {
      const bool digit = (spec.threshold >> level) & 1ULL;
      for (int v = 0; v < kVecs; ++v) {
        digit_step(st[v], su[v], eq[v], digit, golden);
      }
      const __m256i undecided =
          _mm256_or_si256(_mm256_or_si256(eq[0], eq[1]),
                          _mm256_or_si256(eq[2], eq[3]));
      if (_mm256_testz_si256(undecided, undecided)) break;
    }
    const __m256i undecided = _mm256_or_si256(
        _mm256_or_si256(eq[0], eq[1]), _mm256_or_si256(eq[2], eq[3]));
    if (spec.tail > 0.0 && !_mm256_testz_si256(undecided, undecided)) {
      // Residual-tail lanes (probability 2^-64 each): spill to the shared
      // scalar fallback, then reload the advanced lane states.
      alignas(32) std::uint64_t eqs[kBernoulliLanes], sus[kBernoulliLanes];
      for (int v = 0; v < kVecs; ++v) {
        _mm256_store_si256(reinterpret_cast<__m256i*>(eqs + 4 * v), eq[v]);
        _mm256_store_si256(reinterpret_cast<__m256i*>(sus + 4 * v), su[v]);
        _mm256_store_si256(reinterpret_cast<__m256i*>(lane_state + 4 * v),
                           st[v]);
      }
      for (std::size_t j = 0; j < lanes; ++j) {
        if (eqs[j] != 0) {
          sus[j] |= bernoulli_tail_scalar(eqs[j], spec.tail, lane_state[j]);
        }
      }
      for (int v = 0; v < kVecs; ++v) {
        su[v] = _mm256_load_si256(
            reinterpret_cast<const __m256i*>(sus + 4 * v));
        st[v] = _mm256_load_si256(
            reinterpret_cast<const __m256i*>(lane_state + 4 * v));
      }
    }
    alignas(32) std::uint64_t block[kBernoulliLanes];
    for (int v = 0; v < kVecs; ++v) {
      _mm256_store_si256(reinterpret_cast<__m256i*>(block + 4 * v), su[v]);
    }
    for (std::size_t j = 0; j < lanes; ++j) {
      dst[chunk + j] = spec.invert ? ~block[j] : block[j];
    }
  }
}

constexpr Kernels kAvx2Table = {
    "avx2",
    &popcount_avx2,
    &and_popcount_avx2,
    &popcount_prefix_avx2,
    &and_popcount_prefix_avx2,
    &and_popcount_from_avx2,
    &and_any_avx2,
    &andnot_any_avx2,
    &equal_avx2,
    &or_accum_avx2,
    &batch_and_popcount_from_avx2,
    &batch_popcount_prefix_avx2,
    &column_accumulate_avx2,
    &batch_column_accumulate_avx2,
    &bernoulli_fill_avx2,
};

}  // namespace

namespace detail {
const Kernels* avx2_table() { return &kAvx2Table; }
}  // namespace detail

}  // namespace pqs::simd

#else  // toolchain cannot target AVX2

namespace pqs::simd::detail {
const Kernels* avx2_table() { return nullptr; }
}  // namespace pqs::simd::detail

#endif

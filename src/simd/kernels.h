// Runtime-dispatched SIMD kernels for the bitset/Bernoulli hot loops.
//
// Every epsilon/load/failure estimate in this library is bounded by two
// inner loops: QuorumBitset word algebra (AND/popcount/range queries) and
// the BernoulliBlockSampler digit compares. This layer packages those
// loops as a table of batch kernels with three implementations — a
// portable scalar reference (the semantic ground truth), AVX2, and
// AVX-512 — selected once at startup by cpuid probe.
//
// Determinism contract: every kernel is a pure function of its inputs
// (bernoulli_fill of (spec, seed)), and every ISA implementation is
// bit-identical to the scalar reference — asserted by the fuzz suite in
// tests/test_simd_kernels.cc. Consequently estimator results do not depend
// on which ISA the host supports, and PQS_FORCE_SCALAR (env var, or the
// -DPQS_FORCE_SCALAR=ON build option) only changes speed, never output.
//
// Dispatch order: avx512 (needs F/BW/DQ/VL/VPOPCNTDQ) > avx2 > scalar.
// Overrides: build option PQS_FORCE_SCALAR=ON pins scalar; env
// PQS_FORCE_SCALAR (set, and not "0") pins scalar; env PQS_SIMD=<name>
// selects a specific table when available on the CPU.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

namespace pqs::simd {

/// The fixed-point description of one Bernoulli(p) digit-compare stream
/// (math::BernoulliBlockSampler exports its precomputed constants here).
struct BernoulliSpec {
  std::uint64_t threshold = 0;  ///< floor(p * 2^64)
  double tail = 0.0;            ///< p * 2^64 - threshold, in [0, 1)
  int stop_level = 0;           ///< lowest digit of p that can still decide
  bool invert = false;          ///< write ~block (alive masks from dead p)
};

/// One kernel table. All word buffers are `uint64_t` spans; `n` counts
/// words. Prefix/from variants take *bit* bounds and handle the partial
/// word internally (buffers must span ceil(bound/64) words at least).
/// Every entry is a pure function of its operands (bernoulli_fill of
/// `(spec, seed)`), bit-identical to the scalar reference on every ISA.
struct Kernels {
  const char* name;  ///< "scalar" | "avx2" | "avx512"

  /// Number of set bits in `a[0..n)`.
  std::uint32_t (*popcount)(const std::uint64_t* a, std::size_t n);
  /// Number of set bits in `a & b` over `n` words.
  std::uint32_t (*and_popcount)(const std::uint64_t* a, const std::uint64_t* b,
                                std::size_t n);
  /// Bits of `a` with bit index < `nbits`.
  std::uint32_t (*popcount_prefix)(const std::uint64_t* a, std::uint32_t nbits);
  /// Bits of `a & b` with bit index < `nbits`.
  std::uint32_t (*and_popcount_prefix)(const std::uint64_t* a,
                                       const std::uint64_t* b,
                                       std::uint32_t nbits);
  /// Bits of `a & b` with bit index >= `lo_bits`, within an n-word buffer
  /// (the "correct servers in both quorums" count: overlap outside the
  /// Byzantine prefix {0..lo_bits-1}).
  std::uint32_t (*and_popcount_from)(const std::uint64_t* a,
                                     const std::uint64_t* b, std::size_t n,
                                     std::uint32_t lo_bits);
  /// True iff `a & b` has any set bit.
  bool (*and_any)(const std::uint64_t* a, const std::uint64_t* b,
                  std::size_t n);
  /// True iff `a & ~b` has any set bit (drives contains_all).
  bool (*andnot_any)(const std::uint64_t* a, const std::uint64_t* b,
                     std::size_t n);
  /// True iff `a` and `b` hold identical words.
  bool (*equal)(const std::uint64_t* a, const std::uint64_t* b, std::size_t n);
  /// `dst |= src`, word by word (set union).
  void (*or_accum)(std::uint64_t* dst, const std::uint64_t* src,
                   std::size_t n);

  /// \name Strided batch forms
  /// Item i reads `a_base + i*stride` (and `b_base + i*stride`), each an
  /// n-word mask; one call covers a whole sample_masks chunk laid out flat
  /// (quorum::MaskBatch). `out[i]` receives item i's count.
  /// @{
  void (*batch_and_popcount_from)(const std::uint64_t* a_base,
                                  const std::uint64_t* b_base,
                                  std::size_t stride, std::size_t count,
                                  std::size_t n, std::uint32_t lo_bits,
                                  std::uint32_t* out);
  void (*batch_popcount_prefix)(const std::uint64_t* a_base,
                                std::size_t stride, std::size_t count,
                                std::uint32_t nbits, std::uint32_t* out);
  /// @}

  /// \name Column accumulation (per-bit hit histograms)
  /// Tallies mask membership into a histogram laid out word-major:
  /// `counts[64*w + b] += bit b of word w` for every word `w < n`, i.e.
  /// `counts[u]` gains one per mask containing server u. `counts` must
  /// span `64*n` entries and is accumulated into, never overwritten — the
  /// load estimator folds many batches into one shard histogram. The
  /// strided batch form tallies `count` masks (item i at
  /// `a_base + i*stride`) in one sweep, which lets implementations keep a
  /// word's 64 counters in registers across the whole batch. Sums are
  /// exact integers, so every ISA and accumulation order is bit-identical
  /// to the scalar reference (a per-bit ctz walk — the loop
  /// estimate_server_loads ran before this kernel existed).
  /// @{
  void (*column_accumulate)(const std::uint64_t* a, std::size_t n,
                            std::uint64_t* counts);
  void (*batch_column_accumulate)(const std::uint64_t* a_base,
                                  std::size_t stride, std::size_t count,
                                  std::size_t n, std::uint64_t* counts);
  /// @}

  /// Fills `dst[0..n)` with Bernoulli(p) blocks (bit j of dst[i] = trial
  /// 64*i+j). The draw stream is defined by the scalar reference in
  /// kernels_common.h: sixteen SplitMix64 lane streams expanded from
  /// `seed`, lanes advanced most-significant-digit-first exactly as
  /// BernoulliBlockSampler::draw_block advances its digits. Pure in
  /// (spec, seed); bit-identical across ISAs.
  void (*bernoulli_fill)(std::uint64_t* dst, std::size_t n,
                         const BernoulliSpec& spec, std::uint64_t seed);
};

// The scalar reference table (always available; the fuzz oracle).
const Kernels& scalar();

// The dispatched table: resolved once (cpuid + overrides) on first use.
const Kernels& active();

// Every table usable on this CPU, scalar first. Benches iterate this to
// report scalar-vs-SIMD side by side in one process.
std::vector<const Kernels*> available();

// Table lookup by name among available(); nullptr if absent/unsupported.
const Kernels* find(const char* name);

// Replaces the active table (tests/benches only; call from a single thread
// with no concurrent kernel users).
void force(const Kernels& kernels);

}  // namespace pqs::simd

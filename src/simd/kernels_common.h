// Shared scalar building blocks for the kernel TUs.
//
// The scalar table is built directly from these; the AVX2/AVX-512 TUs use
// them for partial-word heads, short-buffer tails, and the (astronomically
// rare) Bernoulli residual-tail fallback, so every ISA shares one source of
// truth for the tricky edge arithmetic. Everything here is inline and
// header-only on purpose: each TU is compiled with its own ISA flags and
// must not link against code compiled for another ISA.
#pragma once

#include <cstddef>
#include <cstdint>

#include "simd/kernels.h"

namespace pqs::simd::detail {

inline std::uint32_t popcount64(std::uint64_t x) {
  return static_cast<std::uint32_t>(__builtin_popcountll(x));
}

// Mask selecting the bits below position `bits` of one word (bits <= 64).
inline std::uint64_t low_mask(std::uint32_t bits) {
  return bits >= 64 ? ~0ULL : (1ULL << bits) - 1;
}

inline std::uint32_t popcount_scalar(const std::uint64_t* a, std::size_t n) {
  std::uint32_t total = 0;
  for (std::size_t i = 0; i < n; ++i) total += popcount64(a[i]);
  return total;
}

inline std::uint32_t and_popcount_scalar(const std::uint64_t* a,
                                         const std::uint64_t* b,
                                         std::size_t n) {
  std::uint32_t total = 0;
  for (std::size_t i = 0; i < n; ++i) total += popcount64(a[i] & b[i]);
  return total;
}

// Prefix/from forms expressed over a whole-word core so each ISA plugs in
// its own wide popcount and keeps the partial-word fixups identical.
template <typename AndPop>
inline std::uint32_t and_popcount_prefix_with(const std::uint64_t* a,
                                              const std::uint64_t* b,
                                              std::uint32_t nbits,
                                              AndPop&& core) {
  const std::uint32_t full = nbits / 64;
  std::uint32_t total = core(a, b, full);
  if (nbits % 64 != 0) {
    total += popcount64(a[full] & b[full] & low_mask(nbits % 64));
  }
  return total;
}

template <typename AndPop>
inline std::uint32_t and_popcount_from_with(const std::uint64_t* a,
                                            const std::uint64_t* b,
                                            std::size_t n,
                                            std::uint32_t lo_bits,
                                            AndPop&& core) {
  const std::size_t first = lo_bits / 64;
  if (first >= n) return 0;
  std::uint32_t total =
      popcount64(a[first] & b[first] & ~low_mask(lo_bits % 64));
  return total + core(a + first + 1, b + first + 1, n - first - 1);
}

inline bool and_any_scalar(const std::uint64_t* a, const std::uint64_t* b,
                           std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) {
    if (a[i] & b[i]) return true;
  }
  return false;
}

inline bool andnot_any_scalar(const std::uint64_t* a, const std::uint64_t* b,
                              std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) {
    if (a[i] & ~b[i]) return true;
  }
  return false;
}

inline bool equal_scalar(const std::uint64_t* a, const std::uint64_t* b,
                         std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) {
    if (a[i] != b[i]) return false;
  }
  return true;
}

inline void or_accum_scalar(std::uint64_t* dst, const std::uint64_t* src,
                            std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) dst[i] |= src[i];
}

// The column-accumulate scalar reference: a per-bit ctz walk, exactly the
// loop estimate_server_loads ran before the kernel existed. The output is
// an exact integer sum, so vector implementations are free to reorder the
// additions (vertical byte counters, register-resident accumulators) and
// still match bit for bit.
inline void column_accumulate_scalar(const std::uint64_t* a, std::size_t n,
                                     std::uint64_t* counts) {
  for (std::size_t i = 0; i < n; ++i) {
    std::uint64_t w = a[i];
    std::uint64_t* c = counts + 64 * i;
    while (w != 0) {
      c[static_cast<std::uint32_t>(__builtin_ctzll(w))] += 1;
      w &= w - 1;
    }
  }
}

inline void batch_column_accumulate_scalar(const std::uint64_t* a_base,
                                           std::size_t stride,
                                           std::size_t count, std::size_t n,
                                           std::uint64_t* counts) {
  for (std::size_t i = 0; i < count; ++i) {
    column_accumulate_scalar(a_base + i * stride, n, counts);
  }
}

// ---- Bernoulli digit-compare stream ---------------------------------------
//
// The fill stream: `seed` (one word of the caller's generator) expands
// through SplitMix64 into sixteen lane states; lane j serves blocks with
// index ≡ j (mod 16) of the destination buffer, chunked sixteen at a time.
// Within a chunk, digits of p are compared most-significant-first exactly
// as BernoulliBlockSampler::draw_block does for a single block: at each
// level, every still-undecided lane draws one word from *its own* lane
// stream. Lane streams are private, so implementations may evaluate
// decided lanes speculatively (vector blends) without perturbing the
// consumed sequence — the contract is only that a lane's state advances
// iff that lane is undecided at that level. Sixteen lanes (not a vector
// width) so every ISA runs several independent mix chains per level: the
// digit loop is latency-bound on state -> mix -> eq -> state, and the
// extra chains convert that latency into throughput.
//
// Constants match math::SplitMix64 (duplicated here so the kernel TUs stay
// free of cross-ISA link dependencies).

constexpr int kBernoulliLanes = 16;

constexpr std::uint64_t kGolden = 0x9e3779b97f4a7c15ULL;

inline std::uint64_t mix64(std::uint64_t z) {
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

inline void bernoulli_seed_lanes(std::uint64_t seed,
                                 std::uint64_t lane_state[kBernoulliLanes]) {
  for (int j = 0; j < kBernoulliLanes; ++j) {
    seed += kGolden;
    lane_state[j] = mix64(seed);
  }
}

// Residual-tail fallback for lanes whose 64 digits all tie p's expansion
// (probability 2^-64 per lane): each tied trial succeeds with the exact
// sub-2^-64 residual, decided by one more lane word compared as a 53-bit
// uniform — the same rule as BernoulliBlockSampler::draw_block's fallback.
inline std::uint64_t bernoulli_tail_scalar(std::uint64_t eq, double tail,
                                           std::uint64_t& lane_state) {
  std::uint64_t success = 0;
  for (std::uint64_t m = eq; m != 0; m &= m - 1) {
    lane_state += kGolden;
    const std::uint64_t w = mix64(lane_state);
    if (static_cast<double>(w >> 11) * 0x1.0p-53 < tail) {
      success |= m & (~m + 1);
    }
  }
  return success;
}

// The scalar reference fill — the semantic definition every ISA must match.
inline void bernoulli_fill_scalar(std::uint64_t* dst, std::size_t n,
                                  const BernoulliSpec& spec,
                                  std::uint64_t seed) {
  std::uint64_t lane_state[kBernoulliLanes];
  bernoulli_seed_lanes(seed, lane_state);
  for (std::size_t chunk = 0; chunk < n; chunk += kBernoulliLanes) {
    const int lanes = n - chunk < kBernoulliLanes
                          ? static_cast<int>(n - chunk)
                          : kBernoulliLanes;
    std::uint64_t success[kBernoulliLanes] = {};
    std::uint64_t eq[kBernoulliLanes] = {};
    for (int j = 0; j < lanes; ++j) eq[j] = ~0ULL;
    for (int level = 63; level >= spec.stop_level; --level) {
      const bool digit = (spec.threshold >> level) & 1ULL;
      bool any = false;
      for (int j = 0; j < lanes; ++j) {
        if (eq[j] == 0) continue;
        lane_state[j] += kGolden;
        const std::uint64_t w = mix64(lane_state[j]);
        if (digit) {
          success[j] |= eq[j] & ~w;
          eq[j] &= w;
        } else {
          eq[j] &= ~w;
        }
        any |= eq[j] != 0;
      }
      if (!any) break;
    }
    if (spec.tail > 0.0) {
      for (int j = 0; j < lanes; ++j) {
        if (eq[j] != 0) {
          success[j] |= bernoulli_tail_scalar(eq[j], spec.tail, lane_state[j]);
        }
      }
    }
    for (int j = 0; j < lanes; ++j) {
      dst[chunk + j] = spec.invert ? ~success[j] : success[j];
    }
  }
}

// Generic strided-batch adapters so each ISA reuses its single-pair cores.
template <typename FromFn>
inline void batch_and_popcount_from_with(const std::uint64_t* a_base,
                                         const std::uint64_t* b_base,
                                         std::size_t stride, std::size_t count,
                                         std::size_t n, std::uint32_t lo_bits,
                                         std::uint32_t* out, FromFn&& from) {
  for (std::size_t i = 0; i < count; ++i) {
    out[i] = from(a_base + i * stride, b_base + i * stride, n, lo_bits);
  }
}

template <typename PrefixFn>
inline void batch_popcount_prefix_with(const std::uint64_t* a_base,
                                       std::size_t stride, std::size_t count,
                                       std::uint32_t nbits, std::uint32_t* out,
                                       PrefixFn&& prefix) {
  for (std::size_t i = 0; i < count; ++i) {
    out[i] = prefix(a_base + i * stride, nbits);
  }
}

}  // namespace pqs::simd::detail

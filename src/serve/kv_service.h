// The sharded in-memory key-value serving tier.
//
// N `replica::InstantCluster` shards sit behind a request router: keys
// hash to shards, every shard owns a bounded lock-free MPSC ring
// (util::MpscRing), and a fixed set of worker threads batch-dequeues
// requests and applies them through the clusters' zero-allocation
// `write_into`/`read_into` entry points. The submit path is one hash plus
// one ring push — no locks, no allocation — and the worker hot loop is
// allocation-free in steady state (per-shard scratch results, a per-key
// map that stops growing once every key has been written, a fixed-size
// latency histogram).
//
// Determinism contract (the serving-tier face of the repo-wide one): the
// router hash is a pure function of the key, each shard applies its
// requests in FIFO order, and shard clusters are seeded independently —
// so as long as every shard's request subsequence arrives in a fixed
// order (one producer, or producers partitioned by shard), each shard's
// aggregate counters are bit-identical across worker-thread counts and
// across mask/allocating draw paths. Latency histograms are measured
// (timing-dependent) and deliberately excluded from the aggregate.
//
// Latency is recorded against the request's *scheduled* arrival time
// (workload::OpenLoopGenerator), so queueing delay from a backed-up shard
// is charged to every request that was due while it was busy —
// coordinated-omission-safe by construction.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <thread>
#include <unordered_map>
#include <vector>

#include "quorum/quorum_system.h"
#include "replica/draw_path.h"
#include "replica/instant_cluster.h"
#include "stats/counters.h"
#include "stats/latency_histogram.h"
#include "stats/load_profile.h"
#include "util/mpsc_ring.h"

namespace pqs::serve {

// Membership changes ride the shard rings as in-band requests, so a churn
// event has a definite position in the shard's FIFO request subsequence —
// which is exactly what keeps churned runs inside the bit-identity
// contract: same subsequence, same aggregates, at any worker count and on
// either draw path. kReplace turns over a uniformly random live slot
// (drawn from the cluster's dedicated churn rng); kJoin/kLeave target the
// slot in Request::key.
enum class ChurnKind : std::uint8_t { kNone = 0, kReplace, kJoin, kLeave };

// Fault-mode flips ride the shard rings the same way churn does: an
// in-band request that switches the FaultMode of the server in
// Request::key at a definite FIFO position in the shard's request
// subsequence. Adversarial scenarios are therefore deterministic and
// replayable — the same submission order produces bit-identical
// aggregates at any worker count and on either draw path. The kinds
// mirror replica::FaultMode one-for-one (kCorrect heals a server).
enum class FaultKind : std::uint8_t {
  kNone = 0,
  kCorrect,
  kCrash,
  kSuppress,
  kStaleReplay,
  kForge,
  kCollude,
};

// One routed request. scheduled_ns is the open-loop arrival deadline
// relative to the service epoch (service_now_ns() clock); latency is
// measured from it at completion. ctx/request_id are opaque words the
// completion hook echoes back — the network front end routes them as
// (connection id, wire request id); in-process drivers leave them zero.
struct Request {
  std::uint64_t key = 0;  // churn requests: the slot argument
  std::int64_t value = 0;  // written value (writes only)
  std::uint64_t scheduled_ns = 0;
  std::uint64_t ctx = 0;
  std::uint64_t request_id = 0;
  bool is_read = false;
  bool wants_reply = false;  // invoke the completion hook for this request
  ChurnKind churn = ChurnKind::kNone;
  FaultKind fault = FaultKind::kNone;  // key = the server slot to flip
};

// What the completion hook learns about one finished request: the opaque
// routing words echoed verbatim, plus the protocol outcome (for reads,
// the selected record — `found` false when no selection survived).
struct Completion {
  std::uint64_t ctx = 0;
  std::uint64_t request_id = 0;
  std::uint64_t key = 0;
  std::int64_t value = 0;  // read: selected value; write: written value
  bool is_read = false;
  bool found = false;  // read: selection nonempty; write: always true
};

// The deterministic per-shard outcome counters: everything here is a pure
// function of the shard's request subsequence (no timings), so it is the
// payload of the bit-identity gates in bench/serve_throughput.
struct ShardAggregate {
  std::uint64_t reads = 0;
  std::uint64_t writes = 0;
  std::uint64_t stale_reads = 0;  // read selection != last applied write
  std::uint64_t empty_reads = 0;  // no selection, or never-written key
  // Position-weighted per-server contact checksum (same shape as the
  // protocol harness): sum over servers of (u + 1) * contacts[u].
  std::uint64_t access_checksum = 0;
  // Membership churn applied in-band on this shard, and the shard
  // cluster's final view epoch (filled at stop_and_drain; 0 for static
  // shards). Both are deterministic functions of the request subsequence,
  // so they sit inside the bit-identity gate like everything else here.
  std::uint64_t churn_events = 0;
  std::uint64_t membership_epoch = 0;
  // Byzantine-read accounting (all zero under plain reads on an honest
  // fleet, so the counters extend the gate without disturbing it):
  // replies the selection rule refused (failed MACs under dissemination,
  // sub-k voucher groups under masking), reads that rejected at least one
  // reply yet still selected a value (the rule *masked* the fault), reads
  // whose selection was ⊥, and fault-mode flips applied in-band.
  std::uint64_t rejected_forgeries = 0;
  std::uint64_t masked_reads = 0;
  std::uint64_t bot_reads = 0;
  std::uint64_t fault_events = 0;
  // Strategy-draw record (zero without a Config::strategy, so the gate is
  // undisturbed on plain deployments): how many alias-table draws the
  // shard cluster made, and the order-sensitive fold of the drawn
  // (support index, read/write side) pairs — filled at stop_and_drain
  // like access_checksum.
  std::uint64_t strategy_draws = 0;
  std::uint64_t strategy_checksum = 0;

  bool operator==(const ShardAggregate& o) const {
    return reads == o.reads && writes == o.writes &&
           stale_reads == o.stale_reads && empty_reads == o.empty_reads &&
           access_checksum == o.access_checksum &&
           churn_events == o.churn_events &&
           membership_epoch == o.membership_epoch &&
           rejected_forgeries == o.rejected_forgeries &&
           masked_reads == o.masked_reads && bot_reads == o.bot_reads &&
           fault_events == o.fault_events &&
           strategy_draws == o.strategy_draws &&
           strategy_checksum == o.strategy_checksum;
  }
  ShardAggregate& operator+=(const ShardAggregate& o) {
    reads += o.reads;
    writes += o.writes;
    stale_reads += o.stale_reads;
    empty_reads += o.empty_reads;
    access_checksum += o.access_checksum;
    churn_events += o.churn_events;
    membership_epoch += o.membership_epoch;
    rejected_forgeries += o.rejected_forgeries;
    masked_reads += o.masked_reads;
    bot_reads += o.bot_reads;
    fault_events += o.fault_events;
    strategy_draws += o.strategy_draws;
    strategy_checksum += o.strategy_checksum;
    return *this;
  }
};

class KvService {
 public:
  struct Config {
    std::uint32_t shards = 4;
    // Shard-serving threads; shard s is owned by worker s % workers.
    // Clamped to [1, shards].
    std::uint32_t workers = 1;
    std::size_t queue_capacity = 4096;  // per-shard ring slots
    std::size_t batch = 64;             // max requests per dequeue
    std::shared_ptr<const quorum::QuorumSystem> quorums;
    replica::DrawPath draw_path = replica::DrawPath::kMask;
    std::uint64_t seed = 1;  // shard s cluster seed derives from this
    // Dynamic membership on every shard cluster (see
    // replica::InstantCluster::Config): the quorum system's universe
    // becomes slot capacity, draws follow each shard's live view, and
    // submit_churn becomes legal. Per-shard churn seeds derive from
    // `seed`, so churned runs stay deterministic end to end.
    bool dynamic_membership = false;
    std::uint32_t initial_live = 0;  // 0 = all slots live
    // Read-selection rule every shard cluster applies (plain /
    // dissemination / masking) and the masking voucher threshold k.
    // Defaults preserve the pre-Byzantine service byte for byte.
    replica::ReadMode read_mode = replica::ReadMode::kPlain;
    std::uint32_t read_threshold = 1;
    // Initial fault assignment, applied identically to every shard
    // cluster (shards are iid replicas of one universe, so "server u is
    // Byzantine" means slot u in each shard). Live flips go through
    // submit_fault. Size must match the quorum universe when set.
    std::optional<replica::FaultPlan> faults;
    // Workload-aware access strategy installed on every shard cluster
    // (see replica::InstantCluster::Config::strategy): writes draw the
    // strategy's write distribution, reads its read distribution, and
    // each shard's draws land in ShardAggregate::strategy_draws /
    // strategy_checksum inside the bit-identity gate. `quorums` may be
    // left null (the strategy serves as the quorum system) and
    // dynamic_membership must stay off.
    std::shared_ptr<const quorum::Strategy> strategy;
  };

  // Called from the owning worker thread after a request's protocol work
  // and latency record are done — the submission/completion seam the
  // network front end plugs into. The handler must not block (it runs in
  // the shard-serving hot loop); it fires only for requests that set
  // wants_reply, so pure in-process drivers pay nothing.
  using CompletionHandler = std::function<void(const Completion&)>;

  explicit KvService(Config config);
  ~KvService();

  KvService(const KvService&) = delete;
  KvService& operator=(const KvService&) = delete;

  std::uint32_t shards() const {
    return static_cast<std::uint32_t>(shards_.size());
  }
  std::uint32_t workers() const { return config_.workers; }
  bool running() const { return running_; }

  // Installs (or clears, with nullptr) the completion hook. Only while
  // stopped: worker threads read the handler unsynchronized, so the
  // start() thread launch is what publishes it.
  void set_completion(CompletionHandler handler);

  // Which shard serves `key` — a pure function of the key (SplitMix64
  // finalizer, then a multiply-shift range reduction).
  std::uint32_t shard_of(std::uint64_t key) const;

  // Launches the worker threads and (re)starts the service clock — the
  // timebase of Request::scheduled_ns. A drained service can be started
  // again: cluster state and counters persist across runs, which is how
  // the bench sweeps offered load on one deployment and reports each
  // point's traffic as a stats::snapshot_delta.
  void start();

  // Lock-free submit: routes to the key's shard and pushes. Returns false
  // when that shard's ring is full (the caller owns backpressure).
  bool try_submit(const Request& request);
  // Spins until the shard accepts (the bench's backpressure policy: an
  // open-loop driver that outruns the service accrues scheduled-arrival
  // lag, which the latency histogram then reports as queueing delay).
  void submit(const Request& request);

  // Enqueues a membership change on `shard` as an in-band request (spins
  // like submit when the ring is full). `arg` is the slot for
  // kJoin/kLeave and ignored for kReplace. The change applies at its
  // FIFO position in the shard's request subsequence — between the
  // requests submitted before and after it — so churned runs keep the
  // bit-identity contract. Requires Config::dynamic_membership.
  void submit_churn(std::uint32_t shard, ChurnKind kind, std::uint64_t arg = 0);

  // Enqueues a fault-mode flip for server `slot` on `shard` as an in-band
  // request (spins like submit when the ring is full). The flip applies
  // at its FIFO position in the shard's request subsequence, exactly like
  // churn — so adversarial runs keep the bit-identity contract: the same
  // submission order yields the same aggregates at any worker count.
  void submit_fault(std::uint32_t shard, FaultKind kind, std::uint64_t slot);

  // Flags shutdown, waits for every ring to drain, joins the workers.
  // All submits must have completed before the call. The service may be
  // start()ed again afterwards.
  void stop_and_drain();

  // Clears the per-shard latency histograms (only while stopped) so a
  // restarted run reports its own percentiles; the deterministic
  // aggregates and protocol counters keep accumulating regardless.
  void reset_latency();

  // Nanoseconds since start() on the service's steady clock — the
  // timebase of Request::scheduled_ns.
  std::uint64_t now_ns() const;

  // Post-drain observability (valid after stop_and_drain()).
  const ShardAggregate& shard_aggregate(std::uint32_t shard) const;
  ShardAggregate fold_aggregates() const;
  std::vector<ShardAggregate> aggregates() const;
  const stats::LatencyHistogram& shard_histogram(std::uint32_t shard) const;
  stats::LatencyHistogram merged_histogram() const;
  // Per-server protocol counters folded across shard clusters (shards are
  // iid replicas of one universe, so merging by server id is the fold).
  stats::ContentionSnapshot contention_snapshot() const;
  // Measured per-server load over client-side quorum contacts.
  stats::LoadProfile server_profile() const;

 private:
  struct Shard {
    explicit Shard(std::size_t queue_capacity) : ring(queue_capacity) {}
    util::MpscRing<Request> ring;
    std::unique_ptr<replica::InstantCluster> cluster;
    // Worker-private state below: only the owning worker touches it
    // between start() and stop_and_drain().
    std::unordered_map<std::uint64_t, std::int64_t> last_written;
    std::vector<std::uint64_t> accesses;  // per-server quorum contacts
    replica::WriteResult write_scratch;
    replica::ReadResult read_scratch;
    ShardAggregate aggregate;
    stats::LatencyHistogram histogram;
  };

  void worker_loop(std::uint32_t worker);
  void process(Shard& shard, const Request& request);

  Config config_;
  CompletionHandler completion_;
  std::vector<std::unique_ptr<Shard>> shards_;
  std::vector<std::thread> threads_;
  std::atomic<bool> stopping_{false};
  bool running_ = false;
  std::chrono::steady_clock::time_point epoch_{};
};

}  // namespace pqs::serve

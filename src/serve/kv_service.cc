#include "serve/kv_service.h"

#include <algorithm>

#include "util/require.h"

namespace pqs::serve {

namespace {

// SplitMix64 finalizer: the router hash. Any fixed bijective mixer works;
// this one is already the library's seeding primitive, so shard placement
// is reproducible everywhere for free.
inline std::uint64_t mix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

inline replica::FaultMode fault_mode_of(FaultKind kind) {
  switch (kind) {
    case FaultKind::kCorrect: return replica::FaultMode::kCorrect;
    case FaultKind::kCrash: return replica::FaultMode::kCrash;
    case FaultKind::kSuppress: return replica::FaultMode::kSuppress;
    case FaultKind::kStaleReplay: return replica::FaultMode::kStaleReplay;
    case FaultKind::kForge: return replica::FaultMode::kForge;
    case FaultKind::kCollude: return replica::FaultMode::kCollude;
    case FaultKind::kNone: break;
  }
  return replica::FaultMode::kCorrect;
}

}  // namespace

KvService::KvService(Config config) : config_(std::move(config)) {
  PQS_REQUIRE(config_.shards >= 1, "service needs shards");
  if (config_.strategy != nullptr) {
    PQS_REQUIRE(!config_.dynamic_membership,
                "a strategy cannot be combined with dynamic membership");
    if (config_.quorums == nullptr) config_.quorums = config_.strategy;
  }
  PQS_REQUIRE(config_.quorums != nullptr, "service needs a quorum system");
  PQS_REQUIRE(config_.batch >= 1, "dequeue batch");
  config_.workers = std::max<std::uint32_t>(
      1, std::min(config_.workers, config_.shards));
  shards_.reserve(config_.shards);
  for (std::uint32_t s = 0; s < config_.shards; ++s) {
    auto shard = std::make_unique<Shard>(config_.queue_capacity);
    replica::InstantCluster::Config cluster_cfg;
    cluster_cfg.quorums = config_.quorums;
    cluster_cfg.mode = config_.read_mode;
    cluster_cfg.read_threshold = config_.read_threshold;
    cluster_cfg.seed = config_.seed + 0x51ed2701ULL * (s + 1);
    cluster_cfg.draw_path = config_.draw_path;
    cluster_cfg.dynamic_membership = config_.dynamic_membership;
    cluster_cfg.initial_live = config_.initial_live;
    cluster_cfg.churn_seed = config_.seed + 0xc4a84e11ULL * (s + 1);
    cluster_cfg.strategy = config_.strategy;
    if (config_.faults.has_value()) {
      PQS_REQUIRE(config_.faults->size() == config_.quorums->universe_size(),
                  "fault plan size");
      shard->cluster = std::make_unique<replica::InstantCluster>(
          std::move(cluster_cfg), *config_.faults);
    } else {
      shard->cluster =
          std::make_unique<replica::InstantCluster>(std::move(cluster_cfg));
    }
    shard->accesses.assign(shard->cluster->universe_size(), 0);
    shards_.push_back(std::move(shard));
  }
}

KvService::~KvService() {
  if (running_) {
    stopping_.store(true, std::memory_order_release);
    for (auto& t : threads_) t.join();
  }
}

void KvService::set_completion(CompletionHandler handler) {
  PQS_REQUIRE(!running_, "set_completion needs a stopped service");
  completion_ = std::move(handler);
}

std::uint32_t KvService::shard_of(std::uint64_t key) const {
  // Multiply-shift range reduction of the mixed key: unbiased enough for
  // routing and, crucially, a pure function of (key, shard count).
  const unsigned __int128 wide =
      static_cast<unsigned __int128>(mix64(key)) * shards_.size();
  return static_cast<std::uint32_t>(wide >> 64);
}

void KvService::start() {
  PQS_REQUIRE(!running_, "service already running");
  running_ = true;
  stopping_.store(false, std::memory_order_relaxed);
  epoch_ = std::chrono::steady_clock::now();
  threads_.reserve(config_.workers);
  for (std::uint32_t w = 0; w < config_.workers; ++w) {
    threads_.emplace_back([this, w] { worker_loop(w); });
  }
}

bool KvService::try_submit(const Request& request) {
  return shards_[shard_of(request.key)]->ring.try_push(request);
}

void KvService::submit(const Request& request) {
  Shard& shard = *shards_[shard_of(request.key)];
  while (!shard.ring.try_push(request)) {
    // Ring full: the shard is the bottleneck. Spin — the open-loop
    // deadline keeps accruing, so the stall is measured, not hidden.
    std::this_thread::yield();
  }
}

void KvService::submit_churn(std::uint32_t shard, ChurnKind kind,
                             std::uint64_t arg) {
  PQS_REQUIRE(config_.dynamic_membership, "static membership");
  PQS_REQUIRE(kind != ChurnKind::kNone, "churn kind");
  Request request;
  request.key = arg;
  request.churn = kind;
  util::MpscRing<Request>& ring = shards_.at(shard)->ring;
  while (!ring.try_push(request)) std::this_thread::yield();
}

void KvService::submit_fault(std::uint32_t shard, FaultKind kind,
                             std::uint64_t slot) {
  PQS_REQUIRE(kind != FaultKind::kNone, "fault kind");
  PQS_REQUIRE(slot < config_.quorums->universe_size(), "fault slot");
  Request request;
  request.key = slot;
  request.fault = kind;
  util::MpscRing<Request>& ring = shards_.at(shard)->ring;
  while (!ring.try_push(request)) std::this_thread::yield();
}

void KvService::stop_and_drain() {
  PQS_REQUIRE(running_, "service not running");
  stopping_.store(true, std::memory_order_release);
  for (auto& t : threads_) t.join();
  threads_.clear();
  running_ = false;
  // The checksum folds the per-server contact counts into one
  // order-sensitive word (same shape as the protocol harness gate).
  for (auto& shard : shards_) {
    std::uint64_t checksum = 0;
    for (std::size_t u = 0; u < shard->accesses.size(); ++u) {
      checksum += (static_cast<std::uint64_t>(u) + 1) * shard->accesses[u];
    }
    shard->aggregate.access_checksum = checksum;
    shard->aggregate.membership_epoch = shard->cluster->view_epoch();
    const auto draw_stats = shard->cluster->strategy_draw_stats();
    shard->aggregate.strategy_draws = draw_stats.draws;
    shard->aggregate.strategy_checksum = draw_stats.checksum;
  }
}

void KvService::reset_latency() {
  PQS_REQUIRE(!running_, "reset_latency needs a stopped service");
  for (auto& shard : shards_) shard->histogram = stats::LatencyHistogram();
}

std::uint64_t KvService::now_ns() const {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now() - epoch_)
          .count());
}

void KvService::worker_loop(std::uint32_t worker) {
  // One dequeue buffer per worker, allocated before the hot loop.
  std::vector<Request> batch(config_.batch);
  const std::uint32_t step = config_.workers;
  for (;;) {
    bool progress = false;
    for (std::uint32_t s = worker; s < shards_.size(); s += step) {
      Shard& shard = *shards_[s];
      const std::size_t taken =
          shard.ring.pop_batch(batch.data(), batch.size());
      for (std::size_t i = 0; i < taken; ++i) process(shard, batch[i]);
      progress |= taken > 0;
    }
    if (progress) continue;
    if (stopping_.load(std::memory_order_acquire)) {
      // Producers are done and their pushes are visible; one empty sweep
      // over the owned rings means there is nothing left to drain.
      bool all_empty = true;
      for (std::uint32_t s = worker; s < shards_.size(); s += step) {
        if (!shards_[s]->ring.empty()) {
          all_empty = false;
          break;
        }
      }
      if (all_empty) return;
    } else {
      std::this_thread::yield();
    }
  }
}

void KvService::process(Shard& shard, const Request& request) {
  ShardAggregate& agg = shard.aggregate;
  if (request.fault != FaultKind::kNone) {
    // Fault flip at this FIFO position. Like churn: control traffic, so
    // no latency record and no completion.
    shard.cluster->server(static_cast<std::uint32_t>(request.key))
        .set_mode(fault_mode_of(request.fault));
    ++agg.fault_events;
    return;
  }
  if (request.churn != ChurnKind::kNone) {
    // Membership change at this FIFO position. No latency record, no
    // completion — churn is control traffic, not a served request.
    switch (request.churn) {
      case ChurnKind::kReplace:
        shard.cluster->churn_replace();
        break;
      case ChurnKind::kJoin:
        shard.cluster->join(static_cast<quorum::ServerId>(request.key));
        break;
      case ChurnKind::kLeave:
        shard.cluster->leave(static_cast<quorum::ServerId>(request.key));
        break;
      case ChurnKind::kNone:
        break;
    }
    ++agg.churn_events;
    return;
  }
  if (request.is_read) {
    ++agg.reads;
    shard.cluster->read_into(shard.read_scratch, request.key);
    for (const auto u : shard.read_scratch.quorum) ++shard.accesses[u];
    const auto& selection = shard.read_scratch.selection;
    // Byzantine accounting first: what the selection rule refused, and
    // whether refusing was enough to still pick a value (masked) or left
    // the read with ⊥ (bot). All deterministic, so inside the gate.
    agg.rejected_forgeries += selection.rejected;
    if (selection.rejected > 0 && selection.has_value) ++agg.masked_reads;
    if (!selection.has_value) ++agg.bot_reads;
    const auto expected = shard.last_written.find(request.key);
    if (expected == shard.last_written.end()) {
      ++agg.empty_reads;
    } else if (!selection.has_value) {
      ++agg.empty_reads;
      ++agg.stale_reads;
    } else if (selection.record.value != expected->second) {
      ++agg.stale_reads;
    }
  } else {
    ++agg.writes;
    shard.cluster->write_into(shard.write_scratch, request.key,
                              request.value);
    for (const auto u : shard.write_scratch.quorum) ++shard.accesses[u];
    shard.last_written[request.key] = request.value;
  }
  // Latency from the *scheduled* arrival (coordinated-omission-safe); an
  // unpaced driver stamps submit time, making this pure service+queue
  // time instead.
  const std::uint64_t now = now_ns();
  shard.histogram.record(now > request.scheduled_ns
                             ? now - request.scheduled_ns
                             : 0);
  // Completion fires after the latency record so a caller that observed
  // the reply knows this shard's histogram and aggregates already hold
  // the request.
  if (request.wants_reply && completion_) {
    Completion done;
    done.ctx = request.ctx;
    done.request_id = request.request_id;
    done.key = request.key;
    done.is_read = request.is_read;
    if (request.is_read) {
      done.found = shard.read_scratch.selection.has_value;
      done.value =
          done.found ? shard.read_scratch.selection.record.value : 0;
    } else {
      done.found = true;
      done.value = request.value;
    }
    completion_(done);
  }
}

const ShardAggregate& KvService::shard_aggregate(std::uint32_t shard) const {
  return shards_.at(shard)->aggregate;
}

ShardAggregate KvService::fold_aggregates() const {
  ShardAggregate total;
  for (const auto& shard : shards_) total += shard->aggregate;
  return total;
}

std::vector<ShardAggregate> KvService::aggregates() const {
  std::vector<ShardAggregate> all;
  all.reserve(shards_.size());
  for (const auto& shard : shards_) all.push_back(shard->aggregate);
  return all;
}

const stats::LatencyHistogram& KvService::shard_histogram(
    std::uint32_t shard) const {
  return shards_.at(shard)->histogram;
}

stats::LatencyHistogram KvService::merged_histogram() const {
  stats::LatencyHistogram merged;
  for (const auto& shard : shards_) merged.merge(shard->histogram);
  return merged;
}

stats::ContentionSnapshot KvService::contention_snapshot() const {
  stats::ContentionSnapshot merged;
  for (const auto& shard : shards_) {
    merged.merge(shard->cluster->contention_snapshot());
  }
  return merged;
}

stats::LoadProfile KvService::server_profile() const {
  std::vector<std::uint64_t> hits;
  std::uint64_t ops = 0;
  for (const auto& shard : shards_) {
    if (hits.empty()) hits.assign(shard->accesses.size(), 0);
    for (std::size_t u = 0; u < shard->accesses.size(); ++u) {
      hits[u] += shard->accesses[u];
    }
    ops += shard->aggregate.reads + shard->aggregate.writes;
  }
  return stats::LoadProfile(std::move(hits), ops);
}

}  // namespace pqs::serve

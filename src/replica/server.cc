#include "replica/server.h"

#include <utility>

#include "util/require.h"

namespace pqs::replica {

Server::Server(std::uint32_t id, FaultMode mode, math::Rng rng,
               std::shared_ptr<const ColludePlan> collude_plan)
    : id_(id), mode_(mode), rng_(rng), collude_plan_(std::move(collude_plan)) {
  if (mode == FaultMode::kCollude) {
    PQS_REQUIRE(collude_plan_ != nullptr, "colluders need a shared plan");
  }
}

std::vector<Outbound> Server::process(std::uint32_t from,
                                      const Message& message) {
  std::vector<Outbound> out;
  process_into(from, message, out);
  return out;
}

void Server::process_into(std::uint32_t from, const Message& message,
                          std::vector<Outbound>& out) {
  out.clear();
  if (mode_ == FaultMode::kCrash) return;
  if (const auto* w = std::get_if<WriteRequest>(&message)) {
    handle_write(from, *w, out);
    return;
  }
  if (const auto* r = std::get_if<ReadRequest>(&message)) {
    handle_read(from, *r, out);
    return;
  }
  if (const auto* g = std::get_if<GossipPush>(&message)) {
    // Correct servers adopt fresher gossip; faulty ones ignore it. With a
    // gossip verifier installed, adoption is Byzantine-safe: records whose
    // writer MAC does not verify are discarded ([MMR99]).
    if (mode_ == FaultMode::kCorrect) {
      if (!gossip_verifier_ || gossip_verifier_->verify(g->record)) {
        adopt(g->record);
      }
    }
    return;
  }
  // WriteAck / ReadReply are client-bound; a server receiving one ignores it.
}

void Server::handle_write(std::uint32_t from, const WriteRequest& w,
                          std::vector<Outbound>& out) {
  if (apply_write(w)) out.push_back({from, WriteAck{w.op, id_}});
}

void Server::handle_read(std::uint32_t from, const ReadRequest& r,
                         std::vector<Outbound>& out) {
  ReadReply reply;
  if (serve_read(r, reply)) out.push_back({from, reply});
}

bool Server::apply_write(const WriteRequest& w) {
  switch (mode_) {
    case FaultMode::kCorrect:
      if (!adopt(w.record)) ++writes_superseded_;
      ++writes_accepted_;
      return true;
    case FaultMode::kSuppress:
      return false;  // omission: never acknowledges
    case FaultMode::kStaleReplay:
    case FaultMode::kForge:
    case FaultMode::kCollude:
      // Pretends to accept (acks) but does not durably adopt; it keeps the
      // record only in first_store_ so stale replay has something genuine.
      if (first_store_.count(w.record.variable) == 0) {
        first_store_.emplace(w.record.variable, w.record);
      }
      return true;
    case FaultMode::kCrash:
      break;
  }
  return false;
}

bool Server::serve_read(const ReadRequest& r, ReadReply& reply) {
  reply = ReadReply{};
  reply.op = r.op;
  reply.server = id_;
  switch (mode_) {
    case FaultMode::kCorrect: {
      ++reads_served_;
      if (const auto* rec = find(r.variable)) {
        reply.has_value = true;
        reply.record = *rec;
      }
      return true;
    }
    case FaultMode::kSuppress:
      return false;
    case FaultMode::kStaleReplay: {
      const auto it = first_store_.find(r.variable);
      if (it != first_store_.end()) {
        reply.has_value = true;
        reply.record = it->second;  // genuine tag, stale timestamp
      }
      return true;
    }
    case FaultMode::kForge: {
      reply.has_value = true;
      reply.record.variable = r.variable;
      reply.record.value = static_cast<std::int64_t>(rng_.next() >> 1);
      reply.record.timestamp = (~0ULL >> 8) - rng_.below(1024);
      reply.record.writer = 0;
      reply.record.tag = rng_.next();  // cannot compute a valid tag
      return true;
    }
    case FaultMode::kCollude: {
      reply.has_value = true;
      reply.record = collude_plan_->forged(r.variable);
      return true;
    }
    case FaultMode::kCrash:
      break;
  }
  return false;
}

const crypto::SignedRecord* Server::find(VariableId variable) const {
  const auto it = store_.find(variable);
  return it == store_.end() ? nullptr : &it->second;
}

bool Server::adopt(const crypto::SignedRecord& record) {
  first_store_.try_emplace(record.variable, record);
  auto [it, inserted] = store_.try_emplace(record.variable, record);
  if (inserted) return true;
  if (record.timestamp > it->second.timestamp) {
    it->second = record;
    return true;
  }
  return false;
}

std::vector<crypto::SignedRecord> Server::snapshot() const {
  std::vector<crypto::SignedRecord> out;
  out.reserve(store_.size());
  for (const auto& [var, rec] : store_) out.push_back(rec);
  return out;
}

stats::ContentionSnapshot snapshot_counters(
    const std::vector<std::unique_ptr<Server>>& servers) {
  stats::ContentionSnapshot snap(static_cast<std::uint32_t>(servers.size()));
  for (std::uint32_t u = 0; u < servers.size(); ++u) {
    snap.server(u) = servers[u]->counters();
  }
  return snap;
}

std::vector<crypto::SignedRecord> Server::gossip_records() {
  switch (mode_) {
    case FaultMode::kCorrect:
      return snapshot();
    case FaultMode::kStaleReplay: {
      std::vector<crypto::SignedRecord> out;
      out.reserve(first_store_.size());
      for (const auto& [var, rec] : first_store_) out.push_back(rec);
      return out;
    }
    case FaultMode::kForge: {
      std::vector<crypto::SignedRecord> out;
      for (const auto& [var, rec] : first_store_) {
        crypto::SignedRecord fake;
        fake.variable = var;
        fake.value = static_cast<std::int64_t>(rng_.next() >> 1);
        fake.timestamp = (~0ULL >> 8) - rng_.below(1024);
        fake.writer = 0;
        fake.tag = rng_.next();
        out.push_back(fake);
      }
      return out;
    }
    case FaultMode::kCollude: {
      std::vector<crypto::SignedRecord> out;
      for (const auto& [var, rec] : first_store_) {
        out.push_back(collude_plan_->forged(var));
      }
      return out;
    }
    case FaultMode::kSuppress:
    case FaultMode::kCrash:
      break;
  }
  return {};
}

}  // namespace pqs::replica

#include "replica/instant_cluster.h"

#include <utility>

#include "util/require.h"

namespace pqs::replica {

namespace {

std::uint32_t plan_universe(const InstantCluster::Config& config) {
  if (config.quorums != nullptr) return config.quorums->universe_size();
  if (config.strategy != nullptr) return config.strategy->universe_size();
  return 1;
}

}  // namespace

InstantCluster::InstantCluster(Config config)
    : InstantCluster(config, FaultPlan(plan_universe(config))) {}

InstantCluster::InstantCluster(Config config, FaultPlan faults)
    : config_(std::move(config)),
      signer_(crypto::Signer::from_seed(config_.writer_key_seed)),
      verifier_(signer_.key()),
      rng_(config_.seed),
      churn_rng_(config_.churn_seed),
      collude_(std::make_shared<const ColludePlan>()) {
  if (config_.strategy != nullptr) {
    PQS_REQUIRE(!config_.dynamic_membership,
                "a strategy's support is fixed-universe; it cannot be "
                "combined with dynamic membership");
    if (config_.quorums == nullptr) {
      config_.quorums = config_.strategy;
    } else {
      PQS_REQUIRE(config_.quorums->universe_size() ==
                      config_.strategy->universe_size(),
                  "strategy universe mismatch");
    }
  }
  PQS_REQUIRE(config_.quorums != nullptr, "cluster needs a quorum system");
  const std::uint32_t n = config_.quorums->universe_size();
  PQS_REQUIRE(faults.size() == n, "fault plan size mismatch");
  servers_.reserve(n);
  for (std::uint32_t i = 0; i < n; ++i) {
    servers_.push_back(
        std::make_unique<Server>(i, faults.mode(i), rng_.fork(), collude_));
  }
  writer_seq_.assign(1u << 8, 0);
  if (config_.dynamic_membership) {
    const std::uint32_t live =
        config_.initial_live == 0 ? n : config_.initial_live;
    PQS_REQUIRE(live <= n, "initial_live exceeds slot capacity");
    PQS_REQUIRE(live >= config_.quorums->min_quorum_size(),
                "initial membership smaller than a quorum");
    view_ = quorum::MembershipView(n, live);
    for (auto& s : servers_) s->install_membership(view_);
  }
}

void InstantCluster::fresh_server(quorum::ServerId slot) {
  servers_[slot] =
      std::make_unique<Server>(slot, FaultMode::kCorrect, churn_rng_.fork(),
                               collude_);
  servers_[slot]->install_membership(view_);
}

void InstantCluster::join(quorum::ServerId slot) {
  PQS_REQUIRE(config_.dynamic_membership, "static membership");
  view_.join(slot);
  fresh_server(slot);
}

void InstantCluster::leave(quorum::ServerId slot) {
  PQS_REQUIRE(config_.dynamic_membership, "static membership");
  PQS_REQUIRE(view_.live_count() > config_.quorums->min_quorum_size(),
              "leave would shrink membership below a quorum");
  view_.leave(slot);
}

void InstantCluster::replace(quorum::ServerId victim,
                             quorum::ServerId joiner) {
  PQS_REQUIRE(config_.dynamic_membership, "static membership");
  view_.replace(victim, joiner);
  fresh_server(joiner);
}

quorum::ServerId InstantCluster::churn_replace() {
  PQS_REQUIRE(config_.dynamic_membership, "static membership");
  const auto victim = view_.nth_live(
      static_cast<std::uint32_t>(churn_rng_.below(view_.live_count())));
  replace(victim, victim);
  return victim;
}

void InstantCluster::run_churn(std::uint32_t events) {
  for (std::uint32_t i = 0; i < events; ++i) churn_replace();
}

std::uint64_t InstantCluster::next_timestamp(std::uint32_t writer) {
  PQS_REQUIRE(writer < writer_seq_.size(), "writer id");
  return (++writer_seq_[writer] << 16) | writer;
}

WriteResult InstantCluster::write(VariableId variable, std::int64_t value) {
  return write_as(1, variable, value);
}

WriteResult InstantCluster::write_as(std::uint32_t writer, VariableId variable,
                                     std::int64_t value) {
  WriteResult result;
  write_as_into(result, writer, variable, value);
  return result;
}

void InstantCluster::write_into(WriteResult& result, VariableId variable,
                                std::int64_t value) {
  write_as_into(result, 1, variable, value);
}

void InstantCluster::write_as_into(WriteResult& result, std::uint32_t writer,
                                   VariableId variable, std::int64_t value) {
  result.acks = 0;
  if (config_.draw_path == DrawPath::kMask) {
    if (config_.strategy) {
      // One alias-table word from the shared quorum stream; the prebuilt
      // support mask is copied into the scratch, so both paths pick the
      // same index from the same stream position.
      const std::uint32_t idx = config_.strategy->draw_write_index(rng_);
      record_strategy_draw(idx, true);
      draw_mask_ = config_.strategy->write_mask(idx);
    } else if (config_.dynamic_membership) {
      // R(live, q) over the current view. With every slot live this
      // consumes the exact rng draws of the static sample_mask below.
      view_.sample_live_mask(config_.quorums->min_quorum_size(), rng_,
                             draw_mask_, compact_scratch_);
    } else {
      config_.quorums->sample_mask(draw_mask_, rng_);
    }
    result.timestamp = next_timestamp(writer);
    const auto record =
        signer_.sign(variable, value, result.timestamp, writer);
    draw_mask_.for_each_set_bit([&](quorum::ServerId u) {
      if (servers_[u]->apply_write(WriteRequest{0, record})) ++result.acks;
    });
    draw_mask_.to_quorum_into(result.quorum);
  } else {
    // The original flow, preserved verbatim for A/B measurement: allocating
    // draw, message dispatch through process() and its Outbound vectors.
    if (config_.strategy) {
      const std::uint32_t idx = config_.strategy->draw_write_index(rng_);
      record_strategy_draw(idx, true);
      result.quorum = config_.strategy->write_quorum(idx);
    } else if (config_.dynamic_membership) {
      view_.sample_live_into(config_.quorums->min_quorum_size(), rng_,
                             result.quorum);
    } else {
      result.quorum = config_.quorums->sample(rng_);
    }
    result.timestamp = next_timestamp(writer);
    const auto record =
        signer_.sign(variable, value, result.timestamp, writer);
    for (auto u : result.quorum) {
      const auto out = servers_[u]->process(kClientId, WriteRequest{0, record});
      for (const auto& o : out) {
        if (std::holds_alternative<WriteAck>(o.message)) ++result.acks;
      }
    }
  }
}

ReadResult InstantCluster::read(VariableId variable) {
  ReadResult result;
  read_into(result, variable);
  return result;
}

void InstantCluster::read_into(ReadResult& result, VariableId variable) {
  result.replies = 0;
  result.repairs = 0;
  reply_scratch_.clear();
  if (config_.draw_path == DrawPath::kMask) {
    if (config_.strategy) {
      const std::uint32_t idx = config_.strategy->draw_read_index(rng_);
      record_strategy_draw(idx, false);
      draw_mask_ = config_.strategy->read_mask(idx);
    } else if (config_.dynamic_membership) {
      view_.sample_live_mask(config_.quorums->min_quorum_size(), rng_,
                             draw_mask_, compact_scratch_);
    } else {
      config_.quorums->sample_mask(draw_mask_, rng_);
    }
    draw_mask_.for_each_set_bit([&](quorum::ServerId u) {
      ReadReply reply;
      if (servers_[u]->serve_read(ReadRequest{0, variable}, reply)) {
        reply_scratch_.push_back(reply);
        ++result.replies;
      }
    });
    draw_mask_.to_quorum_into(result.quorum);
  } else {
    // Original flow kept for A/B (see write_as_into).
    if (config_.strategy) {
      const std::uint32_t idx = config_.strategy->draw_read_index(rng_);
      record_strategy_draw(idx, false);
      result.quorum = config_.strategy->read_quorum(idx);
    } else if (config_.dynamic_membership) {
      view_.sample_live_into(config_.quorums->min_quorum_size(), rng_,
                             result.quorum);
    } else {
      result.quorum = config_.quorums->sample(rng_);
    }
    for (auto u : result.quorum) {
      const auto out =
          servers_[u]->process(kClientId, ReadRequest{0, variable});
      for (const auto& o : out) {
        if (const auto* r = std::get_if<ReadReply>(&o.message)) {
          reply_scratch_.push_back(*r);
          ++result.replies;
        }
      }
    }
  }
  result.selection =
      select(config_.mode, reply_scratch_, &verifier_, config_.read_threshold);
}

void InstantCluster::read_repair_into(ReadResult& result,
                                      VariableId variable) {
  read_into(result, variable);
  if (!result.selection.has_value) return;
  const crypto::SignedRecord& best = result.selection.record;
  // O(r^2) scan over the reply scratch, like select_masking: quorums are
  // O(sqrt n) so this stays cheap and allocation-free.
  for (const auto u : result.quorum) {
    bool fresh = false;
    for (const ReadReply& reply : reply_scratch_) {
      if (reply.server == u) {
        fresh = reply.has_value && reply.record.timestamp >= best.timestamp;
        break;
      }
    }
    if (fresh) continue;
    servers_[u]->apply_write(WriteRequest{0, best});
    ++result.repairs;
  }
}

stats::ContentionSnapshot InstantCluster::contention_snapshot() const {
  return snapshot_counters(servers_);
}

}  // namespace pqs::replica

// Probabilistic lock service (the paper's voter-ID locking pattern).
//
// Section 1.1 and [MR98b]: Phalanx built lock objects directly over
// (probabilistic) quorum systems. A lock is a replicated variable holding
// the owner id (0 = free). try_acquire reads the variable through a quorum
// and, if free, writes the caller as owner.
//
// Semantics are deliberately *probabilistic advisory* locking, exactly the
// guarantee the voting application needs: a double-acquire slips through
// only when the read quorum misses every up-to-date server (probability
// <= eps per attempt, independent across attempts), so k repeated attempts
// all succeed with probability <= eps^k — "numerous repeat attempts will be
// detected with virtual certainty". It is not a mutual-exclusion primitive
// for safety-critical sections; the paper's applications do not need one.
#pragma once

#include <cstdint>

#include "replica/instant_cluster.h"

namespace pqs::replica {

class LockService {
 public:
  enum class Outcome {
    kAcquired,      // lock was observed free and has been claimed
    kAlreadyHeld,   // an owner was observed (possibly ourselves)
    kUnavailable,   // the read returned no usable value (masking ⊥)
  };

  // The cluster provides the quorum system, read rule and fault plan; the
  // lock service issues plain variable reads/writes through it.
  explicit LockService(InstantCluster& cluster) : cluster_(cluster) {}

  // Attempts to acquire `lock` for `owner` (owner != 0).
  Outcome try_acquire(VariableId lock, std::uint32_t owner);

  // Releases the lock if the caller is its observed owner. Returns true
  // when a release write was issued.
  bool release(VariableId lock, std::uint32_t owner);

  // Probes the lock state (0 = free / unknown).
  std::uint32_t holder(VariableId lock);

  std::uint64_t acquires() const { return acquires_; }
  std::uint64_t rejections() const { return rejections_; }

 private:
  InstantCluster& cluster_;
  std::uint64_t acquires_ = 0;
  std::uint64_t rejections_ = 0;
};

}  // namespace pqs::replica

// Wire messages of the replicated-variable protocols (Sections 3.1, 4, 5).
#pragma once

#include <cstdint>
#include <variant>

#include "crypto/mac.h"

namespace pqs::replica {

// Clients tag every operation with a locally unique id so replies can be
// matched to pending operations.
using OpId = std::uint64_t;
using VariableId = std::uint64_t;

struct WriteRequest {
  OpId op = 0;
  crypto::SignedRecord record;
};

struct WriteAck {
  OpId op = 0;
  std::uint32_t server = 0;
};

struct ReadRequest {
  OpId op = 0;
  VariableId variable = 0;
};

struct ReadReply {
  OpId op = 0;
  std::uint32_t server = 0;
  bool has_value = false;
  crypto::SignedRecord record;
};

// Anti-entropy push used by the diffusion extension (Section 1.1).
struct GossipPush {
  crypto::SignedRecord record;
};

using Message =
    std::variant<WriteRequest, WriteAck, ReadRequest, ReadReply, GossipPush>;

}  // namespace pqs::replica

// A replicated-variable server.
//
// Each server stores, per variable, the highest-timestamped record it has
// accepted, exactly as in the paper's access protocol (Section 3.1): writes
// install (value, timestamp) pairs, reads return the stored pair. The server
// is network-agnostic — process() returns the messages to transmit — so the
// same implementation runs under the discrete-event SimCluster, the direct
// InstantCluster, and the gossip engine.
//
// Fault behaviour is injected via FaultMode (see fault.h).
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <unordered_map>
#include <vector>

#include "math/rng.h"
#include "quorum/membership.h"
#include "replica/fault.h"
#include "replica/message.h"
#include "stats/counters.h"

namespace pqs::replica {

struct Outbound {
  std::uint32_t to = 0;
  Message message;
};

class Server {
 public:
  Server(std::uint32_t id, FaultMode mode, math::Rng rng,
         std::shared_ptr<const ColludePlan> collude_plan = nullptr);

  std::uint32_t id() const { return id_; }
  FaultMode mode() const { return mode_; }
  void set_mode(FaultMode mode) { mode_ = mode; }

  // Handles one message from `from` (a client or a peer server) and returns
  // the replies to send. Crashed servers return nothing and change nothing.
  std::vector<Outbound> process(std::uint32_t from, const Message& message);

  // As process(), but appends the replies to `out` (which is cleared
  // first) so its capacity is reused across deliveries — the per-delivery
  // entry point of the pooled SimCluster network path. process() routes
  // through this, so the two cannot diverge.
  void process_into(std::uint32_t from, const Message& message,
                    std::vector<Outbound>& out);

  // Direct-call entry points for the zero-allocation protocol path
  // (InstantCluster): the same state transitions and fault behaviours as
  // process(), minus the Outbound vector. apply_write returns whether the
  // server acknowledges; serve_read fills `reply` and returns whether the
  // server answers at all. process() routes through these, so the wire and
  // direct paths cannot diverge.
  bool apply_write(const WriteRequest& w);
  bool serve_read(const ReadRequest& r, ReadReply& reply);

  // Current record for a variable (nullptr if none). Test/analysis access;
  // reflects the server's true state regardless of its advertised lies.
  const crypto::SignedRecord* find(VariableId variable) const;

  // Gossip-path adoption: installs the record if it is newer than what is
  // stored. Correct servers only; the gossip engine skips faulty ones.
  // Returns true if the record was adopted.
  bool adopt(const crypto::SignedRecord& record);

  // All records currently stored (for anti-entropy exchange).
  std::vector<crypto::SignedRecord> snapshot() const;

  // What this server pushes during a gossip round — honest state for
  // correct servers, stale or fabricated records for Byzantine ones,
  // nothing for crashed/suppressing servers.
  std::vector<crypto::SignedRecord> gossip_records();

  // When set, gossip adoption verifies the writer MAC first (the
  // Byzantine-safe diffusion of [MMR99]); client writes are unaffected.
  void set_gossip_verifier(std::optional<crypto::Verifier> verifier) {
    gossip_verifier_ = std::move(verifier);
  }

  // Dynamic membership: the server's current view of the fleet. The
  // default view is empty (capacity 0, "not yet told") — gossip skips
  // pushing it, so static deployments keep their exact rng streams.
  // install_membership is the authoritative reconfiguration path (the
  // cluster applying a change); merge_membership is the gossip path
  // (lattice join, returns whether the view changed).
  const quorum::MembershipView& membership() const { return membership_; }
  void install_membership(const quorum::MembershipView& view) {
    membership_ = view;
  }
  bool merge_membership(const quorum::MembershipView& view) {
    return membership_.merge(view);
  }

  std::uint64_t writes_accepted() const { return writes_accepted_; }
  std::uint64_t reads_served() const { return reads_served_; }
  // Writes this server acknowledged but did not adopt because it already
  // held a higher-timestamped record — the server-side trace of
  // multi-writer timestamp conflicts (depends on which quorums the
  // contending writes actually landed on).
  std::uint64_t writes_superseded() const { return writes_superseded_; }
  // The counters above as one stats-layer value, so cluster snapshots
  // (InstantCluster/SimCluster::contention_snapshot) aggregate without
  // reaching into individual accessors.
  stats::ServerCounters counters() const {
    return {writes_accepted_, reads_served_, writes_superseded_};
  }

 private:
  void handle_write(std::uint32_t from, const WriteRequest& w,
                    std::vector<Outbound>& out);
  void handle_read(std::uint32_t from, const ReadRequest& r,
                   std::vector<Outbound>& out);

  std::uint32_t id_;
  FaultMode mode_;
  math::Rng rng_;
  std::shared_ptr<const ColludePlan> collude_plan_;
  std::optional<crypto::Verifier> gossip_verifier_;
  quorum::MembershipView membership_;
  std::unordered_map<VariableId, crypto::SignedRecord> store_;
  // First record ever accepted per variable; what kStaleReplay serves.
  std::unordered_map<VariableId, crypto::SignedRecord> first_store_;
  std::uint64_t writes_accepted_ = 0;
  std::uint64_t reads_served_ = 0;
  std::uint64_t writes_superseded_ = 0;
};

// One counters() entry per server, as a cluster-level snapshot — the
// shared body of InstantCluster/SimCluster::contention_snapshot (stats
// cannot depend on replica, so the aggregation lives here).
stats::ContentionSnapshot snapshot_counters(
    const std::vector<std::unique_ptr<Server>>& servers);

}  // namespace pqs::replica

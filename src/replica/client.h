// Asynchronous client for the discrete-event simulation.
//
// Implements the write and read protocols of Sections 3.1, 4 and 5 over a
// sim::Network: choose a quorum by the access strategy, contact every
// member, collect acknowledgements/replies, and complete either when the
// whole quorum has answered or when the operation timeout fires (crashed and
// suppressing servers never answer; the paper's protocols implicitly assume
// the client does not block on them forever).
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <unordered_map>

#include "crypto/mac.h"
#include "math/rng.h"
#include "quorum/bitset.h"
#include "quorum/quorum_system.h"
#include "replica/draw_path.h"
#include "replica/message.h"
#include "replica/read_rules.h"
#include "sim/network.h"
#include "sim/simulator.h"

namespace pqs::replica {

struct WriteOutcome {
  quorum::Quorum quorum;
  std::uint32_t acks = 0;
  std::uint64_t timestamp = 0;
  bool complete = false;  // every quorum member acked before the timeout
};

struct ReadOutcome {
  quorum::Quorum quorum;
  std::uint32_t replies = 0;
  ReadSelection selection;
  bool complete = false;  // every quorum member replied before the timeout
};

class Client {
 public:
  struct Config {
    std::shared_ptr<const quorum::QuorumSystem> quorums;
    ReadMode mode = ReadMode::kPlain;
    std::uint32_t read_threshold = 1;
    sim::Time timeout = 1'000'000;  // 1 virtual second
    crypto::Key128 writer_key{};
    std::uint32_t writer_id = 1;
    // Quorum selection path; kMask draws into per-client scratch without
    // allocating, kAllocating is the original sample() flow (draw_path.h).
    DrawPath draw_path = DrawPath::kMask;
  };

  Client(sim::NodeId node, Config config, sim::Simulator& simulator,
         sim::Network<Message>& network, math::Rng rng);

  sim::NodeId node() const { return node_; }

  // Issues a write; `done` fires exactly once.
  void write(VariableId variable, std::int64_t value,
             std::function<void(const WriteOutcome&)> done);

  // Issues a read; `done` fires exactly once.
  void read(VariableId variable,
            std::function<void(const ReadOutcome&)> done);

  // Network delivery entry point (registered with the network by the
  // cluster).
  void on_message(sim::NodeId from, const Message& message);

 private:
  struct PendingWrite {
    WriteOutcome outcome;
    std::vector<std::uint32_t> acked;  // distinct servers, sorted insert
    std::function<void(const WriteOutcome&)> done;
  };
  struct PendingRead {
    ReadOutcome outcome;
    std::vector<std::uint32_t> responded;  // distinct servers
    std::vector<ReadReply> replies;
    std::function<void(const ReadOutcome&)> done;
  };

  // Records `server` in the sorted set `seen` iff it belongs to `quorum`
  // and was not recorded before. Duplicate and rogue replies are dropped.
  static bool record_distinct(const quorum::Quorum& quorum,
                              std::vector<std::uint32_t>& seen,
                              std::uint32_t server);

  void finish_write(OpId op, bool complete);
  void finish_read(OpId op, bool complete);

  // Draws the next quorum into `out` by the configured path. On the mask
  // path the draw goes through draw_mask_ scratch and is then materialized
  // into `out` — each pending operation owns a fresh outcome vector, so
  // unlike InstantCluster the sim client still allocates per op; what the
  // paths share is the draw itself (same member set, same rng stream).
  void draw_quorum(quorum::Quorum& out);
  // Sends `message` to every member of the quorum just drawn.
  void send_to_quorum(const quorum::Quorum& quorum, const Message& message);

  sim::NodeId node_;
  Config config_;
  sim::Simulator& simulator_;
  sim::Network<Message>& network_;
  math::Rng rng_;
  crypto::Signer signer_;
  crypto::Verifier verifier_;
  std::uint64_t next_op_ = 1;
  std::uint64_t write_seq_ = 0;
  quorum::QuorumBitset draw_mask_;  // per-client draw scratch (kMask path)
  std::unordered_map<OpId, PendingWrite> writes_;
  std::unordered_map<OpId, PendingRead> reads_;
};

}  // namespace pqs::replica

// Which QuorumSystem draw entry point the protocol stack uses.
//
// The mask path is the production one: quorums are drawn into per-instance
// QuorumBitset scratch via sample_mask, servers are contacted by walking the
// set bits, and the sorted-vector form is materialized into the outcome only
// at the end — zero allocation per operation in steady state. The allocating
// path is the original sample() flow, kept so benches and the equivalence
// suite can run the two side by side; both paths draw the same member sets
// from the same rng stream (the draw-hierarchy contract in quorum_system.h),
// so for a fixed seed they produce bit-identical outcomes.
#pragma once

#include <cstdint>

namespace pqs::replica {

enum class DrawPath : std::uint8_t {
  kMask,        // sample_mask into reusable scratch (default)
  kAllocating,  // sample() returning a fresh sorted vector per draw
};

inline const char* draw_path_name(DrawPath path) {
  switch (path) {
    case DrawPath::kMask: return "mask";
    case DrawPath::kAllocating: return "allocating";
  }
  return "?";
}

}  // namespace pqs::replica

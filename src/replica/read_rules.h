// Read-result selection rules — the client side of the paper's protocols.
//
// Given the set V of value-timestamp pairs collected from a read quorum,
// each rule picks the result exactly as specified:
//   * plain (Section 3.1):      highest timestamp in V.
//   * dissemination (Section 4): restrict V to verifiable records (valid
//     writer MAC), then highest timestamp.
//   * masking (Section 5):      restrict V to records vouched for by at
//     least k servers (identical variable/value/timestamp/writer), then
//     highest timestamp; ⊥ if none qualifies.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "crypto/mac.h"
#include "replica/message.h"

namespace pqs::replica {

enum class ReadMode : std::uint8_t {
  kPlain,
  kDissemination,
  kMasking,
};

const char* read_mode_name(ReadMode mode);

struct ReadSelection {
  bool has_value = false;     // false = ⊥ (empty V')
  crypto::SignedRecord record;
  std::uint32_t vouchers = 0;  // servers that returned the chosen record
  // Replies the rule refused to consider: MAC-verification failures under
  // dissemination, members of sub-threshold (< k voucher) groups under
  // masking. Zero for plain reads. This is the per-read forgery-rejection
  // signal the serving tier aggregates into rejected_forgeries.
  std::uint32_t rejected = 0;
};

ReadSelection select_plain(const std::vector<ReadReply>& replies);

ReadSelection select_dissemination(const std::vector<ReadReply>& replies,
                                   const crypto::Verifier& verifier);

ReadSelection select_masking(const std::vector<ReadReply>& replies,
                             std::uint32_t k);

// Dispatches on mode; verifier may be null for kPlain/kMasking.
ReadSelection select(ReadMode mode, const std::vector<ReadReply>& replies,
                     const crypto::Verifier* verifier, std::uint32_t k);

}  // namespace pqs::replica

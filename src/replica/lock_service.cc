#include "replica/lock_service.h"

#include "util/require.h"

namespace pqs::replica {

LockService::Outcome LockService::try_acquire(VariableId lock,
                                              std::uint32_t owner) {
  PQS_REQUIRE(owner != 0, "owner id 0 means free");
  const auto state = cluster_.read(lock);
  if (state.selection.has_value && state.selection.record.value != 0) {
    ++rejections_;
    return Outcome::kAlreadyHeld;
  }
  cluster_.write(lock, static_cast<std::int64_t>(owner));
  ++acquires_;
  return Outcome::kAcquired;
}

bool LockService::release(VariableId lock, std::uint32_t owner) {
  const auto state = cluster_.read(lock);
  if (!state.selection.has_value ||
      state.selection.record.value != static_cast<std::int64_t>(owner)) {
    return false;
  }
  cluster_.write(lock, 0);
  return true;
}

std::uint32_t LockService::holder(VariableId lock) {
  const auto state = cluster_.read(lock);
  if (!state.selection.has_value || state.selection.record.value < 0) {
    return 0;
  }
  return static_cast<std::uint32_t>(state.selection.record.value);
}

}  // namespace pqs::replica

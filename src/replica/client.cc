#include "replica/client.h"

#include <algorithm>
#include <utility>

#include "util/require.h"

namespace pqs::replica {

Client::Client(sim::NodeId node, Config config, sim::Simulator& simulator,
               sim::Network<Message>& network, math::Rng rng)
    : node_(node),
      config_(std::move(config)),
      simulator_(simulator),
      network_(network),
      rng_(rng),
      signer_(config_.writer_key),
      verifier_(config_.writer_key) {
  PQS_REQUIRE(config_.quorums != nullptr, "client needs a quorum system");
  PQS_REQUIRE(config_.timeout > 0, "client timeout");
}

void Client::draw_quorum(quorum::Quorum& out) {
  if (config_.draw_path == DrawPath::kMask) {
    config_.quorums->sample_mask(draw_mask_, rng_);
    draw_mask_.to_quorum_into(out);
  } else {
    out = config_.quorums->sample(rng_);
  }
}

void Client::send_to_quorum(const quorum::Quorum& quorum,
                            const Message& message) {
  for (auto u : quorum) network_.send(node_, u, message);
}

void Client::write(VariableId variable, std::int64_t value,
                   std::function<void(const WriteOutcome&)> done) {
  const OpId op = next_op_++;
  PendingWrite pending;
  draw_quorum(pending.outcome.quorum);
  pending.outcome.timestamp = (++write_seq_ << 16) | config_.writer_id;
  pending.done = std::move(done);
  const auto record = signer_.sign(variable, value, pending.outcome.timestamp,
                                   config_.writer_id);
  const auto it = writes_.emplace(op, std::move(pending)).first;
  send_to_quorum(it->second.outcome.quorum, WriteRequest{op, record});
  simulator_.schedule(config_.timeout, [this, op] { finish_write(op, false); });
}

void Client::read(VariableId variable,
                  std::function<void(const ReadOutcome&)> done) {
  const OpId op = next_op_++;
  PendingRead pending;
  draw_quorum(pending.outcome.quorum);
  pending.done = std::move(done);
  const auto it = reads_.emplace(op, std::move(pending)).first;
  send_to_quorum(it->second.outcome.quorum, ReadRequest{op, variable});
  simulator_.schedule(config_.timeout, [this, op] { finish_read(op, false); });
}

bool Client::record_distinct(const quorum::Quorum& quorum,
                             std::vector<std::uint32_t>& seen,
                             std::uint32_t server) {
  if (!std::binary_search(quorum.begin(), quorum.end(), server)) {
    return false;  // rogue reply from a server we never contacted
  }
  const auto at = std::lower_bound(seen.begin(), seen.end(), server);
  if (at != seen.end() && *at == server) return false;  // duplicate
  seen.insert(at, server);
  return true;
}

void Client::on_message(sim::NodeId /*from*/, const Message& message) {
  if (const auto* ack = std::get_if<WriteAck>(&message)) {
    const auto it = writes_.find(ack->op);
    if (it == writes_.end()) return;  // already completed (late ack)
    if (!record_distinct(it->second.outcome.quorum, it->second.acked,
                         ack->server)) {
      return;
    }
    ++it->second.outcome.acks;
    if (it->second.outcome.acks == it->second.outcome.quorum.size()) {
      finish_write(ack->op, true);
    }
    return;
  }
  if (const auto* reply = std::get_if<ReadReply>(&message)) {
    const auto it = reads_.find(reply->op);
    if (it == reads_.end()) return;
    if (!record_distinct(it->second.outcome.quorum, it->second.responded,
                         reply->server)) {
      return;
    }
    it->second.replies.push_back(*reply);
    ++it->second.outcome.replies;
    if (it->second.outcome.replies == it->second.outcome.quorum.size()) {
      finish_read(reply->op, true);
    }
    return;
  }
}

void Client::finish_write(OpId op, bool complete) {
  const auto it = writes_.find(op);
  if (it == writes_.end()) return;  // timeout raced with completion
  PendingWrite pending = std::move(it->second);
  writes_.erase(it);
  pending.outcome.complete = complete;
  pending.done(pending.outcome);
}

void Client::finish_read(OpId op, bool complete) {
  const auto it = reads_.find(op);
  if (it == reads_.end()) return;
  PendingRead pending = std::move(it->second);
  reads_.erase(it);
  pending.outcome.complete = complete;
  pending.outcome.selection = select(config_.mode, pending.replies, &verifier_,
                                     config_.read_threshold);
  pending.done(pending.outcome);
}

}  // namespace pqs::replica

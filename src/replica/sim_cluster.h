// SimCluster: the full message-passing deployment.
//
// Assembles a Simulator, a lossy/latency network, n servers (with fault
// injection) and one or more clients into a runnable system. Synchronous
// write_sync/read_sync wrappers pump the event loop until the operation
// callback fires, which gives tests and examples a sequential face over the
// fully asynchronous protocol execution.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <vector>

#include "math/rng.h"
#include "quorum/quorum_system.h"
#include "replica/client.h"
#include "replica/fault.h"
#include "replica/server.h"
#include "sim/network.h"
#include "sim/simulator.h"
#include "stats/counters.h"

namespace pqs::replica {

class SimCluster {
 public:
  struct Config {
    std::shared_ptr<const quorum::QuorumSystem> quorums;
    ReadMode mode = ReadMode::kPlain;
    std::uint32_t read_threshold = 1;
    sim::LatencyModel latency;
    sim::Time client_timeout = 1'000'000;
    std::uint64_t seed = 1;
    std::uint64_t writer_key_seed = 0x517e9a11;
    std::uint32_t clients = 1;
    // Correct servers verify gossip-path records against the writer MAC
    // before adoption (Byzantine-safe diffusion, [MMR99]).
    bool verify_gossip = false;
    // Quorum selection path for every client (draw_path.h).
    DrawPath draw_path = DrawPath::kMask;
  };

  explicit SimCluster(Config config);
  SimCluster(Config config, FaultPlan faults);

  std::uint32_t universe_size() const {
    return static_cast<std::uint32_t>(servers_.size());
  }

  sim::Simulator& simulator() { return simulator_; }
  sim::Network<Message>& network() { return *network_; }
  Client& client(std::uint32_t index = 0) { return *clients_.at(index); }
  Server& server(std::uint32_t id) { return *servers_.at(id); }
  std::vector<std::unique_ptr<Server>>& servers() { return servers_; }

  // Blocking wrappers: run the simulation until the operation completes.
  WriteOutcome write_sync(VariableId variable, std::int64_t value,
                          std::uint32_t client_index = 0);
  ReadOutcome read_sync(VariableId variable, std::uint32_t client_index = 0);

  // Starts lazy anti-entropy over the network (Section 1.1): every
  // `period`, each non-crashed server pushes its gossip records to
  // `fanout` random peers as GossipPush messages. Runs until the
  // simulation stops being pumped. Idempotent per cluster.
  void start_gossip(sim::Time period, std::uint32_t fanout);

  std::uint64_t gossip_rounds() const { return gossip_rounds_; }

  // Per-server protocol counters as one cluster-level snapshot — the same
  // observability face as InstantCluster::contention_snapshot, so
  // experiments can diff contention between the instant and
  // message-passing deployments.
  stats::ContentionSnapshot contention_snapshot() const;

 private:
  void gossip_tick();

  Config config_;
  math::Rng rng_;
  sim::Simulator simulator_;
  std::unique_ptr<sim::Network<Message>> network_;
  std::vector<std::unique_ptr<Server>> servers_;
  std::vector<std::unique_ptr<Client>> clients_;
  // Reply scratch shared by the server delivery handlers (single-threaded
  // event loop; capacity reused across every delivery).
  std::vector<Outbound> outbound_scratch_;
  sim::Time gossip_period_ = 0;
  std::uint32_t gossip_fanout_ = 0;
  std::uint64_t gossip_rounds_ = 0;
};

}  // namespace pqs::replica

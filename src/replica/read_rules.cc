#include "replica/read_rules.h"

#include <algorithm>
#include <map>
#include <tuple>

#include "util/require.h"

namespace pqs::replica {

const char* read_mode_name(ReadMode mode) {
  switch (mode) {
    case ReadMode::kPlain: return "plain";
    case ReadMode::kDissemination: return "dissemination";
    case ReadMode::kMasking: return "masking";
  }
  return "?";
}

namespace {

ReadSelection pick_highest_timestamp(const std::vector<ReadReply>& replies,
                                     const crypto::Verifier* verifier) {
  ReadSelection out;
  for (const auto& r : replies) {
    if (!r.has_value) continue;
    if (verifier != nullptr && !verifier->verify(r.record)) continue;
    if (!out.has_value || r.record.timestamp > out.record.timestamp) {
      out.has_value = true;
      out.record = r.record;
      out.vouchers = 1;
    } else if (out.has_value && r.record == out.record) {
      ++out.vouchers;
    }
  }
  return out;
}

}  // namespace

ReadSelection select_plain(const std::vector<ReadReply>& replies) {
  return pick_highest_timestamp(replies, nullptr);
}

ReadSelection select_dissemination(const std::vector<ReadReply>& replies,
                                   const crypto::Verifier& verifier) {
  return pick_highest_timestamp(replies, &verifier);
}

ReadSelection select_masking(const std::vector<ReadReply>& replies,
                             std::uint32_t k) {
  PQS_REQUIRE(k >= 1, "masking threshold");
  // Group identical records; a record enters V' only with >= k vouchers
  // (the set C of Definition 5.1's read protocol, step 3).
  std::map<std::tuple<VariableId, std::int64_t, std::uint64_t, std::uint32_t>,
           std::uint32_t>
      votes;
  for (const auto& r : replies) {
    if (!r.has_value) continue;
    // Tags are deliberately ignored: masking handles non-self-verifying
    // data, so agreement among >= k servers is the only evidence.
    ++votes[{r.record.variable, r.record.value, r.record.timestamp,
             r.record.writer}];
  }
  ReadSelection out;
  for (const auto& [key, count] : votes) {
    if (count < k) continue;
    const auto& [variable, value, timestamp, writer] = key;
    if (!out.has_value || timestamp > out.record.timestamp) {
      out.has_value = true;
      out.record.variable = variable;
      out.record.value = value;
      out.record.timestamp = timestamp;
      out.record.writer = writer;
      out.record.tag = 0;
      out.vouchers = count;
    }
  }
  return out;
}

ReadSelection select(ReadMode mode, const std::vector<ReadReply>& replies,
                     const crypto::Verifier* verifier, std::uint32_t k) {
  switch (mode) {
    case ReadMode::kPlain:
      return select_plain(replies);
    case ReadMode::kDissemination:
      PQS_REQUIRE(verifier != nullptr, "dissemination reads need a verifier");
      return select_dissemination(replies, *verifier);
    case ReadMode::kMasking:
      return select_masking(replies, k);
  }
  return {};
}

}  // namespace pqs::replica

#include "replica/read_rules.h"

#include <algorithm>
#include <cstddef>
#include <tuple>

#include "util/require.h"

namespace pqs::replica {

const char* read_mode_name(ReadMode mode) {
  switch (mode) {
    case ReadMode::kPlain: return "plain";
    case ReadMode::kDissemination: return "dissemination";
    case ReadMode::kMasking: return "masking";
  }
  return "?";
}

namespace {

ReadSelection pick_highest_timestamp(const std::vector<ReadReply>& replies,
                                     const crypto::Verifier* verifier) {
  ReadSelection out;
  for (const auto& r : replies) {
    if (!r.has_value) continue;
    if (verifier != nullptr && !verifier->verify(r.record)) {
      ++out.rejected;  // forged or corrupted MAC — never a candidate
      continue;
    }
    if (!out.has_value || r.record.timestamp > out.record.timestamp) {
      out.has_value = true;
      out.record = r.record;
      out.vouchers = 1;
    } else if (out.has_value && r.record == out.record) {
      ++out.vouchers;
    }
  }
  return out;
}

}  // namespace

ReadSelection select_plain(const std::vector<ReadReply>& replies) {
  return pick_highest_timestamp(replies, nullptr);
}

ReadSelection select_dissemination(const std::vector<ReadReply>& replies,
                                   const crypto::Verifier& verifier) {
  return pick_highest_timestamp(replies, &verifier);
}

ReadSelection select_masking(const std::vector<ReadReply>& replies,
                             std::uint32_t k) {
  PQS_REQUIRE(k >= 1, "masking threshold");
  // Group identical records; a record enters V' only with >= k vouchers
  // (the set C of Definition 5.1's read protocol, step 3). The reply set is
  // at most quorum-sized, so grouping is an O(r^2) scan over the caller's
  // vector rather than a heap-allocated map — the selection rules stay
  // allocation-free on the protocol hot path. Winner: highest timestamp;
  // timestamp ties break toward the lexicographically smallest
  // (variable, value, timestamp, writer) tuple, matching the ascending map
  // iteration this replaces.
  // Tags are deliberately ignored: masking handles non-self-verifying
  // data, so agreement among >= k servers is the only evidence.
  const auto key_of = [](const ReadReply& r) {
    return std::make_tuple(r.record.variable, r.record.value,
                           r.record.timestamp, r.record.writer);
  };
  ReadSelection out;
  auto best_key = std::make_tuple(VariableId{0}, std::int64_t{0},
                                  std::uint64_t{0}, std::uint32_t{0});
  for (std::size_t i = 0; i < replies.size(); ++i) {
    if (!replies[i].has_value) continue;
    const auto key = key_of(replies[i]);
    bool first = true;
    for (std::size_t j = 0; j < i && first; ++j) {
      if (replies[j].has_value && key_of(replies[j]) == key) first = false;
    }
    if (!first) continue;  // this record's votes were already counted
    std::uint32_t count = 0;
    for (std::size_t j = i; j < replies.size(); ++j) {
      if (replies[j].has_value && key_of(replies[j]) == key) ++count;
    }
    if (count < k) {
      out.rejected += count;  // sub-threshold group: all its votes refused
      continue;
    }
    const auto timestamp = std::get<2>(key);
    if (!out.has_value || timestamp > out.record.timestamp ||
        (timestamp == out.record.timestamp && key < best_key)) {
      out.has_value = true;
      out.record.variable = std::get<0>(key);
      out.record.value = std::get<1>(key);
      out.record.timestamp = timestamp;
      out.record.writer = std::get<3>(key);
      out.record.tag = 0;
      out.vouchers = count;
      best_key = key;
    }
  }
  return out;
}

ReadSelection select(ReadMode mode, const std::vector<ReadReply>& replies,
                     const crypto::Verifier* verifier, std::uint32_t k) {
  switch (mode) {
    case ReadMode::kPlain:
      return select_plain(replies);
    case ReadMode::kDissemination:
      PQS_REQUIRE(verifier != nullptr, "dissemination reads need a verifier");
      return select_dissemination(replies, *verifier);
    case ReadMode::kMasking:
      return select_masking(replies, k);
  }
  return {};
}

}  // namespace pqs::replica

#include "replica/fault.h"

#include "math/sampling.h"
#include "util/require.h"

namespace pqs::replica {

const char* fault_mode_name(FaultMode mode) {
  switch (mode) {
    case FaultMode::kCorrect: return "correct";
    case FaultMode::kCrash: return "crash";
    case FaultMode::kSuppress: return "suppress";
    case FaultMode::kStaleReplay: return "stale-replay";
    case FaultMode::kForge: return "forge";
    case FaultMode::kCollude: return "collude";
  }
  return "?";
}

bool is_byzantine(FaultMode mode) {
  switch (mode) {
    case FaultMode::kCorrect:
    case FaultMode::kCrash:
      return false;
    default:
      return true;
  }
}

crypto::SignedRecord ColludePlan::forged(VariableId variable) const {
  crypto::SignedRecord r;
  r.variable = variable;
  r.value = value;
  r.timestamp = timestamp;
  r.writer = 0;
  r.tag = tag;
  return r;
}

FaultPlan::FaultPlan(std::uint32_t n) : modes_(n, FaultMode::kCorrect) {
  PQS_REQUIRE(n >= 1, "fault plan universe");
}

FaultPlan FaultPlan::prefix(std::uint32_t n, std::uint32_t count,
                            FaultMode mode) {
  PQS_REQUIRE(count <= n, "more faults than servers");
  FaultPlan plan(n);
  for (std::uint32_t i = 0; i < count; ++i) plan.modes_[i] = mode;
  return plan;
}

FaultPlan FaultPlan::random(std::uint32_t n, std::uint32_t count,
                            FaultMode mode, math::Rng& rng) {
  PQS_REQUIRE(count <= n, "more faults than servers");
  FaultPlan plan(n);
  // Draw the faulty set as a bitmask (thread-local scratch, reused across
  // plans) instead of a fresh sorted vector; same subset, same rng stream.
  static thread_local std::vector<std::uint64_t> words;
  words.assign((static_cast<std::size_t>(n) + 63) / 64, 0);
  math::sample_without_replacement_bits(n, count, rng, words.data());
  for (std::uint32_t u = 0; u < n; ++u) {
    if ((words[u >> 6] >> (u & 63)) & 1ULL) plan.modes_[u] = mode;
  }
  return plan;
}

void FaultPlan::set_mode(std::uint32_t server, FaultMode mode) {
  PQS_REQUIRE(server < modes_.size(), "server id");
  modes_[server] = mode;
}

std::uint32_t FaultPlan::count(FaultMode mode) const {
  std::uint32_t c = 0;
  for (auto m : modes_) c += (m == mode) ? 1u : 0u;
  return c;
}

std::uint32_t FaultPlan::byzantine_count() const {
  std::uint32_t c = 0;
  for (auto m : modes_) c += is_byzantine(m) ? 1u : 0u;
  return c;
}

std::vector<std::uint32_t> FaultPlan::servers_with(FaultMode mode) const {
  std::vector<std::uint32_t> out;
  for (std::uint32_t i = 0; i < modes_.size(); ++i) {
    if (modes_[i] == mode) out.push_back(i);
  }
  return out;
}

}  // namespace pqs::replica

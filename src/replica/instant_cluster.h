// InstantCluster: the protocol stack with a zero-latency, loss-free network.
//
// Runs the exact same Server code and read-selection rules as the
// discrete-event SimCluster, but message exchange is a direct function call.
// This is the harness for statistical validation (hundreds of thousands of
// write/read pairs to measure staleness rates against epsilon) where event
// scheduling would only add cost, and for the gossip engine's experiments.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "crypto/mac.h"
#include "math/rng.h"
#include "quorum/bitset.h"
#include "quorum/membership.h"
#include "quorum/quorum_system.h"
#include "quorum/strategy.h"
#include "replica/draw_path.h"
#include "replica/fault.h"
#include "replica/read_rules.h"
#include "replica/server.h"
#include "stats/counters.h"

namespace pqs::replica {

struct WriteResult {
  quorum::Quorum quorum;    // where the write was directed
  std::uint32_t acks = 0;   // servers that acknowledged
  std::uint64_t timestamp = 0;
};

struct ReadResult {
  quorum::Quorum quorum;
  std::uint32_t replies = 0;  // servers that answered at all
  ReadSelection selection;
  // Repair write-backs pushed by read_repair_into (0 on plain reads).
  std::uint32_t repairs = 0;
};

class InstantCluster {
 public:
  struct Config {
    std::shared_ptr<const quorum::QuorumSystem> quorums;
    ReadMode mode = ReadMode::kPlain;
    std::uint32_t read_threshold = 1;  // masking k
    std::uint64_t seed = 1;
    std::uint64_t writer_key_seed = 0x517e9a11;
    // kMask (default) draws quorums into per-instance bitset scratch and
    // walks the bits; kAllocating keeps the original sample() flow for A/B
    // measurement. Same rng stream, bit-identical outcomes (draw_path.h).
    DrawPath draw_path = DrawPath::kMask;
    // Dynamic membership (timed quorums). When set, the quorum system's
    // universe becomes a fixed *slot capacity* and quorum draws become
    // uniform q-subsets (q = quorums->min_quorum_size()) of the cluster's
    // current MembershipView — R(live, q) over whoever is live right now,
    // the regime of core/timed_epsilon.h. initial_live caps the starting
    // membership to slots [0, initial_live) (0 means "all live"). Churn
    // randomness comes from a dedicated generator seeded with churn_seed,
    // so membership events never perturb the quorum-draw stream — with a
    // full live view, draws are bit-identical to the static system's.
    bool dynamic_membership = false;
    std::uint32_t initial_live = 0;
    std::uint64_t churn_seed = 0xc4a84e11u;
    // Workload-aware access strategy (quorum/strategy.h). When set, writes
    // draw from its write distribution and reads from its read
    // distribution — one alias-table rng word per draw, same stream and
    // bit-identity contract across both draw paths. `quorums` may be left
    // null (the strategy then doubles as the cluster's quorum system) or
    // must share the strategy's universe. Mutually exclusive with
    // dynamic_membership: a strategy's support is a fixed-universe object,
    // while timed quorums re-draw over whoever is live.
    std::shared_ptr<const quorum::Strategy> strategy;
  };

  // All servers correct.
  explicit InstantCluster(Config config);
  InstantCluster(Config config, FaultPlan faults);

  std::uint32_t universe_size() const {
    return static_cast<std::uint32_t>(servers_.size());
  }

  // Single-writer operations (writer id 1), per the paper's safe-variable
  // protocol. Timestamps are strictly increasing per writer.
  WriteResult write(VariableId variable, std::int64_t value);
  ReadResult read(VariableId variable);

  // Multi-writer entry point: timestamps are (sequence << 16) | writer so
  // distinct writers never collide. The paper's semantics (Theorem 3.2)
  // are only claimed for a single writer; this is the standard extension.
  WriteResult write_as(std::uint32_t writer, VariableId variable,
                       std::int64_t value);

  // In-place variants: identical protocol execution, but `result` is
  // overwritten in place so its quorum vector's capacity is reused across
  // operations. Together with the kMask draw path and the servers' direct
  // entry points, the steady-state hot loop does not allocate. write/read
  // above are thin wrappers over these.
  void write_into(WriteResult& result, VariableId variable,
                  std::int64_t value);
  void write_as_into(WriteResult& result, std::uint32_t writer,
                     VariableId variable, std::int64_t value);
  void read_into(ReadResult& result, VariableId variable);

  // Read with read-repair: performs read_into, then — when a value was
  // selected — pushes the winning record back to every read-quorum server
  // whose reply was missing or carried an older timestamp (one direct
  // apply_write per such server; non-answering servers still cost a repair
  // message). result.repairs counts the write-backs. Repair consumes no
  // rng draws, so quorum streams are identical with repair on or off and
  // across draw paths — only server state (and future reads) change.
  void read_repair_into(ReadResult& result, VariableId variable);

  // Per-server protocol counters as one cluster-level snapshot (the
  // observability face of the multi-writer contention experiments).
  stats::ContentionSnapshot contention_snapshot() const;

  // --- Dynamic membership (config.dynamic_membership only) ---
  //
  // The cluster holds the authoritative MembershipView its clients draw
  // quorums from; every change bumps the view epoch by one and installs
  // the new view on the affected server (diffusion to the rest of the
  // fleet is gossip's job — see diffusion/GossipEngine::view_agreement).
  // join activates a dead slot with a fresh empty server; leave retires a
  // live slot (the Server object stays, but no longer receives draws);
  // replace retires `victim` and activates `joiner` with a fresh server in
  // one reconfiguration — victim == joiner is in-place slot reuse, the
  // churn model of Gramoli-Raynal where the fleet size is constant but
  // members (and their stored records) turn over.
  const quorum::MembershipView& view() const { return view_; }
  std::uint64_t view_epoch() const { return view_.epoch(); }
  void join(quorum::ServerId slot);
  void leave(quorum::ServerId slot);
  void replace(quorum::ServerId victim, quorum::ServerId joiner);
  // One churn event: a uniformly random live slot is replaced in place by
  // a fresh server (drawn from the dedicated churn rng, never the quorum
  // stream). Returns the replaced slot.
  quorum::ServerId churn_replace();
  // `events` consecutive churn_replace() steps.
  void run_churn(std::uint32_t events);
  math::Rng& churn_rng() { return churn_rng_; }

  Server& server(std::uint32_t id) { return *servers_.at(id); }
  const Server& server(std::uint32_t id) const { return *servers_.at(id); }
  std::vector<std::unique_ptr<Server>>& servers() { return servers_; }

  const crypto::Verifier& verifier() const { return verifier_; }
  const quorum::QuorumSystem& quorums() const { return *config_.quorums; }
  math::Rng& rng() { return rng_; }

  // Deterministic record of the strategy draws this cluster has made:
  // `draws` counts them, `checksum` folds (index, read/write side) in
  // order. Pure function of the operation sequence — part of the
  // serving tier's bit-identity aggregate when a strategy is installed.
  struct StrategyDrawStats {
    std::uint64_t draws = 0;
    std::uint64_t checksum = 0;
  };
  StrategyDrawStats strategy_draw_stats() const {
    return {strategy_draws_, strategy_checksum_};
  }

 private:
  std::uint64_t next_timestamp(std::uint32_t writer);
  // Installs a fresh, empty, correct server into `slot` (rng forked from
  // the churn stream) carrying the current view.
  void fresh_server(quorum::ServerId slot);
  void record_strategy_draw(std::uint32_t index, bool is_write) {
    ++strategy_draws_;
    strategy_checksum_ = strategy_checksum_ * 0x9e3779b97f4a7c15ULL +
                         (2ULL * index + (is_write ? 1 : 0) + 1);
  }

  Config config_;
  crypto::Signer signer_;
  crypto::Verifier verifier_;
  math::Rng rng_;
  math::Rng churn_rng_;
  quorum::MembershipView view_;
  std::shared_ptr<const ColludePlan> collude_;
  std::vector<std::unique_ptr<Server>> servers_;
  std::vector<std::uint64_t> writer_seq_;
  // Compact-universe draw scratch for view-aware mask draws.
  std::vector<std::uint64_t> compact_scratch_;
  // Per-instance draw and reply scratch: the quorum stays a mask while the
  // operation runs and is materialized into the result at the end.
  quorum::QuorumBitset draw_mask_;
  std::vector<ReadReply> reply_scratch_;
  std::uint64_t strategy_draws_ = 0;
  std::uint64_t strategy_checksum_ = 0;
  static constexpr std::uint32_t kClientId = 0xffffffffu;
};

}  // namespace pqs::replica

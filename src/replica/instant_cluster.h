// InstantCluster: the protocol stack with a zero-latency, loss-free network.
//
// Runs the exact same Server code and read-selection rules as the
// discrete-event SimCluster, but message exchange is a direct function call.
// This is the harness for statistical validation (hundreds of thousands of
// write/read pairs to measure staleness rates against epsilon) where event
// scheduling would only add cost, and for the gossip engine's experiments.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "crypto/mac.h"
#include "math/rng.h"
#include "quorum/bitset.h"
#include "quorum/quorum_system.h"
#include "replica/draw_path.h"
#include "replica/fault.h"
#include "replica/read_rules.h"
#include "replica/server.h"
#include "stats/counters.h"

namespace pqs::replica {

struct WriteResult {
  quorum::Quorum quorum;    // where the write was directed
  std::uint32_t acks = 0;   // servers that acknowledged
  std::uint64_t timestamp = 0;
};

struct ReadResult {
  quorum::Quorum quorum;
  std::uint32_t replies = 0;  // servers that answered at all
  ReadSelection selection;
  // Repair write-backs pushed by read_repair_into (0 on plain reads).
  std::uint32_t repairs = 0;
};

class InstantCluster {
 public:
  struct Config {
    std::shared_ptr<const quorum::QuorumSystem> quorums;
    ReadMode mode = ReadMode::kPlain;
    std::uint32_t read_threshold = 1;  // masking k
    std::uint64_t seed = 1;
    std::uint64_t writer_key_seed = 0x517e9a11;
    // kMask (default) draws quorums into per-instance bitset scratch and
    // walks the bits; kAllocating keeps the original sample() flow for A/B
    // measurement. Same rng stream, bit-identical outcomes (draw_path.h).
    DrawPath draw_path = DrawPath::kMask;
  };

  // All servers correct.
  explicit InstantCluster(Config config);
  InstantCluster(Config config, FaultPlan faults);

  std::uint32_t universe_size() const {
    return static_cast<std::uint32_t>(servers_.size());
  }

  // Single-writer operations (writer id 1), per the paper's safe-variable
  // protocol. Timestamps are strictly increasing per writer.
  WriteResult write(VariableId variable, std::int64_t value);
  ReadResult read(VariableId variable);

  // Multi-writer entry point: timestamps are (sequence << 16) | writer so
  // distinct writers never collide. The paper's semantics (Theorem 3.2)
  // are only claimed for a single writer; this is the standard extension.
  WriteResult write_as(std::uint32_t writer, VariableId variable,
                       std::int64_t value);

  // In-place variants: identical protocol execution, but `result` is
  // overwritten in place so its quorum vector's capacity is reused across
  // operations. Together with the kMask draw path and the servers' direct
  // entry points, the steady-state hot loop does not allocate. write/read
  // above are thin wrappers over these.
  void write_into(WriteResult& result, VariableId variable,
                  std::int64_t value);
  void write_as_into(WriteResult& result, std::uint32_t writer,
                     VariableId variable, std::int64_t value);
  void read_into(ReadResult& result, VariableId variable);

  // Read with read-repair: performs read_into, then — when a value was
  // selected — pushes the winning record back to every read-quorum server
  // whose reply was missing or carried an older timestamp (one direct
  // apply_write per such server; non-answering servers still cost a repair
  // message). result.repairs counts the write-backs. Repair consumes no
  // rng draws, so quorum streams are identical with repair on or off and
  // across draw paths — only server state (and future reads) change.
  void read_repair_into(ReadResult& result, VariableId variable);

  // Per-server protocol counters as one cluster-level snapshot (the
  // observability face of the multi-writer contention experiments).
  stats::ContentionSnapshot contention_snapshot() const;

  Server& server(std::uint32_t id) { return *servers_.at(id); }
  const Server& server(std::uint32_t id) const { return *servers_.at(id); }
  std::vector<std::unique_ptr<Server>>& servers() { return servers_; }

  const crypto::Verifier& verifier() const { return verifier_; }
  const quorum::QuorumSystem& quorums() const { return *config_.quorums; }
  math::Rng& rng() { return rng_; }

 private:
  std::uint64_t next_timestamp(std::uint32_t writer);

  Config config_;
  crypto::Signer signer_;
  crypto::Verifier verifier_;
  math::Rng rng_;
  std::vector<std::unique_ptr<Server>> servers_;
  std::vector<std::uint64_t> writer_seq_;
  // Per-instance draw and reply scratch: the quorum stays a mask while the
  // operation runs and is materialized into the result at the end.
  quorum::QuorumBitset draw_mask_;
  std::vector<ReadReply> reply_scratch_;
  static constexpr std::uint32_t kClientId = 0xffffffffu;
};

}  // namespace pqs::replica

#include "replica/sim_cluster.h"

#include <utility>

#include "crypto/mac.h"
#include "util/require.h"

namespace pqs::replica {

SimCluster::SimCluster(Config config)
    : SimCluster(config, FaultPlan(config.quorums
                                       ? config.quorums->universe_size()
                                       : 1)) {}

SimCluster::SimCluster(Config config, FaultPlan faults)
    : config_(std::move(config)), rng_(config_.seed) {
  PQS_REQUIRE(config_.quorums != nullptr, "cluster needs a quorum system");
  const std::uint32_t n = config_.quorums->universe_size();
  PQS_REQUIRE(faults.size() == n, "fault plan size mismatch");
  PQS_REQUIRE(config_.clients >= 1, "at least one client");

  network_ = std::make_unique<sim::Network<Message>>(
      simulator_, config_.latency, rng_.fork());

  auto collude = std::make_shared<const ColludePlan>();
  servers_.reserve(n);
  for (std::uint32_t i = 0; i < n; ++i) {
    servers_.push_back(
        std::make_unique<Server>(i, faults.mode(i), rng_.fork(), collude));
    Server* server = servers_.back().get();
    // One shared reply scratch across all servers: the simulator delivers
    // one message at a time and sends never re-enter a handler, so the
    // vector's capacity is reused for every delivery in the run.
    network_->register_node(i, [this, server](sim::NodeId from,
                                              const Message& msg) {
      server->process_into(from, msg, outbound_scratch_);
      for (auto& out : outbound_scratch_) {
        network_->send(server->id(), out.to, std::move(out.message));
      }
    });
  }

  const auto signer = crypto::Signer::from_seed(config_.writer_key_seed);
  if (config_.verify_gossip) {
    for (auto& server : servers_) {
      server->set_gossip_verifier(crypto::Verifier(signer.key()));
    }
  }
  clients_.reserve(config_.clients);
  for (std::uint32_t c = 0; c < config_.clients; ++c) {
    Client::Config cc;
    cc.quorums = config_.quorums;
    cc.mode = config_.mode;
    cc.read_threshold = config_.read_threshold;
    cc.timeout = config_.client_timeout;
    cc.writer_key = signer.key();
    cc.writer_id = c + 1;
    cc.draw_path = config_.draw_path;
    const sim::NodeId node = n + c;
    clients_.push_back(std::make_unique<Client>(node, cc, simulator_,
                                                *network_, rng_.fork()));
    Client* client = clients_.back().get();
    network_->register_node(node, [client](sim::NodeId from,
                                           const Message& msg) {
      client->on_message(from, msg);
    });
  }
}

WriteOutcome SimCluster::write_sync(VariableId variable, std::int64_t value,
                                    std::uint32_t client_index) {
  std::optional<WriteOutcome> result;
  client(client_index)
      .write(variable, value,
             [&result](const WriteOutcome& o) { result = o; });
  const bool done =
      simulator_.run_while([&result] { return !result.has_value(); });
  PQS_CHECK(done && result.has_value());
  return *result;
}

void SimCluster::start_gossip(sim::Time period, std::uint32_t fanout) {
  PQS_REQUIRE(period > 0, "gossip period");
  PQS_REQUIRE(fanout >= 1 && fanout < universe_size(), "gossip fanout");
  PQS_REQUIRE(gossip_period_ == 0, "gossip already started");
  gossip_period_ = period;
  gossip_fanout_ = fanout;
  simulator_.schedule(period, [this] { gossip_tick(); });
}

void SimCluster::gossip_tick() {
  ++gossip_rounds_;
  const auto n = universe_size();
  for (auto& server : servers_) {
    const auto records = server->gossip_records();
    if (records.empty()) continue;
    for (std::uint32_t f = 0; f < gossip_fanout_; ++f) {
      auto peer = static_cast<sim::NodeId>(rng_.below(n - 1));
      if (peer >= server->id()) ++peer;  // skip self
      for (const auto& record : records) {
        network_->send(server->id(), peer, GossipPush{record});
      }
    }
  }
  simulator_.schedule(gossip_period_, [this] { gossip_tick(); });
}

ReadOutcome SimCluster::read_sync(VariableId variable,
                                  std::uint32_t client_index) {
  std::optional<ReadOutcome> result;
  client(client_index)
      .read(variable, [&result](const ReadOutcome& o) { result = o; });
  const bool done =
      simulator_.run_while([&result] { return !result.has_value(); });
  PQS_CHECK(done && result.has_value());
  return *result;
}

stats::ContentionSnapshot SimCluster::contention_snapshot() const {
  return snapshot_counters(servers_);
}

}  // namespace pqs::replica

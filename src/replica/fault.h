// Failure injection: crash and Byzantine behaviours (Section 2's model).
//
// Up to b servers may deviate arbitrarily; clients are correct. The concrete
// Byzantine behaviours implemented here cover the attack surface the paper's
// analysis is about:
//
//   kCrash      — halts: no replies, no state changes (benign).
//   kSuppress   — stays silent on reads/writes but is "up" (Byzantine
//                 omission; the worst case for dissemination availability).
//   kStaleReplay— answers reads with the oldest record it ever held and
//                 refuses updates. Against self-verifying data this is the
//                 strongest attack other than suppression: the replayed
//                 record carries a *valid* tag, only its timestamp is old.
//   kForge      — fabricates a record with an enormous timestamp and a junk
//                 tag. Detected under dissemination (tag check), dangerous
//                 for plain reads.
//   kCollude    — all colluders return the *same* fabricated record
//                 (coordinated value, timestamp, tag). This is the attack
//                 the masking threshold k is sized against: it succeeds only
//                 when >= k colluders land in the read quorum, an event of
//                 probability P(|Q ∩ B| >= k) (Lemma 5.7).
#pragma once

#include <cstdint>
#include <vector>

#include "math/rng.h"
#include "replica/message.h"

namespace pqs::replica {

enum class FaultMode : std::uint8_t {
  kCorrect,
  kCrash,
  kSuppress,
  kStaleReplay,
  kForge,
  kCollude,
};

const char* fault_mode_name(FaultMode mode);
bool is_byzantine(FaultMode mode);

// The value colluders agree to push (shared by every kCollude server).
struct ColludePlan {
  std::int64_t value = -777;
  std::uint64_t timestamp = ~0ULL >> 8;  // astronomically fresh
  std::uint64_t tag = 0xdeadbeefcafef00dULL;

  crypto::SignedRecord forged(VariableId variable) const;
};

// Assigns a mode to every server in the universe.
class FaultPlan {
 public:
  // All-correct plan.
  explicit FaultPlan(std::uint32_t n);

  // The first `count` servers get `mode`. Random placement is statistically
  // identical for the uniform constructions (symmetry) and keeps tests
  // deterministic.
  static FaultPlan prefix(std::uint32_t n, std::uint32_t count,
                          FaultMode mode);
  // `count` servers chosen uniformly at random get `mode`.
  static FaultPlan random(std::uint32_t n, std::uint32_t count,
                          FaultMode mode, math::Rng& rng);

  std::uint32_t size() const {
    return static_cast<std::uint32_t>(modes_.size());
  }
  FaultMode mode(std::uint32_t server) const { return modes_.at(server); }
  void set_mode(std::uint32_t server, FaultMode mode);

  std::uint32_t count(FaultMode mode) const;
  std::uint32_t byzantine_count() const;
  std::vector<std::uint32_t> servers_with(FaultMode mode) const;

 private:
  std::vector<FaultMode> modes_;
};

}  // namespace pqs::replica

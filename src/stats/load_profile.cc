#include "stats/load_profile.h"

#include <algorithm>

#include "util/require.h"

namespace pqs::stats {

LoadProfile::LoadProfile(std::vector<std::uint64_t> hits,
                         std::uint64_t samples)
    : hits_(std::move(hits)), samples_(samples) {}

double LoadProfile::load(std::uint32_t u) const {
  PQS_REQUIRE(u < hits_.size(), "server id");
  return samples_ == 0 ? 0.0
                       : static_cast<double>(hits_[u]) /
                             static_cast<double>(samples_);
}

std::vector<double> LoadProfile::loads() const {
  std::vector<double> out(hits_.size());
  for (std::uint32_t u = 0; u < hits_.size(); ++u) out[u] = load(u);
  return out;
}

double LoadProfile::max_load() const {
  std::uint64_t best = 0;
  for (const std::uint64_t h : hits_) best = std::max(best, h);
  return samples_ == 0 ? 0.0
                       : static_cast<double>(best) /
                             static_cast<double>(samples_);
}

double LoadProfile::mean_load() const {
  if (samples_ == 0 || hits_.empty()) return 0.0;
  std::uint64_t total = 0;
  for (const std::uint64_t h : hits_) total += h;
  return static_cast<double>(total) /
         (static_cast<double>(samples_) * static_cast<double>(hits_.size()));
}

double LoadProfile::imbalance() const {
  const double mean = mean_load();
  return mean == 0.0 ? 0.0 : max_load() / mean;
}

std::vector<HotServer> LoadProfile::hottest(std::size_t k) const {
  std::vector<HotServer> all;
  all.reserve(hits_.size());
  for (std::uint32_t u = 0; u < hits_.size(); ++u) {
    all.push_back(HotServer{u, hits_[u], load(u)});
  }
  const std::size_t take = std::min(k, all.size());
  std::partial_sort(all.begin(), all.begin() + take, all.end(),
                    [](const HotServer& a, const HotServer& b) {
                      return a.hits != b.hits ? a.hits > b.hits
                                              : a.server < b.server;
                    });
  all.resize(take);
  return all;
}

void LoadProfile::merge(const LoadProfile& other) {
  if (hits_.empty()) {
    *this = other;
    return;
  }
  if (other.hits_.empty()) return;
  PQS_REQUIRE(hits_.size() == other.hits_.size(),
              "load profile universe mismatch");
  for (std::size_t u = 0; u < hits_.size(); ++u) hits_[u] += other.hits_[u];
  samples_ += other.samples_;
}

}  // namespace pqs::stats

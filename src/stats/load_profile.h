// Per-server load observability.
//
// The paper's load L_w (Definition 2.4) is the *maximum* per-server access
// probability, but a deployment cares about the whole shape: how far the
// hottest server sits above the mean (imbalance), and which servers carry
// the heat. LoadProfile keeps the raw per-server hit counts — exact
// integers, so profiles merge across estimator shards and bench cluster
// shards without losing bit-identity — and derives the shape measures on
// demand. Produced by core::estimate_load_profile (Monte-Carlo draws over
// an access strategy) and by the protocol bench (measured server contacts
// under a live workload); consumed by reports and the closed-form
// conformance tests.
#pragma once

#include <cstdint>
#include <vector>

namespace pqs::stats {

/// One entry of LoadProfile::hottest(): a server and its estimated load.
struct HotServer {
  std::uint32_t server = 0;
  std::uint64_t hits = 0;
  double load = 0.0;  ///< hits / samples
};

/// Per-server hit counts over a known number of access draws.
class LoadProfile {
 public:
  LoadProfile() = default;
  /// `hits[u]` = accesses that touched server u over `samples` draws.
  LoadProfile(std::vector<std::uint64_t> hits, std::uint64_t samples);

  std::uint32_t universe_size() const {
    return static_cast<std::uint32_t>(hits_.size());
  }
  std::uint64_t samples() const { return samples_; }
  const std::vector<std::uint64_t>& hits() const { return hits_; }

  /// Estimated l_w(u): fraction of draws touching server u.
  double load(std::uint32_t u) const;
  /// All per-server loads (the estimate_server_loads shape).
  std::vector<double> loads() const;

  /// max_u l_w(u) — the induced load L_w.
  double max_load() const;
  /// Mean per-server load = E|Q| / n (total hits / (n * samples)).
  double mean_load() const;
  /// max / mean: 1.0 is perfectly balanced, higher means hot spots.
  /// 0 when there are no hits at all.
  double imbalance() const;
  /// The k hottest servers, descending by hits (ties broken by lower id).
  std::vector<HotServer> hottest(std::size_t k) const;

  /// Elementwise accumulation: hit counts add, sample counts add.
  /// Universe sizes must match (an empty profile adopts the other's).
  void merge(const LoadProfile& other);

  bool operator==(const LoadProfile& other) const {
    return samples_ == other.samples_ && hits_ == other.hits_;
  }

 private:
  std::vector<std::uint64_t> hits_;
  std::uint64_t samples_ = 0;
};

}  // namespace pqs::stats

// Cluster-level contention observability.
//
// replica::Server counts what the protocol does to it — writes accepted,
// reads served, and writes it acknowledged but did not adopt because a
// higher-timestamped record was already installed (writes_superseded, the
// server-side trace of multi-writer contention). Those counters used to be
// visible only one server at a time; this layer aggregates them into
// cluster snapshots that merge across bench shards and diff across
// experiment phases (e.g. read-repair on vs off), without the stats code
// depending on the replica layer.
#pragma once

#include <cstdint>
#include <vector>

namespace pqs::stats {

/// One server's protocol counters (mirrors replica::Server's accessors).
struct ServerCounters {
  std::uint64_t writes_accepted = 0;
  std::uint64_t reads_served = 0;
  std::uint64_t writes_superseded = 0;

  ServerCounters& operator+=(const ServerCounters& o) {
    writes_accepted += o.writes_accepted;
    reads_served += o.reads_served;
    writes_superseded += o.writes_superseded;
    return *this;
  }
  ServerCounters& operator-=(const ServerCounters& o) {
    writes_accepted -= o.writes_accepted;
    reads_served -= o.reads_served;
    writes_superseded -= o.writes_superseded;
    return *this;
  }
  bool operator==(const ServerCounters& o) const {
    return writes_accepted == o.writes_accepted &&
           reads_served == o.reads_served &&
           writes_superseded == o.writes_superseded;
  }
};

/// Per-server counters for one cluster (or, after merge(), the elementwise
/// sum over many same-shaped clusters — bench shards are iid replicas, so
/// summing by server id is the natural fold).
class ContentionSnapshot {
 public:
  ContentionSnapshot() = default;
  explicit ContentionSnapshot(std::uint32_t universe_size)
      : per_server_(universe_size) {}

  std::uint32_t universe_size() const {
    return static_cast<std::uint32_t>(per_server_.size());
  }
  ServerCounters& server(std::uint32_t u) { return per_server_.at(u); }
  const ServerCounters& server(std::uint32_t u) const {
    return per_server_.at(u);
  }
  const std::vector<ServerCounters>& per_server() const {
    return per_server_;
  }

  /// Sum over every server.
  ServerCounters totals() const;
  /// superseded / writes accepted — the fraction of write deliveries that
  /// lost the timestamp race at the server (0 when no writes landed).
  double superseded_rate() const;

  /// Elementwise accumulation (universes must match; an empty snapshot
  /// adopts the other's shape).
  void merge(const ContentionSnapshot& other);

  bool operator==(const ContentionSnapshot& other) const {
    return per_server_ == other.per_server_;
  }

 private:
  std::vector<ServerCounters> per_server_;
};

/// Per-server difference of two snapshots of the *same* cluster taken at
/// two points in time: what happened between them. Counters are monotone,
/// so `after` must dominate `before` elementwise (checked); universes must
/// match, except that an empty `before` acts as the all-zero snapshot.
/// This is how experiment phases (bench sections, gossip rounds, fault
/// windows) report their own traffic without recomputing per-server diffs
/// ad hoc.
ContentionSnapshot snapshot_delta(const ContentionSnapshot& before,
                                  const ContentionSnapshot& after);

}  // namespace pqs::stats

// HDR-style log-bucketed latency recording.
//
// The serving tier records one latency sample per completed request, so
// the recorder must be allocation-free, O(1) per sample, and mergeable
// across shards without losing information. LatencyHistogram follows the
// HdrHistogram idea: values up to 2^6 land in exact unit buckets; above
// that, each power-of-two range is split into 32 sub-buckets, bounding
// the relative quantization error of any reported percentile at ~1.6%
// (half a bucket). Counts are plain uint64s, so merging histograms is an
// elementwise add — bit-identical to having recorded every sample into
// one histogram — and the observed maximum is tracked exactly so the tail
// report never exceeds a real sample.
//
// Values are dimensionless (the serving bench records nanoseconds);
// values above ~2^62 saturate into the top bucket.
#pragma once

#include <array>
#include <cstdint>

namespace pqs::stats {

class LatencyHistogram {
 public:
  // 64 exact unit buckets, then 32 sub-buckets per power of two.
  static constexpr std::uint32_t kSubBucketBits = 6;
  static constexpr std::uint64_t kSubBucketCount = 1ULL << kSubBucketBits;
  static constexpr std::uint64_t kHalf = kSubBucketCount / 2;
  static constexpr std::uint32_t kMaxShift = 63 - kSubBucketBits + 1;
  static constexpr std::size_t kBucketCount =
      kSubBucketCount + kMaxShift * kHalf;

  LatencyHistogram() { counts_.fill(0); }

  // O(1), allocation-free: one array increment plus a max update.
  void record(std::uint64_t value) {
    ++counts_[index_of(value)];
    ++total_;
    if (value > max_) max_ = value;
  }

  std::uint64_t count() const { return total_; }
  std::uint64_t max() const { return max_; }

  // The value at or below which `percentile` percent of recorded samples
  // fall, reported as the matching bucket's midpoint (clamped to the exact
  // observed maximum). 0 when nothing was recorded.
  std::uint64_t value_at_percentile(double percentile) const;

  std::uint64_t p50() const { return value_at_percentile(50.0); }
  std::uint64_t p99() const { return value_at_percentile(99.0); }
  std::uint64_t p999() const { return value_at_percentile(99.9); }

  // Lossless shard merge: counts add elementwise, the max is the max.
  void merge(const LatencyHistogram& other);

  bool operator==(const LatencyHistogram& other) const {
    return total_ == other.total_ && max_ == other.max_ &&
           counts_ == other.counts_;
  }

  // Exposed for the oracle tests: which bucket a value lands in and the
  // bucket's [low, low + width) coverage.
  static std::size_t index_of(std::uint64_t value);
  static std::uint64_t bucket_low(std::size_t index);
  static std::uint64_t bucket_width(std::size_t index);

 private:
  friend LatencyHistogram histogram_delta(const LatencyHistogram& before,
                                          const LatencyHistogram& after);

  std::array<std::uint64_t, kBucketCount> counts_;
  std::uint64_t total_ = 0;
  std::uint64_t max_ = 0;
};

// Elementwise difference of two snapshots of the *same* accumulating
// histogram taken at two points in time: what was recorded between them
// (the latency-histogram mirror of stats::snapshot_delta). Counts are
// monotone, so `after` must dominate `before` bucket by bucket (checked).
// This is how offered-load sweep points report their own percentiles off
// one live deployment without a reset_latency barrier between points.
//
// The one lossy field is the maximum: an exact per-interval max is not
// recoverable from two cumulative snapshots, so the delta's max is the
// interval's top nonempty bucket clamped to `after`'s observed max —
// within one bucket width (~3% relative) of the true interval max, and
// never above a sample the deployment really recorded.
LatencyHistogram histogram_delta(const LatencyHistogram& before,
                                 const LatencyHistogram& after);

}  // namespace pqs::stats

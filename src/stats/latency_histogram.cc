#include "stats/latency_histogram.h"

#include <algorithm>
#include <cmath>

#include "util/require.h"

namespace pqs::stats {

std::size_t LatencyHistogram::index_of(std::uint64_t value) {
  if (value < kSubBucketCount) return static_cast<std::size_t>(value);
  const std::uint32_t msb =
      63u - static_cast<std::uint32_t>(__builtin_clzll(value));
  const std::uint32_t shift = msb - kSubBucketBits + 1;
  const std::uint64_t sub = value >> shift;  // in [kHalf, kSubBucketCount)
  return static_cast<std::size_t>(kSubBucketCount + (shift - 1) * kHalf +
                                  (sub - kHalf));
}

std::uint64_t LatencyHistogram::bucket_low(std::size_t index) {
  if (index < kSubBucketCount) return index;
  const std::uint64_t rel = index - kSubBucketCount;
  const std::uint32_t shift = static_cast<std::uint32_t>(rel / kHalf) + 1;
  const std::uint64_t sub = kHalf + rel % kHalf;
  return sub << shift;
}

std::uint64_t LatencyHistogram::bucket_width(std::size_t index) {
  if (index < kSubBucketCount) return 1;
  const std::uint32_t shift =
      static_cast<std::uint32_t>((index - kSubBucketCount) / kHalf) + 1;
  return 1ULL << shift;
}

std::uint64_t LatencyHistogram::value_at_percentile(double percentile) const {
  if (total_ == 0) return 0;
  const double clamped = std::min(std::max(percentile, 0.0), 100.0);
  std::uint64_t rank = static_cast<std::uint64_t>(
      std::ceil(clamped / 100.0 * static_cast<double>(total_)));
  rank = std::min(std::max<std::uint64_t>(rank, 1), total_);
  std::uint64_t cumulative = 0;
  for (std::size_t i = 0; i < kBucketCount; ++i) {
    cumulative += counts_[i];
    if (cumulative >= rank) {
      // Bucket midpoint, never above a real sample: the only bucket whose
      // midpoint can exceed the exact max is the one holding it.
      const std::uint64_t mid = bucket_low(i) + (bucket_width(i) - 1) / 2;
      return std::min(mid, max_);
    }
  }
  return max_;
}

void LatencyHistogram::merge(const LatencyHistogram& other) {
  for (std::size_t i = 0; i < kBucketCount; ++i) counts_[i] += other.counts_[i];
  total_ += other.total_;
  max_ = std::max(max_, other.max_);
}

LatencyHistogram histogram_delta(const LatencyHistogram& before,
                                 const LatencyHistogram& after) {
  LatencyHistogram delta;
  std::size_t top = LatencyHistogram::kBucketCount;  // past-the-end = none
  for (std::size_t i = 0; i < LatencyHistogram::kBucketCount; ++i) {
    PQS_REQUIRE(after.counts_[i] >= before.counts_[i],
                "histogram_delta: `after` must dominate `before`");
    delta.counts_[i] = after.counts_[i] - before.counts_[i];
    if (delta.counts_[i] > 0) top = i;
  }
  delta.total_ = after.total_ - before.total_;
  if (delta.total_ > 0) {
    const std::uint64_t bucket_top =
        LatencyHistogram::bucket_low(top) +
        (LatencyHistogram::bucket_width(top) - 1);
    delta.max_ = std::min(bucket_top, after.max_);
  }
  return delta;
}

}  // namespace pqs::stats

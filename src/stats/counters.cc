#include "stats/counters.h"

#include "util/require.h"

namespace pqs::stats {

ServerCounters ContentionSnapshot::totals() const {
  ServerCounters total;
  for (const ServerCounters& c : per_server_) total += c;
  return total;
}

double ContentionSnapshot::superseded_rate() const {
  const ServerCounters total = totals();
  return total.writes_accepted == 0
             ? 0.0
             : static_cast<double>(total.writes_superseded) /
                   static_cast<double>(total.writes_accepted);
}

ContentionSnapshot snapshot_delta(const ContentionSnapshot& before,
                                  const ContentionSnapshot& after) {
  if (before.universe_size() == 0) return after;
  PQS_REQUIRE(before.universe_size() == after.universe_size(),
              "snapshot delta universe mismatch");
  ContentionSnapshot delta(after.universe_size());
  for (std::uint32_t u = 0; u < after.universe_size(); ++u) {
    const ServerCounters& b = before.server(u);
    const ServerCounters& a = after.server(u);
    PQS_REQUIRE(a.writes_accepted >= b.writes_accepted &&
                    a.reads_served >= b.reads_served &&
                    a.writes_superseded >= b.writes_superseded,
                "snapshot delta: before does not precede after");
    delta.server(u) = a;
    delta.server(u) -= b;
  }
  return delta;
}

void ContentionSnapshot::merge(const ContentionSnapshot& other) {
  if (per_server_.empty()) {
    *this = other;
    return;
  }
  if (other.per_server_.empty()) return;
  PQS_REQUIRE(per_server_.size() == other.per_server_.size(),
              "contention snapshot universe mismatch");
  for (std::size_t u = 0; u < per_server_.size(); ++u) {
    per_server_[u] += other.per_server_[u];
  }
}

}  // namespace pqs::stats

#include "core/epsilon.h"

#include <algorithm>
#include <cmath>
#include <vector>

#include "math/combinatorics.h"
#include "math/hypergeometric.h"
#include "util/require.h"

namespace pqs::core {

namespace {

void check_nq(std::int64_t n, std::int64_t q) {
  PQS_REQUIRE(n >= 1, "universe size");
  PQS_REQUIRE(q >= 1 && q <= n, "quorum size");
}

}  // namespace

// ---- eps-intersecting ---------------------------------------------------

double nonintersection_exact(std::int64_t n, std::int64_t q) {
  check_nq(n, q);
  if (2 * q > n) return 0.0;  // two q-subsets must overlap
  // By symmetry fix Q; P(Q' misses all of Q) = C(n-q, q) / C(n, q).
  return math::exp_probability(math::log_choose(n - q, q) -
                               math::log_choose(n, q));
}

double nonintersection_bound(std::int64_t n, std::int64_t q) {
  check_nq(n, q);
  const double l2 = static_cast<double>(q) * static_cast<double>(q) /
                    static_cast<double>(n);
  return std::min(1.0, std::exp(-l2));
}

// ---- (b, eps)-dissemination ----------------------------------------------

double dissemination_epsilon_exact(std::int64_t n, std::int64_t q,
                                   std::int64_t b) {
  check_nq(n, q);
  PQS_REQUIRE(b >= 0 && b <= n, "byzantine count");
  // eps = P(Q ∩ Q' ⊆ B)
  //     = sum_x P(|Q ∩ B| = x) * P(Q' avoids Q \ B),   |Q \ B| = q - x
  //     = sum_x H(b; n, q)(x) * C(n - (q - x), q) / C(n, q).
  const auto X = math::make_hypergeometric(n, b, q);
  const double log_denominator = math::log_choose(n, q);
  std::vector<double> terms;
  for (std::int64_t x = X.support_min(); x <= X.support_max(); ++x) {
    const std::int64_t correct_in_q = q - x;  // |Q \ B|
    const double log_avoid =
        math::log_choose(n - correct_in_q, q) - log_denominator;
    if (log_avoid == math::kNegInf) continue;
    terms.push_back(X.log_pmf(x) + log_avoid);
  }
  return math::exp_probability(math::log_sum(terms));
}

double dissemination_bound_third(std::int64_t n, std::int64_t q) {
  check_nq(n, q);
  const double l2 = static_cast<double>(q) * static_cast<double>(q) /
                    static_cast<double>(n);
  return std::min(1.0, 2.0 * std::exp(-l2 / 6.0));
}

double dissemination_bound_alpha(std::int64_t n, std::int64_t q,
                                 double alpha) {
  check_nq(n, q);
  PQS_REQUIRE(alpha > 0.0 && alpha < 1.0, "alpha in (0,1)");
  const double l2 = static_cast<double>(q) * static_cast<double>(q) /
                    static_cast<double>(n);
  const double exponent = l2 * (1.0 - std::sqrt(alpha)) / 2.0;
  const double bound = 2.0 / (1.0 - alpha) * std::pow(alpha, exponent);
  return std::min(1.0, bound);
}

// ---- (b, eps)-masking -----------------------------------------------------

std::int64_t masking_threshold(std::int64_t n, std::int64_t q) {
  check_nq(n, q);
  const double k = static_cast<double>(q) * static_cast<double>(q) /
                   (2.0 * static_cast<double>(n));
  return std::max<std::int64_t>(1, static_cast<std::int64_t>(std::ceil(k)));
}

double masking_epsilon_exact(std::int64_t n, std::int64_t q, std::int64_t b,
                             std::int64_t k) {
  check_nq(n, q);
  PQS_REQUIRE(b >= 0 && b <= n, "byzantine count");
  PQS_REQUIRE(k >= 1 && k <= n, "threshold k");
  // Success requires |Q ∩ B| < k (faulty servers cannot reach the
  // threshold) and |Q' ∩ (Q \ B)| >= k (enough correct, up-to-date
  // servers answer the read). X = |Q ∩ B| ~ H(b; n, q); given X = x the
  // set Q \ B has q - x elements, and Y = |Q' ∩ (Q\B)| ~ H(q - x; n, q)
  // because Q' is an independent uniform q-subset.
  const auto X = math::make_hypergeometric(n, b, q);
  // Structural zero: the faulty servers can never reach the threshold
  // (max |Q ∩ B| < k) and pigeonhole forces |Q ∩ Q' \ B| >= 2q - n - b >= k
  // for every quorum pair, so the read cannot fail. Returning exactly 0
  // here avoids reporting the ~1e-15 noise of the log-domain summation.
  if (X.support_max() < k && 2 * q - n - b >= k) return 0.0;
  double success = 0.0;
  const std::int64_t x_hi = std::min(X.support_max(), k - 1);
  for (std::int64_t x = X.support_min(); x <= x_hi; ++x) {
    const auto Y = math::make_hypergeometric(n, q - x, q);
    success += X.pmf(x) * Y.upper_tail(k);
  }
  return std::clamp(1.0 - success, 0.0, 1.0);
}

double fabrication_epsilon_exact(std::int64_t n, std::int64_t q,
                                 std::int64_t b, std::int64_t k) {
  check_nq(n, q);
  PQS_REQUIRE(b >= 0 && b <= n, "byzantine count");
  PQS_REQUIRE(k >= 1 && k <= n, "threshold k");
  // X = |Q ∩ B| ~ H(b; n, q); the fabrication event is X >= k.
  const auto X = math::make_hypergeometric(n, b, q);
  if (X.support_max() < k) return 0.0;  // b < k: colluders cannot qualify
  return X.upper_tail(k);
}

double masking_psi1(double l) {
  PQS_REQUIRE(l > 2.0, "masking requires l = q/b > 2");
  constexpr double kFourE = 4.0 * 2.718281828459045;
  if (l <= kFourE) {
    const double t = l / 2.0 - 1.0;
    return t * t / (4.0 * l);
  }
  return 1.0 / 3.0;
}

double masking_psi2(double l) {
  PQS_REQUIRE(l > 2.0, "masking requires l = q/b > 2");
  const double t = l - 2.0;
  return t * t / (8.0 * l * (l - 1.0));
}

double masking_bound(std::int64_t n, std::int64_t q, std::int64_t b) {
  check_nq(n, q);
  PQS_REQUIRE(b >= 1, "byzantine count");
  const double l = static_cast<double>(q) / static_cast<double>(b);
  const double psi = std::min(masking_psi1(l), masking_psi2(l));
  const double q2n = static_cast<double>(q) * static_cast<double>(q) /
                     static_cast<double>(n);
  return std::min(1.0, 2.0 * std::exp(-q2n * psi));
}

double expected_faulty_overlap(std::int64_t n, std::int64_t q,
                               std::int64_t b) {
  check_nq(n, q);
  return static_cast<double>(q) * static_cast<double>(b) /
         static_cast<double>(n);
}

double expected_correct_overlap(std::int64_t n, std::int64_t q,
                                std::int64_t b) {
  check_nq(n, q);
  const double nn = static_cast<double>(n);
  return static_cast<double>(q) * static_cast<double>(q) / nn *
         (1.0 - static_cast<double>(b) / nn);
}

// ---- solvers ---------------------------------------------------------------

namespace {

// Generic scan: smallest q in [1, q_max] with eps(q) <= target. The exact
// eps functions are not guaranteed monotone once k(q) jumps (masking), so a
// linear scan is the honest choice; costs are trivial for n <= 10^4.
template <typename EpsFn>
std::optional<std::int64_t> scan_min_q(std::int64_t q_max, double target,
                                       EpsFn eps) {
  for (std::int64_t q = 1; q <= q_max; ++q) {
    if (eps(q) <= target) return q;
  }
  return std::nullopt;
}

}  // namespace

std::optional<std::int64_t> min_q_intersecting(std::int64_t n, double target) {
  PQS_REQUIRE(n >= 1, "universe size");
  PQS_REQUIRE(target > 0.0 && target < 1.0, "target eps");
  return scan_min_q(n, target,
                    [n](std::int64_t q) { return nonintersection_exact(n, q); });
}

std::optional<std::int64_t> min_q_dissemination(std::int64_t n, std::int64_t b,
                                                double target) {
  PQS_REQUIRE(n >= 1, "universe size");
  PQS_REQUIRE(b >= 0 && b < n, "byzantine count");
  PQS_REQUIRE(target > 0.0 && target < 1.0, "target eps");
  // Availability: A(<Q,w>) = n - q + 1 must exceed b.
  const std::int64_t q_max = n - b;
  return scan_min_q(q_max, target, [n, b](std::int64_t q) {
    return dissemination_epsilon_exact(n, q, b);
  });
}

std::optional<std::int64_t> min_q_masking(std::int64_t n, std::int64_t b,
                                          double target) {
  PQS_REQUIRE(n >= 1, "universe size");
  PQS_REQUIRE(b >= 0 && b < n, "byzantine count");
  PQS_REQUIRE(target > 0.0 && target < 1.0, "target eps");
  const std::int64_t q_max = n - b;
  return scan_min_q(q_max, target, [n, b](std::int64_t q) {
    return masking_epsilon_exact(n, q, b, masking_threshold(n, q));
  });
}

}  // namespace pqs::core

#include "core/timed_epsilon.h"

#include <algorithm>
#include <cmath>
#include <vector>

#include "math/combinatorics.h"
#include "math/hypergeometric.h"
#include "util/require.h"

namespace pqs::core {

namespace {

// P(miss | d distinct slots replaced): X = |Q_w ∩ replaced| ~ H(d; n, q),
// and given X = x the read quorum must avoid the q - x surviving write
// members: C(n - (q - x), q) / C(n, q). Log-domain sum over the support.
double miss_given_replaced(std::int64_t n, std::int64_t q, std::int64_t d) {
  const auto hyp = math::make_hypergeometric(n, d, q);
  const double log_cnq = math::log_choose(n, q);
  double acc = math::kNegInf;
  for (std::int64_t x = hyp.support_min(); x <= hyp.support_max(); ++x) {
    acc = math::log_add(
        acc, hyp.log_pmf(x) + math::log_choose(n - q + x, q) - log_cnq);
  }
  return math::exp_probability(acc);
}

// One churn event on the distinct-replaced-count distribution `p`
// (p[d] = P(D = d), valid up to index `dmax`): the event hits an
// already-replaced slot with probability d/n, a fresh one with
// probability (n-d)/n, so
//   p'[d] = p[d] * d/n + p[d-1] * (n-d+1)/n.
// Returns the new dmax. Descending order keeps p[d-1] pre-step.
std::int64_t occupancy_step(std::vector<double>& p, std::int64_t dmax,
                            std::int64_t n) {
  const auto nd = static_cast<double>(n);
  const std::int64_t top = std::min<std::int64_t>(dmax + 1, n);
  if (top >= static_cast<std::int64_t>(p.size())) p.resize(top + 1, 0.0);
  for (std::int64_t d = top; d >= 0; --d) {
    const double stay = p[d] * (static_cast<double>(d) / nd);
    const double grow =
        d > 0 ? p[d - 1] * (static_cast<double>(n - d + 1) / nd) : 0.0;
    p[d] = stay + grow;
  }
  return top;
}

// Lazily-extended cache of miss_given_replaced over d.
class MissCache {
 public:
  MissCache(std::int64_t n, std::int64_t q) : n_(n), q_(q) {}
  double at(std::int64_t d) {
    while (static_cast<std::int64_t>(values_.size()) <= d) {
      values_.push_back(miss_given_replaced(
          n_, q_, static_cast<std::int64_t>(values_.size())));
    }
    return values_[d];
  }

 private:
  std::int64_t n_;
  std::int64_t q_;
  std::vector<double> values_;
};

}  // namespace

double timed_epsilon_events(std::int64_t n, std::int64_t q,
                            std::int64_t events) {
  PQS_REQUIRE(n >= 1 && q >= 1 && q <= n, "timed epsilon parameters");
  PQS_REQUIRE(events >= 0, "negative churn event count");
  std::vector<double> p(1, 1.0);
  std::int64_t dmax = 0;
  for (std::int64_t e = 0; e < events; ++e) dmax = occupancy_step(p, dmax, n);
  MissCache miss(n, q);
  double eps = 0.0;
  for (std::int64_t d = 0; d <= dmax; ++d) {
    if (p[d] > 0.0) eps += p[d] * miss.at(d);
  }
  return std::min(eps, 1.0);
}

double estimate_timed_epsilon(std::int64_t n, std::int64_t q, double lambda,
                              double staleness) {
  PQS_REQUIRE(n >= 1 && q >= 1 && q <= n, "timed epsilon parameters");
  PQS_REQUIRE(lambda >= 0.0 && staleness >= 0.0, "churn rate / staleness");
  const double mu = lambda * staleness;
  if (mu == 0.0) return timed_epsilon_events(n, q, 0);
  // Mix eps over K ~ Poisson(mu) churn events, advancing the occupancy
  // distribution one event at a time so the whole mixture costs one DP
  // sweep. Poisson weights are computed per-term in log domain (exp(-mu)
  // alone underflows past mu ~ 700). Truncate once the mode is passed and
  // the residual Poisson mass is < 1e-12 — eps <= 1 bounds the error by
  // the same 1e-12.
  std::vector<double> p(1, 1.0);
  std::int64_t dmax = 0;
  MissCache miss(n, q);
  const double log_mu = std::log(mu);
  double eps = 0.0;
  double mass = 0.0;
  // Hard cap far past the mode, in case of floating-point mass leakage.
  const std::int64_t cap =
      static_cast<std::int64_t>(mu + 60.0 * std::sqrt(mu + 1.0)) + 60;
  for (std::int64_t k = 0; k <= cap; ++k) {
    if (k > 0) dmax = occupancy_step(p, dmax, n);
    double eps_k = 0.0;
    for (std::int64_t d = 0; d <= dmax; ++d) {
      if (p[d] > 0.0) eps_k += p[d] * miss.at(d);
    }
    const double log_w =
        -mu + static_cast<double>(k) * log_mu - math::log_factorial(k);
    const double w = std::exp(log_w);
    eps += w * eps_k;
    mass += w;
    if (static_cast<double>(k) >= mu && 1.0 - mass < 1e-12) break;
  }
  return std::min(eps, 1.0);
}

double timed_quorum_lifetime(std::int64_t n, std::int64_t q, double lambda,
                             double target) {
  PQS_REQUIRE(lambda > 0.0, "lifetime needs a positive churn rate");
  PQS_REQUIRE(target > 0.0 && target < 1.0, "lifetime target");
  if (estimate_timed_epsilon(n, q, lambda, 0.0) > target) return 0.0;
  // Doubling to bracket, then bisection. estimate_timed_epsilon is
  // monotone in staleness (more expected churn can only lose more of the
  // write quorum).
  double lo = 0.0;
  double hi = 1.0 / lambda;
  while (estimate_timed_epsilon(n, q, lambda, hi) <= target) {
    lo = hi;
    hi *= 2.0;
    if (hi > 1e12 / lambda) return lo;  // target unreachable in practice
  }
  for (int i = 0; i < 60 && (hi - lo) > 1e-6 * hi; ++i) {
    const double mid = 0.5 * (lo + hi);
    if (estimate_timed_epsilon(n, q, lambda, mid) <= target) {
      lo = mid;
    } else {
      hi = mid;
    }
  }
  return lo;
}

}  // namespace pqs::core

// Load lower bounds and resilience caps proved in the paper, as callable
// formulas. Tests assert every shipped construction satisfies them; the
// Table 1 bench prints them against achieved values.
#pragma once

#include <cstdint>

namespace pqs::core {

// ---- Strict systems (Section 2, Table 1) --------------------------------

// Naor-Wool: L(Q) >= max(1/c(Q), c(Q)/n) >= 1/sqrt(n).
double strict_load_lower_bound(std::int64_t n);
// b-dissemination: L >= sqrt((b+1)/n); b <= floor((n-1)/3).
double strict_dissemination_load_lower_bound(std::int64_t n, std::int64_t b);
std::int64_t strict_dissemination_max_b(std::int64_t n);
// b-masking: L >= sqrt((2b+1)/n); b <= floor((n-1)/4).
double strict_masking_load_lower_bound(std::int64_t n, std::int64_t b);
std::int64_t strict_masking_max_b(std::int64_t n);

// ---- Probabilistic systems ----------------------------------------------

// Theorem 3.9: L(<Q,w>) >= max(E|Q|/n, (1-sqrt(eps))^2 / E|Q|).
double probabilistic_load_lower_bound(double expected_quorum_size,
                                      std::int64_t n, double epsilon);
// Corollary 3.12: L >= (1 - sqrt(eps)) / sqrt(n).
double probabilistic_load_floor(std::int64_t n, double epsilon);
// Theorem 5.5: a (b, eps)-masking system has L > (1-2eps)/(1-eps) * b/n.
double probabilistic_masking_load_lower_bound(std::int64_t n, std::int64_t b,
                                              double epsilon);

// Peleg-Wool availability facts used in Figures 1-3 (footnote 3): the best
// failure probability any strict quorum system over at most n servers can
// achieve at crash probability p — the majority system for p < 1/2, a
// singleton (F_p = p) for p >= 1/2.
double strict_failure_probability_lower_bound(std::int64_t n, double p);

}  // namespace pqs::core

// Timed epsilon: intersection failure under churn (timed quorum systems).
//
// The paper proves eps-intersection for R(n, q) over a fixed universe.
// Gramoli & Raynal's timed quorum model (PAPERS.md: "Timed Quorum System
// for Large-Scale and Dynamic Environments") asks what survives churn: a
// write quorum probed at time t intersects a read quorum drawn at time
// t + Δ only through the write-quorum members still alive at t + Δ, so the
// intersection probability decays with the churn the view ages through —
// quorums have a *lifetime* over which eps stays below target.
//
// Our deployed churn model (replica::InstantCluster::churn_replace) keeps
// the fleet size constant at n: each event replaces one uniformly random
// live slot with a fresh, empty server. A read misses the write iff the
// read quorum intersects the write quorum only in replaced slots. This
// module computes that probability exactly:
//
//   * timed_epsilon_events(n, q, k): eps after exactly k replacement
//     events. The number D of *distinct* write-universe slots replaced by
//     k uniform events follows the occupancy recurrence
//         p'[d] = p[d] * d/n + p[d-1] * (n-d+1)/n,
//     and conditioned on D = d the miss probability is
//         sum_x H(x; n, d, q) * C(n-q+x, q) / C(n, q)
//     — X = |Q_w ∩ replaced| is hypergeometric, and the read quorum must
//     avoid the q - x surviving write members. k = 0 reduces to the
//     paper's exact eps = C(n-q, q)/C(n, q).
//
//   * estimate_timed_epsilon(n, q, lambda, staleness): the Poisson
//     mixture over k ~ Poisson(lambda * staleness) — eps as a function of
//     churn *rate* and view *staleness*, the estimator the conformance
//     suite (test_timed_epsilon) and bench/churn_throughput validate
//     against the deployed stack.
//
//   * timed_quorum_lifetime(n, q, lambda, target): the largest staleness
//     Δ with estimate_timed_epsilon(n, q, lambda, Δ) <= target — the
//     Gramoli-Raynal lifetime bound for this construction.
#pragma once

#include <cstdint>

namespace pqs::core {

// Exact P(read misses write) after exactly `events` uniform in-place
// replacements on an n-slot fleet, write and read quorums both uniform
// q-subsets. Monotone nondecreasing in `events`; events = 0 gives
// nonintersection_exact(n, q).
double timed_epsilon_events(std::int64_t n, std::int64_t q,
                            std::int64_t events);

// Poisson(lambda * staleness) mixture of timed_epsilon_events: the timed
// epsilon at churn rate `lambda` (events per unit time, > 0 unless
// staleness is 0) and view staleness `staleness` (time units, >= 0). The
// tail of the Poisson mixture is truncated once the remaining mass is
// < 1e-12 (epsilon is <= 1, so the truncation error is below 1e-12).
double estimate_timed_epsilon(std::int64_t n, std::int64_t q, double lambda,
                              double staleness);

// Largest staleness Δ such that estimate_timed_epsilon(n, q, lambda, Δ)
// <= target, found by doubling + bisection (relative precision ~1e-6).
// Returns 0 when even Δ = 0 misses the target (eps_0 > target).
double timed_quorum_lifetime(std::int64_t n, std::int64_t q, double lambda,
                             double target);

}  // namespace pqs::core

#include "core/lower_bounds.h"

#include <algorithm>
#include <cmath>

#include "quorum/measures.h"
#include "util/require.h"

namespace pqs::core {

double strict_load_lower_bound(std::int64_t n) {
  PQS_REQUIRE(n >= 1, "universe size");
  return 1.0 / std::sqrt(static_cast<double>(n));
}

double strict_dissemination_load_lower_bound(std::int64_t n, std::int64_t b) {
  PQS_REQUIRE(n >= 1 && b >= 0, "parameters");
  return std::sqrt((static_cast<double>(b) + 1.0) / static_cast<double>(n));
}

std::int64_t strict_dissemination_max_b(std::int64_t n) {
  return (n - 1) / 3;
}

double strict_masking_load_lower_bound(std::int64_t n, std::int64_t b) {
  PQS_REQUIRE(n >= 1 && b >= 0, "parameters");
  return std::sqrt((2.0 * static_cast<double>(b) + 1.0) /
                   static_cast<double>(n));
}

std::int64_t strict_masking_max_b(std::int64_t n) { return (n - 1) / 4; }

double probabilistic_load_lower_bound(double expected_quorum_size,
                                      std::int64_t n, double epsilon) {
  PQS_REQUIRE(expected_quorum_size > 0.0, "expected quorum size");
  PQS_REQUIRE(epsilon >= 0.0 && epsilon <= 1.0, "epsilon");
  const double mean_term = expected_quorum_size / static_cast<double>(n);
  const double s = 1.0 - std::sqrt(epsilon);
  const double intersect_term = s * s / expected_quorum_size;
  return std::max(mean_term, intersect_term);
}

double probabilistic_load_floor(std::int64_t n, double epsilon) {
  PQS_REQUIRE(epsilon >= 0.0 && epsilon <= 1.0, "epsilon");
  return (1.0 - std::sqrt(epsilon)) / std::sqrt(static_cast<double>(n));
}

double probabilistic_masking_load_lower_bound(std::int64_t n, std::int64_t b,
                                              double epsilon) {
  PQS_REQUIRE(epsilon >= 0.0 && epsilon < 0.5, "epsilon below 1/2");
  return (1.0 - 2.0 * epsilon) / (1.0 - epsilon) * static_cast<double>(b) /
         static_cast<double>(n);
}

double strict_failure_probability_lower_bound(std::int64_t n, double p) {
  PQS_REQUIRE(p >= 0.0 && p <= 1.0, "crash probability");
  const std::int64_t majority = (n + 2) / 2;  // ceil((n+1)/2)
  const double f_majority =
      quorum::size_based_failure_probability(n, majority, p);
  return std::min(f_majority, p);
}

}  // namespace pqs::core

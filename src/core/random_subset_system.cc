#include "core/random_subset_system.h"

#include <cmath>

#include "core/epsilon.h"
#include "math/sampling.h"
#include "quorum/measures.h"
#include "util/require.h"

namespace pqs::core {

const char* regime_name(Regime regime) {
  switch (regime) {
    case Regime::kIntersecting: return "intersecting";
    case Regime::kDissemination: return "dissemination";
    case Regime::kMasking: return "masking";
  }
  return "?";
}

RandomSubsetSystem::RandomSubsetSystem(std::uint32_t n, std::uint32_t q)
    : RandomSubsetSystem(n, q, 0, 1, Regime::kIntersecting) {}

RandomSubsetSystem::RandomSubsetSystem(std::uint32_t n, std::uint32_t q,
                                       std::uint32_t b, std::uint32_t k,
                                       Regime regime)
    : n_(n), q_(q), b_(b), k_(k), regime_(regime) {
  PQS_REQUIRE(n >= 1, "universe size");
  PQS_REQUIRE(q >= 1 && q <= n, "quorum size");
  PQS_REQUIRE(b < n, "byzantine threshold");
  // Definitions 4.1 and 5.1 require A(<Q,w>) > b.
  PQS_REQUIRE(regime == Regime::kIntersecting || fault_tolerance() > b,
              "availability must exceed the Byzantine threshold");
  PQS_REQUIRE(k >= 1, "read threshold");
}

RandomSubsetSystem RandomSubsetSystem::intersecting(std::uint32_t n,
                                                    double target_epsilon) {
  const auto q = min_q_intersecting(n, target_epsilon);
  PQS_REQUIRE(q.has_value(), "no quorum size meets the epsilon target");
  return RandomSubsetSystem(n, static_cast<std::uint32_t>(*q));
}

RandomSubsetSystem RandomSubsetSystem::dissemination(std::uint32_t n,
                                                     std::uint32_t b,
                                                     double target_epsilon) {
  const auto q = min_q_dissemination(n, b, target_epsilon);
  PQS_REQUIRE(q.has_value(), "no quorum size meets the epsilon target");
  return RandomSubsetSystem(n, static_cast<std::uint32_t>(*q), b, 1,
                            Regime::kDissemination);
}

RandomSubsetSystem RandomSubsetSystem::masking(std::uint32_t n,
                                               std::uint32_t b,
                                               double target_epsilon) {
  const auto q = min_q_masking(n, b, target_epsilon);
  PQS_REQUIRE(q.has_value(), "no quorum size meets the epsilon target");
  const auto k = masking_threshold(n, *q);
  return RandomSubsetSystem(n, static_cast<std::uint32_t>(*q), b,
                            static_cast<std::uint32_t>(k), Regime::kMasking);
}

RandomSubsetSystem RandomSubsetSystem::with_byzantine(std::uint32_t n,
                                                      std::uint32_t q,
                                                      std::uint32_t b,
                                                      Regime regime) {
  const std::uint32_t k =
      regime == Regime::kMasking
          ? static_cast<std::uint32_t>(masking_threshold(n, q))
          : 1u;
  return RandomSubsetSystem(n, q, b, k, regime);
}

std::string RandomSubsetSystem::name() const {
  std::string out = std::string("R(n=") + std::to_string(n_) +
                    ",q=" + std::to_string(q_);
  if (regime_ != Regime::kIntersecting) {
    out += std::string(",b=") + std::to_string(b_);
  }
  if (regime_ == Regime::kMasking) {
    out += std::string(",k=") + std::to_string(k_);
  }
  out += std::string(")[") + regime_name(regime_) + "]";
  return out;
}

quorum::Quorum RandomSubsetSystem::sample(math::Rng& rng) const {
  quorum::Quorum q;
  sample_into(q, rng);
  return q;
}

void RandomSubsetSystem::sample_into(quorum::Quorum& out,
                                     math::Rng& rng) const {
  math::sample_without_replacement(n_, q_, rng, out);
}

void RandomSubsetSystem::sample_mask(quorum::QuorumBitset& out,
                                     math::Rng& rng) const {
  out.resize(n_);
  math::sample_without_replacement_bits(n_, q_, rng, out.word_data());
}

void RandomSubsetSystem::sample_masks(quorum::QuorumBitset* out,
                                      std::size_t count,
                                      math::Rng& rng) const {
  for (std::size_t i = 0; i < count; ++i) {
    out[i].resize(n_);
    math::sample_without_replacement_bits(n_, q_, rng, out[i].word_data());
  }
}

double RandomSubsetSystem::load() const {
  // Every server appears in C(n-1, q-1) of the C(n, q) quorums, so the
  // uniform strategy induces load q/n on each (Section 3.4).
  return static_cast<double>(q_) / static_cast<double>(n_);
}

double RandomSubsetSystem::failure_probability(double p) const {
  // All quorums are high quality by symmetry; some quorum is fully alive
  // iff at least q servers survive.
  return quorum::size_based_failure_probability(n_, q_, p);
}

bool RandomSubsetSystem::has_live_quorum(const std::vector<bool>& alive) const {
  std::uint32_t count = 0;
  for (bool a : alive) count += a ? 1u : 0u;
  return count >= q_;
}

bool RandomSubsetSystem::has_live_quorum_mask(
    const quorum::QuorumBitset& alive) const {
  return alive.count() >= q_;
}

double RandomSubsetSystem::ell() const {
  return static_cast<double>(q_) / std::sqrt(static_cast<double>(n_));
}

double RandomSubsetSystem::epsilon() const {
  switch (regime_) {
    case Regime::kIntersecting:
      return nonintersection_exact(n_, q_);
    case Regime::kDissemination:
      return dissemination_epsilon_exact(n_, q_, b_);
    case Regime::kMasking:
      return masking_epsilon_exact(n_, q_, b_, k_);
  }
  return 1.0;
}

double RandomSubsetSystem::epsilon_bound() const {
  switch (regime_) {
    case Regime::kIntersecting:
      return nonintersection_bound(n_, q_);
    case Regime::kDissemination: {
      const double alpha =
          static_cast<double>(b_) / static_cast<double>(n_);
      if (alpha <= 1.0 / 3.0) return dissemination_bound_third(n_, q_);
      return dissemination_bound_alpha(n_, q_, alpha);
    }
    case Regime::kMasking:
      return masking_bound(n_, q_, b_);
  }
  return 1.0;
}

}  // namespace pqs::core

// Epsilon analysis for the uniform random-subset construction R(n, q).
//
// This module computes, for quorums drawn uniformly and independently among
// all q-subsets of an n-universe:
//
//   * the exact nonintersection probability      P(Q ∩ Q' = ∅)
//       (the eps of Definition 3.1 for R(n, q); Lemma 3.15 bounds it),
//   * the exact dissemination failure probability P(Q ∩ Q' ⊆ B), |B| = b
//       (the eps of Definition 4.1; Lemmas 4.3/4.5 bound it),
//   * the exact masking failure probability
//       P(|Q ∩ B| >= k  or  |Q ∩ Q'\B| < k)
//       (the eps of Definition 5.1; Lemmas 5.7/5.9 bound it),
//
// together with the paper's closed-form bounds and minimal-q solvers used to
// regenerate Section 6. Everything is exact log-domain arithmetic; the
// derivations are spelled out in the .cc.
#pragma once

#include <cstdint>
#include <optional>

namespace pqs::core {

// ---- eps-intersecting (Section 3) -------------------------------------

// Exact P(Q ∩ Q' = ∅) = C(n-q, q) / C(n, q).
double nonintersection_exact(std::int64_t n, std::int64_t q);

// Theorem 3.16 bound: e^{-l^2} with l = q / sqrt(n), i.e. e^{-q^2/n}.
double nonintersection_bound(std::int64_t n, std::int64_t q);

// ---- (b, eps)-dissemination (Section 4) --------------------------------

// Exact P(Q ∩ Q' ⊆ B) for any fixed |B| = b (uniformity makes the value
// independent of which B): condition on X = |Q ∩ B| ~ H(b; n, q) and
// require Q' to avoid the q - X servers of Q \ B.
double dissemination_epsilon_exact(std::int64_t n, std::int64_t q,
                                   std::int64_t b);

// Lemma 4.3 bound for b = n/3: 2 e^{-l^2/6} = 2 e^{-q^2/(6n)}.
double dissemination_bound_third(std::int64_t n, std::int64_t q);

// Lemma 4.5 bound for b = alpha n, 1/3 < alpha < 1:
//   eps_alpha = 2/(1-alpha) * alpha^{l^2 (1-sqrt(alpha))/2}.
double dissemination_bound_alpha(std::int64_t n, std::int64_t q, double alpha);

// ---- (b, eps)-masking (Section 5) --------------------------------------

// The paper's read threshold k = q^2/(2n), rounded up to stay strictly
// between E[X] = qb/n and E[Y] = (q^2/n)(1 - q/(ln)) (Section 5.3).
std::int64_t masking_threshold(std::int64_t n, std::int64_t q);

// Exact eps = 1 - P(|Q ∩ B| < k  and  |Q ∩ Q'\B| >= k): condition on
// X = |Q ∩ B|; given X = x, Y = |Q' ∩ (Q\B)| ~ H(q - x; n, q).
double masking_epsilon_exact(std::int64_t n, std::int64_t q, std::int64_t b,
                             std::int64_t k);

// Exact P(|Q ∩ B| >= k) for |B| = b: the probability that enough faulty
// servers land in one quorum to reach the masking threshold — the event
// of Lemma 5.7, and the acceptance probability of a *fabricated* record
// under masking reads (a forged group can only win if >= k colluders
// answer the read). This is the hypergeometric upper tail of
// X = |Q ∩ B| ~ H(b; n, q), the closed-form oracle for the batched
// mask-draw estimator core::estimate_fabrication_epsilon.
double fabrication_epsilon_exact(std::int64_t n, std::int64_t q,
                                 std::int64_t b, std::int64_t k);

// psi_1 / psi_2 of Lemmas 5.7 and 5.9 (l = q/b, valid for l > 2).
double masking_psi1(double l);
double masking_psi2(double l);

// Theorem 5.10 bound: 2 exp(-(q^2/n) min{psi1(l), psi2(l)}), l = q/b.
double masking_bound(std::int64_t n, std::int64_t q, std::int64_t b);

// Expectations of Section 5.3 (Eqs. 13 and 14), used by tests and the
// threshold ablation: E[X] = qb/n and E[Y] = (q^2/n)(1 - b/n).
double expected_faulty_overlap(std::int64_t n, std::int64_t q, std::int64_t b);
double expected_correct_overlap(std::int64_t n, std::int64_t q,
                                std::int64_t b);

// ---- Minimal-q solvers (Section 6 procedure) ---------------------------
//
// Each returns the smallest quorum size q whose exact eps is <= target,
// subject to the availability constraint A = n - q + 1 > b (so q <= n - b),
// or nullopt when no q qualifies. This is the procedure that regenerates
// the l columns of Tables 2-4 ("l was chosen as small as possible subject
// to eps <= .001").

std::optional<std::int64_t> min_q_intersecting(std::int64_t n, double target);
std::optional<std::int64_t> min_q_dissemination(std::int64_t n, std::int64_t b,
                                                double target);
// Uses k = masking_threshold(n, q) for each candidate q.
std::optional<std::int64_t> min_q_masking(std::int64_t n, std::int64_t b,
                                          double target);

}  // namespace pqs::core

// The Monte-Carlo engine: a sharded, deterministic map-reduce runner.
//
// Every estimator in this library follows the same shape — draw N
// independent trials, accumulate a statistic, reduce. run_trials()
// factors that shape out once: the N trials are split over a *fixed* grid
// of shards (independent of the thread count), shard i draws from a
// private RNG substream obtained by jumping a fork of the caller's
// generator i times (math::Rng::jump — 2^128 steps, so substreams never
// overlap), shards execute on a worker pool, and the per-shard results are
// folded in shard order. Consequences:
//
//   * results are a pure function of (caller RNG state, samples, shards) —
//     bit-for-bit identical for 1, 4, or 64 threads, and — because every
//     per-shard body computes through the runtime-dispatched kernel layer
//     (simd/kernels.h), whose tables are bit-identical by contract — on
//     any ISA the dispatcher selects;
//   * the caller's generator advances exactly once (the fork), so
//     back-to-back estimates from one generator stay independent;
//   * throughput scales with the pool size until memory bandwidth wins.
#pragma once

#include <cstdint>
#include <utility>
#include <vector>

#include "math/rng.h"
#include "util/worker_pool.h"

namespace pqs::core {

struct EstimatorOptions {
  // Degree of parallelism (including the calling thread);
  // 0 = hardware concurrency.
  unsigned threads = 0;
  // Fixed work split. Part of the result's identity: changing the shard
  // count changes which substream serves which trial (results stay
  // statistically equivalent but not bit-identical). Keep it comfortably
  // above any realistic thread count so scheduling stays balanced.
  std::uint32_t shards = 64;
};

class Estimator {
 public:
  using Options = EstimatorOptions;

  explicit Estimator(Options options = {});

  unsigned threads() const { return pool_.threads(); }
  std::uint32_t shards() const { return shards_; }

  // Process-wide default engine (hardware concurrency, default shards).
  static Estimator& shared();

  /// Runs `samples` trials split across the fixed shard grid and reduces
  /// the per-shard results deterministically.
  ///
  /// \tparam R         per-shard (and final) result type; shards start
  ///                   from a value-initialized `R{}`.
  /// \param samples    total trials, split as evenly as the grid allows.
  /// \param rng        the caller's generator; advanced exactly once (one
  ///                   fork seeds every shard substream), so back-to-back
  ///                   estimates stay independent.
  /// \param per_shard  called as per_shard(i, shard_samples, shard_rng)
  ///                   -> R from a pool thread; shard_rng is the shard's
  ///                   private, non-overlapping substream.
  /// \param reduce     called as reduce(acc, part) in shard index order.
  /// \return the fold of every shard's result — a pure function of
  ///         (caller RNG state, samples, shard count), bit-identical at
  ///         any thread count.
  template <typename R, typename PerShard, typename Reduce>
  R run_trials(std::uint64_t samples, math::Rng& rng, PerShard&& per_shard,
               Reduce&& reduce) {
    std::vector<math::Rng> rngs = substreams(rng);
    std::vector<R> parts(shards_, R{});
    const std::uint64_t base = samples / shards_;
    const std::uint64_t extra = samples % shards_;
    pool_.run(shards_, [&](std::uint64_t i) {
      const std::uint64_t shard_samples = base + (i < extra ? 1 : 0);
      parts[i] = per_shard(static_cast<std::uint32_t>(i), shard_samples,
                           rngs[i]);
    });
    R acc{};
    for (auto& part : parts) reduce(acc, std::move(part));
    return acc;
  }

 private:
  // Shard generators: fork the caller's rng once, then peel off one
  // substream per shard.
  std::vector<math::Rng> substreams(math::Rng& rng) const;

  std::uint32_t shards_;
  util::WorkerPool pool_;
};

}  // namespace pqs::core

// Monte-Carlo verifiers: statistical cross-checks of every exact analysis.
//
// The library computes epsilon, load, and failure probability analytically;
// these estimators re-measure each quantity by direct simulation of the
// access strategy so tests can confirm the two agree, and so benches can
// demonstrate behaviour (e.g. of non-uniform strategies, Section 3.1's
// remark) that has no closed form.
//
// All estimators run on core::Estimator: trials are sharded over RNG
// substreams and executed on a worker pool, with results bit-identical for
// any thread count (see estimator.h). Each estimator takes an optional
// engine argument; the default is the process-wide shared engine at
// hardware concurrency. Inner loops draw via QuorumSystem::sample_mask
// into per-shard QuorumBitset scratch — bits are set directly, with no
// sorted-vector round trip — and compare quorums with word-parallel
// bitset operations; alive masks for the failure-probability estimator
// come from math::BernoulliBlockSampler, 64 Bernoulli lanes per digit
// word. No per-draw allocation anywhere.
//
// Determinism contract: for a fixed (seed, samples, shard count) every
// estimator returns bit-identical results at any thread count. The drawn
// trial sequence itself is a property of the current draw-path generation
// (mask draws + batched Bernoulli); it matched the PR-1 vector paths
// draw-for-draw for quorum sampling, but alive masks consume the stream
// differently than the old per-server loop, so failure-probability
// estimates are statistically equivalent, not bit-equal, to PR 1.
#pragma once

#include <cstdint>
#include <vector>

#include "core/estimator.h"
#include "math/rng.h"
#include "math/stats.h"
#include "quorum/quorum_system.h"
#include "stats/load_profile.h"

namespace pqs::core {

// Frequency of Q ∩ Q' = ∅ over `samples` independently drawn quorum pairs.
math::Proportion estimate_nonintersection(
    const quorum::QuorumSystem& system, std::uint64_t samples, math::Rng& rng,
    Estimator& engine = Estimator::shared());

// Frequency of Q ∩ Q' ⊆ B where B = {0..b-1} (WLOG for symmetric systems).
math::Proportion estimate_dissemination_epsilon(
    const quorum::QuorumSystem& system, std::uint32_t b, std::uint64_t samples,
    math::Rng& rng, Estimator& engine = Estimator::shared());

// Frequency of |Q ∩ B| >= k or |Q ∩ Q' \ B| < k, B = {0..b-1}
// (the masking eps of Definition 5.1).
math::Proportion estimate_masking_epsilon(
    const quorum::QuorumSystem& system, std::uint32_t b, std::uint32_t k,
    std::uint64_t samples, math::Rng& rng,
    Estimator& engine = Estimator::shared());

// Frequency of |Q ∩ B| >= k over single quorum draws, B = {0..b-1} —
// the fabrication-acceptance event of Lemma 5.7: a forged record wins a
// masking read only if at least k colluders land in the read quorum.
// Oracle: core::fabrication_epsilon_exact (hypergeometric upper tail).
// Unlike the Definition 5.1 pair estimators this draws ONE mask per
// trial; mask chunks are judged by the strided batch_popcount_prefix
// kernel, bit-identical at any thread count.
math::Proportion estimate_fabrication_epsilon(
    const quorum::QuorumSystem& system, std::uint32_t b, std::uint32_t k,
    std::uint64_t samples, math::Rng& rng,
    Estimator& engine = Estimator::shared());

// Per-server access-frequency profile over `samples` draws: hits[u]
// estimates l_w(u) * samples, max_load() estimates the induced load L_w,
// and the profile carries the shape measures (mean, imbalance, top-k hot
// servers) the scalar load discards. This is the one load-estimation entry
// point; draws run in sample_masks chunks tallied by the strided
// column-accumulate kernel (simd::Kernels::batch_column_accumulate), with
// hit counts bit-identical to a per-draw set-bit walk at any thread count.
stats::LoadProfile estimate_load_profile(
    const quorum::QuorumSystem& system, std::uint64_t samples, math::Rng& rng,
    Estimator& engine = Estimator::shared());

// Thin wrappers over estimate_load_profile, kept so existing callers (and
// the examples) don't churn: the loads vector is profile.loads(), the
// scalar load is profile.max_load(). Same draws, same results.
std::vector<double> estimate_server_loads(
    const quorum::QuorumSystem& system, std::uint64_t samples, math::Rng& rng,
    Estimator& engine = Estimator::shared());
double estimate_load(const quorum::QuorumSystem& system,
                     std::uint64_t samples, math::Rng& rng,
                     Estimator& engine = Estimator::shared());

// How estimate_failure_probability evaluates each trial's alive mask. Both
// paths draw identical masks from the same rng stream (batched Bernoulli),
// so for any fixed seed the two return bit-identical Proportions — the
// scalar path exists as the reference that keeps every construction's
// word-parallel has_live_quorum_mask honest.
enum class LivenessCheck {
  kWordParallel,      // has_live_quorum_mask on the bitset (the fast path)
  kScalarReference,   // expand to vector<bool>, has_live_quorum
};

// Frequency of "no live quorum" when every server crashes independently
// with probability p.
math::Proportion estimate_failure_probability(
    const quorum::QuorumSystem& system, double p, std::uint64_t samples,
    math::Rng& rng, Estimator& engine = Estimator::shared(),
    LivenessCheck check = LivenessCheck::kWordParallel);

// The Section 3.1 remark made measurable: a *non-uniform* strategy over the
// same set system {q-subsets of n} that draws each quorum entirely from one
// of two disjoint halves of the universe (each half with probability 1/2).
// Its nonintersection probability is ~1/2 regardless of q — the advertised
// eps of R(n, q) holds only for the uniform strategy.
math::Proportion estimate_split_strategy_nonintersection(
    std::uint32_t n, std::uint32_t q, std::uint64_t samples, math::Rng& rng,
    Estimator& engine = Estimator::shared());

}  // namespace pqs::core

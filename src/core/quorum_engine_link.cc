// Definitions for the quorum/ -> engine seam declared in
// quorum/engine_link.h. This file lives in core/ (which owns the engine);
// the declarations live in quorum/ (which owns the callers). See the
// header for why the split exists.
#include "quorum/engine_link.h"

#include "core/monte_carlo.h"
#include "math/rng.h"

namespace pqs::quorum {

double engine_failure_probability(const QuorumSystem& system, double p,
                                  std::uint64_t samples, std::uint64_t seed) {
  math::Rng rng(seed);
  return core::estimate_failure_probability(system, p, samples, rng)
      .estimate();
}

double engine_load(const QuorumSystem& system, std::uint64_t samples,
                   std::uint64_t seed) {
  math::Rng rng(seed);
  return core::estimate_load(system, samples, rng);
}

}  // namespace pqs::quorum

// R(n, q) and R_k(n, q): the paper's probabilistic quorum constructions.
//
// Definition 3.13: quorums are all subsets of size q of an n-universe and
// the access strategy picks one uniformly at random. The same set system
// doubles as:
//   * an eps-intersecting quorum system (Theorem 3.16),
//   * a (b, eps)-dissemination quorum system (Theorems 4.4 / 4.6),
//   * with a read threshold k, the (b, eps)-masking system R_k(n, q)
//     (Definition 5.6, Theorem 5.10).
//
// The construction is symmetric and its strategy uniform, so every quorum is
// high quality (Section 3.4, "Quality Measures"); the probabilistic fault
// tolerance is n - q + 1 and the failure probability is the exact binomial
// tail P(#crashed > n - q).
#pragma once

#include <cstdint>
#include <string>

#include "quorum/quorum_system.h"

namespace pqs::core {

// How the system is being used; affects which epsilon() is reported and how
// read results must be interpreted by the protocols.
enum class Regime {
  kIntersecting,   // benign failures, Section 3
  kDissemination,  // Byzantine + self-verifying data, Section 4
  kMasking,        // Byzantine + arbitrary data, Section 5
};

const char* regime_name(Regime regime);

class RandomSubsetSystem final : public quorum::QuorumSystem {
 public:
  // Plain eps-intersecting system R(n, q).
  RandomSubsetSystem(std::uint32_t n, std::uint32_t q);

  // Factories solving for the smallest q meeting `target_epsilon`
  // (the Section 6 procedure). Throw std::invalid_argument when no quorum
  // size satisfies the target under the availability constraint.
  static RandomSubsetSystem intersecting(std::uint32_t n,
                                         double target_epsilon);
  static RandomSubsetSystem dissemination(std::uint32_t n, std::uint32_t b,
                                          double target_epsilon);
  // Also installs the read threshold k = ceil(q^2 / 2n).
  static RandomSubsetSystem masking(std::uint32_t n, std::uint32_t b,
                                    double target_epsilon);

  // Explicit-parameter constructors for studies that sweep q directly.
  static RandomSubsetSystem with_byzantine(std::uint32_t n, std::uint32_t q,
                                           std::uint32_t b, Regime regime);

  // -- QuorumSystem interface ------------------------------------------
  std::string name() const override;
  std::uint32_t universe_size() const override { return n_; }
  quorum::Quorum sample(math::Rng& rng) const override;
  void sample_into(quorum::Quorum& out, math::Rng& rng) const override;
  void sample_mask(quorum::QuorumBitset& out, math::Rng& rng) const override;
  void sample_masks(quorum::QuorumBitset* out, std::size_t count,
                    math::Rng& rng) const override;
  std::uint32_t min_quorum_size() const override { return q_; }
  double load() const override;
  std::uint32_t fault_tolerance() const override { return n_ - q_ + 1; }
  double failure_probability(double p) const override;
  bool has_live_quorum(const std::vector<bool>& alive) const override;
  bool has_live_quorum_mask(const quorum::QuorumBitset& alive) const override;

  // -- Probabilistic-quorum specifics ------------------------------------
  Regime regime() const { return regime_; }
  std::uint32_t quorum_size() const { return q_; }
  // l = q / sqrt(n), the paper's construction parameter.
  double ell() const;
  // Byzantine resilience the system was configured for (0 in the benign
  // regime).
  std::uint32_t byzantine_threshold() const { return b_; }
  // Masking read threshold k (1 in other regimes, unused).
  std::uint32_t read_threshold() const { return k_; }

  // Exact epsilon for the configured regime (Definitions 3.1 / 4.1 / 5.1).
  double epsilon() const;
  // The matching closed-form bound from the paper (Theorems 3.16, 4.4/4.6,
  // 5.10); always >= epsilon().
  double epsilon_bound() const;

 private:
  RandomSubsetSystem(std::uint32_t n, std::uint32_t q, std::uint32_t b,
                     std::uint32_t k, Regime regime);

  std::uint32_t n_;
  std::uint32_t q_;
  std::uint32_t b_;
  std::uint32_t k_;
  Regime regime_;
};

}  // namespace pqs::core

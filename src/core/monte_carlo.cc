#include "core/monte_carlo.h"

#include <algorithm>

#include "math/bernoulli.h"
#include "math/sampling.h"
#include "quorum/bitset.h"
#include "quorum/mask_batch.h"
#include "simd/kernels.h"
#include "util/require.h"

namespace pqs::core {

namespace {

// Folds Bernoulli shard counters; shard order is fixed by the engine, so
// the merged Proportion is bit-identical at any thread count.
void merge_proportion(math::Proportion& acc, const math::Proportion& part) {
  acc.add(part.successes(), part.trials());
}

// Masks per sample_masks() chunk in the pair estimators (8 trials of two
// draws each). Chunking amortizes the virtual draw dispatch; the rng stream
// is untouched — sample_masks consumes exactly what the per-draw calls did,
// so estimates stay bit-identical at any chunk size.
constexpr std::size_t kDrawBatch = 16;
constexpr std::size_t kPairBatch = kDrawBatch / 2;

// Draws quorum pairs through the batched entry point into one flat
// MaskBatch in [a0 b0 a1 b1 ...] order — the exact draw order of the
// former per-trial sample_mask pairs — then hands each filled chunk to
// score(batch, pairs, result), which judges all pairs with strided batch
// kernels over the flat buffer and appends one verdict per pair.
template <typename Score>
math::Proportion pair_trials(const quorum::QuorumSystem& system,
                             std::uint64_t trials, math::Rng& rng,
                             Score&& score) {
  quorum::MaskBatch batch(system.universe_size(), kDrawBatch);
  math::Proportion result;
  std::uint64_t done = 0;
  while (done < trials) {
    const std::size_t pairs = static_cast<std::size_t>(
        std::min<std::uint64_t>(trials - done, kPairBatch));
    system.sample_masks(batch.masks(), pairs * 2, rng);
    score(batch, pairs, result);
    done += pairs;
  }
  return result;
}

}  // namespace

math::Proportion estimate_nonintersection(const quorum::QuorumSystem& system,
                                          std::uint64_t samples,
                                          math::Rng& rng, Estimator& engine) {
  return engine.run_trials<math::Proportion>(
      samples, rng,
      [&](std::uint32_t, std::uint64_t shard_samples, math::Rng& shard_rng) {
        return pair_trials(
            system, shard_samples, shard_rng,
            [](quorum::MaskBatch& batch, std::size_t pairs,
               math::Proportion& result) {
              const std::size_t w = batch.words_per_mask();
              std::uint32_t overlap[kPairBatch];
              simd::active().batch_and_popcount_from(
                  batch.words(), batch.words() + w, 2 * w, pairs, w, 0,
                  overlap);
              for (std::size_t i = 0; i < pairs; ++i) {
                result.add(overlap[i] == 0);
              }
            });
      },
      merge_proportion);
}

math::Proportion estimate_dissemination_epsilon(
    const quorum::QuorumSystem& system, std::uint32_t b, std::uint64_t samples,
    math::Rng& rng, Estimator& engine) {
  PQS_REQUIRE(b <= system.universe_size(), "byzantine count");
  return engine.run_trials<math::Proportion>(
      samples, rng,
      [&](std::uint32_t, std::uint64_t shard_samples, math::Rng& shard_rng) {
        return pair_trials(
            system, shard_samples, shard_rng,
            [b](quorum::MaskBatch& batch, std::size_t pairs,
                math::Proportion& result) {
              // Failure event: every common server is Byzantine
              // (Q ∩ Q' ⊆ B), i.e. no overlap outside the prefix {0..b-1}.
              const std::size_t w = batch.words_per_mask();
              std::uint32_t correct_overlap[kPairBatch];
              simd::active().batch_and_popcount_from(
                  batch.words(), batch.words() + w, 2 * w, pairs, w, b,
                  correct_overlap);
              for (std::size_t i = 0; i < pairs; ++i) {
                result.add(correct_overlap[i] == 0);
              }
            });
      },
      merge_proportion);
}

math::Proportion estimate_masking_epsilon(const quorum::QuorumSystem& system,
                                          std::uint32_t b, std::uint32_t k,
                                          std::uint64_t samples,
                                          math::Rng& rng, Estimator& engine) {
  PQS_REQUIRE(b <= system.universe_size(), "byzantine count");
  return engine.run_trials<math::Proportion>(
      samples, rng,
      [&](std::uint32_t, std::uint64_t shard_samples, math::Rng& shard_rng) {
        return pair_trials(
            system, shard_samples, shard_rng,
            [b, k](quorum::MaskBatch& batch, std::size_t pairs,
                   math::Proportion& result) {
              // Pair layout: even masks are the read quorums, odd the
              // write quorums. One strided sweep per question.
              const std::size_t w = batch.words_per_mask();
              std::uint32_t faulty_in_read[kPairBatch];
              std::uint32_t fresh_correct[kPairBatch];
              const auto& kern = simd::active();
              kern.batch_popcount_prefix(batch.words(), 2 * w, pairs, b,
                                         faulty_in_read);
              kern.batch_and_popcount_from(batch.words(), batch.words() + w,
                                           2 * w, pairs, w, b, fresh_correct);
              for (std::size_t i = 0; i < pairs; ++i) {
                result.add(faulty_in_read[i] >= k || fresh_correct[i] < k);
              }
            });
      },
      merge_proportion);
}

math::Proportion estimate_fabrication_epsilon(
    const quorum::QuorumSystem& system, std::uint32_t b, std::uint32_t k,
    std::uint64_t samples, math::Rng& rng, Estimator& engine) {
  PQS_REQUIRE(b <= system.universe_size(), "byzantine count");
  return engine.run_trials<math::Proportion>(
      samples, rng,
      [&](std::uint32_t, std::uint64_t shard_samples, math::Rng& shard_rng) {
        // Single-draw trials: one quorum mask per trial, judged in
        // kDrawBatch chunks by one strided prefix-popcount sweep.
        quorum::MaskBatch batch(system.universe_size(), kDrawBatch);
        const std::size_t w = batch.words_per_mask();
        math::Proportion result;
        std::uint64_t done = 0;
        while (done < shard_samples) {
          const std::size_t draws = static_cast<std::size_t>(
              std::min<std::uint64_t>(shard_samples - done, kDrawBatch));
          system.sample_masks(batch.masks(), draws, shard_rng);
          std::uint32_t faulty_in_quorum[kDrawBatch];
          simd::active().batch_popcount_prefix(batch.words(), w, draws, b,
                                               faulty_in_quorum);
          for (std::size_t i = 0; i < draws; ++i) {
            result.add(faulty_in_quorum[i] >= k);
          }
          done += draws;
        }
        return result;
      },
      merge_proportion);
}

stats::LoadProfile estimate_load_profile(const quorum::QuorumSystem& system,
                                         std::uint64_t samples,
                                         math::Rng& rng, Estimator& engine) {
  PQS_REQUIRE(samples > 0, "samples");
  const std::uint32_t n = system.universe_size();
  auto hits = engine.run_trials<std::vector<std::uint64_t>>(
      samples, rng,
      [&](std::uint32_t, std::uint64_t shard_samples, math::Rng& shard_rng) {
        // The histogram is word-major (64 slots per mask word, so slots
        // >= n mirror the always-zero padding bits); each filled chunk is
        // tallied by one strided column-accumulate sweep instead of a
        // per-draw set-bit walk. Exact integer sums — bit-identical to
        // the walk on every ISA.
        quorum::MaskBatch batch(n, kDrawBatch);
        const std::size_t w = batch.words_per_mask();
        std::vector<std::uint64_t> hist(64 * w, 0);
        std::uint64_t done = 0;
        while (done < shard_samples) {
          const std::size_t draws = static_cast<std::size_t>(
              std::min<std::uint64_t>(shard_samples - done, kDrawBatch));
          system.sample_masks(batch.masks(), draws, shard_rng);
          simd::active().batch_column_accumulate(batch.words(), w, draws, w,
                                                 hist.data());
          done += draws;
        }
        hist.resize(n);  // drop the padding slots, all zero by invariant
        return hist;
      },
      [n](std::vector<std::uint64_t>& acc,
          const std::vector<std::uint64_t>& part) {
        acc.resize(n, 0);
        for (std::uint32_t u = 0; u < n; ++u) acc[u] += part[u];
      });
  return stats::LoadProfile(std::move(hits), samples);
}

std::vector<double> estimate_server_loads(const quorum::QuorumSystem& system,
                                          std::uint64_t samples,
                                          math::Rng& rng, Estimator& engine) {
  return estimate_load_profile(system, samples, rng, engine).loads();
}

double estimate_load(const quorum::QuorumSystem& system, std::uint64_t samples,
                     math::Rng& rng, Estimator& engine) {
  return estimate_load_profile(system, samples, rng, engine).max_load();
}

math::Proportion estimate_failure_probability(
    const quorum::QuorumSystem& system, double p, std::uint64_t samples,
    math::Rng& rng, Estimator& engine, LivenessCheck check) {
  const std::uint32_t n = system.universe_size();
  const math::BernoulliBlockSampler dead(p);
  return engine.run_trials<math::Proportion>(
      samples, rng,
      [&](std::uint32_t, std::uint64_t shard_samples, math::Rng& shard_rng) {
        quorum::QuorumBitset alive(n);
        std::vector<bool> scalar_alive;
        math::Proportion result;
        for (std::uint64_t s = 0; s < shard_samples; ++s) {
          // One trial's alive mask: every server dead independently with
          // probability p, drawn as inverted Bernoulli blocks through the
          // dispatched kernel.
          dead.fill(alive.word_data(), alive.word_count(), shard_rng,
                    /*invert=*/true);
          alive.mask_padding();
          bool live;
          if (check == LivenessCheck::kWordParallel) {
            live = system.has_live_quorum_mask(alive);
          } else {
            scalar_alive.assign(n, false);
            for (std::uint32_t u = 0; u < n; ++u) {
              if (alive.test(u)) scalar_alive[u] = true;
            }
            live = system.has_live_quorum(scalar_alive);
          }
          result.add(!live);
        }
        return result;
      },
      merge_proportion);
}

math::Proportion estimate_split_strategy_nonintersection(std::uint32_t n,
                                                         std::uint32_t q,
                                                         std::uint64_t samples,
                                                         math::Rng& rng,
                                                         Estimator& engine) {
  PQS_REQUIRE(q <= n / 2, "split strategy needs q <= n/2");
  const std::uint32_t half = n / 2;
  return engine.run_trials<math::Proportion>(
      samples, rng,
      [&](std::uint32_t, std::uint64_t shard_samples, math::Rng& shard_rng) {
        // Mask draws over a *translated* sub-universe: Floyd's draw fills
        // a half-width word scratch directly (no member list, no sort),
        // and or_shifted translates it onto the full mask at offset 0 or
        // n/2 depending on the half coin. Same rng consumption as the
        // old sorted-vector flow (sample_without_replacement_bits draws
        // exactly like the vector overload, then the coin), so results
        // stay bit-identical to the scalar reference in
        // tests/test_split_strategy.cc.
        quorum::QuorumBitset mask_a(n), mask_b(n);
        const std::size_t half_words = (half + 63) / 64;
        std::vector<std::uint64_t> draw_words(half_words);
        auto draw = [&](quorum::QuorumBitset& out) {
          std::fill(draw_words.begin(), draw_words.end(), 0);
          math::sample_without_replacement_bits(half, q, shard_rng,
                                                draw_words.data());
          const std::uint32_t offset = shard_rng.chance(0.5) ? half : 0;
          out.clear();
          out.or_shifted(draw_words.data(), half_words, offset);
        };
        math::Proportion result;
        for (std::uint64_t s = 0; s < shard_samples; ++s) {
          draw(mask_a);
          draw(mask_b);
          result.add(!mask_a.intersects(mask_b));
        }
        return result;
      },
      merge_proportion);
}

}  // namespace pqs::core

#include "core/monte_carlo.h"

#include <algorithm>

#include "math/sampling.h"
#include "util/require.h"

namespace pqs::core {

namespace {

// |quorum ∩ {0..b-1}| for a sorted quorum.
std::uint32_t overlap_with_prefix(const quorum::Quorum& q, std::uint32_t b) {
  std::uint32_t count = 0;
  for (auto u : q) {
    if (u < b) ++count;
    else break;
  }
  return count;
}

// |a ∩ b \ {0..prefix-1}| for sorted quorums.
std::uint32_t overlap_excluding_prefix(const quorum::Quorum& a,
                                       const quorum::Quorum& b,
                                       std::uint32_t prefix) {
  std::uint32_t count = 0;
  auto ia = a.begin();
  auto ib = b.begin();
  while (ia != a.end() && ib != b.end()) {
    if (*ia == *ib) {
      if (*ia >= prefix) ++count;
      ++ia;
      ++ib;
    } else if (*ia < *ib) {
      ++ia;
    } else {
      ++ib;
    }
  }
  return count;
}

}  // namespace

math::Proportion estimate_nonintersection(const quorum::QuorumSystem& system,
                                          std::uint64_t samples,
                                          math::Rng& rng) {
  math::Proportion result;
  for (std::uint64_t s = 0; s < samples; ++s) {
    const auto a = system.sample(rng);
    const auto b = system.sample(rng);
    result.add(!math::sorted_intersects(a, b));
  }
  return result;
}

math::Proportion estimate_dissemination_epsilon(
    const quorum::QuorumSystem& system, std::uint32_t b, std::uint64_t samples,
    math::Rng& rng) {
  PQS_REQUIRE(b <= system.universe_size(), "byzantine count");
  math::Proportion result;
  for (std::uint64_t s = 0; s < samples; ++s) {
    const auto qa = system.sample(rng);
    const auto qb = system.sample(rng);
    // Failure event: every common server is Byzantine (Q ∩ Q' ⊆ B).
    result.add(overlap_excluding_prefix(qa, qb, b) == 0);
  }
  return result;
}

math::Proportion estimate_masking_epsilon(const quorum::QuorumSystem& system,
                                          std::uint32_t b, std::uint32_t k,
                                          std::uint64_t samples,
                                          math::Rng& rng) {
  PQS_REQUIRE(b <= system.universe_size(), "byzantine count");
  math::Proportion result;
  for (std::uint64_t s = 0; s < samples; ++s) {
    const auto read_q = system.sample(rng);
    const auto write_q = system.sample(rng);
    const std::uint32_t faulty_in_read = overlap_with_prefix(read_q, b);
    const std::uint32_t fresh_correct =
        overlap_excluding_prefix(read_q, write_q, b);
    result.add(faulty_in_read >= k || fresh_correct < k);
  }
  return result;
}

std::vector<double> estimate_server_loads(const quorum::QuorumSystem& system,
                                          std::uint64_t samples,
                                          math::Rng& rng) {
  PQS_REQUIRE(samples > 0, "samples");
  std::vector<std::uint64_t> hits(system.universe_size(), 0);
  for (std::uint64_t s = 0; s < samples; ++s) {
    for (auto u : system.sample(rng)) ++hits[u];
  }
  std::vector<double> loads(hits.size());
  for (std::size_t u = 0; u < hits.size(); ++u) {
    loads[u] = static_cast<double>(hits[u]) / static_cast<double>(samples);
  }
  return loads;
}

double estimate_load(const quorum::QuorumSystem& system, std::uint64_t samples,
                     math::Rng& rng) {
  const auto loads = estimate_server_loads(system, samples, rng);
  return *std::max_element(loads.begin(), loads.end());
}

math::Proportion estimate_failure_probability(
    const quorum::QuorumSystem& system, double p, std::uint64_t samples,
    math::Rng& rng) {
  math::Proportion result;
  std::vector<bool> alive(system.universe_size());
  for (std::uint64_t s = 0; s < samples; ++s) {
    for (std::uint32_t u = 0; u < alive.size(); ++u) {
      alive[u] = !rng.chance(p);
    }
    result.add(!system.has_live_quorum(alive));
  }
  return result;
}

math::Proportion estimate_split_strategy_nonintersection(std::uint32_t n,
                                                         std::uint32_t q,
                                                         std::uint64_t samples,
                                                         math::Rng& rng) {
  PQS_REQUIRE(q <= n / 2, "split strategy needs q <= n/2");
  const std::uint32_t half = n / 2;
  auto draw = [&]() {
    quorum::Quorum quorum_ids = math::sample_without_replacement(half, q, rng);
    if (rng.chance(0.5)) {
      for (auto& u : quorum_ids) u += half;
    }
    return quorum_ids;
  };
  math::Proportion result;
  for (std::uint64_t s = 0; s < samples; ++s) {
    const auto a = draw();
    const auto b = draw();
    result.add(!math::sorted_intersects(a, b));
  }
  return result;
}

}  // namespace pqs::core

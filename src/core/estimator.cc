#include "core/estimator.h"

#include "util/require.h"

namespace pqs::core {

Estimator::Estimator(Options options)
    : shards_(options.shards), pool_(options.threads) {
  PQS_REQUIRE(options.shards >= 1, "estimator needs at least one shard");
}

Estimator& Estimator::shared() {
  static Estimator engine;
  return engine;
}

std::vector<math::Rng> Estimator::substreams(math::Rng& rng) const {
  math::Rng base = rng.fork();
  std::vector<math::Rng> out;
  out.reserve(shards_);
  for (std::uint32_t i = 0; i < shards_; ++i) out.push_back(base.substream());
  return out;
}

}  // namespace pqs::core

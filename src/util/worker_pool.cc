#include "util/worker_pool.h"

#include <algorithm>

namespace pqs::util {

unsigned WorkerPool::default_threads() {
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1u : hw;
}

WorkerPool::WorkerPool(unsigned threads)
    : threads_(threads == 0 ? default_threads() : threads) {
  workers_.reserve(threads_ - 1);
  for (unsigned i = 0; i + 1 < threads_; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

WorkerPool::~WorkerPool() {
  {
    std::lock_guard<std::mutex> lk(mu_);
    stop_ = true;
  }
  work_cv_.notify_all();
  for (auto& w : workers_) w.join();
}

void WorkerPool::drain() {
  for (;;) {
    if (failed_.load(std::memory_order_relaxed)) break;
    const std::uint64_t i = next_.fetch_add(1, std::memory_order_relaxed);
    if (i >= count_) break;
    try {
      (*fn_)(i);
    } catch (...) {
      failed_.store(true, std::memory_order_relaxed);
      std::lock_guard<std::mutex> lk(mu_);
      if (!error_) error_ = std::current_exception();
    }
  }
}

void WorkerPool::worker_loop() {
  std::uint64_t seen_generation = 0;
  for (;;) {
    {
      std::unique_lock<std::mutex> lk(mu_);
      work_cv_.wait(
          lk, [&] { return stop_ || generation_ != seen_generation; });
      if (stop_) return;
      seen_generation = generation_;
    }
    drain();
    {
      std::lock_guard<std::mutex> lk(mu_);
      if (--active_ == 0) done_cv_.notify_all();
    }
  }
}

void WorkerPool::run(std::uint64_t count,
                     const std::function<void(std::uint64_t)>& fn) {
  if (count == 0) return;
  if (workers_.empty() || count == 1) {
    // Inline path, also taken by single-threaded pools. An exception
    // propagates at once, skipping the remaining indices — the same
    // abort-the-batch contract the parallel path implements via failed_.
    for (std::uint64_t i = 0; i < count; ++i) fn(i);
    return;
  }
  // One batch at a time: the pool's batch state is single-slot, and the
  // shared estimator may be driven from several caller threads.
  std::lock_guard<std::mutex> run_lock(run_mu_);
  {
    std::lock_guard<std::mutex> lk(mu_);
    fn_ = &fn;
    count_ = count;
    next_.store(0, std::memory_order_relaxed);
    failed_.store(false, std::memory_order_relaxed);
    error_ = nullptr;
    active_ = static_cast<unsigned>(workers_.size());
    ++generation_;
  }
  work_cv_.notify_all();
  drain();  // the calling thread participates
  std::exception_ptr error;
  {
    std::unique_lock<std::mutex> lk(mu_);
    done_cv_.wait(lk, [&] { return active_ == 0; });
    error = error_;
    fn_ = nullptr;
  }
  if (error) std::rethrow_exception(error);
}

}  // namespace pqs::util

#include "util/table.h"

#include <algorithm>
#include <cstdio>
#include <ostream>
#include <sstream>

namespace pqs::util {

std::string fixed(double value, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, value);
  return buf;
}

std::string sci(double value, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*e", precision, value);
  return buf;
}

TextTable::TextTable(std::vector<std::string> header)
    : header_(std::move(header)) {}

TextTable& TextTable::row() {
  rows_.emplace_back();
  return *this;
}

TextTable& TextTable::cell(std::string_view text) {
  rows_.back().emplace_back(text);
  return *this;
}

TextTable& TextTable::cell(long long value) {
  return cell(std::to_string(value));
}

TextTable& TextTable::cell(unsigned long long value) {
  return cell(std::to_string(value));
}

TextTable& TextTable::cell(long value) {
  return cell(std::to_string(value));
}

TextTable& TextTable::cell(int value) { return cell(std::to_string(value)); }

TextTable& TextTable::cell(std::size_t value) {
  return cell(std::to_string(value));
}

TextTable& TextTable::cell(double value, int precision) {
  return cell(fixed(value, precision));
}

TextTable& TextTable::cell_sci(double value, int precision) {
  return cell(sci(value, precision));
}

std::string TextTable::render(int indent) const {
  std::vector<std::size_t> widths(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) widths[c] = header_[c].size();
  for (const auto& r : rows_) {
    for (std::size_t c = 0; c < r.size() && c < widths.size(); ++c) {
      widths[c] = std::max(widths[c], r[c].size());
    }
  }
  const std::string pad(static_cast<std::size_t>(indent), ' ');
  std::ostringstream os;
  auto emit_row = [&](const std::vector<std::string>& cells) {
    os << pad;
    for (std::size_t c = 0; c < widths.size(); ++c) {
      const std::string& s = c < cells.size() ? cells[c] : std::string();
      os << (c == 0 ? "| " : " ");
      os << s << std::string(widths[c] - s.size(), ' ') << " |";
    }
    os << '\n';
  };
  emit_row(header_);
  os << pad;
  for (std::size_t c = 0; c < widths.size(); ++c) {
    os << (c == 0 ? "|" : "") << std::string(widths[c] + 2, '-') << "|";
  }
  os << '\n';
  for (const auto& r : rows_) emit_row(r);
  return os.str();
}

void TextTable::print(std::ostream& os, int indent) const {
  os << render(indent);
}

CsvWriter::CsvWriter(std::vector<std::string> header)
    : columns_(header.size()) {
  row(header);
}

std::string CsvWriter::escape(const std::string& s) {
  if (s.find_first_of(",\"\n") == std::string::npos) return s;
  std::string out = "\"";
  for (char ch : s) {
    if (ch == '"') out += "\"\"";
    else out += ch;
  }
  out += '"';
  return out;
}

CsvWriter& CsvWriter::row(const std::vector<std::string>& cells) {
  for (std::size_t c = 0; c < cells.size(); ++c) {
    if (c) out_ += ',';
    out_ += escape(cells[c]);
  }
  out_ += '\n';
  return *this;
}

std::string CsvWriter::str() const { return out_; }

void banner(std::ostream& os, std::string_view title) {
  os << "\n==== " << title << " ====\n\n";
}

}  // namespace pqs::util

// A bounded lock-free MPSC ring buffer (Vyukov-style sequence slots).
//
// The serving tier's request router needs one queue per shard that many
// producer (load-generator) threads can push into while exactly one shard
// worker drains it, with no locks on either side. Each slot carries an
// atomic sequence number: a producer claims a position with one CAS on the
// tail counter and publishes the payload with a release store of the slot
// sequence; the consumer observes payloads through an acquire load of the
// same sequence, so the element copy itself never races (TSan-clean by
// construction). Capacity is fixed at construction and rounded up to a
// power of two; a full ring rejects the push (try_push returns false) so
// callers choose their own backpressure policy.
//
// Orderings: pushes from one producer dequeue in that producer's order
// (positions are claimed in CAS order, and the consumer drains positions
// in order); pushes from different producers interleave arbitrarily.
// pop_batch must only ever be called from one thread at a time — the
// single-consumer half of the contract is not checked.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <type_traits>

#include "util/require.h"

namespace pqs::util {

template <typename T>
class MpscRing {
  static_assert(std::is_nothrow_copy_assignable_v<T>,
                "ring payloads are copied under the slot protocol");

 public:
  explicit MpscRing(std::size_t capacity) {
    PQS_REQUIRE(capacity >= 2, "ring capacity");
    std::size_t cap = 1;
    while (cap < capacity) cap <<= 1;
    capacity_ = cap;
    mask_ = cap - 1;
    slots_ = std::make_unique<Slot[]>(cap);
    for (std::size_t i = 0; i < cap; ++i) {
      slots_[i].sequence.store(i, std::memory_order_relaxed);
    }
  }

  MpscRing(const MpscRing&) = delete;
  MpscRing& operator=(const MpscRing&) = delete;

  std::size_t capacity() const { return capacity_; }

  // Multi-producer push. Returns false when the ring is full (the slot a
  // producer would claim has not been consumed yet).
  bool try_push(const T& value) {
    std::uint64_t pos = tail_.load(std::memory_order_relaxed);
    for (;;) {
      Slot& slot = slots_[pos & mask_];
      const std::uint64_t seq = slot.sequence.load(std::memory_order_acquire);
      const std::int64_t dif =
          static_cast<std::int64_t>(seq) - static_cast<std::int64_t>(pos);
      if (dif == 0) {
        if (tail_.compare_exchange_weak(pos, pos + 1,
                                        std::memory_order_relaxed)) {
          slot.value = value;
          slot.sequence.store(pos + 1, std::memory_order_release);
          return true;
        }
        // CAS refreshed pos; retry against the new position.
      } else if (dif < 0) {
        return false;  // the slot still holds an unconsumed element
      } else {
        pos = tail_.load(std::memory_order_relaxed);
      }
    }
  }

  // Single-consumer batch dequeue: copies up to `max` elements into `out`
  // and returns how many were taken (0 when the ring is empty).
  std::size_t pop_batch(T* out, std::size_t max) {
    std::size_t taken = 0;
    while (taken < max) {
      Slot& slot = slots_[head_ & mask_];
      const std::uint64_t seq = slot.sequence.load(std::memory_order_acquire);
      if (seq != head_ + 1) break;  // next element not published yet
      out[taken++] = slot.value;
      slot.sequence.store(head_ + capacity_, std::memory_order_release);
      ++head_;
    }
    return taken;
  }

  // Consumer-side emptiness probe (racy for producers by nature: a push
  // may land right after the check).
  bool empty() const {
    const Slot& slot = slots_[head_ & mask_];
    return slot.sequence.load(std::memory_order_acquire) != head_ + 1;
  }

 private:
  struct Slot {
    std::atomic<std::uint64_t> sequence{0};
    T value{};
  };

  std::size_t capacity_ = 0;
  std::size_t mask_ = 0;
  std::unique_ptr<Slot[]> slots_;
  // Producers share the tail counter; the head is consumer-private (the
  // single-consumer contract), so it needs no atomicity. Separate cache
  // lines keep producer CAS traffic off the consumer's line.
  alignas(64) std::atomic<std::uint64_t> tail_{0};
  alignas(64) std::uint64_t head_ = 0;
};

}  // namespace pqs::util

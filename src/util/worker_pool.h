// A small fixed worker pool for data-parallel loops.
//
// The pool executes indexed task batches: run(count, fn) invokes fn(i) for
// every i in [0, count) across the pool's threads plus the calling thread,
// and returns when all invocations have finished. Work is handed out by an
// atomic counter, so the *assignment* of indices to threads is
// nondeterministic — callers that need determinism (core::Estimator) must
// make each index's work self-contained and fold results by index
// afterwards.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace pqs::util {

class WorkerPool {
 public:
  // `threads` is the total degree of parallelism, including the calling
  // thread (so the pool spawns threads - 1 workers); 0 means
  // hardware_concurrency(). A pool of 1 runs everything inline.
  explicit WorkerPool(unsigned threads = 0);
  ~WorkerPool();

  WorkerPool(const WorkerPool&) = delete;
  WorkerPool& operator=(const WorkerPool&) = delete;

  unsigned threads() const { return threads_; }

  // Invokes fn(i) for i in [0, count). Blocks until outstanding invocations
  // return; rethrows the first exception any invocation threw. An exception
  // aborts the batch: indices not yet started are skipped (in-flight ones
  // finish first). Concurrent run() calls from different threads serialize
  // on an internal mutex (the shared core::Estimator relies on this), but
  // fn must not call run() on the same pool — that deadlocks on the
  // serialization lock.
  void run(std::uint64_t count, const std::function<void(std::uint64_t)>& fn);

  static unsigned default_threads();

 private:
  void worker_loop();
  void drain();

  unsigned threads_;
  std::vector<std::thread> workers_;

  std::mutex run_mu_;  // serializes whole run() calls
  std::mutex mu_;
  std::condition_variable work_cv_;
  std::condition_variable done_cv_;
  std::uint64_t generation_ = 0;
  unsigned active_ = 0;
  bool stop_ = false;

  // Current batch (valid while active_ > 0 or the caller is draining).
  const std::function<void(std::uint64_t)>* fn_ = nullptr;
  std::uint64_t count_ = 0;
  std::atomic<std::uint64_t> next_{0};
  std::atomic<bool> failed_{false};
  std::exception_ptr error_;
};

}  // namespace pqs::util

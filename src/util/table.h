// Plain-text table and CSV rendering for the bench harness.
//
// Every bench binary prints the rows/series of one table or figure from the
// paper. TextTable renders an aligned ASCII table; CsvWriter emits the same
// data machine-readably (one figure series per block).
#pragma once

#include <cstddef>
#include <iosfwd>
#include <string>
#include <string_view>
#include <vector>

namespace pqs::util {

// An aligned, pipe-separated text table. Cells are strings; numeric helpers
// format with fixed precision. Column widths are computed at render time.
class TextTable {
 public:
  explicit TextTable(std::vector<std::string> header);

  // Starts a new row. Subsequent cell() calls append to it.
  TextTable& row();
  TextTable& cell(std::string_view text);
  TextTable& cell(long long value);
  TextTable& cell(unsigned long long value);
  TextTable& cell(long value);
  TextTable& cell(int value);
  TextTable& cell(std::size_t value);
  // Fixed-point with `precision` fractional digits.
  TextTable& cell(double value, int precision = 3);
  // Scientific notation (for probabilities spanning many decades).
  TextTable& cell_sci(double value, int precision = 3);

  std::size_t row_count() const { return rows_.size(); }

  // Renders with a header rule. `indent` spaces prefix every line.
  std::string render(int indent = 0) const;
  void print(std::ostream& os, int indent = 0) const;

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

// Minimal CSV emission: header row then data rows; values quoted only when
// needed. Used by benches so figures can be re-plotted externally.
class CsvWriter {
 public:
  explicit CsvWriter(std::vector<std::string> header);

  CsvWriter& row(const std::vector<std::string>& cells);
  std::string str() const;

 private:
  static std::string escape(const std::string& s);
  std::string out_;
  std::size_t columns_;
};

// Formats a double in fixed precision (helper shared with benches).
std::string fixed(double value, int precision);
// Formats a double in scientific notation.
std::string sci(double value, int precision = 3);

// Prints a section banner used by bench binaries, e.g.
//   ==== Table 2: Properties of Various Quorum Systems ====
void banner(std::ostream& os, std::string_view title);

}  // namespace pqs::util

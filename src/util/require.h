// Precondition checking used across the library.
//
// PQS_REQUIRE is for caller-visible API contract violations (invalid
// parameters); it throws std::invalid_argument so misuse is testable.
// PQS_CHECK is for internal invariants; it throws std::logic_error.
#pragma once

#include <stdexcept>
#include <string>

namespace pqs::util {

[[noreturn]] inline void require_failed(const char* expr, const char* file,
                                        int line, const std::string& what) {
  throw std::invalid_argument(std::string("requirement failed: ") + expr +
                              " at " + file + ":" + std::to_string(line) +
                              (what.empty() ? "" : (": " + what)));
}

[[noreturn]] inline void check_failed(const char* expr, const char* file,
                                      int line) {
  throw std::logic_error(std::string("invariant violated: ") + expr + " at " +
                         file + ":" + std::to_string(line));
}

}  // namespace pqs::util

#define PQS_REQUIRE(expr, what)                                     \
  do {                                                              \
    if (!(expr)) ::pqs::util::require_failed(#expr, __FILE__, __LINE__, (what)); \
  } while (false)

#define PQS_CHECK(expr)                                             \
  do {                                                              \
    if (!(expr)) ::pqs::util::check_failed(#expr, __FILE__, __LINE__); \
  } while (false)

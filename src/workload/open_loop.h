// Open-loop load generation for the serving tier.
//
// The closed-loop runner in workload.h issues the next operation only
// after the previous one completes, so a slow server quietly throttles the
// offered load and the measured latencies say nothing about queueing. An
// *open-loop* generator fixes the arrival schedule up front: operation i
// is due at i * (1/rate) regardless of how the service is keeping up, and
// its latency is measured from that *scheduled* arrival time — the
// standard defense against coordinated omission (a stalled service
// accrues queueing delay on every operation that was due during the
// stall, instead of silently deferring them).
//
// The operation *content* stream (keys, read/write mix) is a pure
// function of the seed — the schedule only says when, never what — so
// a serving-tier run is bit-reproducible across worker counts, draw
// paths, and pacing rates.
#pragma once

#include <cstdint>

#include "math/rng.h"
#include "workload/workload.h"

namespace pqs::workload {

// One generated operation. scheduled_ns is the arrival deadline relative
// to the run's epoch (operation i at i * period); at rate 0 (unpaced,
// "as fast as possible") it is 0 for every operation and the driver
// stamps requests with the actual submit time instead.
struct Operation {
  std::uint64_t key = 0;
  std::int64_t value = 0;  // fresh value for writes, 0 for reads
  std::uint64_t scheduled_ns = 0;
  bool is_read = false;
};

struct OpenLoopSpec {
  std::uint64_t keys = 4096;
  double zipf_exponent = 0.0;  // 0 = uniform
  double read_fraction = 0.5;
  double arrival_rate = 0.0;  // ops/sec; 0 = unpaced

  // The YCSB core-workload mixes over a Zipfian(0.99) key popularity:
  // A = 50% reads / 50% updates, B = 95% reads, C = read-only.
  static OpenLoopSpec ycsb_a(std::uint64_t keys);
  static OpenLoopSpec ycsb_b(std::uint64_t keys);
  static OpenLoopSpec ycsb_c(std::uint64_t keys);
};

class OpenLoopGenerator {
 public:
  OpenLoopGenerator(const OpenLoopSpec& spec, std::uint64_t seed);

  const OpenLoopSpec& spec() const { return spec_; }

  // Fills `out` with the next operation: key from the popularity
  // distribution, read with probability read_fraction (writes carry a
  // strictly increasing fresh value), scheduled_ns from the fixed
  // arrival schedule. Allocation-free after construction.
  void next(Operation& out);

  std::uint64_t generated() const { return generated_; }

 private:
  OpenLoopSpec spec_;
  ZipfianKeys keys_;
  math::Rng rng_;
  double period_ns_ = 0.0;
  std::uint64_t generated_ = 0;
  std::int64_t next_value_ = 0;
};

}  // namespace pqs::workload

#include "workload/open_loop.h"

#include <cmath>

#include "util/require.h"

namespace pqs::workload {

OpenLoopSpec OpenLoopSpec::ycsb_a(std::uint64_t keys) {
  OpenLoopSpec spec;
  spec.keys = keys;
  spec.zipf_exponent = 0.99;
  spec.read_fraction = 0.5;
  return spec;
}

OpenLoopSpec OpenLoopSpec::ycsb_b(std::uint64_t keys) {
  OpenLoopSpec spec = ycsb_a(keys);
  spec.read_fraction = 0.95;
  return spec;
}

OpenLoopSpec OpenLoopSpec::ycsb_c(std::uint64_t keys) {
  OpenLoopSpec spec = ycsb_a(keys);
  spec.read_fraction = 1.0;
  return spec;
}

OpenLoopGenerator::OpenLoopGenerator(const OpenLoopSpec& spec,
                                     std::uint64_t seed)
    : spec_(spec), keys_(spec.keys, spec.zipf_exponent), rng_(seed) {
  PQS_REQUIRE(spec.read_fraction >= 0.0 && spec.read_fraction <= 1.0,
              "read fraction");
  PQS_REQUIRE(spec.arrival_rate >= 0.0, "arrival rate");
  if (spec.arrival_rate > 0.0) period_ns_ = 1e9 / spec.arrival_rate;
}

void OpenLoopGenerator::next(Operation& out) {
  out.key = keys_.sample(rng_);
  out.is_read = rng_.chance(spec_.read_fraction);
  out.value = out.is_read ? 0 : ++next_value_;
  // The deadline comes from the generation index, not from when the
  // caller got around to asking: a backed-up driver sees deadlines fall
  // further and further behind real time, which is exactly the queueing
  // delay coordinated omission would hide.
  out.scheduled_ns =
      period_ns_ == 0.0
          ? 0
          : static_cast<std::uint64_t>(
                std::llround(static_cast<double>(generated_) * period_ns_));
  ++generated_;
}

}  // namespace pqs::workload

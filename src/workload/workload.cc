#include "workload/workload.h"

#include <algorithm>
#include <cmath>
#include <unordered_map>

#include "util/require.h"

namespace pqs::workload {

ZipfianKeys::ZipfianKeys(std::uint64_t keys, double exponent)
    : exponent_(exponent) {
  PQS_REQUIRE(keys >= 1, "zipfian needs keys");
  PQS_REQUIRE(exponent >= 0.0, "zipfian exponent");
  cdf_.resize(keys);
  double total = 0.0;
  for (std::uint64_t r = 1; r <= keys; ++r) {
    total += 1.0 / std::pow(static_cast<double>(r), exponent);
    cdf_[r - 1] = total;
  }
  for (auto& c : cdf_) c /= total;
  cdf_.back() = 1.0;
}

std::uint64_t ZipfianKeys::sample(math::Rng& rng) const {
  const double u = rng.uniform();
  const auto it = std::lower_bound(cdf_.begin(), cdf_.end(), u);
  return static_cast<std::uint64_t>(it - cdf_.begin()) + 1;
}

double ZipfianKeys::probability(std::uint64_t key) const {
  PQS_REQUIRE(key >= 1 && key <= cdf_.size(), "key out of range");
  const double hi = cdf_[key - 1];
  const double lo = key >= 2 ? cdf_[key - 2] : 0.0;
  return hi - lo;
}

double WorkloadReport::measured_load() const {
  if (server_accesses.empty()) return 0.0;
  std::uint64_t ops = reads + writes;
  if (ops == 0) return 0.0;
  const auto max_hits =
      *std::max_element(server_accesses.begin(), server_accesses.end());
  return static_cast<double>(max_hits) / static_cast<double>(ops);
}

WorkloadReport run_workload(replica::InstantCluster& cluster,
                            const WorkloadSpec& spec, math::Rng& rng) {
  WorkloadReport report;
  run_workload_into(cluster, spec, rng, report);
  return report;
}

void run_workload_into(replica::InstantCluster& cluster,
                       const WorkloadSpec& spec, math::Rng& rng,
                       WorkloadReport& report) {
  PQS_REQUIRE(spec.operations >= 1, "workload needs operations");
  PQS_REQUIRE(spec.read_fraction >= 0.0 && spec.read_fraction <= 1.0,
              "read fraction");
  const ZipfianKeys keys(spec.keys, spec.zipf_exponent);
  report.reads = 0;
  report.writes = 0;
  report.stale_reads = 0;
  report.empty_reads = 0;
  report.server_accesses.assign(cluster.universe_size(), 0);
  std::unordered_map<std::uint64_t, std::int64_t> last_written;
  std::int64_t next_value = 0;
  // Operation scratch: the result quorum vectors keep their capacity, so
  // after the first few ops the loop body allocates nothing on the kMask
  // path.
  replica::WriteResult w;
  replica::ReadResult r;

  for (std::uint64_t op = 0; op < spec.operations; ++op) {
    const std::uint64_t key = keys.sample(rng);
    if (rng.chance(spec.read_fraction)) {
      ++report.reads;
      cluster.read_into(r, key);
      for (auto u : r.quorum) ++report.server_accesses[u];
      const auto expected = last_written.find(key);
      if (expected == last_written.end()) {
        // Never written: any answer counts as empty/unknown.
        ++report.empty_reads;
      } else if (!r.selection.has_value) {
        ++report.empty_reads;
        ++report.stale_reads;
      } else if (r.selection.record.value != expected->second) {
        ++report.stale_reads;
      }
    } else {
      ++report.writes;
      cluster.write_into(w, key, ++next_value);
      for (auto u : w.quorum) ++report.server_accesses[u];
      last_written[key] = next_value;
    }
  }
}

}  // namespace pqs::workload

// Workload generation: keys, skew, and operation mixes.
//
// The bench harness drives the replicated-variable protocols with synthetic
// workloads: a key (variable) distribution — uniform or Zipfian, since
// realistic register workloads are skewed — and a read/write mix. The
// runner measures what the paper's analysis predicts: per-server access
// frequencies (whose maximum is the induced load L_w) and the staleness
// rate of non-concurrent reads (epsilon).
#pragma once

#include <cstdint>
#include <vector>

#include "math/rng.h"
#include "replica/instant_cluster.h"

namespace pqs::workload {

// Zipf(s) over ranks 1..n: P(rank r) ∝ 1/r^s. s = 0 is uniform. Sampling
// by inverse transform over the precomputed CDF (O(log n) per draw).
class ZipfianKeys {
 public:
  ZipfianKeys(std::uint64_t keys, double exponent);

  std::uint64_t keys() const { return static_cast<std::uint64_t>(cdf_.size()); }
  double exponent() const { return exponent_; }

  // Draws a key in [1, keys] (rank order: key 1 is the hottest).
  std::uint64_t sample(math::Rng& rng) const;

  // Exact probability of a given key (1-based rank).
  double probability(std::uint64_t key) const;

 private:
  double exponent_;
  std::vector<double> cdf_;
};

struct WorkloadSpec {
  std::uint64_t keys = 64;
  double zipf_exponent = 0.0;   // 0 = uniform
  double read_fraction = 0.5;   // remainder are writes
  std::uint64_t operations = 100000;
};

struct WorkloadReport {
  std::uint64_t reads = 0;
  std::uint64_t writes = 0;
  std::uint64_t stale_reads = 0;   // read != last completed write, per key
  std::uint64_t empty_reads = 0;   // ⊥ or never-written key
  std::vector<std::uint64_t> server_accesses;  // per-server message count

  double stale_rate() const {
    return reads == 0 ? 0.0
                      : static_cast<double>(stale_reads) /
                            static_cast<double>(reads);
  }
  // Max per-server access frequency over total quorum accesses — the
  // empirical induced load.
  double measured_load() const;
};

// Runs `spec` against the cluster: each operation picks a key from the
// Zipfian distribution and is a read with probability read_fraction, else
// a write of a fresh value. Reads are checked against the last value this
// runner wrote to that key (non-concurrent by construction).
WorkloadReport run_workload(replica::InstantCluster& cluster,
                            const WorkloadSpec& spec, math::Rng& rng);

// In-place variant: `report` is reset and refilled, and operations run
// through the cluster's write_into/read_into so result scratch is reused
// across the whole loop. On the cluster's kMask draw path the steady-state
// op loop performs no allocation (the per-key last-written map stops
// growing once every key has been written). Same draws, same counters as
// run_workload for any fixed rng state.
void run_workload_into(replica::InstantCluster& cluster,
                       const WorkloadSpec& spec, math::Rng& rng,
                       WorkloadReport& report);

}  // namespace pqs::workload

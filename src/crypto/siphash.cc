#include "crypto/siphash.h"

#include <cstring>

namespace pqs::crypto {

namespace {

inline std::uint64_t rotl(std::uint64_t x, int b) {
  return (x << b) | (x >> (64 - b));
}

inline std::uint64_t load_le64(const std::uint8_t* p) {
  std::uint64_t v;
  std::memcpy(&v, p, sizeof(v));
  // This codebase only targets little-endian platforms (checked in tests via
  // the official SipHash vectors); memcpy suffices.
  return v;
}

inline void sipround(std::uint64_t& v0, std::uint64_t& v1, std::uint64_t& v2,
                     std::uint64_t& v3) {
  v0 += v1;
  v1 = rotl(v1, 13);
  v1 ^= v0;
  v0 = rotl(v0, 32);
  v2 += v3;
  v3 = rotl(v3, 16);
  v3 ^= v2;
  v0 += v3;
  v3 = rotl(v3, 21);
  v3 ^= v0;
  v2 += v1;
  v1 = rotl(v1, 17);
  v1 ^= v2;
  v2 = rotl(v2, 32);
}

}  // namespace

std::uint64_t siphash24(const Key128& key, const std::uint8_t* data,
                        std::size_t len) {
  const std::uint64_t k0 = load_le64(key.data());
  const std::uint64_t k1 = load_le64(key.data() + 8);

  std::uint64_t v0 = 0x736f6d6570736575ULL ^ k0;
  std::uint64_t v1 = 0x646f72616e646f6dULL ^ k1;
  std::uint64_t v2 = 0x6c7967656e657261ULL ^ k0;
  std::uint64_t v3 = 0x7465646279746573ULL ^ k1;

  const std::uint8_t* in = data;
  const std::size_t full_blocks = len / 8;

  for (std::size_t i = 0; i < full_blocks; ++i) {
    const std::uint64_t m = load_le64(in + 8 * i);
    v3 ^= m;
    sipround(v0, v1, v2, v3);
    sipround(v0, v1, v2, v3);
    v0 ^= m;
  }

  std::uint64_t last = static_cast<std::uint64_t>(len & 0xff) << 56;
  const std::uint8_t* tail = in + 8 * full_blocks;
  switch (len & 7) {
    case 7: last |= static_cast<std::uint64_t>(tail[6]) << 48; [[fallthrough]];
    case 6: last |= static_cast<std::uint64_t>(tail[5]) << 40; [[fallthrough]];
    case 5: last |= static_cast<std::uint64_t>(tail[4]) << 32; [[fallthrough]];
    case 4: last |= static_cast<std::uint64_t>(tail[3]) << 24; [[fallthrough]];
    case 3: last |= static_cast<std::uint64_t>(tail[2]) << 16; [[fallthrough]];
    case 2: last |= static_cast<std::uint64_t>(tail[1]) << 8; [[fallthrough]];
    case 1: last |= static_cast<std::uint64_t>(tail[0]); break;
    case 0: break;
  }

  v3 ^= last;
  sipround(v0, v1, v2, v3);
  sipround(v0, v1, v2, v3);
  v0 ^= last;

  v2 ^= 0xff;
  sipround(v0, v1, v2, v3);
  sipround(v0, v1, v2, v3);
  sipround(v0, v1, v2, v3);
  sipround(v0, v1, v2, v3);

  return v0 ^ v1 ^ v2 ^ v3;
}

std::uint64_t siphash24(const Key128& key, const void* data, std::size_t len) {
  return siphash24(key, static_cast<const std::uint8_t*>(data), len);
}

}  // namespace pqs::crypto

// SipHash-2-4 (Aumasson & Bernstein), implemented from scratch.
//
// The paper's dissemination quorum systems assume *self-verifying data*:
// "data that servers can suppress but not undetectably alter (such as
// digitally signed data)" (Section 4). In this reproduction the writer keys
// a SipHash-2-4 MAC over (variable, value, timestamp); the simulation
// guarantees faulty servers never learn the key, which yields exactly the
// suppress-but-not-alter adversary the paper analyzes.
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>

namespace pqs::crypto {

using Key128 = std::array<std::uint8_t, 16>;

// SipHash-2-4 of the `len` bytes at `data` under `key`, returning the
// 64-bit tag.
std::uint64_t siphash24(const Key128& key, const std::uint8_t* data,
                        std::size_t len);

// Convenience overload over raw bytes.
std::uint64_t siphash24(const Key128& key, const void* data, std::size_t len);

}  // namespace pqs::crypto

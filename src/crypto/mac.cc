#include "crypto/mac.h"

#include <cstring>

#include "math/rng.h"

namespace pqs::crypto {

namespace {

std::uint64_t compute_tag(const Key128& key, std::uint64_t variable,
                          std::int64_t value, std::uint64_t timestamp,
                          std::uint32_t writer) {
  std::uint8_t buf[28];
  std::memcpy(buf, &variable, 8);
  std::memcpy(buf + 8, &value, 8);
  std::memcpy(buf + 16, &timestamp, 8);
  std::memcpy(buf + 24, &writer, 4);
  return siphash24(key, buf, sizeof(buf));
}

}  // namespace

Signer Signer::from_seed(std::uint64_t seed) {
  math::SplitMix64 sm(seed ^ 0x5ec7e7a1u);
  Key128 key;
  const std::uint64_t lo = sm.next();
  const std::uint64_t hi = sm.next();
  std::memcpy(key.data(), &lo, 8);
  std::memcpy(key.data() + 8, &hi, 8);
  return Signer(key);
}

SignedRecord Signer::sign(std::uint64_t variable, std::int64_t value,
                          std::uint64_t timestamp, std::uint32_t writer) const {
  SignedRecord r;
  r.variable = variable;
  r.value = value;
  r.timestamp = timestamp;
  r.writer = writer;
  r.tag = compute_tag(key_, variable, value, timestamp, writer);
  return r;
}

bool Verifier::verify(const SignedRecord& record) const {
  return record.tag == compute_tag(key_, record.variable, record.value,
                                   record.timestamp, record.writer);
}

}  // namespace pqs::crypto

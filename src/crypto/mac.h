// Writer MAC for self-verifying replicated data.
//
// A Signer binds (variable id, value, timestamp, writer id) to a 64-bit tag
// under the writer's key. Readers holding the corresponding Verifier accept
// exactly the tuples the writer produced. A Byzantine server may replay a
// stale-but-genuine tuple (which timestamps handle) or suppress data, but
// cannot fabricate a fresh tuple — matching the self-verifying-data model of
// Section 4.
#pragma once

#include <cstdint>

#include "crypto/siphash.h"

namespace pqs::crypto {

// The value type replicated by the protocols. A plain struct so protocol and
// analysis code can treat it as data.
struct SignedRecord {
  std::uint64_t variable = 0;
  std::int64_t value = 0;
  std::uint64_t timestamp = 0;
  std::uint32_t writer = 0;
  std::uint64_t tag = 0;

  friend bool operator==(const SignedRecord& a, const SignedRecord& b) {
    return a.variable == b.variable && a.value == b.value &&
           a.timestamp == b.timestamp && a.writer == b.writer && a.tag == b.tag;
  }
  friend bool operator!=(const SignedRecord& a, const SignedRecord& b) {
    return !(a == b);
  }
};

class Signer {
 public:
  explicit Signer(Key128 key) : key_(key) {}

  // Deterministically derives a writer key from a seed; distinct seeds give
  // independent keys.
  static Signer from_seed(std::uint64_t seed);

  SignedRecord sign(std::uint64_t variable, std::int64_t value,
                    std::uint64_t timestamp, std::uint32_t writer) const;

  const Key128& key() const { return key_; }

 private:
  Key128 key_;
};

class Verifier {
 public:
  explicit Verifier(Key128 key) : key_(key) {}

  bool verify(const SignedRecord& record) const;

 private:
  Key128 key_;
};

}  // namespace pqs::crypto

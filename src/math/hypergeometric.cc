#include "math/hypergeometric.h"

#include <algorithm>
#include <vector>

#include "math/combinatorics.h"
#include "util/require.h"

namespace pqs::math {

Hypergeometric make_hypergeometric(std::int64_t population,
                                   std::int64_t successes,
                                   std::int64_t draws) {
  PQS_REQUIRE(population >= 0, "hypergeometric population");
  PQS_REQUIRE(successes >= 0 && successes <= population,
              "hypergeometric successes");
  PQS_REQUIRE(draws >= 0 && draws <= population, "hypergeometric draws");
  return Hypergeometric{population, successes, draws};
}

std::int64_t Hypergeometric::support_min() const {
  return std::max<std::int64_t>(0, draws + successes - population);
}

std::int64_t Hypergeometric::support_max() const {
  return std::min(successes, draws);
}

double Hypergeometric::log_pmf(std::int64_t x) const {
  if (x < support_min() || x > support_max()) return kNegInf;
  return log_choose(successes, x) +
         log_choose(population - successes, draws - x) -
         log_choose(population, draws);
}

double Hypergeometric::pmf(std::int64_t x) const {
  return exp_probability(log_pmf(x));
}

double Hypergeometric::cdf(std::int64_t x) const {
  const std::int64_t lo = support_min();
  const std::int64_t hi = support_max();
  if (x < lo) return 0.0;
  if (x >= hi) return 1.0;
  // Sum the side of the distribution away from the mean directly (it is the
  // small-probability side); complement for the other, so tiny tails keep
  // full precision.
  std::vector<double> logs;
  const std::int64_t lower_terms = x - lo + 1;
  const std::int64_t upper_terms = hi - x;
  if (static_cast<double>(x) < mean()) {
    logs.reserve(static_cast<std::size_t>(lower_terms));
    for (std::int64_t i = lo; i <= x; ++i) logs.push_back(log_pmf(i));
    return exp_probability(log_sum(logs));
  }
  logs.reserve(static_cast<std::size_t>(upper_terms));
  for (std::int64_t i = x + 1; i <= hi; ++i) logs.push_back(log_pmf(i));
  const double upper = exp_probability(log_sum(logs));
  return upper >= 1.0 ? 0.0 : 1.0 - upper;
}

double Hypergeometric::upper_tail(std::int64_t x) const {
  const std::int64_t lo = support_min();
  const std::int64_t hi = support_max();
  if (x <= lo) return 1.0;
  if (x > hi) return 0.0;
  const std::int64_t upper_terms = hi - x + 1;
  const std::int64_t lower_terms = x - lo;
  std::vector<double> logs;
  if (static_cast<double>(x) > mean()) {
    logs.reserve(static_cast<std::size_t>(upper_terms));
    for (std::int64_t i = x; i <= hi; ++i) logs.push_back(log_pmf(i));
    return exp_probability(log_sum(logs));
  }
  logs.reserve(static_cast<std::size_t>(lower_terms));
  for (std::int64_t i = lo; i < x; ++i) logs.push_back(log_pmf(i));
  const double lower = exp_probability(log_sum(logs));
  return lower >= 1.0 ? 0.0 : 1.0 - lower;
}

double Hypergeometric::mean() const {
  if (population == 0) return 0.0;
  return static_cast<double>(draws) * static_cast<double>(successes) /
         static_cast<double>(population);
}

double Hypergeometric::variance() const {
  if (population <= 1) return 0.0;
  const double n = static_cast<double>(population);
  const double K = static_cast<double>(successes);
  const double q = static_cast<double>(draws);
  return q * (K / n) * (1.0 - K / n) * (n - q) / (n - 1.0);
}

}  // namespace pqs::math

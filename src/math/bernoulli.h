// Batched Bernoulli generation: 64 iid Bernoulli(p) trials per call.
//
// The failure-probability estimators need an "alive mask" of n iid
// Bernoulli trials per Monte-Carlo sample. Drawing them one uniform() at a
// time costs one 64-bit RNG word per *trial*; this sampler produces one
// trial per *lane* of a 64-bit word by comparing 64 lane-sliced uniforms
// against the fixed-point expansion of p, most significant digit first:
//
//   digit step (one rng word w; bit j of w is the current binary digit of
//   lane j's uniform U_j):
//     threshold digit 1:  lanes in eq with w-bit 0 decide U < p (dead);
//                         lanes with w-bit 1 stay undecided.
//     threshold digit 0:  lanes in eq with w-bit 1 decide U > p (alive).
//
// Every word halves the undecided population, so a block costs ~7 words in
// expectation (~9x fewer than scalar) regardless of precision — and when p
// has a short binary expansion the loop stops at p's lowest set digit:
// p = 1/2 or 3/4 or 1/8 cost exactly 1, 2, 3 words per 64 trials.
//
// Exactness: digits run to the full 64-bit fixed point of p. For p >=
// 2^-11, p * 2^64 is an integer (53-bit mantissa), the comparison is exact
// and each lane is Bernoulli(round-to-2^-64 of p) — strictly tighter than
// the 53-bit scalar Rng::chance(). For smaller p a nonzero residual tail
// below 2^-64 remains; lanes whose 64 digits all tie (probability 2^-64)
// fall back to one exact scalar draw against the residual, so the result
// stays unbiased to beyond double precision instead of silently truncating.
#pragma once

#include <cstddef>
#include <cstdint>

#include "math/rng.h"
#include "simd/kernels.h"

namespace pqs::math {

class BernoulliBlockSampler {
 public:
  // p is clamped to [0, 1].
  explicit BernoulliBlockSampler(double p);

  double p() const { return p_; }

  // One block of 64 iid Bernoulli(p) trials; bit j of the result is trial
  // j's success indicator. Consumes a data-dependent (but purely
  // stream-determined) number of rng words.
  std::uint64_t draw_block(Rng& rng) const;

  // Fills words[0..count) with Bernoulli(p) blocks (complemented when
  // `invert`, for alive masks from a dead-probability) through the
  // dispatched SIMD kernel. Consumes exactly ONE word of `rng` — the seed
  // of the fill's private SplitMix64 lane streams (the contract in
  // simd/kernels_common.h) — so callers' stream bookkeeping is trivial.
  // Bit-identical on every ISA and at any thread count; statistically
  // equivalent to, but a different stream than, count draw_block calls.
  void fill(std::uint64_t* words, std::size_t count, Rng& rng,
            bool invert = false) const;

  // The precomputed fixed-point constants, for direct kernel callers
  // (benches) that manage their own seeds.
  simd::BernoulliSpec spec(bool invert = false) const {
    return simd::BernoulliSpec{threshold_, tail_, stop_level_, invert};
  }

 private:
  double p_;
  std::uint64_t threshold_;  // floor(p * 2^64)
  double tail_;              // p * 2^64 - threshold_, in [0, 1)
  int stop_level_;           // lowest digit of p that can still decide
};

}  // namespace pqs::math

// Hypergeometric distribution in log domain.
//
// The central distribution of the paper: when a quorum Q of size q is drawn
// uniformly from n servers of which b are faulty, X = |Q ∩ B| is
// hypergeometric H(b; n, q) (Section 5.3, Eq. 13). Likewise Y = |Q' ∩ (Q\B)|
// given |Q\B| is hypergeometric, which is what makes the exact epsilon
// computations in core/epsilon.cc straight sums over this pmf.
//
// Parameterization: population n, successes K in the population, q draws
// without replacement; X counts drawn successes.
#pragma once

#include <cstdint>

namespace pqs::math {

struct Hypergeometric {
  std::int64_t population;  // n
  std::int64_t successes;   // K
  std::int64_t draws;       // q

  // Support [lo, hi]: lo = max(0, q + K - n), hi = min(K, q).
  std::int64_t support_min() const;
  std::int64_t support_max() const;

  // ln P(X = x); -inf outside the support.
  double log_pmf(std::int64_t x) const;
  double pmf(std::int64_t x) const;

  // P(X <= x) and P(X >= x); summed over the smaller side in log domain.
  double cdf(std::int64_t x) const;
  double upper_tail(std::int64_t x) const;

  // E[X] = qK/n, Var[X] = qK/n (1-K/n)(n-q)/(n-1).
  double mean() const;
  double variance() const;
};

// Validates parameters and returns the distribution object.
Hypergeometric make_hypergeometric(std::int64_t population,
                                   std::int64_t successes, std::int64_t draws);

}  // namespace pqs::math

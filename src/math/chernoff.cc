#include "math/chernoff.h"

#include <algorithm>
#include <cmath>

#include "util/require.h"

namespace pqs::math {

double chernoff_upper(double mu, double gamma) {
  PQS_REQUIRE(mu >= 0.0, "chernoff mu");
  PQS_REQUIRE(gamma > 0.0, "chernoff gamma");
  constexpr double kTwoEMinusOne = 2.0 * 2.718281828459045 - 1.0;
  double bound;
  if (gamma <= kTwoEMinusOne) {
    bound = std::exp(-mu * gamma * gamma / 4.0);
  } else {
    bound = std::exp2(-(1.0 + gamma) * mu);
  }
  return std::min(1.0, bound);
}

double chernoff_lower(double mu, double delta) {
  PQS_REQUIRE(mu >= 0.0, "chernoff mu");
  PQS_REQUIRE(delta >= 0.0 && delta <= 1.0, "chernoff delta");
  return std::min(1.0, std::exp(-mu * delta * delta / 2.0));
}

double failure_probability_bound(std::int64_t n, std::int64_t q, double p) {
  const double nn = static_cast<double>(n);
  const double gap = 1.0 - static_cast<double>(q) / nn - p;
  if (gap <= 0.0) return 1.0;
  return std::min(1.0, std::exp(-2.0 * nn * gap * gap));
}

}  // namespace pqs::math

// A dense two-phase simplex solver for small linear programs.
//
// The strategy optimizer (quorum/strategy.h) minimizes the maximum
// capacity-weighted per-server load over a distribution of candidate
// quorums — an LP with tens of variables (one probability per candidate
// plus the max-load epigraph variable) and at most universe_size + 3
// constraints. At that size a dense tableau beats any sparse machinery,
// and exact pivoting discipline matters more than speed: the solver uses
// Bland's anti-cycling rule throughout, so it terminates on every input,
// and phase 1 introduces artificial variables only for rows whose
// right-hand side is negative (the eps-ceiling and sum-to-one rows), so
// well-posed feasible programs start one pivot from a basis.
//
// Canonical form solved here:  minimize c.x  s.t.  A x <= b,  x >= 0.
// Negative entries of b are allowed (that is what phase 1 is for);
// equality constraints are expressed as a <= / >= pair by the caller.
#pragma once

#include <vector>

namespace pqs::math {

enum class LpStatus {
  kOptimal,     // x holds an optimal feasible point
  kInfeasible,  // no x >= 0 satisfies A x <= b
  kUnbounded,   // the objective decreases without bound over the feasible set
};

const char* lp_status_name(LpStatus status);

struct LpResult {
  LpStatus status = LpStatus::kInfeasible;
  double objective = 0.0;   // c.x at the returned point (kOptimal only)
  std::vector<double> x;    // the primal solution (kOptimal only)
};

// Minimizes c.x subject to A x <= b and x >= 0. `a` is dense row-major:
// a[i] is constraint row i and every row must have c.size() entries.
LpResult solve_lp(const std::vector<double>& c,
                  const std::vector<std::vector<double>>& a,
                  const std::vector<double>& b);

}  // namespace pqs::math

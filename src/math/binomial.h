// Binomial distribution in log domain.
//
// Used for every crash-failure probability in the paper: a size-based quorum
// system over n servers with quorum size q is disabled exactly when more than
// n - q servers crash, so F_p = P(Bin(n, p) > n - q)  (Sections 3.4, 5.5).
#pragma once

#include <cstdint>

namespace pqs::math {

// ln P(Bin(n, p) = k). p in [0, 1]. Out-of-support k yields -inf.
double binomial_log_pmf(std::int64_t n, double p, std::int64_t k);

// P(Bin(n, p) = k).
double binomial_pmf(std::int64_t n, double p, std::int64_t k);

// P(Bin(n, p) >= k), computed by summing the smaller tail in log domain.
double binomial_upper_tail(std::int64_t n, double p, std::int64_t k);

// P(Bin(n, p) <= k).
double binomial_lower_tail(std::int64_t n, double p, std::int64_t k);

// Mean and variance (np, np(1-p)).
double binomial_mean(std::int64_t n, double p);
double binomial_variance(std::int64_t n, double p);

}  // namespace pqs::math

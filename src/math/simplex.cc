#include "math/simplex.h"

#include <cmath>
#include <cstddef>
#include <cstdint>

#include "util/require.h"

namespace pqs::math {

namespace {

// Pivot tolerance: entries this close to zero are treated as zero. The
// programs this solver sees carry probabilities and loads in [0, ~n], so
// a fixed absolute tolerance is appropriate.
constexpr double kTol = 1e-9;

// Dense simplex tableau: `rows` constraint rows plus one objective row,
// `cols` variable columns plus one right-hand-side column. The objective
// row holds reduced costs for a minimization problem; a column may enter
// the basis while its reduced cost is < -kTol.
struct Tableau {
  std::size_t rows = 0;
  std::size_t cols = 0;  // variable columns (rhs excluded)
  std::vector<double> cells;            // (rows + 1) x (cols + 1)
  std::vector<std::size_t> basis;       // basic variable of each row
  std::vector<bool> allowed;            // may this column enter the basis?

  double& at(std::size_t r, std::size_t c) { return cells[r * (cols + 1) + c]; }
  double& rhs(std::size_t r) { return cells[r * (cols + 1) + cols]; }
  double& obj(std::size_t c) { return cells[rows * (cols + 1) + c]; }
  double& obj_rhs() { return cells[rows * (cols + 1) + cols]; }

  void pivot(std::size_t pr, std::size_t pc) {
    const double inv = 1.0 / at(pr, pc);
    for (std::size_t c = 0; c <= cols; ++c) at(pr, c) *= inv;
    at(pr, pc) = 1.0;  // kill the residual rounding on the pivot itself
    for (std::size_t r = 0; r <= rows; ++r) {
      if (r == pr) continue;
      const double factor = at(r, pc);
      if (factor == 0.0) continue;
      for (std::size_t c = 0; c <= cols; ++c) {
        at(r, c) -= factor * at(pr, c);
      }
      at(r, pc) = 0.0;
    }
    basis[pr] = pc;
  }

  // Runs the simplex iteration to optimality with Bland's rule (smallest
  // eligible index for both the entering and the leaving choice), which
  // rules out cycling. Returns false when the objective is unbounded
  // below. The iteration cap is a belt-and-braces guard: Bland's rule
  // already guarantees termination, so hitting it means the arithmetic
  // itself broke down.
  bool iterate() {
    const std::uint64_t cap = 2000ULL * (rows + cols + 1);
    for (std::uint64_t it = 0; it < cap; ++it) {
      std::size_t entering = cols;
      for (std::size_t c = 0; c < cols; ++c) {
        if (allowed[c] && obj(c) < -kTol) {
          entering = c;
          break;
        }
      }
      if (entering == cols) return true;  // optimal
      std::size_t leaving = rows;
      double best_ratio = 0.0;
      for (std::size_t r = 0; r < rows; ++r) {
        if (at(r, entering) <= kTol) continue;
        const double ratio = rhs(r) / at(r, entering);
        if (leaving == rows || ratio < best_ratio - kTol ||
            (ratio < best_ratio + kTol && basis[r] < basis[leaving])) {
          leaving = r;
          best_ratio = ratio;
        }
      }
      if (leaving == rows) return false;  // unbounded
      pivot(leaving, entering);
    }
    PQS_REQUIRE(false, "simplex iteration cap exceeded");
    return false;
  }
};

}  // namespace

const char* lp_status_name(LpStatus status) {
  switch (status) {
    case LpStatus::kOptimal: return "optimal";
    case LpStatus::kInfeasible: return "infeasible";
    case LpStatus::kUnbounded: return "unbounded";
  }
  return "?";
}

LpResult solve_lp(const std::vector<double>& c,
                  const std::vector<std::vector<double>>& a,
                  const std::vector<double>& b) {
  const std::size_t n = c.size();
  const std::size_t m = a.size();
  PQS_REQUIRE(b.size() == m, "rhs size mismatch");
  for (const auto& row : a) {
    PQS_REQUIRE(row.size() == n, "constraint row size mismatch");
  }

  // Columns: n structural, m slacks, then one artificial per negative-rhs
  // row (its slack enters with coefficient -1 there, so it cannot seed
  // the basis).
  std::size_t artificials = 0;
  for (const double bi : b) {
    if (bi < 0.0) ++artificials;
  }
  Tableau t;
  t.rows = m;
  t.cols = n + m + artificials;
  t.cells.assign((m + 1) * (t.cols + 1), 0.0);
  t.basis.assign(m, 0);
  t.allowed.assign(t.cols, true);

  std::size_t next_artificial = n + m;
  for (std::size_t r = 0; r < m; ++r) {
    const bool negate = b[r] < 0.0;
    const double sign = negate ? -1.0 : 1.0;
    for (std::size_t j = 0; j < n; ++j) t.at(r, j) = sign * a[r][j];
    t.at(r, n + r) = sign;  // slack
    t.rhs(r) = sign * b[r];
    if (negate) {
      t.at(r, next_artificial) = 1.0;
      t.basis[r] = next_artificial++;
    } else {
      t.basis[r] = n + r;
    }
  }

  LpResult result;
  if (artificials > 0) {
    // Phase 1: minimize the sum of artificials. Cost 1 on each artificial
    // column, canonicalized by subtracting the rows they are basic in.
    for (std::size_t j = n + m; j < t.cols; ++j) t.obj(j) = 1.0;
    for (std::size_t r = 0; r < m; ++r) {
      if (t.basis[r] < n + m) continue;
      for (std::size_t cidx = 0; cidx <= t.cols; ++cidx) {
        t.obj(cidx) -= t.at(r, cidx);
      }
    }
    if (!t.iterate()) {
      // Phase 1 is bounded below by 0; unbounded means broken arithmetic.
      PQS_REQUIRE(false, "phase-1 simplex reported unbounded");
    }
    if (-t.obj_rhs() > 1e-7) {
      result.status = LpStatus::kInfeasible;
      return result;
    }
    // Drive surviving artificials out of the basis where a real column is
    // available; a row with no real pivot is a redundant constraint and
    // its artificial stays basic at zero (harmless once the column is
    // barred from re-entering).
    for (std::size_t r = 0; r < m; ++r) {
      if (t.basis[r] < n + m) continue;
      for (std::size_t j = 0; j < n + m; ++j) {
        if (std::fabs(t.at(r, j)) > kTol) {
          t.pivot(r, j);
          break;
        }
      }
    }
    for (std::size_t j = n + m; j < t.cols; ++j) t.allowed[j] = false;
  }

  // Phase 2: install the real objective and canonicalize against the
  // current basis.
  for (std::size_t cidx = 0; cidx <= t.cols; ++cidx) {
    t.cells[m * (t.cols + 1) + cidx] = 0.0;
  }
  for (std::size_t j = 0; j < n; ++j) t.obj(j) = c[j];
  for (std::size_t r = 0; r < m; ++r) {
    const double cost = t.basis[r] < n ? c[t.basis[r]] : 0.0;
    if (cost == 0.0) continue;
    for (std::size_t cidx = 0; cidx <= t.cols; ++cidx) {
      t.obj(cidx) -= cost * t.at(r, cidx);
    }
  }
  if (!t.iterate()) {
    result.status = LpStatus::kUnbounded;
    return result;
  }

  result.status = LpStatus::kOptimal;
  result.x.assign(n, 0.0);
  for (std::size_t r = 0; r < m; ++r) {
    if (t.basis[r] < n) {
      result.x[t.basis[r]] = t.rhs(r) < 0.0 ? 0.0 : t.rhs(r);
    }
  }
  result.objective = 0.0;
  for (std::size_t j = 0; j < n; ++j) result.objective += c[j] * result.x[j];
  return result;
}

}  // namespace pqs::math

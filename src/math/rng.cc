#include "math/rng.h"

#include <cmath>

#include "util/require.h"

namespace pqs::math {

std::uint64_t SplitMix64::next() {
  std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

namespace {
inline std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}
}  // namespace

Rng::Rng(std::uint64_t seed) {
  SplitMix64 sm(seed);
  for (auto& word : s_) word = sm.next();
}

std::uint64_t Rng::next() {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

std::uint64_t Rng::below(std::uint64_t bound) {
  PQS_REQUIRE(bound > 0, "Rng::below(0)");
  // Lemire's nearly-divisionless method.
  std::uint64_t x = next();
  __uint128_t m = static_cast<__uint128_t>(x) * bound;
  std::uint64_t lo = static_cast<std::uint64_t>(m);
  if (lo < bound) {
    const std::uint64_t threshold = -bound % bound;
    while (lo < threshold) {
      x = next();
      m = static_cast<__uint128_t>(x) * bound;
      lo = static_cast<std::uint64_t>(m);
    }
  }
  return static_cast<std::uint64_t>(m >> 64);
}

double Rng::uniform() {
  return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

bool Rng::chance(double p) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return uniform() < p;
}

std::int64_t Rng::between(std::int64_t lo, std::int64_t hi) {
  PQS_REQUIRE(lo <= hi, "Rng::between bounds");
  const std::uint64_t span = static_cast<std::uint64_t>(hi - lo) + 1;
  return lo + static_cast<std::int64_t>(below(span));
}

double Rng::exponential(double mean) {
  PQS_REQUIRE(mean > 0.0, "Rng::exponential mean");
  double u = uniform();
  // Avoid log(0); uniform() < 1 always, so 1-u > 0.
  return -mean * std::log1p(-u);
}

Rng Rng::fork() {
  Rng child(0);
  SplitMix64 sm(next() ^ 0xd1b54a32d192ed03ULL);
  for (auto& word : child.s_) word = sm.next();
  return child;
}

}  // namespace pqs::math

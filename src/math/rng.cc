#include "math/rng.h"

#include <cmath>

#include "util/require.h"

namespace pqs::math {

std::uint64_t SplitMix64::next() {
  std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

namespace {
inline std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}
}  // namespace

Rng::Rng(std::uint64_t seed) {
  SplitMix64 sm(seed);
  for (auto& word : s_) word = sm.next();
}

std::uint64_t Rng::next() {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

std::uint64_t Rng::below(std::uint64_t bound) {
  PQS_REQUIRE(bound > 0, "Rng::below(0)");
  // Lemire's nearly-divisionless method.
  std::uint64_t x = next();
  __uint128_t m = static_cast<__uint128_t>(x) * bound;
  std::uint64_t lo = static_cast<std::uint64_t>(m);
  if (lo < bound) {
    const std::uint64_t threshold = -bound % bound;
    while (lo < threshold) {
      x = next();
      m = static_cast<__uint128_t>(x) * bound;
      lo = static_cast<std::uint64_t>(m);
    }
  }
  return static_cast<std::uint64_t>(m >> 64);
}

double Rng::uniform() {
  return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

bool Rng::chance(double p) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return uniform() < p;
}

std::int64_t Rng::between(std::int64_t lo, std::int64_t hi) {
  PQS_REQUIRE(lo <= hi, "Rng::between bounds");
  const std::uint64_t span = static_cast<std::uint64_t>(hi - lo) + 1;
  return lo + static_cast<std::int64_t>(below(span));
}

double Rng::exponential(double mean) {
  PQS_REQUIRE(mean > 0.0, "Rng::exponential mean");
  double u = uniform();
  // Avoid log(0); uniform() < 1 always, so 1-u > 0.
  return -mean * std::log1p(-u);
}

Rng Rng::fork() {
  Rng child(0);
  SplitMix64 sm(next() ^ 0xd1b54a32d192ed03ULL);
  for (auto& word : child.s_) word = sm.next();
  return child;
}

namespace {

// Jump polynomials from the xoshiro256** reference implementation
// (Blackman & Vigna, public domain).
constexpr std::uint64_t kJump[] = {0x180ec6d33cfd0abaULL,
                                   0xd5a61266f0c9392cULL,
                                   0xa9582618e03fc9aaULL,
                                   0x39abdc4529b1661cULL};
constexpr std::uint64_t kLongJump[] = {0x76e15d3efefdcbbfULL,
                                       0xc5004e441c522fb3ULL,
                                       0x77710069854ee241ULL,
                                       0x39109bb02acbe635ULL};

}  // namespace

void Rng::jump_with(const std::uint64_t (&polynomial)[4]) {
  std::uint64_t s0 = 0, s1 = 0, s2 = 0, s3 = 0;
  for (std::uint64_t word : polynomial) {
    for (int b = 0; b < 64; ++b) {
      if (word & (1ULL << b)) {
        s0 ^= s_[0];
        s1 ^= s_[1];
        s2 ^= s_[2];
        s3 ^= s_[3];
      }
      next();
    }
  }
  s_[0] = s0;
  s_[1] = s1;
  s_[2] = s2;
  s_[3] = s3;
}

void Rng::jump() { jump_with(kJump); }

void Rng::long_jump() { jump_with(kLongJump); }

Rng Rng::substream() {
  const Rng current = *this;
  jump();
  return current;
}

}  // namespace pqs::math

// The specific Chernoff/Hoeffding-style bounds the paper invokes.
//
// These are *bounds*, not exact probabilities; the benches use them to show
// how tight the paper's closed forms are against the exact log-domain
// computations in core/epsilon.cc, and the failure-probability analyses use
// the additive Hoeffding form exactly as in Sections 3.4 and 5.5.
#pragma once

#include <cstdint>

namespace pqs::math {

// Multiplicative upper-tail Chernoff bound for a sum of independent
// Bernoullis with mean mu, as quoted in the paper from [MR95, p. 72]:
//   P(X > (1+g) mu) <= exp(-mu g^2 / 4)      for 0 < g <= 2e-1,
//   P(X > (1+g) mu) <= 2^{-(1+g) mu}         for g > 2e-1.
double chernoff_upper(double mu, double gamma);

// Multiplicative lower-tail bound: P(X < (1-d) mu) <= exp(-mu d^2 / 2),
// valid for 0 <= d <= 1.
double chernoff_lower(double mu, double delta);

// Additive Hoeffding bound used for crash failure probabilities:
//   P(#fail > n - q) <= exp(-2 n (1 - q/n - p)^2)  when p < 1 - q/n
// (Section 3.4). Returns 1.0 when the condition fails.
double failure_probability_bound(std::int64_t n, std::int64_t q, double p);

}  // namespace pqs::math

#include "math/stats.h"

#include <algorithm>
#include <cmath>

#include "util/require.h"

namespace pqs::math {

void OnlineStats::add(double x) {
  if (count_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++count_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (x - mean_);
}

double OnlineStats::variance() const {
  if (count_ < 2) return 0.0;
  return m2_ / static_cast<double>(count_ - 1);
}

double OnlineStats::stddev() const { return std::sqrt(variance()); }

double OnlineStats::std_error() const {
  if (count_ == 0) return 0.0;
  return stddev() / std::sqrt(static_cast<double>(count_));
}

void Proportion::add(bool success) {
  ++trials_;
  if (success) ++successes_;
}

void Proportion::add(std::uint64_t successes, std::uint64_t trials) {
  PQS_REQUIRE(successes <= trials, "Proportion::add");
  trials_ += trials;
  successes_ += successes;
}

double Proportion::estimate() const {
  if (trials_ == 0) return 0.0;
  return static_cast<double>(successes_) / static_cast<double>(trials_);
}

Proportion::Interval Proportion::wilson(double z) const {
  if (trials_ == 0) return {0.0, 1.0};
  const double n = static_cast<double>(trials_);
  const double p = estimate();
  const double z2 = z * z;
  const double denom = 1.0 + z2 / n;
  const double center = (p + z2 / (2.0 * n)) / denom;
  const double margin =
      z * std::sqrt(p * (1.0 - p) / n + z2 / (4.0 * n * n)) / denom;
  return {std::max(0.0, center - margin), std::min(1.0, center + margin)};
}

}  // namespace pqs::math

#include "math/bernoulli.h"

#include <algorithm>
#include <cmath>

namespace pqs::math {

BernoulliBlockSampler::BernoulliBlockSampler(double p)
    : p_(std::clamp(p, 0.0, 1.0)) {
  // ldexp scales by a power of two exactly; for p_ < 1 the result is below
  // 2^64. Whenever scaled >= 2^53 the double is already integral, so a
  // nonzero tail_ can only occur for p_ < 2^-11 — and the subtraction is
  // then exact (both operands below 2^53).
  const double scaled = std::ldexp(p_, 64);
  const double integral = std::floor(scaled);
  threshold_ = p_ >= 1.0 ? ~0ULL : static_cast<std::uint64_t>(integral);
  tail_ = p_ >= 1.0 ? 0.0 : scaled - integral;
  // With no tail, digits below p's lowest set digit can never flip an
  // undecided lane to success — stop there (1 word total for p = 1/2).
  stop_level_ = tail_ > 0.0 || threshold_ == 0
                    ? 0
                    : static_cast<int>(__builtin_ctzll(threshold_));
}

void BernoulliBlockSampler::fill(std::uint64_t* words, std::size_t count,
                                 Rng& rng, bool invert) const {
  // One seed word regardless of p keeps the caller-visible stream cost
  // constant (degenerate p included, so toggling p across runs cannot shift
  // later draws).
  const std::uint64_t seed = rng.next();
  if (p_ <= 0.0 || p_ >= 1.0) {
    const std::uint64_t value = (p_ >= 1.0) != invert ? ~0ULL : 0ULL;
    std::fill(words, words + count, value);
    return;
  }
  simd::active().bernoulli_fill(words, count, spec(invert), seed);
}

std::uint64_t BernoulliBlockSampler::draw_block(Rng& rng) const {
  if (p_ <= 0.0) return 0;
  if (p_ >= 1.0) return ~0ULL;
  std::uint64_t success = 0;  // decided U < p
  std::uint64_t eq = ~0ULL;   // undecided: uniform's digits tie p's so far
  for (int level = 63; level >= stop_level_; --level) {
    const std::uint64_t w = rng.next();
    if ((threshold_ >> level) & 1ULL) {
      success |= eq & ~w;
      eq &= w;
    } else {
      eq &= ~w;
    }
    if (eq == 0) return success;
  }
  if (tail_ > 0.0) {
    // Exact-tail fallback: these lanes' uniforms equal the 64-digit prefix
    // of p exactly; each is a success with the residual probability.
    for (std::uint64_t m = eq; m != 0; m &= m - 1) {
      if (rng.chance(tail_)) success |= m & (~m + 1);
    }
  }
  return success;
}

}  // namespace pqs::math

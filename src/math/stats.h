// Online statistics and confidence intervals for Monte-Carlo verification.
#pragma once

#include <cstdint>

namespace pqs::math {

// Welford's online mean/variance accumulator.
class OnlineStats {
 public:
  void add(double x);

  std::uint64_t count() const { return count_; }
  double mean() const { return mean_; }
  // Sample variance (n-1 denominator); 0 for fewer than 2 samples.
  double variance() const;
  double stddev() const;
  // Standard error of the mean.
  double std_error() const;
  double min() const { return min_; }
  double max() const { return max_; }

 private:
  std::uint64_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

// Bernoulli success counter with Wilson-score confidence intervals — the
// right tool for checking that an observed nonintersection frequency is
// statistically consistent with an exact epsilon.
class Proportion {
 public:
  void add(bool success);
  void add(std::uint64_t successes, std::uint64_t trials);

  std::uint64_t trials() const { return trials_; }
  std::uint64_t successes() const { return successes_; }
  double estimate() const;

  struct Interval {
    double lo;
    double hi;
    bool contains(double p) const { return p >= lo && p <= hi; }
  };

  // Wilson score interval at z standard deviations (z = 3.89 ~ 99.99%).
  Interval wilson(double z) const;

 private:
  std::uint64_t trials_ = 0;
  std::uint64_t successes_ = 0;
};

}  // namespace pqs::math

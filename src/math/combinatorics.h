// Log-domain combinatorics.
//
// All probability computations in the library (exact epsilon values for the
// probabilistic quorum constructions, binomial failure-probability tails,
// hypergeometric intersection distributions) run in log space so that values
// like C(900, 450) or tail probabilities below 1e-300 stay representable.
#pragma once

#include <cstdint>
#include <limits>
#include <vector>

namespace pqs::math {

inline constexpr double kNegInf = -std::numeric_limits<double>::infinity();

// ln(n!) via lgamma. n must be >= 0.
double log_factorial(std::int64_t n);

// ln C(n, k). Returns kNegInf when the coefficient is zero (k < 0 or k > n).
double log_choose(std::int64_t n, std::int64_t k);

// Exact C(n, k) in unsigned 64-bit arithmetic. Throws std::overflow_error if
// the value exceeds 2^64-1. Used by tests to validate log_choose and by the
// small-system enumeration code.
std::uint64_t choose_exact(std::int64_t n, std::int64_t k);

// Numerically stable ln(e^a + e^b).
double log_add(double a, double b);

// Numerically stable ln(sum_i e^{terms[i]}). Empty input yields kNegInf.
double log_sum(const std::vector<double>& terms);

// exp() that clamps tiny negative rounding noise: values in (-1e-12, 0] map
// to a probability in [0, 1]. Inputs are log-probabilities, so the result is
// also clamped to at most 1.
double exp_probability(double log_p);

}  // namespace pqs::math

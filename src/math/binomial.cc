#include "math/binomial.h"

#include <cmath>
#include <vector>

#include "math/combinatorics.h"
#include "util/require.h"

namespace pqs::math {

double binomial_log_pmf(std::int64_t n, double p, std::int64_t k) {
  PQS_REQUIRE(n >= 0, "binomial n");
  PQS_REQUIRE(p >= 0.0 && p <= 1.0, "binomial p");
  if (k < 0 || k > n) return kNegInf;
  if (p == 0.0) return k == 0 ? 0.0 : kNegInf;
  if (p == 1.0) return k == n ? 0.0 : kNegInf;
  return log_choose(n, k) + static_cast<double>(k) * std::log(p) +
         static_cast<double>(n - k) * std::log1p(-p);
}

double binomial_pmf(std::int64_t n, double p, std::int64_t k) {
  return exp_probability(binomial_log_pmf(n, p, k));
}

double binomial_upper_tail(std::int64_t n, double p, std::int64_t k) {
  PQS_REQUIRE(n >= 0, "binomial n");
  if (k <= 0) return 1.0;
  if (k > n) return 0.0;
  // Sum whichever tail is the *smaller probability* (the one away from the
  // mean) directly in log domain and complement otherwise; summing the
  // large side and subtracting would destroy tiny tails entirely.
  std::vector<double> logs;
  if (static_cast<double>(k) > static_cast<double>(n) * p) {
    logs.reserve(static_cast<std::size_t>(n - k + 1));
    for (std::int64_t i = k; i <= n; ++i) logs.push_back(binomial_log_pmf(n, p, i));
    return exp_probability(log_sum(logs));
  }
  logs.reserve(static_cast<std::size_t>(k));
  for (std::int64_t i = 0; i < k; ++i) logs.push_back(binomial_log_pmf(n, p, i));
  const double lower = exp_probability(log_sum(logs));
  return lower >= 1.0 ? 0.0 : 1.0 - lower;
}

double binomial_lower_tail(std::int64_t n, double p, std::int64_t k) {
  if (k < 0) return 0.0;
  if (k >= n) return 1.0;
  const double upper = binomial_upper_tail(n, p, k + 1);
  return upper >= 1.0 ? 0.0 : 1.0 - upper;
}

double binomial_mean(std::int64_t n, double p) {
  return static_cast<double>(n) * p;
}

double binomial_variance(std::int64_t n, double p) {
  return static_cast<double>(n) * p * (1.0 - p);
}

}  // namespace pqs::math

#include "math/combinatorics.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "util/require.h"

namespace pqs::math {

double log_factorial(std::int64_t n) {
  PQS_REQUIRE(n >= 0, "factorial of negative number");
  return std::lgamma(static_cast<double>(n) + 1.0);
}

double log_choose(std::int64_t n, std::int64_t k) {
  if (k < 0 || k > n || n < 0) return kNegInf;
  if (k == 0 || k == n) return 0.0;
  return log_factorial(n) - log_factorial(k) - log_factorial(n - k);
}

std::uint64_t choose_exact(std::int64_t n, std::int64_t k) {
  if (k < 0 || k > n || n < 0) return 0;
  k = std::min(k, n - k);
  std::uint64_t result = 1;
  for (std::int64_t i = 1; i <= k; ++i) {
    const std::uint64_t num = static_cast<std::uint64_t>(n - k + i);
    // result * num / i is integral at each step; guard the multiply.
    if (result > std::numeric_limits<std::uint64_t>::max() / num) {
      throw std::overflow_error("choose_exact overflow");
    }
    result = result * num / static_cast<std::uint64_t>(i);
  }
  return result;
}

double log_add(double a, double b) {
  if (a == kNegInf) return b;
  if (b == kNegInf) return a;
  const double hi = std::max(a, b);
  const double lo = std::min(a, b);
  return hi + std::log1p(std::exp(lo - hi));
}

double log_sum(const std::vector<double>& terms) {
  double hi = kNegInf;
  for (double t : terms) hi = std::max(hi, t);
  if (hi == kNegInf) return kNegInf;
  double acc = 0.0;
  for (double t : terms) acc += std::exp(t - hi);
  return hi + std::log(acc);
}

double exp_probability(double log_p) {
  if (log_p == kNegInf) return 0.0;
  return std::min(1.0, std::exp(std::min(log_p, 0.0)));
}

}  // namespace pqs::math

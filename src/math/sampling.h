// Uniform sampling of server subsets.
//
// The access strategy of the paper's construction R(n, q) (Definition 3.13)
// picks a quorum uniformly at random among all q-subsets of the universe.
// sample_without_replacement implements that strategy; it is the hot path of
// every Monte-Carlo verifier and of quorum selection in the protocols.
#pragma once

#include <cstdint>
#include <vector>

#include "math/rng.h"

namespace pqs::math {

// Uniformly samples k distinct values from {0, 1, ..., n-1} using Floyd's
// algorithm (O(k) expected work, no O(n) allocation). The result is sorted.
std::vector<std::uint32_t> sample_without_replacement(std::uint32_t n,
                                                      std::uint32_t k,
                                                      Rng& rng);

// As above but writes into `out` (cleared first) to avoid reallocation in
// tight Monte-Carlo loops.
void sample_without_replacement(std::uint32_t n, std::uint32_t k, Rng& rng,
                                std::vector<std::uint32_t>& out);

// As above but sets the sampled ids as bits in `words` (ceil(n/64) words,
// all zero on entry; bit u of words[u/64] marks server u). Floyd's
// membership test IS the output mask here, so the draw does no sorting and
// no per-member stores beyond one OR each — the backbone of
// QuorumSystem::sample_mask for the size-based constructions. Consumes
// exactly the rng draws of the vector overloads and marks the same subset.
void sample_without_replacement_bits(std::uint32_t n, std::uint32_t k,
                                     Rng& rng, std::uint64_t* words);

// Fisher-Yates shuffle of the whole vector.
void shuffle(std::vector<std::uint32_t>& values, Rng& rng);

// Returns true iff sorted ranges a and b share at least one element.
bool sorted_intersects(const std::vector<std::uint32_t>& a,
                       const std::vector<std::uint32_t>& b);

// Size of the intersection of two sorted ranges.
std::size_t sorted_intersection_size(const std::vector<std::uint32_t>& a,
                                     const std::vector<std::uint32_t>& b);

}  // namespace pqs::math

#include "math/sampling.h"

#include <algorithm>

#include "util/require.h"

namespace pqs::math {

void sample_without_replacement(std::uint32_t n, std::uint32_t k, Rng& rng,
                                std::vector<std::uint32_t>& out) {
  PQS_REQUIRE(k <= n, "sample size exceeds population");
  out.clear();
  out.reserve(k);
  // Floyd's algorithm: for j in [n-k, n), pick t uniform in [0, j]; insert t
  // unless already present, else insert j. Uniform over all k-subsets.
  //
  // The membership test is a word-mask lookup (O(1)) over a thread-local
  // scratch instead of a linear scan, turning a draw from O(k^2) into
  // O(k + n/64); the RNG consumption and the returned subset are identical
  // to the scan version, so seeded experiments are unaffected.
  static thread_local std::vector<std::uint64_t> taken;
  const std::size_t words = (static_cast<std::size_t>(n) + 63) / 64;
  taken.assign(words, 0);
  for (std::uint32_t j = n - k; j < n; ++j) {
    const std::uint32_t t =
        static_cast<std::uint32_t>(rng.below(static_cast<std::uint64_t>(j) + 1));
    const std::uint32_t pick =
        (taken[t >> 6] >> (t & 63)) & 1ULL ? j : t;
    taken[pick >> 6] |= 1ULL << (pick & 63);
    out.push_back(pick);
  }
  std::sort(out.begin(), out.end());
}

void sample_without_replacement_bits(std::uint32_t n, std::uint32_t k,
                                     Rng& rng, std::uint64_t* words) {
  PQS_REQUIRE(k <= n, "sample size exceeds population");
  // Floyd's algorithm as above, with the output mask doubling as the
  // membership structure: O(k) total, nothing to sort.
  for (std::uint32_t j = n - k; j < n; ++j) {
    const std::uint32_t t =
        static_cast<std::uint32_t>(rng.below(static_cast<std::uint64_t>(j) + 1));
    const std::uint32_t pick =
        (words[t >> 6] >> (t & 63)) & 1ULL ? j : t;
    words[pick >> 6] |= 1ULL << (pick & 63);
  }
}

std::vector<std::uint32_t> sample_without_replacement(std::uint32_t n,
                                                      std::uint32_t k,
                                                      Rng& rng) {
  std::vector<std::uint32_t> out;
  sample_without_replacement(n, k, rng, out);
  return out;
}

void shuffle(std::vector<std::uint32_t>& values, Rng& rng) {
  for (std::size_t i = values.size(); i > 1; --i) {
    const std::size_t j = static_cast<std::size_t>(rng.below(i));
    std::swap(values[i - 1], values[j]);
  }
}

bool sorted_intersects(const std::vector<std::uint32_t>& a,
                       const std::vector<std::uint32_t>& b) {
  auto ia = a.begin();
  auto ib = b.begin();
  while (ia != a.end() && ib != b.end()) {
    if (*ia == *ib) return true;
    if (*ia < *ib) ++ia;
    else ++ib;
  }
  return false;
}

std::size_t sorted_intersection_size(const std::vector<std::uint32_t>& a,
                                     const std::vector<std::uint32_t>& b) {
  std::size_t count = 0;
  auto ia = a.begin();
  auto ib = b.begin();
  while (ia != a.end() && ib != b.end()) {
    if (*ia == *ib) {
      ++count;
      ++ia;
      ++ib;
    } else if (*ia < *ib) {
      ++ia;
    } else {
      ++ib;
    }
  }
  return count;
}

}  // namespace pqs::math

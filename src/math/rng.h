// Deterministic pseudo-random generation.
//
// The whole library (access strategies, Monte-Carlo verifiers, the
// discrete-event simulator) draws randomness from a single seeded generator
// so every experiment is reproducible. We implement xoshiro256** with
// SplitMix64 seeding — small, fast, and good enough statistically for
// simulation work. The class satisfies std::uniform_random_bit_generator.
#pragma once

#include <cstdint>

namespace pqs::math {

// SplitMix64: used to expand a single 64-bit seed into generator state.
class SplitMix64 {
 public:
  explicit SplitMix64(std::uint64_t seed) : state_(seed) {}
  std::uint64_t next();

 private:
  std::uint64_t state_;
};

// xoshiro256** by Blackman & Vigna (public domain reference algorithm).
class Rng {
 public:
  using result_type = std::uint64_t;

  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL);

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~0ULL; }
  result_type operator()() { return next(); }

  std::uint64_t next();

  // Uniform integer in [0, bound) without modulo bias (Lemire's method).
  std::uint64_t below(std::uint64_t bound);

  // Uniform double in [0, 1) with 53 bits of precision.
  double uniform();

  // Bernoulli(p) trial.
  bool chance(double p);

  // Uniform integer in [lo, hi] inclusive.
  std::int64_t between(std::int64_t lo, std::int64_t hi);

  // Exponentially distributed value with the given mean (> 0).
  double exponential(double mean);

  // Forks an independent generator; the child stream does not overlap the
  // parent's for any practical horizon. Used to give every simulated node
  // its own stream while keeping whole-run determinism from one seed.
  Rng fork();

  // Advances this generator by 2^128 steps (the xoshiro256** jump
  // polynomial). Successive jumps from one seed carve the period into
  // non-overlapping substreams of 2^128 draws each — the basis of the
  // deterministic sharding in core::Estimator: shard i gets a copy jumped
  // i times, so results are identical no matter how shards are scheduled.
  void jump();

  // Advances by 2^192 steps; partitions the sequence one level above
  // jump() (each long-jump leaves room for 2^64 jump() substreams).
  void long_jump();

  // The next substream: a copy of this generator after advancing *this* by
  // jump(). Calling substream() repeatedly yields generator 0, 1, 2, ...
  // of the non-overlapping substream sequence.
  Rng substream();

 private:
  // Polynomial-jump core shared by jump() and long_jump().
  void jump_with(const std::uint64_t (&polynomial)[4]);

  std::uint64_t s_[4];
};

}  // namespace pqs::math

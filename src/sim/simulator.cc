#include "sim/simulator.h"

#include <utility>

#include "util/require.h"

namespace pqs::sim {

void Simulator::schedule(Time delay, std::function<void()> fn) {
  PQS_REQUIRE(delay >= 0, "events cannot be scheduled in the past");
  queue_.push(Event{now_ + delay, next_seq_++, std::move(fn)});
}

bool Simulator::step() {
  if (queue_.empty()) return false;
  // Copy out before pop: the handler may schedule new events.
  Event ev = queue_.top();
  queue_.pop();
  now_ = ev.at;
  ++processed_;
  ev.fn();
  return true;
}

std::uint64_t Simulator::run() {
  std::uint64_t count = 0;
  while (step()) ++count;
  return count;
}

std::uint64_t Simulator::run_until(Time deadline) {
  std::uint64_t count = 0;
  while (!queue_.empty() && queue_.top().at <= deadline) {
    step();
    ++count;
  }
  if (now_ < deadline) now_ = deadline;
  return count;
}

bool Simulator::run_while(const std::function<bool()>& pending) {
  while (pending()) {
    if (!step()) return false;
  }
  return true;
}

}  // namespace pqs::sim

// Simulated point-to-point network.
//
// Network<M> delivers messages of type M between numbered nodes through a
// Simulator, applying a configurable latency model, iid message loss, and
// explicit partitions. Delivery per (sender, receiver) pair preserves the
// order implied by the sampled latencies (no FIFO guarantee is imposed —
// the paper's protocols are timestamp-based and do not need one).
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "math/rng.h"
#include "sim/simulator.h"
#include "util/require.h"

namespace pqs::sim {

using NodeId = std::uint32_t;

struct LatencyModel {
  // Fixed propagation floor plus an exponential jitter component.
  Time base = 100;          // microseconds
  Time jitter_mean = 50;    // mean of the exponential component; 0 = none
  double drop_probability = 0.0;

  Time sample(math::Rng& rng) const {
    Time t = base;
    if (jitter_mean > 0) {
      t += static_cast<Time>(rng.exponential(static_cast<double>(jitter_mean)));
    }
    return t;
  }
};

template <typename M>
class Network {
 public:
  using Handler = std::function<void(NodeId from, const M& message)>;

  Network(Simulator& simulator, LatencyModel latency, math::Rng rng)
      : simulator_(simulator), latency_(latency), rng_(rng) {}

  // Registers the handler for `node`; node ids must be registered densely
  // from 0 upward before any send to them.
  void register_node(NodeId node, Handler handler) {
    if (handlers_.size() <= node) handlers_.resize(node + 1);
    handlers_[node] = std::move(handler);
  }

  std::size_t node_count() const { return handlers_.size(); }

  // Severs connectivity in both directions between the two groups.
  void partition(std::vector<NodeId> group_a, std::vector<NodeId> group_b) {
    partitions_.push_back({std::move(group_a), std::move(group_b)});
  }
  void heal_partitions() { partitions_.clear(); }

  // Sends `message`; it is dropped silently if the loss model or a
  // partition says so, otherwise delivered after a sampled latency.
  void send(NodeId from, NodeId to, M message) {
    PQS_REQUIRE(to < handlers_.size(), "send to unregistered node");
    ++sent_;
    if (severed(from, to) || rng_.chance(latency_.drop_probability)) {
      ++dropped_;
      return;
    }
    const Time delay = latency_.sample(rng_);
    simulator_.schedule(delay, [this, from, to, msg = std::move(message)]() {
      ++delivered_;
      if (handlers_[to]) handlers_[to](from, msg);
    });
  }

  std::uint64_t messages_sent() const { return sent_; }
  std::uint64_t messages_delivered() const { return delivered_; }
  std::uint64_t messages_dropped() const { return dropped_; }

 private:
  struct Partition {
    std::vector<NodeId> a;
    std::vector<NodeId> b;
  };

  static bool contains(const std::vector<NodeId>& v, NodeId x) {
    for (NodeId y : v) {
      if (y == x) return true;
    }
    return false;
  }

  bool severed(NodeId from, NodeId to) const {
    for (const auto& p : partitions_) {
      if ((contains(p.a, from) && contains(p.b, to)) ||
          (contains(p.b, from) && contains(p.a, to))) {
        return true;
      }
    }
    return false;
  }

  Simulator& simulator_;
  LatencyModel latency_;
  math::Rng rng_;
  std::vector<Handler> handlers_;
  std::vector<Partition> partitions_;
  std::uint64_t sent_ = 0;
  std::uint64_t delivered_ = 0;
  std::uint64_t dropped_ = 0;
};

}  // namespace pqs::sim

// Simulated point-to-point network.
//
// Network<M> delivers messages of type M between numbered nodes through a
// Simulator, applying a configurable latency model, iid message loss, and
// explicit partitions. Delivery per (sender, receiver) pair preserves the
// order implied by the sampled latencies (no FIFO guarantee is imposed —
// the paper's protocols are timestamp-based and do not need one).
//
// In-flight messages live in a pooled slot arena, not in per-event
// closures: send() parks {from, to, message} in a recycled slot and
// schedules a trivially-copyable {network, slot} thunk that fits
// std::function's small-buffer optimisation. Steady state therefore
// allocates nothing per message — the arena grows to the high-water mark
// of concurrently in-flight messages and is reused from then on (and the
// recycled slots keep their message payload capacity warm).
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <utility>
#include <vector>

#include "math/rng.h"
#include "sim/simulator.h"
#include "util/require.h"

namespace pqs::sim {

using NodeId = std::uint32_t;

struct LatencyModel {
  // Fixed propagation floor plus an exponential jitter component.
  Time base = 100;          // microseconds
  Time jitter_mean = 50;    // mean of the exponential component; 0 = none
  double drop_probability = 0.0;

  Time sample(math::Rng& rng) const {
    Time t = base;
    if (jitter_mean > 0) {
      t += static_cast<Time>(rng.exponential(static_cast<double>(jitter_mean)));
    }
    return t;
  }
};

template <typename M>
class Network {
 public:
  using Handler = std::function<void(NodeId from, const M& message)>;

  Network(Simulator& simulator, LatencyModel latency, math::Rng rng)
      : simulator_(simulator), latency_(latency), rng_(rng) {}

  // Registers the handler for `node`; node ids must be registered densely
  // from 0 upward before any send to them.
  void register_node(NodeId node, Handler handler) {
    if (handlers_.size() <= node) handlers_.resize(node + 1);
    handlers_[node] = std::move(handler);
  }

  std::size_t node_count() const { return handlers_.size(); }

  // Severs connectivity in both directions between the two groups.
  void partition(std::vector<NodeId> group_a, std::vector<NodeId> group_b) {
    partitions_.push_back({std::move(group_a), std::move(group_b)});
  }
  void heal_partitions() { partitions_.clear(); }

  // Sends `message`; it is dropped silently if the loss model or a
  // partition says so, otherwise delivered after a sampled latency.
  void send(NodeId from, NodeId to, M message) {
    PQS_REQUIRE(to < handlers_.size(), "send to unregistered node");
    ++sent_;
    if (severed(from, to) || rng_.chance(latency_.drop_probability)) {
      ++dropped_;
      return;
    }
    const Time delay = latency_.sample(rng_);
    std::uint32_t slot;
    if (!free_slots_.empty()) {
      slot = free_slots_.back();
      free_slots_.pop_back();
      Slot& s = pool_[slot];
      s.from = from;
      s.to = to;
      s.message = std::move(message);
    } else {
      slot = static_cast<std::uint32_t>(pool_.size());
      pool_.push_back(Slot{from, to, std::move(message)});
    }
    simulator_.schedule(delay, Delivery{this, slot});
  }

  std::uint64_t messages_sent() const { return sent_; }
  std::uint64_t messages_delivered() const { return delivered_; }
  std::uint64_t messages_dropped() const { return dropped_; }
  // Arena high-water mark: the most messages ever simultaneously in flight.
  std::size_t message_pool_size() const { return pool_.size(); }

 private:
  struct Partition {
    std::vector<NodeId> a;
    std::vector<NodeId> b;
  };

  // One parked in-flight message. The deque keeps slots address-stable
  // while a delivery handler sends more messages (which may grow the pool
  // mid-delivery).
  struct Slot {
    NodeId from = 0;
    NodeId to = 0;
    M message;
  };

  // The scheduled thunk: 16 trivially-copyable bytes, so std::function
  // stores it inline (no per-message heap node).
  struct Delivery {
    Network* network;
    std::uint32_t slot;
    void operator()() const { network->deliver(slot); }
  };

  void deliver(std::uint32_t slot) {
    ++delivered_;
    Slot& s = pool_[slot];
    if (handlers_[s.to]) handlers_[s.to](s.from, s.message);
    // Recycle only after the handler returns: nested sends grab fresh
    // slots, so `s` stays untouched for the duration of the call.
    free_slots_.push_back(slot);
  }

  static bool contains(const std::vector<NodeId>& v, NodeId x) {
    for (NodeId y : v) {
      if (y == x) return true;
    }
    return false;
  }

  bool severed(NodeId from, NodeId to) const {
    for (const auto& p : partitions_) {
      if ((contains(p.a, from) && contains(p.b, to)) ||
          (contains(p.b, from) && contains(p.a, to))) {
        return true;
      }
    }
    return false;
  }

  Simulator& simulator_;
  LatencyModel latency_;
  math::Rng rng_;
  std::vector<Handler> handlers_;
  std::vector<Partition> partitions_;
  std::deque<Slot> pool_;
  std::vector<std::uint32_t> free_slots_;
  std::uint64_t sent_ = 0;
  std::uint64_t delivered_ = 0;
  std::uint64_t dropped_ = 0;
};

}  // namespace pqs::sim

// Discrete-event simulator.
//
// A single-threaded virtual-time event loop. All protocol execution in this
// library happens inside one Simulator: the network schedules message
// deliveries, clients schedule operation timeouts, the gossip engine
// schedules rounds. Events at equal timestamps fire in scheduling order
// (a monotonically increasing sequence number breaks ties), which makes
// every run bit-for-bit deterministic for a fixed seed.
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

namespace pqs::sim {

// Virtual time in microseconds.
using Time = std::int64_t;

class Simulator {
 public:
  Simulator() = default;
  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  Time now() const { return now_; }

  // Schedules `fn` to run at now() + delay (delay >= 0).
  void schedule(Time delay, std::function<void()> fn);

  // Runs events until the queue empties. Returns events processed.
  std::uint64_t run();

  // Runs events with timestamp <= deadline; leaves later events queued.
  std::uint64_t run_until(Time deadline);

  // Runs until `predicate` returns true or the queue empties. Returns true
  // iff the predicate was satisfied. The predicate is checked after each
  // event.
  bool run_while(const std::function<bool()>& pending);

  std::uint64_t events_processed() const { return processed_; }
  bool idle() const { return queue_.empty(); }

 private:
  struct Event {
    Time at;
    std::uint64_t seq;
    std::function<void()> fn;
  };
  struct Later {
    bool operator()(const Event& a, const Event& b) const {
      if (a.at != b.at) return a.at > b.at;
      return a.seq > b.seq;
    }
  };

  bool step();

  Time now_ = 0;
  std::uint64_t next_seq_ = 0;
  std::uint64_t processed_ = 0;
  std::priority_queue<Event, std::vector<Event>, Later> queue_;
};

}  // namespace pqs::sim

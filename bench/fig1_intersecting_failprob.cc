// Figure 1: Failure probabilities of probabilistic quorum systems.
//
// Left graph: F_p of R(n, l sqrt(n)) for n = 100 and n = 300 (l minimal for
// eps <= 1e-3) against the lower bound on the failure probability of ANY
// strict quorum system over at most 300 servers — the minimum of the
// majority-of-300 curve (best strict system for p < 1/2) and the singleton
// curve F_p = p (best for p >= 1/2; footnote 3).
//
// Right graph: the same probabilistic systems against the corresponding
// strict threshold constructions (quorums of size ceil((n+1)/2)).
#include <iostream>

#include "bench_common.h"
#include "core/lower_bounds.h"
#include "core/random_subset_system.h"
#include "quorum/threshold.h"
#include "util/table.h"

int main() {
  using namespace pqs;

  util::banner(std::cout,
               "Figure 1: Failure probabilities of probabilistic quorum "
               "systems (eps <= 1e-3)");

  const auto prob100 = core::RandomSubsetSystem::intersecting(100, 1e-3);
  const auto prob300 = core::RandomSubsetSystem::intersecting(300, 1e-3);
  const auto maj100 = quorum::ThresholdSystem::majority(100);
  const auto maj300 = quorum::ThresholdSystem::majority(300);

  std::cout << "systems: " << prob100.name() << " (l=" << util::fixed(
                   prob100.ell(), 2)
            << "), " << prob300.name() << " (l=" << util::fixed(
                   prob300.ell(), 2)
            << ")\n\n";

  util::TextTable t({"p", "prob n=100", "prob n=300", "strict LB (n<=300)",
                     "threshold n=100", "threshold n=300"});
  util::CsvWriter csv({"p", "prob100", "prob300", "strict_lb", "thr100",
                       "thr300"});
  for (double p : bench::p_sweep()) {
    const double f100 = prob100.failure_probability(p);
    const double f300 = prob300.failure_probability(p);
    const double lb = core::strict_failure_probability_lower_bound(300, p);
    const double t100 = maj100.failure_probability(p);
    const double t300 = maj300.failure_probability(p);
    t.row()
        .cell(p, 2)
        .cell_sci(f100, 2)
        .cell_sci(f300, 2)
        .cell_sci(lb, 2)
        .cell_sci(t100, 2)
        .cell_sci(t300, 2);
    csv.row({util::fixed(p, 2), util::sci(f100, 6), util::sci(f300, 6),
             util::sci(lb, 6), util::sci(t100, 6), util::sci(t300, 6)});
  }
  t.print(std::cout);

  std::cout
      << "\nShape check (paper's Fig. 1): for p < 1/2 the strict threshold\n"
         "systems are competitive; past p = 1/2 every strict system is\n"
         "pinned at F_p >= p while the probabilistic constructions keep\n"
         "F_p ~ e^{-Theta(n)} until p approaches 1 - l/sqrt(n) (~0.75 for\n"
         "n=100, ~0.85 for n=300), decisively beating the strict lower\n"
         "bound in that whole range.\n";

  std::cout << "\nCSV:\n" << csv.str();
  return 0;
}

// Protocol validation: Theorems 3.2, 4.2 and 5.2 measured end-to-end.
//
// For each regime, runs the full write/read protocol on a cluster with the
// paper's fault model injected and compares the observed failure rate of
// non-concurrent reads against the analytic epsilon:
//   * Theorem 3.2 (benign): staleness rate == exact nonintersection eps.
//   * Theorem 4.2 (dissemination, b stale-replaying servers with valid
//     MACs): staleness rate == exact dissemination eps; fabrications are
//     never accepted.
//   * Theorem 5.2 (masking, b colluding servers): wrong-value rate ==
//     P(|Q ∩ B| >= k); stale/None rate completes the masking eps.
#include <iostream>
#include <memory>

#include "core/epsilon.h"
#include "core/random_subset_system.h"
#include "math/hypergeometric.h"
#include "math/stats.h"
#include "replica/instant_cluster.h"
#include "util/table.h"

namespace {

constexpr int kPairs = 200000;

struct Observed {
  double stale_or_none = 0.0;
  double wrong = 0.0;  // value never written by the writer
};

Observed run(const pqs::replica::InstantCluster::Config& cfg,
             const pqs::replica::FaultPlan& faults) {
  pqs::replica::InstantCluster cluster(cfg, faults);
  pqs::math::Proportion stale;
  pqs::math::Proportion wrong;
  std::int64_t value = 0;
  for (int i = 0; i < kPairs; ++i) {
    cluster.write(1, ++value);
    const auto r = cluster.read(1);
    const bool fresh = r.selection.has_value &&
                       r.selection.record.value == value;
    const bool fabricated =
        r.selection.has_value &&
        (r.selection.record.value > value || r.selection.record.value < 0);
    stale.add(!fresh && !fabricated);
    wrong.add(fabricated);
  }
  return {stale.estimate(), wrong.estimate()};
}

}  // namespace

int main() {
  using namespace pqs;

  util::banner(std::cout,
               "Protocol validation: Theorems 3.2 / 4.2 / 5.2, " +
                   std::to_string(kPairs) + " write/read pairs each");

  util::TextTable t({"theorem", "system", "faults", "analytic eps",
                     "observed stale", "observed wrong-value"});

  {  // Theorem 3.2 — benign; coarse parameters so the rate is measurable.
    const std::uint32_t n = 64, q = 12;
    replica::InstantCluster::Config cfg;
    cfg.quorums = std::make_shared<core::RandomSubsetSystem>(n, q);
    cfg.seed = 1;
    const auto obs = run(cfg, replica::FaultPlan(n));
    t.row()
        .cell("3.2 (benign)")
        .cell(cfg.quorums->name())
        .cell("none")
        .cell_sci(core::nonintersection_exact(n, q), 3)
        .cell_sci(obs.stale_or_none, 3)
        .cell_sci(obs.wrong, 3);
  }

  {  // Theorem 4.2 — dissemination with stale-replaying Byzantine servers.
    const std::uint32_t n = 64, q = 16, b = 12;
    replica::InstantCluster::Config cfg;
    cfg.quorums = std::make_shared<core::RandomSubsetSystem>(
        core::RandomSubsetSystem::with_byzantine(
            n, q, b, core::Regime::kDissemination));
    cfg.mode = replica::ReadMode::kDissemination;
    cfg.seed = 2;
    const auto obs =
        run(cfg, replica::FaultPlan::prefix(n, b, replica::FaultMode::kStaleReplay));
    t.row()
        .cell("4.2 (dissemination)")
        .cell(cfg.quorums->name())
        .cell(std::to_string(b) + " stale-replay")
        .cell_sci(core::dissemination_epsilon_exact(n, q, b), 3)
        .cell_sci(obs.stale_or_none, 3)
        .cell_sci(obs.wrong, 3);
  }

  {  // Theorem 4.2 under outright forgers: wrong-value must be zero.
    const std::uint32_t n = 64, q = 16, b = 12;
    replica::InstantCluster::Config cfg;
    cfg.quorums = std::make_shared<core::RandomSubsetSystem>(
        core::RandomSubsetSystem::with_byzantine(
            n, q, b, core::Regime::kDissemination));
    cfg.mode = replica::ReadMode::kDissemination;
    cfg.seed = 3;
    const auto obs =
        run(cfg, replica::FaultPlan::prefix(n, b, replica::FaultMode::kForge));
    t.row()
        .cell("4.2 (dissemination)")
        .cell(cfg.quorums->name())
        .cell(std::to_string(b) + " forge")
        .cell_sci(core::dissemination_epsilon_exact(n, q, b), 3)
        .cell_sci(obs.stale_or_none, 3)
        .cell_sci(obs.wrong, 3);
  }

  {  // Theorem 5.2 — masking with colluders.
    const std::uint32_t n = 64, q = 24, b = 8;
    const auto k = static_cast<std::uint32_t>(core::masking_threshold(n, q));
    replica::InstantCluster::Config cfg;
    cfg.quorums = std::make_shared<core::RandomSubsetSystem>(
        core::RandomSubsetSystem::with_byzantine(n, q, b,
                                                 core::Regime::kMasking));
    cfg.mode = replica::ReadMode::kMasking;
    cfg.read_threshold = k;
    cfg.seed = 4;
    const auto obs =
        run(cfg, replica::FaultPlan::prefix(n, b, replica::FaultMode::kCollude));
    const auto X = math::make_hypergeometric(n, b, q);
    t.row()
        .cell("5.2 (masking)")
        .cell(cfg.quorums->name())
        .cell(std::to_string(b) + " collude")
        .cell_sci(core::masking_epsilon_exact(n, q, b, k), 3)
        .cell_sci(obs.stale_or_none, 3)
        .cell_sci(obs.wrong, 3);
    std::cout << "masking wrong-value analytic P(|Q∩B| >= k) = "
              << util::sci(X.upper_tail(k), 3) << "\n";
  }

  t.print(std::cout);

  std::cout
      << "\nReading: observed staleness tracks the analytic eps column\n"
         "(statistical noise ~ +/-3e-4 at this sample size); wrong-value\n"
         "rates are zero under dissemination (MACs cannot be forged) and\n"
         "match P(|Q ∩ B| >= k) under masking collusion.\n";
  return 0;
}

// Figure 3: Failure probabilities of probabilistic masking quorum systems,
// b = sqrt(n).
//
// Left: (b, eps)-masking R_k(n, q) for n = 100, 300 vs the strict lower
// bound (n <= 300). Right: vs the strict threshold masking construction
// (quorums of ceil((n+2b+1)/2)).
#include <iostream>

#include "bench_common.h"
#include "core/lower_bounds.h"
#include "core/random_subset_system.h"
#include "quorum/threshold.h"
#include "util/table.h"

int main() {
  using namespace pqs;

  util::banner(std::cout,
               "Figure 3: Failure probabilities of probabilistic masking "
               "quorum systems (b = sqrt(n), eps <= 1e-3)");

  const std::uint32_t b100 = bench::isqrt(100);
  const std::uint32_t b300 = bench::isqrt(300);
  const auto prob100 = core::RandomSubsetSystem::masking(100, b100, 1e-3);
  const auto prob300 = core::RandomSubsetSystem::masking(300, b300, 1e-3);
  const auto thr100 = quorum::ThresholdSystem::masking(100, b100);
  const auto thr300 = quorum::ThresholdSystem::masking(300, b300);

  std::cout << "systems: " << prob100.name() << ", " << prob300.name()
            << " vs threshold sizes " << thr100.min_quorum_size() << ", "
            << thr300.min_quorum_size() << "\n\n";

  util::TextTable t({"p", "prob n=100", "prob n=300", "strict LB (n<=300)",
                     "thr-mask n=100", "thr-mask n=300"});
  util::CsvWriter csv({"p", "prob100", "prob300", "strict_lb", "thr100",
                       "thr300"});
  for (double p : bench::p_sweep()) {
    const double f100 = prob100.failure_probability(p);
    const double f300 = prob300.failure_probability(p);
    const double lb = core::strict_failure_probability_lower_bound(300, p);
    const double t100 = thr100.failure_probability(p);
    const double t300 = thr300.failure_probability(p);
    t.row()
        .cell(p, 2)
        .cell_sci(f100, 2)
        .cell_sci(f300, 2)
        .cell_sci(lb, 2)
        .cell_sci(t100, 2)
        .cell_sci(t300, 2);
    csv.row({util::fixed(p, 2), util::sci(f100, 6), util::sci(f300, 6),
             util::sci(lb, 6), util::sci(t100, 6), util::sci(t300, 6)});
  }
  t.print(std::cout);

  std::cout
      << "\nShape check (paper's Fig. 3): masking quorums are the largest\n"
         "of the three regimes, so the probabilistic curves lift off\n"
         "slightly earlier than in Figs. 1-2 (q ~ 5.4 sqrt(n) at n=100),\n"
         "while the strict threshold masking construction needs\n"
         "(n + 2 sqrt(n) + 1)/2 live servers and is pinned above p ~ 0.4;\n"
         "the probabilistic system still beats the strict bound past 1/2.\n";

  std::cout << "\nCSV:\n" << csv.str();
  return 0;
}

// Serving-tier throughput under Byzantine read rules and injected server
// faults, and the masking-quorum fabrication epsilon measured against its
// closed form (Lemma 5.7).
//
// Three experiments share the binary:
//
//   * an honest-path overhead sweep over serve::KvService — 4 static
//     shards of R(64, 16) quorums serve the same zipf request stream
//     under plain, dissemination (MAC-verified), and masking
//     (k = ceil(q^2 / 2n) voucher) read rules with zero faulty servers —
//     reporting ops/sec and tail latency per rule plus the overhead
//     ratio vs plain, so CI can see what Byzantine tolerance costs an
//     honest deployment. Every section is also a functional gate: the
//     per-shard aggregates re-run with {1, 8} workers and the allocating
//     draw path and must agree bit for bit, and the Byzantine counters
//     (rejected_forgeries, masked_reads) must be exactly zero under
//     plain and dissemination (masking rejects sub-k groups of honest
//     stale replies too — by design — so its counters are reported, not
//     zero-gated).
//
//   * a live fault-injection run — the masking section re-runs with b =
//     4 servers flipped to kCollude through KvService::submit_fault
//     mid-stream (and healed with kCorrect later), so the fault flips
//     ride the shard rings at definite FIFO positions exactly like churn
//     events. The run must stay bit-identical across worker counts and
//     draw paths, apply every flip, and show the masking rule working:
//     rejected_forgeries > 0 while the colluders are live.
//
//   * a fabrication-epsilon sweep over replica::InstantCluster — for
//     each b in {0, 1, b_max/2, b_max}, shards of write/read pairs
//     against a cluster whose first b servers collude on an
//     astronomically fresh forged record measure (a) the fabricated-
//     acceptance rate, gated by core::fabrication_epsilon_exact — the
//     hypergeometric tail P(|Q cap B| >= k) of Lemma 5.7 — plus a
//     multiplicative Chernoff margin sized for failure probability <=
//     1e-9, and (b) the total failed-read rate, gated the same way by
//     core::masking_epsilon_exact (Definition 5.1). Acceptance of the
//     forgery requires >= k colluders in the read quorum (every honest
//     group with >= k vouchers has a lower timestamp only when the fresh
//     write group falls under k), so both measured rates are contained
//     in their predicted events — the gates re-check the paper's bound
//     on the deployed stack at bench scale. b = 1 < k is a structural
//     zero: the bench asserts zero fabrications outright. The batched
//     Monte Carlo estimator (core::estimate_fabrication_epsilon) runs
//     alongside and must bracket the closed form in its Wilson interval.
//     A fixed-schedule replay across {1, 8} threads and both draw paths
//     gates bit-identity of the measurement itself.
//
// Flags: --threads=N (shard-serving workers for the timed runs, 0 =
// hardware), --samples=N (requests per section and pairs per epsilon
// shard; default 30000), --json=PATH (machine-readable report — CI
// archives it as BENCH_byzantine.json and gates it with
// bench/check_byzantine_regression.py).
#include <algorithm>
#include <chrono>
#include <cinttypes>
#include <cmath>
#include <cstdio>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.h"
#include "core/epsilon.h"
#include "core/monte_carlo.h"
#include "core/random_subset_system.h"
#include "math/chernoff.h"
#include "math/rng.h"
#include "replica/fault.h"
#include "replica/instant_cluster.h"
#include "serve/kv_service.h"
#include "simd/kernels.h"
#include "stats/latency_histogram.h"
#include "util/worker_pool.h"
#include "workload/open_loop.h"

namespace pqs {
namespace {

using replica::DrawPath;
using replica::ReadMode;

constexpr std::uint32_t kUniverse = 64;  // R(64, 16) per shard
constexpr std::uint32_t kQuorum = 16;
constexpr std::uint64_t kKeys = 4096;
constexpr std::uint32_t kShards = 4;
constexpr std::uint32_t kColluders = 4;  // b_max for the live section

// The masking voucher threshold k = ceil(q^2 / 2n) (Section 5): the
// smallest k with 2 q - n - b >= k still feasible at these parameters.
std::uint32_t masking_k() {
  return static_cast<std::uint32_t>(core::masking_threshold(kUniverse,
                                                            kQuorum));
}

// ---- read-rule throughput + live fault injection ---------------------------

// When inject_at > 0, servers {0..colluders-1} on every shard flip to
// kCollude after request inject_at and heal (kCorrect) after heal_at.
struct FaultScript {
  std::uint32_t colluders = 0;
  std::uint64_t inject_at = 0;
  std::uint64_t heal_at = 0;

  std::uint64_t expected_events() const {
    return inject_at == 0 ? 0
                          : static_cast<std::uint64_t>(kShards) * colluders *
                                (heal_at > 0 ? 2 : 1);
  }
};

struct SectionSpec {
  std::string name;
  ReadMode mode = ReadMode::kPlain;
  FaultScript faults;
};

std::vector<SectionSpec> make_sections(std::uint64_t ops) {
  std::vector<SectionSpec> sections = {
      {"plain", ReadMode::kPlain, {}},
      {"dissemination", ReadMode::kDissemination, {}},
      {"masking", ReadMode::kMasking, {}},
  };
  // The adversarial run: colluders live for the middle half of the
  // stream, so the aggregates cover honest, adversarial, and healed
  // regimes in one deterministic subsequence.
  sections.push_back({"masking_live_b4",
                      ReadMode::kMasking,
                      {kColluders, ops / 4, (3 * ops) / 4}});
  return sections;
}

struct RunOutcome {
  std::vector<serve::ShardAggregate> aggregates;  // the bit-identity payload
  serve::ShardAggregate fold;
  stats::LatencyHistogram histogram;
  double seconds = 0.0;
  bool drained_all = false;
};

// One complete run: a single producer drives the service with the same
// generated stream every time; fault flips are interleaved at fixed
// request indices, so each shard's subsequence of requests and flips is
// a pure function of (ops, seed, script) — the determinism precondition.
RunOutcome drive(const std::shared_ptr<const quorum::QuorumSystem>& sys,
                 const SectionSpec& section, std::uint32_t workers,
                 DrawPath path, std::uint64_t ops, std::uint64_t seed) {
  serve::KvService::Config cfg;
  cfg.shards = kShards;
  cfg.workers = workers;
  cfg.quorums = sys;
  cfg.draw_path = path;
  cfg.seed = seed;
  cfg.read_mode = section.mode;
  cfg.read_threshold = section.mode == ReadMode::kMasking ? masking_k() : 1;
  serve::KvService service(cfg);

  workload::OpenLoopSpec spec;
  spec.keys = kKeys;
  spec.zipf_exponent = 0.99;
  spec.read_fraction = 0.5;
  workload::OpenLoopGenerator gen(spec, seed ^ 0xa02bdbf7bb3c0a7ULL);

  const FaultScript& script = section.faults;
  workload::Operation op;
  serve::Request req;
  const auto t0 = std::chrono::steady_clock::now();
  service.start();
  for (std::uint64_t i = 0; i < ops; ++i) {
    gen.next(op);
    req.key = op.key;
    req.value = op.value;
    req.scheduled_ns = service.now_ns();
    req.is_read = op.is_read;
    service.submit(req);
    if (script.inject_at != 0 && i + 1 == script.inject_at) {
      for (std::uint32_t s = 0; s < kShards; ++s) {
        for (std::uint32_t slot = 0; slot < script.colluders; ++slot) {
          service.submit_fault(s, serve::FaultKind::kCollude, slot);
        }
      }
    }
    if (script.heal_at != 0 && i + 1 == script.heal_at) {
      for (std::uint32_t s = 0; s < kShards; ++s) {
        for (std::uint32_t slot = 0; slot < script.colluders; ++slot) {
          service.submit_fault(s, serve::FaultKind::kCorrect, slot);
        }
      }
    }
  }
  service.stop_and_drain();
  const auto t1 = std::chrono::steady_clock::now();

  RunOutcome out;
  out.aggregates = service.aggregates();
  out.fold = service.fold_aggregates();
  out.histogram = service.merged_histogram();
  out.seconds = std::chrono::duration<double>(t1 - t0).count();
  out.drained_all = out.histogram.count() == ops &&
                    out.fold.reads + out.fold.writes == ops &&
                    out.fold.fault_events == script.expected_events();
  return out;
}

// ---- fabrication-epsilon sweep --------------------------------------------

struct ByzantineRun {
  std::uint64_t pairs = 0;
  std::uint64_t fabricated = 0;  // read returned the colluders' forgery
  std::uint64_t failures = 0;    // read != the value just written (or bot)

  bool operator==(const ByzantineRun& o) const {
    return pairs == o.pairs && fabricated == o.fabricated &&
           failures == o.failures;
  }
};

// One shard of the epsilon measurement: write/read pairs under masking
// against a cluster whose first b servers collude on the shared forged
// record. Fabricated iff the selection is the forged value; failed iff
// the selection is anything but the value just written.
ByzantineRun byzantine_shard(std::uint32_t b, std::uint64_t pairs,
                             std::uint64_t seed, DrawPath path) {
  replica::InstantCluster::Config cfg;
  cfg.quorums = std::make_shared<core::RandomSubsetSystem>(kUniverse, kQuorum);
  cfg.mode = ReadMode::kMasking;
  cfg.read_threshold = masking_k();
  cfg.seed = seed;
  cfg.draw_path = path;
  replica::InstantCluster cluster(
      cfg, replica::FaultPlan::prefix(kUniverse, b, replica::FaultMode::kCollude));
  const std::int64_t forged_value = replica::ColludePlan{}.value;
  ByzantineRun run;
  run.pairs = pairs;
  replica::WriteResult w;
  replica::ReadResult r;
  std::int64_t value = 0;
  for (std::uint64_t i = 0; i < pairs; ++i) {
    cluster.write_into(w, /*variable=*/1, ++value);
    cluster.read_into(r, 1);
    const bool got_value = r.selection.has_value;
    if (got_value && r.selection.record.value == forged_value) {
      ++run.fabricated;
    }
    if (!got_value || r.selection.record.value != value) {
      ++run.failures;
    }
  }
  return run;
}

std::vector<ByzantineRun> byzantine_shards(std::uint32_t b,
                                           std::uint64_t pairs_per_shard,
                                           std::uint32_t shards,
                                           unsigned threads, DrawPath path) {
  std::vector<ByzantineRun> runs(shards);
  util::WorkerPool pool(threads);
  pool.run(shards, [&](std::uint64_t s) {
    runs[s] = byzantine_shard(b, pairs_per_shard,
                              /*seed=*/211 + 1000003 * s, path);
  });
  return runs;
}

struct SweepPoint {
  std::uint32_t b = 0;
  std::uint64_t pairs = 0;
  std::uint64_t fabricated = 0;
  std::uint64_t failures = 0;
  double fab_measured = 0.0;
  double fab_exact = 0.0;      // fabrication_epsilon_exact (Lemma 5.7)
  double fab_estimated = 0.0;  // estimate_fabrication_epsilon (Monte Carlo)
  double fab_bound = 0.0;      // (1 + gamma) * fab_exact, 0 when exact = 0
  double fail_measured = 0.0;
  double fail_exact = 0.0;  // masking_epsilon_exact (Definition 5.1)
  double fail_bound = 0.0;  // (1 + gamma) * fail_exact
};

// gamma sized so that P(Binomial(N, eps) > (1+gamma) N eps) <= 1e-9 by
// the multiplicative Chernoff bound (math/chernoff.h) — the conformance
// test's margin, recomputed at this run's sample size.
double margin_gamma(double mu) {
  return std::sqrt(4.0 * std::log(2e9) / mu);
}

// Gates `count` successes over `pairs` trials against predicted rate
// `exact` plus the Chernoff margin; a structurally impossible event
// (exact = 0) must not occur at all. Returns the bound used.
double gate_rate(const char* what, std::uint32_t b, std::uint64_t count,
                 std::uint64_t pairs, double exact, bool& ok) {
  if (exact == 0.0) {
    if (count != 0) {
      std::printf("MISMATCH: b=%u saw %" PRIu64
                  " %s reads where the closed form says zero\n",
                  b, count, what);
      ok = false;
    }
    return 0.0;
  }
  const double mu = static_cast<double>(pairs) * exact;
  const double gamma = margin_gamma(mu);
  const double bound = (1.0 + gamma) * exact;
  const double measured = static_cast<double>(count) /
                          static_cast<double>(pairs);
  if (math::chernoff_upper(mu, gamma) > 1e-9 || measured > bound) {
    std::printf("MISMATCH: b=%u measured %s rate %.6g exceeds bound %.6g "
                "(predicted %.6g)\n",
                b, what, measured, bound, exact);
    ok = false;
  }
  return bound;
}

std::vector<SweepPoint> byzantine_sweep(std::uint64_t pairs_per_shard,
                                        unsigned threads, bool& ok) {
  constexpr std::uint32_t kEpsShards = 8;
  const std::uint32_t k = masking_k();
  const auto sys =
      std::make_shared<core::RandomSubsetSystem>(kUniverse, kQuorum);
  std::vector<SweepPoint> points;
  for (const std::uint32_t b : {0u, 1u, kColluders / 2, kColluders}) {
    SweepPoint p;
    p.b = b;
    p.fab_exact = core::fabrication_epsilon_exact(kUniverse, kQuorum, b, k);
    p.fail_exact = core::masking_epsilon_exact(kUniverse, kQuorum, b, k);

    // Monte Carlo cross-check of the closed form on single quorum draws:
    // the Wilson interval at z = 6 must bracket the hypergeometric tail.
    math::Rng est_rng(0xfab0 + b);
    const math::Proportion est = core::estimate_fabrication_epsilon(
        *sys, b, k, /*samples=*/200000, est_rng);
    p.fab_estimated = est.estimate();
    if (!est.wilson(6.0).contains(p.fab_exact)) {
      std::printf("MISMATCH: b=%u Monte Carlo fabrication epsilon %.6g "
                  "outside the Wilson interval around the closed form "
                  "%.6g\n",
                  b, p.fab_estimated, p.fab_exact);
      ok = false;
    }

    ByzantineRun total;
    for (const ByzantineRun& r :
         byzantine_shards(b, pairs_per_shard, kEpsShards, threads,
                          DrawPath::kMask)) {
      total.pairs += r.pairs;
      total.fabricated += r.fabricated;
      total.failures += r.failures;
    }
    p.pairs = total.pairs;
    p.fabricated = total.fabricated;
    p.failures = total.failures;
    p.fab_measured = static_cast<double>(total.fabricated) /
                     static_cast<double>(total.pairs);
    p.fail_measured = static_cast<double>(total.failures) /
                      static_cast<double>(total.pairs);
    p.fab_bound =
        gate_rate("fabricated", b, total.fabricated, total.pairs,
                  p.fab_exact, ok);
    p.fail_bound =
        gate_rate("failed", b, total.failures, total.pairs, p.fail_exact,
                  ok);
    points.push_back(p);
  }

  // The measurement is a replay: per-shard results bit-identical across
  // {1, 8} threads and both draw paths at the most adversarial point.
  const std::uint64_t replay_pairs =
      std::min<std::uint64_t>(pairs_per_shard, 2000);
  const auto reference = byzantine_shards(kColluders, replay_pairs,
                                          kEpsShards, 1, DrawPath::kMask);
  for (const unsigned threads_check : {1u, 8u}) {
    for (const DrawPath path : {DrawPath::kMask, DrawPath::kAllocating}) {
      const auto runs = byzantine_shards(kColluders, replay_pairs,
                                         kEpsShards, threads_check, path);
      for (std::uint32_t s = 0; s < kEpsShards; ++s) {
        if (!(runs[s] == reference[s])) {
          std::printf("MISMATCH: byzantine measurement diverged at "
                      "threads=%u path=%s shard=%u\n",
                      threads_check,
                      path == DrawPath::kMask ? "mask" : "alloc", s);
          ok = false;
        }
      }
    }
  }
  return points;
}

// ---- reporting ------------------------------------------------------------

struct SectionReport {
  SectionSpec section;
  std::uint32_t workers = 0;
  RunOutcome timed;
};

void write_json(const char* path, const std::vector<SectionReport>& sections,
                const std::vector<SweepPoint>& sweep, std::uint64_t ops,
                bool ok) {
  std::FILE* f = std::fopen(path, "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write JSON report to %s\n", path);
    return;
  }
  std::fprintf(f,
               "{\n  \"bench\": \"byzantine_throughput\",\n"
               "  \"simd_kernel\": \"%s\",\n  \"universe\": %u,\n"
               "  \"quorum\": %u,\n  \"masking_k\": %u,\n"
               "  \"ops_per_section\": %" PRIu64 ",\n  \"ok\": %s,\n"
               "  \"sections\": [\n",
               simd::active().name, kUniverse, kQuorum, masking_k(), ops,
               ok ? "true" : "false");
  for (std::size_t i = 0; i < sections.size(); ++i) {
    const SectionReport& s = sections[i];
    const RunOutcome& r = s.timed;
    std::fprintf(
        f,
        "    {\"name\": \"%s\", \"shards\": %u, \"workers\": %u,\n"
        "     \"ops_per_sec\": %.6g,\n"
        "     \"p50_ns\": %" PRIu64 ", \"p99_ns\": %" PRIu64
        ", \"p999_ns\": %" PRIu64 ", \"max_ns\": %" PRIu64 ",\n"
        "     \"reads\": %" PRIu64 ", \"writes\": %" PRIu64
        ", \"stale_reads\": %" PRIu64 ", \"rejected_forgeries\": %" PRIu64
        ",\n     \"masked_reads\": %" PRIu64 ", \"bot_reads\": %" PRIu64
        ", \"fault_events\": %" PRIu64 "}%s\n",
        s.section.name.c_str(), kShards, s.workers,
        static_cast<double>(ops) / r.seconds, r.histogram.p50(),
        r.histogram.p99(), r.histogram.p999(), r.histogram.max(),
        r.fold.reads, r.fold.writes, r.fold.stale_reads,
        r.fold.rejected_forgeries, r.fold.masked_reads, r.fold.bot_reads,
        r.fold.fault_events, i + 1 < sections.size() ? "," : "");
  }
  std::fprintf(f, "  ],\n  \"byzantine_sweep\": [\n");
  for (std::size_t i = 0; i < sweep.size(); ++i) {
    const SweepPoint& p = sweep[i];
    std::fprintf(
        f,
        "    {\"b\": %u, \"pairs\": %" PRIu64 ", \"fabricated\": %" PRIu64
        ", \"failures\": %" PRIu64 ",\n"
        "     \"fabricated_rate\": %.6g, \"fabrication_epsilon\": %.6g, "
        "\"fabrication_estimate\": %.6g, \"fabrication_bound\": %.6g,\n"
        "     \"failure_rate\": %.6g, \"masking_epsilon\": %.6g, "
        "\"failure_bound\": %.6g}%s\n",
        p.b, p.pairs, p.fabricated, p.failures, p.fab_measured, p.fab_exact,
        p.fab_estimated, p.fab_bound, p.fail_measured, p.fail_exact,
        p.fail_bound, i + 1 < sweep.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
}

int main_impl(int argc, char** argv) {
  const auto opts = bench::parse_options(argc, argv);
  const std::uint64_t ops = opts.samples_or(30000);
  unsigned workers = opts.threads;
  if (workers == 0) workers = std::thread::hardware_concurrency();
  if (workers == 0) workers = 1;

  const auto sys =
      std::make_shared<core::RandomSubsetSystem>(kUniverse, kQuorum);

  std::printf(
      "byzantine_throughput: %" PRIu64 " ops/section over %" PRIu64
      " keys, R(%u, %u) quorums, masking k=%u, %u shards, workers=%u, "
      "simd=%s\n",
      ops, kKeys, kUniverse, kQuorum, masking_k(), kShards, workers,
      simd::active().name);

  bool ok = true;
  std::vector<SectionReport> reports;
  double plain_ops_per_sec = 0.0;
  for (const SectionSpec& section : make_sections(ops)) {
    const std::uint64_t seed =
        0xb52u + 131 * static_cast<std::uint64_t>(reports.size());
    const RunOutcome timed = drive(sys, section, workers, DrawPath::kMask,
                                   ops, seed);
    const RunOutcome w1 = drive(sys, section, 1, DrawPath::kMask, ops, seed);
    const RunOutcome w8 = drive(sys, section, 8, DrawPath::kMask, ops, seed);
    const RunOutcome alloc =
        drive(sys, section, workers, DrawPath::kAllocating, ops, seed);
    if (!(timed.aggregates == w1.aggregates) ||
        !(timed.aggregates == w8.aggregates)) {
      std::printf("MISMATCH: %s shard aggregates differ across worker "
                  "counts\n",
                  section.name.c_str());
      ok = false;
    }
    if (!(timed.aggregates == alloc.aggregates)) {
      std::printf("MISMATCH: %s shard aggregates differ across draw paths\n",
                  section.name.c_str());
      ok = false;
    }
    if (!timed.drained_all || !w1.drained_all || !w8.drained_all ||
        !alloc.drained_all) {
      std::printf("MISMATCH: %s lost requests or fault events in the "
                  "drain\n",
                  section.name.c_str());
      ok = false;
    }
    const bool adversarial = section.faults.inject_at != 0;
    // Plain and dissemination reject nothing on an honest fleet (every
    // MAC verifies). Masking legitimately rejects even honest replies:
    // servers outside recent write quorums hold older timestamps, and a
    // sub-k group of them is indistinguishable from a forgery — that
    // conservatism is the rule, so it is reported, not gated.
    if (!adversarial && section.mode != ReadMode::kMasking &&
        (timed.fold.rejected_forgeries != 0 ||
         timed.fold.masked_reads != 0)) {
      std::printf("MISMATCH: %s counted rejections on an honest fleet\n",
                  section.name.c_str());
      ok = false;
    }
    if (adversarial && timed.fold.rejected_forgeries == 0) {
      std::printf("MISMATCH: %s flipped %u colluders but the masking rule "
                  "rejected nothing\n",
                  section.name.c_str(), section.faults.colluders);
      ok = false;
    }
    const double ops_per_sec = static_cast<double>(ops) / timed.seconds;
    if (section.mode == ReadMode::kPlain) plain_ops_per_sec = ops_per_sec;
    std::printf(
        "[serve] section=%-16s workers=%u ops/sec=%.3g p50=%.1fus "
        "p99=%.1fus vs_plain=%.2fx rejected=%" PRIu64 " masked=%" PRIu64
        " bot=%" PRIu64 " faults=%" PRIu64 "\n",
        section.name.c_str(), workers, ops_per_sec,
        static_cast<double>(timed.histogram.p50()) / 1000.0,
        static_cast<double>(timed.histogram.p99()) / 1000.0,
        plain_ops_per_sec > 0.0 ? ops_per_sec / plain_ops_per_sec : 1.0,
        timed.fold.rejected_forgeries, timed.fold.masked_reads,
        timed.fold.bot_reads, timed.fold.fault_events);
    reports.push_back({section, workers, timed});
  }

  const std::vector<SweepPoint> sweep = byzantine_sweep(ops, workers, ok);
  for (const SweepPoint& p : sweep) {
    std::printf(
        "[epsilon] b=%u pairs=%" PRIu64
        " fabricated=%.6f (exact %.6f, mc %.6f, bound %.6f) "
        "failed=%.6f (exact %.6f, bound %.6f)\n",
        p.b, p.pairs, p.fab_measured, p.fab_exact, p.fab_estimated,
        p.fab_bound, p.fail_measured, p.fail_exact, p.fail_bound);
  }

  if (!opts.json.empty()) {
    write_json(opts.json.c_str(), reports, sweep, ops, ok);
  }

  std::printf(ok ? "OK: aggregates bit-identical across worker counts and "
                   "draw paths; fabrication and failure rates within their "
                   "masking-epsilon bounds\n"
                 : "FAILED: see mismatches above\n");
  return ok ? 0 : 1;
}

}  // namespace
}  // namespace pqs

int main(int argc, char** argv) { return pqs::main_impl(argc, argv); }

// Ablation: the access strategy is part of the guarantee (Section 3.1's
// closing remark).
//
// The same set system {all q-subsets of n} under (a) the uniform strategy
// of Definition 3.13 and (b) a "split" strategy that draws each quorum
// entirely from one half of the universe. The split strategy drives the
// nonintersection probability to ~1/2 no matter how large q is — enforcing
// the specified strategy w is not optional.
#include <cmath>
#include <iostream>

#include "bench_common.h"
#include "core/epsilon.h"
#include "core/monte_carlo.h"
#include "core/random_subset_system.h"
#include "math/rng.h"
#include "util/table.h"

int main(int argc, char** argv) {
  using namespace pqs;

  const auto opts = bench::parse_options(argc, argv);
  core::Estimator engine({opts.threads});

  util::banner(std::cout,
               "Ablation: uniform vs split access strategy over the same set "
               "system (n = 100)");

  const std::uint32_t n = 100;
  math::Rng rng(2718);
  const std::uint64_t samples = opts.samples_or(100000);

  util::TextTable t({"q", "l", "exact eps (uniform)",
                     "measured eps (uniform)", "measured eps (split)"});
  for (std::uint32_t q : {10u, 16u, 23u, 30u, 40u, 50u}) {
    const core::RandomSubsetSystem sys(n, q);
    const auto uniform =
        core::estimate_nonintersection(sys, samples, rng, engine);
    const auto split = core::estimate_split_strategy_nonintersection(
        n, q, samples, rng, engine);
    t.row()
        .cell(static_cast<std::size_t>(q))
        .cell(q / std::sqrt(double(n)), 2)
        .cell_sci(core::nonintersection_exact(n, q), 3)
        .cell_sci(uniform.estimate(), 3)
        .cell_sci(split.estimate(), 3);
  }
  t.print(std::cout);

  std::cout
      << "\nReading: under the uniform strategy the measured eps tracks the\n"
         "exact value and vanishes as l grows; under the split strategy it\n"
         "is pinned near 1/2 — two quorums from opposite halves never\n"
         "intersect regardless of their size.\n";
  return 0;
}

#!/usr/bin/env python3
"""CI perf gate for the TCP front end.

Reads a net_throughput --json report and compares every section against
the committed baseline (bench/net_baseline.json): a section fails if its
throughput drops below 80% of the baseline ops/sec or its client-observed
p99 latency rises above 2x the baseline p99. The baseline values are
deliberately conservative (several-fold below/above what the bench
measures on a quiet machine) so shared-runner noise cannot flap the gate
while genuine order-of-magnitude regressions still trip it.

Also fails if the report's own "ok" flag is false (the bench's per-shard
bit-identity gates across {1,8} service workers and the mask/allocating
draw paths, end to end over the socket path), if a baselined section is
missing from the report, or if the offered-load sweep produced no points.

Usage: check_net_regression.py BENCH_net.json net_baseline.json
"""
import json
import sys


def main() -> int:
    if len(sys.argv) != 3:
        print(__doc__)
        return 2
    with open(sys.argv[1]) as f:
        report = json.load(f)
    with open(sys.argv[2]) as f:
        baseline = json.load(f)

    if report.get("ok") is not True:
        print("FAIL: the bench reported ok=false (socket-path aggregate "
              "bit-identity gates tripped, or requests were lost)")
        return 1
    if not report.get("rate_sweep"):
        print("FAIL: the report has no offered-load sweep points")
        return 1

    sections = {s["name"]: s for s in report.get("sections", [])}
    failed = []
    for name, base in sorted(baseline["sections"].items()):
        got = sections.get(name)
        if got is None:
            print(f"{name}: MISSING from the report")
            failed.append(name)
            continue
        ops = got["ops_per_sec"]
        p99 = got["p99_ns"]
        ops_floor = 0.8 * base["ops_per_sec"]
        p99_ceiling = 2.0 * base["p99_ns"]
        ops_ok = ops >= ops_floor
        p99_ok = p99 <= p99_ceiling
        verdict = "ok" if (ops_ok and p99_ok) else "REGRESSED"
        print(f"{name}: {ops:.3g} ops/s (floor {ops_floor:.3g}), "
              f"p99 {p99 / 1e6:.2f}ms (ceiling {p99_ceiling / 1e6:.2f}ms) "
              f"[{verdict}]")
        if not ops_ok:
            failed.append(f"{name} throughput")
        if not p99_ok:
            failed.append(f"{name} p99")

    if failed:
        print(f"FAIL: {len(failed)} TCP front-end regressions: "
              + ", ".join(failed))
        return 1
    print(f"OK: {len(baseline['sections'])} sections within the "
          "regression envelope")
    return 0


if __name__ == "__main__":
    sys.exit(main())

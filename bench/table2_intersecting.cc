// Table 2: Properties of various quorum systems — the eps-intersecting
// construction R(n, l sqrt(n)) vs the threshold (majority) and grid
// baselines, at the paper's consistency target eps <= 1e-3.
//
// The paper's l column is printed alongside the l our exact-epsilon solver
// derives; the paper's values are slightly below what exact eps <= 1e-3
// requires (see EXPERIMENTS.md), so ours run one to two servers larger.
#include <cmath>
#include <iostream>

#include "bench_common.h"
#include "core/epsilon.h"
#include "core/random_subset_system.h"
#include "quorum/grid.h"
#include "quorum/threshold.h"
#include "util/table.h"

int main() {
  using namespace pqs;

  util::banner(std::cout,
               "Table 2: Properties of various quorum systems (eps <= 1e-3)");

  const double paper_ell[] = {1.80, 2.20, 2.40, 2.45, 2.48, 2.50};

  util::TextTable t({"n", "paper l", "our l", "eps-int quorum",
                     "eps-int fault tol", "exact eps", "threshold quorum",
                     "threshold fault tol", "grid quorum", "grid fault tol"});
  int row = 0;
  for (auto n : bench::table_sizes()) {
    const auto sys = core::RandomSubsetSystem::intersecting(n, 1e-3);
    const auto majority = quorum::ThresholdSystem::majority(n);
    const auto grid = quorum::GridSystem::square(n);
    t.row()
        .cell(static_cast<std::size_t>(n))
        .cell(paper_ell[row++], 2)
        .cell(sys.ell(), 2)
        .cell(static_cast<std::size_t>(sys.quorum_size()))
        .cell(static_cast<std::size_t>(sys.fault_tolerance()))
        .cell_sci(sys.epsilon(), 2)
        .cell(static_cast<std::size_t>(majority.min_quorum_size()))
        .cell(static_cast<std::size_t>(majority.fault_tolerance()))
        .cell(static_cast<std::size_t>(grid.min_quorum_size()))
        .cell(static_cast<std::size_t>(grid.fault_tolerance()));
  }
  t.print(std::cout);

  std::cout
      << "\nShape check (paper's Table 2): the probabilistic quorums are a\n"
         "fraction of the threshold quorums (22-vs-51 at n=100 scale) while\n"
         "the fault tolerance is near-linear in n (79 vs 51 at n=100,\n"
         "826-vs-451 at n=900); the grid matches on quorum size but its\n"
         "fault tolerance stays at sqrt(n).\n";
  return 0;
}

// Shared helpers for the bench harness.
//
// Every bench binary is runnable with no arguments, prints the rows/series
// of one table or figure from the paper (plus a CSV block for re-plotting),
// and exits 0. Absolute values depend on this simulator substrate; the
// *shape* (who wins, by what factor, where the crossovers fall) is what
// reproduces the paper.
#pragma once

#include <cmath>
#include <cstdint>
#include <vector>

namespace pqs::bench {

// The crash-probability sweep used by the Figure 1-3 benches.
inline std::vector<double> p_sweep() {
  std::vector<double> ps;
  for (double p = 0.05; p < 0.96; p += 0.05) ps.push_back(p);
  return ps;
}

// floor(sqrt(n)) for the b = sqrt(n) settings of Figures 2-3.
inline std::uint32_t isqrt(std::uint32_t n) {
  return static_cast<std::uint32_t>(std::lround(std::floor(std::sqrt(
      static_cast<double>(n)))));
}

// The Section 6 system-size grid of Tables 2-4.
inline const std::vector<std::uint32_t>& table_sizes() {
  static const std::vector<std::uint32_t> sizes{25, 100, 225, 400, 625, 900};
  return sizes;
}

// b = (sqrt(n) - 1) / 2, "the largest b for which all the constructions in
// the table work" (Section 6).
inline std::uint32_t table_b(std::uint32_t n) {
  return (isqrt(n) - 1) / 2;
}

}  // namespace pqs::bench

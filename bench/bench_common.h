// Shared helpers for the bench harness.
//
// Every bench binary is runnable with no arguments, prints the rows/series
// of one table or figure from the paper (plus a CSV block for re-plotting),
// and exits 0. Absolute values depend on this simulator substrate; the
// *shape* (who wins, by what factor, where the crossovers fall) is what
// reproduces the paper.
//
// Benches that run Monte-Carlo estimators accept these flags, parsed by
// parse_options():
//   --threads=N   worker threads for core::Estimator (0 = hardware)
//   --samples=N   trial count override (0 = keep the bench's default)
//   --json=PATH   machine-readable report (benches that support it)
//   --writers=N   contending writer clients per shard (protocol harness)
//   --repair      enable the read-repair experiment (protocol harness)
#pragma once

#include <cmath>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

namespace pqs::bench {

struct Options {
  unsigned threads = 0;       // 0 = hardware concurrency
  std::uint64_t samples = 0;  // 0 = bench default
  std::string json;           // empty = no JSON report
  // Contending writers per shard (protocol harness). Defaults to genuine
  // contention: with one writer, timestamps are strictly increasing and
  // the conflict metrics are identically zero.
  std::uint32_t writers = 4;
  // Run the contention-aware read-repair experiment (protocol harness):
  // the multi-writer section repeats with repair write-backs enabled and
  // reports how the repair traffic shifts the load profile.
  bool repair = false;

  // The bench's trial count after the override.
  std::uint64_t samples_or(std::uint64_t fallback) const {
    return samples == 0 ? fallback : samples;
  }
};

// Parses the flags above (both "--flag=V" and "--flag V" forms). Unknown
// arguments are reported and ignored so binaries stay runnable with no
// arguments under older scripts.
inline Options parse_options(int argc, char** argv) {
  Options opts;
  auto read_value = [&](const char* arg, const char* name,
                        int& i) -> const char* {
    const std::size_t len = std::strlen(name);
    if (std::strncmp(arg, name, len) != 0) return nullptr;
    if (arg[len] == '=') return arg + len + 1;
    if (arg[len] == '\0' && i + 1 < argc) return argv[++i];
    return nullptr;
  };
  for (int i = 1; i < argc; ++i) {
    if (const char* v = read_value(argv[i], "--threads", i)) {
      opts.threads = static_cast<unsigned>(std::strtoul(v, nullptr, 10));
    } else if (const char* v2 = read_value(argv[i], "--samples", i)) {
      opts.samples = std::strtoull(v2, nullptr, 10);
    } else if (const char* v3 = read_value(argv[i], "--json", i)) {
      opts.json = v3;
    } else if (const char* v4 = read_value(argv[i], "--writers", i)) {
      opts.writers = static_cast<std::uint32_t>(std::strtoul(v4, nullptr, 10));
    } else if (std::strcmp(argv[i], "--repair") == 0) {
      opts.repair = true;
    } else {
      std::fprintf(stderr, "ignoring unknown argument: %s\n", argv[i]);
    }
  }
  return opts;
}

// The crash-probability sweep used by the Figure 1-3 benches: 0.05..0.95 in
// steps of 0.05, generated from integer steps so no floating-point drift
// accumulates across the sweep.
inline std::vector<double> p_sweep() {
  std::vector<double> ps;
  ps.reserve(19);
  for (int i = 1; i <= 19; ++i) ps.push_back(static_cast<double>(i) * 0.05);
  return ps;
}

// floor(sqrt(n)) for the b = sqrt(n) settings of Figures 2-3. Computed in
// doubles, then corrected: floor(sqrt(double(n))) can land one off for n
// near a perfect square (e.g. large n where sqrt rounds up to the next
// integer), so nudge until s*s <= n < (s+1)*(s+1) holds exactly.
inline std::uint32_t isqrt(std::uint32_t n) {
  std::uint64_t s = static_cast<std::uint64_t>(std::sqrt(
      static_cast<double>(n)));
  while (s > 0 && s * s > n) --s;
  while ((s + 1) * (s + 1) <= n) ++s;
  return static_cast<std::uint32_t>(s);
}

// The Section 6 system-size grid of Tables 2-4.
inline const std::vector<std::uint32_t>& table_sizes() {
  static const std::vector<std::uint32_t> sizes{25, 100, 225, 400, 625, 900};
  return sizes;
}

// b = (sqrt(n) - 1) / 2, "the largest b for which all the constructions in
// the table work" (Section 6).
inline std::uint32_t table_b(std::uint32_t n) {
  return (isqrt(n) - 1) / 2;
}

}  // namespace pqs::bench

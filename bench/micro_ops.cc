// Microbenchmarks (google-benchmark): the operational costs of the library —
// SIMD kernel tables side by side (every table the CPU supports, so one run
// contains the scalar-vs-AVX2/AVX-512 comparison), quorum sampling, exact
// epsilon evaluation, solver runs, Monte-Carlo estimation (seed-style
// allocating loop vs the sharded engine at 1..8 threads), protocol
// operations on both cluster harnesses, gossip rounds, and the MAC.
//
// Flags beyond google-benchmark's own: --json <path> writes the standard
// benchmark JSON to <path> (shorthand for --benchmark_out=<path>
// --benchmark_out_format=json); the report context carries the dispatched
// kernel name under "simd_kernel". A global operator-new counter feeds the
// allocs_per_op counter on the estimator/protocol rows.
#include <benchmark/benchmark.h>

#include <cmath>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "alloc_count.h"
#include "core/epsilon.h"
#include "core/estimator.h"
#include "core/monte_carlo.h"
#include "core/random_subset_system.h"
#include "crypto/mac.h"
#include "diffusion/gossip.h"
#include "math/bernoulli.h"
#include "math/rng.h"
#include "math/sampling.h"
#include "quorum/bitset.h"
#include "quorum/grid.h"
#include "quorum/mask_batch.h"
#include "quorum/threshold.h"
#include "quorum/wall.h"
#include "quorum/weighted.h"
#include "replica/instant_cluster.h"
#include "replica/sim_cluster.h"
#include "simd/kernels.h"

namespace {

using namespace pqs;

// Tracks heap allocations across the timed loop and reports them per
// benchmark iteration (scaled by `ops_per_iter` when one iteration performs
// several logical operations).
class AllocCounter {
 public:
  explicit AllocCounter(benchmark::State& state, double ops_per_iter = 1.0)
      : state_(state),
        ops_per_iter_(ops_per_iter),
        start_(bench::allocations()) {}
  void report() {
    const std::uint64_t end = bench::allocations();
    const double iters =
        static_cast<double>(state_.iterations()) * ops_per_iter_;
    state_.counters["allocs_per_op"] =
        iters > 0 ? static_cast<double>(end - start_) / iters : 0.0;
  }

 private:
  benchmark::State& state_;
  double ops_per_iter_;
  std::uint64_t start_;
};

std::uint32_t bench_quorum_size(std::uint32_t n) {
  return static_cast<std::uint32_t>(2.5 * std::sqrt(double(n))) + 1;
}

// ---- SIMD kernel table benches --------------------------------------------
//
// Registered once per table in simd::available(), so a single run reports
// BM_Kernel_*/scalar next to BM_Kernel_*/avx2 (and /avx512 where present).
// bench/check_simd_speedup.py compares these rows; CI runs it as a
// no-lose floor (SIMD must stay within noise of scalar or better — real
// margins here are 2-40x), while the >= 1.5x acceptance numbers are read
// off these same rows on quiet hardware. Arg(0) is the buffer size in
// 64-bit words (157 words = a 10k-server universe; 15 words = the
// table-sized 900).

std::vector<std::uint64_t> bench_words(std::size_t n, std::uint64_t seed) {
  math::Rng rng(seed);
  std::vector<std::uint64_t> words(n);
  for (auto& w : words) w = rng.next();
  return words;
}

void KernelPopcount(benchmark::State& state, const simd::Kernels* k) {
  const std::size_t words = static_cast<std::size_t>(state.range(0));
  const auto a = bench_words(words, 21);
  std::uint64_t sink = 0;
  for (auto _ : state) {
    sink += k->popcount(a.data(), words);
  }
  benchmark::DoNotOptimize(sink);
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(words));
}

void KernelAndPopcount(benchmark::State& state, const simd::Kernels* k) {
  const std::size_t words = static_cast<std::size_t>(state.range(0));
  const auto a = bench_words(words, 22);
  const auto b = bench_words(words, 23);
  std::uint64_t sink = 0;
  for (auto _ : state) {
    sink += k->and_popcount(a.data(), b.data(), words);
  }
  benchmark::DoNotOptimize(sink);
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(words));
}

// The pair-estimator shape: one strided call judging 8 quorum pairs laid
// out flat ([a0 b0 a1 b1 ...]), overlap outside a Byzantine prefix.
void KernelBatchAndPopcountFrom(benchmark::State& state,
                                const simd::Kernels* k) {
  const std::size_t words = static_cast<std::size_t>(state.range(0));
  constexpr std::size_t kPairs = 8;
  const auto flat = bench_words(words * 2 * kPairs, 24);
  const std::uint32_t lo = static_cast<std::uint32_t>(words * 64 / 10);
  std::uint32_t out[kPairs];
  std::uint64_t sink = 0;
  for (auto _ : state) {
    k->batch_and_popcount_from(flat.data(), flat.data() + words, 2 * words,
                               kPairs, words, lo, out);
    sink += out[0] + out[kPairs - 1];
  }
  benchmark::DoNotOptimize(sink);
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(kPairs));
}

// The load-estimator shape: one strided column-accumulate sweep tallying a
// 16-mask sample_masks chunk into the per-server histogram. The scalar row
// is the per-bit ctz walk estimate_server_loads ran before the kernel
// existed, so the scalar-vs-SIMD ratio here *is* the kernelized-estimator
// vs per-bit-walk comparison check_simd_speedup.py gates.
void KernelColumnAccumulate(benchmark::State& state, const simd::Kernels* k) {
  const std::size_t words = static_cast<std::size_t>(state.range(0));
  constexpr std::size_t kMasks = 16;  // core::monte_carlo's kDrawBatch
  const auto flat = bench_words(words * kMasks, 26);
  std::vector<std::uint64_t> counts(64 * words, 0);
  for (auto _ : state) {
    k->batch_column_accumulate(flat.data(), words, kMasks, words,
                               counts.data());
    benchmark::DoNotOptimize(counts.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(kMasks));
}

// Alive-mask generation through each table's Bernoulli fill (dead
// probability 0.3, inverted — exactly what estimate_failure_probability
// asks per trial).
void KernelAliveMaskFill(benchmark::State& state, const simd::Kernels* k) {
  const std::size_t words = static_cast<std::size_t>(state.range(0));
  const math::BernoulliBlockSampler dead(0.3);
  const simd::BernoulliSpec spec = dead.spec(/*invert=*/true);
  std::vector<std::uint64_t> buf(words);
  math::Rng rng(25);
  for (auto _ : state) {
    k->bernoulli_fill(buf.data(), words, spec, rng.next());
    benchmark::DoNotOptimize(buf.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(words) * 64);
}

void register_kernel_benches() {
  for (const simd::Kernels* k : simd::available()) {
    const std::string suffix = "/" + std::string(k->name);
    benchmark::RegisterBenchmark(
        ("BM_Kernel_Popcount" + suffix).c_str(),
        [k](benchmark::State& s) { KernelPopcount(s, k); })
        ->Arg(15)
        ->Arg(157);
    benchmark::RegisterBenchmark(
        ("BM_Kernel_AndPopcount" + suffix).c_str(),
        [k](benchmark::State& s) { KernelAndPopcount(s, k); })
        ->Arg(15)
        ->Arg(157);
    benchmark::RegisterBenchmark(
        ("BM_Kernel_BatchAndPopcountFrom" + suffix).c_str(),
        [k](benchmark::State& s) { KernelBatchAndPopcountFrom(s, k); })
        ->Arg(15)
        ->Arg(157);
    benchmark::RegisterBenchmark(
        ("BM_Kernel_ColumnAccumulate" + suffix).c_str(),
        [k](benchmark::State& s) { KernelColumnAccumulate(s, k); })
        ->Arg(15)
        ->Arg(157);
    benchmark::RegisterBenchmark(
        ("BM_Kernel_AliveMaskFill" + suffix).c_str(),
        [k](benchmark::State& s) { KernelAliveMaskFill(s, k); })
        ->Arg(15)
        ->Arg(157);
  }
}

void BM_SampleQuorum_RandomSubset(benchmark::State& state) {
  const auto n = static_cast<std::uint32_t>(state.range(0));
  const core::RandomSubsetSystem sys(n, bench_quorum_size(n));
  math::Rng rng(1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(sys.sample(rng));
  }
}

void BM_SampleQuorum_Grid(benchmark::State& state) {
  const auto n = static_cast<std::uint32_t>(state.range(0));
  const auto sys = quorum::GridSystem::square(n);
  math::Rng rng(2);
  for (auto _ : state) {
    benchmark::DoNotOptimize(sys.sample(rng));
  }
}

void BM_SampleQuorum_Wall(benchmark::State& state) {
  const auto n = static_cast<std::uint32_t>(state.range(0));
  const auto side = static_cast<std::uint32_t>(std::sqrt(double(n)));
  const auto sys = quorum::WallSystem::uniform(side, side);
  math::Rng rng(3);
  for (auto _ : state) {
    benchmark::DoNotOptimize(sys.sample(rng));
  }
}

void BM_SampleQuorum_Weighted(benchmark::State& state) {
  const auto n = static_cast<std::uint32_t>(state.range(0));
  std::vector<std::uint32_t> votes(n, 1);
  for (std::uint32_t i = 0; i < n / 10; ++i) votes[i] = 4;
  const std::uint32_t total = n + (n / 10) * 3;
  const quorum::WeightedVotingSystem sys(votes, total / 2 + 1);
  math::Rng rng(4);
  for (auto _ : state) {
    benchmark::DoNotOptimize(sys.sample(rng));
  }
}

void BM_SampleQuorumInto_RandomSubset(benchmark::State& state) {
  const auto n = static_cast<std::uint32_t>(state.range(0));
  const core::RandomSubsetSystem sys(n, bench_quorum_size(n));
  math::Rng rng(1);
  quorum::Quorum q;
  for (auto _ : state) {
    sys.sample_into(q, rng);
    benchmark::DoNotOptimize(q.data());
  }
}

// Mask vs sorted-vector draw paths (same member sets, same rng draws): the
// mask path skips the sort entirely. Compare BM_SampleMask_* against the
// matching BM_SampleQuorumInto_* rows.
void BM_SampleMask_RandomSubset(benchmark::State& state) {
  const auto n = static_cast<std::uint32_t>(state.range(0));
  const core::RandomSubsetSystem sys(n, bench_quorum_size(n));
  math::Rng rng(1);
  quorum::QuorumBitset mask(n);
  for (auto _ : state) {
    sys.sample_mask(mask, rng);
    benchmark::DoNotOptimize(mask.words());
  }
}

void BM_SampleQuorumInto_Threshold(benchmark::State& state) {
  const auto n = static_cast<std::uint32_t>(state.range(0));
  const quorum::ThresholdSystem sys(n, n / 2 + 1);
  math::Rng rng(5);
  quorum::Quorum q;
  for (auto _ : state) {
    sys.sample_into(q, rng);
    benchmark::DoNotOptimize(q.data());
  }
}

void BM_SampleMask_Threshold(benchmark::State& state) {
  const auto n = static_cast<std::uint32_t>(state.range(0));
  const quorum::ThresholdSystem sys(n, n / 2 + 1);
  math::Rng rng(5);
  quorum::QuorumBitset mask(n);
  for (auto _ : state) {
    sys.sample_mask(mask, rng);
    benchmark::DoNotOptimize(mask.words());
  }
}

void BM_SampleQuorumInto_Grid(benchmark::State& state) {
  const auto n = static_cast<std::uint32_t>(state.range(0));
  const auto sys = quorum::GridSystem::square(n);
  math::Rng rng(6);
  quorum::Quorum q;
  for (auto _ : state) {
    sys.sample_into(q, rng);
    benchmark::DoNotOptimize(q.data());
  }
}

void BM_SampleMask_Grid(benchmark::State& state) {
  const auto n = static_cast<std::uint32_t>(state.range(0));
  const auto sys = quorum::GridSystem::square(n);
  math::Rng rng(6);
  quorum::QuorumBitset mask(n);
  for (auto _ : state) {
    sys.sample_mask(mask, rng);
    benchmark::DoNotOptimize(mask.words());
  }
}

// Alive-mask generation: one Bernoulli(p) per server, scalar chance() loop
// vs the batched 64-lane digit-compare sampler.
void BM_AliveMask_Scalar(benchmark::State& state) {
  const auto n = static_cast<std::uint32_t>(state.range(0));
  const double p = 0.3;
  math::Rng rng(8);
  std::vector<bool> alive(n);
  for (auto _ : state) {
    for (std::uint32_t u = 0; u < n; ++u) alive[u] = !rng.chance(p);
    benchmark::DoNotOptimize(&alive);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * n);
}

void BM_AliveMask_Batched(benchmark::State& state) {
  const auto n = static_cast<std::uint32_t>(state.range(0));
  const math::BernoulliBlockSampler dead(0.3);
  math::Rng rng(8);
  quorum::QuorumBitset alive(n);
  for (auto _ : state) {
    std::uint64_t* words = alive.word_data();
    for (std::size_t i = 0; i < alive.word_count(); ++i) {
      words[i] = ~dead.draw_block(rng);
    }
    alive.mask_padding();
    benchmark::DoNotOptimize(alive.words());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * n);
}

// The pre-engine estimator: one thread, a fresh quorum vector per draw, and
// a sorted-merge intersection test. Kept as the baseline the engine's
// speedup is measured against.
math::Proportion seed_estimate_nonintersection(
    const quorum::QuorumSystem& system, std::uint64_t samples,
    math::Rng& rng) {
  math::Proportion result;
  for (std::uint64_t s = 0; s < samples; ++s) {
    const auto a = system.sample(rng);
    const auto b = system.sample(rng);
    result.add(!math::sorted_intersects(a, b));
  }
  return result;
}

constexpr std::uint64_t kEstimateSamples = 100000;

void BM_EstimateNonintersection_SeedPath(benchmark::State& state) {
  const auto n = static_cast<std::uint32_t>(state.range(0));
  const core::RandomSubsetSystem sys(n, bench_quorum_size(n));
  math::Rng rng(11);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        seed_estimate_nonintersection(sys, kEstimateSamples, rng));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(kEstimateSamples));
}

// Engine path; range(1) is the thread count — compare items_per_second
// against the seed path above (acceptance: >= 4x at 8 threads).
void BM_EstimateNonintersection_Engine(benchmark::State& state) {
  const auto n = static_cast<std::uint32_t>(state.range(0));
  const core::RandomSubsetSystem sys(n, bench_quorum_size(n));
  core::Estimator engine({static_cast<unsigned>(state.range(1))});
  math::Rng rng(11);
  AllocCounter allocs(state, static_cast<double>(kEstimateSamples));
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        core::estimate_nonintersection(sys, kEstimateSamples, rng, engine));
  }
  allocs.report();
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(kEstimateSamples));
}

// The load estimator end to end (draws + column-accumulate tallies);
// range(1) is the thread count.
void BM_EstimateLoadProfile_Engine(benchmark::State& state) {
  const auto n = static_cast<std::uint32_t>(state.range(0));
  const core::RandomSubsetSystem sys(n, bench_quorum_size(n));
  core::Estimator engine({static_cast<unsigned>(state.range(1))});
  math::Rng rng(12);
  AllocCounter allocs(state, static_cast<double>(kEstimateSamples));
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        core::estimate_load_profile(sys, kEstimateSamples, rng, engine));
  }
  allocs.report();
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(kEstimateSamples));
}

void BM_EstimateFailureProbability_Engine(benchmark::State& state) {
  const auto n = static_cast<std::uint32_t>(state.range(0));
  const core::RandomSubsetSystem sys(n, bench_quorum_size(n));
  core::Estimator engine({static_cast<unsigned>(state.range(1))});
  math::Rng rng(13);
  AllocCounter allocs(state, static_cast<double>(kEstimateSamples / 4));
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::estimate_failure_probability(
        sys, 0.5, kEstimateSamples / 4, rng, engine));
  }
  allocs.report();
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(kEstimateSamples / 4));
}

void BM_EpsilonExact_Intersecting(benchmark::State& state) {
  const auto n = state.range(0);
  const auto q = bench_quorum_size(static_cast<std::uint32_t>(n));
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::nonintersection_exact(n, q));
  }
}

void BM_EpsilonExact_Dissemination(benchmark::State& state) {
  const auto n = state.range(0);
  const auto q = bench_quorum_size(static_cast<std::uint32_t>(n));
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::dissemination_epsilon_exact(n, q, n / 3));
  }
}

void BM_EpsilonExact_Masking(benchmark::State& state) {
  const auto n = state.range(0);
  const auto q = 5 * static_cast<std::int64_t>(std::sqrt(double(n)));
  const auto b = static_cast<std::int64_t>(std::sqrt(double(n)));
  const auto k = core::masking_threshold(n, q);
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::masking_epsilon_exact(n, q, b, k));
  }
}

void BM_Solver_Intersecting(benchmark::State& state) {
  const auto n = state.range(0);
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::min_q_intersecting(n, 1e-3));
  }
}

void BM_InstantCluster_WriteRead(benchmark::State& state) {
  const auto n = static_cast<std::uint32_t>(state.range(0));
  replica::InstantCluster::Config cfg;
  cfg.quorums =
      std::make_shared<core::RandomSubsetSystem>(n, bench_quorum_size(n));
  replica::InstantCluster cluster(cfg);
  std::int64_t value = 0;
  AllocCounter allocs(state, 2.0);  // one write + one read per iteration
  for (auto _ : state) {
    cluster.write(1, ++value);
    benchmark::DoNotOptimize(cluster.read(1));
  }
  allocs.report();
}

void BM_SimCluster_WriteRead(benchmark::State& state) {
  const auto n = static_cast<std::uint32_t>(state.range(0));
  replica::SimCluster::Config cfg;
  cfg.quorums =
      std::make_shared<core::RandomSubsetSystem>(n, bench_quorum_size(n));
  cfg.latency = {.base = 100, .jitter_mean = 50, .drop_probability = 0.0};
  replica::SimCluster cluster(cfg);
  std::int64_t value = 0;
  for (auto _ : state) {
    cluster.write_sync(1, ++value);
    benchmark::DoNotOptimize(cluster.read_sync(1));
  }
}

void BM_GossipRound(benchmark::State& state) {
  const auto n = static_cast<std::uint32_t>(state.range(0));
  replica::InstantCluster::Config cfg;
  cfg.quorums =
      std::make_shared<core::RandomSubsetSystem>(n, bench_quorum_size(n));
  replica::InstantCluster cluster(cfg);
  for (std::uint64_t v = 1; v <= 8; ++v) cluster.write(v, 1);
  diffusion::GossipEngine engine({.fanout = 2, .verify = false});
  for (auto _ : state) {
    benchmark::DoNotOptimize(engine.run_round(cluster.servers(), cluster.rng()));
  }
}

void BM_MacSignVerify(benchmark::State& state) {
  const auto signer = crypto::Signer::from_seed(7);
  const crypto::Verifier verifier(signer.key());
  std::uint64_t ts = 0;
  for (auto _ : state) {
    const auto rec = signer.sign(1, 42, ++ts, 1);
    benchmark::DoNotOptimize(verifier.verify(rec));
  }
}

}  // namespace

BENCHMARK(BM_SampleQuorum_RandomSubset)->Arg(100)->Arg(900)->Arg(10000);
BENCHMARK(BM_SampleQuorumInto_RandomSubset)->Arg(100)->Arg(900)->Arg(10000);
BENCHMARK(BM_SampleMask_RandomSubset)->Arg(100)->Arg(900)->Arg(10000);
BENCHMARK(BM_SampleQuorumInto_Threshold)->Arg(100)->Arg(900)->Arg(10000);
BENCHMARK(BM_SampleMask_Threshold)->Arg(100)->Arg(900)->Arg(10000);
BENCHMARK(BM_SampleQuorumInto_Grid)->Arg(100)->Arg(900)->Arg(10000);
BENCHMARK(BM_SampleMask_Grid)->Arg(100)->Arg(900)->Arg(10000);
BENCHMARK(BM_AliveMask_Scalar)->Arg(900)->Arg(10000);
BENCHMARK(BM_AliveMask_Batched)->Arg(900)->Arg(10000);
BENCHMARK(BM_EstimateNonintersection_SeedPath)->Arg(900)->UseRealTime();
BENCHMARK(BM_EstimateNonintersection_Engine)
    ->Args({900, 1})
    ->Args({900, 2})
    ->Args({900, 4})
    ->Args({900, 8})
    ->UseRealTime();
BENCHMARK(BM_EstimateLoadProfile_Engine)
    ->Args({900, 1})
    ->Args({900, 8})
    ->UseRealTime();
BENCHMARK(BM_EstimateFailureProbability_Engine)
    ->Args({900, 1})
    ->Args({900, 8})
    ->UseRealTime();
BENCHMARK(BM_SampleQuorum_Grid)->Arg(100)->Arg(900);
BENCHMARK(BM_SampleQuorum_Wall)->Arg(100)->Arg(900);
BENCHMARK(BM_SampleQuorum_Weighted)->Arg(100)->Arg(900);
BENCHMARK(BM_EpsilonExact_Intersecting)->Arg(100)->Arg(900)->Arg(10000);
BENCHMARK(BM_EpsilonExact_Dissemination)->Arg(100)->Arg(900);
BENCHMARK(BM_EpsilonExact_Masking)->Arg(100)->Arg(900)->Arg(10000);
BENCHMARK(BM_Solver_Intersecting)->Arg(100)->Arg(900);
BENCHMARK(BM_InstantCluster_WriteRead)->Arg(100)->Arg(900);
BENCHMARK(BM_SimCluster_WriteRead)->Arg(25)->Arg(100);
BENCHMARK(BM_GossipRound)->Arg(100)->Arg(900);
BENCHMARK(BM_MacSignVerify);

// Custom main: registers the per-table kernel benches, translates
// --json <path> into google-benchmark's out flags, and stamps the report
// context with the dispatched kernel so BENCH_micro.json is self-describing.
int main(int argc, char** argv) {
  std::string json_path;
  std::vector<std::string> args;
  args.reserve(static_cast<std::size_t>(argc) + 2);
  for (int i = 0; i < argc; ++i) {
    if (std::strncmp(argv[i], "--json=", 7) == 0) {
      json_path = argv[i] + 7;
    } else if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) {
      json_path = argv[++i];
    } else {
      args.emplace_back(argv[i]);
    }
  }
  if (!json_path.empty()) {
    args.push_back("--benchmark_out=" + json_path);
    args.push_back("--benchmark_out_format=json");
  }
  std::vector<char*> bench_argv;
  bench_argv.reserve(args.size());
  for (auto& a : args) bench_argv.push_back(a.data());
  int bench_argc = static_cast<int>(bench_argv.size());

  benchmark::AddCustomContext("simd_kernel", pqs::simd::active().name);
  register_kernel_benches();
  benchmark::Initialize(&bench_argc, bench_argv.data());
  if (benchmark::ReportUnrecognizedArguments(bench_argc, bench_argv.data())) {
    return 1;
  }
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}

#!/usr/bin/env python3
"""CI gate for workload-aware strategies (the quoracle optimizer).

Reads a strategy_throughput --json report and enforces three things on
top of the bench's own exit code:

  * the optimizer keeps winning — every gated (skewed-capacity) workload
    mix must show the optimized strategy's max capacity-weighted load
    strictly below the fixed construction's, and its predicted epsilon at
    or below the exact-form ceiling it was optimized under;
  * the deployed stale-read rate stays within the predicted epsilon plus
    its Chernoff margin (the conformance test's bound at bench scale);
  * serving-tier throughput/latency stay within the committed baseline
    envelope (bench/strategy_baseline.json): a section fails if ops/sec
    drops below 80% of baseline or p99 rises above 2x baseline. Baseline
    values are deliberately conservative (several-fold off a quiet
    single-CPU box) so shared-runner noise cannot flap the gate while
    order-of-magnitude regressions still trip it.

Also fails if the report's own "ok" flag is false (bit-identity of the
strategy-path shard aggregates — draw counts and checksums included —
across {1,8} workers and both draw paths, lost requests, or an optimizer
loss on a gated mix), or if a baselined section or gated mix is missing.

Usage: check_strategy_regression.py BENCH_strategy.json strategy_baseline.json
"""
import json
import sys


def main() -> int:
    if len(sys.argv) != 3:
        print(__doc__)
        return 2
    with open(sys.argv[1]) as f:
        report = json.load(f)
    with open(sys.argv[2]) as f:
        baseline = json.load(f)

    if report.get("ok") is not True:
        print("FAIL: the bench reported ok=false (strategy aggregate "
              "bit-identity gates tripped, the optimizer lost a gated mix, "
              "requests or draws were lost, or the stale rate exceeded its "
              "predicted-epsilon bound)")
        return 1

    mixes = {m["name"]: m for m in report.get("mixes", [])}
    gated = [m for m in mixes.values() if m.get("gated")]
    if not gated:
        print("FAIL: the report has no gated (skewed-capacity) mixes")
        return 1
    failed = []
    for m in sorted(gated, key=lambda m: m["name"]):
        win = m["optimized_max_load"] < m["fixed_max_load"]
        eps_ok = m["predicted_epsilon"] <= m["epsilon_ceiling"] + 1e-9
        verdict = "ok" if (win and eps_ok) else "REGRESSED"
        print(f"mix {m['name']}: optimized {m['optimized_max_load']:.4f} vs "
              f"fixed {m['fixed_max_load']:.4f}, "
              f"eps {m['predicted_epsilon']:.3g} "
              f"(ceiling {m['epsilon_ceiling']:.3g}) [{verdict}]")
        if not win:
            failed.append(f"{m['name']} optimizer win")
        if not eps_ok:
            failed.append(f"{m['name']} epsilon ceiling")

    eps = report.get("epsilon") or {}
    if not eps or eps.get("pairs", 0) <= 0:
        print("FAIL: the report has no epsilon measurement")
        return 1
    if eps["measured_stale_rate"] > eps["chernoff_bound"]:
        print(f"FAIL: measured stale rate {eps['measured_stale_rate']:.6g} "
              f"exceeds the Chernoff bound {eps['chernoff_bound']:.6g}")
        return 1

    sections = {s["name"]: s for s in report.get("sections", [])}
    for name, base in sorted(baseline["sections"].items()):
        got = sections.get(name)
        if got is None:
            print(f"{name}: MISSING from the report")
            failed.append(name)
            continue
        ops = got["ops_per_sec"]
        p99 = got["p99_ns"]
        ops_floor = 0.8 * base["ops_per_sec"]
        p99_ceiling = 2.0 * base["p99_ns"]
        ops_ok = ops >= ops_floor
        p99_ok = p99 <= p99_ceiling
        verdict = "ok" if (ops_ok and p99_ok) else "REGRESSED"
        print(f"{name}: {ops:.3g} ops/s (floor {ops_floor:.3g}), "
              f"p99 {p99 / 1e6:.2f}ms (ceiling {p99_ceiling / 1e6:.2f}ms) "
              f"[{verdict}]")
        if not ops_ok:
            failed.append(f"{name} throughput")
        if not p99_ok:
            failed.append(f"{name} p99")

    if failed:
        print(f"FAIL: {len(failed)} strategy regressions: "
              + ", ".join(failed))
        return 1
    print(f"OK: {len(gated)} gated mixes won by the optimizer; stale rate "
          f"{eps['measured_stale_rate']:.3g} within its bound; "
          f"{len(baseline['sections'])} sections within the regression "
          "envelope")
    return 0


if __name__ == "__main__":
    sys.exit(main())

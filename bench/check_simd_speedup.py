#!/usr/bin/env python3
"""CI perf gate for the SIMD kernel layer.

Reads a micro_ops --json report and compares every BM_Kernel_*/<table>/<arg>
row against its BM_Kernel_*/scalar/<arg> counterpart. Exits nonzero if any
SIMD table is slower than scalar by more than the tolerated ratio (default
1.0: "SIMD must never lose to scalar"). Runners whose CPU offers no SIMD
table produce no SIMD rows and pass vacuously, so the gate is safe on
non-AVX2 hardware.

Additionally verifies that every gated kernel family is present in the
report at all (scalar rows included), so a kernel silently dropping out of
micro_ops — column-accumulate included — fails the gate instead of
passing vacuously.

Usage: check_simd_speedup.py BENCH_micro.json [required_speedup_ratio]
"""
import json
import sys

# Every BM_Kernel_* family micro_ops must report. Grows with the kernel
# table: a new kernel lands with its bench rows, and this list pins them.
REQUIRED_FAMILIES = (
    "BM_Kernel_Popcount",
    "BM_Kernel_AndPopcount",
    "BM_Kernel_BatchAndPopcountFrom",
    "BM_Kernel_ColumnAccumulate",
    "BM_Kernel_AliveMaskFill",
)


def main() -> int:
    if len(sys.argv) < 2:
        print(__doc__)
        return 2
    required = float(sys.argv[2]) if len(sys.argv) > 2 else 1.0
    with open(sys.argv[1]) as f:
        report = json.load(f)

    rows = {}
    for bench in report.get("benchmarks", []):
        parts = bench["name"].split("/")
        # BM_Kernel_<Op>/<table>/<words>
        if len(parts) != 3 or not parts[0].startswith("BM_Kernel_"):
            continue
        rows[(parts[0], parts[2], parts[1])] = bench["real_time"]

    present = {family for (family, _, _) in rows}
    absent = [f for f in REQUIRED_FAMILIES if f not in present]
    if absent:
        print("FAIL: kernel families missing from the report: "
              + ", ".join(absent))
        return 1

    compared = 0
    failed = []
    for (family, arg, table), elapsed in sorted(rows.items()):
        if table == "scalar":
            continue
        scalar_time = rows.get((family, arg, "scalar"))
        if scalar_time is None:
            continue
        compared += 1
        ratio = scalar_time / elapsed
        verdict = "ok" if ratio >= required else "TOO SLOW"
        print(f"{family}/{arg}: {table} = {ratio:.2f}x scalar [{verdict}]")
        if ratio < required:
            failed.append(f"{family}/{arg}/{table}")

    if compared == 0:
        print("no SIMD kernel rows found (scalar-only CPU or build); skipping")
        return 0
    if failed:
        print(f"FAIL: {len(failed)} kernel rows slower than scalar: "
              + ", ".join(failed))
        return 1
    print(f"OK: {compared} SIMD rows at >= {required:.2f}x scalar")
    return 0


if __name__ == "__main__":
    sys.exit(main())

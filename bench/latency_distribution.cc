// Operation latency under open-loop load: the client must hear from every
// quorum member, so operation latency is the *maximum* of q message round
// trips — smaller quorums buy shorter tails. This bench drives Poisson
// arrivals through the asynchronous client over the simulated network and
// prints latency percentiles for the probabilistic construction vs the
// strict baselines at n = 100.
#include <algorithm>
#include <iostream>
#include <memory>
#include <vector>

#include "core/random_subset_system.h"
#include "quorum/grid.h"
#include "quorum/threshold.h"
#include "replica/sim_cluster.h"
#include "util/table.h"

namespace {

using namespace pqs;

struct Percentiles {
  double p50, p95, p99, max;
};

Percentiles percentiles(std::vector<sim::Time>& xs) {
  std::sort(xs.begin(), xs.end());
  auto at = [&](double f) {
    return static_cast<double>(
        xs[std::min(xs.size() - 1,
                    static_cast<std::size_t>(f * double(xs.size())))]);
  };
  return {at(0.50), at(0.95), at(0.99), static_cast<double>(xs.back())};
}

Percentiles run(std::shared_ptr<const quorum::QuorumSystem> system,
                std::uint64_t seed) {
  replica::SimCluster::Config cfg;
  cfg.quorums = std::move(system);
  cfg.latency = {.base = 200, .jitter_mean = 300, .drop_probability = 0.0};
  cfg.seed = seed;
  replica::SimCluster cluster(cfg);

  constexpr int kOps = 4000;
  constexpr sim::Time kMeanInterarrival = 2000;  // 500 ops/s open loop

  std::vector<sim::Time> latencies;
  latencies.reserve(kOps);
  math::Rng arrivals(seed ^ 0xa11ce);
  int issued = 0;

  // Chain Poisson arrivals; each op is a write or read alternately and
  // records its completion latency.
  std::function<void()> arrive = [&]() {
    if (issued >= kOps) return;
    ++issued;
    const sim::Time start = cluster.simulator().now();
    if (issued % 2 == 0) {
      cluster.client().write(1, issued, [&, start](const auto&) {
        latencies.push_back(cluster.simulator().now() - start);
      });
    } else {
      cluster.client().read(1, [&, start](const auto&) {
        latencies.push_back(cluster.simulator().now() - start);
      });
    }
    cluster.simulator().schedule(
        static_cast<sim::Time>(arrivals.exponential(kMeanInterarrival)),
        arrive);
  };
  cluster.simulator().schedule(0, arrive);
  cluster.simulator().run();
  return percentiles(latencies);
}

}  // namespace

int main() {
  using namespace pqs;

  util::banner(std::cout,
               "Operation latency (simulated network: 200us base + exp(300us) "
               "jitter, Poisson open loop, n = 100)");

  util::TextTable t({"system", "quorum size", "p50 (us)", "p95 (us)",
                     "p99 (us)", "max (us)"});
  struct Entry {
    std::string label;
    std::shared_ptr<const quorum::QuorumSystem> system;
  };
  const std::vector<Entry> entries = {
      {"R(100,23) probabilistic",
       std::make_shared<core::RandomSubsetSystem>(
           core::RandomSubsetSystem::intersecting(100, 1e-3))},
      {"grid 10x10", std::make_shared<quorum::GridSystem>(
                         quorum::GridSystem::square(100))},
      {"majority threshold", std::make_shared<quorum::ThresholdSystem>(
                                 quorum::ThresholdSystem::majority(100))},
  };
  for (const auto& e : entries) {
    const auto stats = run(e.system, 7);
    t.row()
        .cell(e.label)
        .cell(static_cast<std::size_t>(e.system->min_quorum_size()))
        .cell(stats.p50, 0)
        .cell(stats.p95, 0)
        .cell(stats.p99, 0)
        .cell(stats.max, 0);
  }
  t.print(std::cout);

  std::cout
      << "\nReading: completion waits on the slowest quorum member, so the\n"
         "latency tail grows roughly like the expected maximum of q\n"
         "exponentials (~ H_q * jitter): the 23-server probabilistic\n"
         "quorums complete well ahead of the 51-server majority at every\n"
         "percentile — the operational face of the load advantage.\n";
  return 0;
}

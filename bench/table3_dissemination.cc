// Table 3: Properties of various dissemination quorum systems at
// b = (sqrt(n)-1)/2 and eps <= 1e-3: our (b, eps)-dissemination system
// R(n, l sqrt(n)) vs the strict threshold construction (quorums of size
// ceil((n+b+1)/2), [MR98a]) and the grid construction ([MRW00]).
//
// This bench reproduces the paper's l values exactly (the exact
// hypergeometric epsilon with target 1e-3 pins l = 2.20, 2.40, 2.47, 2.50,
// 2.52, 2.57). Note two paper typos/simplifications: the grid quorum size
// at n=900 is 171 (printed 771), and the grid fault tolerance for d > 1 is
// sqrt(n) - d + 1 (the paper prints sqrt(n)).
#include <cmath>
#include <iostream>

#include "bench_common.h"
#include "core/random_subset_system.h"
#include "quorum/grid.h"
#include "quorum/threshold.h"
#include "util/table.h"

int main() {
  using namespace pqs;

  util::banner(
      std::cout,
      "Table 3: Properties of various dissemination quorum systems "
      "(b = (sqrt(n)-1)/2, eps <= 1e-3)");

  const double paper_ell[] = {2.20, 2.40, 2.47, 2.50, 2.52, 2.57};

  util::TextTable t({"n", "b", "paper l", "our l", "(b,eps) quorum",
                     "(b,eps) fault tol", "exact eps", "thr quorum",
                     "thr fault tol", "grid quorum", "grid fault tol"});
  int row = 0;
  for (auto n : bench::table_sizes()) {
    const auto b = bench::table_b(n);
    const auto sys = core::RandomSubsetSystem::dissemination(n, b, 1e-3);
    const auto thr = quorum::ThresholdSystem::dissemination(n, b);
    const auto grid = quorum::GridSystem::dissemination(n, b);
    t.row()
        .cell(static_cast<std::size_t>(n))
        .cell(static_cast<std::size_t>(b))
        .cell(paper_ell[row++], 2)
        .cell(sys.ell(), 2)
        .cell(static_cast<std::size_t>(sys.quorum_size()))
        .cell(static_cast<std::size_t>(sys.fault_tolerance()))
        .cell_sci(sys.epsilon(), 2)
        .cell(static_cast<std::size_t>(thr.min_quorum_size()))
        .cell(static_cast<std::size_t>(thr.fault_tolerance()))
        .cell(static_cast<std::size_t>(grid.min_quorum_size()))
        .cell(static_cast<std::size_t>(grid.fault_tolerance()));
  }
  t.print(std::cout);

  std::cout
      << "\nShape check (paper's Table 3): probabilistic dissemination\n"
         "quorums stay near l*sqrt(n) (24 vs threshold's 53 at n=100) and\n"
         "fault tolerance stays near n (77 vs 48 at n=100, 824 vs 443 at\n"
         "n=900); the paper's 771 grid entry at n=900 is a typo for 171.\n";
  return 0;
}

// End-to-end protocol throughput: the replica stack under load.
//
// Drives N independent InstantCluster shards (each a full server set plus a
// single-writer client loop) over a worker pool, running a Zipfian
// read/write mix from workload/, and reports write/read ops/sec for the two
// quorum draw paths side by side:
//
//   allocating — the original flow: QuorumSystem::sample() returning a
//                fresh sorted vector per op, Server::process() returning an
//                Outbound vector per message;
//   mask       — the zero-allocation flow: sample_mask into per-cluster
//                bitset scratch, direct Server::apply_write/serve_read
//                calls, results materialized into reused vectors.
//
// Both paths draw the same member sets from the same rng streams, so every
// aggregate counter (reads, writes, stale reads, per-server access
// checksum) must match bit for bit between them — and, because shards are
// self-contained and folded in index order, must be identical at any
// thread count. The bench verifies both properties and exits nonzero on
// any mismatch, which makes it a functional gate as well as a perf report.
//
// A global operator new/delete override counts heap allocations, so the
// "allocs/op" column is measured, not asserted: the mask path's figure is
// amortized setup (scratch growth, the per-key map) and tends to zero with
// the op count; the allocating path pays per operation.
//
// Flags: --threads=N (pool size, 0 = hardware), --samples=N (ops per
// shard; default 100000), --writers=N (contending writer clients per shard
// in the multi-writer section; default 4, max 255), --repair (repeat the
// multi-writer section with read-repair write-backs and report the load
// shift), --json=PATH (machine-readable report: ops/s, allocs/op, conflict
// rates, per-server contention counters and load profiles, and the
// dispatched SIMD kernel — CI archives it as BENCH_protocol.json).
//
// The multi-writer section measures timestamp-conflict behaviour under
// contention: N writers per shard interleave on the same Zipfian key
// space, and a write "conflicts" when it completes with a timestamp below
// the key's current maximum — it lost the ordering race, and every server
// that already holds the newer record ignores it (the standard (seq <<
// 16) | writer multi-writer extension; the paper's single-writer semantics
// are the default section above). The section reports the server-side
// observability layer: per-server writes_superseded counters
// (stats::ContentionSnapshot) and the measured per-server load profile
// (stats::LoadProfile over server contacts). With --repair, reads push the
// selected record back to quorum members that answered stale
// (InstantCluster::read_repair_into); repair consumes no rng draws, so the
// quorum streams are unchanged and the profile shift is purely the repair
// traffic. The repair run is verified bit-identical across draw paths and
// thread counts, like the main section.
#include <chrono>
#include <cinttypes>
#include <cstdio>
#include <memory>
#include <unordered_map>
#include <vector>

#include "alloc_count.h"
#include "bench_common.h"
#include "core/random_subset_system.h"
#include "math/rng.h"
#include "quorum/bitset.h"
#include "quorum/grid.h"
#include "quorum/threshold.h"
#include "replica/instant_cluster.h"
#include "simd/kernels.h"
#include "stats/counters.h"
#include "stats/load_profile.h"
#include "util/worker_pool.h"
#include "workload/workload.h"

namespace pqs {
namespace {

using replica::DrawPath;
using replica::InstantCluster;

constexpr std::uint32_t kShards = 8;

std::shared_ptr<const quorum::QuorumSystem> make_system(int which) {
  switch (which) {
    case 0:
      return std::make_shared<quorum::ThresholdSystem>(
          quorum::ThresholdSystem::majority(100));
    case 1:
      return std::make_shared<quorum::GridSystem>(quorum::GridSystem(10, 10));
    default:
      return std::make_shared<core::RandomSubsetSystem>(100, 30);
  }
}

// The original op loop, reproduced for the A/B: per-op result structs from
// the allocating draw path (which also dispatches through process() and
// its Outbound vectors), with the same key/mix draws as
// workload::run_workload_into so the two runners stay counter-identical.
workload::WorkloadReport run_legacy(InstantCluster& cluster,
                                    const workload::WorkloadSpec& spec,
                                    math::Rng& rng) {
  const workload::ZipfianKeys keys(spec.keys, spec.zipf_exponent);
  workload::WorkloadReport report;
  report.server_accesses.assign(cluster.universe_size(), 0);
  std::unordered_map<std::uint64_t, std::int64_t> last_written;
  std::int64_t next_value = 0;
  for (std::uint64_t op = 0; op < spec.operations; ++op) {
    const std::uint64_t key = keys.sample(rng);
    if (rng.chance(spec.read_fraction)) {
      ++report.reads;
      const auto r = cluster.read(key);
      for (auto u : r.quorum) ++report.server_accesses[u];
      const auto expected = last_written.find(key);
      if (expected == last_written.end()) {
        ++report.empty_reads;
      } else if (!r.selection.has_value) {
        ++report.empty_reads;
        ++report.stale_reads;
      } else if (r.selection.record.value != expected->second) {
        ++report.stale_reads;
      }
    } else {
      ++report.writes;
      const auto w = cluster.write(key, ++next_value);
      for (auto u : w.quorum) ++report.server_accesses[u];
      last_written[key] = next_value;
    }
  }
  return report;
}

struct Aggregate {
  std::uint64_t reads = 0;
  std::uint64_t writes = 0;
  std::uint64_t stale_reads = 0;
  std::uint64_t empty_reads = 0;
  std::uint64_t access_checksum = 0;  // position-weighted, order-sensitive

  bool operator==(const Aggregate& o) const {
    return reads == o.reads && writes == o.writes &&
           stale_reads == o.stale_reads && empty_reads == o.empty_reads &&
           access_checksum == o.access_checksum;
  }
};

Aggregate fold(const std::vector<workload::WorkloadReport>& reports) {
  Aggregate agg;
  for (const auto& r : reports) {
    agg.reads += r.reads;
    agg.writes += r.writes;
    agg.stale_reads += r.stale_reads;
    agg.empty_reads += r.empty_reads;
    for (std::size_t u = 0; u < r.server_accesses.size(); ++u) {
      agg.access_checksum +=
          (static_cast<std::uint64_t>(u) + 1) * r.server_accesses[u];
    }
  }
  return agg;
}

struct RunResult {
  Aggregate aggregate;
  double seconds = 0.0;
  double allocs_per_op = 0.0;
};

RunResult run_shards(const std::shared_ptr<const quorum::QuorumSystem>& sys,
                     DrawPath path, std::uint64_t ops_per_shard,
                     unsigned threads) {
  workload::WorkloadSpec spec;
  spec.keys = 64;
  spec.zipf_exponent = 0.99;
  spec.read_fraction = 0.5;
  spec.operations = ops_per_shard;

  std::vector<std::unique_ptr<InstantCluster>> clusters;
  clusters.reserve(kShards);
  for (std::uint32_t s = 0; s < kShards; ++s) {
    InstantCluster::Config cfg;
    cfg.quorums = sys;
    cfg.seed = 1000003ULL * (s + 1);
    cfg.draw_path = path;
    clusters.push_back(std::make_unique<InstantCluster>(cfg));
  }
  std::vector<workload::WorkloadReport> reports(kShards);

  util::WorkerPool pool(threads);
  const std::uint64_t before = bench::allocations();
  const auto t0 = std::chrono::steady_clock::now();
  pool.run(kShards, [&](std::uint64_t s) {
    math::Rng rng(7777 + s);
    if (path == DrawPath::kMask) {
      workload::run_workload_into(*clusters[s], spec, rng, reports[s]);
    } else {
      reports[s] = run_legacy(*clusters[s], spec, rng);
    }
  });
  const auto t1 = std::chrono::steady_clock::now();
  const std::uint64_t after = bench::allocations();

  RunResult result;
  result.aggregate = fold(reports);
  result.seconds = std::chrono::duration<double>(t1 - t0).count();
  result.allocs_per_op =
      static_cast<double>(after - before) /
      static_cast<double>(ops_per_shard * kShards);
  return result;
}

// ---- multi-writer contention ---------------------------------------------

struct MultiWriterResult {
  std::uint64_t writes = 0;
  std::uint64_t reads = 0;
  std::uint64_t conflicts = 0;  // writes that completed below the key max
  std::uint64_t covered = 0;    // distinct servers touched (all shards)
  // Server-side trace: write deliveries a server acked but did not adopt
  // because it already held a newer record. Unlike the op-level conflict
  // count (a pure function of the interleave), this depends on which
  // quorums the contending writes landed on, so it differentiates the
  // systems under test.
  std::uint64_t write_contacts = 0;
  std::uint64_t repairs = 0;  // read-repair write-backs (repair runs only)
  // Client-side quorum contacts per server, folded across shards — a pure
  // function of the draw streams, so identical with repair on or off.
  std::vector<std::uint64_t> accesses;
  // Per-server protocol counters folded across shards. writes_accepted +
  // reads_served is the server-side contact count *including* repair
  // traffic — the load profile that shifts when --repair is on.
  stats::ContentionSnapshot contention;
  double seconds = 0.0;
  double allocs_per_op = 0.0;

  double conflict_rate() const {
    return writes == 0 ? 0.0
                       : static_cast<double>(conflicts) /
                             static_cast<double>(writes);
  }
  // Derived from the contention snapshot so it cannot drift from the
  // per-server counters it summarizes.
  std::uint64_t superseded() const {
    return contention.totals().writes_superseded;
  }
  double superseded_rate() const {
    return write_contacts == 0 ? 0.0
                               : static_cast<double>(superseded()) /
                                     static_cast<double>(write_contacts);
  }
  // Measured per-server load over server-side contacts (repair included).
  stats::LoadProfile server_profile() const {
    std::vector<std::uint64_t> hits(contention.universe_size(), 0);
    for (std::uint32_t u = 0; u < contention.universe_size(); ++u) {
      const auto& c = contention.server(u);
      hits[u] = c.writes_accepted + c.reads_served;
    }
    return stats::LoadProfile(std::move(hits), writes + reads);
  }
  // Everything deterministic (no timings): the bit-identity gate across
  // draw paths and thread counts.
  bool counters_equal(const MultiWriterResult& o) const {
    return writes == o.writes && reads == o.reads &&
           conflicts == o.conflicts && covered == o.covered &&
           write_contacts == o.write_contacts && repairs == o.repairs &&
           accesses == o.accesses && contention == o.contention;
  }
};

MultiWriterResult run_multi_writer(
    const std::shared_ptr<const quorum::QuorumSystem>& sys,
    std::uint32_t writers, std::uint64_t ops_per_shard, unsigned threads,
    DrawPath path, bool repair) {
  struct ShardStats {
    std::uint64_t writes = 0, reads = 0, conflicts = 0, covered = 0;
    std::uint64_t write_contacts = 0, repairs = 0;
    std::vector<std::uint64_t> accesses;
    stats::ContentionSnapshot contention;
  };
  std::vector<std::unique_ptr<InstantCluster>> clusters;
  clusters.reserve(kShards);
  for (std::uint32_t s = 0; s < kShards; ++s) {
    InstantCluster::Config cfg;
    cfg.quorums = sys;
    cfg.seed = 2000003ULL * (s + 1);
    cfg.draw_path = path;
    clusters.push_back(std::make_unique<InstantCluster>(cfg));
  }
  std::vector<ShardStats> stats(kShards);

  util::WorkerPool pool(threads);
  const std::uint64_t before = bench::allocations();
  const auto t0 = std::chrono::steady_clock::now();
  pool.run(kShards, [&](std::uint64_t s) {
    InstantCluster& cluster = *clusters[s];
    const std::uint32_t n = cluster.universe_size();
    math::Rng rng(8888 + s);
    const workload::ZipfianKeys keys(64, 0.99);
    std::unordered_map<std::uint64_t, std::uint64_t> max_ts;
    // Union of every quorum the shard touched, accumulated word-parallel
    // (QuorumBitset::or_with) — coverage shows how much of the universe
    // the access strategy spread the contention over.
    quorum::QuorumBitset touched(n), op_mask(n);
    replica::WriteResult w;
    replica::ReadResult r;
    ShardStats& out = stats[s];
    out.accesses.assign(n, 0);
    std::int64_t value = 0;
    for (std::uint64_t op = 0; op < ops_per_shard; ++op) {
      const std::uint64_t key = keys.sample(rng);
      if (rng.chance(0.5)) {
        ++out.reads;
        if (repair) {
          cluster.read_repair_into(r, key);
          out.repairs += r.repairs;
        } else {
          cluster.read_into(r, key);
        }
        for (const auto u : r.quorum) ++out.accesses[u];
        op_mask.assign(r.quorum);
      } else {
        ++out.writes;
        // Writers take turns; ids are 1-based (writer < 256 keeps the
        // (seq << 16) | writer timestamps collision-free).
        const std::uint32_t writer =
            1 + static_cast<std::uint32_t>(out.writes % writers);
        cluster.write_as_into(w, writer, key, ++value);
        out.write_contacts += w.acks;
        auto& seen = max_ts[key];
        if (w.timestamp < seen) {
          ++out.conflicts;
        } else {
          seen = w.timestamp;
        }
        for (const auto u : w.quorum) ++out.accesses[u];
        op_mask.assign(w.quorum);
      }
      touched.or_with(op_mask);
    }
    out.covered = touched.count();
    out.contention = cluster.contention_snapshot();
  });
  const auto t1 = std::chrono::steady_clock::now();
  const std::uint64_t after = bench::allocations();

  MultiWriterResult result;
  for (const auto& s : stats) {
    result.writes += s.writes;
    result.reads += s.reads;
    result.conflicts += s.conflicts;
    result.covered += s.covered;
    result.write_contacts += s.write_contacts;
    result.repairs += s.repairs;
    if (result.accesses.empty()) {
      result.accesses = s.accesses;
    } else {
      for (std::size_t u = 0; u < s.accesses.size(); ++u) {
        result.accesses[u] += s.accesses[u];
      }
    }
    result.contention.merge(s.contention);
  }
  result.seconds = std::chrono::duration<double>(t1 - t0).count();
  result.allocs_per_op =
      static_cast<double>(after - before) /
      static_cast<double>(ops_per_shard * kShards);
  return result;
}

// Raw draw throughput: the three draw entry points plus the batched one,
// single-threaded so the numbers isolate per-draw cost.
void raw_draw_section(const std::shared_ptr<const quorum::QuorumSystem>& sys,
                      std::uint64_t draws) {
  const std::uint32_t n = sys->universe_size();
  math::Rng rng(404);
  const auto time_loop = [&](const char* label, auto&& body) {
    const auto t0 = std::chrono::steady_clock::now();
    body();
    const auto t1 = std::chrono::steady_clock::now();
    const double sec = std::chrono::duration<double>(t1 - t0).count();
    std::printf("[draw] system=%s entry=%s draws/sec=%.3g\n",
                sys->name().c_str(), label,
                static_cast<double>(draws) / (sec > 0 ? sec : 1e-9));
  };
  time_loop("sample", [&] {
    for (std::uint64_t i = 0; i < draws; ++i) {
      const auto q = sys->sample(rng);
      if (q.empty()) std::abort();
    }
  });
  time_loop("sample_mask", [&] {
    quorum::QuorumBitset mask(n);
    for (std::uint64_t i = 0; i < draws; ++i) sys->sample_mask(mask, rng);
  });
  time_loop("sample_masks[32]", [&] {
    std::vector<quorum::QuorumBitset> batch(32, quorum::QuorumBitset(n));
    for (std::uint64_t i = 0; i < draws; i += 32) {
      sys->sample_masks(batch.data(), 32, rng);
    }
  });
}

// One system's full measurement set, kept for the JSON report.
struct SystemReport {
  std::string name;
  RunResult legacy;
  RunResult mask;
  MultiWriterResult multi;
  bool has_repair = false;
  MultiWriterResult repaired;
};

// One multi-writer JSON object: rates, repair count, the per-server
// superseded counters, and the measured server-side load profile.
void write_multi_writer_json(std::FILE* f, const char* key,
                             const MultiWriterResult& m, std::uint32_t writers,
                             double total_ops) {
  const stats::LoadProfile profile = m.server_profile();
  std::fprintf(f,
               "      \"%s\": {\"writers\": %u, \"ops_per_sec\": %.6g, "
               "\"conflict_rate\": %.6f, \"superseded_rate\": %.6f, "
               "\"repairs\": %" PRIu64 ", \"allocs_per_op\": %.4f,\n"
               "        \"load_profile\": {\"max_load\": %.6f, "
               "\"mean_load\": %.6f, \"imbalance\": %.4f, \"top\": [",
               key, writers, total_ops / m.seconds, m.conflict_rate(),
               m.superseded_rate(), m.repairs, m.allocs_per_op,
               profile.max_load(), profile.mean_load(), profile.imbalance());
  const auto top = profile.hottest(5);
  for (std::size_t t = 0; t < top.size(); ++t) {
    std::fprintf(f, "{\"server\": %u, \"load\": %.6f}%s", top[t].server,
                 top[t].load, t + 1 < top.size() ? ", " : "");
  }
  std::fprintf(f, "]},\n        \"superseded_per_server\": [");
  const auto& per_server = m.contention.per_server();
  for (std::size_t u = 0; u < per_server.size(); ++u) {
    std::fprintf(f, "%" PRIu64 "%s", per_server[u].writes_superseded,
                 u + 1 < per_server.size() ? ", " : "");
  }
  std::fprintf(f, "]}");
}

void write_json(const char* path, const std::vector<SystemReport>& systems,
                std::uint64_t ops_per_shard, std::uint32_t writers, bool ok) {
  std::FILE* f = std::fopen(path, "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write JSON report to %s\n", path);
    return;
  }
  const double total_ops =
      static_cast<double>(ops_per_shard) * static_cast<double>(kShards);
  std::fprintf(f,
               "{\n  \"bench\": \"protocol_throughput\",\n"
               "  \"simd_kernel\": \"%s\",\n  \"shards\": %u,\n"
               "  \"ops_per_shard\": %" PRIu64 ",\n  \"writers\": %u,\n"
               "  \"ok\": %s,\n  \"systems\": [\n",
               simd::active().name, kShards, ops_per_shard, writers,
               ok ? "true" : "false");
  for (std::size_t i = 0; i < systems.size(); ++i) {
    const SystemReport& s = systems[i];
    std::fprintf(
        f,
        "    {\n      \"name\": \"%s\",\n"
        "      \"allocating\": {\"ops_per_sec\": %.6g, \"allocs_per_op\": "
        "%.4f},\n"
        "      \"mask\": {\"ops_per_sec\": %.6g, \"allocs_per_op\": %.4f},\n"
        "      \"speedup\": %.4f,\n",
        s.name.c_str(), total_ops / s.legacy.seconds, s.legacy.allocs_per_op,
        total_ops / s.mask.seconds, s.mask.allocs_per_op,
        s.legacy.seconds / s.mask.seconds);
    write_multi_writer_json(f, "multi_writer", s.multi, writers, total_ops);
    if (s.has_repair) {
      std::fprintf(f, ",\n");
      write_multi_writer_json(f, "multi_writer_repair", s.repaired, writers,
                              total_ops);
    }
    std::fprintf(f, "\n    }%s\n", i + 1 < systems.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
}

int main_impl(int argc, char** argv) {
  const auto opts = bench::parse_options(argc, argv);
  const std::uint64_t ops_per_shard = opts.samples_or(100000);
  const unsigned threads = opts.threads;
  const std::uint32_t writers =
      opts.writers < 1 ? 1 : (opts.writers > 255 ? 255 : opts.writers);
  const bool repair = opts.repair;

  std::printf(
      "protocol_throughput: %u shards x %" PRIu64
      " ops, zipf(0.99) over 64 keys, 50%% reads, simd=%s\n",
      kShards, ops_per_shard, simd::active().name);

  bool ok = true;
  std::vector<SystemReport> reports;
  for (int which = 0; which < 3; ++which) {
    const auto sys = make_system(which);
    const RunResult legacy =
        run_shards(sys, DrawPath::kAllocating, ops_per_shard, threads);
    const RunResult mask =
        run_shards(sys, DrawPath::kMask, ops_per_shard, threads);
    // Same draws, same protocol: every counter matches or the bench fails.
    if (!(legacy.aggregate == mask.aggregate)) {
      std::printf("MISMATCH: %s aggregates differ between draw paths\n",
                  sys->name().c_str());
      ok = false;
    }
    // And thread scheduling must not be able to change the fold.
    const RunResult mask_serial =
        run_shards(sys, DrawPath::kMask, ops_per_shard, 1);
    if (!(mask_serial.aggregate == mask.aggregate)) {
      std::printf("MISMATCH: %s aggregates differ between thread counts\n",
                  sys->name().c_str());
      ok = false;
    }
    const double total_ops =
        static_cast<double>(ops_per_shard) * static_cast<double>(kShards);
    std::printf(
        "[protocol] system=%s path=allocating ops/sec=%.3g allocs/op=%.2f "
        "stale=%" PRIu64 " checksum=%" PRIu64 "\n",
        sys->name().c_str(), total_ops / legacy.seconds, legacy.allocs_per_op,
        legacy.aggregate.stale_reads, legacy.aggregate.access_checksum);
    std::printf(
        "[protocol] system=%s path=mask       ops/sec=%.3g allocs/op=%.2f "
        "stale=%" PRIu64 " checksum=%" PRIu64 "\n",
        sys->name().c_str(), total_ops / mask.seconds, mask.allocs_per_op,
        mask.aggregate.stale_reads, mask.aggregate.access_checksum);
    std::printf("[protocol] system=%s speedup=%.2fx\n", sys->name().c_str(),
                legacy.seconds / mask.seconds);

    const MultiWriterResult multi = run_multi_writer(
        sys, writers, ops_per_shard, threads, DrawPath::kMask, false);
    const stats::LoadProfile base_profile = multi.server_profile();
    std::printf(
        "[multiwriter] system=%s writers=%u ops/sec=%.3g conflict_rate=%.4f "
        "superseded_rate=%.4f coverage=%.1f max_load=%.4f imbalance=%.3f "
        "allocs/op=%.2f\n",
        sys->name().c_str(), writers, total_ops / multi.seconds,
        multi.conflict_rate(), multi.superseded_rate(),
        static_cast<double>(multi.covered) / static_cast<double>(kShards),
        base_profile.max_load(), base_profile.imbalance(),
        multi.allocs_per_op);

    SystemReport report{sys->name(), legacy, mask, multi, false, {}};
    if (repair) {
      // The read-repair experiment: same draws (repair consumes no rng),
      // so the access counters match the base run by construction, and the
      // whole run must be bit-identical across draw paths and thread
      // counts like the main section.
      report.has_repair = true;
      report.repaired = run_multi_writer(sys, writers, ops_per_shard,
                                         threads, DrawPath::kMask, true);
      const MultiWriterResult repaired_serial = run_multi_writer(
          sys, writers, ops_per_shard, 1, DrawPath::kMask, true);
      if (!report.repaired.counters_equal(repaired_serial)) {
        std::printf(
            "MISMATCH: %s repair aggregates differ between thread counts\n",
            sys->name().c_str());
        ok = false;
      }
      const MultiWriterResult repaired_alloc = run_multi_writer(
          sys, writers, ops_per_shard, threads, DrawPath::kAllocating, true);
      if (!report.repaired.counters_equal(repaired_alloc)) {
        std::printf(
            "MISMATCH: %s repair aggregates differ between draw paths\n",
            sys->name().c_str());
        ok = false;
      }
      if (report.repaired.accesses != multi.accesses) {
        std::printf(
            "MISMATCH: %s repair changed the quorum access counters\n",
            sys->name().c_str());
        ok = false;
      }
      const stats::LoadProfile repaired_profile =
          report.repaired.server_profile();
      std::printf(
          "[repair] system=%s repairs=%" PRIu64
          " repairs/read=%.4f max_load %.4f->%.4f imbalance %.3f->%.3f "
          "superseded_rate %.4f->%.4f\n",
          sys->name().c_str(), report.repaired.repairs,
          report.repaired.reads == 0
              ? 0.0
              : static_cast<double>(report.repaired.repairs) /
                    static_cast<double>(report.repaired.reads),
          base_profile.max_load(), repaired_profile.max_load(),
          base_profile.imbalance(), repaired_profile.imbalance(),
          multi.superseded_rate(), report.repaired.superseded_rate());
    }

    reports.push_back(std::move(report));
  }

  const std::uint64_t draws = ops_per_shard < 8192 ? 32768 : 1u << 20;
  raw_draw_section(make_system(0), draws);
  raw_draw_section(make_system(1), draws);

  if (!opts.json.empty()) {
    write_json(opts.json.c_str(), reports, ops_per_shard, writers, ok);
  }

  std::printf(ok ? "OK: aggregates bit-identical across draw paths and "
                   "thread counts\n"
                 : "FAILED: see mismatches above\n");
  return ok ? 0 : 1;
}

}  // namespace
}  // namespace pqs

int main(int argc, char** argv) { return pqs::main_impl(argc, argv); }

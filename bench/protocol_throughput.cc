// End-to-end protocol throughput: the replica stack under load.
//
// Drives N independent InstantCluster shards (each a full server set plus a
// single-writer client loop) over a worker pool, running a Zipfian
// read/write mix from workload/, and reports write/read ops/sec for the two
// quorum draw paths side by side:
//
//   allocating — the original flow: QuorumSystem::sample() returning a
//                fresh sorted vector per op, Server::process() returning an
//                Outbound vector per message;
//   mask       — the zero-allocation flow: sample_mask into per-cluster
//                bitset scratch, direct Server::apply_write/serve_read
//                calls, results materialized into reused vectors.
//
// Both paths draw the same member sets from the same rng streams, so every
// aggregate counter (reads, writes, stale reads, per-server access
// checksum) must match bit for bit between them — and, because shards are
// self-contained and folded in index order, must be identical at any
// thread count. The bench verifies both properties and exits nonzero on
// any mismatch, which makes it a functional gate as well as a perf report.
//
// A global operator new/delete override counts heap allocations, so the
// "allocs/op" column is measured, not asserted: the mask path's figure is
// amortized setup (scratch growth, the per-key map) and tends to zero with
// the op count; the allocating path pays per operation.
//
// Flags: --threads=N (pool size, 0 = hardware), --samples=N (ops per
// shard; default 100000).
#include <atomic>
#include <chrono>
#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <new>
#include <unordered_map>
#include <vector>

#include "bench_common.h"
#include "core/random_subset_system.h"
#include "math/rng.h"
#include "quorum/bitset.h"
#include "quorum/grid.h"
#include "quorum/threshold.h"
#include "replica/instant_cluster.h"
#include "util/worker_pool.h"
#include "workload/workload.h"

// ---- allocation counter ---------------------------------------------------

static std::atomic<std::uint64_t> g_allocations{0};

void* operator new(std::size_t size) {
  g_allocations.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size ? size : 1)) return p;
  throw std::bad_alloc();
}
void* operator new[](std::size_t size) { return ::operator new(size); }
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

namespace pqs {
namespace {

using replica::DrawPath;
using replica::InstantCluster;

constexpr std::uint32_t kShards = 8;

std::shared_ptr<const quorum::QuorumSystem> make_system(int which) {
  switch (which) {
    case 0:
      return std::make_shared<quorum::ThresholdSystem>(
          quorum::ThresholdSystem::majority(100));
    case 1:
      return std::make_shared<quorum::GridSystem>(quorum::GridSystem(10, 10));
    default:
      return std::make_shared<core::RandomSubsetSystem>(100, 30);
  }
}

// The original op loop, reproduced for the A/B: per-op result structs from
// the allocating draw path (which also dispatches through process() and
// its Outbound vectors), with the same key/mix draws as
// workload::run_workload_into so the two runners stay counter-identical.
workload::WorkloadReport run_legacy(InstantCluster& cluster,
                                    const workload::WorkloadSpec& spec,
                                    math::Rng& rng) {
  const workload::ZipfianKeys keys(spec.keys, spec.zipf_exponent);
  workload::WorkloadReport report;
  report.server_accesses.assign(cluster.universe_size(), 0);
  std::unordered_map<std::uint64_t, std::int64_t> last_written;
  std::int64_t next_value = 0;
  for (std::uint64_t op = 0; op < spec.operations; ++op) {
    const std::uint64_t key = keys.sample(rng);
    if (rng.chance(spec.read_fraction)) {
      ++report.reads;
      const auto r = cluster.read(key);
      for (auto u : r.quorum) ++report.server_accesses[u];
      const auto expected = last_written.find(key);
      if (expected == last_written.end()) {
        ++report.empty_reads;
      } else if (!r.selection.has_value) {
        ++report.empty_reads;
        ++report.stale_reads;
      } else if (r.selection.record.value != expected->second) {
        ++report.stale_reads;
      }
    } else {
      ++report.writes;
      const auto w = cluster.write(key, ++next_value);
      for (auto u : w.quorum) ++report.server_accesses[u];
      last_written[key] = next_value;
    }
  }
  return report;
}

struct Aggregate {
  std::uint64_t reads = 0;
  std::uint64_t writes = 0;
  std::uint64_t stale_reads = 0;
  std::uint64_t empty_reads = 0;
  std::uint64_t access_checksum = 0;  // position-weighted, order-sensitive

  bool operator==(const Aggregate& o) const {
    return reads == o.reads && writes == o.writes &&
           stale_reads == o.stale_reads && empty_reads == o.empty_reads &&
           access_checksum == o.access_checksum;
  }
};

Aggregate fold(const std::vector<workload::WorkloadReport>& reports) {
  Aggregate agg;
  for (const auto& r : reports) {
    agg.reads += r.reads;
    agg.writes += r.writes;
    agg.stale_reads += r.stale_reads;
    agg.empty_reads += r.empty_reads;
    for (std::size_t u = 0; u < r.server_accesses.size(); ++u) {
      agg.access_checksum +=
          (static_cast<std::uint64_t>(u) + 1) * r.server_accesses[u];
    }
  }
  return agg;
}

struct RunResult {
  Aggregate aggregate;
  double seconds = 0.0;
  double allocs_per_op = 0.0;
};

RunResult run_shards(const std::shared_ptr<const quorum::QuorumSystem>& sys,
                     DrawPath path, std::uint64_t ops_per_shard,
                     unsigned threads) {
  workload::WorkloadSpec spec;
  spec.keys = 64;
  spec.zipf_exponent = 0.99;
  spec.read_fraction = 0.5;
  spec.operations = ops_per_shard;

  std::vector<std::unique_ptr<InstantCluster>> clusters;
  clusters.reserve(kShards);
  for (std::uint32_t s = 0; s < kShards; ++s) {
    InstantCluster::Config cfg;
    cfg.quorums = sys;
    cfg.seed = 1000003ULL * (s + 1);
    cfg.draw_path = path;
    clusters.push_back(std::make_unique<InstantCluster>(cfg));
  }
  std::vector<workload::WorkloadReport> reports(kShards);

  util::WorkerPool pool(threads);
  const std::uint64_t before = g_allocations.load(std::memory_order_relaxed);
  const auto t0 = std::chrono::steady_clock::now();
  pool.run(kShards, [&](std::uint64_t s) {
    math::Rng rng(7777 + s);
    if (path == DrawPath::kMask) {
      workload::run_workload_into(*clusters[s], spec, rng, reports[s]);
    } else {
      reports[s] = run_legacy(*clusters[s], spec, rng);
    }
  });
  const auto t1 = std::chrono::steady_clock::now();
  const std::uint64_t after = g_allocations.load(std::memory_order_relaxed);

  RunResult result;
  result.aggregate = fold(reports);
  result.seconds = std::chrono::duration<double>(t1 - t0).count();
  result.allocs_per_op =
      static_cast<double>(after - before) /
      static_cast<double>(ops_per_shard * kShards);
  return result;
}

// Raw draw throughput: the three draw entry points plus the batched one,
// single-threaded so the numbers isolate per-draw cost.
void raw_draw_section(const std::shared_ptr<const quorum::QuorumSystem>& sys,
                      std::uint64_t draws) {
  const std::uint32_t n = sys->universe_size();
  math::Rng rng(404);
  const auto time_loop = [&](const char* label, auto&& body) {
    const auto t0 = std::chrono::steady_clock::now();
    body();
    const auto t1 = std::chrono::steady_clock::now();
    const double sec = std::chrono::duration<double>(t1 - t0).count();
    std::printf("[draw] system=%s entry=%s draws/sec=%.3g\n",
                sys->name().c_str(), label,
                static_cast<double>(draws) / (sec > 0 ? sec : 1e-9));
  };
  time_loop("sample", [&] {
    for (std::uint64_t i = 0; i < draws; ++i) {
      const auto q = sys->sample(rng);
      if (q.empty()) std::abort();
    }
  });
  time_loop("sample_mask", [&] {
    quorum::QuorumBitset mask(n);
    for (std::uint64_t i = 0; i < draws; ++i) sys->sample_mask(mask, rng);
  });
  time_loop("sample_masks[32]", [&] {
    std::vector<quorum::QuorumBitset> batch(32, quorum::QuorumBitset(n));
    for (std::uint64_t i = 0; i < draws; i += 32) {
      sys->sample_masks(batch.data(), 32, rng);
    }
  });
}

int main_impl(int argc, char** argv) {
  const auto opts = bench::parse_options(argc, argv);
  const std::uint64_t ops_per_shard = opts.samples_or(100000);
  const unsigned threads = opts.threads;

  std::printf(
      "protocol_throughput: %u shards x %" PRIu64
      " ops, zipf(0.99) over 64 keys, 50%% reads\n",
      kShards, ops_per_shard);

  bool ok = true;
  for (int which = 0; which < 3; ++which) {
    const auto sys = make_system(which);
    const RunResult legacy =
        run_shards(sys, DrawPath::kAllocating, ops_per_shard, threads);
    const RunResult mask =
        run_shards(sys, DrawPath::kMask, ops_per_shard, threads);
    // Same draws, same protocol: every counter matches or the bench fails.
    if (!(legacy.aggregate == mask.aggregate)) {
      std::printf("MISMATCH: %s aggregates differ between draw paths\n",
                  sys->name().c_str());
      ok = false;
    }
    // And thread scheduling must not be able to change the fold.
    const RunResult mask_serial =
        run_shards(sys, DrawPath::kMask, ops_per_shard, 1);
    if (!(mask_serial.aggregate == mask.aggregate)) {
      std::printf("MISMATCH: %s aggregates differ between thread counts\n",
                  sys->name().c_str());
      ok = false;
    }
    const double total_ops =
        static_cast<double>(ops_per_shard) * static_cast<double>(kShards);
    std::printf(
        "[protocol] system=%s path=allocating ops/sec=%.3g allocs/op=%.2f "
        "stale=%" PRIu64 " checksum=%" PRIu64 "\n",
        sys->name().c_str(), total_ops / legacy.seconds, legacy.allocs_per_op,
        legacy.aggregate.stale_reads, legacy.aggregate.access_checksum);
    std::printf(
        "[protocol] system=%s path=mask       ops/sec=%.3g allocs/op=%.2f "
        "stale=%" PRIu64 " checksum=%" PRIu64 "\n",
        sys->name().c_str(), total_ops / mask.seconds, mask.allocs_per_op,
        mask.aggregate.stale_reads, mask.aggregate.access_checksum);
    std::printf("[protocol] system=%s speedup=%.2fx\n", sys->name().c_str(),
                legacy.seconds / mask.seconds);
  }

  const std::uint64_t draws = ops_per_shard < 8192 ? 32768 : 1u << 20;
  raw_draw_section(make_system(0), draws);
  raw_draw_section(make_system(1), draws);

  std::printf(ok ? "OK: aggregates bit-identical across draw paths and "
                   "thread counts\n"
                 : "FAILED: see mismatches above\n");
  return ok ? 0 : 1;
}

}  // namespace
}  // namespace pqs

int main(int argc, char** argv) { return pqs::main_impl(argc, argv); }

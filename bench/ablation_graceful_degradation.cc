// Ablation: graceful degradation (Section 4.2, second remark).
//
// "Even if the fraction of Byzantine faults that may occur is not known, it
// is possible to use this construction ... the actual intersection
// probability will be better if fewer Byzantine faults actually occur."
//
// We fix the dissemination system sized for b_max = n/4 and sweep the
// *actual* number of faulty servers f = 0..b_max, printing the exact
// epsilon and the staleness rate measured by running the full protocol with
// f stale-replaying servers.
#include <iostream>
#include <memory>

#include "core/epsilon.h"
#include "core/random_subset_system.h"
#include "math/stats.h"
#include "replica/instant_cluster.h"
#include "util/table.h"

int main() {
  using namespace pqs;

  const std::uint32_t n = 100;
  const std::uint32_t b_max = 25;
  const auto sys = core::RandomSubsetSystem::dissemination(n, b_max, 1e-3);

  util::banner(std::cout,
               "Ablation: graceful degradation of " + sys.name() +
                   " as actual faults f <= b_max vary");

  util::TextTable t({"actual faults f", "exact eps(f)", "measured staleness",
                     "trials"});
  for (std::uint32_t f = 0; f <= b_max; f += 5) {
    replica::InstantCluster::Config cfg;
    cfg.quorums = std::make_shared<core::RandomSubsetSystem>(sys);
    cfg.mode = replica::ReadMode::kDissemination;
    cfg.seed = 100 + f;
    replica::InstantCluster cluster(
        cfg, replica::FaultPlan::prefix(n, f, replica::FaultMode::kStaleReplay));
    math::Proportion stale;
    std::int64_t value = 0;
    constexpr int kPairs = 100000;
    for (int i = 0; i < kPairs; ++i) {
      cluster.write(1, ++value);
      const auto r = cluster.read(1);
      stale.add(!(r.selection.has_value && r.selection.record.value == value));
    }
    t.row()
        .cell(static_cast<std::size_t>(f))
        .cell_sci(core::dissemination_epsilon_exact(n, sys.quorum_size(), f), 3)
        .cell_sci(stale.estimate(), 3)
        .cell(static_cast<long long>(kPairs));
  }
  t.print(std::cout);

  std::cout
      << "\nReading: the consistency guarantee tightens by orders of\n"
         "magnitude as the actual fault count drops below the provisioned\n"
         "b_max, with measured staleness tracking the exact eps(f) curve.\n";
  return 0;
}

// Table 4: Properties of various masking quorum systems at
// b = (sqrt(n)-1)/2 and eps <= 1e-3: our (b, eps)-masking system
// R_k(n, q) (read threshold k = ceil(q^2/2n)) vs the strict threshold
// masking construction (quorums of size ceil((n+2b+1)/2)) and the grid
// masking construction.
//
// The paper's Table 4 l values cannot be reproduced by any single rounding
// convention for k (see EXPERIMENTS.md); the exact joint computation with
// k = ceil(q^2/2n) lands within a few servers of every paper row, and both
// l columns are printed for comparison.
#include <cmath>
#include <iostream>

#include "bench_common.h"
#include "core/random_subset_system.h"
#include "quorum/grid.h"
#include "quorum/threshold.h"
#include "util/table.h"

int main() {
  using namespace pqs;

  util::banner(std::cout,
               "Table 4: Properties of various masking quorum systems "
               "(b = (sqrt(n)-1)/2, eps <= 1e-3)");

  const double paper_ell[] = {3.00, 3.80, 4.27, 4.70, 4.92, 5.07};

  util::TextTable t({"n", "b", "paper l", "our l", "(b,eps) quorum", "k",
                     "(b,eps) fault tol", "exact eps", "thr quorum",
                     "thr fault tol", "grid quorum", "grid fault tol"});
  int row = 0;
  for (auto n : bench::table_sizes()) {
    const auto b = bench::table_b(n);
    const auto sys = core::RandomSubsetSystem::masking(n, b, 1e-3);
    const auto thr = quorum::ThresholdSystem::masking(n, b);
    const auto grid = quorum::GridSystem::masking(n, b);
    t.row()
        .cell(static_cast<std::size_t>(n))
        .cell(static_cast<std::size_t>(b))
        .cell(paper_ell[row++], 2)
        .cell(sys.ell(), 2)
        .cell(static_cast<std::size_t>(sys.quorum_size()))
        .cell(static_cast<std::size_t>(sys.read_threshold()))
        .cell(static_cast<std::size_t>(sys.fault_tolerance()))
        .cell_sci(sys.epsilon(), 2)
        .cell(static_cast<std::size_t>(thr.min_quorum_size()))
        .cell(static_cast<std::size_t>(thr.fault_tolerance()))
        .cell(static_cast<std::size_t>(grid.min_quorum_size()))
        .cell(static_cast<std::size_t>(grid.fault_tolerance()));
  }
  t.print(std::cout);

  std::cout
      << "\nShape check (paper's Table 4): masking quorums are larger than\n"
         "dissemination ones (l ~ 3-5 vs ~2.5) but still well below the\n"
         "threshold construction (40 vs 55 at n=100, 146 vs 465 at n=900),\n"
         "with near-linear fault tolerance.\n";
  return 0;
}

// Ablation: the birthday-paradox intuition of Section 3.4, made exact.
//
// "the expected, and most probable, size of the intersection of two such
// quorums is l^2 ... the probability that any given element in one quorum
// is also in the second quorum is quite small (l/sqrt(n)), but the
// probability that some element appears in both quorums is quite high."
//
// With Q fixed, |Q' ∩ Q| is hypergeometric H(q; n, q), so the entire
// intersection-size distribution is exact. This bench prints it for the
// Table 2 configurations and shows E = l^2 and P(empty) collapsing as l
// grows while single-element overlap probability q/n stays small.
#include <cmath>
#include <iostream>

#include "bench_common.h"
#include "core/epsilon.h"
#include "math/hypergeometric.h"
#include "util/table.h"

int main() {
  using namespace pqs;

  util::banner(std::cout,
               "Ablation: intersection-size distribution of R(n, l sqrt(n)) "
               "(the birthday paradox of Section 3.4)");

  {
    util::TextTable t({"n", "q", "l", "per-element hit prob q/n",
                       "E|Q∩Q'| = l^2", "P(empty) exact", "P(empty) e^{-l^2}",
                       "mode"});
    for (auto n : bench::table_sizes()) {
      const auto q = core::min_q_intersecting(n, 1e-3).value();
      const auto overlap = math::make_hypergeometric(n, q, q);
      // Most probable intersection size.
      std::int64_t mode = overlap.support_min();
      for (auto i = overlap.support_min(); i <= overlap.support_max(); ++i) {
        if (overlap.pmf(i) > overlap.pmf(mode)) mode = i;
      }
      const double l = double(q) / std::sqrt(double(n));
      t.row()
          .cell(static_cast<std::size_t>(n))
          .cell(static_cast<long long>(q))
          .cell(l, 2)
          .cell(double(q) / double(n), 3)
          .cell(overlap.mean(), 2)
          .cell_sci(overlap.pmf(0), 2)
          .cell_sci(std::exp(-l * l), 2)
          .cell(static_cast<long long>(mode));
    }
    t.print(std::cout);
  }

  std::cout << "\nFull pmf at n = 100, q = 23 (l = 2.30):\n\n";
  {
    const auto overlap = math::make_hypergeometric(100, 23, 23);
    util::TextTable t({"|Q∩Q'|", "probability", "cumulative"});
    double cum = 0.0;
    for (std::int64_t i = 0; i <= 12; ++i) {
      cum += overlap.pmf(i);
      t.row()
          .cell(static_cast<long long>(i))
          .cell_sci(overlap.pmf(i), 3)
          .cell(cum, 4);
    }
    t.print(std::cout);
  }

  std::cout
      << "\nReading: each element of Q lands in Q' with probability only\n"
         "q/n ~ l/sqrt(n), yet the chance that *no* element does decays as\n"
         "e^{-l^2}: the paper's birthday-paradox argument. The distribution\n"
         "concentrates around l^2 ~ 5 shared servers for the Table 2\n"
         "configurations.\n";
  return 0;
}

// Table 1: Bounds on the load and resilience of different quorum system
// types — printed next to what the constructions in this library actually
// achieve, including the probabilistic constructions that beat the strict
// bounds (the paper's headline results).
#include <cstdio>
#include <iostream>

#include "bench_common.h"
#include "core/epsilon.h"
#include "core/lower_bounds.h"
#include "core/random_subset_system.h"
#include "quorum/grid.h"
#include "quorum/threshold.h"
#include "util/table.h"

int main() {
  using namespace pqs;

  util::banner(std::cout,
               "Table 1: Bounds on the load and resilience of quorum system "
               "types");

  {
    util::TextTable t({"bound", "strict", "b-dissemination", "b-masking"});
    t.row()
        .cell("load lower bound")
        .cell("sqrt(1/n)")
        .cell("sqrt((b+1)/n)")
        .cell("sqrt((2b+1)/n)");
    t.row()
        .cell("max resilience b")
        .cell("n/a")
        .cell("floor((n-1)/3)")
        .cell("floor((n-1)/4)");
    t.print(std::cout);
  }

  std::cout << "\nEvaluated bounds and achieved values (b = (sqrt(n)-1)/2, "
               "probabilistic systems at eps <= 1e-3):\n\n";

  util::TextTable t({"n", "b", "LB strict", "L(majority)", "L(grid)",
                     "LB dissem", "L(thr-dissem)", "L(R dissem)", "LB mask",
                     "L(thr-mask)", "L(R mask)"});
  for (auto n : bench::table_sizes()) {
    const auto b = bench::table_b(n);
    const auto majority = quorum::ThresholdSystem::majority(n);
    const auto grid = quorum::GridSystem::square(n);
    const auto td = quorum::ThresholdSystem::dissemination(n, b);
    const auto tm = quorum::ThresholdSystem::masking(n, b);
    const auto rd = core::RandomSubsetSystem::dissemination(n, b, 1e-3);
    const auto rm = core::RandomSubsetSystem::masking(n, b, 1e-3);
    t.row()
        .cell(static_cast<std::size_t>(n))
        .cell(static_cast<std::size_t>(b))
        .cell(core::strict_load_lower_bound(n), 3)
        .cell(majority.load(), 3)
        .cell(grid.load(), 3)
        .cell(core::strict_dissemination_load_lower_bound(n, b), 3)
        .cell(td.load(), 3)
        .cell(rd.load(), 3)
        .cell(core::strict_masking_load_lower_bound(n, b), 3)
        .cell(tm.load(), 3)
        .cell(rm.load(), 3);
  }
  t.print(std::cout);

  std::cout
      << "\nReading: every strict construction respects its column's lower\n"
         "bound; the probabilistic dissemination construction reaches the\n"
         "benign-case load O(1/sqrt(n)), *below* the strict dissemination\n"
         "bound, and the probabilistic masking construction undercuts the\n"
         "strict masking bound once b = omega(sqrt(n)) (see the ablation\n"
         "benches for the large-b regime).\n";

  std::cout << "\nResilience caps (strict) vs probabilistic resilience:\n\n";
  util::TextTable r({"n", "max b strict dissem", "max b strict mask",
                     "R(n,q) dissem b = n/2 works?"});
  for (auto n : bench::table_sizes()) {
    const auto half = n / 2;
    // A dissemination system at b = n/2 — double the strict resilience cap
    // — needs only q <= n - b and a small exact epsilon; report the epsilon
    // a mid-sized quorum achieves.
    const auto q = half > 2 ? half / 2 + bench::isqrt(n) : half;
    const auto eps = core::dissemination_epsilon_exact(n, q, half);
    r.row()
        .cell(static_cast<std::size_t>(n))
        .cell(core::strict_dissemination_max_b(n))
        .cell(core::strict_masking_max_b(n))
        .cell("q=" + std::to_string(q) + ", eps=" + util::sci(eps, 2));
  }
  r.print(std::cout);
  return 0;
}

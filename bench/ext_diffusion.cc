// Extension: diffusion (Section 1.1).
//
// "Coupled with a diffusion mechanism, the probability of inconsistency
// using probabilistic quorum constructions can be driven further toward
// zero when updates are sufficiently dispersed in time."
//
// Sweep: number of anti-entropy rounds between each write and the next
// read, for a deliberately coarse system (small l, measurable epsilon), in
// benign and Byzantine (forging) environments, with and without MAC
// verification in the gossip path.
#include <iostream>
#include <memory>

#include "core/epsilon.h"
#include "core/random_subset_system.h"
#include "diffusion/gossip.h"
#include "math/stats.h"
#include "replica/instant_cluster.h"
#include "util/table.h"

namespace {

struct Result {
  double stale;
  double poisoned;
};

Result run(std::uint32_t n, std::uint32_t q, std::uint32_t rounds,
           std::uint32_t forgers, bool verify, std::uint64_t seed) {
  using namespace pqs;
  replica::InstantCluster::Config cfg;
  cfg.quorums = std::make_shared<core::RandomSubsetSystem>(n, q);
  cfg.mode = replica::ReadMode::kDissemination;
  cfg.seed = seed;
  replica::InstantCluster cluster(
      cfg, replica::FaultPlan::prefix(n, forgers, replica::FaultMode::kForge));
  diffusion::GossipEngine engine(
      {.fanout = 2, .verify = verify},
      verify ? std::optional<crypto::Verifier>(cluster.verifier())
             : std::nullopt);
  math::Proportion stale;
  math::Proportion poisoned;
  std::int64_t value = 0;
  constexpr int kPairs = 20000;
  for (int i = 0; i < kPairs; ++i) {
    const auto w = cluster.write(1, ++value);
    engine.run_rounds(cluster.servers(), rounds, cluster.rng());
    const auto r = cluster.read(1);
    stale.add(!(r.selection.has_value && r.selection.record.value == value));
    // Poisoning: any correct server holding a record fresher than the
    // writer ever produced (only possible via unverified gossip).
    bool bad = false;
    for (auto& s : cluster.servers()) {
      if (s->mode() != replica::FaultMode::kCorrect) continue;
      const auto* rec = s->find(1);
      if (rec != nullptr && rec->timestamp > w.timestamp) bad = true;
    }
    poisoned.add(bad);
  }
  return {stale.estimate(), poisoned.estimate()};
}

}  // namespace

int main() {
  using namespace pqs;

  const std::uint32_t n = 64, q = 10;
  util::banner(std::cout,
               "Extension: epidemic diffusion on R(n=64,q=10) — staleness vs "
               "gossip rounds (quorum-only eps = " +
                   util::sci(core::nonintersection_exact(n, q), 2) + ")");

  util::TextTable t({"gossip rounds", "benign stale", "byz stale (verify)",
                     "byz poisoned (verify)", "byz stale (no verify)",
                     "byz poisoned (no verify)"});
  for (std::uint32_t rounds : {0u, 1u, 2u, 3u, 4u, 6u}) {
    const auto benign = run(n, q, rounds, 0, false, 10 + rounds);
    const auto byz_v = run(n, q, rounds, 8, true, 20 + rounds);
    const auto byz_nv = run(n, q, rounds, 8, false, 30 + rounds);
    t.row()
        .cell(static_cast<std::size_t>(rounds))
        .cell_sci(benign.stale, 3)
        .cell_sci(byz_v.stale, 3)
        .cell_sci(byz_v.poisoned, 3)
        .cell_sci(byz_nv.stale, 3)
        .cell_sci(byz_nv.poisoned, 3);
  }
  t.print(std::cout);

  std::cout
      << "\nReading: every gossip round multiplies fresh coverage, driving\n"
         "staleness from the quorum-only eps toward zero (Section 1.1's\n"
         "claim). With forgers present, *verified* diffusion ([MMR99])\n"
         "keeps poisoning at zero while unverified diffusion lets forged\n"
         "records displace genuine state on correct servers.\n";
  return 0;
}

// Ablation: the masking read threshold k (Section 5.3 / 5.4).
//
// The paper picks k = q^2/2n, strictly between E[X] = qb/n (faulty overlap)
// and E[Y] = (q^2/n)(1 - b/n) (fresh-correct overlap), and remarks that a
// balanced k would be marginally better. This bench sweeps k for fixed
// (n, q, b) and prints both error components and the resulting epsilon —
// the valley around q^2/2n is the paper's design point.
#include <cmath>
#include <iostream>

#include "core/epsilon.h"
#include "math/hypergeometric.h"
#include "util/table.h"

int main() {
  using namespace pqs;

  util::banner(std::cout,
               "Ablation: masking read-threshold k (n=400, q=94, b=9 — the "
               "paper's Table 4 row)");

  const std::int64_t n = 400, q = 94, b = 9;
  const auto X = math::make_hypergeometric(n, b, q);
  std::cout << "E[X] = " << util::fixed(core::expected_faulty_overlap(n, q, b), 2)
            << ", E[Y] = "
            << util::fixed(core::expected_correct_overlap(n, q, b), 2)
            << ", paper k = ceil(q^2/2n) = " << core::masking_threshold(n, q)
            << "\n\n";

  util::TextTable t({"k", "P(X >= k)  [forged accepted]",
                     "P(fail fresh) [exact joint]", "eps exact", "note"});
  std::int64_t best_k = 1;
  double best_eps = 1.0;
  for (std::int64_t k = 1; k <= 26; ++k) {
    const double px = X.upper_tail(k);
    const double eps = core::masking_epsilon_exact(n, q, b, k);
    // The fresh-miss component is eps minus the (disjointified) forged
    // part; report eps - px as an approximation of P(Y < k).
    const double fresh_miss = std::max(0.0, eps - px);
    if (eps < best_eps) {
      best_eps = eps;
      best_k = k;
    }
    std::string note;
    if (k == core::masking_threshold(n, q)) note = "<- paper's k";
    t.row()
        .cell(static_cast<long long>(k))
        .cell_sci(px, 2)
        .cell_sci(fresh_miss, 2)
        .cell_sci(eps, 2)
        .cell(note);
  }
  t.print(std::cout);
  std::cout << "\nbalanced optimum: k = " << best_k
            << " with eps = " << util::sci(best_eps, 2)
            << " (the paper's Section 5.4 remark: balancing the two tails\n"
               "yields marginally better constants than k = q^2/2n).\n";
  return 0;
}

#!/usr/bin/env python3
"""CI perf gate for the Byzantine-tolerant serving tier.

Reads a byzantine_throughput --json report and compares every read-rule
section against the committed baseline (bench/byzantine_baseline.json):
a section fails if its throughput drops below 80% of the baseline
ops/sec or its p99 latency rises above 2x the baseline p99. The baseline
values are deliberately conservative (several-fold below/above what the
bench measures on a quiet machine) so shared-runner noise cannot flap
the gate while genuine order-of-magnitude regressions still trip it.

Also fails if the report's own "ok" flag is false (the bench's
per-shard bit-identity gates across {1,8} workers and the
mask/allocating draw paths under live fault injection, plus the
Lemma 5.7 / Definition 5.1 Chernoff bounds on measured fabrication and
failure rates), if a baselined section is missing, or if the byzantine
sweep produced no points or any point whose measured rate exceeds its
bound (fabrication at b < k must be exactly zero — the structural-zero
case of the hypergeometric tail).

Usage: check_byzantine_regression.py BENCH_byzantine.json byzantine_baseline.json
"""
import json
import sys


def main() -> int:
    if len(sys.argv) != 3:
        print(__doc__)
        return 2
    with open(sys.argv[1]) as f:
        report = json.load(f)
    with open(sys.argv[2]) as f:
        baseline = json.load(f)

    if report.get("ok") is not True:
        print("FAIL: the bench reported ok=false (adversarial aggregate "
              "bit-identity gates tripped, fault flips were lost, or a "
              "fabrication/failure rate exceeded its masking-epsilon "
              "bound)")
        return 1
    sweep = report.get("byzantine_sweep") or []
    if not sweep:
        print("FAIL: the report has no byzantine sweep points")
        return 1
    for p in sweep:
        if p["fabrication_epsilon"] == 0:
            if p["fabricated"] != 0:
                print(f"FAIL: b={p['b']} fabricated {p['fabricated']} "
                      "reads where the closed form is a structural zero")
                return 1
        elif p["fabricated_rate"] > p["fabrication_bound"]:
            print(f"FAIL: b={p['b']} fabricated-acceptance rate "
                  f"{p['fabricated_rate']:.6g} exceeds the Lemma 5.7 "
                  f"Chernoff bound {p['fabrication_bound']:.6g}")
            return 1
        if p["failure_bound"] > 0 and p["failure_rate"] > p["failure_bound"]:
            print(f"FAIL: b={p['b']} failed-read rate "
                  f"{p['failure_rate']:.6g} exceeds the Definition 5.1 "
                  f"Chernoff bound {p['failure_bound']:.6g}")
            return 1

    sections = {s["name"]: s for s in report.get("sections", [])}
    failed = []
    for name, base in sorted(baseline["sections"].items()):
        got = sections.get(name)
        if got is None:
            print(f"{name}: MISSING from the report")
            failed.append(name)
            continue
        ops = got["ops_per_sec"]
        p99 = got["p99_ns"]
        ops_floor = 0.8 * base["ops_per_sec"]
        p99_ceiling = 2.0 * base["p99_ns"]
        ops_ok = ops >= ops_floor
        p99_ok = p99 <= p99_ceiling
        verdict = "ok" if (ops_ok and p99_ok) else "REGRESSED"
        print(f"{name}: {ops:.3g} ops/s (floor {ops_floor:.3g}), "
              f"p99 {p99 / 1e6:.2f}ms (ceiling {p99_ceiling / 1e6:.2f}ms) "
              f"[{verdict}]")
        if not ops_ok:
            failed.append(f"{name} throughput")
        if not p99_ok:
            failed.append(f"{name} p99")

    if failed:
        print(f"FAIL: {len(failed)} Byzantine serving-tier regressions: "
              + ", ".join(failed))
        return 1
    print(f"OK: {len(baseline['sections'])} sections within the "
          f"regression envelope; {len(sweep)} sweep points within their "
          "masking-epsilon bounds")
    return 0


if __name__ == "__main__":
    sys.exit(main())

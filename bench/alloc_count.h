// Global allocation counting for the bench binaries.
//
// Including this header replaces the global operator new/delete with
// counting versions backed by one relaxed atomic, so benches can report
// *measured* allocations per operation instead of asserting them. Include
// from exactly one TU per binary (it defines the replacement operators).
#pragma once

#include <atomic>
#include <cstdlib>
#include <new>

namespace pqs::bench {

inline std::atomic<std::uint64_t> g_allocations{0};

inline std::uint64_t allocations() {
  return g_allocations.load(std::memory_order_relaxed);
}

}  // namespace pqs::bench

void* operator new(std::size_t size) {
  pqs::bench::g_allocations.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size ? size : 1)) return p;
  throw std::bad_alloc();
}
void* operator new[](std::size_t size) { return ::operator new(size); }
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

// Workload-aware strategies: optimizer quality, serving-tier throughput,
// and measured-vs-predicted epsilon (ROADMAP item 3 end to end).
//
// Three experiments share the binary:
//
//   * an optimizer-quality sweep over workload mixes — for each mix (read
//     fraction, per-server capacity profile) quorum::optimize_strategy
//     reweights candidate quorums of R(36, 12) and its closed-form max
//     capacity-weighted load is compared against the best symmetric fixed
//     construction (which loads every server q/n, so its weighted max is
//     (q/n) / min capacity). The skewed mixes are a hard gate: the bench
//     exits nonzero unless the optimized strategy is *strictly* below the
//     fixed construction on every skewed mix.
//
//   * a serving-tier throughput comparison over serve::KvService — the
//     fixed construction vs the optimized strategy on the same open-loop
//     stream, reporting ops/sec and p50/p99 latency. Every section is
//     also a functional gate: per-shard aggregates (strategy draw counts
//     and checksums included) re-run with {1, 8} workers and the
//     allocating draw path and must agree shard by shard.
//
//   * a measured-vs-predicted epsilon check over replica::InstantCluster —
//     sharded write/read pairs through the optimized strategy measure the
//     deployed stale-read rate, gated by the strategy's predicted epsilon
//     plus a multiplicative Chernoff margin sized for failure probability
//     <= 1e-9 under the null (the conformance test's bound at bench
//     scale). A fixed-schedule replay across {1, 8} threads and both draw
//     paths gates bit-identity of the measurement itself.
//
// Flags: --threads=N (shard-serving workers, 0 = hardware), --samples=N
// (requests per section and pairs per epsilon shard; default 30000),
// --json=PATH (machine-readable report — CI archives it as
// BENCH_strategy.json and gates it with bench/check_strategy_regression.py).
#include <algorithm>
#include <chrono>
#include <cinttypes>
#include <cmath>
#include <cstdio>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.h"
#include "core/epsilon.h"
#include "core/random_subset_system.h"
#include "math/chernoff.h"
#include "quorum/strategy.h"
#include "replica/instant_cluster.h"
#include "serve/kv_service.h"
#include "simd/kernels.h"
#include "stats/latency_histogram.h"
#include "util/worker_pool.h"
#include "workload/open_loop.h"

namespace pqs {
namespace {

using replica::DrawPath;

constexpr std::uint32_t kUniverse = 36;  // R(36, 12)
constexpr std::uint32_t kQuorum = 12;
constexpr std::uint64_t kKeys = 4096;
constexpr std::uint32_t kShards = 4;

// ---- optimizer-quality sweep ----------------------------------------------

struct MixSpec {
  std::string name;
  double read_fraction = 0.5;
  // (count, capacity) prefix overrides; remaining servers stay at 1.0.
  std::uint32_t slow_servers = 0;
  double slow_capacity = 1.0;
  bool gate_strict_win = false;  // skewed mixes must beat the fixed max
};

std::vector<MixSpec> make_mixes() {
  return {
      {"uniform", 0.5, 0, 1.0, false},
      {"skew_third_half", 0.75, kUniverse / 3, 0.5, true},
      {"skew_heavy_reads", 0.9, kUniverse / 6, 0.4, true},
  };
}

struct MixOutcome {
  MixSpec mix;
  double fixed_max_load = 0.0;
  double optimized_max_load = 0.0;
  double predicted_epsilon = 0.0;
  double epsilon_ceiling = 0.0;
  std::shared_ptr<const quorum::Strategy> strategy;
};

MixOutcome optimize_mix(const std::shared_ptr<const quorum::QuorumSystem>& sys,
                        const MixSpec& mix) {
  MixOutcome out;
  out.mix = mix;
  quorum::WorkloadSpec workload;
  workload.read_fraction = mix.read_fraction;
  workload.capacities.assign(kUniverse, 1.0);
  for (std::uint32_t u = 0; u < mix.slow_servers; ++u) {
    workload.capacities[u] = mix.slow_capacity;
  }
  quorum::StrategyOptions options;
  // Epsilon ceiling from the existing exact closed form: the optimized
  // strategy may not be less consistent than the fixed construction's
  // pairwise nonintersection probability.
  out.epsilon_ceiling = core::nonintersection_exact(kUniverse, kQuorum);
  options.epsilon_ceiling = out.epsilon_ceiling;
  out.strategy = quorum::optimize_strategy(sys, workload, options);
  out.optimized_max_load = out.strategy->max_load();
  out.predicted_epsilon = out.strategy->predicted_epsilon(0.0);
  // Any symmetric fixed construction of quorum size q loads every server
  // q/n, so its capacity-weighted max load is (q/n) / min capacity.
  const double min_cap = mix.slow_servers > 0 ? mix.slow_capacity : 1.0;
  out.fixed_max_load =
      (static_cast<double>(kQuorum) / kUniverse) / min_cap;
  return out;
}

// ---- serving-tier throughput ----------------------------------------------

struct RunOutcome {
  std::vector<serve::ShardAggregate> aggregates;  // the bit-identity payload
  serve::ShardAggregate fold;
  stats::LatencyHistogram histogram;
  double seconds = 0.0;
  bool drained_all = false;
};

// One complete run: `ops` open-loop requests from a single producer (the
// determinism precondition) against either the fixed construction
// (strategy == nullptr) or the optimized strategy.
RunOutcome drive(const std::shared_ptr<const quorum::QuorumSystem>& sys,
                 const std::shared_ptr<const quorum::Strategy>& strategy,
                 std::uint32_t workers, DrawPath path, std::uint64_t ops,
                 std::uint64_t seed) {
  serve::KvService::Config cfg;
  cfg.shards = kShards;
  cfg.workers = workers;
  if (strategy != nullptr) {
    cfg.strategy = strategy;
  } else {
    cfg.quorums = sys;
  }
  cfg.draw_path = path;
  cfg.seed = seed;
  serve::KvService service(cfg);

  workload::OpenLoopSpec spec;
  spec.keys = kKeys;
  spec.zipf_exponent = 0.99;
  spec.read_fraction = 0.75;
  workload::OpenLoopGenerator gen(spec, seed ^ 0xa02bdbf7bb3c0a7ULL);

  workload::Operation op;
  serve::Request req;
  const auto t0 = std::chrono::steady_clock::now();
  service.start();
  for (std::uint64_t i = 0; i < ops; ++i) {
    gen.next(op);
    req.key = op.key;
    req.value = op.value;
    req.scheduled_ns = service.now_ns();
    req.is_read = op.is_read;
    service.submit(req);
  }
  service.stop_and_drain();
  const auto t1 = std::chrono::steady_clock::now();

  RunOutcome out;
  out.aggregates = service.aggregates();
  out.fold = service.fold_aggregates();
  out.histogram = service.merged_histogram();
  out.seconds = std::chrono::duration<double>(t1 - t0).count();
  const std::uint64_t expected_draws = strategy != nullptr ? ops : 0;
  out.drained_all = out.histogram.count() == ops &&
                    out.fold.reads + out.fold.writes == ops &&
                    out.fold.strategy_draws == expected_draws;
  return out;
}

// ---- measured-vs-predicted epsilon ----------------------------------------

struct StalenessRun {
  std::uint64_t pairs = 0;
  std::uint64_t stale = 0;
  std::uint64_t draw_checksum = 0;

  bool operator==(const StalenessRun& o) const {
    return pairs == o.pairs && stale == o.stale &&
           draw_checksum == o.draw_checksum;
  }
};

StalenessRun epsilon_shard(const std::shared_ptr<const quorum::Strategy>& s,
                           std::uint64_t pairs, std::uint64_t seed,
                           DrawPath path) {
  replica::InstantCluster::Config cfg;
  cfg.strategy = s;
  cfg.seed = seed;
  cfg.draw_path = path;
  replica::InstantCluster cluster(cfg);
  StalenessRun run;
  run.pairs = pairs;
  replica::WriteResult w;
  replica::ReadResult r;
  std::int64_t value = 0;
  for (std::uint64_t i = 0; i < pairs; ++i) {
    cluster.write_into(w, /*variable=*/1, ++value);
    cluster.read_into(r, 1);
    if (!r.selection.has_value || r.selection.record.value != value) {
      ++run.stale;
    }
  }
  run.draw_checksum = cluster.strategy_draw_stats().checksum;
  return run;
}

std::vector<StalenessRun> epsilon_shards(
    const std::shared_ptr<const quorum::Strategy>& s,
    std::uint64_t pairs_per_shard, std::uint32_t shards, unsigned threads,
    DrawPath path) {
  std::vector<StalenessRun> runs(shards);
  util::WorkerPool pool(threads);
  pool.run(shards, [&](std::uint64_t shard) {
    runs[shard] = epsilon_shard(s, pairs_per_shard,
                                /*seed=*/211 + 1000003 * shard, path);
  });
  return runs;
}

struct EpsilonPoint {
  std::uint64_t pairs = 0;
  std::uint64_t stale = 0;
  double measured = 0.0;
  double predicted = 0.0;  // the strategy's predicted_epsilon(0)
  double bound = 0.0;      // (1 + gamma) * dominating rate, Chernoff margin
};

// gamma sized so that P(Binomial(N, eps) > (1+gamma) N eps) <= 1e-9 by
// the multiplicative Chernoff bound (math/chernoff.h).
double margin_gamma(double mu) {
  return std::sqrt(4.0 * std::log(2e9) / mu);
}

EpsilonPoint epsilon_check(const std::shared_ptr<const quorum::Strategy>& s,
                           std::uint64_t pairs_per_shard, unsigned threads,
                           bool& ok) {
  constexpr std::uint32_t kEpsShards = 8;
  EpsilonPoint p;
  p.predicted = s->predicted_epsilon(0.0);
  StalenessRun total;
  for (const StalenessRun& r :
       epsilon_shards(s, pairs_per_shard, kEpsShards, threads,
                      DrawPath::kMask)) {
    total.pairs += r.pairs;
    total.stale += r.stale;
  }
  p.pairs = total.pairs;
  p.stale = total.stale;
  p.measured =
      static_cast<double>(total.stale) / static_cast<double>(total.pairs);
  // Stale reads are dominated by Binomial(N, predicted); when the
  // optimizer lands on an (almost) always-intersecting support the floor
  // keeps the margin meaningful — still a valid dominating rate.
  const double rate = std::max(
      p.predicted, 64.0 / static_cast<double>(total.pairs));
  const double mu = static_cast<double>(total.pairs) * rate;
  const double gamma = margin_gamma(mu);
  p.bound = (1.0 + gamma) * rate;
  if (math::chernoff_upper(mu, gamma) > 1e-9 || p.measured > p.bound) {
    std::printf("MISMATCH: measured stale rate %.6g exceeds the "
                "predicted-epsilon bound %.6g (predicted %.6g)\n",
                p.measured, p.bound, p.predicted);
    ok = false;
  }

  // The measurement is a replay: per-shard results (stale counts and the
  // strategy draw checksum) bit-identical across {1, 8} threads and both
  // draw paths.
  const std::uint64_t replay_pairs =
      std::min<std::uint64_t>(pairs_per_shard, 2000);
  const auto reference =
      epsilon_shards(s, replay_pairs, kEpsShards, 1, DrawPath::kMask);
  for (const unsigned threads_check : {1u, 8u}) {
    for (const DrawPath path : {DrawPath::kMask, DrawPath::kAllocating}) {
      const auto runs =
          epsilon_shards(s, replay_pairs, kEpsShards, threads_check, path);
      for (std::uint32_t shard = 0; shard < kEpsShards; ++shard) {
        if (!(runs[shard] == reference[shard])) {
          std::printf("MISMATCH: epsilon measurement diverged at threads=%u "
                      "path=%s shard=%u\n",
                      threads_check,
                      path == DrawPath::kMask ? "mask" : "alloc", shard);
          ok = false;
        }
      }
    }
  }
  return p;
}

// ---- reporting ------------------------------------------------------------

struct SectionReport {
  std::string name;
  std::uint32_t workers = 0;
  RunOutcome outcome;
};

void write_json(const char* path, const std::vector<MixOutcome>& mixes,
                const std::vector<SectionReport>& sections,
                const EpsilonPoint& eps, std::uint64_t ops, bool ok) {
  std::FILE* f = std::fopen(path, "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write JSON report to %s\n", path);
    return;
  }
  std::fprintf(f,
               "{\n  \"bench\": \"strategy_throughput\",\n"
               "  \"simd_kernel\": \"%s\",\n  \"universe\": %u,\n"
               "  \"quorum\": %u,\n"
               "  \"ops_per_section\": %" PRIu64 ",\n  \"ok\": %s,\n"
               "  \"mixes\": [\n",
               simd::active().name, kUniverse, kQuorum, ops,
               ok ? "true" : "false");
  for (std::size_t i = 0; i < mixes.size(); ++i) {
    const MixOutcome& m = mixes[i];
    std::fprintf(
        f,
        "    {\"name\": \"%s\", \"read_fraction\": %.6g, "
        "\"gated\": %s,\n"
        "     \"fixed_max_load\": %.6g, \"optimized_max_load\": %.6g,\n"
        "     \"predicted_epsilon\": %.6g, \"epsilon_ceiling\": %.6g}%s\n",
        m.mix.name.c_str(), m.mix.read_fraction,
        m.mix.gate_strict_win ? "true" : "false", m.fixed_max_load,
        m.optimized_max_load, m.predicted_epsilon, m.epsilon_ceiling,
        i + 1 < mixes.size() ? "," : "");
  }
  std::fprintf(f, "  ],\n  \"sections\": [\n");
  for (std::size_t i = 0; i < sections.size(); ++i) {
    const SectionReport& s = sections[i];
    const RunOutcome& r = s.outcome;
    std::fprintf(
        f,
        "    {\"name\": \"%s\", \"shards\": %u, \"workers\": %u,\n"
        "     \"ops_per_sec\": %.6g,\n"
        "     \"p50_ns\": %" PRIu64 ", \"p99_ns\": %" PRIu64
        ", \"p999_ns\": %" PRIu64 ", \"max_ns\": %" PRIu64 ",\n"
        "     \"reads\": %" PRIu64 ", \"writes\": %" PRIu64
        ", \"stale_reads\": %" PRIu64 ", \"strategy_draws\": %" PRIu64
        "}%s\n",
        s.name.c_str(), kShards, s.workers,
        static_cast<double>(ops) / r.seconds, r.histogram.p50(),
        r.histogram.p99(), r.histogram.p999(), r.histogram.max(),
        r.fold.reads, r.fold.writes, r.fold.stale_reads,
        r.fold.strategy_draws, i + 1 < sections.size() ? "," : "");
  }
  std::fprintf(
      f,
      "  ],\n  \"epsilon\": {\"pairs\": %" PRIu64 ", \"stale\": %" PRIu64
      ",\n"
      "    \"measured_stale_rate\": %.6g, \"predicted_epsilon\": %.6g, "
      "\"chernoff_bound\": %.6g}\n}\n",
      eps.pairs, eps.stale, eps.measured, eps.predicted, eps.bound);
  std::fclose(f);
}

int main_impl(int argc, char** argv) {
  const auto opts = bench::parse_options(argc, argv);
  const std::uint64_t ops = opts.samples_or(30000);
  unsigned workers = opts.threads;
  if (workers == 0) workers = std::thread::hardware_concurrency();
  if (workers == 0) workers = 1;

  const auto sys =
      std::make_shared<core::RandomSubsetSystem>(kUniverse, kQuorum);

  std::printf(
      "strategy_throughput: %" PRIu64 " ops/section over %" PRIu64
      " keys, R(%u, %u) quorums, %u shards, workers=%u, simd=%s\n",
      ops, kKeys, kUniverse, kQuorum, kShards, workers, simd::active().name);

  bool ok = true;

  // Experiment 1: the optimizer against the fixed construction.
  std::vector<MixOutcome> mixes;
  for (const MixSpec& mix : make_mixes()) {
    MixOutcome out = optimize_mix(sys, mix);
    if (mix.gate_strict_win &&
        !(out.optimized_max_load < out.fixed_max_load)) {
      std::printf("MISMATCH: mix %s optimized max load %.6g is not below "
                  "the fixed construction's %.6g\n",
                  mix.name.c_str(), out.optimized_max_load,
                  out.fixed_max_load);
      ok = false;
    }
    if (out.predicted_epsilon > out.epsilon_ceiling + 1e-9) {
      std::printf("MISMATCH: mix %s predicted epsilon %.6g exceeds the "
                  "ceiling %.6g\n",
                  mix.name.c_str(), out.predicted_epsilon,
                  out.epsilon_ceiling);
      ok = false;
    }
    std::printf(
        "[mix] name=%-16s fr=%.2f fixed_max=%.4f optimized_max=%.4f "
        "eps=%.3e ceiling=%.3e\n",
        mix.name.c_str(), mix.read_fraction, out.fixed_max_load,
        out.optimized_max_load, out.predicted_epsilon, out.epsilon_ceiling);
    mixes.push_back(std::move(out));
  }
  // The serving and epsilon experiments deploy the first gated mix.
  std::shared_ptr<const quorum::Strategy> deployed;
  for (const MixOutcome& m : mixes) {
    if (m.mix.gate_strict_win) {
      deployed = m.strategy;
      break;
    }
  }

  // Experiment 2: serving-tier throughput, fixed vs optimized, with the
  // four-run bit-identity gate per section.
  std::vector<SectionReport> sections;
  const std::vector<std::pair<std::string,
                              std::shared_ptr<const quorum::Strategy>>>
      section_specs = {{"fixed", nullptr}, {"optimized", deployed}};
  for (std::size_t i = 0; i < section_specs.size(); ++i) {
    const auto& [name, strategy] = section_specs[i];
    const std::uint64_t seed = 0x57aULL + 131 * i;
    const RunOutcome timed =
        drive(sys, strategy, workers, DrawPath::kMask, ops, seed);
    const RunOutcome w1 = drive(sys, strategy, 1, DrawPath::kMask, ops, seed);
    const RunOutcome w8 = drive(sys, strategy, 8, DrawPath::kMask, ops, seed);
    const RunOutcome alloc =
        drive(sys, strategy, workers, DrawPath::kAllocating, ops, seed);
    if (!(timed.aggregates == w1.aggregates) ||
        !(timed.aggregates == w8.aggregates)) {
      std::printf("MISMATCH: %s shard aggregates differ across worker "
                  "counts\n",
                  name.c_str());
      ok = false;
    }
    if (!(timed.aggregates == alloc.aggregates)) {
      std::printf("MISMATCH: %s shard aggregates differ across draw paths\n",
                  name.c_str());
      ok = false;
    }
    if (!timed.drained_all || !w1.drained_all || !w8.drained_all ||
        !alloc.drained_all) {
      std::printf("MISMATCH: %s lost requests or strategy draws in the "
                  "drain\n",
                  name.c_str());
      ok = false;
    }
    std::printf(
        "[serve] section=%-10s workers=%u ops/sec=%.3g p50=%.1fus "
        "p99=%.1fus draws=%" PRIu64 " stale=%" PRIu64 "\n",
        name.c_str(), workers, static_cast<double>(ops) / timed.seconds,
        static_cast<double>(timed.histogram.p50()) / 1000.0,
        static_cast<double>(timed.histogram.p99()) / 1000.0,
        timed.fold.strategy_draws, timed.fold.stale_reads);
    sections.push_back({name, workers, timed});
  }

  // Experiment 3: measured vs predicted epsilon for the deployed strategy.
  const EpsilonPoint eps = epsilon_check(deployed, ops, workers, ok);
  std::printf(
      "[epsilon] pairs=%" PRIu64 " measured=%.6f predicted=%.6f bound=%.6f\n",
      eps.pairs, eps.measured, eps.predicted, eps.bound);

  if (!opts.json.empty()) {
    write_json(opts.json.c_str(), mixes, sections, eps, ops, ok);
  }

  std::printf(ok ? "OK: optimized strategy beats the fixed construction on "
                   "every skewed mix; aggregates bit-identical; stale rate "
                   "within the predicted-epsilon bound\n"
                 : "FAILED: see mismatches above\n");
  return ok ? 0 : 1;
}

}  // namespace
}  // namespace pqs

int main(int argc, char** argv) { return pqs::main_impl(argc, argv); }

// End-to-end serving-tier throughput and tail latency over real sockets.
//
// Starts net::KvServer on an ephemeral loopback port in front of a
// serve::KvService deployment and drives it with workload-generated
// GET/PUT frames through net::Client (pipelined, multi-connection),
// reporting client-observed ops/sec and p50/p99/p999/max round-trip
// latency per section:
//
//   * a connection sweep {1, 2, 4} under Zipfian(0.99) plus a uniform
//     single-connection point, unpaced (latency = RTT + queue time);
//   * the tentpole determinism gate: the same single-connection request
//     stream re-driven across {1, 8} service workers and the
//     mask/allocating draw paths, exiting nonzero unless every per-shard
//     aggregate (reads, writes, stale/empty reads, access checksum) is
//     bit-identical — the in-process contract must survive the socket
//     path byte for byte;
//   * an offered-load sweep over ONE live deployment, paced by the
//     open-loop schedule (latency measured from each op's *scheduled*
//     send time — coordinated-omission-safe), where each point's
//     server-side percentiles come from stats::histogram_delta of the
//     service's cumulative histograms: no reset_latency between points.
//
// Flags: --threads=N (shard-serving workers for the timed sections, 0 =
// hardware), --samples=N (ops per section; default 50000), --json=PATH
// (machine-readable report — CI archives it as BENCH_net.json and gates
// it with bench/check_net_regression.py).
#include <chrono>
#include <cinttypes>
#include <cstdio>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.h"
#include "net/client.h"
#include "net/kv_server.h"
#include "quorum/threshold.h"
#include "serve/kv_service.h"
#include "simd/kernels.h"
#include "stats/latency_histogram.h"
#include "workload/open_loop.h"

namespace pqs {
namespace {

using replica::DrawPath;

constexpr std::uint32_t kUniverse = 25;  // majority quorums contact 13
constexpr std::uint64_t kKeys = 4096;
constexpr std::uint32_t kShards = 4;

struct SectionSpec {
  std::string name;
  std::uint32_t connections;
  std::uint32_t io_threads;
  workload::OpenLoopSpec spec;
};

std::vector<SectionSpec> make_sections() {
  std::vector<SectionSpec> sections;
  {
    workload::OpenLoopSpec uniform;
    uniform.keys = kKeys;
    uniform.read_fraction = 0.5;
    sections.push_back({"conns1_uniform", 1, 1, uniform});
  }
  for (const std::uint32_t conns : {1u, 2u, 4u}) {
    workload::OpenLoopSpec zipf;
    zipf.keys = kKeys;
    zipf.zipf_exponent = 0.99;
    zipf.read_fraction = 0.5;
    sections.push_back({"conns" + std::to_string(conns) + "_zipfian", conns,
                        conns > 1 ? 2u : 1u, zipf});
  }
  return sections;
}

struct RunOutcome {
  std::vector<serve::ShardAggregate> aggregates;  // the bit-identity payload
  serve::ShardAggregate fold;
  stats::LatencyHistogram histogram;  // client-side RTT
  double seconds = 0.0;
  std::uint64_t reads_found = 0;
  std::uint64_t reads_empty = 0;
  bool drained_all = false;
};

// One complete deployment + drive + teardown over loopback.
RunOutcome drive(const std::shared_ptr<const quorum::QuorumSystem>& sys,
                 std::uint32_t workers, DrawPath path,
                 std::uint32_t connections, std::uint32_t io_threads,
                 const workload::OpenLoopSpec& spec, std::uint64_t ops,
                 std::uint64_t seed) {
  serve::KvService::Config cfg;
  cfg.shards = kShards;
  cfg.workers = workers;
  cfg.quorums = sys;
  cfg.draw_path = path;
  cfg.seed = seed;
  serve::KvService service(cfg);

  net::KvServer::Config server_cfg;
  server_cfg.io_threads = io_threads;
  net::KvServer server(server_cfg, service);
  server.start();
  service.start();

  net::Client::Config client_cfg;
  client_cfg.port = server.port();
  client_cfg.connections = connections;
  net::Client client(client_cfg);
  client.start();

  workload::OpenLoopGenerator gen(spec, seed ^ 0xa02bdbf7bb3c0a7ULL);
  workload::Operation op;
  const bool paced = spec.arrival_rate > 0.0;
  const auto t0 = std::chrono::steady_clock::now();
  for (std::uint64_t i = 0; i < ops; ++i) {
    gen.next(op);
    std::uint64_t scheduled;
    if (paced) {
      // Open loop: hold the fixed schedule; the deadline, not the send
      // instant, is the latency origin. A backed-up server charges its
      // stall to every op that was due meanwhile. Ops already in the
      // coalescing buffer go out before we idle.
      if (client.now_ns() < op.scheduled_ns) {
        client.flush();
        while (client.now_ns() < op.scheduled_ns) std::this_thread::yield();
      }
      scheduled = op.scheduled_ns;
    } else {
      scheduled = client.now_ns();
    }
    client.send(op.key, op.value, op.is_read, scheduled);
  }
  client.drain();
  const auto t1 = std::chrono::steady_clock::now();

  RunOutcome out;
  out.histogram = client.histogram();
  out.reads_found = client.reads_found();
  out.reads_empty = client.reads_empty();
  out.drained_all = client.received() == ops && out.histogram.count() == ops;
  client.stop();
  service.stop_and_drain();
  server.stop();

  out.aggregates = service.aggregates();
  out.fold = service.fold_aggregates();
  out.seconds = std::chrono::duration<double>(t1 - t0).count();
  out.drained_all =
      out.drained_all && out.fold.reads + out.fold.writes == ops;
  return out;
}

// ---- offered-load sweep ---------------------------------------------------

struct RatePoint {
  double offered_rate = 0.0;
  double achieved_ops_per_sec = 0.0;
  // Client-observed RTT from the scheduled send time.
  std::uint64_t p50_ns = 0, p99_ns = 0, p999_ns = 0;
  // Server-side queue+service time for THIS point only: the
  // histogram_delta of the service's cumulative shard histograms — the
  // deployment is never reset between points.
  std::uint64_t server_p50_ns = 0, server_p99_ns = 0;
};

// Sweeps offered load over ONE deployment: the server stays up, the
// service's cluster state, counters, and latency histograms persist, and
// each point reports its own server-side percentiles as a histogram
// delta (the satellite contract: no reset_latency between points).
std::vector<RatePoint> rate_sweep(
    const std::shared_ptr<const quorum::QuorumSystem>& sys,
    std::uint32_t workers, std::uint64_t ops) {
  serve::KvService::Config cfg;
  cfg.shards = kShards;
  cfg.workers = workers;
  cfg.quorums = sys;
  cfg.seed = 0x5eedULL;
  serve::KvService service(cfg);
  net::KvServer server(net::KvServer::Config{}, service);
  server.start();

  workload::OpenLoopSpec spec;
  spec.keys = kKeys;
  spec.zipf_exponent = 0.99;
  spec.read_fraction = 0.5;

  std::vector<RatePoint> points;
  stats::LatencyHistogram cumulative;  // the service's histogram so far
  std::uint64_t point_index = 0;
  for (const double rate : {20000.0, 80000.0, 320000.0}) {
    spec.arrival_rate = rate;
    workload::OpenLoopGenerator gen(spec, 0x90b1ULL + point_index);
    service.start();
    net::Client::Config client_cfg;
    client_cfg.port = server.port();
    net::Client client(client_cfg);
    client.start();
    workload::Operation op;
    const auto t0 = std::chrono::steady_clock::now();
    for (std::uint64_t i = 0; i < ops; ++i) {
      gen.next(op);
      if (client.now_ns() < op.scheduled_ns) {
        client.flush();
        while (client.now_ns() < op.scheduled_ns) std::this_thread::yield();
      }
      client.send(op.key, op.value, op.is_read, op.scheduled_ns);
    }
    client.drain();
    const auto t1 = std::chrono::steady_clock::now();
    const stats::LatencyHistogram rtt = client.histogram();
    client.stop();
    service.stop_and_drain();

    const stats::LatencyHistogram now = service.merged_histogram();
    const stats::LatencyHistogram delta =
        stats::histogram_delta(cumulative, now);
    cumulative = now;

    RatePoint p;
    p.offered_rate = rate;
    p.achieved_ops_per_sec =
        static_cast<double>(ops) /
        std::chrono::duration<double>(t1 - t0).count();
    p.p50_ns = rtt.p50();
    p.p99_ns = rtt.p99();
    p.p999_ns = rtt.p999();
    p.server_p50_ns = delta.p50();
    p.server_p99_ns = delta.p99();
    points.push_back(p);
    ++point_index;
  }
  server.stop();
  return points;
}

// ---- reporting ------------------------------------------------------------

struct SectionReport {
  SectionSpec section;
  std::uint32_t workers = 0;
  RunOutcome timed;
};

void write_json(const char* path, const std::vector<SectionReport>& sections,
                const std::vector<RatePoint>& sweep, std::uint64_t ops,
                bool ok) {
  std::FILE* f = std::fopen(path, "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write JSON report to %s\n", path);
    return;
  }
  std::fprintf(f,
               "{\n  \"bench\": \"net_throughput\",\n"
               "  \"simd_kernel\": \"%s\",\n  \"universe\": %u,\n"
               "  \"shards\": %u,\n"
               "  \"ops_per_section\": %" PRIu64 ",\n  \"ok\": %s,\n"
               "  \"sections\": [\n",
               simd::active().name, kUniverse, kShards, ops,
               ok ? "true" : "false");
  for (std::size_t i = 0; i < sections.size(); ++i) {
    const SectionReport& s = sections[i];
    const RunOutcome& r = s.timed;
    std::fprintf(
        f,
        "    {\"name\": \"%s\", \"connections\": %u, \"io_threads\": %u, "
        "\"workers\": %u, \"zipf\": %.2f,\n"
        "     \"ops_per_sec\": %.6g,\n"
        "     \"p50_ns\": %" PRIu64 ", \"p99_ns\": %" PRIu64
        ", \"p999_ns\": %" PRIu64 ", \"max_ns\": %" PRIu64 ",\n"
        "     \"reads\": %" PRIu64 ", \"writes\": %" PRIu64
        ", \"stale_reads\": %" PRIu64 ", \"empty_reads\": %" PRIu64
        ", \"access_checksum\": %" PRIu64 "}%s\n",
        s.section.name.c_str(), s.section.connections, s.section.io_threads,
        s.workers, s.section.spec.zipf_exponent,
        static_cast<double>(ops) / r.seconds, r.histogram.p50(),
        r.histogram.p99(), r.histogram.p999(), r.histogram.max(),
        r.fold.reads, r.fold.writes, r.fold.stale_reads, r.fold.empty_reads,
        r.fold.access_checksum, i + 1 < sections.size() ? "," : "");
  }
  std::fprintf(f, "  ],\n  \"rate_sweep\": [\n");
  for (std::size_t i = 0; i < sweep.size(); ++i) {
    const RatePoint& p = sweep[i];
    std::fprintf(
        f,
        "    {\"offered_rate\": %.6g, \"achieved_ops_per_sec\": %.6g,\n"
        "     \"p50_ns\": %" PRIu64 ", \"p99_ns\": %" PRIu64
        ", \"p999_ns\": %" PRIu64 ",\n"
        "     \"server_p50_ns\": %" PRIu64 ", \"server_p99_ns\": %" PRIu64
        "}%s\n",
        p.offered_rate, p.achieved_ops_per_sec, p.p50_ns, p.p99_ns,
        p.p999_ns, p.server_p50_ns, p.server_p99_ns,
        i + 1 < sweep.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
}

int main_impl(int argc, char** argv) {
  const auto opts = bench::parse_options(argc, argv);
  const std::uint64_t ops = opts.samples_or(50000);
  unsigned workers = opts.threads;
  if (workers == 0) workers = std::thread::hardware_concurrency();
  if (workers == 0) workers = 1;
  if (workers > kShards) workers = kShards;

  const auto sys = std::make_shared<quorum::ThresholdSystem>(
      quorum::ThresholdSystem::majority(kUniverse));

  std::printf(
      "net_throughput: %" PRIu64 " ops/section over %" PRIu64
      " keys, majority(%u) quorums, %u shards, workers=%u, simd=%s, "
      "loopback TCP\n",
      ops, kKeys, kUniverse, kShards, workers, simd::active().name);

  bool ok = true;
  std::vector<SectionReport> reports;
  for (const SectionSpec& section : make_sections()) {
    const std::uint64_t seed =
        0x7cbULL + 131 * static_cast<std::uint64_t>(reports.size());
    const RunOutcome timed =
        drive(sys, workers, DrawPath::kMask, section.connections,
              section.io_threads, section.spec, ops, seed);
    if (!timed.drained_all) {
      std::printf("MISMATCH: %s lost requests over the socket path\n",
                  section.name.c_str());
      ok = false;
    }
    std::printf(
        "[net] section=%-15s conns=%u io_threads=%u workers=%u "
        "ops/sec=%.3g p50=%.1fus p99=%.1fus p999=%.1fus stale=%" PRIu64
        " found=%" PRIu64 "\n",
        section.name.c_str(), section.connections, section.io_threads,
        workers, static_cast<double>(ops) / timed.seconds,
        static_cast<double>(timed.histogram.p50()) / 1000.0,
        static_cast<double>(timed.histogram.p99()) / 1000.0,
        static_cast<double>(timed.histogram.p999()) / 1000.0,
        timed.fold.stale_reads, timed.reads_found);
    reports.push_back({section, workers, timed});
  }

  // The tentpole gate: one connection pins the per-shard request
  // subsequences to wire order, so the deterministic aggregates must
  // survive the socket path bit for bit across service worker counts and
  // draw paths — exactly the in-process serve_throughput contract.
  {
    workload::OpenLoopSpec spec;
    spec.keys = kKeys;
    spec.zipf_exponent = 0.99;
    spec.read_fraction = 0.5;
    const std::uint64_t gate_ops = std::min<std::uint64_t>(ops, 20000);
    const std::uint64_t seed = 0xd00dULL;
    struct GateRun {
      const char* name;
      std::uint32_t workers;
      DrawPath path;
    };
    const GateRun runs[] = {
        {"workers1_mask", 1, DrawPath::kMask},
        {"workers8_mask", 8, DrawPath::kMask},
        {"workers1_alloc", 1, DrawPath::kAllocating},
        {"workers8_alloc", 8, DrawPath::kAllocating},
    };
    std::vector<serve::ShardAggregate> base;
    for (const GateRun& g : runs) {
      const RunOutcome r =
          drive(sys, g.workers, g.path, 1, 1, spec, gate_ops, seed);
      std::printf("[net-gate] %s checksum=%" PRIu64 " drained=%s\n", g.name,
                  r.fold.access_checksum, r.drained_all ? "yes" : "NO");
      if (!r.drained_all) ok = false;
      if (base.empty()) {
        base = r.aggregates;
      } else if (!(base == r.aggregates)) {
        std::printf("MISMATCH: %s shard aggregates differ over the socket "
                    "path\n",
                    g.name);
        ok = false;
      }
    }
  }

  const std::vector<RatePoint> sweep = rate_sweep(sys, workers, ops);
  for (const RatePoint& p : sweep) {
    std::printf(
        "[sweep] offered=%.3g achieved=%.3g rtt_p50=%.1fus rtt_p99=%.1fus "
        "rtt_p999=%.1fus server_p50=%.1fus server_p99=%.1fus\n",
        p.offered_rate, p.achieved_ops_per_sec,
        static_cast<double>(p.p50_ns) / 1000.0,
        static_cast<double>(p.p99_ns) / 1000.0,
        static_cast<double>(p.p999_ns) / 1000.0,
        static_cast<double>(p.server_p50_ns) / 1000.0,
        static_cast<double>(p.server_p99_ns) / 1000.0);
  }

  if (!opts.json.empty()) {
    write_json(opts.json.c_str(), reports, sweep, ops, ok);
  }

  std::printf(ok ? "OK: shard aggregates bit-identical across the socket "
                   "path (workers {1,8} x {mask,alloc})\n"
                 : "FAILED: see mismatches above\n");
  return ok ? 0 : 1;
}

}  // namespace
}  // namespace pqs

int main(int argc, char** argv) { return pqs::main_impl(argc, argv); }

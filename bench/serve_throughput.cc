// End-to-end serving-tier throughput and tail latency.
//
// Drives serve::KvService — N InstantCluster shards behind the lock-free
// request router — with workload::OpenLoopGenerator and reports ops/sec
// plus p50/p99/p999/max latency per section:
//
//   * a shard-count sweep {1, 4, 8} under uniform and Zipfian(0.99) key
//     popularity, unpaced (latency = pure service + queue time);
//   * the YCSB core mixes A/B/C at 4 shards;
//   * an offered-load sweep at 4 shards on ONE reused deployment, paced by
//     the open-loop arrival schedule, where latency is measured from each
//     request's *scheduled* arrival (coordinated-omission-safe) and each
//     rate point's traffic is reported as a stats::snapshot_delta of the
//     cluster's cumulative protocol counters.
//
// Every unpaced section is also a functional gate: the per-shard aggregate
// counters (reads, writes, stale/empty reads, position-weighted access
// checksum) are a pure function of the request stream, so the bench re-runs
// each section with 1 and 8 shard-serving workers and with the allocating
// draw path, and exits nonzero unless all four runs agree shard by shard —
// and unless every submitted request was drained into the histogram.
//
// A global operator new/delete override (alloc_count.h) measures heap
// allocations across the timed window, so "allocs/op" is observed, not
// asserted: the submit path and worker hot loop are allocation-free, and
// what remains is amortized setup (per-key map nodes, worker batch
// buffers) that tends to zero with the op count.
//
// Flags: --threads=N (shard-serving workers for the timed runs, 0 =
// hardware), --samples=N (ops per section; default 50000), --json=PATH
// (machine-readable report — CI archives it as BENCH_serve.json and gates
// it with bench/check_serve_regression.py).
#include <chrono>
#include <cinttypes>
#include <cstdio>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "alloc_count.h"
#include "bench_common.h"
#include "quorum/threshold.h"
#include "serve/kv_service.h"
#include "simd/kernels.h"
#include "stats/counters.h"
#include "stats/latency_histogram.h"
#include "stats/load_profile.h"
#include "workload/open_loop.h"

namespace pqs {
namespace {

using replica::DrawPath;

constexpr std::uint32_t kUniverse = 25;  // majority quorums contact 13
constexpr std::uint64_t kKeys = 4096;

// One section of the report: a service shape plus a workload mix.
struct SectionSpec {
  std::string name;
  std::uint32_t shards;
  workload::OpenLoopSpec spec;
};

std::vector<SectionSpec> make_sections() {
  std::vector<SectionSpec> sections;
  for (const std::uint32_t shards : {1u, 4u, 8u}) {
    for (const double zipf : {0.0, 0.99}) {
      workload::OpenLoopSpec spec;
      spec.keys = kKeys;
      spec.zipf_exponent = zipf;
      spec.read_fraction = 0.5;
      sections.push_back({"shards" + std::to_string(shards) +
                              (zipf > 0 ? "_zipfian" : "_uniform"),
                          shards, spec});
    }
  }
  sections.push_back({"ycsb_a", 4, workload::OpenLoopSpec::ycsb_a(kKeys)});
  sections.push_back({"ycsb_b", 4, workload::OpenLoopSpec::ycsb_b(kKeys)});
  sections.push_back({"ycsb_c", 4, workload::OpenLoopSpec::ycsb_c(kKeys)});
  return sections;
}

struct RunOutcome {
  std::vector<serve::ShardAggregate> aggregates;  // the bit-identity payload
  serve::ShardAggregate fold;
  stats::LatencyHistogram histogram;
  stats::LoadProfile profile{std::vector<std::uint64_t>{}, 0};
  double seconds = 0.0;
  double allocs_per_op = 0.0;
  bool drained_all = false;
};

// One complete run: build a service, drive `ops` requests from a single
// producer (per-shard order is then the generator order, the determinism
// precondition), drain, and collect everything observable.
RunOutcome drive(const std::shared_ptr<const quorum::QuorumSystem>& sys,
                 std::uint32_t shards, std::uint32_t workers, DrawPath path,
                 const workload::OpenLoopSpec& spec, std::uint64_t ops,
                 std::uint64_t seed) {
  serve::KvService::Config cfg;
  cfg.shards = shards;
  cfg.workers = workers;
  cfg.quorums = sys;
  cfg.draw_path = path;
  cfg.seed = seed;
  serve::KvService service(cfg);
  workload::OpenLoopGenerator gen(spec, seed ^ 0xa02bdbf7bb3c0a7ULL);

  workload::Operation op;
  serve::Request req;
  const bool paced = spec.arrival_rate > 0.0;
  const std::uint64_t before = bench::allocations();
  const auto t0 = std::chrono::steady_clock::now();
  service.start();
  for (std::uint64_t i = 0; i < ops; ++i) {
    gen.next(op);
    if (paced) {
      // Open loop: hold to the fixed schedule; the deadline, not the
      // submit instant, is the latency origin.
      while (service.now_ns() < op.scheduled_ns) std::this_thread::yield();
      req.scheduled_ns = op.scheduled_ns;
    } else {
      req.scheduled_ns = service.now_ns();
    }
    req.key = op.key;
    req.value = op.value;
    req.is_read = op.is_read;
    service.submit(req);
  }
  service.stop_and_drain();
  const auto t1 = std::chrono::steady_clock::now();
  const std::uint64_t after = bench::allocations();

  RunOutcome out;
  out.aggregates = service.aggregates();
  out.fold = service.fold_aggregates();
  out.histogram = service.merged_histogram();
  out.profile = service.server_profile();
  out.seconds = std::chrono::duration<double>(t1 - t0).count();
  out.allocs_per_op =
      static_cast<double>(after - before) / static_cast<double>(ops);
  out.drained_all = out.histogram.count() == ops &&
                    out.fold.reads + out.fold.writes == ops;
  return out;
}

// ---- offered-load sweep ---------------------------------------------------

struct RatePoint {
  double offered_rate = 0.0;
  double achieved_ops_per_sec = 0.0;
  std::uint64_t p50_ns = 0, p99_ns = 0, p999_ns = 0, max_ns = 0;
  // This point's protocol traffic alone: the snapshot_delta of the reused
  // deployment's cumulative per-server counters.
  std::uint64_t delta_writes_accepted = 0;
  std::uint64_t delta_reads_served = 0;
  std::uint64_t delta_superseded = 0;
  double max_load = 0.0;
};

// Sweeps offered load over ONE deployment: the service (cluster state,
// protocol counters, latency histograms) persists across points; each
// point restarts the workers and reports its own traffic as a per-server
// snapshot delta and its own percentiles as a stats::histogram_delta of
// the cumulative shard histograms — nothing is reset between points.
std::vector<RatePoint> rate_sweep(
    const std::shared_ptr<const quorum::QuorumSystem>& sys,
    std::uint32_t workers, std::uint64_t ops) {
  serve::KvService::Config cfg;
  cfg.shards = 4;
  cfg.workers = workers;
  cfg.quorums = sys;
  cfg.seed = 0x5eedULL;
  serve::KvService service(cfg);

  workload::OpenLoopSpec spec;
  spec.keys = kKeys;
  spec.zipf_exponent = 0.99;
  spec.read_fraction = 0.5;

  std::vector<RatePoint> points;
  stats::ContentionSnapshot prev = service.contention_snapshot();
  stats::LatencyHistogram prev_hist;
  std::uint64_t point_index = 0;
  for (const double rate : {50000.0, 200000.0, 800000.0}) {
    spec.arrival_rate = rate;
    workload::OpenLoopGenerator gen(spec, 0x90b1ULL + point_index);
    service.start();
    workload::Operation op;
    serve::Request req;
    const auto t0 = std::chrono::steady_clock::now();
    for (std::uint64_t i = 0; i < ops; ++i) {
      gen.next(op);
      while (service.now_ns() < op.scheduled_ns) std::this_thread::yield();
      req.key = op.key;
      req.value = op.value;
      req.scheduled_ns = op.scheduled_ns;
      req.is_read = op.is_read;
      service.submit(req);
    }
    service.stop_and_drain();
    const auto t1 = std::chrono::steady_clock::now();

    const stats::ContentionSnapshot now = service.contention_snapshot();
    const stats::ContentionSnapshot delta = stats::snapshot_delta(prev, now);
    prev = now;

    // This point's own percentiles without a reset barrier: the
    // elementwise difference of the cumulative shard histograms.
    const stats::LatencyHistogram cumulative = service.merged_histogram();
    const stats::LatencyHistogram hist =
        stats::histogram_delta(prev_hist, cumulative);
    prev_hist = cumulative;
    RatePoint p;
    p.offered_rate = rate;
    p.achieved_ops_per_sec =
        static_cast<double>(ops) /
        std::chrono::duration<double>(t1 - t0).count();
    p.p50_ns = hist.p50();
    p.p99_ns = hist.p99();
    p.p999_ns = hist.p999();
    p.max_ns = hist.max();
    const stats::ServerCounters totals = delta.totals();
    p.delta_writes_accepted = totals.writes_accepted;
    p.delta_reads_served = totals.reads_served;
    p.delta_superseded = totals.writes_superseded;
    // Per-point load profile over this point's server-side contacts only.
    std::vector<std::uint64_t> hits(delta.universe_size(), 0);
    for (std::uint32_t u = 0; u < delta.universe_size(); ++u) {
      hits[u] = delta.server(u).writes_accepted + delta.server(u).reads_served;
    }
    p.max_load = stats::LoadProfile(std::move(hits), ops).max_load();
    points.push_back(p);
    ++point_index;
  }
  return points;
}

// ---- reporting ------------------------------------------------------------

struct SectionReport {
  SectionSpec section;
  std::uint32_t workers = 0;
  RunOutcome timed;
};

void write_json(const char* path, const std::vector<SectionReport>& sections,
                const std::vector<RatePoint>& sweep, std::uint64_t ops,
                bool ok) {
  std::FILE* f = std::fopen(path, "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write JSON report to %s\n", path);
    return;
  }
  std::fprintf(f,
               "{\n  \"bench\": \"serve_throughput\",\n"
               "  \"simd_kernel\": \"%s\",\n  \"universe\": %u,\n"
               "  \"ops_per_section\": %" PRIu64 ",\n  \"ok\": %s,\n"
               "  \"sections\": [\n",
               simd::active().name, kUniverse, ops, ok ? "true" : "false");
  for (std::size_t i = 0; i < sections.size(); ++i) {
    const SectionReport& s = sections[i];
    const RunOutcome& r = s.timed;
    std::fprintf(
        f,
        "    {\"name\": \"%s\", \"shards\": %u, \"workers\": %u, "
        "\"zipf\": %.2f, \"read_fraction\": %.2f,\n"
        "     \"ops_per_sec\": %.6g, \"allocs_per_op\": %.4f,\n"
        "     \"p50_ns\": %" PRIu64 ", \"p99_ns\": %" PRIu64
        ", \"p999_ns\": %" PRIu64 ", \"max_ns\": %" PRIu64 ",\n"
        "     \"reads\": %" PRIu64 ", \"writes\": %" PRIu64
        ", \"stale_reads\": %" PRIu64 ", \"empty_reads\": %" PRIu64
        ", \"access_checksum\": %" PRIu64 ",\n"
        "     \"max_load\": %.6f, \"imbalance\": %.4f}%s\n",
        s.section.name.c_str(), s.section.shards, s.workers,
        s.section.spec.zipf_exponent, s.section.spec.read_fraction,
        static_cast<double>(ops) / r.seconds, r.allocs_per_op,
        r.histogram.p50(), r.histogram.p99(), r.histogram.p999(),
        r.histogram.max(), r.fold.reads, r.fold.writes, r.fold.stale_reads,
        r.fold.empty_reads, r.fold.access_checksum, r.profile.max_load(),
        r.profile.imbalance(), i + 1 < sections.size() ? "," : "");
  }
  std::fprintf(f, "  ],\n  \"rate_sweep\": [\n");
  for (std::size_t i = 0; i < sweep.size(); ++i) {
    const RatePoint& p = sweep[i];
    std::fprintf(
        f,
        "    {\"offered_rate\": %.6g, \"achieved_ops_per_sec\": %.6g,\n"
        "     \"p50_ns\": %" PRIu64 ", \"p99_ns\": %" PRIu64
        ", \"p999_ns\": %" PRIu64 ", \"max_ns\": %" PRIu64 ",\n"
        "     \"delta_writes_accepted\": %" PRIu64
        ", \"delta_reads_served\": %" PRIu64 ", \"delta_superseded\": %" PRIu64
        ", \"max_load\": %.6f}%s\n",
        p.offered_rate, p.achieved_ops_per_sec, p.p50_ns, p.p99_ns, p.p999_ns,
        p.max_ns, p.delta_writes_accepted, p.delta_reads_served,
        p.delta_superseded, p.max_load, i + 1 < sweep.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
}

int main_impl(int argc, char** argv) {
  const auto opts = bench::parse_options(argc, argv);
  const std::uint64_t ops = opts.samples_or(50000);
  unsigned workers = opts.threads;
  if (workers == 0) workers = std::thread::hardware_concurrency();
  if (workers == 0) workers = 1;

  const auto sys = std::make_shared<quorum::ThresholdSystem>(
      quorum::ThresholdSystem::majority(kUniverse));

  std::printf(
      "serve_throughput: %" PRIu64
      " ops/section over %" PRIu64
      " keys, majority(%u) quorums, workers=%u, simd=%s\n",
      ops, kKeys, kUniverse, workers, simd::active().name);

  bool ok = true;
  std::vector<SectionReport> reports;
  for (const SectionSpec& section : make_sections()) {
    const std::uint64_t seed =
        0xbadc0ffeULL + 131 * static_cast<std::uint64_t>(reports.size());
    const RunOutcome timed =
        drive(sys, section.shards, workers, DrawPath::kMask, section.spec,
              ops, seed);
    // The gates: the per-shard aggregates are a pure function of the
    // request stream, so worker count and draw path must not change them.
    const RunOutcome w1 = drive(sys, section.shards, 1, DrawPath::kMask,
                                section.spec, ops, seed);
    const RunOutcome w8 = drive(sys, section.shards, 8, DrawPath::kMask,
                                section.spec, ops, seed);
    const RunOutcome alloc = drive(sys, section.shards, workers,
                                   DrawPath::kAllocating, section.spec, ops,
                                   seed);
    if (!(timed.aggregates == w1.aggregates) ||
        !(timed.aggregates == w8.aggregates)) {
      std::printf("MISMATCH: %s shard aggregates differ across worker "
                  "counts\n",
                  section.name.c_str());
      ok = false;
    }
    if (!(timed.aggregates == alloc.aggregates)) {
      std::printf("MISMATCH: %s shard aggregates differ across draw paths\n",
                  section.name.c_str());
      ok = false;
    }
    if (!timed.drained_all || !w1.drained_all || !w8.drained_all ||
        !alloc.drained_all) {
      std::printf("MISMATCH: %s lost requests (histogram/aggregate count != "
                  "submitted ops)\n",
                  section.name.c_str());
      ok = false;
    }
    std::printf(
        "[serve] section=%-15s shards=%u workers=%u ops/sec=%.3g "
        "p50=%.1fus p99=%.1fus p999=%.1fus allocs/op=%.3f stale=%" PRIu64
        " max_load=%.3f\n",
        section.name.c_str(), section.shards, workers,
        static_cast<double>(ops) / timed.seconds,
        static_cast<double>(timed.histogram.p50()) / 1000.0,
        static_cast<double>(timed.histogram.p99()) / 1000.0,
        static_cast<double>(timed.histogram.p999()) / 1000.0,
        timed.allocs_per_op, timed.fold.stale_reads,
        timed.profile.max_load());
    reports.push_back({section, workers, timed});
  }

  const std::vector<RatePoint> sweep = rate_sweep(sys, workers, ops);
  for (const RatePoint& p : sweep) {
    std::printf(
        "[sweep] offered=%.3g achieved=%.3g p50=%.1fus p99=%.1fus "
        "p999=%.1fus delta_reads=%" PRIu64 " delta_writes=%" PRIu64
        " max_load=%.3f\n",
        p.offered_rate, p.achieved_ops_per_sec,
        static_cast<double>(p.p50_ns) / 1000.0,
        static_cast<double>(p.p99_ns) / 1000.0,
        static_cast<double>(p.p999_ns) / 1000.0, p.delta_reads_served,
        p.delta_writes_accepted, p.max_load);
  }

  if (!opts.json.empty()) {
    write_json(opts.json.c_str(), reports, sweep, ops, ok);
  }

  std::printf(ok ? "OK: shard aggregates bit-identical across worker counts "
                   "and draw paths\n"
                 : "FAILED: see mismatches above\n");
  return ok ? 0 : 1;
}

}  // namespace
}  // namespace pqs

int main(int argc, char** argv) { return pqs::main_impl(argc, argv); }

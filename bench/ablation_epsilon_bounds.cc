// Ablation: how tight are the paper's closed-form epsilon bounds against
// the exact log-domain computations, across the construction parameter l?
//
// Covers Lemma 3.15 / Theorem 3.16 (e^{-l^2}), Lemma 4.3 (2e^{-l^2/6} at
// b = n/3), Lemma 4.5 (eps_alpha at b = alpha n) and Theorem 5.10 (the
// psi_1/psi_2 bound for masking).
#include <cmath>
#include <iostream>

#include "bench_common.h"
#include "core/epsilon.h"
#include "util/table.h"

int main() {
  using namespace pqs;

  util::banner(std::cout,
               "Ablation: exact epsilon vs the paper's closed-form bounds");

  for (std::int64_t n : {100, 400, 900}) {
    std::cout << "\n-- n = " << n
              << " : eps-intersecting (Thm 3.16) and (n/3, eps)-dissemination "
                 "(Lemma 4.3) --\n";
    util::TextTable t({"l", "q", "exact eps", "e^{-l^2}", "ratio",
                       "exact dissem eps (b=n/3)", "2e^{-l^2/6}", "ratio"});
    for (double l = 1.0; l <= 3.51; l += 0.25) {
      const auto q =
          static_cast<std::int64_t>(std::lround(l * std::sqrt(double(n))));
      if (q < 1 || q > n / 3 * 2) continue;
      const double exact = core::nonintersection_exact(n, q);
      const double bound = core::nonintersection_bound(n, q);
      const double dx = core::dissemination_epsilon_exact(n, q, n / 3);
      const double db = core::dissemination_bound_third(n, q);
      t.row()
          .cell(l, 2)
          .cell(static_cast<long long>(q))
          .cell_sci(exact, 2)
          .cell_sci(bound, 2)
          .cell(exact > 0 ? bound / exact : 0.0, 1)
          .cell_sci(dx, 2)
          .cell_sci(db, 2)
          .cell(dx > 0 ? db / dx : 0.0, 1);
    }
    t.print(std::cout);
  }

  std::cout << "\n-- Lemma 4.5: b = alpha n, n = 900 --\n";
  {
    util::TextTable t({"alpha", "q", "exact eps", "eps_alpha bound", "ratio"});
    const std::int64_t n = 900;
    for (double alpha : {0.4, 0.5, 0.6, 0.75}) {
      const auto b = static_cast<std::int64_t>(alpha * n);
      // Pick q near the largest allowed (best epsilon) and a mid value.
      for (std::int64_t q :
           {static_cast<std::int64_t>((n - b) / 2), n - b - 1}) {
        const double exact = core::dissemination_epsilon_exact(n, q, b);
        const double bound = core::dissemination_bound_alpha(n, q, alpha);
        t.row()
            .cell(alpha, 2)
            .cell(static_cast<long long>(q))
            .cell_sci(exact, 2)
            .cell_sci(bound, 2)
            .cell(exact > 0 ? bound / exact : 0.0, 1);
      }
    }
    t.print(std::cout);
  }

  std::cout << "\n-- Theorem 5.10: masking, b = sqrt(n) --\n";
  {
    util::TextTable t({"n", "l=q/b", "q", "k", "exact eps", "psi bound",
                       "ratio"});
    for (std::int64_t n : {100, 400, 900}) {
      const std::int64_t b = bench::isqrt(static_cast<std::uint32_t>(n));
      for (double l : {3.0, 4.0, 5.0, 6.0}) {
        const auto q = static_cast<std::int64_t>(std::lround(l * double(b)));
        if (q > n - b) continue;
        const auto k = core::masking_threshold(n, q);
        const double exact = core::masking_epsilon_exact(n, q, b, k);
        const double bound = core::masking_bound(n, q, b);
        t.row()
            .cell(static_cast<long long>(n))
            .cell(l, 1)
            .cell(static_cast<long long>(q))
            .cell(static_cast<long long>(k))
            .cell_sci(exact, 2)
            .cell_sci(bound, 2)
            .cell(exact > 1e-300 ? bound / exact : 0.0, 1);
      }
    }
    t.print(std::cout);
  }

  std::cout
      << "\nReading: the e^{-l^2} bound is within a small constant of exact\n"
         "for l <= 2.5; the Byzantine bounds (Lemmas 4.3/4.5, Thm 5.10) are\n"
         "orders of magnitude loose — which is why Section 6's tables must\n"
         "be generated from exact computations, as this library does.\n";
  return 0;
}

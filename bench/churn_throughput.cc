// Serving-tier throughput under membership churn, and the timed-quorum
// epsilon measured against its estimator.
//
// Two experiments share the binary:
//
//   * a churn-rate sweep over serve::KvService — 4 dynamic-membership
//     shards of R(64, 16) probabilistic quorums, a single producer
//     interleaving in-band kReplace events with the request stream at
//     {0, 10, 100} replacements per 1000 requests — reporting ops/sec and
//     p50/p99 tail latency so CI can see what reconfiguration costs the
//     hot path. Every section is also a functional gate: the per-shard
//     aggregates (churn_events and final membership epochs included) are
//     a pure function of the request stream, so the section re-runs with
//     {1, 8} shard-serving workers and the allocating draw path and the
//     bench exits nonzero unless all four runs agree shard by shard.
//
//   * an epsilon-vs-churn-rate sweep over replica::InstantCluster — for
//     each Poisson rate lambda, shards of write / churn(k ~ Poisson) /
//     read pairs measure the deployed stale-read rate, reported next to
//     core::estimate_timed_epsilon(n, q, lambda, 1) and the Gramoli-
//     Raynal lifetime at twice the churn-free epsilon. Stale reads are
//     contained in quorum misses (a surviving common server answers with
//     the latest record), so the measured count is gated by the predicted
//     mean plus a multiplicative Chernoff margin sized for failure
//     probability <= 1e-9 under the null — the conformance test's bound,
//     re-checked on every CI run at bench scale. A fixed-schedule replay
//     across {1, 8} threads and both draw paths gates bit-identity of the
//     measurement itself.
//
// Flags: --threads=N (shard-serving workers for the timed runs, 0 =
// hardware), --samples=N (requests per section and pairs per epsilon
// shard; default 30000), --json=PATH (machine-readable report — CI
// archives it as BENCH_churn.json and gates it with
// bench/check_churn_regression.py).
#include <chrono>
#include <cinttypes>
#include <cmath>
#include <cstdio>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.h"
#include "core/epsilon.h"
#include "core/random_subset_system.h"
#include "core/timed_epsilon.h"
#include "math/chernoff.h"
#include "replica/instant_cluster.h"
#include "serve/kv_service.h"
#include "simd/kernels.h"
#include "stats/latency_histogram.h"
#include "util/worker_pool.h"
#include "workload/open_loop.h"

namespace pqs {
namespace {

using replica::DrawPath;

constexpr std::uint32_t kUniverse = 64;  // R(64, 16) per shard
constexpr std::uint32_t kQuorum = 16;
constexpr std::uint64_t kKeys = 4096;
constexpr std::uint32_t kShards = 4;

// ---- churn-rate throughput sweep ------------------------------------------

struct SectionSpec {
  std::string name;
  std::uint32_t churn_per_1000 = 0;  // kReplace events per 1000 requests
};

std::vector<SectionSpec> make_sections() {
  return {{"churn0", 0}, {"churn10", 10}, {"churn100", 100}};
}

struct RunOutcome {
  std::vector<serve::ShardAggregate> aggregates;  // the bit-identity payload
  serve::ShardAggregate fold;
  stats::LatencyHistogram histogram;
  double seconds = 0.0;
  bool drained_all = false;
};

// One complete run: a dynamic-membership service driven by a single
// producer that injects an in-band kReplace on a rotating shard every
// `interval` requests (so each shard's subsequence of requests and churn
// events is fixed — the determinism precondition).
RunOutcome drive(const std::shared_ptr<const quorum::QuorumSystem>& sys,
                 std::uint32_t churn_per_1000, std::uint32_t workers,
                 DrawPath path, std::uint64_t ops, std::uint64_t seed) {
  serve::KvService::Config cfg;
  cfg.shards = kShards;
  cfg.workers = workers;
  cfg.quorums = sys;
  cfg.draw_path = path;
  cfg.seed = seed;
  cfg.dynamic_membership = true;
  serve::KvService service(cfg);

  workload::OpenLoopSpec spec;
  spec.keys = kKeys;
  spec.zipf_exponent = 0.99;
  spec.read_fraction = 0.5;
  workload::OpenLoopGenerator gen(spec, seed ^ 0xa02bdbf7bb3c0a7ULL);

  const std::uint64_t interval =
      churn_per_1000 == 0 ? 0 : 1000 / churn_per_1000;
  std::uint64_t churned = 0;
  workload::Operation op;
  serve::Request req;
  const auto t0 = std::chrono::steady_clock::now();
  service.start();
  for (std::uint64_t i = 0; i < ops; ++i) {
    gen.next(op);
    req.key = op.key;
    req.value = op.value;
    req.scheduled_ns = service.now_ns();
    req.is_read = op.is_read;
    service.submit(req);
    if (interval != 0 && i % interval == interval - 1) {
      service.submit_churn(
          static_cast<std::uint32_t>((i / interval) % kShards),
          serve::ChurnKind::kReplace);
      ++churned;
    }
  }
  service.stop_and_drain();
  const auto t1 = std::chrono::steady_clock::now();

  RunOutcome out;
  out.aggregates = service.aggregates();
  out.fold = service.fold_aggregates();
  out.histogram = service.merged_histogram();
  out.seconds = std::chrono::duration<double>(t1 - t0).count();
  out.drained_all = out.histogram.count() == ops &&
                    out.fold.reads + out.fold.writes == ops &&
                    out.fold.churn_events == churned;
  return out;
}

// ---- epsilon-vs-churn-rate sweep ------------------------------------------

struct StalenessRun {
  std::uint64_t pairs = 0;
  std::uint64_t stale = 0;

  bool operator==(const StalenessRun& o) const {
    return pairs == o.pairs && stale == o.stale;
  }
};

// One shard of the epsilon measurement, the conformance suite's protocol:
// write, k ~ Poisson(lambda) in-place replacements (exponential
// inter-arrivals on the dedicated churn stream; lambda = 0 means none),
// read — stale iff the read returns anything but the value just written.
StalenessRun epsilon_shard(double lambda, std::uint64_t pairs,
                           std::uint64_t seed, DrawPath path) {
  replica::InstantCluster::Config cfg;
  cfg.quorums = std::make_shared<core::RandomSubsetSystem>(kUniverse, kQuorum);
  cfg.seed = seed;
  cfg.churn_seed = seed ^ 0xc4a84e11ULL;
  cfg.draw_path = path;
  cfg.dynamic_membership = true;
  replica::InstantCluster cluster(cfg);
  StalenessRun run;
  run.pairs = pairs;
  replica::WriteResult w;
  replica::ReadResult r;
  std::int64_t value = 0;
  for (std::uint64_t i = 0; i < pairs; ++i) {
    cluster.write_into(w, /*variable=*/1, ++value);
    if (lambda > 0.0) {
      std::uint32_t k = 0;
      double t = cluster.churn_rng().exponential(1.0 / lambda);
      while (t < 1.0) {
        ++k;
        t += cluster.churn_rng().exponential(1.0 / lambda);
      }
      cluster.run_churn(k);
    }
    cluster.read_into(r, 1);
    if (!r.selection.has_value || r.selection.record.value != value) {
      ++run.stale;
    }
  }
  return run;
}

std::vector<StalenessRun> epsilon_shards(double lambda,
                                         std::uint64_t pairs_per_shard,
                                         std::uint32_t shards,
                                         unsigned threads, DrawPath path) {
  std::vector<StalenessRun> runs(shards);
  util::WorkerPool pool(threads);
  pool.run(shards, [&](std::uint64_t s) {
    runs[s] = epsilon_shard(lambda, pairs_per_shard,
                            /*seed=*/211 + 1000003 * s, path);
  });
  return runs;
}

struct EpsilonPoint {
  double lambda = 0.0;
  std::uint64_t pairs = 0;
  std::uint64_t stale = 0;
  double measured = 0.0;
  double predicted = 0.0;  // estimate_timed_epsilon(n, q, lambda, 1)
  double bound = 0.0;      // (1 + gamma) * predicted, Chernoff margin
  double lifetime = 0.0;   // staleness budget at 2x the churn-free eps
};

// gamma sized so that P(Binomial(N, eps) > (1+gamma) N eps) <= 1e-9 by
// the multiplicative Chernoff bound (math/chernoff.h) — the conformance
// test's margin, recomputed at this run's sample size.
double margin_gamma(double mu) {
  return std::sqrt(4.0 * std::log(2e9) / mu);
}

std::vector<EpsilonPoint> epsilon_sweep(std::uint64_t pairs_per_shard,
                                        unsigned threads, bool& ok) {
  constexpr std::uint32_t kEpsShards = 8;
  const double eps0 = core::nonintersection_exact(kUniverse, kQuorum);
  std::vector<EpsilonPoint> points;
  for (const double lambda : {0.0, 1.0, 4.0, 12.0}) {
    EpsilonPoint p;
    p.lambda = lambda;
    p.predicted = lambda == 0.0
                      ? eps0
                      : core::estimate_timed_epsilon(kUniverse, kQuorum,
                                                     lambda, 1.0);
    p.lifetime = lambda == 0.0
                     ? 0.0
                     : core::timed_quorum_lifetime(kUniverse, kQuorum,
                                                   lambda, 2.0 * eps0);
    StalenessRun total;
    for (const StalenessRun& r :
         epsilon_shards(lambda, pairs_per_shard, kEpsShards, threads,
                        DrawPath::kMask)) {
      total.pairs += r.pairs;
      total.stale += r.stale;
    }
    p.pairs = total.pairs;
    p.stale = total.stale;
    p.measured = static_cast<double>(total.stale) /
                 static_cast<double>(total.pairs);
    const double mu = static_cast<double>(total.pairs) * p.predicted;
    const double gamma = margin_gamma(mu);
    p.bound = (1.0 + gamma) * p.predicted;
    if (math::chernoff_upper(mu, gamma) > 1e-9 || p.measured > p.bound) {
      std::printf("MISMATCH: lambda=%.3g measured stale rate %.6g exceeds "
                  "timed-epsilon bound %.6g (predicted %.6g)\n",
                  lambda, p.measured, p.bound, p.predicted);
      ok = false;
    }
    points.push_back(p);
  }

  // The measurement is a replay: per-shard results bit-identical across
  // {1, 8} threads and both draw paths at one representative rate.
  const std::uint64_t replay_pairs = std::min<std::uint64_t>(
      pairs_per_shard, 2000);
  const auto reference =
      epsilon_shards(4.0, replay_pairs, kEpsShards, 1, DrawPath::kMask);
  for (const unsigned threads_check : {1u, 8u}) {
    for (const DrawPath path : {DrawPath::kMask, DrawPath::kAllocating}) {
      const auto runs = epsilon_shards(4.0, replay_pairs, kEpsShards,
                                       threads_check, path);
      for (std::uint32_t s = 0; s < kEpsShards; ++s) {
        if (!(runs[s] == reference[s])) {
          std::printf("MISMATCH: epsilon measurement diverged at threads=%u "
                      "path=%s shard=%u\n",
                      threads_check,
                      path == DrawPath::kMask ? "mask" : "alloc", s);
          ok = false;
        }
      }
    }
  }
  return points;
}

// ---- reporting ------------------------------------------------------------

struct SectionReport {
  SectionSpec section;
  std::uint32_t workers = 0;
  RunOutcome timed;
};

void write_json(const char* path, const std::vector<SectionReport>& sections,
                const std::vector<EpsilonPoint>& sweep, std::uint64_t ops,
                bool ok) {
  std::FILE* f = std::fopen(path, "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write JSON report to %s\n", path);
    return;
  }
  std::fprintf(f,
               "{\n  \"bench\": \"churn_throughput\",\n"
               "  \"simd_kernel\": \"%s\",\n  \"universe\": %u,\n"
               "  \"quorum\": %u,\n"
               "  \"ops_per_section\": %" PRIu64 ",\n  \"ok\": %s,\n"
               "  \"sections\": [\n",
               simd::active().name, kUniverse, kQuorum, ops,
               ok ? "true" : "false");
  for (std::size_t i = 0; i < sections.size(); ++i) {
    const SectionReport& s = sections[i];
    const RunOutcome& r = s.timed;
    std::fprintf(
        f,
        "    {\"name\": \"%s\", \"churn_per_1000\": %u, \"shards\": %u, "
        "\"workers\": %u,\n"
        "     \"ops_per_sec\": %.6g,\n"
        "     \"p50_ns\": %" PRIu64 ", \"p99_ns\": %" PRIu64
        ", \"p999_ns\": %" PRIu64 ", \"max_ns\": %" PRIu64 ",\n"
        "     \"reads\": %" PRIu64 ", \"writes\": %" PRIu64
        ", \"stale_reads\": %" PRIu64 ", \"churn_events\": %" PRIu64
        ", \"final_epochs\": %" PRIu64 "}%s\n",
        s.section.name.c_str(), s.section.churn_per_1000, kShards, s.workers,
        static_cast<double>(ops) / r.seconds, r.histogram.p50(),
        r.histogram.p99(), r.histogram.p999(), r.histogram.max(),
        r.fold.reads, r.fold.writes, r.fold.stale_reads, r.fold.churn_events,
        r.fold.membership_epoch, i + 1 < sections.size() ? "," : "");
  }
  std::fprintf(f, "  ],\n  \"epsilon_sweep\": [\n");
  for (std::size_t i = 0; i < sweep.size(); ++i) {
    const EpsilonPoint& p = sweep[i];
    std::fprintf(
        f,
        "    {\"lambda\": %.6g, \"pairs\": %" PRIu64 ", \"stale\": %" PRIu64
        ",\n"
        "     \"measured_stale_rate\": %.6g, \"predicted_epsilon\": %.6g, "
        "\"chernoff_bound\": %.6g, \"lifetime_at_2x_eps0\": %.6g}%s\n",
        p.lambda, p.pairs, p.stale, p.measured, p.predicted, p.bound,
        p.lifetime, i + 1 < sweep.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
}

int main_impl(int argc, char** argv) {
  const auto opts = bench::parse_options(argc, argv);
  const std::uint64_t ops = opts.samples_or(30000);
  unsigned workers = opts.threads;
  if (workers == 0) workers = std::thread::hardware_concurrency();
  if (workers == 0) workers = 1;

  const auto sys =
      std::make_shared<core::RandomSubsetSystem>(kUniverse, kQuorum);

  std::printf(
      "churn_throughput: %" PRIu64 " ops/section over %" PRIu64
      " keys, R(%u, %u) quorums, %u dynamic shards, workers=%u, simd=%s\n",
      ops, kKeys, kUniverse, kQuorum, kShards, workers, simd::active().name);

  bool ok = true;
  std::vector<SectionReport> reports;
  for (const SectionSpec& section : make_sections()) {
    const std::uint64_t seed =
        0xc4u + 131 * static_cast<std::uint64_t>(reports.size());
    const RunOutcome timed =
        drive(sys, section.churn_per_1000, workers, DrawPath::kMask, ops,
              seed);
    const RunOutcome w1 =
        drive(sys, section.churn_per_1000, 1, DrawPath::kMask, ops, seed);
    const RunOutcome w8 =
        drive(sys, section.churn_per_1000, 8, DrawPath::kMask, ops, seed);
    const RunOutcome alloc = drive(sys, section.churn_per_1000, workers,
                                   DrawPath::kAllocating, ops, seed);
    if (!(timed.aggregates == w1.aggregates) ||
        !(timed.aggregates == w8.aggregates)) {
      std::printf("MISMATCH: %s shard aggregates differ across worker "
                  "counts\n",
                  section.name.c_str());
      ok = false;
    }
    if (!(timed.aggregates == alloc.aggregates)) {
      std::printf("MISMATCH: %s shard aggregates differ across draw paths\n",
                  section.name.c_str());
      ok = false;
    }
    if (!timed.drained_all || !w1.drained_all || !w8.drained_all ||
        !alloc.drained_all) {
      std::printf("MISMATCH: %s lost requests or churn events in the "
                  "drain\n",
                  section.name.c_str());
      ok = false;
    }
    std::printf(
        "[churn] section=%-8s workers=%u ops/sec=%.3g p50=%.1fus "
        "p99=%.1fus churn=%" PRIu64 " epochs=%" PRIu64 " stale=%" PRIu64
        "\n",
        section.name.c_str(), workers,
        static_cast<double>(ops) / timed.seconds,
        static_cast<double>(timed.histogram.p50()) / 1000.0,
        static_cast<double>(timed.histogram.p99()) / 1000.0,
        timed.fold.churn_events, timed.fold.membership_epoch,
        timed.fold.stale_reads);
    reports.push_back({section, workers, timed});
  }

  const std::vector<EpsilonPoint> sweep = epsilon_sweep(ops, workers, ok);
  for (const EpsilonPoint& p : sweep) {
    std::printf(
        "[epsilon] lambda=%-4.3g pairs=%" PRIu64
        " measured=%.6f predicted=%.6f bound=%.6f lifetime@2eps0=%.3f\n",
        p.lambda, p.pairs, p.measured, p.predicted, p.bound, p.lifetime);
  }

  if (!opts.json.empty()) {
    write_json(opts.json.c_str(), reports, sweep, ops, ok);
  }

  std::printf(ok ? "OK: aggregates bit-identical across worker counts and "
                   "draw paths; stale rates within timed-epsilon bounds\n"
                 : "FAILED: see mismatches above\n");
  return ok ? 0 : 1;
}

}  // namespace
}  // namespace pqs

int main(int argc, char** argv) { return pqs::main_impl(argc, argv); }

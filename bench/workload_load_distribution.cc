// Workload study: induced load and staleness across quorum constructions.
//
// Drives the same Zipf-skewed read/write workload through every
// construction in the library at n = 100 and reports (a) the measured
// per-server max access frequency — which must converge to the analytic
// load L_w regardless of key skew, since quorum choice is key-independent
// — and (b) the measured stale-read rate vs the construction's epsilon
// (0 for the strict baselines).
#include <iostream>
#include <memory>

#include "core/epsilon.h"
#include "core/random_subset_system.h"
#include "quorum/grid.h"
#include "quorum/threshold.h"
#include "quorum/wall.h"
#include "quorum/weighted.h"
#include "util/table.h"
#include "workload/workload.h"

int main() {
  using namespace pqs;

  util::banner(std::cout,
               "Workload: Zipf(1.0) keys, 50/50 read-write, 200k ops, "
               "n = 100");

  struct Entry {
    std::string label;
    std::shared_ptr<const quorum::QuorumSystem> system;
    double epsilon;
  };
  std::vector<Entry> entries;
  {
    const auto r = core::RandomSubsetSystem::intersecting(100, 1e-3);
    entries.push_back({"R(100,23) eps-intersecting",
                       std::make_shared<core::RandomSubsetSystem>(r),
                       r.epsilon()});
    const core::RandomSubsetSystem coarse(100, 12);
    entries.push_back({"R(100,12) coarse",
                       std::make_shared<core::RandomSubsetSystem>(coarse),
                       coarse.epsilon()});
    entries.push_back({"majority threshold",
                       std::make_shared<quorum::ThresholdSystem>(
                           quorum::ThresholdSystem::majority(100)),
                       0.0});
    entries.push_back({"grid 10x10",
                       std::make_shared<quorum::GridSystem>(
                           quorum::GridSystem::square(100)),
                       0.0});
    entries.push_back({"wall 4x25",
                       std::make_shared<quorum::WallSystem>(
                           quorum::WallSystem::uniform(4, 25)),
                       0.0});
    std::vector<std::uint32_t> votes(100, 1);
    for (int i = 0; i < 10; ++i) votes[i] = 5;  // ten heavy servers
    entries.push_back({"weighted (10 heavy)",
                       std::make_shared<quorum::WeightedVotingSystem>(
                           quorum::WeightedVotingSystem(votes, 71)),
                       0.0});
  }

  util::TextTable t({"system", "analytic load", "measured load",
                     "analytic eps", "measured stale rate"});
  std::uint64_t seed = 1;
  for (const auto& e : entries) {
    replica::InstantCluster::Config cfg;
    cfg.quorums = e.system;
    cfg.seed = seed++;
    replica::InstantCluster cluster(cfg);
    workload::WorkloadSpec spec;
    spec.keys = 64;
    spec.zipf_exponent = 1.0;
    spec.read_fraction = 0.5;
    spec.operations = 200000;
    math::Rng rng(42 + seed);
    const auto report = workload::run_workload(cluster, spec, rng);
    t.row()
        .cell(e.label)
        .cell(e.system->load(), 3)
        .cell(report.measured_load(), 3)
        .cell_sci(e.epsilon, 2)
        .cell_sci(report.stale_rate(), 2);
  }
  t.print(std::cout);

  std::cout
      << "\nReading: measured load matches the analytic L_w for every\n"
         "construction (key skew does not leak into server load, because\n"
         "quorum selection is key-independent); strict baselines show zero\n"
         "staleness while the probabilistic systems track their eps — the\n"
         "trade the paper quantifies: R(100,23) serves the same workload\n"
         "at less than half the majority system's per-server load.\n";
  return 0;
}

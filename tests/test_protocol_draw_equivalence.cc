// The protocol stack's two quorum draw paths must be indistinguishable:
// for any construction and any seed, a Client/InstantCluster on the mask
// scratch path (DrawPath::kMask — sample_mask into per-instance bitsets,
// direct server calls) must produce bit-identical operation outcomes and
// rng consumption to the original allocating path (DrawPath::kAllocating —
// sample() plus process()/Outbound dispatch). Checked per operation over
// every construction, with and without faults, at 1 and 8 worker shards.
#include <cstdint>
#include <memory>
#include <vector>

#include <gtest/gtest.h>

#include "core/random_subset_system.h"
#include "math/rng.h"
#include "quorum/grid.h"
#include "quorum/set_system.h"
#include "quorum/singleton.h"
#include "quorum/threshold.h"
#include "quorum/wall.h"
#include "quorum/weighted.h"
#include "replica/instant_cluster.h"
#include "replica/sim_cluster.h"
#include "util/worker_pool.h"

namespace pqs::replica {
namespace {

using quorum::QuorumSystem;

using SystemFactory = std::shared_ptr<const QuorumSystem> (*)();

std::shared_ptr<const QuorumSystem> make_threshold() {
  return std::make_shared<quorum::ThresholdSystem>(
      quorum::ThresholdSystem::majority(67));
}
std::shared_ptr<const QuorumSystem> make_grid() {
  // 7x7, d=2: rows straddle word boundaries at neither 64 nor 128.
  return std::make_shared<quorum::GridSystem>(quorum::GridSystem(7, 7, 2));
}
std::shared_ptr<const QuorumSystem> make_wall() {
  return std::make_shared<quorum::WallSystem>(
      quorum::WallSystem({40, 30, 20, 10}));  // 100 servers
}
std::shared_ptr<const QuorumSystem> make_weighted() {
  std::vector<std::uint32_t> votes(70, 1);
  for (int i = 0; i < 10; ++i) votes[i] = 5;
  return std::make_shared<quorum::WeightedVotingSystem>(
      quorum::WeightedVotingSystem(votes, 61));
}
std::shared_ptr<const QuorumSystem> make_singleton() {
  return std::make_shared<quorum::SingletonSystem>(66, 65);
}
std::shared_ptr<const QuorumSystem> make_set_system() {
  return std::make_shared<quorum::SetSystem>(
      quorum::SetSystem::all_subsets(7, 4));
}
std::shared_ptr<const QuorumSystem> make_random_subset() {
  return std::make_shared<core::RandomSubsetSystem>(130, 27);
}

// Everything one operation can reveal, so any divergence between the two
// paths fails on the op where it appears.
struct OpRecord {
  quorum::Quorum quorum;
  std::uint32_t count = 0;  // acks or replies
  std::uint64_t timestamp = 0;
  bool has_value = false;
  std::int64_t value = 0;

  bool operator==(const OpRecord& o) const {
    return quorum == o.quorum && count == o.count &&
           timestamp == o.timestamp && has_value == o.has_value &&
           value == o.value;
  }
};

struct Trace {
  std::vector<OpRecord> ops;
  std::uint64_t rng_tail = 0;  // next draw from the cluster rng afterwards

  bool operator==(const Trace& o) const {
    return ops == o.ops && rng_tail == o.rng_tail;
  }
};

Trace run_instant(const std::shared_ptr<const QuorumSystem>& sys,
                  DrawPath path, std::uint64_t seed, int pairs,
                  const FaultPlan* faults) {
  InstantCluster::Config cfg;
  cfg.quorums = sys;
  cfg.seed = seed;
  cfg.draw_path = path;
  auto cluster = faults != nullptr
                     ? std::make_unique<InstantCluster>(cfg, *faults)
                     : std::make_unique<InstantCluster>(cfg);
  Trace trace;
  WriteResult w;
  ReadResult r;
  for (int i = 0; i < pairs; ++i) {
    cluster->write_into(w, /*variable=*/1 + (i % 3), /*value=*/i);
    trace.ops.push_back(
        OpRecord{w.quorum, w.acks, w.timestamp, false, 0});
    cluster->read_into(r, 1 + (i % 3));
    trace.ops.push_back(OpRecord{r.quorum, r.replies, 0,
                                 r.selection.has_value,
                                 r.selection.record.value});
  }
  trace.rng_tail = cluster->rng().next();
  return trace;
}

class ProtocolDrawEquivalence
    : public ::testing::TestWithParam<SystemFactory> {};

// One shard per seed, both paths, compared op by op — the shards execute
// concurrently on a worker pool (self-contained state, so scheduling
// cannot matter) at 1 and 8 shards.
TEST_P(ProtocolDrawEquivalence, InstantClusterShardsMatch) {
  const auto sys = GetParam()();
  for (const std::uint32_t shards : {1u, 8u}) {
    std::vector<Trace> mask_traces(shards), alloc_traces(shards);
    util::WorkerPool pool(4);
    pool.run(shards, [&](std::uint64_t s) {
      const std::uint64_t seed = 17 + 1000003 * s;
      mask_traces[s] =
          run_instant(sys, DrawPath::kMask, seed, /*pairs=*/40, nullptr);
      alloc_traces[s] = run_instant(sys, DrawPath::kAllocating, seed,
                                    /*pairs=*/40, nullptr);
    });
    for (std::uint32_t s = 0; s < shards; ++s) {
      ASSERT_EQ(mask_traces[s].ops.size(), alloc_traces[s].ops.size());
      for (std::size_t i = 0; i < mask_traces[s].ops.size(); ++i) {
        ASSERT_TRUE(mask_traces[s].ops[i] == alloc_traces[s].ops[i])
            << sys->name() << " shards=" << shards << " shard=" << s
            << " op=" << i;
      }
      EXPECT_EQ(mask_traces[s].rng_tail, alloc_traces[s].rng_tail)
          << sys->name() << " shard " << s << " diverged in rng consumption";
    }
  }
}

// Fault handling must agree too: crashed members answer neither path,
// forgers consume their private rng identically through serve_read whether
// reached directly or via process().
TEST_P(ProtocolDrawEquivalence, InstantClusterMatchesUnderFaults) {
  const auto sys = GetParam()();
  const std::uint32_t n = sys->universe_size();
  FaultPlan plan = FaultPlan::prefix(n, n / 8, FaultMode::kCrash);
  plan.set_mode(n - 1, FaultMode::kForge);
  const Trace mask =
      run_instant(sys, DrawPath::kMask, 23, /*pairs=*/60, &plan);
  const Trace alloc =
      run_instant(sys, DrawPath::kAllocating, 23, /*pairs=*/60, &plan);
  EXPECT_TRUE(mask == alloc) << sys->name();
}

// The discrete-event Client: same check over the full message-passing
// stack, where quorum draws come from each client's private stream.
TEST_P(ProtocolDrawEquivalence, SimClientMatches) {
  const auto sys = GetParam()();
  auto run = [&](DrawPath path) {
    SimCluster::Config cfg;
    cfg.quorums = sys;
    cfg.latency = {/*base=*/100, /*jitter_mean=*/40, /*drop_probability=*/0.0};
    cfg.seed = 5;
    cfg.draw_path = path;
    SimCluster cluster(cfg);
    Trace trace;
    for (int i = 0; i < 15; ++i) {
      const auto w = cluster.write_sync(7, i);
      trace.ops.push_back(
          OpRecord{w.quorum, w.acks, w.timestamp, w.complete, 0});
      const auto r = cluster.read_sync(7);
      trace.ops.push_back(OpRecord{r.quorum, r.replies, 0,
                                   r.selection.has_value,
                                   r.selection.record.value});
    }
    trace.rng_tail = static_cast<std::uint64_t>(cluster.simulator().now());
    return trace;
  };
  EXPECT_TRUE(run(DrawPath::kMask) == run(DrawPath::kAllocating))
      << sys->name();
}

INSTANTIATE_TEST_SUITE_P(AllConstructions, ProtocolDrawEquivalence,
                         ::testing::Values(&make_threshold, &make_grid,
                                           &make_wall, &make_weighted,
                                           &make_singleton, &make_set_system,
                                           &make_random_subset));

}  // namespace
}  // namespace pqs::replica

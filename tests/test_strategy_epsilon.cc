// Statistical conformance of a strategy deployment: the stale-read rate of
// the InstantCluster protocol running a quorum::Strategy must respect the
// strategy's own predicted epsilon.
//
// The staleness event is contained in "the read quorum and the write
// quorum share no server": with an honest, fully-live fleet any common
// server holds the latest record (single writer, strictly increasing
// timestamps) and select_plain returns the highest timestamp. Writes draw
// the strategy's write distribution and reads its read distribution, both
// from one stream, so over N seeded write/read pairs the stale count is
// stochastically dominated by Binomial(N, predicted_epsilon(0)) — and a
// multiplicative Chernoff margin (math/chernoff.h) turns that into a
// deterministic-seed assertion with failure probability <= 1e-9 under the
// null, exactly like tests/test_staleness_epsilon.cc does for bare
// constructions.
#include <algorithm>
#include <cmath>
#include <cstdint>
#include <memory>
#include <vector>

#include <gtest/gtest.h>

#include "core/epsilon.h"
#include "core/random_subset_system.h"
#include "math/chernoff.h"
#include "math/rng.h"
#include "quorum/strategy.h"
#include "replica/instant_cluster.h"

namespace pqs::replica {
namespace {

using quorum::Quorum;
using quorum::Strategy;

// Draws `want` distinct quorums of the base system on a dedicated stream.
std::vector<Quorum> draw_candidates(const quorum::QuorumSystem& base,
                                    std::uint32_t want, std::uint64_t seed) {
  math::Rng rng(seed);
  std::vector<Quorum> support;
  while (support.size() < want) {
    Quorum q = base.sample(rng);
    std::sort(q.begin(), q.end());
    if (std::find(support.begin(), support.end(), q) == support.end()) {
      support.push_back(std::move(q));
    }
  }
  return support;
}

// The uniform strategy over `candidates` read and write quorums each of
// R(n, q) — its predicted epsilon is the empirical disjoint-pair fraction
// of the sampled support, reported exactly by the class itself.
std::shared_ptr<const Strategy> uniform_strategy(std::uint32_t n,
                                                 std::uint32_t q,
                                                 std::uint32_t candidates,
                                                 std::uint64_t seed) {
  auto base = std::make_shared<core::RandomSubsetSystem>(n, q);
  std::vector<Quorum> reads = draw_candidates(*base, candidates, seed);
  std::vector<Quorum> writes = draw_candidates(*base, candidates, seed + 1);
  const std::vector<double> probs(candidates, 1.0 / candidates);
  return std::make_shared<Strategy>(std::move(base), std::move(reads), probs,
                                    std::move(writes), probs);
}

struct StalenessRun {
  std::uint64_t pairs = 0;
  std::uint64_t stale = 0;
};

StalenessRun run_pairs(std::shared_ptr<const Strategy> strategy,
                       std::uint64_t pairs, std::uint64_t seed) {
  InstantCluster::Config cfg;
  cfg.strategy = std::move(strategy);
  cfg.seed = seed;
  InstantCluster cluster(std::move(cfg));
  StalenessRun run;
  run.pairs = pairs;
  WriteResult w;
  ReadResult r;
  std::int64_t value = 0;
  for (std::uint64_t i = 0; i < pairs; ++i) {
    cluster.write_into(w, /*variable=*/1, ++value);
    cluster.read_into(r, 1);
    if (!r.selection.has_value || r.selection.record.value != value) {
      ++run.stale;
    }
  }
  return run;
}

// gamma sized so that P(Binomial(N, eps) > (1+gamma) N eps) <= 1e-9 by
// the multiplicative Chernoff bound.
double margin_gamma(double mu) {
  const double gamma = std::sqrt(4.0 * std::log(2e9) / mu);
  EXPECT_LE(gamma, 2.0 * std::exp(1.0) - 1.0);
  EXPECT_LE(math::chernoff_upper(mu, gamma), 1e-9);
  return gamma;
}

TEST(StrategyEpsilon, UniformStrategyRespectsItsPredictedEpsilon) {
  // R(20, 5) keeps the disjoint-pair fraction large (~0.19 in
  // expectation) so the miss machinery is genuinely exercised.
  const auto strategy = uniform_strategy(20, 5, 12, /*seed=*/0x5eed1);
  const double eps = strategy->predicted_epsilon(0.0);
  ASSERT_GT(eps, 0.0);
  const std::uint64_t kPairs = 200000;
  const double mu = static_cast<double>(kPairs) * eps;
  const double gamma = margin_gamma(mu);
  const StalenessRun run = run_pairs(strategy, kPairs, /*seed=*/41);
  EXPECT_LE(static_cast<double>(run.stale), (1.0 + gamma) * mu)
      << "observed " << run.stale << " stale reads over " << run.pairs
      << " pairs; predicted eps=" << eps;
  // Misses must actually occur at this epsilon or the harness is not
  // measuring anything.
  EXPECT_GT(run.stale, 0u);
}

TEST(StrategyEpsilon, OptimizedStrategyRespectsItsPredictedEpsilon) {
  // An optimizer-produced deployment on skewed capacities, with the
  // epsilon ceiling taken from the existing exact closed form for the
  // base construction. The optimizer may land anywhere at or below its
  // predicted epsilon, so the binomial-domination bound is taken against
  // max(predicted, floor) — still a valid dominating rate, and the floor
  // keeps the Chernoff margin meaningful when the optimizer happens to
  // pick an almost-surely-intersecting support.
  const std::uint32_t n = 20, q = 5;
  auto base = std::make_shared<core::RandomSubsetSystem>(n, q);
  quorum::WorkloadSpec workload;
  workload.read_fraction = 0.8;
  workload.capacities.assign(n, 1.0);
  for (std::uint32_t u = 0; u < n / 4; ++u) workload.capacities[u] = 0.5;
  quorum::StrategyOptions options;
  options.epsilon_ceiling = core::nonintersection_exact(n, q);
  const auto strategy = quorum::optimize_strategy(base, workload, options);
  const std::uint64_t kPairs = 200000;
  const double eps_bound =
      std::max(strategy->predicted_epsilon(0.0), 1e-4);
  const double mu = static_cast<double>(kPairs) * eps_bound;
  const double gamma = margin_gamma(mu);
  const StalenessRun run = run_pairs(strategy, kPairs, /*seed=*/43);
  EXPECT_LE(static_cast<double>(run.stale), (1.0 + gamma) * mu)
      << "observed " << run.stale << " stale reads over " << run.pairs
      << " pairs; predicted eps=" << strategy->predicted_epsilon(0.0);
}

// Fixed seeds make the suite a pure function of the binary: reruns are
// bit-identical, so a pass can never flake into a failure.
TEST(StrategyEpsilon, SeededRunsAreDeterministic) {
  const auto strategy = uniform_strategy(20, 5, 12, /*seed=*/0x5eed1);
  const StalenessRun a = run_pairs(strategy, 20000, /*seed=*/47);
  const StalenessRun b = run_pairs(strategy, 20000, /*seed=*/47);
  EXPECT_EQ(a.stale, b.stale);
}

}  // namespace
}  // namespace pqs::replica

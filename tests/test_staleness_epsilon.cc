// Statistical conformance of the deployed stack: the staleness rate of the
// actual InstantCluster protocol (mask draw path, real servers, real read
// rules) must respect the epsilon computed analytically in core/epsilon.h —
// Theorem 3.2's guarantee measured on the running system rather than on the
// estimator.
//
// The staleness event is contained in "every server common to the write and
// read quorums is crashed": a live common server holds the latest record
// (single writer, strictly increasing timestamps) and answers the read, and
// select_plain returns the highest timestamp. For a fixed crashed set B of
// size f that containment probability is exactly P(Q ∩ Q' ⊆ B) =
// dissemination_epsilon_exact(n, q, f) (nonintersection_exact for f = 0),
// so over N seeded write/read pairs the observed stale count is
// stochastically dominated by Binomial(N, eps) and a multiplicative
// Chernoff margin (math/chernoff.h) turns that into a deterministic-seed
// assertion with failure probability <= 1e-9 under the null.
//
// Perturbation check (done manually once during development): making
// select_plain return the first reply instead of the highest timestamp
// drives the stale rate to ~1 - q/n, orders of magnitude above the bound,
// and every test here fails.
#include <cmath>
#include <cstdint>
#include <memory>

#include <gtest/gtest.h>

#include "core/epsilon.h"
#include "core/random_subset_system.h"
#include "math/chernoff.h"
#include "replica/instant_cluster.h"

namespace pqs::replica {
namespace {

struct StalenessRun {
  std::uint64_t pairs = 0;
  std::uint64_t stale = 0;
  std::uint64_t empty = 0;  // reads that returned ⊥ (subset of stale)
};

StalenessRun run_pairs(std::uint32_t n, std::uint32_t q, std::uint32_t crashed,
                       std::uint64_t pairs, std::uint64_t seed) {
  InstantCluster::Config cfg;
  cfg.quorums = std::make_shared<core::RandomSubsetSystem>(n, q);
  cfg.seed = seed;
  InstantCluster cluster(cfg,
                         FaultPlan::prefix(n, crashed, FaultMode::kCrash));
  StalenessRun run;
  run.pairs = pairs;
  WriteResult w;
  ReadResult r;
  std::int64_t value = 0;
  for (std::uint64_t i = 0; i < pairs; ++i) {
    cluster.write_into(w, /*variable=*/1, ++value);
    cluster.read_into(r, 1);
    if (!r.selection.has_value) {
      ++run.empty;
      ++run.stale;
    } else if (r.selection.record.value != value) {
      ++run.stale;
    }
  }
  return run;
}

// gamma sized so that P(Binomial(N, eps) > (1+gamma) N eps) <= 1e-9 by the
// multiplicative Chernoff bound; requires gamma <= 2e-1 for the exp form.
double margin_gamma(double mu) {
  const double gamma = std::sqrt(4.0 * std::log(2e9) / mu);
  EXPECT_LE(gamma, 2.0 * std::exp(1.0) - 1.0);
  EXPECT_LE(math::chernoff_upper(mu, gamma), 1e-9);
  return gamma;
}

TEST(StalenessEpsilon, BenignStackRespectsNonintersectionEpsilon) {
  const std::uint32_t n = 64, q = 16;
  const std::uint64_t kPairs = 200000;
  const double eps = core::nonintersection_exact(n, q);
  ASSERT_GT(eps, 0.0);
  const double mu = static_cast<double>(kPairs) * eps;
  const double gamma = margin_gamma(mu);
  const StalenessRun run = run_pairs(n, q, /*crashed=*/0, kPairs, /*seed=*/29);
  EXPECT_LE(static_cast<double>(run.stale), (1.0 + gamma) * mu)
      << "observed " << run.stale << " stale reads over " << run.pairs
      << " pairs; eps=" << eps;
  // The guarantee is probabilistic, not strict: misses must actually occur
  // for this coarse a system, or the harness is not measuring anything.
  EXPECT_GT(run.stale, 0u);
}

TEST(StalenessEpsilon, CrashedStackRespectsDisseminationEpsilon) {
  const std::uint32_t n = 64, q = 16, f = 6;
  const std::uint64_t kPairs = 200000;
  // Staleness ⊆ {Q ∩ Q' ⊆ crashed}, |crashed| = f.
  const double eps = core::dissemination_epsilon_exact(n, q, f);
  ASSERT_GT(eps, core::nonintersection_exact(n, q));
  const double mu = static_cast<double>(kPairs) * eps;
  const double gamma = margin_gamma(mu);
  const StalenessRun run = run_pairs(n, q, f, kPairs, /*seed=*/31);
  EXPECT_LE(static_cast<double>(run.stale), (1.0 + gamma) * mu)
      << "observed " << run.stale << " stale reads over " << run.pairs
      << " pairs; eps=" << eps;
  EXPECT_GT(run.stale, 0u);
}

// Fixed seeds make the whole suite a pure function of the binary: the same
// run twice is bit-identical, so a pass can never flake into a failure on
// re-execution.
TEST(StalenessEpsilon, SeededRunsAreDeterministic) {
  const StalenessRun a = run_pairs(64, 16, 6, 20000, /*seed=*/37);
  const StalenessRun b = run_pairs(64, 16, 6, 20000, /*seed=*/37);
  EXPECT_EQ(a.stale, b.stale);
  EXPECT_EQ(a.empty, b.empty);
}

}  // namespace
}  // namespace pqs::replica

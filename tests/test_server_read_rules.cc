#include <gtest/gtest.h>

#include "crypto/mac.h"
#include "math/rng.h"
#include "replica/read_rules.h"
#include "replica/server.h"

namespace pqs::replica {
namespace {

crypto::Signer test_signer() { return crypto::Signer::from_seed(2024); }

Server make_server(std::uint32_t id, FaultMode mode) {
  return Server(id, mode, math::Rng(id + 1),
                std::make_shared<const ColludePlan>());
}

ReadReply reply_of(const std::vector<Outbound>& out) {
  EXPECT_EQ(out.size(), 1u);
  const auto* r = std::get_if<ReadReply>(&out[0].message);
  EXPECT_NE(r, nullptr);
  return *r;
}

TEST(Server, CorrectWriteReadRoundTrip) {
  auto server = make_server(0, FaultMode::kCorrect);
  const auto rec = test_signer().sign(1, 42, 100, 1);
  const auto acks = server.process(99, WriteRequest{5, rec});
  ASSERT_EQ(acks.size(), 1u);
  EXPECT_EQ(acks[0].to, 99u);
  const auto* ack = std::get_if<WriteAck>(&acks[0].message);
  ASSERT_NE(ack, nullptr);
  EXPECT_EQ(ack->op, 5u);

  const auto r = reply_of(server.process(99, ReadRequest{6, 1}));
  EXPECT_TRUE(r.has_value);
  EXPECT_EQ(r.record.value, 42);
  EXPECT_EQ(r.record.timestamp, 100u);
}

TEST(Server, ReadOfUnknownVariableIsEmpty) {
  auto server = make_server(0, FaultMode::kCorrect);
  const auto r = reply_of(server.process(7, ReadRequest{1, 999}));
  EXPECT_FALSE(r.has_value);
}

TEST(Server, KeepsHighestTimestampOnly) {
  auto server = make_server(0, FaultMode::kCorrect);
  const auto signer = test_signer();
  server.process(1, WriteRequest{1, signer.sign(1, 10, 200, 1)});
  server.process(1, WriteRequest{2, signer.sign(1, 20, 100, 1)});  // older
  const auto r = reply_of(server.process(1, ReadRequest{3, 1}));
  EXPECT_EQ(r.record.value, 10);
  EXPECT_EQ(r.record.timestamp, 200u);
  server.process(1, WriteRequest{4, signer.sign(1, 30, 300, 1)});  // newer
  const auto r2 = reply_of(server.process(1, ReadRequest{5, 1}));
  EXPECT_EQ(r2.record.value, 30);
}

TEST(Server, CrashedServerIsSilent) {
  auto server = make_server(0, FaultMode::kCrash);
  EXPECT_TRUE(server.process(1, WriteRequest{1, test_signer().sign(1, 1, 1, 1)})
                  .empty());
  EXPECT_TRUE(server.process(1, ReadRequest{2, 1}).empty());
}

TEST(Server, SuppressingServerIsSilentButTracked) {
  auto server = make_server(0, FaultMode::kSuppress);
  EXPECT_TRUE(server.process(1, WriteRequest{1, test_signer().sign(1, 1, 1, 1)})
                  .empty());
  EXPECT_TRUE(server.process(1, ReadRequest{2, 1}).empty());
}

TEST(Server, StaleReplayServesFirstValueWithValidTag) {
  auto server = make_server(0, FaultMode::kStaleReplay);
  const auto signer = test_signer();
  const crypto::Verifier verifier(signer.key());
  server.process(1, WriteRequest{1, signer.sign(1, 10, 100, 1)});
  server.process(1, WriteRequest{2, signer.sign(1, 20, 200, 1)});
  const auto r = reply_of(server.process(1, ReadRequest{3, 1}));
  ASSERT_TRUE(r.has_value);
  EXPECT_EQ(r.record.value, 10);         // the stale value
  EXPECT_EQ(r.record.timestamp, 100u);   // with its honest old timestamp
  EXPECT_TRUE(verifier.verify(r.record));  // and a *valid* tag
}

TEST(Server, ForgeProducesInvalidTagAndHugeTimestamp) {
  auto server = make_server(0, FaultMode::kForge);
  const auto signer = test_signer();
  const crypto::Verifier verifier(signer.key());
  server.process(1, WriteRequest{1, signer.sign(1, 10, 100, 1)});
  const auto r = reply_of(server.process(1, ReadRequest{2, 1}));
  ASSERT_TRUE(r.has_value);
  EXPECT_GT(r.record.timestamp, 100u);
  EXPECT_FALSE(verifier.verify(r.record));
}

TEST(Server, ColludersAgreeOnForgedRecord) {
  const auto plan = std::make_shared<const ColludePlan>();
  Server a(0, FaultMode::kCollude, math::Rng(1), plan);
  Server b(1, FaultMode::kCollude, math::Rng(2), plan);
  const auto signer = test_signer();
  a.process(9, WriteRequest{1, signer.sign(1, 10, 100, 1)});
  b.process(9, WriteRequest{2, signer.sign(1, 10, 100, 1)});
  const auto ra = reply_of(a.process(9, ReadRequest{3, 1}));
  const auto rb = reply_of(b.process(9, ReadRequest{4, 1}));
  EXPECT_EQ(ra.record, rb.record);  // identical lie
  EXPECT_EQ(ra.record.value, plan->forged(1).value);
}

TEST(Server, AdoptIsMonotone) {
  auto server = make_server(0, FaultMode::kCorrect);
  const auto signer = test_signer();
  EXPECT_TRUE(server.adopt(signer.sign(1, 5, 50, 1)));
  EXPECT_FALSE(server.adopt(signer.sign(1, 4, 40, 1)));   // older
  EXPECT_FALSE(server.adopt(signer.sign(1, 5, 50, 1)));   // equal
  EXPECT_TRUE(server.adopt(signer.sign(1, 6, 60, 1)));
  EXPECT_EQ(server.find(1)->value, 6);
}

TEST(Server, GossipAdoptionRespectsVerifier) {
  auto server = make_server(0, FaultMode::kCorrect);
  const auto signer = test_signer();
  server.set_gossip_verifier(crypto::Verifier(signer.key()));
  // Valid gossip adopted.
  server.process(1, Message{GossipPush{signer.sign(1, 7, 70, 1)}});
  ASSERT_NE(server.find(1), nullptr);
  EXPECT_EQ(server.find(1)->value, 7);
  // Forged gossip (bad tag) rejected.
  auto fake = signer.sign(1, 8, 80, 1);
  fake.tag ^= 1;
  server.process(1, Message{GossipPush{fake}});
  EXPECT_EQ(server.find(1)->value, 7);
}

TEST(Server, GossipRecordsPerMode) {
  const auto signer = test_signer();
  const auto rec = signer.sign(1, 10, 100, 1);
  for (auto mode : {FaultMode::kCorrect, FaultMode::kStaleReplay,
                    FaultMode::kForge, FaultMode::kCollude}) {
    auto server = make_server(0, mode);
    server.process(1, WriteRequest{1, rec});
    const auto records = server.gossip_records();
    ASSERT_EQ(records.size(), 1u) << fault_mode_name(mode);
    if (mode == FaultMode::kCorrect || mode == FaultMode::kStaleReplay) {
      EXPECT_EQ(records[0], rec);
    } else {
      EXPECT_NE(records[0], rec);
    }
  }
  for (auto mode : {FaultMode::kCrash, FaultMode::kSuppress}) {
    auto server = make_server(0, mode);
    server.process(1, WriteRequest{1, rec});
    EXPECT_TRUE(server.gossip_records().empty()) << fault_mode_name(mode);
  }
}

// ---- Read-selection rules ---------------------------------------------------

std::vector<ReadReply> replies_from(
    const std::vector<crypto::SignedRecord>& records) {
  std::vector<ReadReply> out;
  std::uint32_t id = 0;
  for (const auto& r : records) {
    ReadReply reply;
    reply.op = 1;
    reply.server = id++;
    reply.has_value = true;
    reply.record = r;
    out.push_back(reply);
  }
  return out;
}

TEST(ReadRules, PlainPicksHighestTimestamp) {
  const auto signer = test_signer();
  const auto sel = select_plain(replies_from({signer.sign(1, 10, 100, 1),
                                              signer.sign(1, 30, 300, 1),
                                              signer.sign(1, 20, 200, 1)}));
  ASSERT_TRUE(sel.has_value);
  EXPECT_EQ(sel.record.value, 30);
}

TEST(ReadRules, PlainEmptyRepliesGiveBottom) {
  EXPECT_FALSE(select_plain({}).has_value);
  std::vector<ReadReply> empty_replies(3);
  EXPECT_FALSE(select_plain(empty_replies).has_value);
}

TEST(ReadRules, PlainIsFooledByForgery) {
  // Without verification the forged huge-timestamp record wins — this is
  // why plain reads are only for benign failures.
  const auto signer = test_signer();
  auto forged = signer.sign(1, 666, 999999, 1);
  forged.tag ^= 1;
  const auto sel = select_plain(
      replies_from({signer.sign(1, 10, 100, 1), forged}));
  EXPECT_EQ(sel.record.value, 666);
}

TEST(ReadRules, DisseminationRejectsForgery) {
  const auto signer = test_signer();
  const crypto::Verifier verifier(signer.key());
  auto forged = signer.sign(1, 666, 999999, 1);
  forged.tag ^= 1;
  const auto sel = select_dissemination(
      replies_from({signer.sign(1, 10, 100, 1), forged}), verifier);
  ASSERT_TRUE(sel.has_value);
  EXPECT_EQ(sel.record.value, 10);  // forgery filtered, genuine record wins
}

TEST(ReadRules, DisseminationAcceptsStaleButGenuine) {
  // A stale replay has a valid tag; among genuine records the highest
  // timestamp wins, so staleness only matters if no fresher record arrives.
  const auto signer = test_signer();
  const crypto::Verifier verifier(signer.key());
  const auto sel = select_dissemination(
      replies_from({signer.sign(1, 10, 100, 1), signer.sign(1, 30, 300, 1)}),
      verifier);
  EXPECT_EQ(sel.record.value, 30);
}

TEST(ReadRules, DisseminationAllForgedGivesBottom) {
  const auto signer = test_signer();
  const crypto::Verifier verifier(signer.key());
  auto f1 = signer.sign(1, 1, 10, 1);
  f1.tag ^= 2;
  auto f2 = signer.sign(1, 2, 20, 1);
  f2.tag ^= 4;
  EXPECT_FALSE(select_dissemination(replies_from({f1, f2}), verifier)
                   .has_value);
}

TEST(ReadRules, MaskingRequiresKVouchers) {
  const auto signer = test_signer();
  const auto fresh = signer.sign(1, 30, 300, 1);
  const auto stale = signer.sign(1, 10, 100, 1);
  // fresh has 2 vouchers, stale has 3.
  const auto replies = replies_from({fresh, fresh, stale, stale, stale});
  const auto sel2 = select_masking(replies, 2);
  ASSERT_TRUE(sel2.has_value);
  EXPECT_EQ(sel2.record.value, 30);  // both qualify; freshest wins
  const auto sel3 = select_masking(replies, 3);
  ASSERT_TRUE(sel3.has_value);
  EXPECT_EQ(sel3.record.value, 10);  // only the stale one clears k=3
  EXPECT_EQ(sel3.vouchers, 3u);
  EXPECT_FALSE(select_masking(replies, 4).has_value);  // nothing clears
}

TEST(ReadRules, MaskingDefeatsSubThresholdCollusion) {
  const auto signer = test_signer();
  const ColludePlan plan;
  const auto genuine = signer.sign(1, 10, 100, 1);
  // k-1 colluders agree on a forged super-fresh record; k correct servers
  // return the genuine one.
  std::vector<crypto::SignedRecord> records{plan.forged(1), plan.forged(1),
                                            genuine, genuine, genuine};
  const auto sel = select_masking(replies_from(records), 3);
  ASSERT_TRUE(sel.has_value);
  EXPECT_EQ(sel.record.value, 10);
}

TEST(ReadRules, MaskingOverwhelmedByKColluders) {
  // With >= k colluders in the quorum the forged record qualifies and its
  // huge timestamp wins: exactly the P(|Q ∩ B| >= k) failure mode.
  const auto signer = test_signer();
  const ColludePlan plan;
  const auto genuine = signer.sign(1, 10, 100, 1);
  std::vector<crypto::SignedRecord> records{plan.forged(1), plan.forged(1),
                                            plan.forged(1), genuine, genuine,
                                            genuine};
  const auto sel = select_masking(replies_from(records), 3);
  ASSERT_TRUE(sel.has_value);
  EXPECT_EQ(sel.record.value, plan.forged(1).value);
}

TEST(ReadRules, DispatchMatchesSpecificSelectors) {
  const auto signer = test_signer();
  const crypto::Verifier verifier(signer.key());
  const auto replies = replies_from({signer.sign(1, 5, 50, 1)});
  EXPECT_EQ(select(ReadMode::kPlain, replies, nullptr, 1).record.value, 5);
  EXPECT_EQ(select(ReadMode::kDissemination, replies, &verifier, 1)
                .record.value, 5);
  EXPECT_EQ(select(ReadMode::kMasking, replies, nullptr, 1).record.value, 5);
  EXPECT_THROW(select(ReadMode::kDissemination, replies, nullptr, 1),
               std::invalid_argument);
}

}  // namespace
}  // namespace pqs::replica

// quorum::MembershipView: the epoch-stamped dynamic membership unit.
//
// Covers the lattice laws the gossip layer leans on (merge commutativity,
// associativity, idempotence — fuzzed over random op sequences), the
// epoch/mask round-trips of join/leave/replace, the rank-translation draw
// paths (or_expand against a nth_live reference, mask/vector rng-stream
// parity, full-live equivalence to the static R(n, q) draw), and fuzzed
// view-diffusion convergence over the real diffusion/ gossip engine.
#include <cstdint>
#include <memory>
#include <vector>

#include <gtest/gtest.h>

#include "core/random_subset_system.h"
#include "diffusion/gossip.h"
#include "math/rng.h"
#include "math/sampling.h"
#include "quorum/bitset.h"
#include "quorum/membership.h"
#include "replica/fault.h"
#include "replica/instant_cluster.h"
#include "replica/server.h"

namespace pqs::quorum {
namespace {

TEST(MembershipView, ConstructionAndAccessors) {
  const MembershipView view(10, 7);
  EXPECT_EQ(view.capacity(), 10u);
  EXPECT_EQ(view.live_count(), 7u);
  EXPECT_EQ(view.epoch(), 0u);
  for (ServerId u = 0; u < 10; ++u) EXPECT_EQ(view.is_live(u), u < 7);

  const MembershipView full = MembershipView::full(65);
  EXPECT_EQ(full.live_count(), 65u);
  EXPECT_TRUE(full.is_live(64));

  const MembershipView empty;
  EXPECT_EQ(empty.capacity(), 0u);
  EXPECT_EQ(empty.live_count(), 0u);
}

TEST(MembershipView, EpochMonotonicityAndRoundTrips) {
  MembershipView view(8, 6);  // live: {0..5}
  EXPECT_EQ(view.epoch(), 0u);

  view.join(7);
  EXPECT_EQ(view.epoch(), 1u);
  EXPECT_TRUE(view.is_live(7));
  EXPECT_EQ(view.live_count(), 7u);

  view.leave(7);
  EXPECT_EQ(view.epoch(), 2u);
  EXPECT_FALSE(view.is_live(7));
  EXPECT_EQ(view.live_count(), 6u);
  // join + leave restores the mask but never the epoch: generations only
  // move forward.
  EXPECT_TRUE(view.live_mask().equals(MembershipView(8, 6).live_mask()));

  view.replace(/*victim=*/2, /*joiner=*/6);
  EXPECT_EQ(view.epoch(), 3u);
  EXPECT_FALSE(view.is_live(2));
  EXPECT_TRUE(view.is_live(6));
  EXPECT_EQ(view.live_count(), 6u);

  // In-place replacement: same mask, new generation — the slot's occupant
  // changed even though the membership set did not.
  const QuorumBitset before = view.live_mask();
  view.replace(3, 3);
  EXPECT_EQ(view.epoch(), 4u);
  EXPECT_TRUE(view.live_mask().equals(before));
}

TEST(MembershipView, MergeAdoptsHigherEpochAndUnionsEqualEpochs) {
  MembershipView a(8, 8);
  MembershipView b = a;
  b.leave(3);  // epoch 1
  EXPECT_TRUE(a.merge(b));
  EXPECT_TRUE(a.equals(b));
  EXPECT_FALSE(a.merge(b));  // idempotent

  // Lower epoch never wins.
  const MembershipView stale(8, 8);
  EXPECT_FALSE(a.merge(stale));
  EXPECT_EQ(a.epoch(), 1u);

  // Equal epochs union their masks.
  MembershipView x(8, 8);
  MembershipView y(8, 8);
  x.leave(1);  // live = all but 1, epoch 1
  y.leave(5);  // live = all but 5, epoch 1
  MembershipView xy = x;
  EXPECT_TRUE(xy.merge(y));
  EXPECT_EQ(xy.epoch(), 1u);
  EXPECT_TRUE(xy.is_live(1));
  EXPECT_TRUE(xy.is_live(5));
  EXPECT_EQ(xy.live_count(), 8u);

  // The empty view is the bottom element: merging it changes nothing, and
  // merging *into* it adopts wholesale.
  MembershipView bottom;
  EXPECT_FALSE(xy.merge(bottom));
  EXPECT_TRUE(bottom.merge(xy));
  EXPECT_TRUE(bottom.equals(xy));
}

// A random view: a fresh full view advanced by `ops` random changes.
MembershipView random_view(std::uint32_t capacity, std::uint32_t ops,
                           math::Rng& rng) {
  MembershipView view = MembershipView::full(capacity);
  for (std::uint32_t i = 0; i < ops; ++i) {
    const auto rank =
        static_cast<std::uint32_t>(rng.below(view.live_count()));
    const ServerId victim = view.nth_live(rank);
    if (view.live_count() > capacity / 2 && rng.chance(0.4)) {
      view.leave(victim);
    } else if (view.live_count() < capacity && rng.chance(0.5)) {
      // Join the lowest dead slot.
      for (ServerId u = 0; u < capacity; ++u) {
        if (!view.is_live(u)) {
          view.join(u);
          break;
        }
      }
    } else {
      view.replace(victim, victim);
    }
  }
  return view;
}

TEST(MembershipView, FuzzedMergeLatticeLaws) {
  math::Rng rng(411);
  for (int trial = 0; trial < 200; ++trial) {
    const std::uint32_t capacity = 4 + static_cast<std::uint32_t>(
                                           rng.below(90));
    const MembershipView a =
        random_view(capacity, static_cast<std::uint32_t>(rng.below(8)), rng);
    const MembershipView b =
        random_view(capacity, static_cast<std::uint32_t>(rng.below(8)), rng);
    const MembershipView c =
        random_view(capacity, static_cast<std::uint32_t>(rng.below(8)), rng);

    // Commutativity: a ⊔ b == b ⊔ a.
    MembershipView ab = a;
    ab.merge(b);
    MembershipView ba = b;
    ba.merge(a);
    ASSERT_TRUE(ab.equals(ba)) << "trial " << trial;

    // Associativity: (a ⊔ b) ⊔ c == a ⊔ (b ⊔ c).
    MembershipView ab_c = ab;
    ab_c.merge(c);
    MembershipView bc = b;
    bc.merge(c);
    MembershipView a_bc = a;
    a_bc.merge(bc);
    ASSERT_TRUE(ab_c.equals(a_bc)) << "trial " << trial;

    // Idempotence: x ⊔ x == x, and re-merging an absorbed view reports no
    // change.
    MembershipView aa = a;
    ASSERT_FALSE(aa.merge(a));
    ASSERT_TRUE(aa.equals(a));
    ASSERT_FALSE(ab.merge(b)) << "trial " << trial;
  }
}

TEST(MembershipView, NthLiveMatchesScan) {
  math::Rng rng(733);
  for (int trial = 0; trial < 50; ++trial) {
    const std::uint32_t capacity =
        1 + static_cast<std::uint32_t>(rng.below(200));
    const MembershipView view =
        random_view(capacity, static_cast<std::uint32_t>(rng.below(12)), rng);
    std::vector<ServerId> live;
    for (ServerId u = 0; u < capacity; ++u) {
      if (view.is_live(u)) live.push_back(u);
    }
    ASSERT_EQ(live.size(), view.live_count());
    for (std::uint32_t r = 0; r < view.live_count(); ++r) {
      ASSERT_EQ(view.nth_live(r), live[r]) << "trial " << trial;
    }
  }
}

// or_expand (the scattered sibling of or_shifted) against the nth_live
// reference, fuzzed over live masks straddling word boundaries.
TEST(MembershipView, OrExpandMatchesRankTranslation) {
  math::Rng rng(947);
  for (int trial = 0; trial < 300; ++trial) {
    const std::uint32_t capacity =
        2 + static_cast<std::uint32_t>(rng.below(300));
    const MembershipView view =
        random_view(capacity, static_cast<std::uint32_t>(rng.below(10)), rng);
    const std::uint32_t live = view.live_count();
    const auto q = static_cast<std::uint32_t>(rng.below(live)) + 1;

    // Compact draw, expanded two ways from identical rng states.
    math::Rng draw_a(1000 + trial);
    math::Rng draw_b = draw_a;
    QuorumBitset mask;
    std::vector<std::uint64_t> scratch;
    view.sample_live_mask(q, draw_a, mask, scratch);

    Quorum members;
    view.sample_live_into(q, draw_b, members);

    ASSERT_EQ(mask.count(), q);
    ASSERT_EQ(members.size(), q);
    QuorumBitset reference(capacity);
    reference.assign(members);
    ASSERT_TRUE(mask.equals(reference)) << "trial " << trial;
    // Identical rng consumption on both paths.
    ASSERT_EQ(draw_a.next(), draw_b.next()) << "trial " << trial;
    // Every drawn member is live.
    for (const ServerId u : members) ASSERT_TRUE(view.is_live(u));
  }
}

// With every slot live, the view-aware draw must consume the exact rng
// stream of the static R(n, q) mask draw — the bridge that keeps dynamic
// clusters bit-identical to static ones until the first membership event.
TEST(MembershipView, FullViewMatchesStaticRandomSubsetDraw) {
  const std::uint32_t n = 130, q = 27;
  const core::RandomSubsetSystem system(n, q);
  const MembershipView view = MembershipView::full(n);
  math::Rng rng_static(55);
  math::Rng rng_view(55);
  QuorumBitset static_mask, view_mask;
  std::vector<std::uint64_t> scratch;
  for (int i = 0; i < 25; ++i) {
    system.sample_mask(static_mask, rng_static);
    view.sample_live_mask(q, rng_view, view_mask, scratch);
    ASSERT_TRUE(static_mask.equals(view_mask)) << "draw " << i;
  }
  EXPECT_EQ(rng_static.next(), rng_view.next());
}

// View diffusion over the real gossip engine: one server learns a
// reconfiguration; epidemic push must converge every correct server to the
// supremum, across fuzzed fleet sizes, fanouts, seeds, and divergent
// equal-epoch partitions.
TEST(MembershipView, FuzzedGossipDiffusionConverges) {
  math::Rng fuzz(17);
  for (int trial = 0; trial < 20; ++trial) {
    const std::uint32_t n = 6 + static_cast<std::uint32_t>(fuzz.below(26));
    const auto fanout = static_cast<std::uint32_t>(1 + fuzz.below(3));
    math::Rng server_rng(100 + trial);
    std::vector<std::unique_ptr<replica::Server>> servers;
    servers.reserve(n);
    for (std::uint32_t i = 0; i < n; ++i) {
      servers.push_back(std::make_unique<replica::Server>(
          i, replica::FaultMode::kCorrect, server_rng.fork()));
    }

    // A partition-shaped start: two servers hold divergent equal-epoch
    // views (each saw a different slot leave), the rest know nothing. The
    // supremum is the union at that epoch.
    MembershipView left = MembershipView::full(n);
    MembershipView right = MembershipView::full(n);
    left.leave(ServerId{0});
    right.leave(n - 1);
    servers[0]->install_membership(left);
    servers[n / 2]->install_membership(right);

    diffusion::GossipEngine engine({fanout, /*verify=*/false});
    math::Rng gossip_rng(900 + trial);
    std::uint64_t view_pushes = 0;
    std::uint64_t view_adoptions = 0;
    bool converged = false;
    for (int round = 0; round < 200 && !converged; ++round) {
      const auto stats = engine.run_round(servers, gossip_rng);
      view_pushes += stats.view_pushes;
      view_adoptions += stats.view_adoptions;
      converged =
          diffusion::GossipEngine::view_agreement(servers) == 1.0;
    }
    ASSERT_TRUE(converged) << "trial " << trial << " n=" << n
                           << " fanout=" << fanout;
    EXPECT_GT(view_pushes, 0u);
    // Everyone but the two initial holders adopted at least once, and the
    // holders adopted each other's half.
    EXPECT_GE(view_adoptions, static_cast<std::uint64_t>(n));
    // The converged view is the union: both departures visible, epoch 1.
    const auto& final_view = servers[1]->membership();
    EXPECT_EQ(final_view.epoch(), 1u);
    EXPECT_TRUE(final_view.is_live(ServerId{0}));
    EXPECT_TRUE(final_view.is_live(n - 1));
  }
}

// The cluster-level membership surface: reconfigurations bump the view
// epoch, replace installs a fresh server, and churn draws never touch the
// quorum stream.
TEST(MembershipView, InstantClusterMembershipRoundTrip) {
  const std::uint32_t n = 16, q = 5;
  replica::InstantCluster::Config cfg;
  cfg.quorums = std::make_shared<core::RandomSubsetSystem>(n, q);
  cfg.seed = 7;
  cfg.dynamic_membership = true;
  cfg.initial_live = 14;
  replica::InstantCluster cluster(cfg);
  EXPECT_EQ(cluster.view_epoch(), 0u);
  EXPECT_EQ(cluster.view().live_count(), 14u);

  // Write something so the replaced slot's emptiness is observable.
  auto w = cluster.write(/*variable=*/1, /*value=*/42);
  EXPECT_EQ(w.acks, q);

  cluster.join(15);
  EXPECT_EQ(cluster.view_epoch(), 1u);
  EXPECT_EQ(cluster.view().live_count(), 15u);
  // The joiner was installed fresh and told the current view.
  EXPECT_TRUE(cluster.server(15).membership().equals(cluster.view()));

  cluster.leave(15);
  EXPECT_EQ(cluster.view_epoch(), 2u);
  EXPECT_EQ(cluster.view().live_count(), 14u);

  const ServerId replaced = cluster.churn_replace();
  EXPECT_EQ(cluster.view_epoch(), 3u);
  EXPECT_TRUE(cluster.view().is_live(replaced));
  // The fresh occupant stores nothing yet.
  EXPECT_EQ(cluster.server(replaced).find(1), nullptr);
  EXPECT_EQ(cluster.server(replaced).writes_accepted(), 0u);

  cluster.run_churn(5);
  EXPECT_EQ(cluster.view_epoch(), 8u);
  EXPECT_EQ(cluster.view().live_count(), 14u);
}

}  // namespace
}  // namespace pqs::quorum

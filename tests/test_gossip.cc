#include "diffusion/gossip.h"

#include <memory>

#include <gtest/gtest.h>

#include "core/epsilon.h"
#include "core/random_subset_system.h"
#include "math/stats.h"
#include "replica/instant_cluster.h"

namespace pqs::diffusion {
namespace {

using replica::FaultMode;
using replica::FaultPlan;
using replica::InstantCluster;
using replica::ReadMode;

InstantCluster::Config config(std::uint32_t n, std::uint32_t q,
                              std::uint64_t seed) {
  InstantCluster::Config cfg;
  cfg.quorums = std::make_shared<core::RandomSubsetSystem>(n, q);
  cfg.seed = seed;
  return cfg;
}

TEST(Gossip, SpreadsFreshValueToAllCorrectServers) {
  InstantCluster cluster(config(30, 6, 1));
  const auto w = cluster.write(1, 42);
  GossipEngine engine({.fanout = 2, .verify = false});
  EXPECT_LT(GossipEngine::coverage(cluster.servers(), 1, w.timestamp), 0.5);
  engine.run_rounds(cluster.servers(), 8, cluster.rng());
  EXPECT_DOUBLE_EQ(GossipEngine::coverage(cluster.servers(), 1, w.timestamp),
                   1.0);
}

TEST(Gossip, CoverageGrowsMonotonically) {
  InstantCluster cluster(config(100, 10, 2));
  const auto w = cluster.write(1, 7);
  GossipEngine engine({.fanout = 1, .verify = false});
  double prev = GossipEngine::coverage(cluster.servers(), 1, w.timestamp);
  for (int round = 0; round < 12; ++round) {
    engine.run_round(cluster.servers(), cluster.rng());
    const double cur = GossipEngine::coverage(cluster.servers(), 1, w.timestamp);
    EXPECT_GE(cur, prev);
    prev = cur;
  }
  EXPECT_GT(prev, 0.9);
}

TEST(Gossip, DrivesStalenessTowardZero) {
  // Section 1.1's claim, measured: with diffusion between write and read,
  // the staleness probability drops far below the quorum-only epsilon.
  const std::uint32_t n = 64, q = 8;  // coarse: eps ~ e^{-1} without gossip
  const double eps = core::nonintersection_exact(n, q);
  ASSERT_GT(eps, 0.2);
  for (std::uint32_t rounds : {0u, 2u, 5u}) {
    InstantCluster cluster(config(n, q, 3 + rounds));
    GossipEngine engine({.fanout = 2, .verify = false});
    math::Proportion stale;
    std::int64_t value = 0;
    for (int i = 0; i < 2000; ++i) {
      cluster.write(1, ++value);
      engine.run_rounds(cluster.servers(), rounds, cluster.rng());
      const auto r = cluster.read(1);
      stale.add(!(r.selection.has_value && r.selection.record.value == value));
    }
    if (rounds == 0) {
      EXPECT_GT(stale.estimate(), eps / 2);
    } else if (rounds == 5) {
      EXPECT_LT(stale.estimate(), eps / 20);
    }
  }
}

TEST(Gossip, UnverifiedDiffusionIsPoisonedByForgers) {
  const std::uint32_t n = 30, b = 6;
  InstantCluster cluster(config(n, 8, 4),
                         FaultPlan::prefix(n, b, FaultMode::kForge));
  // Several writes so that the forgers (who ack but do not adopt) learn the
  // variable with near-certainty and have something to lie about.
  replica::WriteResult w;
  for (int i = 0; i < 5; ++i) w = cluster.write(1, 42);
  GossipEngine engine({.fanout = 2, .verify = false});
  engine.run_rounds(cluster.servers(), 6, cluster.rng());
  // Forged records carry astronomically fresh timestamps; without
  // verification they displace the genuine value on correct servers.
  int poisoned = 0;
  for (auto& s : cluster.servers()) {
    if (s->mode() != FaultMode::kCorrect) continue;
    const auto* rec = s->find(1);
    if (rec != nullptr && rec->timestamp > w.timestamp) ++poisoned;
  }
  EXPECT_GT(poisoned, 0);
}

TEST(Gossip, VerifiedDiffusionResistsForgers) {
  const std::uint32_t n = 30, b = 6;
  InstantCluster cluster(config(n, 8, 5),
                         FaultPlan::prefix(n, b, FaultMode::kForge));
  replica::WriteResult w;
  for (int i = 0; i < 5; ++i) w = cluster.write(1, 42);
  GossipEngine engine({.fanout = 2, .verify = true}, cluster.verifier());
  const auto stats = engine.run_rounds(cluster.servers(), 10, cluster.rng());
  EXPECT_GT(stats.rejected, 0u);  // forged pushes were seen and dropped
  for (auto& s : cluster.servers()) {
    if (s->mode() != FaultMode::kCorrect) continue;
    const auto* rec = s->find(1);
    if (rec != nullptr) {
      EXPECT_LE(rec->timestamp, w.timestamp);
      EXPECT_EQ(rec->value, 42);
    }
  }
  EXPECT_DOUBLE_EQ(GossipEngine::coverage(cluster.servers(), 1, w.timestamp),
                   1.0);
}

TEST(Gossip, CrashedServersNeitherSendNorReceive) {
  const std::uint32_t n = 20;
  InstantCluster cluster(config(n, 5, 6),
                         FaultPlan::prefix(n, 5, FaultMode::kCrash));
  const auto w = cluster.write(1, 9);
  GossipEngine engine({.fanout = 3, .verify = false});
  engine.run_rounds(cluster.servers(), 10, cluster.rng());
  for (std::uint32_t i = 0; i < 5; ++i) {
    EXPECT_EQ(cluster.server(i).find(1), nullptr);
  }
  EXPECT_DOUBLE_EQ(GossipEngine::coverage(cluster.servers(), 1, w.timestamp),
                   1.0);
}

TEST(Gossip, StatsAccounting) {
  InstantCluster cluster(config(10, 3, 7));
  cluster.write(1, 1);
  GossipEngine engine({.fanout = 2, .verify = false});
  const auto stats = engine.run_round(cluster.servers(), cluster.rng());
  EXPECT_GT(stats.pushes, 0u);
  EXPECT_LE(stats.adoptions, stats.pushes);
  EXPECT_EQ(stats.rejected, 0u);
}

TEST(Gossip, ConfigValidation) {
  EXPECT_THROW(GossipEngine({.fanout = 0, .verify = false}),
               std::invalid_argument);
  EXPECT_THROW(GossipEngine({.fanout = 2, .verify = true}),
               std::invalid_argument);
}

}  // namespace
}  // namespace pqs::diffusion

// The load/contention observability layer.
//
// Three contracts:
//   * estimate_load_profile (the column-accumulate kernel path) is
//     bit-identical to the pre-kernel per-bit walk — same draws, same hit
//     counts — at 1, 2, and 8 threads, and the estimate_server_loads /
//     estimate_load wrappers are pure views of the profile;
//   * measured profiles of the constructions match the closed-form
//     per-server loads in quorum/measures.h — the symmetric grid, the
//     per-row wall formula, and the weighted-voting permutation-prefix
//     formula (a counting knapsack, exercised against a heterogeneous
//     vote vector);
//   * ContentionSnapshot aggregates replica::Server counters faithfully,
//     snapshot_delta isolates one phase's traffic, and
//     InstantCluster::read_repair_into pushes the selected record to
//     exactly the stale quorum members.
#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <vector>

#include "core/estimator.h"
#include "core/monte_carlo.h"
#include "core/random_subset_system.h"
#include "math/rng.h"
#include "quorum/bitset.h"
#include "quorum/grid.h"
#include "quorum/measures.h"
#include "quorum/threshold.h"
#include "quorum/wall.h"
#include "quorum/weighted.h"
#include "replica/instant_cluster.h"
#include "stats/counters.h"
#include "stats/load_profile.h"

namespace pqs {
namespace {

// ---- LoadProfile accessors -------------------------------------------------

TEST(LoadProfile, DerivesShapeMeasuresFromHitCounts) {
  const stats::LoadProfile p({8, 2, 0, 6}, 10);
  EXPECT_EQ(p.universe_size(), 4u);
  EXPECT_EQ(p.samples(), 10u);
  EXPECT_DOUBLE_EQ(p.load(0), 0.8);
  EXPECT_DOUBLE_EQ(p.load(2), 0.0);
  EXPECT_DOUBLE_EQ(p.max_load(), 0.8);
  // 16 hits over 4 servers x 10 samples.
  EXPECT_DOUBLE_EQ(p.mean_load(), 0.4);
  EXPECT_DOUBLE_EQ(p.imbalance(), 2.0);
  const auto top = p.hottest(2);
  ASSERT_EQ(top.size(), 2u);
  EXPECT_EQ(top[0].server, 0u);
  EXPECT_EQ(top[0].hits, 8u);
  EXPECT_DOUBLE_EQ(top[0].load, 0.8);
  EXPECT_EQ(top[1].server, 3u);
  // Asking for more entries than servers returns them all.
  EXPECT_EQ(p.hottest(10).size(), 4u);
}

TEST(LoadProfile, HottestBreaksTiesByLowerId) {
  const stats::LoadProfile p({3, 5, 5, 1}, 10);
  const auto top = p.hottest(3);
  ASSERT_EQ(top.size(), 3u);
  EXPECT_EQ(top[0].server, 1u);
  EXPECT_EQ(top[1].server, 2u);
  EXPECT_EQ(top[2].server, 0u);
}

TEST(LoadProfile, MergeAddsHitsAndSamples) {
  stats::LoadProfile acc;
  acc.merge(stats::LoadProfile({1, 2}, 4));
  acc.merge(stats::LoadProfile({3, 0}, 6));
  EXPECT_EQ(acc.hits(), (std::vector<std::uint64_t>{4, 2}));
  EXPECT_EQ(acc.samples(), 10u);
  EXPECT_DOUBLE_EQ(acc.load(0), 0.4);
}

TEST(LoadProfile, EmptyProfileIsInert) {
  const stats::LoadProfile p;
  EXPECT_DOUBLE_EQ(p.max_load(), 0.0);
  EXPECT_DOUBLE_EQ(p.mean_load(), 0.0);
  EXPECT_DOUBLE_EQ(p.imbalance(), 0.0);
  EXPECT_TRUE(p.hottest(3).empty());
}

// ---- kernel path vs the pre-kernel bit walk --------------------------------

// The shard body estimate_server_loads ran before the column-accumulate
// kernel existed: one sample_mask per draw, hits counted by walking set
// bits. sample_masks consumes the rng exactly like successive sample_mask
// calls, so for any fixed seed the kernelized estimator must reproduce
// these counts bit for bit.
std::vector<std::uint64_t> bitwalk_hits(const quorum::QuorumSystem& sys,
                                        std::uint64_t samples, math::Rng& rng,
                                        core::Estimator& engine) {
  const std::uint32_t n = sys.universe_size();
  return engine.run_trials<std::vector<std::uint64_t>>(
      samples, rng,
      [&](std::uint32_t, std::uint64_t shard_samples, math::Rng& shard_rng) {
        std::vector<std::uint64_t> hits(n, 0);
        quorum::QuorumBitset mask(n);
        for (std::uint64_t s = 0; s < shard_samples; ++s) {
          sys.sample_mask(mask, shard_rng);
          mask.for_each_set_bit([&hits](quorum::ServerId u) { ++hits[u]; });
        }
        return hits;
      },
      [n](std::vector<std::uint64_t>& acc,
          const std::vector<std::uint64_t>& part) {
        acc.resize(n, 0);
        for (std::uint32_t u = 0; u < n; ++u) acc[u] += part[u];
      });
}

TEST(EstimateLoadProfile, BitIdenticalToPreKernelWalkAcrossThreadCounts) {
  constexpr std::uint64_t kSamples = 20000;
  constexpr std::uint64_t kSeed = 0x10adbeef;
  const core::RandomSubsetSystem subset(150, 40);
  const auto grid = quorum::GridSystem::square(100);
  const quorum::ThresholdSystem threshold(100, 51);
  const quorum::QuorumSystem* systems[] = {&subset, &grid, &threshold};
  for (const quorum::QuorumSystem* sys : systems) {
    for (unsigned threads : {1u, 2u, 8u}) {
      core::Estimator engine({threads});
      math::Rng rng_walk(kSeed), rng_kernel(kSeed);
      const auto walk = bitwalk_hits(*sys, kSamples, rng_walk, engine);
      const auto profile =
          core::estimate_load_profile(*sys, kSamples, rng_kernel, engine);
      EXPECT_EQ(profile.hits(), walk)
          << sys->name() << " at " << threads << " threads";
      EXPECT_EQ(profile.samples(), kSamples);
    }
  }
}

TEST(EstimateLoadProfile, WrappersAreViewsOfTheProfile) {
  constexpr std::uint64_t kSamples = 5000;
  const quorum::ThresholdSystem sys(64, 33);
  core::Estimator engine({2});
  math::Rng rng_profile(42), rng_loads(42), rng_load(42);
  const auto profile =
      core::estimate_load_profile(sys, kSamples, rng_profile, engine);
  EXPECT_EQ(core::estimate_server_loads(sys, kSamples, rng_loads, engine),
            profile.loads());
  EXPECT_DOUBLE_EQ(core::estimate_load(sys, kSamples, rng_load, engine),
                   profile.max_load());
  // All three consumed the caller generator identically (one fork each).
  EXPECT_EQ(rng_profile.next(), rng_loads.next());
}

// ---- closed-form conformance -----------------------------------------------

TEST(EstimateLoadProfile, GridMatchesClosedFormPerServerLoad) {
  constexpr std::uint64_t kSamples = 40000;
  const quorum::GridSystem sys(8, 8, 1);
  core::Estimator engine({2});
  math::Rng rng(7);
  const auto profile = core::estimate_load_profile(sys, kSamples, rng, engine);
  const double expected = quorum::grid_server_load(8, 8, 1);
  EXPECT_DOUBLE_EQ(expected, sys.load());
  // ~5 sigma of a Bernoulli(0.23) estimate at 40k samples is ~0.011.
  for (std::uint32_t u = 0; u < sys.universe_size(); ++u) {
    EXPECT_NEAR(profile.load(u), expected, 0.02) << "server " << u;
  }
  // Every server symmetric: the profile must come out nearly flat.
  EXPECT_NEAR(profile.mean_load(), expected, 0.005);
  EXPECT_LT(profile.imbalance(), 1.1);
}

TEST(EstimateLoadProfile, WallMatchesClosedFormPerRowLoad) {
  constexpr std::uint64_t kSamples = 40000;
  const auto sys = quorum::WallSystem::uniform(4, 6);  // 4 rows of width 6
  core::Estimator engine({2});
  math::Rng rng(8);
  const auto profile = core::estimate_load_profile(sys, kSamples, rng, engine);
  double expected_max = 0.0;
  for (std::uint32_t row = 0; row < 4; ++row) {
    const double expected = quorum::wall_server_load(sys.widths(), row);
    expected_max = std::max(expected_max, expected);
    for (std::uint32_t i = 0; i < 6; ++i) {
      EXPECT_NEAR(profile.load(row * 6 + i), expected, 0.02)
          << "row " << row << " slot " << i;
    }
  }
  EXPECT_DOUBLE_EQ(expected_max, sys.load());
  EXPECT_NEAR(profile.max_load(), sys.load(), 0.02);
  // The bottom row carries the most representative duty: it must surface
  // in the hot list.
  const auto top = profile.hottest(6);
  ASSERT_EQ(top.size(), 6u);
  for (const auto& hot : top) {
    EXPECT_GE(hot.server, 18u) << "hot server outside the bottom row";
  }
}

TEST(WeightedServerLoad, UnitVotesReduceToThePrefixFormula) {
  // Unit votes, T of n: the quorum is always the first T servers of the
  // permutation, so every server is used with probability exactly T/n.
  const std::vector<std::uint32_t> votes(5, 1);
  for (std::uint32_t u = 0; u < 5; ++u) {
    EXPECT_DOUBLE_EQ(quorum::weighted_server_load(votes, 3, u), 0.6);
  }
}

TEST(EstimateLoadProfile, WeightedVotingMatchesClosedFormPerServerLoad) {
  constexpr std::uint64_t kSamples = 40000;
  const std::vector<std::uint32_t> votes{4, 3, 2, 1, 1, 1};  // V = 12
  constexpr std::uint32_t kThreshold = 7;                    // 2T > V
  const quorum::WeightedVotingSystem sys(votes, kThreshold);
  core::Estimator engine({2});
  math::Rng rng(9);
  const auto profile = core::estimate_load_profile(sys, kSamples, rng, engine);
  double max_expected = 0.0;
  for (std::uint32_t u = 0; u < sys.universe_size(); ++u) {
    const double expected =
        quorum::weighted_server_load(votes, kThreshold, u);
    max_expected = std::max(max_expected, expected);
    EXPECT_NEAR(profile.load(u), expected, 0.02) << "server " << u;
  }
  // Servers with equal votes are exchangeable: identical closed-form load.
  EXPECT_DOUBLE_EQ(quorum::weighted_server_load(votes, kThreshold, 3),
                   quorum::weighted_server_load(votes, kThreshold, 4));
  EXPECT_DOUBLE_EQ(quorum::weighted_server_load(votes, kThreshold, 4),
                   quorum::weighted_server_load(votes, kThreshold, 5));
  // More votes means more duty (the Gifford skew the construction is in
  // the baseline set to demonstrate).
  EXPECT_GT(quorum::weighted_server_load(votes, kThreshold, 0),
            quorum::weighted_server_load(votes, kThreshold, 1));
  EXPECT_GT(quorum::weighted_server_load(votes, kThreshold, 1),
            quorum::weighted_server_load(votes, kThreshold, 5));
  // The system's own (fixed-seed Monte-Carlo) load agrees with the exact
  // maximum, and the vote-4 server is the hot one.
  EXPECT_NEAR(sys.load(), max_expected, 0.01);
  EXPECT_NEAR(profile.max_load(), max_expected, 0.02);
  EXPECT_EQ(profile.hottest(1).at(0).server, 0u);
}

// ---- contention snapshots --------------------------------------------------

std::shared_ptr<const quorum::QuorumSystem> small_threshold() {
  return std::make_shared<quorum::ThresholdSystem>(5, 3);
}

TEST(ContentionSnapshot, MirrorsServerCountersAndAggregates) {
  replica::InstantCluster::Config cfg;
  cfg.quorums = small_threshold();
  cfg.seed = 99;
  replica::InstantCluster cluster(cfg);
  // Two writers race on one key. Writer 2 goes first each round, so
  // writer 1's same-sequence write carries the lower timestamp
  // ((s << 16) | 1 < (s << 16) | 2) and majority overlap guarantees at
  // least one server per round holds the newer record already — a
  // superseded delivery.
  for (std::int64_t i = 0; i < 50; ++i) {
    cluster.write_as(2, 7, 100 + i);
    cluster.write_as(1, 7, i);
    cluster.read(7);
  }
  const stats::ContentionSnapshot snap = cluster.contention_snapshot();
  ASSERT_EQ(snap.universe_size(), 5u);
  stats::ServerCounters manual_total;
  for (std::uint32_t u = 0; u < 5; ++u) {
    const replica::Server& server = cluster.server(u);
    EXPECT_EQ(snap.server(u).writes_accepted, server.writes_accepted());
    EXPECT_EQ(snap.server(u).reads_served, server.reads_served());
    EXPECT_EQ(snap.server(u).writes_superseded, server.writes_superseded());
    manual_total += snap.server(u);
  }
  const stats::ServerCounters totals = snap.totals();
  EXPECT_EQ(totals, manual_total);
  EXPECT_EQ(totals.writes_accepted, 300u);  // 100 writes x 3-server quorums
  EXPECT_EQ(totals.reads_served, 150u);
  EXPECT_GT(totals.writes_superseded, 0u);
  EXPECT_GT(snap.superseded_rate(), 0.0);
  EXPECT_LT(snap.superseded_rate(), 1.0);

  // Shard folding: merging a snapshot into itself doubles every counter.
  stats::ContentionSnapshot merged = snap;
  merged.merge(snap);
  for (std::uint32_t u = 0; u < 5; ++u) {
    EXPECT_EQ(merged.server(u).writes_accepted,
              2 * snap.server(u).writes_accepted);
  }
  stats::ContentionSnapshot empty;
  empty.merge(snap);
  EXPECT_TRUE(empty == snap);
}

TEST(ContentionSnapshot, SnapshotDeltaIsolatesOnePhase) {
  replica::InstantCluster::Config cfg;
  cfg.quorums = small_threshold();
  cfg.seed = 31;
  replica::InstantCluster cluster(cfg);
  for (std::int64_t i = 0; i < 20; ++i) cluster.write(3, i);
  const stats::ContentionSnapshot before = cluster.contention_snapshot();
  for (std::int64_t i = 0; i < 10; ++i) {
    cluster.write(3, 100 + i);
    cluster.read(3);
  }
  const stats::ContentionSnapshot after = cluster.contention_snapshot();
  const stats::ContentionSnapshot delta = stats::snapshot_delta(before, after);
  ASSERT_EQ(delta.universe_size(), 5u);
  for (std::uint32_t u = 0; u < 5; ++u) {
    stats::ServerCounters manual = after.server(u);
    manual -= before.server(u);
    EXPECT_EQ(delta.server(u), manual) << "server " << u;
  }
  // The phase alone: 10 writes and 10 reads over 3-server quorums.
  EXPECT_EQ(delta.totals().writes_accepted, 30u);
  EXPECT_EQ(delta.totals().reads_served, 30u);
  // An empty `before` is the all-zero snapshot: the delta is `after`.
  EXPECT_TRUE(stats::snapshot_delta(stats::ContentionSnapshot(), after) ==
              after);
  // Delta against itself is zero everywhere.
  const stats::ContentionSnapshot zero = stats::snapshot_delta(after, after);
  EXPECT_EQ(zero.totals().writes_accepted, 0u);
  EXPECT_EQ(zero.totals().reads_served, 0u);
  EXPECT_EQ(zero.totals().writes_superseded, 0u);
}

// ---- read repair -----------------------------------------------------------

TEST(ReadRepair, PushesSelectedRecordToStaleQuorumMembers) {
  replica::InstantCluster::Config cfg;
  cfg.quorums = small_threshold();
  cfg.seed = 1234;
  replica::InstantCluster cluster(cfg);

  // A read before any write selects nothing and repairs nothing.
  replica::ReadResult r;
  cluster.read_repair_into(r, 7);
  EXPECT_FALSE(r.selection.has_value);
  EXPECT_EQ(r.repairs, 0u);

  // Two writes land on (generally) different quorums, leaving some servers
  // stale. Majority quorums always intersect the second write's quorum, so
  // every repair'd read selects the newest record.
  const auto w1 = cluster.write(7, 1);
  const auto w2 = cluster.write(7, 2);
  ASSERT_GT(w2.timestamp, w1.timestamp);

  std::uint32_t total_repairs = 0;
  for (int i = 0; i < 200; ++i) {
    cluster.read_repair_into(r, 7);
    ASSERT_TRUE(r.selection.has_value);
    EXPECT_EQ(r.selection.record.timestamp, w2.timestamp);
    total_repairs += r.repairs;
    // Post-condition: every member of this read quorum now stores a record
    // at least as fresh as what the read returned.
    for (const auto u : r.quorum) {
      const auto* rec = cluster.server(u).find(7);
      ASSERT_NE(rec, nullptr);
      EXPECT_GE(rec->timestamp, r.selection.record.timestamp);
    }
  }
  EXPECT_GT(total_repairs, 0u);
  // Repair converges the whole cluster onto the newest record.
  for (std::uint32_t u = 0; u < 5; ++u) {
    const auto* rec = cluster.server(u).find(7);
    ASSERT_NE(rec, nullptr);
    EXPECT_EQ(rec->timestamp, w2.timestamp);
    EXPECT_EQ(rec->value, 2);
  }
  // Once converged, further repair'd reads push nothing.
  cluster.read_repair_into(r, 7);
  EXPECT_EQ(r.repairs, 0u);
}

}  // namespace
}  // namespace pqs

// QuorumBitset's word-parallel set algebra must agree with the sorted-vector
// routines it replaced, and every construction's sample_into fast path must
// reproduce sample() draw-for-draw.
#include "quorum/bitset.h"

#include <memory>
#include <vector>

#include <gtest/gtest.h>

#include "core/random_subset_system.h"
#include "math/rng.h"
#include "math/sampling.h"
#include "quorum/grid.h"
#include "quorum/set_system.h"
#include "quorum/singleton.h"
#include "quorum/threshold.h"
#include "quorum/wall.h"
#include "quorum/weighted.h"

namespace pqs::quorum {
namespace {

// Reference implementations over sorted vectors (the seed hot path).
std::uint32_t ref_overlap_with_prefix(const Quorum& q, std::uint32_t b) {
  std::uint32_t count = 0;
  for (auto u : q) {
    if (u < b) ++count;
  }
  return count;
}

std::uint32_t ref_overlap_excluding_prefix(const Quorum& a, const Quorum& b,
                                           std::uint32_t prefix) {
  std::uint32_t count = 0;
  for (auto u : a) {
    if (u < prefix) continue;
    for (auto v : b) {
      if (v == u) ++count;
    }
  }
  return count;
}

TEST(QuorumBitset, BasicSetAndTest) {
  QuorumBitset bs(130);  // spans three words
  EXPECT_EQ(bs.universe_size(), 130u);
  EXPECT_EQ(bs.count(), 0u);
  bs.set(0);
  bs.set(63);
  bs.set(64);
  bs.set(129);
  EXPECT_TRUE(bs.test(0));
  EXPECT_TRUE(bs.test(63));
  EXPECT_TRUE(bs.test(64));
  EXPECT_TRUE(bs.test(129));
  EXPECT_FALSE(bs.test(1));
  EXPECT_FALSE(bs.test(128));
  EXPECT_EQ(bs.count(), 4u);
  bs.clear();
  EXPECT_EQ(bs.count(), 0u);
  EXPECT_EQ(bs.universe_size(), 130u);
}

TEST(QuorumBitset, AssignAndRoundTrip) {
  const Quorum q{0, 5, 63, 64, 65, 99};
  QuorumBitset bs(100);
  bs.assign(q);
  EXPECT_EQ(bs.to_quorum(), q);
  // Re-assign replaces, not accumulates.
  const Quorum q2{1, 2};
  bs.assign(q2);
  EXPECT_EQ(bs.to_quorum(), q2);
}

TEST(QuorumBitset, CountBelowMatchesReference) {
  math::Rng rng(11);
  for (int trial = 0; trial < 200; ++trial) {
    const std::uint32_t n = 1 + static_cast<std::uint32_t>(rng.below(200));
    const std::uint32_t k = static_cast<std::uint32_t>(rng.below(n + 1));
    const auto q = math::sample_without_replacement(n, k, rng);
    QuorumBitset bs(n);
    bs.assign(q);
    for (std::uint32_t b : {0u, 1u, 63u, 64u, 65u, n / 2, n, n + 10}) {
      EXPECT_EQ(bs.count_below(b), ref_overlap_with_prefix(q, b))
          << "n=" << n << " k=" << k << " b=" << b;
    }
  }
}

TEST(QuorumBitset, IntersectionMatchesSortedRoutines) {
  math::Rng rng(13);
  for (int trial = 0; trial < 200; ++trial) {
    const std::uint32_t n = 1 + static_cast<std::uint32_t>(rng.below(300));
    const auto ka = static_cast<std::uint32_t>(rng.below(n + 1));
    const auto kb = static_cast<std::uint32_t>(rng.below(n + 1));
    const auto a = math::sample_without_replacement(n, ka, rng);
    const auto b = math::sample_without_replacement(n, kb, rng);
    QuorumBitset ba(n), bb(n);
    ba.assign(a);
    bb.assign(b);
    EXPECT_EQ(ba.intersects(bb), math::sorted_intersects(a, b));
    EXPECT_EQ(ba.intersection_count(bb), math::sorted_intersection_size(a, b));
    for (std::uint32_t lo : {0u, 1u, 64u, n / 3, n - 1, n, n + 5}) {
      EXPECT_EQ(ba.intersection_count_from(bb, lo),
                ref_overlap_excluding_prefix(a, b, lo))
          << "n=" << n << " lo=" << lo;
    }
  }
}

TEST(QuorumBitset, ResizeReusesAcrossUniverses) {
  QuorumBitset bs(10);
  bs.set(9);
  bs.resize(200);
  EXPECT_EQ(bs.count(), 0u);  // resize clears
  bs.set(199);
  EXPECT_EQ(bs.count(), 1u);
}

// sample_into must reproduce sample() draw-for-draw from equal rng states,
// for every construction that overrides the fast path.
void expect_sample_into_parity(const QuorumSystem& sys, std::uint64_t seed) {
  math::Rng rng_a(seed), rng_b(seed);
  Quorum scratch;
  for (int draw = 0; draw < 200; ++draw) {
    const Quorum expected = sys.sample(rng_a);
    sys.sample_into(scratch, rng_b);
    ASSERT_EQ(scratch, expected) << sys.name() << " draw " << draw;
  }
}

TEST(SampleInto, MatchesSampleThreshold) {
  expect_sample_into_parity(ThresholdSystem(21, 11), 101);
}

TEST(SampleInto, MatchesSampleRandomSubset) {
  expect_sample_into_parity(core::RandomSubsetSystem(100, 23), 103);
}

TEST(SampleInto, MatchesSampleGrid) {
  expect_sample_into_parity(GridSystem(7, 7, 2), 107);
}

TEST(SampleInto, MatchesSampleWall) {
  expect_sample_into_parity(WallSystem::uniform(4, 6), 109);
}

TEST(SampleInto, MatchesSampleWeighted) {
  std::vector<std::uint32_t> votes(30, 1);
  for (int i = 0; i < 5; ++i) votes[i] = 4;
  expect_sample_into_parity(WeightedVotingSystem(votes, 24), 113);
}

TEST(SampleInto, MatchesSampleSingleton) {
  expect_sample_into_parity(SingletonSystem(10, 3), 127);
}

TEST(SampleInto, MatchesSampleSetSystem) {
  expect_sample_into_parity(SetSystem::all_subsets(6, 3), 131);
}

TEST(SampleInto, ReusesCapacity) {
  const core::RandomSubsetSystem sys(100, 23);
  math::Rng rng(1);
  Quorum q;
  sys.sample_into(q, rng);
  const auto* data = q.data();
  const auto cap = q.capacity();
  for (int i = 0; i < 50; ++i) sys.sample_into(q, rng);
  EXPECT_EQ(q.capacity(), cap);
  EXPECT_EQ(q.data(), data);  // no reallocation across draws
}

}  // namespace
}  // namespace pqs::quorum

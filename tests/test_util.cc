#include <sstream>

#include <gtest/gtest.h>

#include "util/require.h"
#include "util/table.h"

namespace pqs::util {
namespace {

TEST(TextTable, RendersAlignedColumns) {
  TextTable t({"name", "value"});
  t.row().cell("alpha").cell(1);
  t.row().cell("beta-longer").cell(22);
  const std::string out = t.render();
  // Header, rule, two rows.
  EXPECT_EQ(std::count(out.begin(), out.end(), '\n'), 4);
  // All lines equal width (alignment).
  std::istringstream is(out);
  std::string line;
  std::size_t width = 0;
  while (std::getline(is, line)) {
    if (width == 0) width = line.size();
    EXPECT_EQ(line.size(), width) << line;
  }
  EXPECT_NE(out.find("beta-longer"), std::string::npos);
}

TEST(TextTable, NumericFormatting) {
  TextTable t({"a", "b", "c"});
  t.row().cell(3.14159, 2).cell_sci(0.000123, 2).cell(std::size_t{7});
  const std::string out = t.render();
  EXPECT_NE(out.find("3.14"), std::string::npos);
  EXPECT_NE(out.find("1.23e-04"), std::string::npos);
  EXPECT_NE(out.find("7"), std::string::npos);
}

TEST(TextTable, IndentPrefixesEveryLine) {
  TextTable t({"x"});
  t.row().cell(1);
  const std::string out = t.render(4);
  std::istringstream is(out);
  std::string line;
  while (std::getline(is, line)) {
    EXPECT_EQ(line.substr(0, 4), "    ");
  }
}

TEST(TextTable, ShortRowsPadWithEmptyCells) {
  TextTable t({"a", "b"});
  t.row().cell("only-one");
  EXPECT_NO_THROW(t.render());
}

TEST(Fixed, FormatsPrecision) {
  EXPECT_EQ(fixed(1.5, 0), "2");  // rounds
  EXPECT_EQ(fixed(1.25, 2), "1.25");
  EXPECT_EQ(sci(12345.0, 2), "1.23e+04");
}

TEST(Csv, EscapesSpecialCharacters) {
  CsvWriter csv({"k", "v"});
  csv.row({"plain", "with,comma"});
  csv.row({"with\"quote", "with\nnewline"});
  const std::string out = csv.str();
  EXPECT_NE(out.find("k,v\n"), std::string::npos);
  EXPECT_NE(out.find("\"with,comma\""), std::string::npos);
  EXPECT_NE(out.find("\"with\"\"quote\""), std::string::npos);
  EXPECT_NE(out.find("\"with\nnewline\""), std::string::npos);
}

TEST(Banner, ContainsTitle) {
  std::ostringstream os;
  banner(os, "Table 9");
  EXPECT_NE(os.str().find("==== Table 9 ===="), std::string::npos);
}

TEST(Require, ThrowsWithContext) {
  try {
    PQS_REQUIRE(1 == 2, "math is broken");
    FAIL() << "should have thrown";
  } catch (const std::invalid_argument& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("1 == 2"), std::string::npos);
    EXPECT_NE(what.find("math is broken"), std::string::npos);
  }
}

TEST(Check, ThrowsLogicError) {
  EXPECT_THROW(PQS_CHECK(false), std::logic_error);
  EXPECT_NO_THROW(PQS_CHECK(true));
}

}  // namespace
}  // namespace pqs::util

#include <cmath>
#include <memory>

#include <gtest/gtest.h>

#include "core/epsilon.h"
#include "core/random_subset_system.h"
#include "math/stats.h"
#include "quorum/threshold.h"
#include "replica/lock_service.h"
#include "workload/workload.h"

namespace pqs {
namespace {

using replica::FaultMode;
using replica::FaultPlan;
using replica::InstantCluster;
using replica::LockService;

InstantCluster::Config strict_config(std::uint32_t n, std::uint64_t seed) {
  InstantCluster::Config cfg;
  cfg.quorums = std::make_shared<quorum::ThresholdSystem>(
      quorum::ThresholdSystem::majority(n));
  cfg.seed = seed;
  return cfg;
}

// ---- LockService -----------------------------------------------------------

TEST(LockService, AcquireReleaseCycle) {
  InstantCluster cluster(strict_config(9, 1));
  LockService locks(cluster);
  EXPECT_EQ(locks.holder(7), 0u);
  EXPECT_EQ(locks.try_acquire(7, 42), LockService::Outcome::kAcquired);
  EXPECT_EQ(locks.holder(7), 42u);
  EXPECT_EQ(locks.try_acquire(7, 43), LockService::Outcome::kAlreadyHeld);
  EXPECT_TRUE(locks.release(7, 42));
  EXPECT_EQ(locks.holder(7), 0u);
  EXPECT_EQ(locks.try_acquire(7, 43), LockService::Outcome::kAcquired);
}

TEST(LockService, ReleaseByNonOwnerFails) {
  InstantCluster cluster(strict_config(9, 2));
  LockService locks(cluster);
  locks.try_acquire(1, 10);
  EXPECT_FALSE(locks.release(1, 11));
  EXPECT_EQ(locks.holder(1), 10u);
}

TEST(LockService, RejectsOwnerZero) {
  InstantCluster cluster(strict_config(5, 3));
  LockService locks(cluster);
  EXPECT_THROW(locks.try_acquire(1, 0), std::invalid_argument);
}

TEST(LockService, StrictQuorumsNeverDoubleAcquire) {
  InstantCluster cluster(strict_config(15, 4));
  LockService locks(cluster);
  int double_acquires = 0;
  for (std::uint64_t lock = 1; lock <= 500; ++lock) {
    ASSERT_EQ(locks.try_acquire(lock, 1), LockService::Outcome::kAcquired);
    if (locks.try_acquire(lock, 2) == LockService::Outcome::kAcquired) {
      ++double_acquires;
    }
  }
  EXPECT_EQ(double_acquires, 0);
  EXPECT_EQ(locks.rejections(), 500u);
}

TEST(LockService, ProbabilisticDoubleAcquireRateMatchesEpsilon) {
  // Coarse system: measurable double-acquire rate ~ eps.
  const std::uint32_t n = 64, q = 12;
  InstantCluster::Config cfg;
  cfg.quorums = std::make_shared<core::RandomSubsetSystem>(n, q);
  cfg.seed = 5;
  InstantCluster cluster(cfg);
  LockService locks(cluster);
  math::Proportion slipped;
  for (std::uint64_t lock = 1; lock <= 20000; ++lock) {
    locks.try_acquire(lock, 1);
    slipped.add(locks.try_acquire(lock, 2) ==
                LockService::Outcome::kAcquired);
  }
  const double eps = core::nonintersection_exact(n, q);
  EXPECT_TRUE(slipped.wilson(4.4).contains(eps))
      << slipped.estimate() << " vs " << eps;
}

TEST(LockService, RepeatedAttemptsAreVirtuallyAlwaysCaught) {
  // eps^k decay: 5 attempts against eps ~ 0.063 should essentially never
  // all succeed; count locks where *any* retry slipped, expect ~ 5*eps,
  // and locks where >= 3 slipped, expect ~ C(5,3) eps^3 (tiny).
  const std::uint32_t n = 64, q = 12;
  InstantCluster::Config cfg;
  cfg.quorums = std::make_shared<core::RandomSubsetSystem>(n, q);
  cfg.seed = 6;
  InstantCluster cluster(cfg);
  LockService locks(cluster);
  int three_plus = 0;
  for (std::uint64_t lock = 1; lock <= 4000; ++lock) {
    locks.try_acquire(lock, 1);
    int slips = 0;
    for (int attempt = 0; attempt < 5; ++attempt) {
      if (locks.try_acquire(lock, 2) == LockService::Outcome::kAcquired) {
        ++slips;
      }
    }
    if (slips >= 3) ++three_plus;
  }
  EXPECT_LE(three_plus, 2);  // expected ~ 4000 * 10 * eps^3 ~ 0.01
}

// ---- Workload ----------------------------------------------------------------

TEST(Zipfian, UniformWhenExponentZero) {
  workload::ZipfianKeys keys(10, 0.0);
  for (std::uint64_t k = 1; k <= 10; ++k) {
    EXPECT_NEAR(keys.probability(k), 0.1, 1e-12);
  }
}

TEST(Zipfian, ProbabilitiesSumToOneAndDecay) {
  workload::ZipfianKeys keys(100, 1.2);
  double total = 0.0;
  for (std::uint64_t k = 1; k <= 100; ++k) total += keys.probability(k);
  EXPECT_NEAR(total, 1.0, 1e-9);
  EXPECT_GT(keys.probability(1), keys.probability(2));
  EXPECT_GT(keys.probability(2), keys.probability(50));
  // Zipf ratio: P(1)/P(2) = 2^1.2.
  EXPECT_NEAR(keys.probability(1) / keys.probability(2), std::pow(2.0, 1.2),
              1e-9);
}

TEST(Zipfian, SamplingMatchesPmf) {
  workload::ZipfianKeys keys(20, 1.0);
  math::Rng rng(7);
  std::vector<int> counts(21, 0);
  constexpr int kSamples = 200000;
  for (int i = 0; i < kSamples; ++i) ++counts[keys.sample(rng)];
  for (std::uint64_t k = 1; k <= 20; ++k) {
    EXPECT_NEAR(counts[k] / double(kSamples), keys.probability(k), 0.005)
        << "k=" << k;
  }
}

TEST(Zipfian, Validation) {
  EXPECT_THROW(workload::ZipfianKeys(0, 1.0), std::invalid_argument);
  EXPECT_THROW(workload::ZipfianKeys(10, -0.5), std::invalid_argument);
  workload::ZipfianKeys keys(5, 1.0);
  EXPECT_THROW(keys.probability(0), std::invalid_argument);
  EXPECT_THROW(keys.probability(6), std::invalid_argument);
}

TEST(Workload, StrictClusterHasNoStaleReads) {
  InstantCluster cluster(strict_config(15, 8));
  workload::WorkloadSpec spec;
  spec.keys = 32;
  spec.read_fraction = 0.5;
  spec.operations = 20000;
  math::Rng rng(9);
  const auto report = workload::run_workload(cluster, spec, rng);
  EXPECT_EQ(report.stale_reads, 0u);
  EXPECT_EQ(report.reads + report.writes, spec.operations);
  EXPECT_NEAR(double(report.reads) / spec.operations, 0.5, 0.02);
}

TEST(Workload, MeasuredLoadMatchesAnalytic) {
  const std::uint32_t n = 50, q = 10;
  InstantCluster::Config cfg;
  cfg.quorums = std::make_shared<core::RandomSubsetSystem>(n, q);
  cfg.seed = 10;
  InstantCluster cluster(cfg);
  workload::WorkloadSpec spec;
  spec.keys = 16;
  spec.zipf_exponent = 1.0;  // key skew must NOT skew server load
  spec.operations = 100000;
  math::Rng rng(11);
  const auto report = workload::run_workload(cluster, spec, rng);
  EXPECT_NEAR(report.measured_load(), 0.2, 0.015);
}

TEST(Workload, StaleRateTracksEpsilon) {
  const std::uint32_t n = 64, q = 12;
  InstantCluster::Config cfg;
  cfg.quorums = std::make_shared<core::RandomSubsetSystem>(n, q);
  cfg.seed = 12;
  InstantCluster cluster(cfg);
  workload::WorkloadSpec spec;
  spec.keys = 8;
  spec.read_fraction = 0.5;
  spec.operations = 100000;
  math::Rng rng(13);
  const auto report = workload::run_workload(cluster, spec, rng);
  const double eps = core::nonintersection_exact(n, q);
  // A read is stale iff its quorum misses the key's last write quorum; the
  // workload's interleaving across keys does not change that probability.
  EXPECT_NEAR(report.stale_rate(), eps, 0.01);
}

TEST(Workload, ReadOnlyAndWriteOnlyMixes) {
  InstantCluster cluster(strict_config(9, 14));
  workload::WorkloadSpec spec;
  spec.keys = 4;
  spec.operations = 1000;
  spec.read_fraction = 1.0;
  math::Rng rng(15);
  auto r = workload::run_workload(cluster, spec, rng);
  EXPECT_EQ(r.writes, 0u);
  EXPECT_EQ(r.reads, 1000u);
  EXPECT_EQ(r.empty_reads, 1000u);  // nothing was ever written
  spec.read_fraction = 0.0;
  auto w = workload::run_workload(cluster, spec, rng);
  EXPECT_EQ(w.reads, 0u);
  EXPECT_EQ(w.writes, 1000u);
}

}  // namespace
}  // namespace pqs

// End-to-end Byzantine scenarios over the *simulated network* (not the
// instant harness): message latency, jitter, loss and partitions composed
// with Byzantine server behaviours — the full deployment the paper's
// protocols are meant for.
#include <memory>

#include <gtest/gtest.h>

#include "core/epsilon.h"
#include "core/random_subset_system.h"
#include "math/stats.h"
#include "quorum/threshold.h"
#include "replica/instant_cluster.h"
#include "replica/sim_cluster.h"

namespace pqs::replica {
namespace {

SimCluster::Config byz_config(std::uint32_t n, std::uint32_t q,
                              std::uint32_t b, ReadMode mode,
                              std::uint64_t seed) {
  SimCluster::Config cfg;
  cfg.quorums = std::make_shared<core::RandomSubsetSystem>(
      core::RandomSubsetSystem::with_byzantine(
          n, q, b,
          mode == ReadMode::kMasking ? core::Regime::kMasking
                                     : core::Regime::kDissemination));
  cfg.mode = mode;
  if (mode == ReadMode::kMasking) {
    cfg.read_threshold =
        static_cast<std::uint32_t>(core::masking_threshold(n, q));
  }
  cfg.latency = {.base = 100, .jitter_mean = 100, .drop_probability = 0.0};
  cfg.client_timeout = 20000;
  cfg.seed = seed;
  return cfg;
}

TEST(ByzantineNetwork, DisseminationNeverAcceptsForgeriesOverNetwork) {
  const std::uint32_t n = 30, q = 12, b = 9;
  SimCluster cluster(byz_config(n, q, b, ReadMode::kDissemination, 1),
                     FaultPlan::prefix(n, b, FaultMode::kForge));
  std::int64_t value = 0;
  for (int i = 0; i < 150; ++i) {
    cluster.write_sync(1, ++value);
    const auto r = cluster.read_sync(1);
    if (r.selection.has_value) {
      // Never a fabricated record: values must be ones we wrote, with
      // plausible timestamps.
      ASSERT_LE(r.selection.record.value, value);
      ASSERT_GE(r.selection.record.value, 1);
      ASSERT_LT(r.selection.record.timestamp, 1ull << 40);
    }
  }
}

TEST(ByzantineNetwork, SuppressorsForceTimeoutsButNotWrongAnswers) {
  const std::uint32_t n = 30, q = 12, b = 9;
  SimCluster cluster(byz_config(n, q, b, ReadMode::kDissemination, 2),
                     FaultPlan::prefix(n, b, FaultMode::kSuppress));
  int incomplete = 0;
  std::int64_t value = 0;
  for (int i = 0; i < 100; ++i) {
    cluster.write_sync(1, ++value);
    const auto r = cluster.read_sync(1);
    if (!r.complete) ++incomplete;  // quorum had a suppressor: timeout path
    if (r.selection.has_value) {
      ASSERT_LE(r.selection.record.value, value);
    }
  }
  // Most quorums (size 12 of 30 with 9 suppressors) contain a suppressor:
  // P(none) = C(21,12)/C(30,12) ~ 0.003, so timeouts dominate.
  EXPECT_GT(incomplete, 80);
}

TEST(ByzantineNetwork, MaskingBlocksColludersBelowThreshold) {
  const std::uint32_t n = 25, q = 15, b = 3;  // k = ceil(225/50) = 5 > b
  SimCluster cluster(byz_config(n, q, b, ReadMode::kMasking, 3),
                     FaultPlan::prefix(n, b, FaultMode::kCollude));
  std::int64_t value = 0;
  for (int i = 0; i < 150; ++i) {
    cluster.write_sync(1, ++value);
    const auto r = cluster.read_sync(1);
    // b < k: the colluders can never assemble k matching forged replies.
    if (r.selection.has_value) {
      ASSERT_GE(r.selection.record.value, 0) << "forged value accepted";
      ASSERT_LE(r.selection.record.value, value);
    }
  }
}

TEST(ByzantineNetwork, LossAndByzantineFaultsCompose) {
  const std::uint32_t n = 30, q = 14, b = 6;
  auto cfg = byz_config(n, q, b, ReadMode::kDissemination, 4);
  cfg.latency.drop_probability = 0.15;
  SimCluster cluster(cfg, FaultPlan::prefix(n, b, FaultMode::kStaleReplay));
  int fresh = 0;
  std::int64_t value = 0;
  constexpr int kOps = 120;
  for (int i = 0; i < kOps; ++i) {
    cluster.write_sync(1, ++value);
    const auto r = cluster.read_sync(1);
    if (r.selection.has_value && r.selection.record.value == value) ++fresh;
  }
  // Loss + stale replayers degrade freshness but the majority of reads
  // still return the latest value, and nothing fabricated ever appears.
  EXPECT_GT(fresh, kOps / 2);
}

TEST(ByzantineNetwork, PartitionHealsAndServiceRecovers) {
  SimCluster::Config cfg;
  cfg.quorums = std::make_shared<quorum::ThresholdSystem>(
      quorum::ThresholdSystem::majority(9));
  cfg.latency = {.base = 100, .jitter_mean = 0, .drop_probability = 0.0};
  cfg.client_timeout = 5000;
  cfg.seed = 5;
  SimCluster cluster(cfg);
  const sim::NodeId client = 9;
  cluster.network().partition({0, 1, 2, 3, 4}, {client});
  const auto during = cluster.write_sync(1, 11);
  EXPECT_FALSE(during.complete);
  cluster.network().heal_partitions();
  const auto after = cluster.write_sync(1, 12);
  EXPECT_TRUE(after.complete);
  const auto read = cluster.read_sync(1);
  ASSERT_TRUE(read.selection.has_value);
  EXPECT_EQ(read.selection.record.value, 12);
}

TEST(ByzantineNetwork, AmplifiedReadsSquareTheEpsilon) {
  // Reading twice through independent quorums and keeping the higher
  // timestamp drives staleness from eps toward eps^2 — probability
  // amplification, the cheap consistency knob probabilistic quorums offer.
  const std::uint32_t n = 64, q = 12;
  InstantCluster::Config cfg;
  cfg.quorums = std::make_shared<core::RandomSubsetSystem>(n, q);
  cfg.seed = 6;
  InstantCluster cluster(cfg);
  const double eps = core::nonintersection_exact(n, q);
  math::Proportion single_stale;
  math::Proportion double_stale;
  std::int64_t value = 0;
  for (int i = 0; i < 60000; ++i) {
    cluster.write(1, ++value);
    const auto r1 = cluster.read(1);
    const auto r2 = cluster.read(1);
    const bool fresh1 =
        r1.selection.has_value && r1.selection.record.value == value;
    const bool fresh2 =
        r2.selection.has_value && r2.selection.record.value == value;
    single_stale.add(!fresh1);
    double_stale.add(!fresh1 && !fresh2);
  }
  EXPECT_TRUE(single_stale.wilson(4.4).contains(eps));
  EXPECT_TRUE(double_stale.wilson(4.4).contains(eps * eps))
      << double_stale.estimate() << " vs " << eps * eps;
}

}  // namespace
}  // namespace pqs::replica

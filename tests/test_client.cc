// Unit tests for the asynchronous client against *scripted* servers: late
// acknowledgements, duplicated replies, partial responses, timeout races —
// the message-level edge cases the integration tests only hit by chance.
#include <memory>
#include <optional>

#include <gtest/gtest.h>

#include "core/random_subset_system.h"
#include "crypto/mac.h"
#include "quorum/threshold.h"
#include "replica/client.h"
#include "sim/network.h"
#include "sim/simulator.h"

namespace pqs::replica {
namespace {

// A harness wiring one Client to n scripted server nodes whose behaviour
// each test chooses per message.
class Harness {
 public:
  using Script = std::function<void(sim::NodeId server, sim::NodeId from,
                                    const Message&)>;

  explicit Harness(std::uint32_t n, sim::Time timeout = 10000)
      : network_(simulator_, sim::LatencyModel{.base = 10, .jitter_mean = 0},
                 math::Rng(7)) {
    Client::Config cfg;
    cfg.quorums = std::make_shared<quorum::ThresholdSystem>(
        quorum::ThresholdSystem::majority(n));
    cfg.timeout = timeout;
    cfg.writer_key = crypto::Signer::from_seed(1).key();
    client_ = std::make_unique<Client>(n, cfg, simulator_, network_,
                                       math::Rng(11));
    for (sim::NodeId s = 0; s < n; ++s) {
      network_.register_node(s, [this, s](sim::NodeId from, const Message& m) {
        if (script_) script_(s, from, m);
      });
    }
    network_.register_node(n, [this](sim::NodeId from, const Message& m) {
      client_->on_message(from, m);
    });
  }

  void set_script(Script script) { script_ = std::move(script); }

  sim::Simulator& simulator() { return simulator_; }
  sim::Network<Message>& network() { return network_; }
  Client& client() { return *client_; }

  // Default honest behaviours the scripts can delegate to.
  void ack_write(sim::NodeId server, sim::NodeId from, const WriteRequest& w) {
    network_.send(server, from, WriteAck{w.op, server});
  }

 private:
  sim::Simulator simulator_;
  sim::Network<Message> network_;
  std::unique_ptr<Client> client_;
  Script script_;
};

TEST(Client, WriteCompletesWhenAllAck) {
  Harness h(5);
  h.set_script([&](sim::NodeId s, sim::NodeId from, const Message& m) {
    if (const auto* w = std::get_if<WriteRequest>(&m)) h.ack_write(s, from, *w);
  });
  std::optional<WriteOutcome> outcome;
  h.client().write(1, 42, [&](const WriteOutcome& o) { outcome = o; });
  h.simulator().run();
  ASSERT_TRUE(outcome.has_value());
  EXPECT_TRUE(outcome->complete);
  EXPECT_EQ(outcome->acks, outcome->quorum.size());
}

TEST(Client, DuplicateAcksCountOnce) {
  Harness h(5);
  h.set_script([&](sim::NodeId s, sim::NodeId from, const Message& m) {
    if (const auto* w = std::get_if<WriteRequest>(&m)) {
      h.ack_write(s, from, *w);
      h.ack_write(s, from, *w);  // duplicate delivery
      h.ack_write(s, from, *w);
    }
  });
  std::optional<WriteOutcome> outcome;
  h.client().write(1, 42, [&](const WriteOutcome& o) { outcome = o; });
  h.simulator().run();
  ASSERT_TRUE(outcome.has_value());
  // The client deduplicates by server id, so triple delivery still yields
  // exactly quorum-size distinct acks and an honest completion.
  EXPECT_TRUE(outcome->complete);
  EXPECT_EQ(outcome->acks, outcome->quorum.size());
}

TEST(Client, RogueAcksFromStrangersAreIgnored) {
  Harness h(5, /*timeout=*/2000);
  h.set_script([&](sim::NodeId s, sim::NodeId from, const Message& m) {
    if (const auto* w = std::get_if<WriteRequest>(&m)) {
      // Every contacted server stays silent but forwards a forged ack
      // claiming to be server 99 (not in any quorum).
      h.network().send(s, from, WriteAck{w->op, 99});
    }
  });
  std::optional<WriteOutcome> outcome;
  h.client().write(1, 1, [&](const WriteOutcome& o) { outcome = o; });
  h.simulator().run();
  ASSERT_TRUE(outcome.has_value());
  EXPECT_FALSE(outcome->complete);
  EXPECT_EQ(outcome->acks, 0u);
}

TEST(Client, SilentMinorityForcesTimeoutWithPartialAcks) {
  Harness h(5, /*timeout=*/5000);
  h.set_script([&](sim::NodeId s, sim::NodeId from, const Message& m) {
    if (s == 0) return;  // server 0 never answers
    if (const auto* w = std::get_if<WriteRequest>(&m)) h.ack_write(s, from, *w);
  });
  // Run many writes; quorums containing server 0 must time out with
  // exactly quorum-1 acks.
  for (int i = 0; i < 20; ++i) {
    std::optional<WriteOutcome> outcome;
    h.client().write(1, i, [&](const WriteOutcome& o) { outcome = o; });
    h.simulator().run();
    ASSERT_TRUE(outcome.has_value());
    const bool has_zero =
        std::find(outcome->quorum.begin(), outcome->quorum.end(), 0u) !=
        outcome->quorum.end();
    if (has_zero) {
      EXPECT_FALSE(outcome->complete);
      EXPECT_EQ(outcome->acks, outcome->quorum.size() - 1);
    } else {
      EXPECT_TRUE(outcome->complete);
    }
  }
}

TEST(Client, LateRepliesAfterTimeoutAreIgnored) {
  Harness h(5, /*timeout=*/100);
  int served = 0;
  h.set_script([&](sim::NodeId s, sim::NodeId from, const Message& m) {
    if (const auto* r = std::get_if<ReadRequest>(&m)) {
      ++served;
      // Reply far after the client's 100us timeout.
      h.simulator().schedule(10000, [&h, s, from, op = r->op] {
        ReadReply reply;
        reply.op = op;
        reply.server = static_cast<std::uint32_t>(s);
        reply.has_value = false;
        h.network().send(s, from, reply);
      });
    }
  });
  std::optional<ReadOutcome> outcome;
  int callbacks = 0;
  h.client().read(1, [&](const ReadOutcome& o) {
    outcome = o;
    ++callbacks;
  });
  h.simulator().run();  // drains timeout AND the late replies
  ASSERT_TRUE(outcome.has_value());
  EXPECT_EQ(callbacks, 1);  // late replies must not re-fire completion
  EXPECT_FALSE(outcome->complete);
  EXPECT_EQ(outcome->replies, 0u);
  EXPECT_GT(served, 0);
}

TEST(Client, ReadAssemblesRepliesAndSelects) {
  Harness h(5);
  const auto signer = crypto::Signer::from_seed(1);
  h.set_script([&](sim::NodeId s, sim::NodeId from, const Message& m) {
    if (const auto* r = std::get_if<ReadRequest>(&m)) {
      ReadReply reply;
      reply.op = r->op;
      reply.server = static_cast<std::uint32_t>(s);
      reply.has_value = true;
      // Server id doubles as timestamp: highest id wins.
      reply.record = signer.sign(r->variable, 100 + static_cast<int>(s),
                                 1000 + s, 1);
      h.network().send(s, from, reply);
    }
  });
  std::optional<ReadOutcome> outcome;
  h.client().read(1, [&](const ReadOutcome& o) { outcome = o; });
  h.simulator().run();
  ASSERT_TRUE(outcome.has_value());
  EXPECT_TRUE(outcome->complete);
  ASSERT_TRUE(outcome->selection.has_value);
  const auto top =
      *std::max_element(outcome->quorum.begin(), outcome->quorum.end());
  EXPECT_EQ(outcome->selection.record.value, 100 + static_cast<int>(top));
}

TEST(Client, ConcurrentOperationsDoNotInterfere) {
  Harness h(5);
  const auto signer = crypto::Signer::from_seed(1);
  h.set_script([&](sim::NodeId s, sim::NodeId from, const Message& m) {
    if (const auto* w = std::get_if<WriteRequest>(&m)) {
      h.ack_write(s, from, *w);
    } else if (const auto* r = std::get_if<ReadRequest>(&m)) {
      ReadReply reply;
      reply.op = r->op;
      reply.server = static_cast<std::uint32_t>(s);
      reply.has_value = true;
      reply.record = signer.sign(r->variable, 7, 1, 1);
      h.network().send(s, from, reply);
    }
  });
  int done = 0;
  for (int i = 0; i < 10; ++i) {
    h.client().write(1, i, [&](const WriteOutcome& o) {
      EXPECT_TRUE(o.complete);
      ++done;
    });
    h.client().read(1, [&](const ReadOutcome& o) {
      EXPECT_TRUE(o.complete);
      ++done;
    });
  }
  h.simulator().run();
  EXPECT_EQ(done, 20);
}

TEST(Client, TimestampsIncreaseAcrossWrites) {
  Harness h(5);
  std::vector<std::uint64_t> stamps;
  h.set_script([&](sim::NodeId s, sim::NodeId from, const Message& m) {
    if (const auto* w = std::get_if<WriteRequest>(&m)) {
      if (s == 1) stamps.push_back(w->record.timestamp);
      h.ack_write(s, from, *w);
    }
  });
  for (int i = 0; i < 20; ++i) {
    h.client().write(1, i, [](const WriteOutcome&) {});
    h.simulator().run();
  }
  for (std::size_t i = 1; i < stamps.size(); ++i) {
    EXPECT_GT(stamps[i], stamps[i - 1]);
  }
  EXPECT_GE(stamps.size(), 5u);  // server 1 is in most majority quorums
}

}  // namespace
}  // namespace pqs::replica

// Integration tests: the full protocol stack over both cluster harnesses.
#include <memory>

#include <gtest/gtest.h>

#include "core/epsilon.h"
#include "core/random_subset_system.h"
#include "math/hypergeometric.h"
#include "math/stats.h"
#include "quorum/threshold.h"
#include "replica/instant_cluster.h"
#include "replica/sim_cluster.h"

namespace pqs::replica {
namespace {

std::shared_ptr<const quorum::QuorumSystem> majority(std::uint32_t n) {
  return std::make_shared<quorum::ThresholdSystem>(
      quorum::ThresholdSystem::majority(n));
}

std::shared_ptr<const quorum::QuorumSystem> random_subsets(std::uint32_t n,
                                                           std::uint32_t q) {
  return std::make_shared<core::RandomSubsetSystem>(n, q);
}

// ---- InstantCluster ---------------------------------------------------------

TEST(InstantCluster, StrictQuorumReadAfterWriteAlwaysFresh) {
  InstantCluster::Config cfg;
  cfg.quorums = majority(15);
  InstantCluster cluster(cfg);
  for (int i = 1; i <= 200; ++i) {
    const auto w = cluster.write(1, i);
    EXPECT_EQ(w.acks, w.quorum.size());
    const auto r = cluster.read(1);
    ASSERT_TRUE(r.selection.has_value);
    EXPECT_EQ(r.selection.record.value, i);
  }
}

TEST(InstantCluster, TimestampsStrictlyIncrease) {
  InstantCluster::Config cfg;
  cfg.quorums = majority(5);
  InstantCluster cluster(cfg);
  std::uint64_t prev = 0;
  for (int i = 0; i < 50; ++i) {
    const auto w = cluster.write(3, i);
    EXPECT_GT(w.timestamp, prev);
    prev = w.timestamp;
  }
}

TEST(InstantCluster, MultiWriterTimestampsDisjoint) {
  InstantCluster::Config cfg;
  cfg.quorums = majority(5);
  InstantCluster cluster(cfg);
  const auto w1 = cluster.write_as(1, 7, 10);
  const auto w2 = cluster.write_as(2, 7, 20);
  EXPECT_NE(w1.timestamp, w2.timestamp);
  // Last write (by timestamp order) wins on read.
  const auto r = cluster.read(7);
  ASSERT_TRUE(r.selection.has_value);
  EXPECT_EQ(r.selection.record.value,
            w1.timestamp > w2.timestamp ? 10 : 20);
}

TEST(InstantCluster, ProbabilisticStalenessMatchesEpsilon) {
  // Theorem 3.2 measured: non-concurrent read after write returns the last
  // value with probability >= 1 - eps. Uses a coarse system (eps ~ 0.05)
  // so the rate is measurable with 40k pairs.
  const std::uint32_t n = 64, q = 12;
  InstantCluster::Config cfg;
  cfg.quorums = random_subsets(n, q);
  cfg.seed = 7;
  InstantCluster cluster(cfg);
  const double eps = core::nonintersection_exact(n, q);
  math::Proportion stale;
  std::int64_t value = 0;
  for (int i = 0; i < 40000; ++i) {
    cluster.write(1, ++value);
    const auto r = cluster.read(1);
    stale.add(!(r.selection.has_value && r.selection.record.value == value));
  }
  // Staleness can only be *lower* than eps: overlapping with ANY previous
  // write quorum that carried an older-but-recent value still often returns
  // the fresh one only via the latest quorum; the event "miss the last
  // write quorum" upper-bounds staleness... but reads can also return
  // values from earlier writes adopted by overlap. The paper's guarantee
  // is one-sided, so assert the Wilson interval does not exceed eps.
  EXPECT_LE(stale.wilson(4.4).lo, eps);
  EXPECT_GT(stale.estimate(), 0.0);  // and misses genuinely happen
  EXPECT_LT(stale.estimate(), 2.0 * eps);
}

TEST(InstantCluster, CrashedServersReduceAcks) {
  InstantCluster::Config cfg;
  cfg.quorums = majority(9);  // quorum size 5
  InstantCluster cluster(cfg, FaultPlan::prefix(9, 3, FaultMode::kCrash));
  math::OnlineStats acks;
  for (int i = 0; i < 200; ++i) {
    acks.add(static_cast<double>(cluster.write(1, i).acks));
  }
  // E[acks] = 5 * (6/9) = 3.33; always between 2 and 5.
  EXPECT_NEAR(acks.mean(), 5.0 * 6.0 / 9.0, 0.3);
  EXPECT_GE(acks.min(), 2.0);
}

TEST(InstantCluster, DisseminationDefeatsForgers) {
  const std::uint32_t n = 40, b = 8;
  InstantCluster::Config cfg;
  cfg.quorums = std::make_shared<core::RandomSubsetSystem>(
      core::RandomSubsetSystem::with_byzantine(n, 16, b,
                                               core::Regime::kDissemination));
  cfg.mode = ReadMode::kDissemination;
  InstantCluster cluster(cfg, FaultPlan::prefix(n, b, FaultMode::kForge));
  std::int64_t value = 0;
  int accepted_forgery = 0;
  for (int i = 0; i < 3000; ++i) {
    cluster.write(1, ++value);
    const auto r = cluster.read(1);
    if (r.selection.has_value && r.selection.record.value > value) {
      ++accepted_forgery;  // forged timestamps are astronomically larger
    }
  }
  EXPECT_EQ(accepted_forgery, 0);
}

TEST(InstantCluster, PlainReadsAreFooledByForgersButDisseminationIsNot) {
  const std::uint32_t n = 40, b = 8;
  auto run = [&](ReadMode mode) {
    InstantCluster::Config cfg;
    cfg.quorums = random_subsets(n, 16);
    cfg.mode = mode;
    cfg.seed = 11;
    InstantCluster cluster(cfg, FaultPlan::prefix(n, b, FaultMode::kForge));
    int fooled = 0;
    std::int64_t value = 0;
    for (int i = 0; i < 1000; ++i) {
      cluster.write(1, ++value);
      const auto r = cluster.read(1);
      if (r.selection.has_value && r.selection.record.timestamp > (1ull << 40)) {
        ++fooled;
      }
    }
    return fooled;
  };
  EXPECT_GT(run(ReadMode::kPlain), 900);  // nearly every read hits a forger
  EXPECT_EQ(run(ReadMode::kDissemination), 0);
}

TEST(InstantCluster, MaskingCollusionRateMatchesAnalysis) {
  // Colluders win a masking read iff >= k of them land in the read quorum.
  // Compare the measured forgery-acceptance rate with P(X >= k).
  const std::uint32_t n = 50, q = 20, b = 10;
  const auto k = static_cast<std::uint32_t>(core::masking_threshold(n, q));
  InstantCluster::Config cfg;
  cfg.quorums = random_subsets(n, q);
  cfg.mode = ReadMode::kMasking;
  cfg.read_threshold = k;
  cfg.seed = 13;
  InstantCluster cluster(cfg, FaultPlan::prefix(n, b, FaultMode::kCollude));
  math::Proportion fooled;
  std::int64_t value = 0;
  for (int i = 0; i < 30000; ++i) {
    cluster.write(1, ++value);
    const auto r = cluster.read(1);
    fooled.add(r.selection.has_value && r.selection.record.value < 0);
  }
  const auto X = math::make_hypergeometric(n, b, q);
  const double expected = X.upper_tail(k);
  EXPECT_TRUE(fooled.wilson(4.4).contains(expected))
      << fooled.estimate() << " vs " << expected;
}

// ---- SimCluster ------------------------------------------------------------

TEST(SimCluster, ReadAfterWriteOverNetwork) {
  SimCluster::Config cfg;
  cfg.quorums = majority(9);
  cfg.latency = {.base = 500, .jitter_mean = 200, .drop_probability = 0.0};
  SimCluster cluster(cfg);
  const auto w = cluster.write_sync(1, 42);
  EXPECT_TRUE(w.complete);
  EXPECT_EQ(w.acks, w.quorum.size());
  const auto r = cluster.read_sync(1);
  EXPECT_TRUE(r.complete);
  ASSERT_TRUE(r.selection.has_value);
  EXPECT_EQ(r.selection.record.value, 42);
  EXPECT_GT(cluster.simulator().now(), 0);
  EXPECT_GT(cluster.network().messages_delivered(), 0u);
}

TEST(SimCluster, OperationsTimeOutUnderCrashes) {
  SimCluster::Config cfg;
  cfg.quorums = majority(9);
  cfg.latency = {.base = 100, .jitter_mean = 0, .drop_probability = 0.0};
  cfg.client_timeout = 10000;
  SimCluster cluster(cfg, FaultPlan::prefix(9, 4, FaultMode::kCrash));
  const auto w = cluster.write_sync(1, 7);
  // Quorum size 5 over 9 servers with 4 crashed: at least 1 member acked,
  // and completion depends on whether the sampled quorum hit a crash.
  EXPECT_GE(w.acks, 1u);
  EXPECT_LE(w.acks, w.quorum.size());
  const auto r = cluster.read_sync(1);
  // Read still succeeds through surviving overlap: the 5 live servers are
  // in every majority quorum's intersection with the write quorum... at
  // least when the value reached a live server.
  if (r.selection.has_value) {
    EXPECT_EQ(r.selection.record.value, 7);
  }
}

TEST(SimCluster, MessageLossDegradesButTimestampsProtect) {
  SimCluster::Config cfg;
  cfg.quorums = majority(15);
  cfg.latency = {.base = 100, .jitter_mean = 50, .drop_probability = 0.2};
  cfg.client_timeout = 5000;
  cfg.seed = 3;
  SimCluster cluster(cfg);
  int fresh = 0;
  constexpr int kOps = 50;
  for (int i = 1; i <= kOps; ++i) {
    cluster.write_sync(1, i);
    const auto r = cluster.read_sync(1);
    if (r.selection.has_value && r.selection.record.value == i) ++fresh;
  }
  // With 20% loss some operations go stale, but most succeed, and no read
  // ever returns a value newer than written (timestamps cannot be forged
  // by loss).
  EXPECT_GT(fresh, kOps / 2);
}

TEST(SimCluster, PartitionedQuorumMembersUnreachable) {
  SimCluster::Config cfg;
  cfg.quorums = majority(5);
  cfg.latency = {.base = 100, .jitter_mean = 0, .drop_probability = 0.0};
  cfg.client_timeout = 5000;
  SimCluster cluster(cfg);
  // Cut servers {0,1,2} off from the client (node id 5): every 3-of-5
  // quorum contains at least one unreachable member.
  cluster.network().partition({0, 1, 2}, {5});
  const auto w = cluster.write_sync(1, 9);
  EXPECT_FALSE(w.complete);
  EXPECT_LE(w.acks, 2u);
  cluster.network().heal_partitions();
  const auto w2 = cluster.write_sync(1, 10);
  EXPECT_TRUE(w2.complete);
}

TEST(SimCluster, DeterministicForSeed) {
  auto run = [](std::uint64_t seed) {
    SimCluster::Config cfg;
    cfg.quorums = majority(9);
    cfg.latency = {.base = 100, .jitter_mean = 80, .drop_probability = 0.1};
    cfg.seed = seed;
    SimCluster cluster(cfg);
    std::vector<std::uint64_t> trace;
    for (int i = 0; i < 20; ++i) {
      trace.push_back(cluster.write_sync(1, i).acks);
      trace.push_back(static_cast<std::uint64_t>(cluster.simulator().now()));
    }
    return trace;
  };
  EXPECT_EQ(run(42), run(42));
  EXPECT_NE(run(42), run(43));
}

TEST(SimCluster, MultipleClientsDistinctWriters) {
  SimCluster::Config cfg;
  cfg.quorums = majority(9);
  cfg.clients = 2;
  SimCluster cluster(cfg);
  cluster.write_sync(1, 100, /*client_index=*/0);
  cluster.write_sync(1, 200, /*client_index=*/1);
  const auto r = cluster.read_sync(1, 0);
  ASSERT_TRUE(r.selection.has_value);
  // Client 1's write carries a (1, writer=2) timestamp vs (1, writer=1):
  // both have sequence 1, so writer id breaks the tie; value 200 wins.
  EXPECT_EQ(r.selection.record.value, 200);
}

}  // namespace
}  // namespace pqs::replica

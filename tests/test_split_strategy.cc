// estimate_split_strategy_nonintersection draws masks over a *translated*
// half-universe (sample_without_replacement_bits into half-width scratch,
// then QuorumBitset::or_shifted onto the full mask — see monte_carlo.cc).
// This suite pins its behaviour down: bit-identical to an independently
// written sorted-vector scalar reference (which is also the cross-path
// oracle for the translated mask draws), bit-identical across thread
// counts, and statistically equal to the closed form
//   P(nonintersect) = 1/2 + 1/2 * nonintersection_exact(n/2, q)
// (different halves are disjoint surely; same half behaves like R(n/2, q)).
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "core/epsilon.h"
#include "core/estimator.h"
#include "core/monte_carlo.h"
#include "math/rng.h"
#include "math/sampling.h"
#include "math/stats.h"

namespace pqs::core {
namespace {

// Scalar reference: the same sharded trial structure and the same rng
// draws (Floyd's draw into a sorted vector, then a coin for the half), but
// intersection tested by a sorted-merge walk instead of bitset words.
math::Proportion reference_split_nonintersection(std::uint32_t n,
                                                 std::uint32_t q,
                                                 std::uint64_t samples,
                                                 math::Rng& rng,
                                                 Estimator& engine) {
  const std::uint32_t half = n / 2;
  return engine.run_trials<math::Proportion>(
      samples, rng,
      [&](std::uint32_t, std::uint64_t shard_samples, math::Rng& shard_rng) {
        quorum::Quorum a, b;
        auto draw = [&](quorum::Quorum& out) {
          math::sample_without_replacement(half, q, shard_rng, out);
          if (shard_rng.chance(0.5)) {
            for (auto& u : out) u += half;
          }
        };
        math::Proportion result;
        for (std::uint64_t s = 0; s < shard_samples; ++s) {
          draw(a);
          draw(b);
          result.add(!math::sorted_intersects(a, b));
        }
        return result;
      },
      [](math::Proportion& acc, const math::Proportion& part) {
        acc.add(part.successes(), part.trials());
      });
}

TEST(SplitStrategy, MatchesScalarReferenceAndThreadCounts) {
  const std::uint32_t n = 64, q = 12;
  const std::uint64_t kSamples = 30000;
  std::vector<std::pair<std::uint64_t, std::uint64_t>> results;
  for (const unsigned threads : {1u, 2u, 8u}) {
    Estimator engine({threads});
    math::Rng rng_est(911), rng_ref(911);
    const auto est =
        estimate_split_strategy_nonintersection(n, q, kSamples, rng_est,
                                                engine);
    const auto ref =
        reference_split_nonintersection(n, q, kSamples, rng_ref, engine);
    EXPECT_EQ(est.successes(), ref.successes()) << "threads=" << threads;
    EXPECT_EQ(est.trials(), ref.trials()) << "threads=" << threads;
    results.emplace_back(est.successes(), est.trials());
  }
  EXPECT_EQ(results[0], results[1]);
  EXPECT_EQ(results[0], results[2]);
}

TEST(SplitStrategy, MatchesClosedForm) {
  const std::uint32_t n = 64, q = 12;
  Estimator engine({2});
  math::Rng rng(417);
  const auto est =
      estimate_split_strategy_nonintersection(n, q, 60000, rng, engine);
  const double expected =
      0.5 + 0.5 * nonintersection_exact(n / 2, q);
  EXPECT_TRUE(est.wilson(4.4).contains(expected))
      << est.estimate() << " vs " << expected;
  // The Section 3.1 remark itself: ~1/2 regardless of how large q is
  // relative to the advertised eps of the uniform strategy.
  EXPECT_GT(est.estimate(), 0.45);
}

TEST(SplitStrategy, CallerRngAdvancesOnce) {
  // Back-to-back estimates from one generator must be independent (the
  // engine contract): the caller rng is forked exactly once per call.
  const std::uint32_t n = 64, q = 12;
  Estimator engine({2});
  math::Rng rng_a(5), rng_b(5);
  (void)estimate_split_strategy_nonintersection(n, q, 1000, rng_a, engine);
  rng_b.fork();
  EXPECT_EQ(rng_a.next(), rng_b.next());
}

}  // namespace
}  // namespace pqs::core

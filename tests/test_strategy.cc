// quorum::Strategy and quorum::optimize_strategy — the workload-aware
// access layer (ROADMAP item 3).
//
// Four layers are pinned down here. (1) The LP engine underneath the
// optimizer: small programs with known optima, an equality pair that
// forces phase 1, infeasible and unbounded verdicts. (2) The strategy's
// draw discipline: alias draws match the declared probabilities, consume
// exactly one rng word each, and are bit-identical across identically
// seeded generators. (3) The exact analytic measures against brute-force
// enumeration on a universe small enough to enumerate. (4) The optimizer
// and serving-tier integration: feasibility of the returned distribution,
// a strict load win over the fixed construction on a skewed-capacity
// workload, and the KvService bit-identity gate extended over the
// strategy draw counters.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <memory>
#include <vector>

#include "core/random_subset_system.h"
#include "math/rng.h"
#include "math/simplex.h"
#include "quorum/strategy.h"
#include "quorum/threshold.h"
#include "replica/instant_cluster.h"
#include "serve/kv_service.h"
#include "workload/open_loop.h"

namespace pqs {
namespace {

using quorum::Quorum;
using quorum::Strategy;
using quorum::WorkloadSpec;

// ---------------------------------------------------------------------
// math::solve_lp
// ---------------------------------------------------------------------

TEST(Simplex, SolvesABoundedMaximization) {
  // max x + y s.t. x <= 2, y <= 3, x + y <= 4  ->  min -(x + y), optimum -4.
  const math::LpResult r = math::solve_lp(
      {-1.0, -1.0}, {{1.0, 0.0}, {0.0, 1.0}, {1.0, 1.0}}, {2.0, 3.0, 4.0});
  ASSERT_EQ(r.status, math::LpStatus::kOptimal);
  EXPECT_NEAR(r.objective, -4.0, 1e-9);
  EXPECT_NEAR(r.x[0] + r.x[1], 4.0, 1e-9);
  EXPECT_LE(r.x[0], 2.0 + 1e-9);
  EXPECT_LE(r.x[1], 3.0 + 1e-9);
}

TEST(Simplex, EqualityPairNeedsPhaseOne) {
  // min 2x + y s.t. x + y = 1 (as <= / >= pair), x, y >= 0: put all mass
  // on y. The >= row arrives with negative rhs, so phase 1 must run.
  const math::LpResult r = math::solve_lp(
      {2.0, 1.0}, {{1.0, 1.0}, {-1.0, -1.0}}, {1.0, -1.0});
  ASSERT_EQ(r.status, math::LpStatus::kOptimal);
  EXPECT_NEAR(r.objective, 1.0, 1e-9);
  EXPECT_NEAR(r.x[0], 0.0, 1e-9);
  EXPECT_NEAR(r.x[1], 1.0, 1e-9);
}

TEST(Simplex, ReportsInfeasible) {
  // x <= -1 with x >= 0 has no solution.
  const math::LpResult r = math::solve_lp({1.0}, {{1.0}}, {-1.0});
  EXPECT_EQ(r.status, math::LpStatus::kInfeasible);
}

TEST(Simplex, ReportsUnbounded) {
  // min -x with only x >= 0: decreases without bound.
  const math::LpResult r = math::solve_lp({-1.0}, {{0.0}}, {1.0});
  EXPECT_EQ(r.status, math::LpStatus::kUnbounded);
}

TEST(Simplex, RedundantEqualityRowsStayFeasible) {
  // The same equality twice: phase 1 leaves one artificial basic at zero
  // in the redundant row, which must not disturb phase 2.
  const math::LpResult r = math::solve_lp(
      {1.0, 3.0},
      {{1.0, 1.0}, {-1.0, -1.0}, {1.0, 1.0}, {-1.0, -1.0}},
      {1.0, -1.0, 1.0, -1.0});
  ASSERT_EQ(r.status, math::LpStatus::kOptimal);
  EXPECT_NEAR(r.objective, 1.0, 1e-9);
  EXPECT_NEAR(r.x[0], 1.0, 1e-9);
}

// ---------------------------------------------------------------------
// Strategy draws
// ---------------------------------------------------------------------

// A small fixed strategy over a 6-universe: three read quorums with
// lopsided probabilities, two write quorums.
std::shared_ptr<const Strategy> tiny_strategy(WorkloadSpec workload = {}) {
  auto base = std::make_shared<quorum::ThresholdSystem>(
      quorum::ThresholdSystem::majority(6 + 1));
  // Base universe is 7; keep every quorum inside it.
  std::vector<Quorum> reads = {{0, 1, 2, 3}, {2, 3, 4, 5}, {0, 2, 4, 6}};
  std::vector<double> read_probs = {0.6, 0.3, 0.1};
  std::vector<Quorum> writes = {{1, 2, 3, 4}, {3, 4, 5, 6}};
  std::vector<double> write_probs = {0.75, 0.25};
  return std::make_shared<Strategy>(std::move(base), std::move(reads),
                                    std::move(read_probs), std::move(writes),
                                    std::move(write_probs),
                                    std::move(workload));
}

TEST(Strategy, AliasDrawsMatchDeclaredProbabilities) {
  const auto strategy = tiny_strategy();
  math::Rng rng(42);
  constexpr std::uint64_t kDraws = 200000;
  std::vector<std::uint64_t> read_hits(3, 0), write_hits(2, 0);
  for (std::uint64_t i = 0; i < kDraws; ++i) {
    ++read_hits[strategy->draw_read_index(rng)];
    ++write_hits[strategy->draw_write_index(rng)];
  }
  const double kSlack = 0.01;  // ~8 sigma at 200k draws
  EXPECT_NEAR(read_hits[0] / double(kDraws), 0.6, kSlack);
  EXPECT_NEAR(read_hits[1] / double(kDraws), 0.3, kSlack);
  EXPECT_NEAR(read_hits[2] / double(kDraws), 0.1, kSlack);
  EXPECT_NEAR(write_hits[0] / double(kDraws), 0.75, kSlack);
  EXPECT_NEAR(write_hits[1] / double(kDraws), 0.25, kSlack);
}

TEST(Strategy, DrawsConsumeExactlyOneWordAndAreDeterministic) {
  const auto strategy = tiny_strategy();
  math::Rng a(7), b(7), skip(7);
  constexpr int kDraws = 1000;
  for (int i = 0; i < kDraws; ++i) {
    EXPECT_EQ(strategy->draw_read_index(a), strategy->draw_read_index(b));
    skip.next();
  }
  // After kDraws one-word draws, the streams sit at the same position as
  // a generator that skipped kDraws raw words.
  const std::uint64_t wa = a.next();
  const std::uint64_t wb = b.next();
  const std::uint64_t ws = skip.next();
  EXPECT_EQ(wa, wb);
  EXPECT_EQ(wa, ws);
}

TEST(Strategy, SamplePathsAgreeWordForWord) {
  const auto strategy = tiny_strategy();
  math::Rng r1(99), r2(99), r3(99);
  quorum::QuorumBitset mask;
  Quorum into;
  for (int i = 0; i < 200; ++i) {
    const Quorum alloc = strategy->sample(r1);
    strategy->sample_into(into, r2);
    strategy->sample_mask(mask, r3);
    Quorum from_mask;
    mask.to_quorum_into(from_mask);
    EXPECT_EQ(alloc, into);
    EXPECT_EQ(alloc, from_mask);
  }
  // All three consumed the same number of words.
  EXPECT_EQ(r1.next(), r2.next());
}

// ---------------------------------------------------------------------
// Exact measures vs brute force
// ---------------------------------------------------------------------

TEST(Strategy, MeasuresMatchBruteForceEnumeration) {
  WorkloadSpec workload;
  workload.read_fraction = 0.7;
  const auto strategy = tiny_strategy(workload);
  const std::uint32_t n = strategy->universe_size();
  const std::vector<Quorum> reads = {{0, 1, 2, 3}, {2, 3, 4, 5}, {0, 2, 4, 6}};
  const std::vector<double> pr = {0.6, 0.3, 0.1};
  const std::vector<Quorum> writes = {{1, 2, 3, 4}, {3, 4, 5, 6}};
  const std::vector<double> pw = {0.75, 0.25};

  // Per-server access probability and load.
  const auto loads = strategy->load_vector();
  double max_load = 0.0;
  for (std::uint32_t u = 0; u < n; ++u) {
    double expect = 0.0;
    for (std::size_t i = 0; i < reads.size(); ++i) {
      if (std::count(reads[i].begin(), reads[i].end(), u) > 0) {
        expect += 0.7 * pr[i];
      }
    }
    for (std::size_t j = 0; j < writes.size(); ++j) {
      if (std::count(writes[j].begin(), writes[j].end(), u) > 0) {
        expect += 0.3 * pw[j];
      }
    }
    EXPECT_NEAR(strategy->server_access_probability(u), expect, 1e-12);
    EXPECT_NEAR(loads[u], expect, 1e-12);
    max_load = std::max(max_load, expect);
  }
  EXPECT_NEAR(strategy->max_load(), max_load, 1e-12);
  EXPECT_NEAR(strategy->load(), max_load, 1e-12);

  // predicted_epsilon by the double sum.
  for (const double p : {0.0, 0.1, 0.3}) {
    double eps = 0.0;
    for (std::size_t i = 0; i < reads.size(); ++i) {
      for (std::size_t j = 0; j < writes.size(); ++j) {
        std::uint32_t overlap = 0;
        for (const auto u : reads[i]) {
          overlap += std::count(writes[j].begin(), writes[j].end(), u) > 0;
        }
        eps += pr[i] * pw[j] * std::pow(p, overlap);
      }
    }
    EXPECT_NEAR(strategy->predicted_epsilon(p), eps, 1e-12);
  }

  // failure_probability against enumeration of all 2^n crash patterns.
  for (const double p : {0.1, 0.35}) {
    double fail = 0.0;
    for (std::uint32_t crashed = 0; crashed < (1u << n); ++crashed) {
      std::vector<bool> alive(n);
      double weight = 1.0;
      for (std::uint32_t u = 0; u < n; ++u) {
        alive[u] = ((crashed >> u) & 1u) == 0;
        weight *= alive[u] ? (1.0 - p) : p;
      }
      if (!strategy->has_live_quorum(alive)) fail += weight;
    }
    EXPECT_NEAR(strategy->failure_probability(p), fail, 1e-12);
  }

  // fault_tolerance: largest f such that every f-subset leaves a live
  // read and write quorum, by enumeration.
  std::uint32_t brute = 0;
  for (std::uint32_t f = 1; f <= n; ++f) {
    bool all_survive = true;
    for (std::uint32_t crashed = 0; crashed < (1u << n) && all_survive;
         ++crashed) {
      if (static_cast<std::uint32_t>(__builtin_popcount(crashed)) != f) {
        continue;
      }
      std::vector<bool> alive(n);
      for (std::uint32_t u = 0; u < n; ++u) {
        alive[u] = ((crashed >> u) & 1u) == 0;
      }
      if (!strategy->has_live_quorum(alive)) all_survive = false;
    }
    if (!all_survive) break;
    brute = f;
  }
  EXPECT_EQ(strategy->fault_tolerance(), brute);

  EXPECT_EQ(strategy->min_quorum_size(), 4u);
  EXPECT_EQ(strategy->universe_size(), 7u);
}

TEST(Strategy, HasLiveQuorumNeedsBothSides) {
  const auto strategy = tiny_strategy();
  const std::uint32_t n = strategy->universe_size();
  // Only read quorum {0,1,2,3} alive: no write quorum is live.
  std::vector<bool> alive(n, false);
  for (const auto u : {0, 1, 2, 3}) alive[u] = true;
  EXPECT_FALSE(strategy->has_live_quorum(alive));
  // Add 4: write quorum {1,2,3,4} becomes live.
  alive[4] = true;
  EXPECT_TRUE(strategy->has_live_quorum(alive));
  quorum::QuorumBitset mask(n);
  for (std::uint32_t u = 0; u < n; ++u) {
    if (alive[u]) mask.set(u);
  }
  EXPECT_TRUE(strategy->has_live_quorum_mask(mask));
  mask.reset(4);
  EXPECT_FALSE(strategy->has_live_quorum_mask(mask));
}

// ---------------------------------------------------------------------
// optimize_strategy
// ---------------------------------------------------------------------

TEST(Optimizer, ReturnsAFeasibleDistributionPair) {
  auto base = std::make_shared<core::RandomSubsetSystem>(24, 9);
  WorkloadSpec workload;
  workload.read_fraction = 0.8;
  quorum::StrategyOptions options;
  options.read_candidates = 10;
  options.write_candidates = 10;
  const auto strategy = quorum::optimize_strategy(base, workload, options);
  ASSERT_NE(strategy, nullptr);
  double read_sum = 0.0, write_sum = 0.0;
  for (std::uint32_t i = 0; i < strategy->read_support_size(); ++i) {
    EXPECT_GE(strategy->read_prob(i), 0.0);
    read_sum += strategy->read_prob(i);
  }
  for (std::uint32_t j = 0; j < strategy->write_support_size(); ++j) {
    EXPECT_GE(strategy->write_prob(j), 0.0);
    write_sum += strategy->write_prob(j);
  }
  EXPECT_NEAR(read_sum, 1.0, 1e-9);
  EXPECT_NEAR(write_sum, 1.0, 1e-9);
  // The default ceiling is the uniform-distribution epsilon over the same
  // candidates: the optimizer must not be less consistent than undirected
  // sampling of its own support.
  const std::uint32_t mr = strategy->read_support_size();
  // (Support may have been pruned, so recompute the uniform epsilon over
  // what remains is not the ceiling; instead just sanity-bound epsilon by
  // the worst support pair.)
  double worst = 0.0;
  for (std::uint32_t i = 0; i < mr; ++i) {
    for (std::uint32_t j = 0; j < strategy->write_support_size(); ++j) {
      std::uint32_t overlap = 0;
      for (const auto u : strategy->read_quorum(i)) {
        overlap += std::count(strategy->write_quorum(j).begin(),
                              strategy->write_quorum(j).end(), u) > 0;
      }
      worst = std::max(worst, overlap == 0 ? 1.0 : 0.0);
    }
  }
  EXPECT_LE(strategy->predicted_epsilon(0.0), worst + 1e-9);
  // Deterministic: the same options reproduce the same strategy.
  const auto again = quorum::optimize_strategy(base, workload, options);
  ASSERT_EQ(again->read_support_size(), strategy->read_support_size());
  for (std::uint32_t i = 0; i < mr; ++i) {
    EXPECT_EQ(again->read_quorum(i), strategy->read_quorum(i));
    EXPECT_DOUBLE_EQ(again->read_prob(i), strategy->read_prob(i));
  }
}

TEST(Optimizer, BeatsTheFixedConstructionOnSkewedCapacities) {
  // 18 servers, a third of them at half capacity. The fixed R(18, 7)
  // strategy loads every server equally (7/18), so its capacity-weighted
  // max load is (7/18)/0.5; a workload-aware strategy can steer mass
  // toward the full-capacity servers.
  const std::uint32_t n = 18, q = 7;
  auto base = std::make_shared<core::RandomSubsetSystem>(n, q);
  WorkloadSpec workload;
  workload.read_fraction = 0.75;
  workload.capacities.assign(n, 1.0);
  for (std::uint32_t u = 0; u < n / 3; ++u) workload.capacities[u] = 0.5;
  quorum::StrategyOptions options;
  options.read_candidates = 12;
  options.write_candidates = 12;
  const auto strategy = quorum::optimize_strategy(base, workload, options);
  const double fixed_max = (double(q) / n) / 0.5;
  EXPECT_LT(strategy->max_load(), fixed_max);
}

// ---------------------------------------------------------------------
// Serving-tier integration
// ---------------------------------------------------------------------

std::shared_ptr<const Strategy> serving_strategy() {
  auto base = std::make_shared<core::RandomSubsetSystem>(15, 6);
  WorkloadSpec workload;
  workload.read_fraction = 0.9;
  quorum::StrategyOptions options;
  options.read_candidates = 8;
  options.write_candidates = 8;
  return quorum::optimize_strategy(base, workload, options);
}

std::vector<serve::ShardAggregate> run_strategy_service(
    std::uint32_t workers, replica::DrawPath path, std::uint64_t ops) {
  serve::KvService::Config cfg;
  cfg.shards = 4;
  cfg.workers = workers;
  cfg.queue_capacity = 256;
  cfg.strategy = serving_strategy();
  cfg.draw_path = path;
  cfg.seed = 31;
  serve::KvService service(std::move(cfg));
  workload::OpenLoopSpec spec;
  spec.keys = 64;
  spec.read_fraction = 0.9;
  workload::OpenLoopGenerator gen(spec, 5);
  workload::Operation op;
  serve::Request req;
  service.start();
  for (std::uint64_t i = 0; i < ops; ++i) {
    gen.next(op);
    req.key = op.key;
    req.value = op.value;
    req.scheduled_ns = service.now_ns();
    req.is_read = op.is_read;
    service.submit(req);
  }
  service.stop_and_drain();
  return service.aggregates();
}

TEST(StrategyServe, AggregatesBitIdenticalAcrossWorkersAndDrawPaths) {
  constexpr std::uint64_t kOps = 3000;
  using replica::DrawPath;
  const auto base = run_strategy_service(1, DrawPath::kMask, kOps);
  ASSERT_EQ(base.size(), 4u);
  std::uint64_t total_draws = 0;
  for (const auto& agg : base) {
    total_draws += agg.strategy_draws;
    EXPECT_EQ(agg.strategy_draws, agg.reads + agg.writes);
  }
  EXPECT_EQ(total_draws, kOps);
  for (const auto& other : {run_strategy_service(8, DrawPath::kMask, kOps),
                            run_strategy_service(1, DrawPath::kAllocating,
                                                 kOps),
                            run_strategy_service(8, DrawPath::kAllocating,
                                                 kOps)}) {
    ASSERT_EQ(other.size(), base.size());
    for (std::size_t s = 0; s < base.size(); ++s) {
      EXPECT_EQ(base[s], other[s]) << "shard " << s;
    }
  }
  // The checksum is a nontrivial fold, not a constant.
  bool nonzero = false;
  for (const auto& agg : base) nonzero |= agg.strategy_checksum != 0;
  EXPECT_TRUE(nonzero);
}

TEST(StrategyServe, StrategyRejectsDynamicMembership) {
  serve::KvService::Config cfg;
  cfg.strategy = serving_strategy();
  cfg.dynamic_membership = true;
  EXPECT_THROW(serve::KvService service(std::move(cfg)), std::exception);
}

}  // namespace
}  // namespace pqs

// util::MpscRing — the serving tier's per-shard request queue.
//
// The single-threaded tests pin down the slot protocol's visible contract
// (FIFO, capacity rounding, full-ring rejection, the emptiness probe); the
// multi-producer test is a concurrency fuzz — four producers hammer a
// deliberately tiny ring while the consumer drains it, checking
// exactly-once delivery and per-producer FIFO. Tier-1 tests run under the
// CI TSan job, so the acquire/release slot handoff is checked by the race
// detector as well as by these assertions.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <thread>
#include <vector>

#include "util/mpsc_ring.h"

namespace pqs::util {
namespace {

TEST(MpscRing, CapacityRoundsUpToAPowerOfTwo) {
  EXPECT_EQ(MpscRing<int>(2).capacity(), 2u);
  EXPECT_EQ(MpscRing<int>(5).capacity(), 8u);
  EXPECT_EQ(MpscRing<int>(64).capacity(), 64u);
  EXPECT_EQ(MpscRing<int>(65).capacity(), 128u);
}

TEST(MpscRing, RejectsPushesOnlyWhileFull) {
  MpscRing<int> ring(4);
  for (int i = 0; i < 4; ++i) EXPECT_TRUE(ring.try_push(i));
  EXPECT_FALSE(ring.try_push(99));
  int buf[2];
  ASSERT_EQ(ring.pop_batch(buf, 2), 2u);
  EXPECT_EQ(buf[0], 0);
  EXPECT_EQ(buf[1], 1);
  // Two slots freed: exactly two more pushes fit.
  EXPECT_TRUE(ring.try_push(4));
  EXPECT_TRUE(ring.try_push(5));
  EXPECT_FALSE(ring.try_push(6));
}

TEST(MpscRing, EmptyProbeTracksTheConsumerView) {
  MpscRing<int> ring(8);
  EXPECT_TRUE(ring.empty());
  ASSERT_TRUE(ring.try_push(7));
  EXPECT_FALSE(ring.empty());
  int buf[1];
  ASSERT_EQ(ring.pop_batch(buf, 1), 1u);
  EXPECT_EQ(buf[0], 7);
  EXPECT_TRUE(ring.empty());
}

TEST(MpscRing, SingleProducerFifoAcrossManyWraps) {
  // Capacity 16, a thousand elements: the ring wraps dozens of times and
  // pushes interleave with partial batch pops, yet dequeue order must be
  // exactly push order.
  MpscRing<int> ring(16);
  std::vector<int> seen;
  int next = 0;
  int buf[8];
  while (static_cast<int>(seen.size()) < 1000) {
    for (int i = 0; i < 5 && next < 1000; ++i) {
      if (ring.try_push(next)) ++next;
    }
    const std::size_t got = ring.pop_batch(buf, 8);
    seen.insert(seen.end(), buf, buf + got);
  }
  ASSERT_EQ(seen.size(), 1000u);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(seen[i], i);
  EXPECT_TRUE(ring.empty());
}

TEST(MpscRing, MultiProducerDeliversExactlyOnceInPerProducerOrder) {
  constexpr std::uint64_t kProducers = 4;
  constexpr std::uint64_t kPerProducer = 5000;
  // A tiny ring forces constant full-ring contention and wrapping — the
  // worst case for the slot protocol.
  MpscRing<std::uint64_t> ring(64);
  std::atomic<bool> go{false};
  std::vector<std::thread> producers;
  producers.reserve(kProducers);
  for (std::uint64_t p = 0; p < kProducers; ++p) {
    producers.emplace_back([&ring, &go, p] {
      while (!go.load(std::memory_order_acquire)) std::this_thread::yield();
      for (std::uint64_t i = 0; i < kPerProducer; ++i) {
        const std::uint64_t item = (p << 32) | i;
        while (!ring.try_push(item)) std::this_thread::yield();
      }
    });
  }
  go.store(true, std::memory_order_release);

  // This thread is the single consumer.
  std::vector<std::uint64_t> next_seq(kProducers, 0);
  std::uint64_t buf[32];
  std::uint64_t total = 0;
  while (total < kProducers * kPerProducer) {
    const std::size_t got = ring.pop_batch(buf, 32);
    if (got == 0) {
      std::this_thread::yield();
      continue;
    }
    for (std::size_t i = 0; i < got; ++i) {
      const std::uint64_t p = buf[i] >> 32;
      const std::uint64_t seq = buf[i] & 0xffffffffULL;
      ASSERT_LT(p, kProducers);
      // Per-producer FIFO: producer p's items arrive in p's push order.
      ASSERT_EQ(seq, next_seq[p]) << "producer " << p;
      ++next_seq[p];
    }
    total += got;
  }
  for (auto& t : producers) t.join();
  for (std::uint64_t p = 0; p < kProducers; ++p) {
    EXPECT_EQ(next_seq[p], kPerProducer) << "producer " << p;
  }
  EXPECT_TRUE(ring.empty());
}

}  // namespace
}  // namespace pqs::util

// Statistical conformance of the dynamic-membership stack: the stale-read
// rate of a churned InstantCluster must respect the timed-quorum epsilon
// computed in core/timed_epsilon.h — Gramoli-Raynal's lifetime model
// measured on the deployed protocol rather than on the estimator.
//
// The protocol per pair: write (uniform q-subset of the live fleet), k
// in-place replacements of uniformly random slots (fresh empty servers),
// then read (uniform q-subset of the post-churn fleet). A stale read
// requires the read quorum to miss every *surviving* write-quorum member:
// a surviving common server holds the latest record (single writer,
// strictly increasing timestamps) and answers, and select_plain returns
// the highest timestamp. That containment makes the observed stale count
// stochastically dominated by Binomial(N, timed_epsilon_events(n, q, k)),
// and a multiplicative Chernoff margin (math/chernoff.h) turns the run
// into a deterministic-seed assertion with failure probability <= 1e-9
// under the null — for three churn rates, per the conformance contract.
//
// The same schedule is the replay object: shard decompositions of the
// measurement must be bit-identical across {1, 8} worker threads and both
// draw paths, so the statistical result is a pure function of the seeds.
#include <cmath>
#include <cstdint>
#include <memory>
#include <vector>

#include <gtest/gtest.h>

#include "core/epsilon.h"
#include "core/random_subset_system.h"
#include "core/timed_epsilon.h"
#include "math/chernoff.h"
#include "replica/instant_cluster.h"
#include "util/worker_pool.h"

namespace pqs::replica {
namespace {

constexpr std::uint32_t kN = 64;
constexpr std::uint32_t kQ = 16;

struct StalenessRun {
  std::uint64_t pairs = 0;
  std::uint64_t stale = 0;
  std::uint64_t empty = 0;

  bool operator==(const StalenessRun& o) const {
    return pairs == o.pairs && stale == o.stale && empty == o.empty;
  }
};

// One shard of the churned measurement: `pairs` write/churn(k)/read
// triples on a dynamic cluster with every slot live (fixed fleet size, the
// occupancy model's regime). `poisson_lambda` > 0 draws k fresh per pair
// from Poisson(lambda) via exponential inter-arrivals on the churn stream
// instead of using the fixed `events_per_pair`.
StalenessRun run_shard(std::uint32_t events_per_pair, double poisson_lambda,
                       std::uint64_t pairs, std::uint64_t seed,
                       DrawPath path) {
  InstantCluster::Config cfg;
  cfg.quorums = std::make_shared<core::RandomSubsetSystem>(kN, kQ);
  cfg.seed = seed;
  cfg.churn_seed = seed ^ 0xc4a84e11ULL;
  cfg.draw_path = path;
  cfg.dynamic_membership = true;
  InstantCluster cluster(cfg);
  StalenessRun run;
  run.pairs = pairs;
  WriteResult w;
  ReadResult r;
  std::int64_t value = 0;
  for (std::uint64_t i = 0; i < pairs; ++i) {
    cluster.write_into(w, /*variable=*/1, ++value);
    std::uint32_t k = events_per_pair;
    if (poisson_lambda > 0.0) {
      k = 0;
      double t = cluster.churn_rng().exponential(1.0 / poisson_lambda);
      while (t < 1.0) {
        ++k;
        t += cluster.churn_rng().exponential(1.0 / poisson_lambda);
      }
    }
    cluster.run_churn(k);
    cluster.read_into(r, 1);
    if (!r.selection.has_value) {
      ++run.empty;
      ++run.stale;
    } else if (r.selection.record.value != value) {
      ++run.stale;
    }
  }
  return run;
}

// The sharded measurement: `shards` independent clusters with derived
// seeds, folded. Shard work is self-contained, so the fold is a pure
// function of the seeds at any worker count.
std::vector<StalenessRun> run_shards(std::uint32_t events_per_pair,
                                     double poisson_lambda,
                                     std::uint64_t pairs_per_shard,
                                     std::uint32_t shards, unsigned threads,
                                     DrawPath path) {
  std::vector<StalenessRun> runs(shards);
  util::WorkerPool pool(threads);
  pool.run(shards, [&](std::uint64_t s) {
    runs[s] = run_shard(events_per_pair, poisson_lambda, pairs_per_shard,
                        /*seed=*/101 + 1000003 * s, path);
  });
  return runs;
}

StalenessRun fold(const std::vector<StalenessRun>& runs) {
  StalenessRun total;
  for (const auto& r : runs) {
    total.pairs += r.pairs;
    total.stale += r.stale;
    total.empty += r.empty;
  }
  return total;
}

// gamma sized so that P(Binomial(N, eps) > (1+gamma) N eps) <= 1e-9 by the
// multiplicative Chernoff bound; requires gamma <= 2e-1 for the exp form.
double margin_gamma(double mu) {
  const double gamma = std::sqrt(4.0 * std::log(2e9) / mu);
  EXPECT_LE(gamma, 2.0 * std::exp(1.0) - 1.0);
  EXPECT_LE(math::chernoff_upper(mu, gamma), 1e-9);
  return gamma;
}

// --- Estimator analytics -------------------------------------------------

TEST(TimedEpsilon, ZeroChurnReducesToPaperEpsilon) {
  EXPECT_DOUBLE_EQ(core::timed_epsilon_events(kN, kQ, 0),
                   core::nonintersection_exact(kN, kQ));
  EXPECT_DOUBLE_EQ(core::estimate_timed_epsilon(kN, kQ, /*lambda=*/5.0,
                                                /*staleness=*/0.0),
                   core::nonintersection_exact(kN, kQ));
}

TEST(TimedEpsilon, MonotoneInChurnAndSaturates) {
  double prev = 0.0;
  for (const std::int64_t k : {0, 1, 2, 4, 8, 16, 32, 64, 128}) {
    const double eps = core::timed_epsilon_events(kN, kQ, k);
    EXPECT_GE(eps, prev) << "k=" << k;
    EXPECT_LE(eps, 1.0);
    prev = eps;
  }
  // Total turnover drives the miss probability toward 1: once every slot
  // has been replaced, no write survives.
  EXPECT_GT(core::timed_epsilon_events(kN, kQ, 2000), 0.9);
}

TEST(TimedEpsilon, EstimatorMonotoneInRateAndStaleness) {
  const double base = core::estimate_timed_epsilon(kN, kQ, 4.0, 1.0);
  EXPECT_GT(base, core::nonintersection_exact(kN, kQ));
  EXPECT_LT(base, core::estimate_timed_epsilon(kN, kQ, 8.0, 1.0));
  EXPECT_LT(base, core::estimate_timed_epsilon(kN, kQ, 4.0, 2.0));
  // Rate x staleness is what matters: the Poisson mean.
  EXPECT_NEAR(base, core::estimate_timed_epsilon(kN, kQ, 2.0, 2.0), 1e-12);
}

TEST(TimedEpsilon, LifetimeBracketsTheTarget) {
  const double lambda = 4.0;
  const double target = 2.0 * core::nonintersection_exact(kN, kQ);
  const double lifetime =
      core::timed_quorum_lifetime(kN, kQ, lambda, target);
  ASSERT_GT(lifetime, 0.0);
  EXPECT_LE(core::estimate_timed_epsilon(kN, kQ, lambda, lifetime), target);
  EXPECT_GT(core::estimate_timed_epsilon(kN, kQ, lambda, lifetime * 1.01),
            target);
  // An unreachable target (below the churn-free floor) has no lifetime.
  EXPECT_EQ(core::timed_quorum_lifetime(
                kN, kQ, lambda, core::nonintersection_exact(kN, kQ) / 2.0),
            0.0);
}

// --- Deployed-stack conformance ------------------------------------------

// Three churn rates (events per write/read pair), each bounded by its
// timed epsilon + Chernoff margin. Failure probability under the null is
// <= 1e-9 per rate, and the fixed seeds make every run bit-identical.
TEST(TimedEpsilon, ChurnedStackRespectsTimedEpsilonAtThreeRates) {
  constexpr std::uint32_t kShards = 8;
  constexpr std::uint64_t kPairsPerShard = 18750;  // 150k pairs total
  for (const std::uint32_t k : {2u, 8u, 32u}) {
    const double eps = core::timed_epsilon_events(kN, kQ, k);
    ASSERT_GT(eps, core::nonintersection_exact(kN, kQ));
    const double mu =
        static_cast<double>(kShards * kPairsPerShard) * eps;
    const double gamma = margin_gamma(mu);
    const StalenessRun run = fold(run_shards(
        k, /*poisson_lambda=*/0.0, kPairsPerShard, kShards,
        /*threads=*/8, DrawPath::kMask));
    EXPECT_LE(static_cast<double>(run.stale), (1.0 + gamma) * mu)
        << "k=" << k << ": observed " << run.stale << " stale reads over "
        << run.pairs << " pairs; eps=" << eps;
    // Churn must actually cost something at these rates, or the harness
    // is not measuring the effect.
    EXPECT_GT(run.stale, 0u) << "k=" << k;
  }
}

// The rate-based estimator against a genuinely Poisson churn schedule:
// k ~ Poisson(lambda) fresh per pair (exponential inter-arrivals on the
// churn stream), bounded by estimate_timed_epsilon(lambda, 1).
TEST(TimedEpsilon, PoissonChurnRespectsRateEstimator) {
  constexpr std::uint32_t kShards = 8;
  constexpr std::uint64_t kPairsPerShard = 12500;  // 100k pairs total
  const double lambda = 6.0;
  const double eps = core::estimate_timed_epsilon(kN, kQ, lambda, 1.0);
  const double mu = static_cast<double>(kShards * kPairsPerShard) * eps;
  const double gamma = margin_gamma(mu);
  const StalenessRun run = fold(run_shards(
      /*events_per_pair=*/0, lambda, kPairsPerShard, kShards,
      /*threads=*/8, DrawPath::kMask));
  EXPECT_LE(static_cast<double>(run.stale), (1.0 + gamma) * mu)
      << "observed " << run.stale << " stale reads over " << run.pairs
      << " pairs; eps=" << eps;
  EXPECT_GT(run.stale, 0u);
}

// The measurement is a replay: per-shard results bit-identical across
// {1, 8} worker threads and both draw paths.
TEST(TimedEpsilon, MeasurementReplayBitIdentical) {
  constexpr std::uint32_t kShards = 8;
  constexpr std::uint64_t kPairsPerShard = 2000;
  const auto reference = run_shards(8, 0.0, kPairsPerShard, kShards,
                                    /*threads=*/1, DrawPath::kMask);
  for (const unsigned threads : {1u, 8u}) {
    for (const DrawPath path : {DrawPath::kMask, DrawPath::kAllocating}) {
      const auto runs =
          run_shards(8, 0.0, kPairsPerShard, kShards, threads, path);
      for (std::uint32_t s = 0; s < kShards; ++s) {
        ASSERT_TRUE(runs[s] == reference[s])
            << "threads=" << threads
            << " path=" << (path == DrawPath::kMask ? "mask" : "alloc")
            << " shard=" << s;
      }
    }
  }
}

}  // namespace
}  // namespace pqs::replica

#include "quorum/set_system.h"

#include <cmath>

#include <gtest/gtest.h>

#include "math/rng.h"
#include "quorum/singleton.h"

namespace pqs::quorum {
namespace {

SetSystem majority3of5() {
  // All 3-subsets of {0..4}: the majority system over 5 servers.
  return SetSystem::all_subsets(5, 3);
}

TEST(SetSystem, AllSubsetsCount) {
  EXPECT_EQ(SetSystem::all_subsets(5, 3).quorum_count(), 10u);
  EXPECT_EQ(SetSystem::all_subsets(6, 2).quorum_count(), 15u);
  EXPECT_EQ(SetSystem::all_subsets(4, 4).quorum_count(), 1u);
}

TEST(SetSystem, MajorityIsStrict) {
  const auto sys = majority3of5();
  EXPECT_TRUE(sys.is_strict());
  EXPECT_EQ(sys.min_pairwise_intersection(), 1u);
  EXPECT_DOUBLE_EQ(sys.intersection_probability(), 1.0);
}

TEST(SetSystem, HalfSubsetsAreNotStrict) {
  const auto sys = SetSystem::all_subsets(6, 3);
  EXPECT_FALSE(sys.is_strict());
  EXPECT_EQ(sys.min_pairwise_intersection(), 0u);
  // P(disjoint) for two random 3-subsets of 6: C(3,3)/C(6,3) = 1/20.
  EXPECT_NEAR(sys.intersection_probability(), 1.0 - 0.05, 1e-12);
}

TEST(SetSystem, LoadOfUniformMajority) {
  // Every server is in C(4,2)=6 of 10 quorums => load 0.6 = q/n.
  EXPECT_NEAR(majority3of5().load(), 0.6, 1e-12);
}

TEST(SetSystem, LoadOfSkewedStrategy) {
  // Two quorums share server 0; weight 0.75/0.25 puts 1.0 load on it.
  SetSystem sys(3, {{0, 1}, {0, 2}}, {0.75, 0.25});
  EXPECT_DOUBLE_EQ(sys.server_load(0), 1.0);
  EXPECT_DOUBLE_EQ(sys.server_load(1), 0.75);
  EXPECT_DOUBLE_EQ(sys.server_load(2), 0.25);
  EXPECT_DOUBLE_EQ(sys.load(), 1.0);
}

TEST(SetSystem, FaultToleranceMajority) {
  // Majority 3-of-5: killing any 3 servers disables all quorums; 2 do not.
  EXPECT_EQ(majority3of5().fault_tolerance(), 3u);
}

TEST(SetSystem, FaultToleranceGridLike) {
  // 2x2 grid quorums: {r0,c0}={0,1,2}, {r0,c1}={0,1,3}, {r1,c0}={2,3,0}...
  // Explicit: rows {0,1},{2,3}; cols {0,2},{1,3}.
  SetSystem sys(4, {{0, 1, 2}, {0, 1, 3}, {0, 2, 3}, {1, 2, 3}});
  EXPECT_EQ(sys.fault_tolerance(), 2u);
}

TEST(SetSystem, DisseminationMaskingPredicates) {
  const auto sys = SetSystem::all_subsets(5, 4);  // pairwise overlap >= 3
  EXPECT_EQ(sys.min_pairwise_intersection(), 3u);
  EXPECT_TRUE(sys.is_dissemination(1));   // overlap >= 2, A = 2 > 1
  EXPECT_FALSE(sys.is_dissemination(2));  // overlap >= 3 holds but A = 2 !> 2
  EXPECT_TRUE(sys.is_masking(1));         // overlap >= 3, A = 2 > 1
  EXPECT_FALSE(sys.is_masking(2));        // needs overlap >= 5
}

TEST(SetSystem, FailureProbabilitySingletonLike) {
  SetSystem sys(3, {{0}});
  EXPECT_DOUBLE_EQ(sys.failure_probability(0.3), 0.3);
}

TEST(SetSystem, FailureProbabilityTwoDisjointSingletons) {
  SetSystem sys(2, {{0}, {1}});
  // Fails iff both crash.
  EXPECT_NEAR(sys.failure_probability(0.3), 0.09, 1e-12);
}

TEST(SetSystem, FailureProbabilityMatchesEnumeration) {
  const auto sys = majority3of5();
  const double p = 0.4;
  // Enumerate all 2^5 crash patterns.
  double fail = 0.0;
  for (int mask = 0; mask < 32; ++mask) {
    std::vector<bool> alive(5);
    double prob = 1.0;
    for (int u = 0; u < 5; ++u) {
      const bool dead = mask & (1 << u);
      alive[u] = !dead;
      prob *= dead ? p : (1 - p);
    }
    if (!sys.has_live_quorum(alive)) fail += prob;
  }
  EXPECT_NEAR(sys.failure_probability(p), fail, 1e-12);
}

TEST(SetSystem, SampleFollowsWeights) {
  SetSystem sys(3, {{0}, {1}, {2}}, {0.5, 0.3, 0.2});
  math::Rng rng(71);
  std::vector<int> counts(3, 0);
  constexpr int kSamples = 100000;
  for (int i = 0; i < kSamples; ++i) ++counts[sys.sample(rng)[0]];
  EXPECT_NEAR(counts[0] / double(kSamples), 0.5, 0.01);
  EXPECT_NEAR(counts[1] / double(kSamples), 0.3, 0.01);
  EXPECT_NEAR(counts[2] / double(kSamples), 0.2, 0.01);
}

TEST(SetSystem, ValidationErrors) {
  EXPECT_THROW(SetSystem(3, {}), std::invalid_argument);
  EXPECT_THROW(SetSystem(3, {{3}}), std::invalid_argument);  // out of range
  EXPECT_THROW(SetSystem(3, {{0}, {1}}, {0.6, 0.6}), std::invalid_argument);
  EXPECT_THROW(SetSystem(3, {{0}}, {0.5, 0.5}), std::invalid_argument);
  EXPECT_THROW(SetSystem(3, {{0}, {1}}, {1.5, -0.5}), std::invalid_argument);
}

// --- Section 3.2: why strict measures break, and how the probabilistic
// measures resist inflation -----------------------------------------------

// Build <Q', w'> from the paper's counterexample: take a majority system and
// add every singleton with total weight gamma << eps.
SetSystem inflated_majority(double gamma) {
  auto base = SetSystem::all_subsets(5, 3);
  std::vector<Quorum> quorums = base.quorums();
  std::vector<double> weights(quorums.size(),
                              (1.0 - gamma) / double(quorums.size()));
  for (ServerId u = 0; u < 5; ++u) {
    quorums.push_back({u});
    weights.push_back(gamma / 5.0);
  }
  return SetSystem(5, std::move(quorums), std::move(weights));
}

TEST(SetSystem, InflationRaisesStrictFaultTolerance) {
  const auto inflated = inflated_majority(1e-6);
  // Naive Definition 2.5 on the inflated system: only killing all 5 servers
  // hits every singleton.
  EXPECT_EQ(inflated.fault_tolerance(), 5u);
  // And the naive failure probability is an absurd p^5.
  EXPECT_NEAR(inflated.failure_probability(0.5), std::pow(0.5, 5), 1e-9);
}

TEST(SetSystem, ProbabilisticMeasuresResistInflation) {
  const auto inflated = inflated_majority(1e-6);
  // eps' ~ 2*gamma*(prob single doesn't meet other)... tiny; high-quality
  // quorums (delta = sqrt(eps')) exclude the singletons: each singleton
  // meets a random majority quorum only w.p. 3/5 << 1 - delta.
  const double eps = 1.0 - inflated.intersection_probability();
  EXPECT_LT(eps, 1e-5);
  const auto hq = inflated.high_quality_indices(std::sqrt(eps));
  EXPECT_EQ(hq.size(), 10u);  // just the majority quorums
  // So the probabilistic fault tolerance is the honest 3, not 5.
  EXPECT_EQ(inflated.probabilistic_fault_tolerance(), 3u);
  // And the probabilistic failure probability matches the majority system.
  const auto honest = SetSystem::all_subsets(5, 3);
  EXPECT_NEAR(inflated.probabilistic_failure_probability(0.5),
              honest.failure_probability(0.5), 1e-9);
}

TEST(SetSystem, HighQualityAllForStrict) {
  // In any strict system every quorum is high quality for any delta
  // (intersection probability is 1; delta of 1e-9 absorbs the floating
  // accumulation of the weight sums).
  const auto sys = majority3of5();
  EXPECT_EQ(sys.high_quality_indices(1e-9).size(), sys.quorum_count());
}

TEST(SetSystem, QuorumQualityValues) {
  // For all 3-subsets of 6, quality of any quorum = 1 - C(3,3)/C(6,3) = 0.95.
  const auto sys = SetSystem::all_subsets(6, 3);
  for (std::size_t i = 0; i < sys.quorum_count(); ++i) {
    EXPECT_NEAR(sys.quorum_quality(i), 0.95, 1e-12);
  }
}

}  // namespace
}  // namespace pqs::quorum

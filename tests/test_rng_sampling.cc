#include <algorithm>
#include <cmath>
#include <map>
#include <set>
#include <vector>

#include <gtest/gtest.h>

#include "math/rng.h"
#include "math/sampling.h"

namespace pqs::math {
namespace {

TEST(Rng, DeterministicForSeed) {
  Rng a(42), b(42);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) same += (a.next() == b.next()) ? 1 : 0;
  EXPECT_LT(same, 3);
}

TEST(Rng, BelowStaysInRange) {
  Rng rng(7);
  for (std::uint64_t bound : {1ull, 2ull, 7ull, 1000ull, 1ull << 40}) {
    for (int i = 0; i < 200; ++i) EXPECT_LT(rng.below(bound), bound);
  }
}

TEST(Rng, BelowOneIsAlwaysZero) {
  Rng rng(9);
  for (int i = 0; i < 50; ++i) EXPECT_EQ(rng.below(1), 0u);
}

TEST(Rng, BelowIsRoughlyUniform) {
  Rng rng(11);
  constexpr std::uint64_t kBound = 10;
  constexpr int kSamples = 100000;
  std::vector<int> counts(kBound, 0);
  for (int i = 0; i < kSamples; ++i) ++counts[rng.below(kBound)];
  for (auto c : counts) {
    EXPECT_NEAR(c, kSamples / kBound, 5 * std::sqrt(kSamples / kBound));
  }
}

TEST(Rng, UniformInUnitInterval) {
  Rng rng(13);
  double sum = 0.0;
  for (int i = 0; i < 100000; ++i) {
    const double u = rng.uniform();
    ASSERT_GE(u, 0.0);
    ASSERT_LT(u, 1.0);
    sum += u;
  }
  EXPECT_NEAR(sum / 100000, 0.5, 0.01);
}

TEST(Rng, ChanceEdgeCases) {
  Rng rng(17);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.chance(0.0));
    EXPECT_TRUE(rng.chance(1.0));
  }
}

TEST(Rng, ChanceFrequency) {
  Rng rng(19);
  int hits = 0;
  for (int i = 0; i < 100000; ++i) hits += rng.chance(0.3) ? 1 : 0;
  EXPECT_NEAR(hits / 100000.0, 0.3, 0.01);
}

TEST(Rng, BetweenInclusive) {
  Rng rng(23);
  std::set<std::int64_t> seen;
  for (int i = 0; i < 1000; ++i) {
    const auto v = rng.between(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 7u);  // all values hit
}

TEST(Rng, ExponentialMean) {
  Rng rng(29);
  double sum = 0.0;
  constexpr int kSamples = 200000;
  for (int i = 0; i < kSamples; ++i) sum += rng.exponential(50.0);
  EXPECT_NEAR(sum / kSamples, 50.0, 1.0);
}

TEST(Rng, JumpIsDeterministic) {
  Rng a(7), b(7);
  a.jump();
  b.jump();
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, JumpChangesTheStream) {
  Rng a(7), b(7);
  b.jump();
  int same = 0;
  for (int i = 0; i < 100; ++i) same += (a.next() == b.next()) ? 1 : 0;
  EXPECT_LT(same, 3);
}

TEST(Rng, JumpedStreamsDoNotCollide) {
  // jump() advances by 2^128 draws, so consecutive substreams are disjoint
  // for any horizon we can observe; check the first 20k outputs of eight
  // substreams pairwise for collisions.
  Rng base(123);
  std::set<std::uint64_t> seen;
  for (int stream = 0; stream < 8; ++stream) {
    Rng rng = base.substream();
    for (int i = 0; i < 20000; ++i) {
      ASSERT_TRUE(seen.insert(rng.next()).second)
          << "collision in stream " << stream << " at draw " << i;
    }
  }
}

TEST(Rng, LongJumpDiffersFromJump) {
  Rng a(99), b(99);
  a.jump();
  b.long_jump();
  int same = 0;
  for (int i = 0; i < 100; ++i) same += (a.next() == b.next()) ? 1 : 0;
  EXPECT_LT(same, 3);
}

TEST(Rng, SubstreamSequenceIsDistinctAndDeterministic) {
  Rng rng(5), replay(5);
  const Rng first = rng.substream();
  Rng second = rng.substream();
  // Deterministic: replaying the seed yields the same substreams.
  Rng first_replay = replay.substream();
  Rng first_copy = first;
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(first_copy.next(), first_replay.next());
  }
  // Distinct: substream 0 and substream 1 do not overlap.
  Rng first_again = first;
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    same += (first_again.next() == second.next()) ? 1 : 0;
  }
  EXPECT_LT(same, 3);
}

TEST(Rng, ForkedStreamsIndependent) {
  Rng parent(31);
  Rng child = parent.fork();
  // The child stream should not reproduce the parent stream.
  int same = 0;
  for (int i = 0; i < 100; ++i) same += (parent.next() == child.next()) ? 1 : 0;
  EXPECT_LT(same, 3);
}

TEST(Sampling, ProducesSortedDistinctOfRightSize) {
  Rng rng(37);
  for (std::uint32_t n : {1u, 5u, 30u, 100u}) {
    for (std::uint32_t k = 0; k <= n; k += std::max(1u, n / 4)) {
      const auto s = sample_without_replacement(n, k, rng);
      EXPECT_EQ(s.size(), k);
      EXPECT_TRUE(std::is_sorted(s.begin(), s.end()));
      EXPECT_TRUE(std::adjacent_find(s.begin(), s.end()) == s.end());
      if (!s.empty()) {
        EXPECT_LT(s.back(), n);
      }
    }
  }
}

TEST(Sampling, FullSampleIsWholeUniverse) {
  Rng rng(41);
  const auto s = sample_without_replacement(12, 12, rng);
  for (std::uint32_t i = 0; i < 12; ++i) EXPECT_EQ(s[i], i);
}

TEST(Sampling, RejectsOversample) {
  Rng rng(43);
  EXPECT_THROW(sample_without_replacement(5, 6, rng), std::invalid_argument);
}

TEST(Sampling, UniformOverSubsets) {
  // Every 2-subset of {0..4} (10 of them) should appear ~equally often.
  Rng rng(47);
  std::map<std::pair<std::uint32_t, std::uint32_t>, int> counts;
  constexpr int kSamples = 100000;
  for (int i = 0; i < kSamples; ++i) {
    const auto s = sample_without_replacement(5, 2, rng);
    ++counts[{s[0], s[1]}];
  }
  EXPECT_EQ(counts.size(), 10u);
  for (const auto& [subset, c] : counts) {
    EXPECT_NEAR(c, kSamples / 10, 5 * std::sqrt(kSamples / 10.0));
  }
}

TEST(Sampling, ElementInclusionFrequency) {
  // P(u in sample) = k/n for every u — the load identity of R(n, q).
  Rng rng(53);
  constexpr std::uint32_t n = 20, k = 7;
  constexpr int kSamples = 50000;
  std::vector<int> hits(n, 0);
  for (int i = 0; i < kSamples; ++i) {
    for (auto u : sample_without_replacement(n, k, rng)) ++hits[u];
  }
  for (auto h : hits) {
    EXPECT_NEAR(h / double(kSamples), double(k) / n, 0.02);
  }
}

TEST(Sampling, SortedIntersects) {
  EXPECT_TRUE(sorted_intersects({1, 3, 5}, {5, 7}));
  EXPECT_FALSE(sorted_intersects({1, 3, 5}, {0, 2, 6}));
  EXPECT_FALSE(sorted_intersects({}, {1}));
  EXPECT_FALSE(sorted_intersects({}, {}));
}

TEST(Sampling, SortedIntersectionSize) {
  EXPECT_EQ(sorted_intersection_size({1, 2, 3, 9}, {2, 3, 4, 9}), 3u);
  EXPECT_EQ(sorted_intersection_size({1, 2}, {3, 4}), 0u);
  EXPECT_EQ(sorted_intersection_size({}, {1, 2}), 0u);
  EXPECT_EQ(sorted_intersection_size({5}, {5}), 1u);
}

TEST(Sampling, ShufflePreservesMultiset) {
  Rng rng(59);
  std::vector<std::uint32_t> v{1, 2, 3, 4, 5, 6, 7, 8};
  auto copy = v;
  shuffle(copy, rng);
  std::sort(copy.begin(), copy.end());
  EXPECT_EQ(copy, v);
}

}  // namespace
}  // namespace pqs::math

// Cross-cutting invariants that every QuorumSystem implementation — strict
// or probabilistic — must satisfy. One parameterized suite runs the whole
// menagerie through the same checks, which is what keeps the polymorphic
// interface honest as constructions are added.
#include <memory>
#include <string>

#include <gtest/gtest.h>

#include "core/monte_carlo.h"
#include "core/random_subset_system.h"
#include "math/rng.h"
#include "math/sampling.h"
#include "quorum/grid.h"
#include "quorum/quorum_system.h"
#include "quorum/set_system.h"
#include "quorum/singleton.h"
#include "quorum/threshold.h"
#include "quorum/wall.h"
#include "quorum/weighted.h"

namespace pqs {
namespace {

using SystemFactory = std::shared_ptr<const quorum::QuorumSystem> (*)();

std::shared_ptr<const quorum::QuorumSystem> make_majority() {
  return std::make_shared<quorum::ThresholdSystem>(
      quorum::ThresholdSystem::majority(21));
}
std::shared_ptr<const quorum::QuorumSystem> make_dissem_threshold() {
  return std::make_shared<quorum::ThresholdSystem>(
      quorum::ThresholdSystem::dissemination(22, 5));
}
std::shared_ptr<const quorum::QuorumSystem> make_grid() {
  return std::make_shared<quorum::GridSystem>(quorum::GridSystem::square(25));
}
std::shared_ptr<const quorum::QuorumSystem> make_byz_grid() {
  return std::make_shared<quorum::GridSystem>(
      quorum::GridSystem::masking(36, 3));
}
std::shared_ptr<const quorum::QuorumSystem> make_singleton() {
  return std::make_shared<quorum::SingletonSystem>(9, 4);
}
std::shared_ptr<const quorum::QuorumSystem> make_random_subset() {
  return std::make_shared<core::RandomSubsetSystem>(30, 8);
}
std::shared_ptr<const quorum::QuorumSystem> make_random_masking() {
  return std::make_shared<core::RandomSubsetSystem>(
      core::RandomSubsetSystem::with_byzantine(30, 15, 3,
                                               core::Regime::kMasking));
}
std::shared_ptr<const quorum::QuorumSystem> make_wall() {
  return std::make_shared<quorum::WallSystem>(
      quorum::WallSystem({6, 5, 4, 3}));
}
std::shared_ptr<const quorum::QuorumSystem> make_weighted() {
  return std::make_shared<quorum::WeightedVotingSystem>(
      quorum::WeightedVotingSystem({4, 3, 2, 2, 1, 1, 1, 1, 1}, 9));
}
std::shared_ptr<const quorum::QuorumSystem> make_explicit() {
  // Small enough for SetSystem's exact inclusion-exclusion (15 quorums).
  return std::make_shared<quorum::SetSystem>(
      quorum::SetSystem::all_subsets(6, 4));
}

class SystemInvariants : public ::testing::TestWithParam<SystemFactory> {};

TEST_P(SystemInvariants, SamplesAreValidQuorums) {
  const auto sys = GetParam()();
  math::Rng rng(1);
  for (int i = 0; i < 200; ++i) {
    const auto q = sys->sample(rng);
    ASSERT_GE(q.size(), 1u);
    ASSERT_GE(q.size(), sys->min_quorum_size());
    ASSERT_TRUE(std::is_sorted(q.begin(), q.end()));
    ASSERT_TRUE(std::adjacent_find(q.begin(), q.end()) == q.end());
    ASSERT_LT(q.back(), sys->universe_size());
  }
}

TEST_P(SystemInvariants, LoadIsAProbabilityAboveTheoreticalFloors) {
  const auto sys = GetParam()();
  const double load = sys->load();
  EXPECT_GT(load, 0.0);
  EXPECT_LE(load, 1.0);
  // Lemma 3.10 applied to the shipped strategy: L_w >= E|Q| / n, and the
  // smallest quorum lower-bounds E|Q|.
  EXPECT_GE(load + 0.02,  // MC-estimated loads get small slack
            static_cast<double>(sys->min_quorum_size()) /
                sys->universe_size());
}

TEST_P(SystemInvariants, AliveExtremes) {
  const auto sys = GetParam()();
  EXPECT_TRUE(sys->has_live_quorum(
      std::vector<bool>(sys->universe_size(), true)));
  EXPECT_FALSE(sys->has_live_quorum(
      std::vector<bool>(sys->universe_size(), false)));
}

TEST_P(SystemInvariants, SampledQuorumIsAliveWhenItsMembersAre) {
  const auto sys = GetParam()();
  math::Rng rng(3);
  for (int i = 0; i < 50; ++i) {
    const auto q = sys->sample(rng);
    std::vector<bool> alive(sys->universe_size(), false);
    for (auto u : q) alive[u] = true;
    EXPECT_TRUE(sys->has_live_quorum(alive));
  }
}

TEST_P(SystemInvariants, FewerThanFaultToleranceCrashesNeverDisable) {
  // A(Q) is the size of the smallest disabling set, so *no* placement of
  // A(Q) - 1 crashes may disable the system.
  const auto sys = GetParam()();
  const std::uint32_t a = sys->fault_tolerance();
  ASSERT_GE(a, 1u);
  math::Rng rng(5);
  for (int trial = 0; trial < 100; ++trial) {
    std::vector<bool> alive(sys->universe_size(), true);
    const auto dead = math::sample_without_replacement(
        sys->universe_size(), a - 1, rng);
    for (auto u : dead) alive[u] = false;
    ASSERT_TRUE(sys->has_live_quorum(alive)) << sys->name();
  }
  // Prefix placements too (the adversary the closed forms reason about).
  std::vector<bool> alive(sys->universe_size(), true);
  for (std::uint32_t u = 0; u + 1 < a; ++u) alive[u] = false;
  EXPECT_TRUE(sys->has_live_quorum(alive));
}

TEST_P(SystemInvariants, FailureProbabilityShape) {
  const auto sys = GetParam()();
  EXPECT_NEAR(sys->failure_probability(0.0), 0.0, 5e-3);
  EXPECT_NEAR(sys->failure_probability(1.0), 1.0, 5e-3);
  double prev = -1e-3;
  for (double p = 0.0; p <= 1.001; p += 0.125) {
    const double f = sys->failure_probability(std::min(p, 1.0));
    EXPECT_GE(f + 5e-3, prev) << sys->name() << " at p=" << p;
    prev = f;
  }
}

TEST_P(SystemInvariants, FailureProbabilityMatchesMonteCarlo) {
  const auto sys = GetParam()();
  math::Rng rng(7);
  for (double p : {0.25, 0.6}) {
    const auto est = core::estimate_failure_probability(*sys, p, 60000, rng);
    EXPECT_NEAR(est.estimate(), sys->failure_probability(p), 0.02)
        << sys->name() << " at p=" << p;
  }
}

TEST_P(SystemInvariants, MeasuredLoadMatchesReportedLoad) {
  const auto sys = GetParam()();
  math::Rng rng(9);
  EXPECT_NEAR(core::estimate_load(*sys, 60000, rng), sys->load(), 0.02)
      << sys->name();
}

TEST_P(SystemInvariants, NameIsNonEmptyAndStable) {
  const auto sys = GetParam()();
  EXPECT_FALSE(sys->name().empty());
  EXPECT_EQ(sys->name(), GetParam()()->name());
}

INSTANTIATE_TEST_SUITE_P(
    AllSystems, SystemInvariants,
    ::testing::Values(&make_majority, &make_dissem_threshold, &make_grid,
                      &make_byz_grid, &make_singleton, &make_random_subset,
                      &make_random_masking, &make_wall, &make_weighted,
                      &make_explicit));

}  // namespace
}  // namespace pqs

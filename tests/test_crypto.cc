#include <cstdint>
#include <vector>

#include <gtest/gtest.h>

#include "crypto/mac.h"
#include "crypto/siphash.h"

namespace pqs::crypto {
namespace {

// Official SipHash-2-4 test vectors from the reference implementation
// (Aumasson & Bernstein): key = 00 01 02 ... 0f, messages 00 01 02 ... of
// increasing length; expected 64-bit outputs.
Key128 reference_key() {
  Key128 k;
  for (std::uint8_t i = 0; i < 16; ++i) k[i] = i;
  return k;
}

// First 16 vectors of vectors_sip64 in the reference repository.
constexpr std::uint64_t kExpected[] = {
    0x726fdb47dd0e0e31ULL, 0x74f839c593dc67fdULL, 0x0d6c8009d9a94f5aULL,
    0x85676696d7fb7e2dULL, 0xcf2794e0277187b7ULL, 0x18765564cd99a68dULL,
    0xcbc9466e58fee3ceULL, 0xab0200f58b01d137ULL, 0x93f5f5799a932462ULL,
    0x9e0082df0ba9e4b0ULL, 0x7a5dbbc594ddb9f3ULL, 0xf4b32f46226bada7ULL,
    0x751e8fbc860ee5fbULL, 0x14ea5627c0843d90ULL, 0xf723ca908e7af2eeULL,
    0xa129ca6149be45e5ULL,
};

TEST(SipHash, ReferenceVectors) {
  const Key128 key = reference_key();
  std::vector<std::uint8_t> message;
  for (std::size_t len = 0; len < std::size(kExpected); ++len) {
    EXPECT_EQ(siphash24(key, message.data(), message.size()), kExpected[len])
        << "message length " << len;
    message.push_back(static_cast<std::uint8_t>(len));
  }
}

TEST(SipHash, KeySensitivity) {
  Key128 k1 = reference_key();
  Key128 k2 = reference_key();
  k2[0] ^= 1;
  const char msg[] = "probabilistic quorum systems";
  EXPECT_NE(siphash24(k1, msg, sizeof(msg)), siphash24(k2, msg, sizeof(msg)));
}

TEST(SipHash, MessageSensitivity) {
  const Key128 key = reference_key();
  std::uint8_t a[9] = {1, 2, 3, 4, 5, 6, 7, 8, 9};
  std::uint8_t b[9] = {1, 2, 3, 4, 5, 6, 7, 8, 10};
  EXPECT_NE(siphash24(key, a, sizeof(a)), siphash24(key, b, sizeof(b)));
}

TEST(SipHash, LengthMattersEvenWithZeroPadding) {
  const Key128 key = reference_key();
  std::uint8_t zeros[16] = {};
  EXPECT_NE(siphash24(key, zeros, 8), siphash24(key, zeros, 9));
}

TEST(Mac, SignVerifyRoundTrip) {
  const auto signer = Signer::from_seed(123);
  const Verifier verifier(signer.key());
  const auto record = signer.sign(7, -42, 1001, 3);
  EXPECT_EQ(record.variable, 7u);
  EXPECT_EQ(record.value, -42);
  EXPECT_EQ(record.timestamp, 1001u);
  EXPECT_EQ(record.writer, 3u);
  EXPECT_TRUE(verifier.verify(record));
}

TEST(Mac, TamperedFieldsFailVerification) {
  const auto signer = Signer::from_seed(123);
  const Verifier verifier(signer.key());
  const auto good = signer.sign(7, -42, 1001, 3);

  auto tampered = good;
  tampered.value += 1;
  EXPECT_FALSE(verifier.verify(tampered));

  tampered = good;
  tampered.timestamp += 1;  // replay with boosted freshness
  EXPECT_FALSE(verifier.verify(tampered));

  tampered = good;
  tampered.variable ^= 1;  // cross-variable splice
  EXPECT_FALSE(verifier.verify(tampered));

  tampered = good;
  tampered.writer = 9;
  EXPECT_FALSE(verifier.verify(tampered));

  tampered = good;
  tampered.tag ^= 0x1;
  EXPECT_FALSE(verifier.verify(tampered));
}

TEST(Mac, WrongKeyFails) {
  const auto signer = Signer::from_seed(1);
  const auto other = Signer::from_seed(2);
  const Verifier wrong(other.key());
  EXPECT_FALSE(wrong.verify(signer.sign(1, 2, 3, 4)));
}

TEST(Mac, DistinctSeedsDistinctKeys) {
  EXPECT_NE(Signer::from_seed(10).key(), Signer::from_seed(11).key());
}

TEST(Mac, DeterministicSigning) {
  const auto s1 = Signer::from_seed(5);
  const auto s2 = Signer::from_seed(5);
  EXPECT_EQ(s1.sign(1, 2, 3, 4).tag, s2.sign(1, 2, 3, 4).tag);
}

}  // namespace
}  // namespace pqs::crypto

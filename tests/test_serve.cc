// serve::KvService — the sharded serving tier end to end.
//
// The load-bearing contract is the determinism gate the bench relies on:
// with a single producer, each shard's aggregate counters are a pure
// function of the request stream, so they must be bit-identical across
// shard-serving worker counts and across the mask/allocating draw paths.
// The rest pins down routing purity, drain completeness (every submitted
// request lands in exactly one histogram slot and one aggregate), the
// stale/empty read accounting against majority quorums (which never read
// stale), and the restart contract (aggregates accumulate across runs,
// reset_latency clears only the histograms). Tier-1 tests run under the
// CI TSan job, so the ring handoff and worker shutdown are race-checked.
#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <vector>

#include "quorum/threshold.h"
#include "serve/kv_service.h"
#include "workload/open_loop.h"

namespace pqs::serve {
namespace {

std::shared_ptr<const quorum::QuorumSystem> majority(std::uint32_t n = 15) {
  return std::make_shared<quorum::ThresholdSystem>(
      quorum::ThresholdSystem::majority(n));
}

KvService::Config base_config(std::uint32_t shards, std::uint32_t workers,
                              replica::DrawPath path) {
  KvService::Config cfg;
  cfg.shards = shards;
  cfg.workers = workers;
  cfg.queue_capacity = 256;
  cfg.quorums = majority();
  cfg.draw_path = path;
  cfg.seed = 77;
  return cfg;
}

// Drives `ops` generator operations through a fresh service from this one
// thread (the single-producer determinism precondition) and returns the
// per-shard aggregates.
std::vector<ShardAggregate> run_service(std::uint32_t shards,
                                        std::uint32_t workers,
                                        replica::DrawPath path,
                                        std::uint64_t ops,
                                        std::uint64_t* histogram_count) {
  KvService service(base_config(shards, workers, path));
  workload::OpenLoopSpec spec;
  spec.keys = 64;
  spec.zipf_exponent = 0.99;
  workload::OpenLoopGenerator gen(spec, 123);
  workload::Operation op;
  Request req;
  service.start();
  for (std::uint64_t i = 0; i < ops; ++i) {
    gen.next(op);
    req.key = op.key;
    req.value = op.value;
    req.scheduled_ns = service.now_ns();
    req.is_read = op.is_read;
    service.submit(req);
  }
  service.stop_and_drain();
  if (histogram_count != nullptr) {
    *histogram_count = service.merged_histogram().count();
  }
  return service.aggregates();
}

TEST(KvService, AggregatesBitIdenticalAcrossWorkerCountsAndDrawPaths) {
  constexpr std::uint64_t kOps = 4000;
  using replica::DrawPath;
  const auto base = run_service(4, 1, DrawPath::kMask, kOps, nullptr);
  ASSERT_EQ(base.size(), 4u);
  // Worker count only changes which thread serves a shard, never what the
  // shard computes.
  EXPECT_EQ(base, run_service(4, 2, DrawPath::kMask, kOps, nullptr));
  EXPECT_EQ(base, run_service(4, 8, DrawPath::kMask, kOps, nullptr));
  // The allocating draw path consumes the same rng stream per cluster.
  EXPECT_EQ(base, run_service(4, 2, DrawPath::kAllocating, kOps, nullptr));
}

TEST(KvService, DrainsEveryRequestExactlyOnce) {
  constexpr std::uint64_t kOps = 3000;
  std::uint64_t recorded = 0;
  const auto aggregates =
      run_service(3, 2, replica::DrawPath::kMask, kOps, &recorded);
  EXPECT_EQ(recorded, kOps);
  ShardAggregate fold;
  for (const auto& a : aggregates) fold += a;
  EXPECT_EQ(fold.reads + fold.writes, kOps);
  EXPECT_GT(fold.access_checksum, 0u);
}

TEST(KvService, RoutingIsPureAndCoversEveryShard) {
  KvService service(base_config(8, 1, replica::DrawPath::kMask));
  std::vector<bool> hit(8, false);
  for (std::uint64_t key = 0; key < 2000; ++key) {
    const std::uint32_t shard = service.shard_of(key);
    ASSERT_LT(shard, 8u);
    EXPECT_EQ(shard, service.shard_of(key));  // pure function of the key
    hit[shard] = true;
  }
  for (std::uint32_t s = 0; s < 8; ++s) {
    EXPECT_TRUE(hit[s]) << "shard " << s << " never routed to";
  }
}

TEST(KvService, MajorityQuorumsReadTheirWritesAcrossRestart) {
  KvService service(base_config(1, 1, replica::DrawPath::kMask));
  Request req;
  req.key = 5;
  req.value = 42;
  req.is_read = false;
  service.start();
  service.submit(req);
  service.stop_and_drain();

  // Restart: cluster state persists, so the read run sees the write.
  req.is_read = true;
  service.start();
  service.submit(req);
  service.stop_and_drain();

  const ShardAggregate fold = service.fold_aggregates();
  EXPECT_EQ(fold.writes, 1u);
  EXPECT_EQ(fold.reads, 1u);
  // Majority quorums always intersect: never stale, never empty.
  EXPECT_EQ(fold.stale_reads, 0u);
  EXPECT_EQ(fold.empty_reads, 0u);
  // Both ops contacted an 8-server majority of the 15-server universe.
  EXPECT_EQ(service.server_profile().samples(), 2u);
  EXPECT_EQ(service.contention_snapshot().totals().writes_accepted, 8u);
  EXPECT_EQ(service.contention_snapshot().totals().reads_served, 8u);
}

TEST(KvService, ReadsBeforeAnyWriteCountAsEmptyNeverStale) {
  KvService service(base_config(2, 1, replica::DrawPath::kMask));
  Request req;
  req.is_read = true;
  service.start();
  for (std::uint64_t key = 0; key < 50; ++key) {
    req.key = key;
    service.submit(req);
  }
  service.stop_and_drain();
  const ShardAggregate fold = service.fold_aggregates();
  EXPECT_EQ(fold.reads, 50u);
  EXPECT_EQ(fold.empty_reads, 50u);
  EXPECT_EQ(fold.stale_reads, 0u);
}

// Membership change under load: a shard's universe reconfigures mid-sweep
// (join, then leave, as in-band churn requests) while the single producer
// keeps writing and reading. Drain stays exactly-once — every *served*
// request lands in the histogram and the aggregates, churn in neither —
// and read-your-writes holds across both epoch bumps: with a 9-of-17
// majority over capacity 17 and 16 slots initially live, every read
// quorum deterministically intersects every surviving write quorum
// (9 + 9 > 17 while the joiner is live, 9 + 8 > 16 after it leaves), so
// no read is ever stale or empty.
TEST(KvService, MembershipChangeUnderLoadKeepsReadYourWrites) {
  KvService::Config cfg = base_config(1, 1, replica::DrawPath::kMask);
  cfg.quorums = majority(17);
  cfg.dynamic_membership = true;
  cfg.initial_live = 16;  // slot 16 starts dead, ready to join
  KvService service(cfg);
  Request req;
  service.start();
  auto write = [&](std::uint64_t key) {
    req.key = key;
    req.value = static_cast<std::int64_t>(key) + 1000;
    req.is_read = false;
    service.submit(req);
  };
  auto read = [&](std::uint64_t key) {
    req.key = key;
    req.is_read = true;
    service.submit(req);
  };
  for (std::uint64_t key = 0; key < 20; ++key) write(key);
  service.submit_churn(0, ChurnKind::kJoin, 16);  // epoch 1, live 17
  for (std::uint64_t key = 0; key < 20; ++key) {
    write(20 + key);
    read(key);  // written before the join
    read(20 + key);
  }
  service.submit_churn(0, ChurnKind::kLeave, 16);  // epoch 2, live 16
  for (std::uint64_t key = 0; key < 40; ++key) read(key);
  service.stop_and_drain();

  const ShardAggregate fold = service.fold_aggregates();
  EXPECT_EQ(fold.writes, 40u);
  EXPECT_EQ(fold.reads, 80u);
  EXPECT_EQ(fold.churn_events, 2u);
  EXPECT_EQ(fold.membership_epoch, 2u);
  // Read-your-writes across the view changes: deterministic intersection.
  EXPECT_EQ(fold.stale_reads, 0u);
  EXPECT_EQ(fold.empty_reads, 0u);
  // Exactly-once drain: served requests in the histogram, churn excluded.
  EXPECT_EQ(service.merged_histogram().count(), 120u);
}

// The bit-identity contract survives churn: a fixed interleaving of
// requests and in-band kReplace events (single producer, so every shard's
// subsequence is fixed) yields identical aggregates — churn_events and
// final epochs included — across worker counts and draw paths.
TEST(KvService, ChurnedAggregatesBitIdenticalAcrossWorkersAndPaths) {
  constexpr std::uint64_t kOps = 3000;
  using replica::DrawPath;
  auto run = [&](std::uint32_t workers, DrawPath path) {
    KvService::Config cfg = base_config(4, workers, path);
    cfg.dynamic_membership = true;
    KvService service(cfg);
    workload::OpenLoopSpec spec;
    spec.keys = 64;
    spec.zipf_exponent = 0.99;
    workload::OpenLoopGenerator gen(spec, 123);
    workload::Operation op;
    Request req;
    service.start();
    for (std::uint64_t i = 0; i < kOps; ++i) {
      gen.next(op);
      req.key = op.key;
      req.value = op.value;
      req.scheduled_ns = service.now_ns();
      req.is_read = op.is_read;
      service.submit(req);
      // One replacement on a rotating shard every 100 requests.
      if (i % 100 == 99) {
        service.submit_churn(static_cast<std::uint32_t>((i / 100) % 4),
                             ChurnKind::kReplace);
      }
    }
    service.stop_and_drain();
    return service.aggregates();
  };
  const auto base = run(1, DrawPath::kMask);
  std::uint64_t churned = 0;
  std::uint64_t epochs = 0;
  for (const auto& a : base) {
    churned += a.churn_events;
    epochs += a.membership_epoch;
  }
  EXPECT_EQ(churned, kOps / 100);
  EXPECT_EQ(epochs, kOps / 100);  // every event bumped its shard's epoch
  EXPECT_EQ(base, run(2, DrawPath::kMask));
  EXPECT_EQ(base, run(8, DrawPath::kMask));
  EXPECT_EQ(base, run(2, DrawPath::kAllocating));
}

TEST(KvService, ResetLatencyClearsHistogramsButKeepsAggregates) {
  KvService service(base_config(2, 2, replica::DrawPath::kMask));
  Request req;
  req.key = 9;
  req.value = 1;
  service.start();
  for (int i = 0; i < 10; ++i) service.submit(req);
  service.stop_and_drain();
  EXPECT_EQ(service.merged_histogram().count(), 10u);

  service.reset_latency();
  EXPECT_EQ(service.merged_histogram().count(), 0u);
  // The deterministic counters are untouched by the latency reset...
  EXPECT_EQ(service.fold_aggregates().writes, 10u);

  // ...and the next run's histogram contains only its own samples while
  // the aggregates keep accumulating.
  service.start();
  for (int i = 0; i < 4; ++i) service.submit(req);
  service.stop_and_drain();
  EXPECT_EQ(service.merged_histogram().count(), 4u);
  EXPECT_EQ(service.fold_aggregates().writes, 14u);
}

// ---- Byzantine faults combined with churn ---------------------------------

// A forging server AND a reconfiguring universe in one run: slot 3 turns
// Byzantine (fabricated records with enormous timestamps) while slot 15
// joins and later leaves, all as in-band requests under a live write/read
// stream. Dissemination reads reject the forgeries, and every view along
// the way keeps deterministic intersection (9-of-16 majority: 9 + 9 > 16
// with 15 or 16 live), so read-your-writes must hold through the whole
// campaign — no stale reads, no empty reads — while the drain stays
// exactly-once (served requests in the histogram; churn and fault events
// in the aggregates only).
TEST(KvService, ByzantineFaultsUnderChurnKeepReadYourWrites) {
  KvService::Config cfg = base_config(1, 1, replica::DrawPath::kMask);
  cfg.quorums = majority(16);  // 9-of-16 over capacity 16
  cfg.dynamic_membership = true;
  cfg.initial_live = 15;  // slot 15 starts dead, ready to join
  cfg.read_mode = replica::ReadMode::kDissemination;
  KvService service(cfg);
  Request req;
  service.start();
  auto write = [&](std::uint64_t key) {
    req.key = key;
    req.value = static_cast<std::int64_t>(key) + 1000;
    req.is_read = false;
    service.submit(req);
  };
  auto read = [&](std::uint64_t key) {
    req.key = key;
    req.is_read = true;
    service.submit(req);
  };
  for (std::uint64_t key = 0; key < 20; ++key) write(key);
  // Slot 3 starts forging mid-stream; reads keep consulting it (9 of 15
  // live servers per quorum) and must discard its fabrications.
  service.submit_fault(0, FaultKind::kForge, 3);
  for (std::uint64_t key = 0; key < 20; ++key) {
    write(20 + key);
    read(key);
  }
  service.submit_churn(0, ChurnKind::kJoin, 15);  // epoch 1, live 16
  for (std::uint64_t key = 0; key < 40; ++key) read(key);
  service.submit_fault(0, FaultKind::kCorrect, 3);  // slot 3 heals
  service.submit_churn(0, ChurnKind::kLeave, 15);   // epoch 2, live 15
  for (std::uint64_t key = 0; key < 40; ++key) read(key);
  service.stop_and_drain();

  const ShardAggregate fold = service.fold_aggregates();
  EXPECT_EQ(fold.writes, 40u);
  EXPECT_EQ(fold.reads, 100u);
  EXPECT_EQ(fold.churn_events, 2u);
  EXPECT_EQ(fold.membership_epoch, 2u);
  EXPECT_EQ(fold.fault_events, 2u);
  // The forger sat in many read quorums while active; dissemination
  // rejected every fabricated record it returned.
  EXPECT_GT(fold.rejected_forgeries, 0u);
  // Read-your-writes survived the combined campaign.
  EXPECT_EQ(fold.stale_reads, 0u);
  EXPECT_EQ(fold.empty_reads, 0u);
  // Exactly-once drain: served requests land in the histogram; churn and
  // fault events in neither the histogram nor the request counters.
  EXPECT_EQ(service.merged_histogram().count(), 140u);
}

// The bit-identity contract survives Byzantine faults and churn at once:
// a fixed interleaving of requests, kReplace churn, and forge/heal flips
// (single producer, so every shard's subsequence is fixed) yields
// identical per-shard aggregates — forgery rejections, fault events,
// churn events, and final epochs included — across worker counts and
// draw paths.
TEST(KvService, ByzantineChurnAggregatesBitIdenticalAcrossWorkersAndPaths) {
  constexpr std::uint64_t kOps = 3000;
  using replica::DrawPath;
  auto run = [&](std::uint32_t workers, DrawPath path) {
    KvService::Config cfg = base_config(4, workers, path);
    cfg.dynamic_membership = true;
    cfg.read_mode = replica::ReadMode::kDissemination;
    KvService service(cfg);
    workload::OpenLoopSpec spec;
    spec.keys = 64;
    spec.zipf_exponent = 0.99;
    workload::OpenLoopGenerator gen(spec, 123);
    workload::Operation op;
    Request req;
    service.start();
    for (std::uint64_t i = 0; i < kOps; ++i) {
      gen.next(op);
      req.key = op.key;
      req.value = op.value;
      req.scheduled_ns = service.now_ns();
      req.is_read = op.is_read;
      service.submit(req);
      // One replacement on a rotating shard every 100 requests...
      if (i % 100 == 99) {
        service.submit_churn(static_cast<std::uint32_t>((i / 100) % 4),
                             ChurnKind::kReplace);
      }
      // ...and a forge/heal flip of a rotating slot every 250.
      if (i % 250 == 249) {
        const auto flip = i / 250;
        service.submit_fault(static_cast<std::uint32_t>(flip % 4),
                             (flip % 2) == 0 ? FaultKind::kForge
                                             : FaultKind::kCorrect,
                             flip % 3);
      }
    }
    service.stop_and_drain();
    return service.aggregates();
  };
  const auto base = run(1, DrawPath::kMask);
  ShardAggregate fold;
  for (const auto& a : base) fold += a;
  EXPECT_EQ(fold.churn_events, kOps / 100);
  EXPECT_EQ(fold.fault_events, kOps / 250);
  EXPECT_GT(fold.rejected_forgeries, 0u);
  EXPECT_EQ(fold.reads + fold.writes, kOps);
  EXPECT_EQ(base, run(2, DrawPath::kMask));
  EXPECT_EQ(base, run(8, DrawPath::kMask));
  EXPECT_EQ(base, run(2, DrawPath::kAllocating));
}

}  // namespace
}  // namespace pqs::serve

// Statistical conformance of the masking quorums (Section 5) on the
// deployed stack: the rate at which the actual InstantCluster protocol
// accepts a fabricated record from b colluding servers must respect
// the fabrication epsilon of Lemma 5.7 — P(|Q ∩ B| >= k), the upper
// tail of a hypergeometric — and the total failed-read rate must
// respect the Definition 5.1 masking epsilon, both measured on the
// running system rather than on the estimator.
//
// The fabrication event is contained in "at least k colluders landed in
// the read quorum": the colluders share one forged record with an
// astronomically fresh timestamp, so select_masking accepts it exactly
// when their voucher group reaches k — any honest group that qualifies
// has a strictly smaller timestamp. The total-failure event is contained
// in the Definition 5.1 disjunction (>= k colluders in Q, or fewer than
// k honest write-quorum servers in Q): when neither side occurs, the
// fresh write group qualifies and out-timestamps every honest rival. So
// over N seeded write/read pairs each observed count is stochastically
// dominated by Binomial(N, eps) and a multiplicative Chernoff margin
// (math/chernoff.h) turns that into a deterministic-seed assertion with
// failure probability <= 1e-9 under the null.
//
// Perturbation check (done manually once during development): dropping
// the threshold comparison in select_masking to `count >= 1` drives the
// fabricated rate at b = 2 to the b >= 1 containment rate, an order of
// magnitude above the Lemma 5.7 bound, and the conformance tests here
// fail.
#include <cmath>
#include <cstdint>
#include <memory>

#include <gtest/gtest.h>

#include "core/epsilon.h"
#include "core/monte_carlo.h"
#include "core/random_subset_system.h"
#include "math/chernoff.h"
#include "math/hypergeometric.h"
#include "math/rng.h"
#include "replica/fault.h"
#include "replica/instant_cluster.h"

namespace pqs::replica {
namespace {

struct ByzantineRun {
  std::uint64_t pairs = 0;
  std::uint64_t fabricated = 0;  // read returned the colluders' forgery
  std::uint64_t failures = 0;    // read != the value just written (or ⊥)
};

ByzantineRun run_pairs(std::uint32_t n, std::uint32_t q, std::uint32_t b,
                       std::uint32_t k, std::uint64_t pairs,
                       std::uint64_t seed) {
  InstantCluster::Config cfg;
  cfg.quorums = std::make_shared<core::RandomSubsetSystem>(n, q);
  cfg.mode = ReadMode::kMasking;
  cfg.read_threshold = k;
  cfg.seed = seed;
  InstantCluster cluster(cfg,
                         FaultPlan::prefix(n, b, FaultMode::kCollude));
  const std::int64_t forged_value = ColludePlan{}.value;
  ByzantineRun run;
  run.pairs = pairs;
  WriteResult w;
  ReadResult r;
  std::int64_t value = 0;
  for (std::uint64_t i = 0; i < pairs; ++i) {
    cluster.write_into(w, /*variable=*/1, ++value);
    cluster.read_into(r, 1);
    if (r.selection.has_value && r.selection.record.value == forged_value) {
      ++run.fabricated;
    }
    if (!r.selection.has_value || r.selection.record.value != value) {
      ++run.failures;
    }
  }
  return run;
}

// gamma sized so that P(Binomial(N, eps) > (1+gamma) N eps) <= 1e-9 by the
// multiplicative Chernoff bound.
double margin_gamma(double mu) {
  const double gamma = std::sqrt(4.0 * std::log(2e9) / mu);
  EXPECT_LE(gamma, 2.0 * std::exp(1.0) - 1.0);
  EXPECT_LE(math::chernoff_upper(mu, gamma), 1e-9);
  return gamma;
}

// ---- the closed form against its own oracle -------------------------------

TEST(MaskingEpsilon, FabricationExactMatchesHypergeometricTail) {
  const std::uint32_t n = 64, q = 16;
  for (const std::uint32_t b : {2u, 4u, 8u}) {
    for (const std::uint32_t k : {1u, 2u, 3u}) {
      const auto x = math::make_hypergeometric(n, b, q);
      double tail = 0.0;
      for (std::uint32_t i = k; i <= x.support_max(); ++i) tail += x.pmf(i);
      EXPECT_NEAR(core::fabrication_epsilon_exact(n, q, b, k), tail, 1e-12)
          << "b=" << b << " k=" << k;
    }
  }
}

TEST(MaskingEpsilon, FabricationIsStructurallyZeroBelowThreshold) {
  // Fewer than k Byzantine servers can never assemble k vouchers.
  EXPECT_EQ(core::fabrication_epsilon_exact(64, 16, 0, 2), 0.0);
  EXPECT_EQ(core::fabrication_epsilon_exact(64, 16, 1, 2), 0.0);
  EXPECT_GT(core::fabrication_epsilon_exact(64, 16, 2, 2), 0.0);
}

TEST(MaskingEpsilon, FabricationIsMonotoneAndInsideDefinitionEpsilon) {
  const std::uint32_t n = 64, q = 16;
  const auto k = static_cast<std::uint32_t>(core::masking_threshold(n, q));
  double prev = -1.0;
  for (std::uint32_t b = 0; b <= 8; ++b) {
    const double fab = core::fabrication_epsilon_exact(n, q, b, k);
    EXPECT_GE(fab, prev) << "b=" << b;
    // The fabrication event is one disjunct of the Definition 5.1 event.
    EXPECT_LE(fab, core::masking_epsilon_exact(n, q, b, k)) << "b=" << b;
    prev = fab;
  }
}

TEST(MaskingEpsilon, EstimatorBracketsClosedForm) {
  const std::uint32_t n = 64, q = 16;
  const core::RandomSubsetSystem system(n, q);
  for (const std::uint32_t b : {1u, 2u, 4u}) {
    math::Rng rng(0x5ec7 + b);
    const math::Proportion est = core::estimate_fabrication_epsilon(
        system, b, /*k=*/2, /*samples=*/200000, rng);
    const double exact = core::fabrication_epsilon_exact(n, q, b, 2);
    EXPECT_TRUE(est.wilson(6.0).contains(exact))
        << "b=" << b << " estimate=" << est.estimate()
        << " exact=" << exact;
  }
}

// ---- the deployed stack against the closed form ---------------------------

TEST(MaskingEpsilon, ColludingStackRespectsFabricationEpsilon) {
  const std::uint32_t n = 64, q = 16, b = 4;
  const auto k = static_cast<std::uint32_t>(core::masking_threshold(n, q));
  const std::uint64_t kPairs = 200000;
  const double fab = core::fabrication_epsilon_exact(n, q, b, k);
  ASSERT_GT(fab, 0.0);
  const double mu = static_cast<double>(kPairs) * fab;
  const double gamma = margin_gamma(mu);
  const ByzantineRun run = run_pairs(n, q, b, k, kPairs, /*seed=*/41);
  EXPECT_LE(static_cast<double>(run.fabricated), (1.0 + gamma) * mu)
      << "observed " << run.fabricated << " fabricated reads over "
      << run.pairs << " pairs; eps=" << fab;
  // The bound is probabilistic, not strict: fabrications must actually
  // occur at b = 2k, or the harness is not measuring anything.
  EXPECT_GT(run.fabricated, 0u);

  // The total failed-read rate sits inside the Definition 5.1 epsilon.
  const double eps = core::masking_epsilon_exact(n, q, b, k);
  const double mu_fail = static_cast<double>(kPairs) * eps;
  const double gamma_fail = margin_gamma(mu_fail);
  EXPECT_LE(static_cast<double>(run.failures), (1.0 + gamma_fail) * mu_fail)
      << "observed " << run.failures << " failed reads over " << run.pairs
      << " pairs; eps=" << eps;
}

TEST(MaskingEpsilon, SubThresholdColluderNeverFabricates) {
  // b = 1 < k = 2 is the structural zero measured end to end: one
  // colluder's forgery can never reach the voucher threshold, so the
  // deployed rate is exactly zero, not merely small.
  const std::uint32_t n = 64, q = 16;
  const ByzantineRun run = run_pairs(n, q, /*b=*/1, /*k=*/2, 50000,
                                     /*seed=*/43);
  EXPECT_EQ(run.fabricated, 0u);
  // Failures still occur (the other Definition 5.1 disjunct).
  EXPECT_GT(run.failures, 0u);
}

// Fixed seeds make the whole suite a pure function of the binary: the same
// run twice is bit-identical, so a pass can never flake into a failure on
// re-execution.
TEST(MaskingEpsilon, SeededRunsAreDeterministic) {
  const ByzantineRun a = run_pairs(64, 16, 4, 2, 20000, /*seed=*/47);
  const ByzantineRun b = run_pairs(64, 16, 4, 2, 20000, /*seed=*/47);
  EXPECT_EQ(a.fabricated, b.fabricated);
  EXPECT_EQ(a.failures, b.failures);
}

}  // namespace
}  // namespace pqs::replica

#include "quorum/grid.h"

#include <algorithm>
#include <cmath>

#include <gtest/gtest.h>

#include "math/rng.h"
#include "math/sampling.h"

namespace pqs::quorum {
namespace {

TEST(Grid, SquareConstruction) {
  const auto g = GridSystem::square(25);
  EXPECT_EQ(g.rows(), 5u);
  EXPECT_EQ(g.cols(), 5u);
  EXPECT_EQ(g.depth(), 1u);
  EXPECT_EQ(g.universe_size(), 25u);
  EXPECT_EQ(g.min_quorum_size(), 9u);  // 2*sqrt(n) - 1, matches Table 2
  EXPECT_EQ(g.fault_tolerance(), 5u);
}

TEST(Grid, RejectsNonSquare) {
  EXPECT_THROW(GridSystem::square(26), std::invalid_argument);
}

TEST(Grid, Table2QuorumSizes) {
  struct Row { std::uint32_t n, size, ft; };
  for (auto [n, size, ft] : {Row{25, 9, 5}, Row{100, 19, 10}, Row{225, 29, 15},
                             Row{400, 39, 20}, Row{625, 49, 25},
                             Row{900, 59, 30}}) {
    const auto g = GridSystem::square(n);
    EXPECT_EQ(g.min_quorum_size(), size) << "n=" << n;
    EXPECT_EQ(g.fault_tolerance(), ft) << "n=" << n;
  }
}

TEST(Grid, DisseminationDepthAndSizeTable3) {
  // d = ceil(sqrt((b+1)/2)); size = 2*d*s - d^2. Note the paper's Table 3
  // prints 771 for n=900 — a typo for 171 (3 rows + 3 cols of a 30x30 grid).
  struct Row { std::uint32_t n, b, d, size; };
  for (auto [n, b, d, size] :
       {Row{25, 2, 2, 16}, Row{100, 4, 2, 36}, Row{225, 7, 2, 56},
        Row{400, 9, 3, 111}, Row{625, 12, 3, 141}, Row{900, 14, 3, 171}}) {
    const auto g = GridSystem::dissemination(n, b);
    EXPECT_EQ(g.depth(), d) << "n=" << n;
    EXPECT_EQ(g.min_quorum_size(), size) << "n=" << n;
    EXPECT_GE(g.min_pairwise_intersection(), b + 1);
  }
}

TEST(Grid, MaskingDepthAndSizeTable4) {
  struct Row { std::uint32_t n, b, d, size; };
  for (auto [n, b, d, size] :
       {Row{25, 2, 2, 16}, Row{100, 4, 3, 51}, Row{225, 7, 3, 81},
        Row{400, 9, 4, 144}, Row{625, 12, 4, 184}, Row{900, 14, 4, 224}}) {
    const auto g = GridSystem::masking(n, b);
    EXPECT_EQ(g.depth(), d) << "n=" << n;
    EXPECT_EQ(g.min_quorum_size(), size) << "n=" << n;
    EXPECT_GE(g.min_pairwise_intersection(), 2 * b + 1);
  }
}

TEST(Grid, SampleShapeAndSize) {
  const GridSystem g(4, 4, 2);
  math::Rng rng(11);
  for (int i = 0; i < 100; ++i) {
    const auto q = g.sample(rng);
    EXPECT_EQ(q.size(), g.min_quorum_size());  // 2*2*4 - 4 = 12
    EXPECT_TRUE(std::is_sorted(q.begin(), q.end()));
    EXPECT_LT(q.back(), 16u);
  }
}

TEST(Grid, SampledQuorumIsRowsPlusCols) {
  const GridSystem g(3, 3, 1);
  math::Rng rng(13);
  for (int i = 0; i < 200; ++i) {
    const auto q = g.sample(rng);
    ASSERT_EQ(q.size(), 5u);
    // Exactly one full row: find the row with 3 members.
    int full_rows = 0;
    for (std::uint32_t r = 0; r < 3; ++r) {
      int count = 0;
      for (auto u : q) count += (u / 3 == r) ? 1 : 0;
      if (count == 3) ++full_rows;
    }
    EXPECT_EQ(full_rows, 1);
    int full_cols = 0;
    for (std::uint32_t c = 0; c < 3; ++c) {
      int count = 0;
      for (auto u : q) count += (u % 3 == c) ? 1 : 0;
      if (count == 3) ++full_cols;
    }
    EXPECT_EQ(full_cols, 1);
  }
}

TEST(Grid, PairwiseIntersectionSampled) {
  // Basic grid: strict system, any two quorums intersect (row of one meets
  // column of the other).
  const auto g = GridSystem::square(49);
  math::Rng rng(17);
  for (int i = 0; i < 2000; ++i) {
    const auto a = g.sample(rng);
    const auto b = g.sample(rng);
    ASSERT_GE(math::sorted_intersection_size(a, b), 2u);
  }
}

TEST(Grid, ByzantineOverlapSampled) {
  const auto g = GridSystem::masking(49, 3);  // d = 2, overlap >= 8 > 7
  math::Rng rng(19);
  for (int i = 0; i < 1000; ++i) {
    const auto a = g.sample(rng);
    const auto b = g.sample(rng);
    ASSERT_GE(math::sorted_intersection_size(a, b),
              g.min_pairwise_intersection());
  }
}

TEST(Grid, LoadFormula) {
  const auto g = GridSystem::square(100);
  // 2/sqrt(n) - 1/n
  EXPECT_NEAR(g.load(), 2.0 / 10.0 - 1.0 / 100.0, 1e-12);
  const GridSystem g2(10, 10, 3);
  EXPECT_NEAR(g2.load(), 0.3 + 0.3 - 0.09, 1e-12);
}

TEST(Grid, HasLiveQuorumLogic) {
  const auto g = GridSystem::square(9);
  std::vector<bool> alive(9, true);
  EXPECT_TRUE(g.has_live_quorum(alive));
  // Kill one full row: no live quorum remains (columns all broken).
  alive[3] = alive[4] = alive[5] = false;
  EXPECT_FALSE(g.has_live_quorum(alive));
  // Instead kill a diagonal: every row and column broken.
  std::fill(alive.begin(), alive.end(), true);
  alive[0] = alive[4] = alive[8] = false;
  EXPECT_FALSE(g.has_live_quorum(alive));
  // One dead cell leaves other rows/cols alive.
  std::fill(alive.begin(), alive.end(), true);
  alive[4] = false;
  EXPECT_TRUE(g.has_live_quorum(alive));
}

TEST(Grid, FaultToleranceWitness) {
  // fault_tolerance() - 1 crashes must be survivable in the worst
  // *adversarial* placement that the bound is about: fewer than s - d + 1
  // touched rows leave >= d intact rows (and all columns intact... columns
  // break through touched rows, so the witness uses row-internal kills).
  const GridSystem g(4, 4, 2);
  EXPECT_EQ(g.fault_tolerance(), 3u);  // 4 - 2 + 1
  // Killing servers in only 2 distinct rows leaves 2 fully-alive rows, and
  // killing entire rows leaves all columns broken — but 2 dead *cells* in 2
  // rows leave 2 alive rows and at least 2 alive columns: still live.
  std::vector<bool> alive(16, true);
  alive[0] = alive[5] = false;  // rows 0 and 1 touched
  EXPECT_TRUE(g.has_live_quorum(alive));
  // A hitting set of size 3 (one cell in each of rows 0, 1, 2... wait, that
  // leaves row 3 intact but only 1 intact row < d=2) disables the system.
  std::fill(alive.begin(), alive.end(), true);
  alive[0] = alive[4] = alive[8] = false;  // rows 0,1,2 touched
  EXPECT_FALSE(g.has_live_quorum(alive));
}

TEST(Grid, FailureProbabilityExtremesAndShape) {
  const auto g = GridSystem::square(25);
  EXPECT_NEAR(g.failure_probability(0.0), 0.0, 1e-9);
  EXPECT_NEAR(g.failure_probability(1.0), 1.0, 1e-9);
  // At p = 0.5 a 5x5 grid almost surely has no fully-alive row+col pair:
  // P(live row) = 1-(1-2^-5)^5 ~ 0.146, squared-ish => failure ~ 0.98.
  const double f = g.failure_probability(0.5);
  EXPECT_GT(f, 0.9);
  EXPECT_LT(f, 1.0);
}

TEST(Grid, DepthValidation) {
  EXPECT_THROW(GridSystem(3, 3, 4), std::invalid_argument);
  EXPECT_THROW(GridSystem(3, 3, 0), std::invalid_argument);
  EXPECT_NO_THROW(GridSystem(3, 3, 3));
}

}  // namespace
}  // namespace pqs::quorum

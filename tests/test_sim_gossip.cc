// Diffusion over the simulated network: GossipPush messages scheduled by
// SimCluster::start_gossip, flowing through the same lossy network as
// client traffic.
#include <memory>

#include <gtest/gtest.h>

#include "core/epsilon.h"
#include "core/random_subset_system.h"
#include "quorum/threshold.h"
#include "replica/sim_cluster.h"

namespace pqs::replica {
namespace {

SimCluster::Config coarse_config(std::uint32_t n, std::uint32_t q,
                                 std::uint64_t seed, bool verify) {
  SimCluster::Config cfg;
  cfg.quorums = std::make_shared<core::RandomSubsetSystem>(n, q);
  cfg.mode = ReadMode::kDissemination;
  cfg.latency = {.base = 100, .jitter_mean = 50, .drop_probability = 0.0};
  cfg.seed = seed;
  cfg.verify_gossip = verify;
  return cfg;
}

TEST(SimGossip, SpreadsWritesBetweenOperations) {
  const std::uint32_t n = 32, q = 6;  // coarse: eps ~ 0.26
  SimCluster cluster(coarse_config(n, q, 1, false));
  cluster.start_gossip(/*period=*/500, /*fanout=*/2);
  cluster.write_sync(1, 42);
  // Let several gossip periods elapse in virtual time.
  cluster.simulator().run_until(cluster.simulator().now() + 10000);
  EXPECT_GE(cluster.gossip_rounds(), 10u);
  // Every correct server now stores the value despite q = 6 of 32.
  int holders = 0;
  for (std::uint32_t u = 0; u < n; ++u) {
    const auto* rec = cluster.server(u).find(1);
    if (rec != nullptr && rec->value == 42) ++holders;
  }
  EXPECT_EQ(holders, static_cast<int>(n));
  // So reads are always fresh even though quorum pairs often miss.
  for (int i = 0; i < 50; ++i) {
    const auto r = cluster.read_sync(1);
    ASSERT_TRUE(r.selection.has_value);
    ASSERT_EQ(r.selection.record.value, 42);
  }
}

TEST(SimGossip, ReducesStalenessUnderContinuousWrites) {
  const std::uint32_t n = 32, q = 6;
  const double eps = core::nonintersection_exact(n, q);
  ASSERT_GT(eps, 0.2);

  auto measure = [&](bool gossip, std::uint64_t seed) {
    SimCluster cluster(coarse_config(n, q, seed, false));
    if (gossip) cluster.start_gossip(200, 2);
    int stale = 0;
    std::int64_t value = 0;
    for (int i = 0; i < 150; ++i) {
      cluster.write_sync(1, ++value);
      // Idle time between write and read lets the epidemic run.
      cluster.simulator().run_until(cluster.simulator().now() + 2000);
      const auto r = cluster.read_sync(1);
      if (!(r.selection.has_value && r.selection.record.value == value)) {
        ++stale;
      }
    }
    return stale;
  };
  const int without = measure(false, 2);
  const int with = measure(true, 3);
  EXPECT_GT(without, 15);  // ~ eps * 150 ~ 39
  EXPECT_LE(with, 2);
}

TEST(SimGossip, VerifiedGossipRejectsForgedRecordsOverNetwork) {
  const std::uint32_t n = 32, q = 8, b = 6;
  auto cfg = coarse_config(n, q, 4, /*verify=*/true);
  SimCluster cluster(cfg, FaultPlan::prefix(n, b, FaultMode::kForge));
  cluster.start_gossip(500, 2);
  std::int64_t value = 0;
  std::uint64_t last_ts = 0;
  for (int i = 0; i < 30; ++i) {
    const auto w = cluster.write_sync(1, ++value);
    last_ts = w.timestamp;
    cluster.simulator().run_until(cluster.simulator().now() + 3000);
  }
  for (std::uint32_t u = b; u < n; ++u) {  // the correct servers
    const auto* rec = cluster.server(u).find(1);
    if (rec != nullptr) {
      EXPECT_LE(rec->timestamp, last_ts) << "server " << u << " poisoned";
    }
  }
}

TEST(SimGossip, UnverifiedGossipIsPoisonedOverNetwork) {
  const std::uint32_t n = 32, q = 8, b = 6;
  auto cfg = coarse_config(n, q, 5, /*verify=*/false);
  SimCluster cluster(cfg, FaultPlan::prefix(n, b, FaultMode::kForge));
  cluster.start_gossip(500, 2);
  std::int64_t value = 0;
  std::uint64_t last_ts = 0;
  for (int i = 0; i < 30; ++i) {
    const auto w = cluster.write_sync(1, ++value);
    last_ts = w.timestamp;
    cluster.simulator().run_until(cluster.simulator().now() + 3000);
  }
  int poisoned = 0;
  for (std::uint32_t u = b; u < n; ++u) {
    const auto* rec = cluster.server(u).find(1);
    if (rec != nullptr && rec->timestamp > last_ts) ++poisoned;
  }
  EXPECT_GT(poisoned, 0);
}

TEST(SimGossip, ConfigValidation) {
  SimCluster::Config cfg;
  cfg.quorums = std::make_shared<quorum::ThresholdSystem>(
      quorum::ThresholdSystem::majority(5));
  SimCluster cluster(cfg);
  EXPECT_THROW(cluster.start_gossip(0, 1), std::invalid_argument);
  EXPECT_THROW(cluster.start_gossip(100, 0), std::invalid_argument);
  EXPECT_THROW(cluster.start_gossip(100, 5), std::invalid_argument);
  cluster.start_gossip(100, 2);
  EXPECT_THROW(cluster.start_gossip(100, 2), std::invalid_argument);
}

}  // namespace
}  // namespace pqs::replica

// Deterministic churn-schedule replay. A fixed schedule of membership
// events interleaved with write/read pairs, replayed through dynamic
// InstantCluster shards, must be a pure function of the shard seed: the
// same per-operation trace, final view, and rng tails — across {1, 8}
// worker threads, across the mask/allocating draw paths, and against a
// serially-computed reference. The style (and the reason it works: every
// shard's state is self-contained, so scheduling cannot matter) follows
// test_protocol_draw_equivalence.
//
// Also anchors the stream-preservation contract: with every slot live and
// no churn, a dynamic-membership cluster is bit-identical to a static one
// on both draw paths — turning the feature on costs nothing until the
// first membership event.
#include <cstdint>
#include <memory>
#include <vector>

#include <gtest/gtest.h>

#include "core/random_subset_system.h"
#include "math/rng.h"
#include "replica/instant_cluster.h"
#include "util/worker_pool.h"

namespace pqs::replica {
namespace {

constexpr std::uint32_t kCapacity = 64;
constexpr std::uint32_t kQuorum = 16;
constexpr std::uint32_t kInitialLive = 60;
constexpr int kPairs = 120;

// Everything one operation can reveal (as in the draw-equivalence suite).
struct OpRecord {
  quorum::Quorum quorum;
  std::uint32_t count = 0;
  std::uint64_t timestamp = 0;
  bool has_value = false;
  std::int64_t value = 0;

  bool operator==(const OpRecord& o) const {
    return quorum == o.quorum && count == o.count &&
           timestamp == o.timestamp && has_value == o.has_value &&
           value == o.value;
  }
};

struct Trace {
  std::vector<OpRecord> ops;
  std::uint64_t epoch = 0;
  std::uint32_t live = 0;
  std::uint64_t live_checksum = 0;  // position-weighted live-mask fold
  std::uint64_t rng_tail = 0;       // next quorum-stream draw afterwards
  std::uint64_t churn_tail = 0;     // next churn-stream draw afterwards

  bool operator==(const Trace& o) const {
    return ops == o.ops && epoch == o.epoch && live == o.live &&
           live_checksum == o.live_checksum && rng_tail == o.rng_tail &&
           churn_tail == o.churn_tail;
  }
};

// The fixed churn schedule: a pure function of the pair index, mixing all
// three reconfiguration kinds. Slot 63 starts dead and cycles through
// join/leave; churn_replace turns over a uniformly random live slot from
// the cluster's dedicated churn stream.
void apply_schedule(InstantCluster& cluster, int pair) {
  if (pair % 5 == 2) cluster.churn_replace();
  if (pair % 24 == 7) cluster.join(63);
  if (pair % 24 == 19) cluster.leave(63);
}

Trace run_schedule(DrawPath path, std::uint64_t seed) {
  InstantCluster::Config cfg;
  cfg.quorums = std::make_shared<core::RandomSubsetSystem>(kCapacity, kQuorum);
  cfg.seed = seed;
  cfg.churn_seed = seed ^ 0x5eedc0deULL;
  cfg.draw_path = path;
  cfg.dynamic_membership = true;
  cfg.initial_live = kInitialLive;
  InstantCluster cluster(cfg);
  Trace trace;
  WriteResult w;
  ReadResult r;
  for (int i = 0; i < kPairs; ++i) {
    apply_schedule(cluster, i);
    cluster.write_into(w, /*variable=*/1 + (i % 3), /*value=*/i);
    trace.ops.push_back(OpRecord{w.quorum, w.acks, w.timestamp, false, 0});
    cluster.read_into(r, 1 + (i % 3));
    trace.ops.push_back(OpRecord{r.quorum, r.replies, 0,
                                 r.selection.has_value,
                                 r.selection.record.value});
  }
  trace.epoch = cluster.view_epoch();
  trace.live = cluster.view().live_count();
  cluster.view().live_mask().for_each_set_bit([&trace](quorum::ServerId u) {
    trace.live_checksum += (static_cast<std::uint64_t>(u) + 1) *
                           (static_cast<std::uint64_t>(u) + 1);
  });
  trace.rng_tail = cluster.rng().next();
  trace.churn_tail = cluster.churn_rng().next();
  return trace;
}

std::uint64_t shard_seed(std::uint64_t s) { return 17 + 1000003 * s; }

// The replay gate: 8 shard schedules computed serially (the reference),
// then concurrently at {1, 8} worker threads on both draw paths — every
// trace must equal the reference bit for bit, rng tails included.
TEST(ChurnReplay, BitIdenticalAcrossThreadsAndDrawPaths) {
  constexpr std::uint32_t kShards = 8;
  std::vector<Trace> reference(kShards);
  for (std::uint32_t s = 0; s < kShards; ++s) {
    reference[s] = run_schedule(DrawPath::kMask, shard_seed(s));
  }
  // The schedule actually churns: epochs advanced and membership moved.
  ASSERT_GT(reference[0].epoch, 20u);
  ASSERT_GE(reference[0].live, kInitialLive);

  for (const unsigned threads : {1u, 8u}) {
    for (const DrawPath path : {DrawPath::kMask, DrawPath::kAllocating}) {
      std::vector<Trace> traces(kShards);
      util::WorkerPool pool(threads);
      pool.run(kShards, [&](std::uint64_t s) {
        traces[s] = run_schedule(path, shard_seed(s));
      });
      for (std::uint32_t s = 0; s < kShards; ++s) {
        ASSERT_EQ(traces[s].ops.size(), reference[s].ops.size());
        for (std::size_t i = 0; i < traces[s].ops.size(); ++i) {
          ASSERT_TRUE(traces[s].ops[i] == reference[s].ops[i])
              << "threads=" << threads
              << " path=" << (path == DrawPath::kMask ? "mask" : "alloc")
              << " shard=" << s << " op=" << i;
        }
        ASSERT_TRUE(traces[s] == reference[s])
            << "threads=" << threads
            << " path=" << (path == DrawPath::kMask ? "mask" : "alloc")
            << " shard=" << s << " diverged outside the op trace";
      }
    }
  }
}

// Replays of the same schedule are idempotent (a pure function of the
// seed), and different seeds genuinely diverge — the harness measures
// something.
TEST(ChurnReplay, ReplayIsPureFunctionOfSeed) {
  const Trace a = run_schedule(DrawPath::kMask, 99);
  const Trace b = run_schedule(DrawPath::kMask, 99);
  EXPECT_TRUE(a == b);
  const Trace c = run_schedule(DrawPath::kMask, 100);
  EXPECT_FALSE(a == c);
}

// Stream preservation: dynamic membership with a full live view and no
// churn must be bit-identical to the static cluster on both paths — same
// quorums, same outcomes, same rng tail.
TEST(ChurnReplay, FullLiveDynamicMatchesStaticCluster) {
  auto run = [](bool dynamic, DrawPath path) {
    InstantCluster::Config cfg;
    cfg.quorums =
        std::make_shared<core::RandomSubsetSystem>(kCapacity, kQuorum);
    cfg.seed = 41;
    cfg.draw_path = path;
    cfg.dynamic_membership = dynamic;
    InstantCluster cluster(cfg);
    Trace trace;
    WriteResult w;
    ReadResult r;
    for (int i = 0; i < 60; ++i) {
      cluster.write_into(w, /*variable=*/1, /*value=*/i);
      trace.ops.push_back(OpRecord{w.quorum, w.acks, w.timestamp, false, 0});
      cluster.read_into(r, 1);
      trace.ops.push_back(OpRecord{r.quorum, r.replies, 0,
                                   r.selection.has_value,
                                   r.selection.record.value});
    }
    trace.rng_tail = cluster.rng().next();
    return trace;
  };
  for (const DrawPath path : {DrawPath::kMask, DrawPath::kAllocating}) {
    const Trace dynamic = run(/*dynamic=*/true, path);
    const Trace fixed = run(/*dynamic=*/false, path);
    ASSERT_EQ(dynamic.ops.size(), fixed.ops.size());
    for (std::size_t i = 0; i < dynamic.ops.size(); ++i) {
      ASSERT_TRUE(dynamic.ops[i] == fixed.ops[i])
          << "path=" << (path == DrawPath::kMask ? "mask" : "alloc")
          << " op=" << i;
    }
    EXPECT_EQ(dynamic.rng_tail, fixed.rng_tail);
  }
}

}  // namespace
}  // namespace pqs::replica

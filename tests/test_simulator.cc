#include "sim/simulator.h"

#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "math/rng.h"
#include "sim/network.h"

namespace pqs::sim {
namespace {

TEST(Simulator, RunsEventsInTimeOrder) {
  Simulator sim;
  std::vector<int> order;
  sim.schedule(30, [&] { order.push_back(3); });
  sim.schedule(10, [&] { order.push_back(1); });
  sim.schedule(20, [&] { order.push_back(2); });
  sim.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(sim.now(), 30);
}

TEST(Simulator, TiesBreakInScheduleOrder) {
  Simulator sim;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    sim.schedule(5, [&order, i] { order.push_back(i); });
  }
  sim.run();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[i], i);
}

TEST(Simulator, HandlersCanScheduleMoreEvents) {
  Simulator sim;
  int depth = 0;
  std::function<void()> chain = [&] {
    if (++depth < 5) sim.schedule(7, chain);
  };
  sim.schedule(0, chain);
  sim.run();
  EXPECT_EQ(depth, 5);
  EXPECT_EQ(sim.now(), 28);
}

TEST(Simulator, RunUntilLeavesLaterEvents) {
  Simulator sim;
  int fired = 0;
  sim.schedule(10, [&] { ++fired; });
  sim.schedule(50, [&] { ++fired; });
  sim.run_until(20);
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(sim.now(), 20);
  EXPECT_FALSE(sim.idle());
  sim.run();
  EXPECT_EQ(fired, 2);
}

TEST(Simulator, RunWhileStopsAtPredicate) {
  Simulator sim;
  int count = 0;
  for (int i = 0; i < 10; ++i) sim.schedule(i, [&] { ++count; });
  const bool ok = sim.run_while([&] { return count < 4; });
  EXPECT_TRUE(ok);
  EXPECT_EQ(count, 4);
}

TEST(Simulator, RunWhileReportsExhaustion) {
  Simulator sim;
  sim.schedule(1, [] {});
  const bool ok = sim.run_while([] { return true; });
  EXPECT_FALSE(ok);  // queue drained without satisfying the predicate
}

TEST(Simulator, RejectsNegativeDelay) {
  Simulator sim;
  EXPECT_THROW(sim.schedule(-1, [] {}), std::invalid_argument);
}

TEST(Network, DeliversWithLatency) {
  Simulator sim;
  LatencyModel lat{.base = 100, .jitter_mean = 0, .drop_probability = 0.0};
  Network<std::string> net(sim, lat, math::Rng(1));
  std::vector<std::pair<Time, std::string>> received;
  net.register_node(0, [](NodeId, const std::string&) {});
  net.register_node(1, [&](NodeId from, const std::string& m) {
    EXPECT_EQ(from, 0u);
    received.emplace_back(sim.now(), m);
  });
  net.send(0, 1, "hello");
  sim.run();
  ASSERT_EQ(received.size(), 1u);
  EXPECT_EQ(received[0].first, 100);
  EXPECT_EQ(received[0].second, "hello");
}

TEST(Network, JitterVariesLatency) {
  Simulator sim;
  LatencyModel lat{.base = 100, .jitter_mean = 50, .drop_probability = 0.0};
  Network<int> net(sim, lat, math::Rng(2));
  std::vector<Time> arrivals;
  net.register_node(0, [](NodeId, int) {});
  net.register_node(1, [&](NodeId, int) { arrivals.push_back(sim.now()); });
  for (int i = 0; i < 200; ++i) net.send(0, 1, i);
  sim.run();
  ASSERT_EQ(arrivals.size(), 200u);
  Time min = arrivals[0], max = arrivals[0], sum = 0;
  for (Time t : arrivals) {
    min = std::min(min, t);
    max = std::max(max, t);
    sum += t;
  }
  EXPECT_GE(min, 100);
  EXPECT_GT(max, min);
  EXPECT_NEAR(static_cast<double>(sum) / 200.0, 150.0, 15.0);
}

TEST(Network, DropsMessages) {
  Simulator sim;
  LatencyModel lat{.base = 10, .jitter_mean = 0, .drop_probability = 0.5};
  Network<int> net(sim, lat, math::Rng(3));
  int received = 0;
  net.register_node(0, [](NodeId, int) {});
  net.register_node(1, [&](NodeId, int) { ++received; });
  for (int i = 0; i < 2000; ++i) net.send(0, 1, i);
  sim.run();
  EXPECT_NEAR(received, 1000, 120);
  EXPECT_EQ(net.messages_sent(), 2000u);
  EXPECT_EQ(net.messages_dropped() + net.messages_delivered(), 2000u);
}

TEST(Network, PartitionsSeverBothDirections) {
  Simulator sim;
  Network<int> net(sim, LatencyModel{.base = 1, .jitter_mean = 0},
                   math::Rng(4));
  int at0 = 0, at1 = 0, at2 = 0;
  net.register_node(0, [&](NodeId, int) { ++at0; });
  net.register_node(1, [&](NodeId, int) { ++at1; });
  net.register_node(2, [&](NodeId, int) { ++at2; });
  net.partition({0}, {1});
  net.send(0, 1, 1);
  net.send(1, 0, 1);
  net.send(0, 2, 1);  // unaffected pair
  sim.run();
  EXPECT_EQ(at0, 0);
  EXPECT_EQ(at1, 0);
  EXPECT_EQ(at2, 1);
  net.heal_partitions();
  net.send(0, 1, 1);
  sim.run();
  EXPECT_EQ(at1, 1);
}

TEST(Network, DeterministicForSeed) {
  auto run = [](std::uint64_t seed) {
    Simulator sim;
    Network<int> net(sim, LatencyModel{.base = 5, .jitter_mean = 20},
                     math::Rng(seed));
    std::vector<Time> arrivals;
    net.register_node(0, [](NodeId, int) {});
    net.register_node(1, [&](NodeId, int) { arrivals.push_back(sim.now()); });
    for (int i = 0; i < 50; ++i) net.send(0, 1, i);
    sim.run();
    return arrivals;
  };
  EXPECT_EQ(run(77), run(77));
  EXPECT_NE(run(77), run(78));
}

}  // namespace
}  // namespace pqs::sim
